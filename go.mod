module pmoctree

go 1.22
