// Dambreak: a collapsing liquid column simulated with the real projection
// solver (semi-Lagrangian advection + gravity + face-exact pressure
// projection) on an adaptive octree mesh, with every step's fields
// committed to NVBM through PM-octree — the full Gerris-style pipeline of
// §4 in miniature: mesh adaptively, solve, persist, repeat.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"pmoctree"
)

func main() {
	const (
		maxLevel = 4
		steps    = 12
	)

	// Mesh: refine the lower half (where the liquid acts), keep 2:1.
	tree := pmoctree.Create(pmoctree.Config{DRAMBudgetOctants: 2048})
	tree.RefineWhere(func(c pmoctree.Code) bool {
		_, _, z := c.Center()
		return z-c.Extent()/2 < 0.5
	}, maxLevel)
	tree.Balance()

	sys, err := pmoctree.BuildPoisson(tree.LeafCodes())
	if err != nil {
		log.Fatal(err)
	}
	st := pmoctree.NewFlowState(sys)

	// Initial condition: a liquid column in one corner.
	for i := 0; i < sys.N(); i++ {
		x, _, z := sys.Center(i)
		if x < 0.3 && z < 0.5 {
			st.VOF[i] = 1
		}
	}
	fmt.Printf("dam break: %d cells, initial liquid volume %.4f\n", sys.N(), st.LiquidVolume())

	for s := 1; s <= steps; s++ {
		dt := math.Min(st.CFL()*0.5, 5e-3)
		res, err := st.Step(dt)
		if err != nil {
			log.Fatal(err)
		}

		// Commit the fields into the persistent octree: VOF, pressure,
		// and vertical velocity per leaf.
		byCode := map[pmoctree.Code][3]float64{}
		for i, c := range sys.Codes() {
			byCode[c] = [3]float64{st.VOF[i], st.P[i], st.W[i]}
		}
		tree.UpdateLeaves(func(c pmoctree.Code, d *[pmoctree.DataWords]float64) bool {
			v := byCode[c]
			d[0], d[1], d[3] = v[0], v[1], v[2]
			return true
		})
		tree.Persist()

		fmt.Printf("step %2d: dt=%.4f  CG iters=%3d  div defect=%.2e  liquid=%.4f  KE=%.5f\n",
			s, dt, res.Iterations, st.FaceDivergenceDefect(), st.LiquidVolume(), st.KineticEnergy())
	}

	// The whole run is durable: prove it by restoring from the device.
	restored, err := pmoctree.Restore(pmoctree.Config{NVBMDevice: tree.NVBMDevice()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored committed state: %d elements at step %d\n",
		restored.LeafCount(), restored.Step()-1)

	// Export for visualization.
	hm := pmoctree.Extract(restored.ForEachLeaf)
	f, err := os.CreateTemp("", "dambreak-*.vtk")
	if err != nil {
		log.Fatal(err)
	}
	if err := hm.WriteVTK(f, "dam break"); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("mesh + fields written to %s\n", f.Name())
}
