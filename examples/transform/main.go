// Transform: demonstrate dynamic layout transformation (§3.3). A
// simulation hammers one corner of the domain; with feature-directed
// sampling enabled, PM-octree migrates those subtrees into DRAM and the
// NVBM write count drops — the effect behind Figures 5 and 11.
package main

import (
	"fmt"

	"pmoctree"
)

func main() {
	// The hot region: the (+x, +z) quadrant — deliberately LAST in
	// Z-order, so an access-oblivious layout never keeps it in DRAM.
	hot := func(c pmoctree.Code) bool {
		x, _, z := c.Center()
		return x > 0.5 && z > 0.5
	}

	for _, disable := range []bool{true, false} {
		nv := pmoctree.NewNVBM()
		tree := pmoctree.Create(pmoctree.Config{
			NVBMDevice:        nv,
			DRAMBudgetOctants: 100, // holds roughly one of the two hot subtrees
			DisableTransform:  disable,
		})
		// The feature function is application knowledge: "these are the
		// octants my next step will touch". PM-octree pre-executes it on
		// sampled octants to rank subtrees.
		tree.SetFeatures(func(c pmoctree.Code, _ [pmoctree.DataWords]float64) bool {
			return hot(c)
		})

		// A uniform base mesh, committed.
		tree.RefineWhere(func(pmoctree.Code) bool { return true }, 3)
		tree.Persist()

		// Solver-style write bursts concentrated in the hot corner.
		before := nv.Stats()
		for round := 0; round < 4; round++ {
			tree.UpdateLeaves(func(c pmoctree.Code, data *[pmoctree.DataWords]float64) bool {
				if hot(c) {
					data[0]++
					return true
				}
				return false
			})
		}
		writes := nv.Stats().Sub(before).Writes

		name := "dynamic transformation"
		if disable {
			name = "locality-oblivious layout"
		}
		fmt.Printf("%-28s NVBM writes: %5d   hot subtrees in DRAM: %d\n",
			name, writes, len(tree.HotSubtrees()))
	}
	fmt.Println("\nthe transformed layout serves the hot region from DRAM,")
	fmt.Println("cutting NVBM writes and extending device lifetime (§3.3)")
}
