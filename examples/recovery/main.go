// Recovery: run the droplet simulation, kill it mid-step (as §5.6 of the
// paper does at step 20), restore from NVBM, verify the restored mesh is
// bit-identical to the last committed version, and finish the simulation.
package main

import (
	"fmt"
	"log"

	"pmoctree"
)

func main() {
	const (
		crashStep = 10
		steps     = 16
		maxLevel  = 5
	)
	nv := pmoctree.NewNVBM()
	dram := pmoctree.NewDRAM()
	tree := pmoctree.Create(pmoctree.Config{NVBMDevice: nv, DRAMDevice: dram})
	d := pmoctree.NewDroplet(pmoctree.DropletConfig{Steps: steps})

	// Run up to the crash, committing each step.
	for s := 1; s < crashStep; s++ {
		pmoctree.Step(tree, d, s, maxLevel)
		tree.SetFeatures(d.Feature(s + 1))
		tree.Persist()
	}
	// Record the committed state for verification.
	committed := leafData(tree)
	fmt.Printf("simulated %d steps; committed mesh has %d elements\n", crashStep-1, len(committed))

	// The crash hits in the middle of step 10's refinement: the working
	// version is half-built when DRAM vanishes.
	tree.RefineWhere(d.RefinePred(crashStep), maxLevel)
	dram.Crash()
	fmt.Println("power failure mid-step: DRAM lost, NVBM intact")

	// Restart on the same node: pm_restore returns the committed version.
	restored, err := pmoctree.Restore(pmoctree.Config{NVBMDevice: nv})
	if err != nil {
		log.Fatalf("restore: %v", err)
	}
	got := leafData(restored)
	if len(got) != len(committed) {
		log.Fatalf("restored %d leaves, want %d", len(got), len(committed))
	}
	for c, v := range committed {
		if got[c] != v {
			log.Fatalf("leaf %v corrupted: %v != %v", c, got[c], v)
		}
	}
	fmt.Printf("restored %d elements, bit-identical to the committed version\n", len(got))

	// Orphans of the lost working version are reclaimed in the background.
	if freed := restored.GC(); freed > 0 {
		fmt.Printf("background GC reclaimed %d orphaned octants\n", freed)
	}

	// And the simulation simply continues from step 10.
	for s := crashStep; s <= steps; s++ {
		pmoctree.Step(restored, d, s, maxLevel)
		restored.SetFeatures(d.Feature(s + 1))
		restored.Persist()
	}
	fmt.Printf("simulation completed: %d elements at step %d\n", restored.LeafCount(), steps)
}

// leafData snapshots leaf fields keyed by locational code.
func leafData(t *pmoctree.Tree) map[pmoctree.Code][pmoctree.DataWords]float64 {
	out := map[pmoctree.Code][pmoctree.DataWords]float64{}
	t.ForEachLeaf(func(c pmoctree.Code, data [pmoctree.DataWords]float64) bool {
		out[c] = data
		return true
	})
	return out
}
