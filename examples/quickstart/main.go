// Quickstart: build an adaptive mesh on a PM-octree, commit it to NVBM,
// crash, and restore — the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"pmoctree"
)

func main() {
	// A PM-octree lives on two emulated devices: volatile DRAM for the
	// hot C0 tree and NVBM for everything persistent.
	nv := pmoctree.NewNVBM()
	dram := pmoctree.NewDRAM()
	tree := pmoctree.Create(pmoctree.Config{
		NVBMDevice:        nv,
		DRAMDevice:        dram,
		DRAMBudgetOctants: 1024,
	})

	// Refine around a spherical interface: an octant splits while its
	// region might cross the sphere of radius 0.3 about the center.
	surface := func(c pmoctree.Code) bool {
		x, y, z := c.Center()
		h := c.Extent() // conservative: within a cell size of the surface
		d := (x-0.5)*(x-0.5) + (y-0.5)*(y-0.5) + (z-0.5)*(z-0.5)
		lo, hi := 0.3-h, 0.3+h
		if lo < 0 {
			lo = 0
		}
		return d >= lo*lo && d <= hi*hi
	}
	tree.RefineWhere(surface, 5)
	tree.Balance() // enforce the 2:1 constraint
	fmt.Printf("meshed: %d elements\n", tree.LeafCount())

	// Store a field on the leaves (word 0: distance to the center).
	tree.UpdateLeaves(func(c pmoctree.Code, data *[pmoctree.DataWords]float64) bool {
		x, y, z := c.Center()
		data[0] = (x-0.5)*(x-0.5) + (y-0.5)*(y-0.5) + (z-0.5)*(z-0.5)
		return true
	})

	// Commit: after Persist, the whole version is durable in NVBM; the
	// commit point is a single 8-byte root store.
	tree.Persist()
	fmt.Printf("persisted version %d (%v)\n", tree.Step()-1, nv.Stats())

	// Disaster strikes mid-step: new refinement is underway when the
	// machine loses power. DRAM contents vanish; NVBM survives.
	tree.RefineWhere(func(c pmoctree.Code) bool { return c.Level() < 2 }, 6)
	dram.Crash()

	// Restore from the surviving NVBM device: pm_restore returns the
	// last committed version without moving any octant data.
	restored, err := pmoctree.Restore(pmoctree.Config{NVBMDevice: nv})
	if err != nil {
		log.Fatalf("restore: %v", err)
	}
	fmt.Printf("restored: %d elements at version %d\n", restored.LeafCount(), restored.Step()-1)
	if err := restored.Validate(); err != nil {
		log.Fatalf("validation: %v", err)
	}
	fmt.Println("restored tree validates: the committed version survived the crash intact")
}
