// Boiling: the third workload the paper's introduction motivates — rapid
// boiling flow (nucleate boiling). Vapor bubbles form on a heated floor
// under a liquid pool, grow, detach and rise; the adaptive mesh tracks
// every bubble surface and the pool's free surface, and each step is
// committed to NVBM.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"pmoctree"
)

func main() {
	const (
		steps    = 20
		maxLevel = 5
	)
	tree := pmoctree.Create(pmoctree.Config{DRAMBudgetOctants: 2048})
	b := pmoctree.NewBoiling(pmoctree.BoilingConfig{Steps: steps, Sites: 8, Seed: 42})

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "step\tbubbles\telements\trefined\tcoarsened\toverlap")
	tree.SetFeatures(pmoctree.WorkloadFeature(b, 1))
	for s := 1; s <= steps; s++ {
		sc := pmoctree.Step(tree, b, s, maxLevel)
		vs := tree.VersionStats()
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.0f%%\n",
			s, b.ActiveBubbles(float64(s)/steps), sc.Leaves, sc.Refined, sc.Coarsened,
			vs.OverlapRatio*100)
		tree.SetFeatures(pmoctree.WorkloadFeature(b, s+1))
		tree.Persist()
	}
	w.Flush()

	hm := pmoctree.Extract(tree.ForEachLeaf)
	fmt.Printf("\nfinal mesh: %d elements across levels %v\n",
		len(hm.Elements), keysOf(hm.LevelHistogram()))
	fmt.Println("every step above is durable: a crash at any point would restore the last row")
}

func keysOf(h map[uint8]int) []int {
	var out []int
	for l := uint8(0); l <= 19; l++ {
		if h[l] > 0 {
			out = append(out, int(l))
		}
	}
	return out
}
