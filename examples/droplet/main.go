// Droplet ejection — the paper's driving scientific workload (§5.1) — on
// the public API: a liquid jet leaves the nozzle, necks, pinches off, and
// breaks into droplets by capillary instability, while the adaptive mesh
// tracks the moving interface and every time step is committed to NVBM.
package main

import (
	"fmt"
	"text/tabwriter"

	"os"

	"pmoctree"
)

func main() {
	const (
		steps    = 24
		maxLevel = 5
	)
	tree := pmoctree.Create(pmoctree.Config{DRAMBudgetOctants: 1024})
	d := pmoctree.NewDroplet(pmoctree.DropletConfig{Steps: steps})

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "step\tphase\telements\tliquid volume\toverlap")
	tree.SetFeatures(d.Feature(1))
	for s := 1; s <= steps; s++ {
		pmoctree.Step(tree, d, s, maxLevel)

		// Integrate the liquid volume from the leaf volume fractions.
		vol := 0.0
		tree.ForEachLeaf(func(c pmoctree.Code, data [pmoctree.DataWords]float64) bool {
			e := c.Extent()
			vol += data[0] * e * e * e
			return true
		})

		vs := tree.VersionStats()
		fmt.Fprintf(w, "%d\t%s\t%d\t%.5f\t%.0f%%\n",
			s, phase(float64(s)/steps), tree.LeafCount(), vol, vs.OverlapRatio*100)

		// Hand the next step's refinement criterion to feature-directed
		// sampling, then commit.
		tree.SetFeatures(d.Feature(s + 1))
		tree.Persist()
	}
	w.Flush()

	// Extract the final unstructured mesh, as a visualization pipeline
	// would.
	hm := pmoctree.Extract(tree.ForEachLeaf)
	fmt.Printf("\nfinal mesh: %d hexahedra, %d nodes (%d anchored, %d hanging)\n",
		len(hm.Elements), len(hm.Vertices), hm.AnchoredCount(), hm.DanglingCount())
	for level, n := range hm.LevelHistogram() {
		fmt.Printf("  level %d: %d elements\n", level, n)
	}
}

// phase names the stage of the ejection at normalized time t.
func phase(t float64) string {
	switch {
	case t < 0.35:
		return "jet + necking"
	case t < 0.6:
		return "pinched ligament"
	default:
		return "droplet breakup"
	}
}
