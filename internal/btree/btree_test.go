package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if _, ok := tr.Get(42); ok {
		t.Error("Get on empty tree found a key")
	}
	if tr.Delete(42) {
		t.Error("Delete on empty tree reported success")
	}
	if tr.Height() != 1 {
		t.Errorf("Height = %d", tr.Height())
	}
}

func TestPutGet(t *testing.T) {
	tr := New()
	tr.Put(5, 50)
	tr.Put(3, 30)
	tr.Put(7, 70)
	for k, want := range map[uint64]int{5: 50, 3: 30, 7: 70} {
		if v, ok := tr.Get(k); !ok || v != want {
			t.Errorf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := tr.Get(4); ok {
		t.Error("found absent key")
	}
}

func TestPutReplaces(t *testing.T) {
	tr := New()
	tr.Put(1, 10)
	tr.Put(1, 11)
	if tr.Len() != 1 {
		t.Errorf("Len = %d after replace", tr.Len())
	}
	if v, _ := tr.Get(1); v != 11 {
		t.Errorf("Get = %d", v)
	}
}

func TestLargeSequentialInsert(t *testing.T) {
	tr := New()
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Put(uint64(i), i*2)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Errorf("Height = %d; tree never split", tr.Height())
	}
	for i := 0; i < n; i++ {
		if v, ok := tr.Get(uint64(i)); !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandomInsertDelete(t *testing.T) {
	tr := New()
	r := rand.New(rand.NewSource(3))
	keys := r.Perm(5000)
	for _, k := range keys {
		tr.Put(uint64(k), k)
	}
	for _, k := range keys[:2500] {
		if !tr.Delete(uint64(k)) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if tr.Len() != 2500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, k := range keys[:2500] {
		if _, ok := tr.Get(uint64(k)); ok {
			t.Fatalf("deleted key %d still present", k)
		}
	}
	for _, k := range keys[2500:] {
		if _, ok := tr.Get(uint64(k)); !ok {
			t.Fatalf("surviving key %d lost", k)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i += 2 {
		tr.Put(uint64(i), i)
	}
	var got []uint64
	tr.Ascend(31, func(k uint64, _ int) bool {
		got = append(got, k)
		return len(got) < 5
	})
	want := []uint64{32, 34, 36, 38, 40}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAscendFromExistingKey(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Put(uint64(i), i)
	}
	var first uint64 = 999
	tr.Ascend(25, func(k uint64, _ int) bool {
		first = k
		return false
	})
	if first != 25 {
		t.Errorf("Ascend(25) started at %d", first)
	}
}

func TestTouchAccounting(t *testing.T) {
	tr := New()
	touches := 0
	tr.Touch = func() { touches++ }
	for i := 0; i < 1000; i++ {
		tr.Put(uint64(i), i)
	}
	touches = 0
	tr.Get(500)
	if touches < tr.Height() {
		t.Errorf("Get touched %d nodes, height is %d", touches, tr.Height())
	}
	// Index cost grows with height: a lookup must touch at least one
	// node per level.
	if touches > tr.Height()+1 {
		t.Errorf("Get touched %d nodes for height %d", touches, tr.Height())
	}
}

// Property: the tree agrees with a reference map under random operations.
func TestQuickMapEquivalence(t *testing.T) {
	f := func(ops []struct {
		Key uint64
		Val int
		Del bool
	}) bool {
		tr := New()
		ref := map[uint64]int{}
		for _, op := range ops {
			k := op.Key % 512 // force collisions
			if op.Del {
				_, inRef := ref[k]
				if tr.Delete(k) != inRef {
					return false
				}
				delete(ref, k)
			} else {
				tr.Put(k, op.Val)
				ref[k] = op.Val
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Ascend(0) yields all keys in sorted order.
func TestQuickAscendSorted(t *testing.T) {
	f := func(keys []uint64) bool {
		tr := New()
		uniq := map[uint64]bool{}
		for _, k := range keys {
			tr.Put(k, 1)
			uniq[k] = true
		}
		var want []uint64
		for k := range uniq {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []uint64
		tr.Ascend(0, func(k uint64, _ int) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
