// Package btree implements the order-configurable B-tree that the
// out-of-core Etree baseline uses to index octant pages by Z-value
// (locational code). Following the Etree design (Tu, Lopez, O'Hallaron,
// CMU-CS-03-174), the index maps a key to the id of the 4 KiB page holding
// the octant's payload; every probe of the index is charged to the backing
// device by the caller through the Touch callback, modeling index pages
// that themselves live on the slow medium.
package btree

import "fmt"

// Order is the maximum number of children per interior node. 2*Order keys
// would not fit an index page in a real Etree; 64 is representative.
const Order = 64

// Tree is an in-memory B-tree of uint64 keys to int values with an access
// callback for cost accounting.
type Tree struct {
	root *node
	size int
	// Touch, when non-nil, is invoked once per node visited by any
	// operation, so the owner can charge index I/O to a device.
	Touch func()
}

type node struct {
	keys     []uint64
	vals     []int   // leaf payloads, parallel to keys (leaves only)
	children []*node // interior fan-out (len = len(keys)+1)
	leaf     bool
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

func (t *Tree) touch() {
	if t.Touch != nil {
		t.Touch()
	}
}

// Get returns the value for key and whether it exists.
func (t *Tree) Get(key uint64) (int, bool) {
	n := t.root
	for {
		t.touch()
		i := search(n.keys, key)
		if n.leaf {
			if i < len(n.keys) && n.keys[i] == key {
				return n.vals[i], true
			}
			return 0, false
		}
		if i < len(n.keys) && n.keys[i] == key {
			i++ // equal keys route right
		}
		n = n.children[i]
	}
}

// Put inserts or replaces the value for key.
func (t *Tree) Put(key uint64, val int) {
	r := t.root
	if len(r.keys) >= 2*Order-1 {
		nr := &node{children: []*node{r}}
		nr.split(0)
		t.root = nr
	}
	if t.insertNonFull(t.root, key, val) {
		t.size++
	}
}

// insertNonFull inserts into a node known to have room; reports whether a
// new key was added (false on replace).
func (t *Tree) insertNonFull(n *node, key uint64, val int) bool {
	for {
		t.touch()
		i := search(n.keys, key)
		if n.leaf {
			if i < len(n.keys) && n.keys[i] == key {
				n.vals[i] = val
				return false
			}
			n.keys = append(n.keys, 0)
			n.vals = append(n.vals, 0)
			copy(n.keys[i+1:], n.keys[i:])
			copy(n.vals[i+1:], n.vals[i:])
			n.keys[i] = key
			n.vals[i] = val
			return true
		}
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		child := n.children[i]
		if len(child.keys) >= 2*Order-1 {
			n.split(i)
			if key >= n.keys[i] {
				i++
			}
		}
		n = n.children[i]
	}
}

// split divides the full child i of n around its median key.
func (n *node) split(i int) {
	child := n.children[i]
	mid := len(child.keys) / 2
	midKey := child.keys[mid]

	right := &node{leaf: child.leaf}
	if child.leaf {
		// Leaves keep the median in the right sibling (B+-style).
		right.keys = append(right.keys, child.keys[mid:]...)
		right.vals = append(right.vals, child.vals[mid:]...)
		child.keys = child.keys[:mid]
		child.vals = child.vals[:mid]
	} else {
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid]
		child.children = child.children[:mid+1]
	}

	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = midKey
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Delete removes key, reporting whether it existed. Underflowed nodes are
// left lazy (Etree tolerates sparse index pages; rebalancing on delete is
// not load-bearing for the experiments).
func (t *Tree) Delete(key uint64) bool {
	n := t.root
	for {
		t.touch()
		i := search(n.keys, key)
		if n.leaf {
			if i < len(n.keys) && n.keys[i] == key {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.vals = append(n.vals[:i], n.vals[i+1:]...)
				t.size--
				return true
			}
			return false
		}
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		n = n.children[i]
	}
}

// Ascend visits keys in ascending order starting at >= from, until fn
// returns false.
func (t *Tree) Ascend(from uint64, fn func(key uint64, val int) bool) {
	t.ascend(t.root, from, fn)
}

func (t *Tree) ascend(n *node, from uint64, fn func(uint64, int) bool) bool {
	t.touch()
	i := search(n.keys, from)
	if n.leaf {
		for ; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
		return true
	}
	if i < len(n.keys) && n.keys[i] == from {
		i++
	}
	for ; i < len(n.children); i++ {
		if !t.ascend(n.children[i], from, fn) {
			return false
		}
		if i < len(n.keys) {
			from = n.keys[i]
		}
	}
	return true
}

// Height returns the tree height (1 for a lone leaf); the per-lookup index
// cost grows with it.
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// Validate checks B-tree ordering invariants; used by tests.
func (t *Tree) Validate() error {
	var last *uint64
	ok := true
	t.Ascend(0, func(k uint64, _ int) bool {
		if last != nil && k < *last {
			ok = false
			return false
		}
		v := k
		last = &v
		return true
	})
	if !ok {
		return fmt.Errorf("btree: keys out of order")
	}
	n := 0
	t.Ascend(0, func(uint64, int) bool { n++; return true })
	if n != t.size {
		return fmt.Errorf("btree: size %d but %d keys reachable", t.size, n)
	}
	return nil
}

// search returns the first index i with keys[i] >= key.
func search(keys []uint64, key uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
