package cluster

import (
	"errors"
	"math/rand"
)

// ErrLinkFailure is returned by LossyNetwork.Ship when a frame could not
// be delivered within the retry budget; the receiver's copy is now stale
// (degraded mode) until a later frame succeeds.
var ErrLinkFailure = errors.New("cluster: frame undeliverable within retry budget")

// LossyNetwork wraps an alpha-beta Network with a seeded fault model for
// replica shipping: each delivery attempt is independently dropped (the
// frame vanishes; the sender notices via timeout) or corrupted (the
// receiver's checksum verify fails and it NACKs) with the configured
// probabilities. Ship retries with exponential backoff up to RetryLimit
// re-sends, charging modeled time for every attempt, and reports a link
// failure when the budget is exhausted.
//
// The model is deterministic for a fixed seed and call sequence; it is
// not safe for concurrent use, matching the serial replica pipeline.
type LossyNetwork struct {
	Net         Network
	DropProb    float64 // per-attempt probability the frame is lost in flight
	CorruptProb float64 // per-attempt probability the frame arrives damaged
	RetryLimit  int     // re-sends after the first attempt
	BackoffNs   float64 // backoff before the first re-send; doubles per retry
	TimeoutNs   float64 // sender wait before declaring a frame dropped

	rng   *rand.Rand
	stats LossyStats
}

// LossyStats counts delivery outcomes and the modeled time they cost.
type LossyStats struct {
	Frames     uint64  // Ship calls
	Attempts   uint64  // individual sends, including retries
	Delivered  uint64  // frames that eventually arrived intact
	Drops      uint64  // attempts lost in flight
	Corrupts   uint64  // attempts that arrived damaged (checksum NACK)
	Failures   uint64  // frames abandoned after the retry budget
	TransferNs float64 // modeled wire time, all attempts
	BackoffNs  float64 // modeled backoff + timeout waiting
}

// NewLossyNetwork builds a lossy link over net with the given per-attempt
// drop and corrupt probabilities and the given RNG seed. Retry and
// backoff parameters default to 4 re-sends, a backoff of 10x the network
// alpha, and a drop-detection timeout of 4x the alpha.
func NewLossyNetwork(net Network, dropProb, corruptProb float64, seed int64) *LossyNetwork {
	return &LossyNetwork{
		Net:         net,
		DropProb:    dropProb,
		CorruptProb: corruptProb,
		RetryLimit:  4,
		BackoffNs:   10 * net.AlphaNs,
		TimeoutNs:   4 * net.AlphaNs,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// Ship models reliably delivering one checksummed frame of the given wire
// size: send, and on drop (timeout) or corruption (NACK) back off
// exponentially and re-send, up to RetryLimit re-sends. It returns the
// total modeled nanoseconds spent — successful or not — and ErrLinkFailure
// when the frame never got through.
func (l *LossyNetwork) Ship(bytes int) (float64, error) {
	l.stats.Frames++
	var ns float64
	for attempt := 0; attempt <= l.RetryLimit; attempt++ {
		if attempt > 0 {
			b := l.BackoffNs * float64(uint64(1)<<(attempt-1))
			ns += b
			l.stats.BackoffNs += b
		}
		l.stats.Attempts++
		c := l.Net.Transfer(bytes)
		ns += c
		l.stats.TransferNs += c
		r := l.rng.Float64()
		switch {
		case r < l.DropProb:
			l.stats.Drops++
			ns += l.TimeoutNs
			l.stats.BackoffNs += l.TimeoutNs
		case r < l.DropProb+l.CorruptProb:
			l.stats.Corrupts++
			// The NACK is a tiny control message back to the sender.
			n := l.Net.Transfer(16)
			ns += n
			l.stats.TransferNs += n
		default:
			l.stats.Delivered++
			return ns, nil
		}
	}
	l.stats.Failures++
	return ns, ErrLinkFailure
}

// Stats returns the accumulated delivery statistics.
func (l *LossyNetwork) Stats() LossyStats { return l.stats }
