package cluster

import (
	"sort"

	"pmoctree/internal/core"
	"pmoctree/internal/morton"
	"pmoctree/internal/sim"
)

// globalBalance enforces the 2:1 constraint ACROSS rank boundaries. Each
// rank's local Balance (run before this) cannot see octants owned by its
// neighbors, so a fine leaf on one side of a partition boundary may abut
// a much coarser leaf on the other side. The distributed protocol:
//
//  1. every rank publishes its owned leaf codes (the ghost exchange);
//  2. each rank probes its boundary leaves' face neighbors against the
//     global leaf set and collects too-coarse leaves it OWNS;
//  3. owners refine their violators; repeat until no rank reports one
//     (ripple refinement crosses boundaries at most once per level).
//
// Ranks work in parallel, so the modeled time per round is the MAX of the
// per-rank costs plus the collective exchange. Returns the refine count,
// round count, and total modeled nanoseconds.
func globalBalance(cfg Config, ranks []*rank) (refined, rounds int, modeledNs float64) {
	perRankNs := make([]float64, len(ranks))
	for {
		rounds++
		// 1. Gather the global leaf set; the scan is per-rank work, the
		// exchange a collective over boundary layers.
		global := map[morton.Code]bool{}
		maxBoundary := 0
		for _, r := range ranks {
			m0 := r.memNs()
			n := 0
			r.mesh.ForEachLeaf(func(c morton.Code, _ [sim.DataWords]float64) bool {
				if r.ownsLeaf(c) {
					global[c] = true
					n++
				}
				return true
			})
			perRankNs[r.id] += r.memNs() - m0 + float64(n)*cfg.Cost.TraverseNs
			if b := surfaceOf(n); b > maxBoundary {
				maxBoundary = b
			}
		}
		modeledNs += cfg.Net.Collective(len(ranks), maxBoundary*core.RecordSize)

		// 2. Find cross-boundary violations: for every leaf, any face
		// neighbor whose containing leaf is 2+ levels coarser.
		findLeaf := func(code morton.Code) (morton.Code, bool) {
			for l := int(code.Level()); l >= 0; l-- {
				anc := code.AncestorAt(uint8(l))
				if global[anc] {
					return anc, true
				}
			}
			return 0, false
		}
		violators := map[morton.Code]bool{}
		var scratch [6]morton.Code
		for c := range global {
			if c.Level() < 2 {
				continue
			}
			parent := c.Parent()
			for _, nb := range c.FaceNeighbors(scratch[:0]) {
				if nb.Parent() == parent {
					continue
				}
				leaf, ok := findLeaf(nb)
				if ok && c.Level()-leaf.Level() > 1 {
					violators[leaf] = true
				}
			}
		}
		if len(violators) == 0 {
			max := 0.0
			for _, ns := range perRankNs {
				if ns > max {
					max = ns
				}
			}
			return refined, rounds, modeledNs + max
		}

		// 3. Owners refine their violators in parallel. RefineWhere
		// descends from the root, so restrict the predicate to exact
		// violator codes.
		codes := make([]morton.Code, 0, len(violators))
		for c := range violators {
			codes = append(codes, c)
		}
		sort.Slice(codes, func(i, j int) bool { return codes[i].Less(codes[j]) })
		for _, r := range ranks {
			owned := map[morton.Code]bool{}
			for _, c := range codes {
				if r.ownsLeaf(c) {
					owned[c] = true
				}
			}
			if len(owned) == 0 {
				continue
			}
			maxL := uint8(0)
			for c := range owned {
				if l := c.Level() + 1; l > maxL {
					maxL = l
				}
			}
			m0 := r.memNs()
			n := r.mesh.RefineWhere(func(c morton.Code) bool {
				return owned[c]
			}, maxL)
			perRankNs[r.id] += r.memNs() - m0 + float64(n)*cfg.Cost.BalanceNs
			refined += n
		}
	}
}

// surfaceOf approximates the boundary-layer size of an n-leaf subdomain.
func surfaceOf(n int) int {
	if n <= 0 {
		return 0
	}
	s := 1
	for s*s*s < n*n {
		s++
	}
	return s // ~ n^(2/3)
}
