package cluster

import (
	"sort"
	"sync"

	"pmoctree/internal/core"
	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/parallel"
	"pmoctree/internal/sim"
	"pmoctree/internal/telemetry"
)

// Config parameterizes one distributed simulation run.
type Config struct {
	// Ranks is the number of simulated processes.
	Ranks int
	// Impl selects the octree implementation.
	Impl Impl
	// MaxLevel bounds mesh refinement depth.
	MaxLevel uint8
	// Steps is the number of AMR time steps to run.
	Steps int
	// StartStep offsets the workload time (default 1).
	StartStep int
	// Jets is the number of nozzles (default: Ranks, one jet per rank —
	// weak scaling adds jets with ranks).
	Jets int
	// DropletSteps is the nominal workload length (default 100).
	DropletSteps int
	// DRAMBudgetOctants is each rank's C0 capacity (PM-octree only).
	DRAMBudgetOctants int
	// DisableTransform turns off PM-octree's dynamic layout
	// transformation (Figure 11's baseline).
	DisableTransform bool
	// Net is the interconnect model (zero value: Gemini).
	Net Network
	// Cost prices CPU work (zero value: DefaultCost).
	Cost CostModel
	// Workers bounds simulation parallelism (default GOMAXPROCS).
	Workers int
	// Seed drives deterministic sampling.
	Seed int64
	// Obs, when set, receives per-rank routine events on the modeled
	// clock (one trace thread per rank, BSP barriers visible as idle
	// gaps) and one StepRecord per step. Nil runs without telemetry.
	Obs *telemetry.Observer
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.Impl == "" {
		c.Impl = PMOctree
	}
	if c.MaxLevel == 0 {
		c.MaxLevel = 4
	}
	if c.Steps <= 0 {
		c.Steps = 3
	}
	if c.StartStep <= 0 {
		c.StartStep = 1
	}
	if c.Jets <= 0 {
		c.Jets = c.Ranks
	}
	if c.DropletSteps <= 0 {
		c.DropletSteps = 100
	}
	if c.DRAMBudgetOctants <= 0 {
		c.DRAMBudgetOctants = 512
	}
	if c.Net == (Network{}) {
		c.Net = Gemini()
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCost()
	}
	c.Workers = parallel.Clamp(c.Workers)
	return c
}

// RoutineTimes records modeled nanoseconds per §2 routine. In a
// bulk-synchronous step each routine's time is the maximum over ranks.
type RoutineTimes struct {
	RefineNs    float64
	CoarsenNs   float64
	BalanceNs   float64
	SolveNs     float64
	PartitionNs float64
	PersistNs   float64
}

// TotalNs sums the routines.
func (t RoutineTimes) TotalNs() float64 {
	return t.RefineNs + t.CoarsenNs + t.BalanceNs + t.SolveNs + t.PartitionNs + t.PersistNs
}

// TotalSeconds converts to seconds.
func (t RoutineTimes) TotalSeconds() float64 { return t.TotalNs() / 1e9 }

// add accumulates o into t.
func (t *RoutineTimes) add(o RoutineTimes) {
	t.RefineNs += o.RefineNs
	t.CoarsenNs += o.CoarsenNs
	t.BalanceNs += o.BalanceNs
	t.SolveNs += o.SolveNs
	t.PartitionNs += o.PartitionNs
	t.PersistNs += o.PersistNs
}

// Fractions returns each routine's share of the total, in the order
// Refine, Coarsen, Balance, Solve, Partition, Persist (Figure 7/8(b)).
func (t RoutineTimes) Fractions() [6]float64 {
	tot := t.TotalNs()
	if tot == 0 {
		return [6]float64{}
	}
	return [6]float64{
		t.RefineNs / tot, t.CoarsenNs / tot, t.BalanceNs / tot,
		t.SolveNs / tot, t.PartitionNs / tot, t.PersistNs / tot,
	}
}

// StepReport describes one completed step.
type StepReport struct {
	Step     int
	Times    RoutineTimes
	Elements int // global owned leaves after the step
	MaxRank  int // most loaded rank's owned leaves
	MinRank  int // least loaded rank's owned leaves
	// Overlap is the mean PM-octree version-overlap ratio across ranks,
	// measured before Persist. Only computed when telemetry is attached.
	Overlap float64
}

// Result is a completed simulation.
type Result struct {
	Config   Config
	Steps    []StepReport
	Total    RoutineTimes
	Elements int
	NVBM     nvbm.Stats   // aggregated over ranks
	PM       core.OpStats // aggregated PM-octree operation counters
}

// Run executes the distributed simulation and returns its report.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	d := sim.NewDroplet(sim.DropletConfig{Steps: cfg.DropletSteps, Jets: cfg.Jets})

	ranks := make([]*rank, cfg.Ranks)
	span := morton.Root
	_, maxKey := span.KeySpan()
	step := maxKey/uint64(cfg.Ranks) + 1
	for i := range ranks {
		ranks[i] = newRank(i, cfg.Impl, cfg.DRAMBudgetOctants, cfg.DisableTransform, cfg.Seed)
		ranks[i].lo = uint64(i) * step
		ranks[i].hi = uint64(i+1) * step
		if i == cfg.Ranks-1 {
			ranks[i].hi = maxKey + 1
		}
	}

	res := Result{Config: cfg}
	// Per-rank modeled clocks for the telemetry timeline; every routine
	// barrier syncs them to the slowest rank (BSP semantics).
	clocks := make([]int64, cfg.Ranks)
	var prevNV nvbm.Stats
	var prevPM core.OpStats
	for s := cfg.StartStep; s < cfg.StartStep+cfg.Steps; s++ {
		rep := runStep(cfg, d, ranks, s, clocks)
		res.Total.add(rep.Times)
		res.Steps = append(res.Steps, rep)
		res.Elements = rep.Elements
		if cfg.Obs != nil {
			prevNV, prevPM = recordStep(cfg.Obs, ranks, rep, prevNV, prevPM)
		}
	}
	for _, r := range ranks {
		res.NVBM = res.NVBM.Add(r.nvbmStats())
		if r.pm != nil {
			s := r.pm.Stats()
			res.PM.Refines += s.Refines
			res.PM.Coarsens += s.Coarsens
			res.PM.Copies += s.Copies
			res.PM.Merges += s.Merges
			res.PM.Persists += s.Persists
			res.PM.GCs += s.GCs
			res.PM.GCFreed += s.GCFreed
			res.PM.Transforms += s.Transforms
		}
	}
	return res
}

// perRank runs fn for every rank on a bounded worker pool and returns the
// per-rank modeled times; the caller reduces with max (BSP semantics).
// workers <= 0 (a caller bypassing Config.withDefaults) is normalized to
// GOMAXPROCS: workers=0 previously deadlocked on the zero-capacity
// semaphore before any worker ran, and negative counts panicked in make.
func perRank(ranks []*rank, workers int, fn func(*rank) float64) []float64 {
	workers = parallel.Clamp(workers)
	out := make([]float64, len(ranks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, r := range ranks {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, r *rank) {
			defer wg.Done()
			out[i] = fn(r)
			<-sem
		}(i, r)
	}
	wg.Wait()
	return out
}

// maxOf returns the maximum element. Initializing from the first element
// (not 0) keeps the reduction honest for all-negative inputs — a modeled
// duration should never be negative, but a bug that makes one should
// surface as a negative barrier, not be silently clamped to zero — and
// makes the empty slice's 0 an explicit, documented case.
func maxOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// emitRoutine publishes one routine's per-rank durations as trace events
// on the modeled clock and advances every rank's clock to the barrier
// (the slowest rank): idle time before the barrier shows up as a gap in
// the timeline.
func emitRoutine(obs *telemetry.Observer, clocks []int64, name string, step int, durs []float64) {
	if obs == nil {
		return
	}
	barrier := int64(maxOf(durs))
	for i, d := range durs {
		obs.Trace.Emit(telemetry.Event{
			Name:      name,
			Rank:      i,
			Step:      uint64(step),
			StartNs:   clocks[i],
			DurNs:     int64(d),
			ModeledNs: uint64(d),
		})
	}
	for i := range clocks {
		clocks[i] += barrier
	}
}

// recordStep folds one completed step into the observer's timeline and
// returns the updated previous-snapshot counters for the next delta.
func recordStep(obs *telemetry.Observer, ranks []*rank, rep StepReport, prevNV nvbm.Stats, prevPM core.OpStats) (nvbm.Stats, core.OpStats) {
	var nv nvbm.Stats
	var pm core.OpStats
	for _, r := range ranks {
		nv = nv.Add(r.nvbmStats())
		if r.pm != nil {
			s := r.pm.Stats()
			pm.Merges += s.Merges
			pm.GCFreed += s.GCFreed
			pm.Copies += s.Copies
		}
	}
	d := nv.Sub(prevNV)
	t := rep.Times
	obs.RecordStep(telemetry.StepRecord{
		Step:       rep.Step,
		Elements:   rep.Elements,
		ModeledNs:  uint64(t.TotalNs()),
		NVBMReads:  d.Reads,
		NVBMWrites: d.Writes,
		Overlap:    rep.Overlap,
		Merges:     uint64(pm.Merges - prevPM.Merges),
		GCFreed:    uint64(pm.GCFreed - prevPM.GCFreed),
		Copies:     uint64(pm.Copies - prevPM.Copies),
		Phases: []telemetry.PhaseStat{
			{Name: "Refine", ModeledNs: uint64(t.RefineNs)},
			{Name: "Coarsen", ModeledNs: uint64(t.CoarsenNs)},
			{Name: "Balance", ModeledNs: uint64(t.BalanceNs)},
			{Name: "Solve", ModeledNs: uint64(t.SolveNs)},
			{Name: "Persist", ModeledNs: uint64(t.PersistNs)},
			{Name: "Partition", ModeledNs: uint64(t.PartitionNs)},
		},
	})
	return nv, pm
}

// runStep advances all ranks through one bulk-synchronous AMR step.
func runStep(cfg Config, d *sim.Droplet, ranks []*rank, s int, clocks []int64) StepReport {
	rep := StepReport{Step: s}
	refine := d.RefinePred(s)
	coarsen := d.CoarsenPred(s)
	solve := d.Solve(s)

	// Refine.
	durs := perRank(ranks, cfg.Workers, func(r *rank) float64 {
		m0 := r.memNs()
		visited := r.mesh.LeafCount()
		n := r.mesh.RefineWhere(r.refinePred(refine), cfg.MaxLevel)
		return r.memNs() - m0 + float64(n)*cfg.Cost.RefineNs + float64(visited)*cfg.Cost.TraverseNs
	})
	rep.Times.RefineNs = maxOf(durs)
	emitRoutine(cfg.Obs, clocks, "Refine", s, durs)

	// Coarsen.
	durs = perRank(ranks, cfg.Workers, func(r *rank) float64 {
		m0 := r.memNs()
		visited := r.mesh.LeafCount()
		n := r.mesh.CoarsenWhere(r.coarsenPred(coarsen))
		return r.memNs() - m0 + float64(n)*cfg.Cost.CoarsenNs + float64(visited)*cfg.Cost.TraverseNs
	})
	rep.Times.CoarsenNs = maxOf(durs)
	emitRoutine(cfg.Obs, clocks, "Coarsen", s, durs)

	// Balance: local pass per rank, then the distributed cross-boundary
	// protocol (ghost exchange + ripple refinement across partitions).
	durs = perRank(ranks, cfg.Workers, func(r *rank) float64 {
		m0 := r.memNs()
		visited := r.mesh.LeafCount()
		n := r.mesh.Balance()
		comm := cfg.Net.Transfer(r.surfaceLeafEstimate() * core.RecordSize)
		return r.memNs() - m0 + float64(n)*cfg.Cost.BalanceNs + float64(visited)*cfg.Cost.TraverseNs + comm
	})
	rep.Times.BalanceNs = maxOf(durs)
	if cfg.Ranks > 1 {
		_, _, globalNs := globalBalance(cfg, ranks)
		rep.Times.BalanceNs += globalNs
		// The cross-boundary protocol involves every rank.
		for i := range durs {
			durs[i] += globalNs
		}
	}
	emitRoutine(cfg.Obs, clocks, "Balance", s, durs)

	// Solve on owned leaves: several relaxation sweeps per step.
	durs = perRank(ranks, cfg.Workers, func(r *rank) float64 {
		m0 := r.memNs()
		cpu := 0.0
		for it := 0; it < sim.SolverSweeps; it++ {
			owned := 0
			n := r.mesh.UpdateLeaves(func(c morton.Code, data *[sim.DataWords]float64) bool {
				if !r.ownsLeaf(c) {
					return false
				}
				owned++
				return solve(c, data)
			})
			r.ownedLeaves = owned
			cpu += float64(n)*cfg.Cost.SolveNs + float64(owned)*cfg.Cost.TraverseNs
		}
		return r.memNs() - m0 + cpu
	})
	rep.Times.SolveNs = maxOf(durs)
	emitRoutine(cfg.Obs, clocks, "Solve", s, durs)

	// Version overlap is measured before Persist collapses the working
	// version into the committed one; the walk suspends accounting, so
	// it is only paid when telemetry is attached.
	if cfg.Obs != nil {
		overlap, n := 0.0, 0
		for _, r := range ranks {
			if r.pm != nil {
				overlap += r.pm.VersionStats().OverlapRatio
				n++
			}
		}
		if n > 0 {
			rep.Overlap = overlap / float64(n)
		}
	}

	// Persist per each implementation's policy.
	durs = perRank(ranks, cfg.Workers, func(r *rank) float64 {
		m0 := r.memNs()
		switch {
		case r.pm != nil:
			r.pm.SetFeatures(d.Feature(s + 1))
			r.pm.Persist()
		case r.incore != nil:
			if err := r.incore.PersistStep(s); err != nil {
				panic(err)
			}
		case r.etree != nil:
			// The octant database is always consistent; nothing to do.
		}
		return r.memNs() - m0
	})
	rep.Times.PersistNs = maxOf(durs)
	emitRoutine(cfg.Obs, clocks, "Persist", s, durs)

	// Partition: rebalance the space-filling-curve split.
	rep.Times.PartitionNs, rep.Elements, rep.MaxRank, rep.MinRank = partition(cfg, ranks)
	if cfg.Obs != nil {
		pdurs := make([]float64, len(ranks))
		for i := range pdurs {
			pdurs[i] = rep.Times.PartitionNs
		}
		emitRoutine(cfg.Obs, clocks, "Partition", s, pdurs)
	}
	return rep
}

// partition gathers the global owned-leaf key distribution, splits it
// evenly, reassigns rank intervals, and models the communication: an
// all-ranks splitter exchange plus migration of octants whose owner
// changed.
func partition(cfg Config, ranks []*rank) (ns float64, elements, maxRank, minRank int) {
	perKeys := make([][]uint64, len(ranks))
	perRank(ranks, cfg.Workers, func(r *rank) float64 {
		perKeys[r.id] = r.ownedLeafKeys(nil)
		return 0
	})
	var all []uint64
	for _, k := range perKeys {
		all = append(all, k...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	elements = len(all)
	if elements == 0 {
		return 0, 0, 0, 0
	}

	// New boundaries: equal leaf counts per rank.
	p := len(ranks)
	newLo := make([]uint64, p)
	newHi := make([]uint64, p)
	for i := 0; i < p; i++ {
		a := i * elements / p
		if i == 0 {
			newLo[i] = 0
		} else {
			newLo[i] = all[a]
		}
		if i == p-1 {
			newHi[i] = ^uint64(0)
		} else {
			b := (i + 1) * elements / p
			newHi[i] = all[b]
		}
	}

	// Migration volume: keys whose owning rank changed, charged as
	// point-to-point octant transfers; coordination is an all-ranks
	// splitter exchange.
	moved := make([]int, p)
	owner := func(lo, hi []uint64, k uint64) int {
		return sort.Search(p, func(i int) bool { return k < hi[i] })
	}
	oldLo := make([]uint64, p)
	oldHi := make([]uint64, p)
	for i, r := range ranks {
		oldLo[i], oldHi[i] = r.lo, r.hi
	}
	for _, k := range all {
		was := owner(oldLo, oldHi, k)
		now := owner(newLo, newHi, k)
		if was != now && was < p && now < p {
			moved[was]++
			moved[now]++
		}
	}
	maxMoved := 0
	for _, m := range moved {
		if m > maxMoved {
			maxMoved = m
		}
	}

	maxOwned := 0
	minOwned := elements
	for i, r := range ranks {
		r.lo, r.hi = newLo[i], newHi[i]
		if n := len(perKeys[i]); true {
			if n > maxOwned {
				maxOwned = n
			}
			if n < minOwned {
				minOwned = n
			}
		}
	}

	perLeaf := float64(elements/p+1) * cfg.Cost.PartitionNs
	ns = cfg.Net.Exchange(p, 64) +
		cfg.Net.Transfer(maxMoved*core.RecordSize) +
		float64(maxMoved)*cfg.Cost.MigrateNs +
		perLeaf
	return ns, elements, maxOwned, minOwned
}
