package cluster

import (
	"fmt"
	"math"

	"pmoctree/internal/core"
	"pmoctree/internal/etree"
	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/sim"
)

// Impl selects the octree implementation a simulation runs on.
type Impl string

// The three implementations of §5.1.
const (
	// PMOctree is the paper's contribution (internal/core).
	PMOctree Impl = "pm-octree"
	// InCore is the Gerris-style DRAM octree with periodic snapshot
	// files on NVBM.
	InCore Impl = "in-core"
	// OutOfCore is the Etree-style paged linear octree on NVBM.
	OutOfCore Impl = "out-of-core"
)

// rank is one simulated MPI process.
type rank struct {
	id   int
	mesh sim.Mesh
	devs []*nvbm.Device
	// lo/hi bound the owned key interval [lo, hi).
	lo, hi uint64

	pm     *core.Tree // non-nil for PMOctree ranks
	incore *sim.InCore
	etree  *etree.Tree

	ownedLeaves int
}

// newRank builds a rank of the chosen implementation.
func newRank(id int, impl Impl, dramBudget int, disableTransform bool, seed int64) *rank {
	r := &rank{id: id}
	switch impl {
	case PMOctree:
		nv := nvbm.New(nvbm.NVBM, 0)
		dr := nvbm.New(nvbm.DRAM, 0)
		r.pm = core.Create(core.Config{
			NVBMDevice:        nv,
			DRAMDevice:        dr,
			DRAMBudgetOctants: dramBudget,
			DisableTransform:  disableTransform,
			Seed:              seed + int64(id),
		})
		r.mesh = r.pm
		r.devs = []*nvbm.Device{nv, dr}
	case InCore:
		snap := nvbm.New(nvbm.NVBM, 0)
		r.incore = sim.NewInCore(snap)
		r.mesh = r.incore
		// Both the modeled DRAM traffic of the pointer tree and the
		// snapshot device count toward the rank's memory time.
		r.devs = []*nvbm.Device{snap, r.incore.Mem}
	case OutOfCore:
		dev := nvbm.New(nvbm.NVBM, 0)
		r.etree = etree.New(dev)
		r.mesh = r.etree
		r.devs = []*nvbm.Device{dev}
	default:
		panic(fmt.Sprintf("cluster: unknown implementation %q", impl))
	}
	return r
}

// memNs sums modeled nanoseconds across the rank's devices.
func (r *rank) memNs() float64 {
	var ns uint64
	for _, d := range r.devs {
		ns += d.Stats().ModeledNs
	}
	return float64(ns)
}

// nvbmStats aggregates NVBM device statistics.
func (r *rank) nvbmStats() nvbm.Stats {
	var s nvbm.Stats
	for _, d := range r.devs {
		if d.Kind() == nvbm.NVBM {
			s = s.Add(d.Stats())
		}
	}
	return s
}

// ownsSpan reports whether the octant's descendant key span overlaps the
// rank's interval — the refinement-ownership test.
func (r *rank) ownsSpan(c morton.Code) bool {
	lo, hi := c.KeySpan()
	return lo < r.hi && r.lo <= hi
}

// ownsLeaf reports whether a leaf belongs to this rank (by its own key).
func (r *rank) ownsLeaf(c morton.Code) bool {
	k := c.Key()
	return r.lo <= k && k < r.hi
}

// refinePred restricts the workload's refinement to the owned interval.
func (r *rank) refinePred(base func(morton.Code) bool) func(morton.Code) bool {
	return func(c morton.Code) bool {
		return r.ownsSpan(c) && base(c)
	}
}

// coarsenPred coarsens where the workload allows it or where the rank no
// longer owns the region (migration-out after repartitioning).
func (r *rank) coarsenPred(base func(morton.Code) bool) func(morton.Code) bool {
	return func(c morton.Code) bool {
		if !r.ownsSpan(c) {
			return true
		}
		return base(c)
	}
}

// ownedLeafKeys appends the keys of leaves owned by this rank. PM-octree
// ranks prune the walk to the owned key interval; the baselines scan and
// filter.
func (r *rank) ownedLeafKeys(dst []uint64) []uint64 {
	if r.pm != nil {
		r.pm.ForEachLeafInRange(r.lo, r.hi, func(c morton.Code, _ [sim.DataWords]float64) bool {
			dst = append(dst, c.Key())
			return true
		})
		return dst
	}
	r.mesh.ForEachLeaf(func(c morton.Code, _ [sim.DataWords]float64) bool {
		if r.ownsLeaf(c) {
			dst = append(dst, c.Key())
		}
		return true
	})
	return dst
}

// surfaceLeafEstimate approximates the number of owned leaves on the
// rank's subdomain boundary (ghost-exchange volume for Balance):
// leaves^(2/3) for a compact 3-D region.
func (r *rank) surfaceLeafEstimate() int {
	return int(math.Ceil(math.Pow(float64(r.ownedLeaves), 2.0/3.0)))
}
