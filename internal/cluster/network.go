// Package cluster simulates the distributed execution of the meshing
// pipeline across MPI-style ranks, reproducing the weak- and
// strong-scaling experiments of §5.2-§5.3 at configurable scale.
//
// Each rank owns a contiguous interval of the space-filling curve (a
// Z-order key range) and an independent octree instance (PM-octree,
// in-core, or out-of-core) restricted to that interval. A step runs the
// §2 routine sequence — Refine & Coarsen, Balance, Solve, Persist — on
// every rank, then Partition recomputes the curve split from the global
// leaf distribution and migrates ownership. Routine times combine three
// deterministic components:
//
//   - memory time, accumulated by the emulated DRAM/NVBM devices;
//   - compute time, operation counts priced by a CostModel;
//   - communication time from an alpha-beta model of the Gemini
//     interconnect (Titan's network).
//
// The step time of a bulk-synchronous routine is the maximum over ranks,
// so load imbalance translates into lost time exactly as on a real
// machine.
package cluster

import "math"

// Network is an alpha-beta interconnect model: a message of n bytes costs
// AlphaNs + n/BytesPerNs nanoseconds.
type Network struct {
	// AlphaNs is the per-message latency in nanoseconds.
	AlphaNs float64
	// BytesPerNs is the bandwidth in bytes per nanosecond (GB/s ~= B/ns).
	BytesPerNs float64
}

// Gemini returns parameters representative of Titan's Gemini 3-D torus:
// ~1.5 us MPI latency and ~5 GB/s per-link bandwidth.
func Gemini() Network {
	return Network{AlphaNs: 1500, BytesPerNs: 5}
}

// Transfer returns the modeled cost of one point-to-point message.
func (n Network) Transfer(bytes int) float64 {
	return n.AlphaNs + float64(bytes)/n.BytesPerNs
}

// Collective returns the modeled cost of a tree-based collective (e.g.
// allreduce) over p ranks moving the given payload per stage.
func (n Network) Collective(p int, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	stages := math.Ceil(math.Log2(float64(p)))
	return stages * n.Transfer(bytes)
}

// Exchange returns the modeled cost of the splitter/ownership exchange of
// the Partition routine, in which every rank communicates with every
// other (the coordination term that makes Partition dominate at high rank
// counts, Figure 7).
func (n Network) Exchange(p int, bytesPerPeer int) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p-1) * n.Transfer(bytesPerPeer)
}

// CostModel prices CPU work per meshing operation, in nanoseconds. The
// defaults approximate per-octant costs of Gerris-style C code on a
// ~2 GHz Opteron core.
type CostModel struct {
	RefineNs    float64 // per leaf split (geometry + allocation)
	CoarsenNs   float64 // per sibling collapse
	BalanceNs   float64 // per balance-induced split
	SolveNs     float64 // per leaf field update (flux + interface evaluation)
	TraverseNs  float64 // per leaf visited without modification
	PartitionNs float64 // per owned leaf (key extraction + merge)
	MigrateNs   float64 // per octant changing owner (pack, ship, rebuild)
}

// DefaultCost returns the calibrated model.
func DefaultCost() CostModel {
	return CostModel{
		RefineNs:    2200,
		CoarsenNs:   1800,
		BalanceNs:   2600,
		SolveNs:     950,
		TraverseNs:  120,
		PartitionNs: 250,
		MigrateNs:   2600,
	}
}
