package cluster

import (
	"testing"

	"pmoctree/internal/morton"
	"pmoctree/internal/sim"
)

func TestNetworkModel(t *testing.T) {
	n := Gemini()
	if n.Transfer(0) != 1500 {
		t.Errorf("zero-byte transfer = %v", n.Transfer(0))
	}
	if n.Transfer(5000) != 1500+1000 {
		t.Errorf("5000B transfer = %v", n.Transfer(5000))
	}
	if n.Collective(1, 64) != 0 {
		t.Error("single-rank collective should be free")
	}
	if n.Collective(8, 0) != 3*1500 {
		t.Errorf("8-rank collective = %v", n.Collective(8, 0))
	}
	if n.Exchange(1, 64) != 0 {
		t.Error("single-rank exchange should be free")
	}
	// Exchange grows linearly with ranks — the Partition coordination
	// term.
	if n.Exchange(100, 64) <= n.Exchange(10, 64)*5 {
		t.Error("exchange does not grow linearly")
	}
}

func TestRoutineTimes(t *testing.T) {
	rt := RoutineTimes{RefineNs: 1, CoarsenNs: 2, BalanceNs: 3, SolveNs: 4, PartitionNs: 5, PersistNs: 5}
	if rt.TotalNs() != 20 {
		t.Errorf("TotalNs = %v", rt.TotalNs())
	}
	f := rt.Fractions()
	sum := 0.0
	for _, v := range f {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %v", sum)
	}
	var zero RoutineTimes
	if zero.Fractions() != [6]float64{} {
		t.Error("zero fractions nonzero")
	}
}

func TestSingleRankRun(t *testing.T) {
	res := Run(Config{Ranks: 1, Impl: PMOctree, MaxLevel: 4, Steps: 2, Seed: 1})
	if res.Elements == 0 {
		t.Fatal("no elements")
	}
	if res.Total.TotalNs() <= 0 {
		t.Fatal("no modeled time")
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	// Single rank: no partition communication beyond local key work.
	if res.Steps[0].Times.PartitionNs >= res.Steps[0].Times.TotalNs()/2 {
		t.Errorf("partition dominates a single-rank run: %+v", res.Steps[0].Times)
	}
}

func TestAllImplsProduceSameElements(t *testing.T) {
	var counts []int
	for _, impl := range []Impl{PMOctree, InCore, OutOfCore} {
		res := Run(Config{Ranks: 4, Impl: impl, MaxLevel: 4, Steps: 2, Seed: 1})
		counts = append(counts, res.Elements)
	}
	// PM-octree and in-core run the identical face-balance algorithm.
	if counts[0] != counts[1] {
		t.Errorf("pm-octree %d vs in-core %d elements", counts[0], counts[1])
	}
	// The linear octree enforces full 26-neighbor balance (it cannot
	// restrict to faces without pointers), so it may refine slightly
	// more — but within a few percent.
	if counts[2] < counts[0] || float64(counts[2]) > float64(counts[0])*1.1 {
		t.Errorf("out-of-core elements %d outside [%d, %d]", counts[2], counts[0], counts[0]*11/10)
	}
}

func TestImplementationOrdering(t *testing.T) {
	// §5.2: in-core <= pm-octree << out-of-core in execution time.
	times := map[Impl]float64{}
	for _, impl := range []Impl{PMOctree, InCore, OutOfCore} {
		res := Run(Config{Ranks: 4, Impl: impl, MaxLevel: 4, Steps: 3, Seed: 1})
		times[impl] = res.Total.TotalNs()
	}
	if times[InCore] > times[PMOctree]*1.2 {
		t.Errorf("in-core (%v) much slower than pm-octree (%v)", times[InCore], times[PMOctree])
	}
	if times[OutOfCore] < times[PMOctree]*2 {
		t.Errorf("out-of-core (%v) not clearly slower than pm-octree (%v)", times[OutOfCore], times[PMOctree])
	}
}

func TestWeakScalingElementsGrow(t *testing.T) {
	e1 := Run(Config{Ranks: 1, Impl: PMOctree, MaxLevel: 5, Steps: 1, Seed: 1}).Elements
	e8 := Run(Config{Ranks: 8, Impl: PMOctree, MaxLevel: 5, Steps: 1, Seed: 1}).Elements
	if e8 <= e1 {
		t.Errorf("8 jets produced %d elements vs %d for 1", e8, e1)
	}
}

func TestPartitionShareGrowsWithRanks(t *testing.T) {
	// Figures 7/8(b): the Partition share of total time grows with rank
	// count (fixed problem, so per-rank compute shrinks while the
	// coordination term grows).
	small := Run(Config{Ranks: 2, Jets: 4, Impl: PMOctree, MaxLevel: 5, Steps: 2, Seed: 1})
	large := Run(Config{Ranks: 16, Jets: 4, Impl: PMOctree, MaxLevel: 5, Steps: 2, Seed: 1})
	fs := small.Total.Fractions()[4]
	fl := large.Total.Fractions()[4]
	if fl <= fs {
		t.Errorf("partition share did not grow: %v (2 ranks) -> %v (16 ranks)", fs, fl)
	}
}

func TestStrongScalingSpeedup(t *testing.T) {
	// Fixed problem (jets constant), more ranks => less time per step.
	base := Run(Config{Ranks: 2, Jets: 4, Impl: PMOctree, MaxLevel: 5, Steps: 2, Seed: 1})
	wide := Run(Config{Ranks: 8, Jets: 4, Impl: PMOctree, MaxLevel: 5, Steps: 2, Seed: 1})
	if wide.Total.TotalNs() >= base.Total.TotalNs() {
		t.Errorf("no strong-scaling speedup: %v ns (2 ranks) vs %v ns (8 ranks)",
			base.Total.TotalNs(), wide.Total.TotalNs())
	}
}

func TestLoadBalanceAfterPartition(t *testing.T) {
	res := Run(Config{Ranks: 8, Impl: PMOctree, MaxLevel: 5, Steps: 3, Seed: 1})
	last := res.Steps[len(res.Steps)-1]
	if last.MinRank == 0 {
		t.Skip("degenerate: a rank owns nothing at this scale")
	}
	if ratio := float64(last.MaxRank) / float64(last.MinRank); ratio > 12 {
		t.Errorf("rank imbalance %vx after partitioning", ratio)
	}
}

func TestNVBMStatsAggregated(t *testing.T) {
	res := Run(Config{Ranks: 2, Impl: PMOctree, MaxLevel: 4, Steps: 2, Seed: 1})
	if res.NVBM.Writes == 0 {
		t.Error("no NVBM writes recorded for PM-octree run")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Ranks != 1 || cfg.Impl != PMOctree || cfg.Workers <= 0 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.Net != Gemini() {
		t.Error("default network is not Gemini")
	}
	if cfg.Cost != DefaultCost() {
		t.Error("default cost model missing")
	}
}

// gatherGlobalLeaves collects all ranks' owned leaves after a run by
// re-running the configuration and inspecting the final rank set. Since
// Run does not expose ranks, this test drives runStep directly.
func TestCrossRankBalance(t *testing.T) {
	cfg := Config{Ranks: 8, Impl: PMOctree, MaxLevel: 5, Steps: 2, Seed: 3}.withDefaults()
	d := simDroplet(cfg)
	ranks := makeRanks(cfg)
	for s := 1; s <= cfg.Steps; s++ {
		runStep(cfg, d, ranks, s, make([]int64, cfg.Ranks))
	}
	// The union of owned leaves must satisfy the 2:1 face constraint
	// globally, not just within each rank.
	global := map[morton.Code]bool{}
	for _, r := range ranks {
		r.mesh.ForEachLeaf(func(c morton.Code, _ [sim.DataWords]float64) bool {
			if r.ownsLeaf(c) {
				global[c] = true
			}
			return true
		})
	}
	if len(global) == 0 {
		t.Fatal("no owned leaves")
	}
	findLeaf := func(code morton.Code) (morton.Code, bool) {
		for l := int(code.Level()); l >= 0; l-- {
			anc := code.AncestorAt(uint8(l))
			if global[anc] {
				return anc, true
			}
		}
		return 0, false
	}
	var scratch [6]morton.Code
	for c := range global {
		if c.Level() < 2 {
			continue
		}
		for _, nb := range c.FaceNeighbors(scratch[:0]) {
			leaf, ok := findLeaf(nb)
			if ok && c.Level()-leaf.Level() > 1 {
				t.Fatalf("global 2:1 violation: %v abuts %v", c, leaf)
			}
		}
	}
}

// makeRanks replicates Run's rank construction for direct-step tests.
func makeRanks(cfg Config) []*rank {
	ranks := make([]*rank, cfg.Ranks)
	_, maxKey := morton.Root.KeySpan()
	step := maxKey/uint64(cfg.Ranks) + 1
	for i := range ranks {
		ranks[i] = newRank(i, cfg.Impl, cfg.DRAMBudgetOctants, cfg.DisableTransform, cfg.Seed)
		ranks[i].lo = uint64(i) * step
		ranks[i].hi = uint64(i+1) * step
		if i == cfg.Ranks-1 {
			ranks[i].hi = maxKey + 1
		}
	}
	return ranks
}

func simDroplet(cfg Config) *sim.Droplet {
	return sim.NewDroplet(sim.DropletConfig{Steps: cfg.DropletSteps, Jets: cfg.Jets})
}

func TestSurfaceOf(t *testing.T) {
	if surfaceOf(0) != 0 {
		t.Error("surfaceOf(0) != 0")
	}
	if s := surfaceOf(1000); s < 90 || s > 120 {
		t.Errorf("surfaceOf(1000) = %d, want ~100", s)
	}
}

func TestRunDeterministic(t *testing.T) {
	// Same configuration, same seed: identical elements and identical
	// modeled time, regardless of goroutine scheduling.
	cfg := Config{Ranks: 4, Impl: PMOctree, MaxLevel: 4, Steps: 2, Seed: 11}
	a := Run(cfg)
	b := Run(cfg)
	if a.Elements != b.Elements {
		t.Errorf("elements diverge: %d vs %d", a.Elements, b.Elements)
	}
	if a.Total != b.Total {
		t.Errorf("modeled times diverge: %+v vs %+v", a.Total, b.Total)
	}
	if a.NVBM.Writes != b.NVBM.Writes {
		t.Errorf("NVBM writes diverge: %d vs %d", a.NVBM.Writes, b.NVBM.Writes)
	}
}
