package cluster

import (
	"errors"
	"testing"
)

func TestLossyShipLossless(t *testing.T) {
	l := NewLossyNetwork(Gemini(), 0, 0, 1)
	ns, err := l.Ship(4096)
	if err != nil {
		t.Fatal(err)
	}
	if want := l.Net.Transfer(4096); ns != want {
		t.Errorf("lossless ship cost %v, want one transfer %v", ns, want)
	}
	st := l.Stats()
	if st.Frames != 1 || st.Attempts != 1 || st.Delivered != 1 || st.Drops+st.Corrupts+st.Failures != 0 {
		t.Errorf("stats = %+v, want one clean delivery", st)
	}
}

func TestLossyShipDeterministic(t *testing.T) {
	run := func() (LossyStats, float64, int) {
		l := NewLossyNetwork(Gemini(), 0.3, 0.2, 77)
		var total float64
		fails := 0
		for i := 0; i < 200; i++ {
			ns, err := l.Ship(1 << 12)
			total += ns
			if err != nil {
				if !errors.Is(err, ErrLinkFailure) {
					t.Fatalf("unexpected error type: %v", err)
				}
				fails++
			}
		}
		return l.Stats(), total, fails
	}
	s1, t1, f1 := run()
	s2, t2, f2 := run()
	if s1 != s2 || t1 != t2 || f1 != f2 {
		t.Fatalf("same seed diverged: %+v/%v/%d vs %+v/%v/%d", s1, t1, f1, s2, t2, f2)
	}
	if s1.Drops == 0 || s1.Corrupts == 0 {
		t.Errorf("fault model idle: %+v", s1)
	}
	if s1.Attempts <= s1.Frames {
		t.Error("no retries happened at 50% per-attempt loss")
	}
}

// TestLossyShipRetryAccounting forces every attempt to drop and pins the
// retry/backoff arithmetic: 1+RetryLimit attempts, exponentially doubling
// backoff, a timeout per drop, and ErrLinkFailure at the end.
func TestLossyShipRetryAccounting(t *testing.T) {
	l := NewLossyNetwork(Gemini(), 1.0, 0, 5)
	const size = 1000
	ns, err := l.Ship(size)
	if !errors.Is(err, ErrLinkFailure) {
		t.Fatalf("err = %v, want ErrLinkFailure", err)
	}
	attempts := float64(l.RetryLimit + 1)
	wantBackoff := 0.0
	for a := 1; a <= l.RetryLimit; a++ {
		wantBackoff += l.BackoffNs * float64(uint64(1)<<(a-1))
	}
	want := attempts*(l.Net.Transfer(size)+l.TimeoutNs) + wantBackoff
	if ns != want {
		t.Errorf("total ns = %v, want %v", ns, want)
	}
	st := l.Stats()
	if st.Attempts != uint64(attempts) || st.Drops != uint64(attempts) || st.Failures != 1 || st.Delivered != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestLossyShipCorruptNACK: a corrupted delivery costs a NACK transfer,
// not a timeout, and the frame still gets through on a later attempt.
func TestLossyShipCorruptNACK(t *testing.T) {
	l := NewLossyNetwork(Gemini(), 0, 0.9999, 9)
	l.RetryLimit = 10000 // corruption alone can't exhaust this budget fast
	_, err := l.Ship(100)
	if err != nil {
		t.Fatalf("frame never delivered: %v", err)
	}
	st := l.Stats()
	if st.Corrupts == 0 || st.Drops != 0 || st.Delivered != 1 {
		t.Errorf("stats = %+v, want corrupt NACKs then one delivery", st)
	}
}
