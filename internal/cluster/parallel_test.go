package cluster

import (
	"testing"
)

// TestPerRankDirect drives perRank with every worker-count edge the
// scheduler must normalize — including the 0 and negative counts that
// used to deadlock (zero-capacity semaphore) or panic (negative make).
// Run with -race: the per-rank result writes and the shared rank state
// inside fn are exactly what the detector checks.
func TestPerRankDirect(t *testing.T) {
	const n = 8
	ranks := make([]*rank, n)
	for i := range ranks {
		ranks[i] = newRank(i, PMOctree, 128, false, 1)
	}
	for _, workers := range []int{-1, 0, 1, 2, n, 3 * n} {
		out := perRank(ranks, workers, func(r *rank) float64 {
			// Touch real rank state so -race sees the actual access
			// pattern of a routine barrier, not an empty closure.
			visited := r.mesh.LeafCount()
			return float64(r.id*1000 + visited)
		})
		if len(out) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(out), n)
		}
		for i, v := range out {
			if want := float64(i*1000 + 1); v != want {
				t.Errorf("workers=%d rank %d: got %v, want %v", workers, i, v, want)
			}
		}
	}
}

func TestMaxOf(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{3}, 3},
		{[]float64{1, 5, 2}, 5},
		// All-negative inputs must return the true maximum, not the old
		// zero-initialized clamp.
		{[]float64{-7, -2, -9}, -2},
	}
	for _, c := range cases {
		if got := maxOf(c.in); got != c.want {
			t.Errorf("maxOf(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
