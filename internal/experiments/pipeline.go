package experiments

import (
	"fmt"
	"strings"
	"time"

	"pmoctree/internal/core"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/sim"
	"pmoctree/internal/telemetry"
)

// PipelineRow is one persistence mode in the pipeline experiment: the
// droplet workload stepped to the same committed-version count, with
// commit durability either on the mutator's critical path (sync) or
// riding the background persist worker at a given window depth and
// group-commit width.
type PipelineRow struct {
	Mode      string  `json:"mode"`
	Depth     int     `json:"depth"`
	Group     int     `json:"group"`
	Steps     int     `json:"steps"`
	MutatorMS float64 `json:"mutatorMS"` // mutator wall time for the whole run (steps + persists + final flush)
	PersistMS float64 `json:"persistMS"` // mutator wall time spent inside Persist calls
	Stalls    uint64  `json:"stalls"`    // mutator stalls on a full pipeline window
	Coalesced uint64  `json:"coalesced"` // versions that shared a durable group commit
	Commits   uint64  `json:"commits"`   // durable commit-record flips
	Leaves    int     `json:"leaves"`    // final mesh size (identical across modes)
}

// Pipeline measures what the asynchronous persistence pipeline buys: the
// same droplet run, same committed-version count, with modeled NVBM
// latency injected as real delay so writeback cost is wall-clock visible.
// Sync pays every writeback inside Persist; async overlaps it with the
// next step's meshing; group commit additionally amortizes ring pushes
// and record flips across adjacent versions.
func Pipeline(sc Scale, obs *telemetry.Observer) []PipelineRow {
	modes := []struct {
		name         string
		depth, group int
	}{
		{"sync", 0, 0},
		{"async k=1", 3, 1},
		{"async k=2", 3, 2},
		{"async k=4", 3, 4},
	}
	steps := sc.PipelineSteps
	if steps <= 0 {
		steps = 12
	}
	rows := make([]PipelineRow, 0, len(modes))
	for mi, m := range modes {
		dev := nvbm.New(nvbm.NVBM, 0)
		dev.SetDelayInjection(true)
		tree := core.Create(core.Config{
			NVBMDevice:        dev,
			DRAMDevice:        nvbm.New(nvbm.DRAM, 0),
			DRAMBudgetOctants: 2048,
			// Committed reads served from the decoded-node cache: the
			// device traffic left is the write-dominated persist path, the
			// cost the pipeline exists to hide (real PM reads are near-DRAM;
			// writes are the slow direction).
			CacheCommittedReads: true,
			PipelineDepth:       m.depth,
			GroupCommit:         m.group,
		})
		tree.SetTracer(obs.TracerFor(mi, telemetry.DeviceProbe(dev)))
		d := sim.NewDroplet(sim.DropletConfig{Steps: steps + 10})
		tree.SetFeatures(d.Feature(1))
		var persistMS float64
		start := time.Now()
		for s := 1; s <= steps; s++ {
			sim.Step(tree, d, s, sc.PipelineMaxLevel)
			tree.SetFeatures(d.Feature(s + 1))
			ps := time.Now()
			tree.Persist()
			persistMS += time.Since(ps).Seconds() * 1e3
		}
		tree.Flush()
		total := time.Since(start).Seconds() * 1e3
		st := tree.PipelineStats()
		commits := st.Committed
		if m.depth == 0 {
			commits = uint64(steps)
		}
		rows = append(rows, PipelineRow{
			Mode: m.name, Depth: m.depth, Group: m.group, Steps: steps,
			MutatorMS: total, PersistMS: persistMS,
			Stalls: st.Stalls, Coalesced: st.Coalesced, Commits: commits,
			Leaves: tree.LeafCount(),
		})
		tree.Close()
	}
	return rows
}

// FormatPipeline renders the experiment as a table.
func FormatPipeline(rows []PipelineRow) string {
	var b strings.Builder
	b.WriteString("Pipelined persistence: droplet ejection, injected NVBM latency\n")
	b.WriteString("mode        depth  group  total ms  persist ms  commits  coalesced  stalls  leaves\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %5d  %5d  %8.1f  %10.1f  %7d  %9d  %6d  %6d\n",
			r.Mode, r.Depth, r.Group, r.MutatorMS, r.PersistMS, r.Commits, r.Coalesced, r.Stalls, r.Leaves)
	}
	if len(rows) > 1 && rows[0].Depth == 0 {
		base := rows[0].MutatorMS
		for _, r := range rows[1:] {
			if r.MutatorMS > 0 {
				fmt.Fprintf(&b, "%s: %.2fx mutator speedup over sync\n", r.Mode, base/r.MutatorMS)
			}
		}
	}
	return b.String()
}
