// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) at configurable scale. Each Fig/Table function runs the
// corresponding experiment and returns structured rows; report.go formats
// them as the text tables cmd/pmbench prints.
//
// Absolute numbers differ from the paper (Titan is a supercomputer; this
// is an emulated substrate), but each experiment preserves the paper's
// shape: which implementation wins, by roughly what factor, and how the
// trend moves with the swept parameter. DESIGN.md lists the expected
// shape per experiment.
package experiments

import (
	"pmoctree/internal/cluster"
	"pmoctree/internal/core"
	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/recovery"
	"pmoctree/internal/sim"
	"pmoctree/internal/telemetry"
)

// Scale selects experiment sizes. DefaultScale finishes in seconds for
// tests and quick runs; PaperScale approaches the paper's configuration
// shape (hundreds of ranks, deeper meshes) and takes minutes.
type Scale struct {
	// Workers is the per-rank worker-pool width handed to the cluster
	// scheduler (0 = GOMAXPROCS). Results are worker-count-invariant.
	Workers int

	Fig3Steps    int
	Fig3MaxLevel uint8

	WeakRanks    []int
	WeakMaxLevel uint8
	WeakSteps    int

	StrongRanks    []int
	StrongJets     int
	StrongMaxLevel uint8
	StrongSteps    int

	Fig10Budgets  []int
	Fig10Ranks    int
	Fig10MaxLevel uint8
	Fig10Steps    int

	Fig11Levels []uint8
	Fig11Ranks  int
	Fig11Steps  int

	WriteMixSteps    int
	WriteMixMaxLevel uint8

	RecoveryCrashStep int
	RecoveryMaxLevel  uint8

	PipelineSteps    int
	PipelineMaxLevel uint8
}

// DefaultScale returns the fast configuration.
func DefaultScale() Scale {
	return Scale{
		Fig3Steps:    20,
		Fig3MaxLevel: 5,

		WeakRanks:    []int{1, 2, 4, 8},
		WeakMaxLevel: 5,
		WeakSteps:    2,

		StrongRanks:    []int{2, 4, 8, 16},
		StrongJets:     8,
		StrongMaxLevel: 5,
		StrongSteps:    2,

		Fig10Budgets:  []int{64, 128, 256, 512, 1024},
		Fig10Ranks:    2,
		Fig10MaxLevel: 5,
		Fig10Steps:    3,

		Fig11Levels: []uint8{3, 4, 5},
		Fig11Ranks:  2,
		Fig11Steps:  3,

		WriteMixSteps:    10,
		WriteMixMaxLevel: 5,

		RecoveryCrashStep: 15,
		RecoveryMaxLevel:  5,

		PipelineSteps:    12,
		PipelineMaxLevel: 5,
	}
}

// PaperScale returns the large configuration, tracking the paper's sweeps
// at reduced absolute size (1000 simulated ranks is feasible; billion-
// element meshes are not on one host).
func PaperScale() Scale {
	s := DefaultScale()
	s.Fig3Steps = 150
	s.WeakRanks = []int{1, 8, 27, 64, 125, 216}
	s.WeakMaxLevel = 6
	s.WeakSteps = 3
	s.StrongRanks = []int{8, 16, 32, 64}
	s.StrongJets = 16
	s.StrongMaxLevel = 6
	s.StrongSteps = 3
	s.Fig10Budgets = []int{128, 256, 512, 1024, 2048, 4096}
	s.Fig10Ranks = 4
	s.Fig10Steps = 5
	s.Fig11Levels = []uint8{4, 5, 6}
	s.Fig11Ranks = 4
	s.Fig11Steps = 6
	s.PipelineSteps = 30
	return s
}

// TitanScale pushes the weak-scaling sweep to the paper's 1000-processor
// point (1000 simulated ranks, one jet each). Expect roughly an hour of
// wall time for the full comparison; `pmbench -titan fig7` runs PM-octree
// alone in minutes.
func TitanScale() Scale {
	s := PaperScale()
	s.WeakRanks = []int{1, 8, 64, 216, 512, 1000}
	s.WeakSteps = 2
	return s
}

// Table2Row is one line of the DRAM/NVBM characteristics table.
type Table2Row struct {
	Metric string
	DRAM   string
	NVBM   string
}

// Table2 returns the active memory model (Table 2 of the paper).
func Table2() []Table2Row {
	return []Table2Row{
		{"Read Latency (ns)", "60", "100"},
		{"Write Latency (ns)", "60", "150"},
		{"Endurance (writes/bit)", "> 1e16", "1e6 - 1e8"},
	}
}

// WriteMixResult reproduces the §1 statistic: the fraction of memory
// accesses that are writes during meshing.
type WriteMixResult struct {
	PerStep []float64
	Avg     float64
	Max     float64
}

// WriteMix runs the droplet workload on an all-NVBM PM-octree and
// measures the write fraction of the octree meshing operations — refine,
// coarsen and balance — per step ("octree meshing operations can be
// write-intensive", §1). The solve and persist phases run to advance the
// simulation but are not part of the measured mix. A non-nil obs records
// one span per routine with NVBM deltas.
func WriteMix(sc Scale, obs *telemetry.Observer) WriteMixResult {
	dev := nvbm.New(nvbm.NVBM, 0)
	tree := core.Create(core.Config{NVBMDevice: dev, DRAMBudgetOctants: 1})
	tree.SetTracer(obs.TracerFor(0, telemetry.DeviceProbe(dev)))
	// A fast workload clock makes the interface move every step, so the
	// mesh actually adapts in every measured step.
	d := sim.NewDroplet(sim.DropletConfig{Steps: 3 * sc.WriteMixSteps})
	var res WriteMixResult
	for s := 1; s <= sc.WriteMixSteps; s++ {
		before := dev.Stats()
		tree.RefineWhere(d.RefinePred(s), sc.WriteMixMaxLevel)
		tree.CoarsenWhere(d.CoarsenPred(s))
		delta := dev.Stats().Sub(before)
		tree.Balance()
		solve := d.Solve(s)
		for it := 0; it < sim.SolverSweeps; it++ {
			tree.UpdateLeaves(solve)
		}
		tree.Persist()
		f := delta.WriteFraction()
		res.PerStep = append(res.PerStep, f)
		res.Avg += f
		if f > res.Max {
			res.Max = f
		}
	}
	res.Avg /= float64(len(res.PerStep))
	return res
}

// Fig3Row is one time step of the overlap/memory experiment.
type Fig3Row struct {
	Step      int
	Octants   int
	Overlap   float64 // shared / current octants
	MemPerK   float64 // live bytes per 1000 octants
	Expansion float64 // live bytes / single-copy bytes
}

// Fig3 runs the droplet simulation and measures, at the end of each step
// (before persisting), the overlap ratio between V(i) and V(i-1) and the
// memory usage per 1000 octants.
//
// Every step is assembled into one telemetry.StepRecord — per-phase spans
// when obs carries a tracer, plus authoritative device-counter and
// op-counter deltas — and the returned table rows are projections of
// those records, so the text table, the JSONL timeline and the Chrome
// trace all come from a single measurement path. A nil obs skips the
// recording but runs the same path.
func Fig3(sc Scale, obs *telemetry.Observer) []Fig3Row {
	nv := nvbm.New(nvbm.NVBM, 0)
	dr := nvbm.New(nvbm.DRAM, 0)
	tree := core.Create(core.Config{DRAMBudgetOctants: 512, NVBMDevice: nv, DRAMDevice: dr})
	tree.SetTracer(obs.TracerFor(0, telemetry.DeviceProbe(nv), telemetry.DeviceProbe(dr)))
	if obs != nil {
		tree.RegisterMetrics(obs.Metrics, "fig3")
	}
	d := sim.NewDroplet(sim.DropletConfig{Steps: sc.Fig3Steps + 10})
	var rows []Fig3Row
	prevNV := nv.Stats()
	prevDR := dr.Stats()
	prevOps := tree.Stats()
	for s := 1; s <= sc.Fig3Steps; s++ {
		mark := obs.Mark()
		sim.Step(tree, d, s, sc.Fig3MaxLevel)
		vs := tree.VersionStats()
		tree.SetFeatures(d.Feature(s + 1))
		tree.Persist()

		// Phases come from the step's spans; the step-level totals come
		// from the device and op counters, which also cover work outside
		// any span (and are available with telemetry off).
		rec := telemetry.StepFromEvents(s, obs.EventsFrom(mark))
		ops := tree.Stats()
		nvNow, drNow := nv.Stats(), dr.Stats()
		dnv := nvNow.Sub(prevNV)
		rec.Octants = vs.CurOctants
		rec.Overlap = vs.OverlapRatio
		rec.Expansion = vs.ExpansionFactor
		rec.ModeledNs = dnv.ModeledNs + drNow.Sub(prevDR).ModeledNs
		rec.NVBMReads = dnv.Reads
		rec.NVBMWrites = dnv.Writes
		rec.Merges = uint64(ops.Merges - prevOps.Merges)
		rec.GCFreed = uint64(ops.GCFreed - prevOps.GCFreed)
		rec.Copies = uint64(ops.Copies - prevOps.Copies)
		prevNV, prevDR, prevOps = nvNow, drNow, ops
		obs.RecordStep(rec)

		rows = append(rows, Fig3Row{
			Step:      rec.Step,
			Octants:   rec.Octants,
			Overlap:   rec.Overlap,
			MemPerK:   vs.MemoryPerThousandOctants(),
			Expansion: rec.Expansion,
		})
	}
	return rows
}

// Fig5Result compares NVBM writes served under the locality-oblivious and
// locality-aware layouts for the same refinement pass (Figure 5: the
// oblivious layout serves ~89% more writes).
type Fig5Result struct {
	ObliviousWrites uint64
	AwareWrites     uint64
	ExtraFraction   float64 // (oblivious-aware)/aware
}

// Fig5 builds identical meshes under both layouts and replays a write
// burst concentrated in a hot region that Z-order places last. In the
// trace the oblivious run appears as rank 0 and the aware run as rank 1.
func Fig5(obs *telemetry.Observer) Fig5Result {
	// The hot region spans two level-1 subtrees; the DRAM budget holds
	// only one, so even the aware layout serves some NVBM writes — the
	// regime of Figure 5, where the oblivious layout serves ~1.9x more.
	hot := func(c morton.Code) bool {
		x, _, z := c.Center()
		return x > 0.5 && z > 0.5
	}
	run := func(oblivious bool) uint64 {
		tree := core.Create(core.Config{
			DRAMBudgetOctants: 100,
			DisableTransform:  oblivious,
			Seed:              11,
		})
		rank := 0
		if !oblivious {
			rank = 1
		}
		tree.SetTracer(obs.TracerFor(rank, telemetry.DeviceProbe(tree.NVBMDevice())))
		tree.SetFeatures(func(c morton.Code, _ [core.DataWords]float64) bool { return hot(c) })
		tree.RefineWhere(func(morton.Code) bool { return true }, 3)
		tree.Persist()
		before := tree.NVBMDevice().Stats()
		for round := 0; round < 4; round++ {
			tree.UpdateLeaves(func(c morton.Code, d *[core.DataWords]float64) bool {
				if hot(c) {
					d[0] += 1
					return true
				}
				return false
			})
		}
		return tree.NVBMDevice().Stats().Sub(before).Writes
	}
	res := Fig5Result{ObliviousWrites: run(true), AwareWrites: run(false)}
	if res.AwareWrites > 0 {
		res.ExtraFraction = float64(res.ObliviousWrites-res.AwareWrites) / float64(res.AwareWrites)
	}
	return res
}

// ScalePoint is one x-axis point of a scaling figure.
type ScalePoint struct {
	Ranks    int
	Elements int
	// Seconds of modeled execution per implementation.
	Seconds map[cluster.Impl]float64
	// Breakdown of the PM-octree run by routine (Figures 7, 8b).
	Breakdown cluster.RoutineTimes
}

// Fig6 runs the weak-scaling comparison (Figure 6): the problem grows
// with the rank count (one jet per rank), and all three implementations
// execute the same steps.
func Fig6(sc Scale, obs *telemetry.Observer) []ScalePoint { return weakScaling(sc, true, obs) }

// Fig7Points runs the weak-scaling sweep for PM-octree only (the routine
// breakdown of Figure 7), skipping the expensive baselines.
func Fig7Points(sc Scale, obs *telemetry.Observer) []ScalePoint { return weakScaling(sc, false, obs) }

// scalingObs attaches the observer to the PM-octree run only: the
// baselines share rank ids, and interleaving three implementations on the
// same trace threads would make the timeline unreadable.
func scalingObs(obs *telemetry.Observer, impl cluster.Impl) *telemetry.Observer {
	if impl != cluster.PMOctree {
		return nil
	}
	return obs
}

func weakScaling(sc Scale, allImpls bool, obs *telemetry.Observer) []ScalePoint {
	impls := []cluster.Impl{cluster.PMOctree}
	if allImpls {
		impls = append(impls, cluster.InCore, cluster.OutOfCore)
	}
	var points []ScalePoint
	for _, p := range sc.WeakRanks {
		pt := ScalePoint{Ranks: p, Seconds: map[cluster.Impl]float64{}}
		for _, impl := range impls {
			res := cluster.Run(cluster.Config{
				Ranks:    p,
				Workers:  sc.Workers,
				Impl:     impl,
				MaxLevel: sc.WeakMaxLevel,
				Steps:    sc.WeakSteps,
				Seed:     1,
				Obs:      scalingObs(obs, impl),
			})
			pt.Seconds[impl] = res.Total.TotalSeconds()
			if impl == cluster.PMOctree {
				pt.Elements = res.Elements
				pt.Breakdown = res.Total
			}
		}
		points = append(points, pt)
	}
	return points
}

// Fig8 runs the strong-scaling study (Figure 8): fixed problem size,
// growing rank count, PM-octree only, with routine breakdown.
func Fig8(sc Scale, obs *telemetry.Observer) []ScalePoint {
	var points []ScalePoint
	for _, p := range sc.StrongRanks {
		res := cluster.Run(cluster.Config{
			Ranks:    p,
			Workers:  sc.Workers,
			Jets:     sc.StrongJets,
			Impl:     cluster.PMOctree,
			MaxLevel: sc.StrongMaxLevel,
			Steps:    sc.StrongSteps,
			Seed:     1,
			Obs:      obs,
		})
		points = append(points, ScalePoint{
			Ranks:     p,
			Elements:  res.Elements,
			Seconds:   map[cluster.Impl]float64{cluster.PMOctree: res.Total.TotalSeconds()},
			Breakdown: res.Total,
		})
	}
	return points
}

// Fig9 runs the strong-scaling comparison of all three implementations
// (Figure 9).
func Fig9(sc Scale, obs *telemetry.Observer) []ScalePoint {
	var points []ScalePoint
	for _, p := range sc.StrongRanks {
		pt := ScalePoint{Ranks: p, Seconds: map[cluster.Impl]float64{}}
		for _, impl := range []cluster.Impl{cluster.PMOctree, cluster.InCore, cluster.OutOfCore} {
			res := cluster.Run(cluster.Config{
				Ranks:    p,
				Workers:  sc.Workers,
				Jets:     sc.StrongJets,
				Impl:     impl,
				MaxLevel: sc.StrongMaxLevel,
				Steps:    sc.StrongSteps,
				Seed:     1,
				Obs:      scalingObs(obs, impl),
			})
			pt.Seconds[impl] = res.Total.TotalSeconds()
			if impl == cluster.PMOctree {
				pt.Elements = res.Elements
				pt.Breakdown = res.Total
			}
		}
		points = append(points, pt)
	}
	return points
}

// Fig10Row is one DRAM-size configuration (Figure 10).
type Fig10Row struct {
	BudgetOctants int
	Seconds       float64
	Merges        int
	Elements      int
}

// Fig10 sweeps the DRAM budget configured for the C0 tree and reports
// execution time and C0/C1 merge counts, with the in-core and out-of-core
// times as horizontal reference lines.
func Fig10(sc Scale, obs *telemetry.Observer) (rows []Fig10Row, inCoreSecs, outOfCoreSecs float64) {
	for _, b := range sc.Fig10Budgets {
		res := cluster.Run(cluster.Config{
			Ranks:             sc.Fig10Ranks,
			Workers:           sc.Workers,
			Impl:              cluster.PMOctree,
			MaxLevel:          sc.Fig10MaxLevel,
			Steps:             sc.Fig10Steps,
			DRAMBudgetOctants: b,
			Seed:              1,
			Obs:               obs,
		})
		rows = append(rows, Fig10Row{
			BudgetOctants: b,
			Seconds:       res.Total.TotalSeconds(),
			Merges:        res.PM.Merges,
			Elements:      res.Elements,
		})
	}
	ic := cluster.Run(cluster.Config{Ranks: sc.Fig10Ranks, Workers: sc.Workers, Impl: cluster.InCore, MaxLevel: sc.Fig10MaxLevel, Steps: sc.Fig10Steps, Seed: 1})
	oc := cluster.Run(cluster.Config{Ranks: sc.Fig10Ranks, Workers: sc.Workers, Impl: cluster.OutOfCore, MaxLevel: sc.Fig10MaxLevel, Steps: sc.Fig10Steps, Seed: 1})
	return rows, ic.Total.TotalSeconds(), oc.Total.TotalSeconds()
}

// Fig11Row compares runs with and without dynamic transformation at one
// mesh size (Figure 11).
type Fig11Row struct {
	MaxLevel       uint8
	Elements       int
	SecondsOff     float64
	SecondsOn      float64
	WritesOff      uint64
	WritesOn       uint64
	TimeReduction  float64 // 1 - on/off
	WriteReduction float64 // 1 - on/off
}

// Fig11 sweeps mesh size (via refinement depth) and toggles the dynamic
// transformation of the PM-octree layout. Only the transformation-on run
// feeds the observer: the off run is its control.
func Fig11(sc Scale, obs *telemetry.Observer) []Fig11Row {
	var rows []Fig11Row
	for _, ml := range sc.Fig11Levels {
		// Probe the mesh size, then give C0 about a quarter of it per
		// rank — the regime where layout choice matters (with more DRAM
		// than mesh, any layout fits; Figure 11's small-mesh points).
		// The short workload clock (DropletSteps 30) makes the interface
		// move appreciably per step, so a frozen layout goes stale — the
		// situation dynamic transformation exists for.
		const workloadClock = 30
		probe := cluster.Run(cluster.Config{
			Ranks: sc.Fig11Ranks, Workers: sc.Workers, Impl: cluster.PMOctree, MaxLevel: ml,
			Steps: 1, DRAMBudgetOctants: 1 << 20, Seed: 1,
			DropletSteps: workloadClock,
		})
		budget := probe.Elements / (4 * sc.Fig11Ranks)
		if budget < 32 {
			budget = 32
		}
		off := cluster.Run(cluster.Config{
			Ranks: sc.Fig11Ranks, Workers: sc.Workers, Impl: cluster.PMOctree, MaxLevel: ml,
			Steps: sc.Fig11Steps, DRAMBudgetOctants: budget,
			DropletSteps:     workloadClock,
			DisableTransform: true, Seed: 1,
		})
		on := cluster.Run(cluster.Config{
			Ranks: sc.Fig11Ranks, Workers: sc.Workers, Impl: cluster.PMOctree, MaxLevel: ml,
			Steps: sc.Fig11Steps, DRAMBudgetOctants: budget,
			DropletSteps:     workloadClock,
			DisableTransform: false, Seed: 1,
			Obs: obs,
		})
		row := Fig11Row{
			MaxLevel:   ml,
			Elements:   on.Elements,
			SecondsOff: off.Total.TotalSeconds(),
			SecondsOn:  on.Total.TotalSeconds(),
			WritesOff:  off.NVBM.Writes,
			WritesOn:   on.NVBM.Writes,
		}
		if row.SecondsOff > 0 {
			row.TimeReduction = 1 - row.SecondsOn/row.SecondsOff
		}
		if row.WritesOff > 0 {
			row.WriteReduction = 1 - float64(row.WritesOn)/float64(row.WritesOff)
		}
		rows = append(rows, row)
	}
	return rows
}

// RecoveryRow is one line of the §5.6 restart-time comparison.
type RecoveryRow struct {
	Impl     cluster.Impl
	SameNode bool
	Report   recovery.Report
}

// Recovery runs all five §5.6 scenarios.
func Recovery(sc Scale, obs *telemetry.Observer) ([]RecoveryRow, error) {
	var rows []RecoveryRow
	for _, tc := range []struct {
		impl cluster.Impl
		same bool
	}{
		{cluster.InCore, true},
		{cluster.PMOctree, true},
		{cluster.OutOfCore, true},
		{cluster.InCore, false},
		{cluster.PMOctree, false},
		{cluster.OutOfCore, false},
	} {
		rep, err := recovery.Run(recovery.Config{
			Impl:      tc.impl,
			SameNode:  tc.same,
			CrashStep: sc.RecoveryCrashStep,
			MaxLevel:  sc.RecoveryMaxLevel,
			Obs:       obs,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, RecoveryRow{Impl: tc.impl, SameNode: tc.same, Report: rep})
	}
	return rows, nil
}
