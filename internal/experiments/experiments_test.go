package experiments

import (
	"strings"
	"testing"

	"pmoctree/internal/cluster"
)

// tinyScale keeps experiment tests fast.
func tinyScale() Scale {
	s := DefaultScale()
	s.Fig3Steps = 6
	s.Fig3MaxLevel = 4
	s.WeakRanks = []int{1, 4}
	s.WeakMaxLevel = 4
	s.WeakSteps = 3
	s.StrongRanks = []int{2, 8}
	s.StrongJets = 4
	s.StrongMaxLevel = 4
	s.StrongSteps = 1
	s.Fig10Budgets = []int{64, 512}
	s.Fig10Ranks = 1
	s.Fig10MaxLevel = 4
	s.Fig10Steps = 2
	s.Fig11Levels = []uint8{4, 5}
	s.Fig11Ranks = 1
	s.Fig11Steps = 5
	s.WriteMixSteps = 3
	s.WriteMixMaxLevel = 4
	s.RecoveryCrashStep = 12
	s.RecoveryMaxLevel = 4
	return s
}

func TestTable2(t *testing.T) {
	rows := Table2()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "150") || !strings.Contains(out, "NVBM") {
		t.Errorf("table missing content:\n%s", out)
	}
}

func TestWriteMix(t *testing.T) {
	res := WriteMix(tinyScale(), nil)
	if len(res.PerStep) != 3 {
		t.Fatalf("steps = %d", len(res.PerStep))
	}
	// §1: meshing is write-heavy. The paper measured up to 72% (41%
	// average) across a full CFD code; our meshing-phase mix must be
	// clearly write-heavy in adapting steps.
	if res.Avg < 0.08 || res.Avg > 0.95 {
		t.Errorf("avg write fraction = %v", res.Avg)
	}
	if res.Max < res.Avg {
		t.Error("max < avg")
	}
	if out := FormatWriteMix(res); !strings.Contains(out, "average") {
		t.Error("format missing average")
	}
}

func TestFig3Shape(t *testing.T) {
	rows := Fig3(tinyScale(), nil)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// After the first couple of steps, overlap settles into the paper's
	// range and the expansion factor stays modest.
	for _, r := range rows[2:] {
		if r.Overlap <= 0 || r.Overlap > 1.0 {
			t.Errorf("step %d overlap %v", r.Step, r.Overlap)
		}
		if r.Expansion > 3 {
			t.Errorf("step %d expansion %v", r.Step, r.Expansion)
		}
		if r.MemPerK <= 0 {
			t.Errorf("step %d memory %v", r.Step, r.MemPerK)
		}
	}
	if out := FormatFig3(rows); !strings.Contains(out, "overlap") {
		t.Error("format broken")
	}
}

func TestFig5ObliviousWritesMore(t *testing.T) {
	res := Fig5(nil)
	if res.ObliviousWrites <= res.AwareWrites {
		t.Fatalf("oblivious layout (%d writes) not worse than aware (%d)",
			res.ObliviousWrites, res.AwareWrites)
	}
	// The paper reports ~89% extra; accept anything clearly significant.
	if res.ExtraFraction < 0.3 {
		t.Errorf("extra fraction only %.0f%%", res.ExtraFraction*100)
	}
	if out := FormatFig5(res); !strings.Contains(out, "oblivious") {
		t.Error("format broken")
	}
}

func TestFig6WeakScalingShape(t *testing.T) {
	pts := Fig6(tinyScale(), nil)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		pm := p.Seconds[cluster.PMOctree]
		ic := p.Seconds[cluster.InCore]
		oc := p.Seconds[cluster.OutOfCore]
		if pm <= 0 || ic <= 0 || oc <= 0 {
			t.Fatalf("missing times at %d ranks: %+v", p.Ranks, p.Seconds)
		}
		// §5.2 ordering: out-of-core much slower; PM close to in-core.
		if oc < pm*2 {
			t.Errorf("%d ranks: out-of-core %.3fs not clearly slower than pm %.3fs", p.Ranks, oc, pm)
		}
		if pm > ic*3 {
			t.Errorf("%d ranks: pm %.3fs not tracking in-core %.3fs", p.Ranks, pm, ic)
		}
	}
	// Weak scaling grows the problem.
	if pts[1].Elements <= pts[0].Elements {
		t.Errorf("elements did not grow: %d -> %d", pts[0].Elements, pts[1].Elements)
	}
	if out := FormatScaling("Figure 6", pts); !strings.Contains(out, "ranks") {
		t.Error("format broken")
	}
	if out := FormatBreakdown("Figure 7", pts); !strings.Contains(out, "partition") {
		t.Error("breakdown format broken")
	}
}

func TestFig8StrongScalingSpeedup(t *testing.T) {
	pts := Fig8(tinyScale(), nil)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	t0 := pts[0].Seconds[cluster.PMOctree]
	t1 := pts[1].Seconds[cluster.PMOctree]
	if t1 >= t0 {
		t.Errorf("no speedup: %v -> %v", t0, t1)
	}
	if out := FormatStrong(pts); !strings.Contains(out, "ideal") {
		t.Error("format broken")
	}
}

func TestFig9GapShrinks(t *testing.T) {
	pts := Fig9(tinyScale(), nil)
	// §5.3: the in-core vs PM gap narrows as ranks grow (more of the
	// mesh fits in C0).
	gap := func(p ScalePoint) float64 {
		return p.Seconds[cluster.PMOctree] / p.Seconds[cluster.InCore]
	}
	if len(pts) < 2 {
		t.Fatal("too few points")
	}
	if gap(pts[len(pts)-1]) > gap(pts[0])*1.5 {
		t.Errorf("gap grew: %.2f -> %.2f", gap(pts[0]), gap(pts[len(pts)-1]))
	}
}

func TestFig10MonotoneInBudget(t *testing.T) {
	rows, ic, oc := Fig10(tinyScale(), nil)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	small, large := rows[0], rows[1]
	if large.Seconds > small.Seconds {
		t.Errorf("more DRAM slower: %v s (%d) vs %v s (%d)",
			small.Seconds, small.BudgetOctants, large.Seconds, large.BudgetOctants)
	}
	if large.Merges > small.Merges {
		t.Errorf("more DRAM, more merges: %d vs %d", small.Merges, large.Merges)
	}
	if ic <= 0 || oc <= 0 {
		t.Error("missing reference times")
	}
	if oc < ic {
		t.Error("out-of-core faster than in-core reference")
	}
	if out := FormatFig10(rows, ic, oc); !strings.Contains(out, "merges") {
		t.Error("format broken")
	}
}

func TestFig11TransformationWins(t *testing.T) {
	rows := Fig11(tinyScale(), nil)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	// The paper's headline metric is execution time (-24.7% at 224M
	// elements); at laptop scale the reduction is smaller but must be
	// positive at the largest size, where C0 holds the smallest mesh
	// fraction.
	if last.TimeReduction <= 0 {
		t.Errorf("transformation did not cut time at the largest size: %+v", last)
	}
	// NVBM writes must not regress materially (allocator metadata noise
	// allows a small band).
	if last.WriteReduction < -0.05 {
		t.Errorf("transformation increased NVBM writes: %+v", last)
	}
	if out := FormatFig11(rows); !strings.Contains(out, "transformation") {
		t.Error("format broken")
	}
}

func TestRecoveryScenarios(t *testing.T) {
	rows, err := Recovery(tinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]RecoveryRow{}
	for _, r := range rows {
		key := string(r.Impl)
		if r.SameNode {
			key += "/same"
		} else {
			key += "/new"
		}
		byKey[key] = r
	}
	if byKey["out-of-core/new"].Report.Recovered {
		t.Error("etree recovered on a lost node")
	}
	pm := byKey["pm-octree/same"].Report
	ic := byKey["in-core/same"].Report
	if !pm.Recovered || !ic.Recovered {
		t.Fatal("recovery failed")
	}
	if pm.RestartNs >= ic.RestartNs {
		t.Errorf("PM restart %v not faster than in-core %v", pm.RestartNs, ic.RestartNs)
	}
	if out := FormatRecovery(rows); !strings.Contains(out, "restart") {
		t.Error("format broken")
	}
}

func TestScalesDiffer(t *testing.T) {
	d, p := DefaultScale(), PaperScale()
	if p.Fig3Steps <= d.Fig3Steps {
		t.Error("paper scale not larger")
	}
	if len(p.WeakRanks) < len(d.WeakRanks) {
		t.Error("paper scale has fewer weak-scaling points")
	}
}

func TestEnduranceTransformExtendsLifetime(t *testing.T) {
	rows := Endurance(tinyScale(), nil)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	oblivious, transformed, leveled := rows[0], rows[1], rows[2]
	if leveled.MaxWear == 0 {
		t.Fatal("wear-leveled row empty")
	}
	// The transformed layout must not wear the device faster; §5.5
	// claims it extends lifetime.
	if transformed.MaxWear > oblivious.MaxWear*11/10 {
		t.Errorf("transformation increased peak wear: %d vs %d",
			transformed.MaxWear, oblivious.MaxWear)
	}
	if out := FormatEndurance(rows); !strings.Contains(out, "wear") {
		t.Error("format broken")
	}
}

func TestWorkloadsExperiment(t *testing.T) {
	rows := Workloads(tinyScale(), nil)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Elements == 0 {
			t.Errorf("%s: no mesh", r.Name)
		}
		if r.OverlapMax <= 0 || r.OverlapMax > 1 {
			t.Errorf("%s: overlap max %v", r.Name, r.OverlapMax)
		}
		if r.OverlapMin > r.OverlapMax {
			t.Errorf("%s: overlap band inverted", r.Name)
		}
	}
	if out := FormatWorkloads(rows); !strings.Contains(out, "boiling") {
		t.Error("format broken")
	}
}

func TestTitanScale(t *testing.T) {
	s := TitanScale()
	if s.WeakRanks[len(s.WeakRanks)-1] != 1000 {
		t.Errorf("titan weak ranks = %v", s.WeakRanks)
	}
	if s.WeakSteps <= 0 {
		t.Error("titan steps unset")
	}
}
