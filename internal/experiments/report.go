package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"pmoctree/internal/cluster"
)

// table builds an aligned text table.
func table(fn func(w *tabwriter.Writer)) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fn(w)
	w.Flush()
	return sb.String()
}

// Shared column formatters: every table renders ratios and modeled times
// the same way.

// pct renders a fraction as a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// pct0 renders a fraction as a whole-number percentage.
func pct0(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

// secs renders modeled seconds.
func secs(v float64) string { return fmt.Sprintf("%.3f", v) }

// maybeSecs renders modeled seconds, or "-" for an absent measurement.
func maybeSecs(v float64) string {
	if v == 0 {
		return "-"
	}
	return secs(v)
}

// FormatTable2 renders the memory-characteristics table.
func FormatTable2(rows []Table2Row) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Table 2: DRAM and NVBM characteristics (emulation model)")
		fmt.Fprintln(w, "metric\tDRAM\tNVBM")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%s\n", r.Metric, r.DRAM, r.NVBM)
		}
	})
}

// FormatWriteMix renders the §1 write-fraction statistic.
func FormatWriteMix(res WriteMixResult) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Write share of memory accesses during meshing (§1: up to 72%, avg 41%)")
		fmt.Fprintln(w, "step\twrite fraction")
		for i, f := range res.PerStep {
			fmt.Fprintf(w, "%d\t%s\n", i+1, pct(f))
		}
		fmt.Fprintf(w, "average\t%s\n", pct(res.Avg))
		fmt.Fprintf(w, "max\t%s\n", pct(res.Max))
	})
}

// FormatFig3 renders the overlap/memory trace.
func FormatFig3(rows []Fig3Row) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 3: octant overlap of V(i-1)/V(i) and memory per 1000 octants")
		fmt.Fprintln(w, "step\toctants\toverlap\tbytes/1k octants\texpansion")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%d\t%s\t%.0f\t%.2fx\n",
				r.Step, r.Octants, pct(r.Overlap), r.MemPerK, r.Expansion)
		}
	})
}

// FormatFig5 renders the layout-comparison result.
func FormatFig5(res Fig5Result) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 5: NVBM writes under locality-oblivious vs locality-aware layout")
		fmt.Fprintln(w, "layout\tNVBM writes")
		fmt.Fprintf(w, "oblivious (Fig 5a)\t%d\n", res.ObliviousWrites)
		fmt.Fprintf(w, "aware (Fig 5b)\t%d\n", res.AwareWrites)
		fmt.Fprintf(w, "extra writes from oblivious layout\t%s (paper: ~89%%)\n", pct0(res.ExtraFraction))
	})
}

// FormatScaling renders a weak/strong scaling table across implementations.
func FormatScaling(title string, points []ScalePoint) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, title)
		fmt.Fprintln(w, "ranks\telements\tin-core (s)\tpm-octree (s)\tout-of-core (s)")
		for _, p := range points {
			ic, pm, oc := p.Seconds[cluster.InCore], p.Seconds[cluster.PMOctree], p.Seconds[cluster.OutOfCore]
			fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%s\n",
				p.Ranks, p.Elements, maybeSecs(ic), secs(pm), maybeSecs(oc))
		}
	})
}

// FormatBreakdown renders per-routine fractions (Figures 7, 8b).
func FormatBreakdown(title string, points []ScalePoint) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, title)
		fmt.Fprintln(w, "ranks\telements\trefine\tcoarsen\tbalance\tsolve\tpartition\tpersist")
		for _, p := range points {
			f := p.Breakdown.Fractions()
			fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
				p.Ranks, p.Elements, pct(f[0]), pct(f[1]), pct(f[2]), pct(f[3]), pct(f[4]), pct(f[5]))
		}
	})
}

// FormatStrong renders the PM-octree strong-scaling run with ideal
// speedup (Figure 8a).
func FormatStrong(points []ScalePoint) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 8(a): strong scaling of PM-octree (fixed problem size)")
		fmt.Fprintln(w, "ranks\telements\ttime (s)\tspeedup\tideal")
		if len(points) == 0 {
			return
		}
		base := points[0]
		baseT := base.Seconds[cluster.PMOctree]
		for _, p := range points {
			t := p.Seconds[cluster.PMOctree]
			speedup := 0.0
			if t > 0 {
				speedup = baseT / t
			}
			ideal := float64(p.Ranks) / float64(base.Ranks)
			fmt.Fprintf(w, "%d\t%d\t%s\t%.2fx\t%.2fx\n", p.Ranks, p.Elements, secs(t), speedup, ideal)
		}
	})
}

// FormatFig10 renders the DRAM-size sweep.
func FormatFig10(rows []Fig10Row, inCoreSecs, outOfCoreSecs float64) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 10: impact of the DRAM size configured for the C0 tree")
		fmt.Fprintln(w, "C0 budget (octants)\ttime (s)\tC0/C1 merges\telements")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%s\t%d\t%d\n", r.BudgetOctants, secs(r.Seconds), r.Merges, r.Elements)
		}
		fmt.Fprintf(w, "in-core reference\t%s\t-\t-\n", secs(inCoreSecs))
		fmt.Fprintf(w, "out-of-core reference\t%s\t-\t-\n", secs(outOfCoreSecs))
	})
}

// FormatFig11 renders the dynamic-transformation sweep.
func FormatFig11(rows []Fig11Row) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 11: execution time without/with dynamic transformation")
		fmt.Fprintln(w, "max level\telements\toff (s)\ton (s)\ttime cut\tNVBM writes off\ton\twrite cut")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%s\t%d\t%d\t%s\n",
				r.MaxLevel, r.Elements, secs(r.SecondsOff), secs(r.SecondsOn), pct(r.TimeReduction),
				r.WritesOff, r.WritesOn, pct(r.WriteReduction))
		}
	})
}

// FormatRecovery renders the §5.6 restart comparison.
func FormatRecovery(rows []RecoveryRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "§5.6: time to restart the simulation after a failure")
		fmt.Fprintln(w, "implementation\tscenario\trecovered\trestart (ms)\treplica move (ms)\tsteps lost")
		for _, r := range rows {
			scen := "same node"
			if !r.SameNode {
				scen = "new node"
			}
			if !r.Report.Recovered {
				fmt.Fprintf(w, "%s\t%s\tNO\t-\t-\t-\n", r.Impl, scen)
				continue
			}
			fmt.Fprintf(w, "%s\t%s\tyes\t%.4f\t%.4f\t%d\n",
				r.Impl, scen, r.Report.RestartNs/1e6, r.Report.ReplicaMoveNs/1e6, r.Report.StepsLost)
		}
	})
}
