package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"pmoctree/internal/cluster"
)

// table builds an aligned text table.
func table(fn func(w *tabwriter.Writer)) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fn(w)
	w.Flush()
	return sb.String()
}

// FormatTable2 renders the memory-characteristics table.
func FormatTable2(rows []Table2Row) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Table 2: DRAM and NVBM characteristics (emulation model)")
		fmt.Fprintln(w, "metric\tDRAM\tNVBM")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%s\n", r.Metric, r.DRAM, r.NVBM)
		}
	})
}

// FormatWriteMix renders the §1 write-fraction statistic.
func FormatWriteMix(res WriteMixResult) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Write share of memory accesses during meshing (§1: up to 72%, avg 41%)")
		fmt.Fprintln(w, "step\twrite fraction")
		for i, f := range res.PerStep {
			fmt.Fprintf(w, "%d\t%.1f%%\n", i+1, f*100)
		}
		fmt.Fprintf(w, "average\t%.1f%%\n", res.Avg*100)
		fmt.Fprintf(w, "max\t%.1f%%\n", res.Max*100)
	})
}

// FormatFig3 renders the overlap/memory trace.
func FormatFig3(rows []Fig3Row) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 3: octant overlap of V(i-1)/V(i) and memory per 1000 octants")
		fmt.Fprintln(w, "step\toctants\toverlap\tbytes/1k octants\texpansion")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%d\t%.1f%%\t%.0f\t%.2fx\n",
				r.Step, r.Octants, r.Overlap*100, r.MemPerK, r.Expansion)
		}
	})
}

// FormatFig5 renders the layout-comparison result.
func FormatFig5(res Fig5Result) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 5: NVBM writes under locality-oblivious vs locality-aware layout")
		fmt.Fprintln(w, "layout\tNVBM writes")
		fmt.Fprintf(w, "oblivious (Fig 5a)\t%d\n", res.ObliviousWrites)
		fmt.Fprintf(w, "aware (Fig 5b)\t%d\n", res.AwareWrites)
		fmt.Fprintf(w, "extra writes from oblivious layout\t%.0f%% (paper: ~89%%)\n", res.ExtraFraction*100)
	})
}

// FormatScaling renders a weak/strong scaling table across implementations.
func FormatScaling(title string, points []ScalePoint) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, title)
		fmt.Fprintln(w, "ranks\telements\tin-core (s)\tpm-octree (s)\tout-of-core (s)")
		for _, p := range points {
			ic, pm, oc := p.Seconds[cluster.InCore], p.Seconds[cluster.PMOctree], p.Seconds[cluster.OutOfCore]
			fmt.Fprintf(w, "%d\t%d\t%s\t%.3f\t%s\n",
				p.Ranks, p.Elements, maybeSecs(ic), pm, maybeSecs(oc))
		}
	})
}

func maybeSecs(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// FormatBreakdown renders per-routine fractions (Figures 7, 8b).
func FormatBreakdown(title string, points []ScalePoint) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, title)
		fmt.Fprintln(w, "ranks\telements\trefine\tcoarsen\tbalance\tsolve\tpartition\tpersist")
		for _, p := range points {
			f := p.Breakdown.Fractions()
			fmt.Fprintf(w, "%d\t%d\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
				p.Ranks, p.Elements, f[0]*100, f[1]*100, f[2]*100, f[3]*100, f[4]*100, f[5]*100)
		}
	})
}

// FormatStrong renders the PM-octree strong-scaling run with ideal
// speedup (Figure 8a).
func FormatStrong(points []ScalePoint) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 8(a): strong scaling of PM-octree (fixed problem size)")
		fmt.Fprintln(w, "ranks\telements\ttime (s)\tspeedup\tideal")
		if len(points) == 0 {
			return
		}
		base := points[0]
		baseT := base.Seconds[cluster.PMOctree]
		for _, p := range points {
			t := p.Seconds[cluster.PMOctree]
			speedup := 0.0
			if t > 0 {
				speedup = baseT / t
			}
			ideal := float64(p.Ranks) / float64(base.Ranks)
			fmt.Fprintf(w, "%d\t%d\t%.3f\t%.2fx\t%.2fx\n", p.Ranks, p.Elements, t, speedup, ideal)
		}
	})
}

// FormatFig10 renders the DRAM-size sweep.
func FormatFig10(rows []Fig10Row, inCoreSecs, outOfCoreSecs float64) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 10: impact of the DRAM size configured for the C0 tree")
		fmt.Fprintln(w, "C0 budget (octants)\ttime (s)\tC0/C1 merges\telements")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%.3f\t%d\t%d\n", r.BudgetOctants, r.Seconds, r.Merges, r.Elements)
		}
		fmt.Fprintf(w, "in-core reference\t%.3f\t-\t-\n", inCoreSecs)
		fmt.Fprintf(w, "out-of-core reference\t%.3f\t-\t-\n", outOfCoreSecs)
	})
}

// FormatFig11 renders the dynamic-transformation sweep.
func FormatFig11(rows []Fig11Row) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 11: execution time without/with dynamic transformation")
		fmt.Fprintln(w, "max level\telements\toff (s)\ton (s)\ttime cut\tNVBM writes off\ton\twrite cut")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%d\t%.3f\t%.3f\t%.1f%%\t%d\t%d\t%.1f%%\n",
				r.MaxLevel, r.Elements, r.SecondsOff, r.SecondsOn, r.TimeReduction*100,
				r.WritesOff, r.WritesOn, r.WriteReduction*100)
		}
	})
}

// FormatRecovery renders the §5.6 restart comparison.
func FormatRecovery(rows []RecoveryRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "§5.6: time to restart the simulation after a failure")
		fmt.Fprintln(w, "implementation\tscenario\trecovered\trestart (ms)\treplica move (ms)\tsteps lost")
		for _, r := range rows {
			scen := "same node"
			if !r.SameNode {
				scen = "new node"
			}
			if !r.Report.Recovered {
				fmt.Fprintf(w, "%s\t%s\tNO\t-\t-\t-\n", r.Impl, scen)
				continue
			}
			fmt.Fprintf(w, "%s\t%s\tyes\t%.4f\t%.4f\t%d\n",
				r.Impl, scen, r.Report.RestartNs/1e6, r.Report.ReplicaMoveNs/1e6, r.Report.StepsLost)
		}
	})
}
