package experiments

import (
	"fmt"
	"text/tabwriter"

	"pmoctree/internal/core"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/sim"
	"pmoctree/internal/telemetry"
)

// EnduranceRow compares NVBM wear with and without dynamic transformation
// — quantifying §5.5's claim that the transformation "extend[s] the
// lifetime of NVBM". This experiment extends the paper's evaluation (it
// reports the claim qualitatively); lifetime is extrapolated from the
// hottest line's wear rate under the Table 2 endurance budget.
type EnduranceRow struct {
	Label         string
	MaxWear       uint32 // hottest line anywhere (metadata included)
	DataMaxWear   uint32 // hottest line in the octant-payload region
	Imbalance     float64
	LifetimeSteps float64
}

// Endurance runs the droplet workload twice (layout transformation off
// and on) and reports wear statistics of the persistent region. In the
// trace the variants appear as ranks 0-2 in the order returned.
func Endurance(sc Scale, obs *telemetry.Observer) []EnduranceRow {
	variant := 0
	run := func(label string, disable, level bool) EnduranceRow {
		nv := nvbm.New(nvbm.NVBM, 0)
		tree := core.Create(core.Config{
			NVBMDevice:        nv,
			DRAMBudgetOctants: 256,
			DisableTransform:  disable,
			WearLeveling:      level,
			Seed:              3,
		})
		tree.SetTracer(obs.TracerFor(variant, telemetry.DeviceProbe(nv)))
		variant++
		d := sim.NewDroplet(sim.DropletConfig{Steps: 3 * sc.WriteMixSteps})
		for s := 1; s <= sc.WriteMixSteps; s++ {
			sim.Step(tree, d, s, sc.WriteMixMaxLevel)
			tree.SetFeatures(d.Feature(s + 1))
			tree.Persist()
		}
		rep := nv.EstimateLifetime(sc.WriteMixSteps, nvbm.NVBMEnduranceWrites)
		return EnduranceRow{
			Label:         label,
			MaxWear:       rep.MaxWear,
			DataMaxWear:   nv.WearMax(tree.NVBMDataOffset(), nv.Size()),
			Imbalance:     rep.Imbalance,
			LifetimeSteps: rep.LifetimeSteps,
		}
	}
	return []EnduranceRow{
		run("oblivious", true, false),
		run("transformed", false, false),
		run("transformed + wear-leveled", false, true),
	}
}

// FormatEndurance renders the wear comparison.
func FormatEndurance(rows []EnduranceRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "NVBM endurance under the droplet workload (extension of §5.5's lifetime claim)")
		fmt.Fprintln(w, "layout\tmax wear (any)\tmax wear (octant data)\timbalance\tsteps to wear-out")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%d\t%.1fx\t%.3g\n", r.Label, r.MaxWear, r.DataMaxWear, r.Imbalance, r.LifetimeSteps)
		}
		fmt.Fprintln(w, "(the hottest line overall is allocator metadata — the lifetime limiter a")
		fmt.Fprintln(w, " production allocator would rotate; wear leveling lowers the data region)")
	})
}
