package experiments

import (
	"fmt"
	"text/tabwriter"

	"pmoctree/internal/core"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/sim"
	"pmoctree/internal/telemetry"
)

// WorkloadRow summarizes one motivating workload's behavior on PM-octree:
// mesh size, version-overlap band, and the meshing write mix. The paper's
// introduction motivates all three ("droplet ejection in inkjet
// technology, droplet impact on a solid surface, and rapid boiling
// flow"); this extension experiment shows each produces the locality
// PM-octree exploits.
type WorkloadRow struct {
	Name        string
	Elements    int
	OverlapMin  float64
	OverlapMax  float64
	WriteMixMax float64
}

// Workloads runs a short simulation of each motivating workload and
// reports the PM-octree-relevant characteristics. In the trace each
// workload appears as its own rank, in the order listed.
func Workloads(sc Scale, obs *telemetry.Observer) []WorkloadRow {
	steps := sc.WriteMixSteps
	if steps < 4 {
		steps = 4
	}
	fields := []struct {
		name string
		f    sim.Field
	}{
		{"droplet ejection", sim.NewDroplet(sim.DropletConfig{Steps: 3 * steps})},
		{"drop impact", sim.NewDropImpact(sim.ImpactConfig{Steps: 3 * steps})},
		{"rapid boiling", sim.NewBoiling(sim.BoilingConfig{Steps: 3 * steps, Seed: 42})},
	}
	var rows []WorkloadRow
	for wi, w := range fields {
		dev := nvbm.New(nvbm.NVBM, 0)
		tree := core.Create(core.Config{NVBMDevice: dev, DRAMBudgetOctants: 1})
		tree.SetTracer(obs.TracerFor(wi, telemetry.DeviceProbe(dev)))
		row := WorkloadRow{Name: w.name, OverlapMin: 1}
		for s := 1; s <= steps; s++ {
			before := dev.Stats()
			tree.RefineWhere(sim.RefinePredOf(w.f, s), sc.WriteMixMaxLevel)
			tree.CoarsenWhere(sim.CoarsenPredOf(w.f, s))
			delta := dev.Stats().Sub(before)
			if f := delta.WriteFraction(); f > row.WriteMixMax {
				row.WriteMixMax = f
			}
			tree.Balance()
			solve := sim.SolveOf(w.f, s)
			for it := 0; it < sim.SolverSweeps; it++ {
				tree.UpdateLeaves(solve)
			}
			vs := tree.VersionStats()
			if s > 2 { // skip the construction transient
				if vs.OverlapRatio < row.OverlapMin {
					row.OverlapMin = vs.OverlapRatio
				}
				if vs.OverlapRatio > row.OverlapMax {
					row.OverlapMax = vs.OverlapRatio
				}
			}
			row.Elements = vs.CurOctants
			tree.SetFeatures(sim.FeatureOf(w.f, s+1))
			tree.Persist()
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatWorkloads renders the per-workload summary.
func FormatWorkloads(rows []WorkloadRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Motivating workloads on PM-octree (extension: §1's simulation classes)")
		fmt.Fprintln(w, "workload\toctants\toverlap band\tmeshing write mix (max)")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%s - %s\t%s\n",
				r.Name, r.Elements, pct0(r.OverlapMin), pct0(r.OverlapMax), pct0(r.WriteMixMax))
		}
	})
}
