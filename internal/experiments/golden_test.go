package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pmoctree/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite the telemetry golden files")

// TestDropletTelemetryGolden pins the exact exporter output for a 5-step
// droplet run: the simulation is deterministic and the trace clock is
// injected, so both files must be byte-identical across runs and
// platforms. Regenerate with `go test ./internal/experiments -run Golden
// -update` after an intentional format or instrumentation change.
func TestDropletTelemetryGolden(t *testing.T) {
	obs := telemetry.NewObserver()
	// Deterministic clock: each reading advances 1 µs, so wall durations
	// count the clock reads between Begin and End instead of real time.
	var tick int64
	obs.Trace.SetClock(func() int64 { tick += 1000; return tick })

	sc := DefaultScale()
	sc.Fig3Steps = 5
	rows := Fig3(sc, obs)
	if len(rows) != 5 {
		t.Fatalf("Fig3 returned %d rows, want 5", len(rows))
	}

	var jsonl bytes.Buffer
	if err := obs.WriteSteps(&jsonl); err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	if err := obs.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}

	checkGolden(t, filepath.Join("testdata", "droplet_steps.jsonl"), jsonl.Bytes())
	checkGolden(t, filepath.Join("testdata", "droplet_trace.json"), trace.Bytes())
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden output (len %d vs %d); run with -update after intentional changes\ngot (first 400 bytes):\n%s",
			path, len(got), len(want), truncate(got, 400))
	}
}

func truncate(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	return b[:n]
}
