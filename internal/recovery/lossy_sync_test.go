package recovery

import (
	"bytes"
	"errors"
	"testing"

	"pmoctree/internal/cluster"
	"pmoctree/internal/core"
	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
)

// TestSyncExcludesCorruptLines: bit-rot on the primary must never ship to
// the replica — the rotted line is withheld from the delta frame, leaving
// the replica's (older, intact) copy in place as the repair source.
func TestSyncExcludesCorruptLines(t *testing.T) {
	m := NewReplicaManager(2, 0, cluster.Gemini())
	nv := nvbm.New(nvbm.NVBM, 4*nvbm.LineSize)
	nv.EnableMediaTracking()
	clean := bytes.Repeat([]byte{0xC3}, nvbm.LineSize)
	nv.WriteAt(0, clean)
	nv.WriteAt(nvbm.LineSize, clean)
	if err := m.Sync(0, nv); err != nil {
		t.Fatal(err)
	}

	nv.FlipBit(5, 1) // rot line 0
	nv.WriteAt(2*nvbm.LineSize, clean)
	if err := m.Sync(0, nv); err != nil {
		t.Fatal(err)
	}

	img := m.ReplicaImage(0)
	if img == nil {
		t.Fatal("no replica image after sync")
	}
	got := img.Bytes()
	if !bytes.Equal(got[:nvbm.LineSize], clean) {
		t.Error("rotted line propagated into the replica")
	}
	if !bytes.Equal(got[2*nvbm.LineSize:3*nvbm.LineSize], clean) {
		t.Error("clean new line did not ship")
	}
	if img.MediaTracking() && len(img.CorruptLines()) != 0 {
		t.Errorf("replica reads corrupt at lines %v", img.CorruptLines())
	}
	// The withheld line heals on the primary (scrub from the replica) and
	// the next sync converges the pair.
	rep := nv.Scrub(func(off int, p []byte) bool {
		b := img.Bytes()
		if off+len(p) > len(b) {
			return false
		}
		copy(p, b[off:off+len(p)])
		return true
	})
	if rep.Repaired != 1 {
		t.Fatalf("scrub repaired %d lines, want 1", rep.Repaired)
	}
	if err := m.Sync(0, nv); err != nil {
		t.Fatal(err)
	}
	if lines := nv.DiffLines(m.ReplicaImage(0)); len(lines) != 0 {
		t.Errorf("primary and replica diverge at lines %v after heal", lines)
	}
}

// TestSyncDegradedModeAndRecovery: a dead link marks the replica degraded
// in the report; once the link heals, one successful sync clears it.
func TestSyncDegradedModeAndRecovery(t *testing.T) {
	m := NewReplicaManager(2, 0, cluster.Gemini())
	link := cluster.NewLossyNetwork(cluster.Gemini(), 0, 0, 3)
	m.SetLink(link)
	nv := nvbm.New(nvbm.NVBM, 2*nvbm.LineSize)
	nv.WriteAt(0, bytes.Repeat([]byte{1}, nvbm.LineSize))
	if err := m.Sync(0, nv); err != nil {
		t.Fatal(err)
	}

	link.DropProb = 1.0
	nv.WriteAt(nvbm.LineSize, bytes.Repeat([]byte{2}, nvbm.LineSize))
	err := m.Sync(0, nv)
	if !errors.Is(err, cluster.ErrLinkFailure) {
		t.Fatalf("err = %v, want ErrLinkFailure", err)
	}
	states := m.Report()
	if len(states) != 1 {
		t.Fatalf("report has %d entries, want 1", len(states))
	}
	st := states[0]
	if !st.Degraded || st.FailedSyncs != 1 || st.SyncedSeq != 1 || st.CurrentSeq != 2 {
		t.Errorf("state = %+v, want degraded with 1 failed sync", st)
	}
	// The replica kept its last commit-consistent contents.
	if got := m.ReplicaImage(0).Bytes()[nvbm.LineSize]; got != 0 {
		t.Error("failed sync mutated the replica")
	}

	link.DropProb = 0
	if err := m.Sync(0, nv); err != nil {
		t.Fatal(err)
	}
	st = m.Report()[0]
	if st.Degraded || st.FailedSyncs != 0 {
		t.Errorf("state after heal = %+v, want clean", st)
	}
	if got := m.ReplicaImage(0).Bytes()[nvbm.LineSize]; got != 2 {
		t.Error("healed sync did not deliver the missed line")
	}
}

func TestReplicaImageLifecycle(t *testing.T) {
	m := NewReplicaManager(2, 0, cluster.Gemini())
	if m.ReplicaImage(0) != nil {
		t.Error("image exists before any sync")
	}
	nv := nvbm.New(nvbm.NVBM, nvbm.LineSize)
	nv.WriteAt(0, bytes.Repeat([]byte{9}, nvbm.LineSize))
	if err := m.Sync(0, nv); err != nil {
		t.Fatal(err)
	}
	img := m.ReplicaImage(0)
	if img == nil || !bytes.Equal(img.Bytes(), nv.Bytes()) {
		t.Error("image missing or diverged after sync")
	}
}

// TestFailoverRestoreFromReplica walks the full lost-node chain under
// media tracking: the primary's arena metadata rots beyond repair, local
// restore fails, and the replica image — which inherited media tracking —
// restores to the last synced committed version.
func TestFailoverRestoreFromReplica(t *testing.T) {
	m := NewReplicaManager(2, 0, cluster.Gemini())
	nv := nvbm.New(nvbm.NVBM, 0)
	nv.EnableMediaTracking()
	mkCfg := func(dev *nvbm.Device) core.Config {
		return core.Config{NVBMDevice: dev, RetainVersions: 2, VerifyRestore: true}
	}
	tree := core.Create(mkCfg(nv))
	tree.RefineWhere(func(c morton.Code) bool { return c.Level() < 2 }, 2)
	tree.Persist()
	if err := m.Sync(0, nv); err != nil {
		t.Fatal(err)
	}
	want := tree.LeafCount()
	step := tree.CommittedStep()

	nv.FlipBit(100_000, 0) // arena allocation bitmap: every local candidate dies
	if _, _, err := core.RestoreWithReport(mkCfg(nv)); err == nil {
		t.Fatal("local restore should fail with corrupt metadata")
	}

	img, moveNs, err := m.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if moveNs <= 0 {
		t.Error("replica move charged no time")
	}
	if !img.MediaTracking() {
		t.Error("failover image lost media tracking")
	}
	restored, rep, err := core.RestoreWithReport(mkCfg(img))
	if err != nil {
		t.Fatalf("failover restore failed: %v", err)
	}
	if rep.ChosenStep != step || rep.Fallbacks != 0 {
		t.Errorf("report = %+v, want the synced step %d with no fallback", rep, step)
	}
	if restored.LeafCount() != want {
		t.Errorf("failover recovered %d leaves, want %d", restored.LeafCount(), want)
	}
	if err := restored.Validate(); err != nil {
		t.Fatal(err)
	}
}
