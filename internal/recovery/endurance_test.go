package recovery

import (
	"testing"

	"pmoctree/internal/core"
	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/sim"
)

// TestCrashEveryFewStepsMatchesCrashFreeRun is the end-to-end durability
// claim: a simulation that crashes repeatedly — mid-step, with the
// working version half-built — and restarts from NVBM each time must end
// in EXACTLY the state of a run that never crashed. This holds because
// the workload is deterministic per step and pm_restore always returns
// the last committed version, so the crashed step is simply re-executed.
func TestCrashEveryFewStepsMatchesCrashFreeRun(t *testing.T) {
	const (
		steps      = 12
		maxLevel   = 4
		crashEvery = 3
	)
	d := sim.NewDroplet(sim.DropletConfig{Steps: steps + 5})

	runStep := func(tree *core.Tree, s int) {
		sim.StepField(tree, d, s, maxLevel)
		tree.SetFeatures(sim.FeatureOf(d, s+1))
		tree.Persist()
	}

	// Reference: no crashes.
	ref := core.Create(core.Config{Seed: 9})
	for s := 1; s <= steps; s++ {
		runStep(ref, s)
	}
	want := map[morton.Code][core.DataWords]float64{}
	ref.ForEachLeaf(func(c morton.Code, data [core.DataWords]float64) bool {
		want[c] = data
		return true
	})

	// Crashing run: every crashEvery steps the process dies midway
	// through the NEXT step (after the refine phase, before persist) and
	// restarts from the device.
	nv := nvbm.New(nvbm.NVBM, 0)
	dram := nvbm.New(nvbm.DRAM, 0)
	tree := core.Create(core.Config{NVBMDevice: nv, DRAMDevice: dram, Seed: 9})
	s := 1
	crashes := 0
	for s <= steps {
		if s%crashEvery == 0 && crashes < s/crashEvery {
			// Begin the step, then lose power.
			tree.RefineWhere(sim.RefinePredOf(d, s), maxLevel)
			tree.UpdateLeaves(sim.SolveOf(d, s))
			dram.Crash()
			crashes++
			restored, err := core.Restore(core.Config{NVBMDevice: nv, DRAMDevice: nvbm.New(nvbm.DRAM, 0), Seed: 9})
			if err != nil {
				t.Fatalf("restore after crash %d: %v", crashes, err)
			}
			tree = restored
			// Resume: the interrupted step re-executes in full.
			continueStep := int(tree.Step()) // committed step + 1
			if continueStep != s {
				t.Fatalf("restored at step %d, expected to resume %d", continueStep, s)
			}
		}
		runStep(tree, s)
		s++
	}
	if crashes == 0 {
		t.Fatal("test never crashed")
	}

	got := map[morton.Code][core.DataWords]float64{}
	tree.ForEachLeaf(func(c morton.Code, data [core.DataWords]float64) bool {
		got[c] = data
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("crashing run ended with %d leaves, crash-free run %d", len(got), len(want))
	}
	for c, w := range want {
		if got[c] != w {
			t.Fatalf("leaf %v diverged: %v vs %v", c, got[c], w)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	t.Logf("survived %d crashes; final state identical to crash-free run (%d leaves)", crashes, len(got))
}

// TestCrashDuringPersistMatchesToo injects the crash at the most delicate
// moment — a bounded number of writes INTO Persist — then resumes and
// finishes; the end state must still match the crash-free run (either the
// interrupted commit landed, and the resumed run continues from it, or it
// did not, and the step re-executes).
func TestCrashDuringPersistMatchesToo(t *testing.T) {
	const (
		steps    = 6
		maxLevel = 3
	)
	d := sim.NewDroplet(sim.DropletConfig{Steps: steps + 5})
	step := func(tree *core.Tree, s int) {
		sim.StepField(tree, d, s, maxLevel)
		tree.SetFeatures(sim.FeatureOf(d, s+1))
		tree.Persist()
	}
	ref := core.Create(core.Config{Seed: 4})
	for s := 1; s <= steps; s++ {
		step(ref, s)
	}
	want := map[morton.Code][core.DataWords]float64{}
	ref.ForEachLeaf(func(c morton.Code, data [core.DataWords]float64) bool {
		want[c] = data
		return true
	})

	for _, cutWrites := range []int{5, 50, 500} {
		nv := nvbm.New(nvbm.NVBM, 0)
		tree := core.Create(core.Config{NVBMDevice: nv, Seed: 4})
		for s := 1; s <= 3; s++ {
			step(tree, s)
		}
		// Crash partway into step 4's persist.
		sim.StepField(tree, d, 4, maxLevel)
		tree.SetFeatures(sim.FeatureOf(d, 5))
		nv.CutPowerAfter(cutWrites)
		func() {
			defer func() { recover() }()
			tree.Persist()
		}()
		nv.RestorePower()

		restored, err := core.Restore(core.Config{NVBMDevice: nv, Seed: 4})
		if err != nil {
			t.Fatalf("cut %d: %v", cutWrites, err)
		}
		// Resume from whatever committed: re-run the lost step if needed,
		// then continue to the end.
		for s := int(restored.Step()); s <= steps; s++ {
			step(restored, s)
		}
		got := map[morton.Code][core.DataWords]float64{}
		restored.ForEachLeaf(func(c morton.Code, data [core.DataWords]float64) bool {
			got[c] = data
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("cut %d: %d leaves vs %d crash-free", cutWrites, len(got), len(want))
		}
		for c, w := range want {
			if got[c] != w {
				t.Fatalf("cut %d: leaf %v diverged", cutWrites, c)
			}
		}
	}
}
