// Package recovery reproduces the failure-recovery experiment of §5.6:
// kill a running simulation mid-step and measure the time to restart it,
// for each octree implementation, in two scenarios — the crashed node
// comes back (its NVBM contents survive), or a replacement node takes
// over (NVBM contents must come from a replica).
//
// Restart costs, by implementation:
//
//   - in-core: the full snapshot file is read back from NVBM through the
//     page interface and the pointer tree rebuilt; any steps after the
//     last snapshot are lost.
//   - PM-octree, same node: pm_restore — reopen the arena (a state-byte
//     scan) and return ADDR(V(i-1)); octants only reachable from the lost
//     working version are left for background GC.
//   - PM-octree, new node: additionally move the replica of V(i-1) over
//     the network. Replicas are kept consistent during the run by
//     shipping per-step deltas (the paper stores "the differences of
//     V(i-1) and V(i)" on a peer node, exploiting the high overlap
//     ratio).
//   - out-of-core, same node: the octant database is already consistent;
//     recovery is immediate.
//   - out-of-core, new node: unrecoverable — Etree octants are not
//     replicated (§5.6).
package recovery

import (
	"fmt"

	"pmoctree/internal/cluster"
	"pmoctree/internal/core"
	"pmoctree/internal/etree"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/sim"
	"pmoctree/internal/telemetry"
)

// Config parameterizes the recovery experiment.
type Config struct {
	// Impl is the octree implementation under test.
	Impl cluster.Impl
	// SameNode selects the recovery scenario: true if the crashed node
	// reboots with its NVBM intact.
	SameNode bool
	// MaxLevel bounds mesh refinement.
	MaxLevel uint8
	// CrashStep is the step during which the process is killed.
	CrashStep int
	// DropletSteps is the workload length.
	DropletSteps int
	// Net models the interconnect for replica traffic.
	Net cluster.Network
	// Cost prices CPU work during restart (tree rebuild).
	Cost cluster.CostModel
	// Replicate enables delta-shipping of the persistent version to a
	// peer node (PM-octree only; the paper's user-enabled feature).
	Replicate bool
	// Obs, when set, receives restart-phase events ("Restore",
	// "ReplicaMove", "SnapshotReload") on the modeled clock.
	Obs *telemetry.Observer
}

// emit publishes one restart phase with its modeled duration, tagged with
// the crash step. No-op without an observer.
func (c Config) emit(name string, durNs float64) {
	if c.Obs == nil {
		return
	}
	c.Obs.Trace.Emit(telemetry.Event{
		Name:      name,
		Step:      uint64(c.CrashStep),
		DurNs:     int64(durNs),
		ModeledNs: uint64(durNs),
	})
}

func (c Config) withDefaults() Config {
	if c.Impl == "" {
		c.Impl = cluster.PMOctree
	}
	if c.MaxLevel == 0 {
		c.MaxLevel = 5
	}
	if c.CrashStep <= 0 {
		c.CrashStep = 10
	}
	if c.DropletSteps <= 0 {
		c.DropletSteps = 50
	}
	if c.Net == (cluster.Network{}) {
		c.Net = cluster.Gemini()
	}
	if c.Cost == (cluster.CostModel{}) {
		c.Cost = cluster.DefaultCost()
	}
	return c
}

// Report is the outcome of one recovery scenario.
type Report struct {
	Impl     cluster.Impl
	SameNode bool
	// Recovered is false when the scenario cannot recover at all
	// (out-of-core on a lost node).
	Recovered bool
	// RestartNs is the modeled time to make the mesh usable again.
	RestartNs float64
	// ReplicaMoveNs is the portion of RestartNs spent moving the replica
	// to the replacement node (PM-octree, lost node).
	ReplicaMoveNs float64
	// ReplicationOverheadNs is the modeled network time spent shipping
	// deltas during the run (the price of enabling replication).
	ReplicationOverheadNs float64
	// ReplicatedBytes is the wire volume of the delivered delta frames.
	ReplicatedBytes uint64
	// Elements is the mesh size recovered.
	Elements int
	// StepResumed is the time step the recovered state corresponds to.
	StepResumed int
	// StepsLost counts steps of work lost (in-core loses work since the
	// last snapshot).
	StepsLost int
}

// Run executes the crash/restart scenario.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	d := sim.NewDroplet(sim.DropletConfig{Steps: cfg.DropletSteps})
	rep := Report{Impl: cfg.Impl, SameNode: cfg.SameNode}

	switch cfg.Impl {
	case cluster.PMOctree:
		return runPM(cfg, d, rep)
	case cluster.InCore:
		return runInCore(cfg, d, rep)
	case cluster.OutOfCore:
		return runEtree(cfg, d, rep)
	default:
		return rep, fmt.Errorf("recovery: unknown implementation %q", cfg.Impl)
	}
}

func runPM(cfg Config, d *sim.Droplet, rep Report) (Report, error) {
	nv := nvbm.New(nvbm.NVBM, 0)
	dram := nvbm.New(nvbm.DRAM, 0)
	tree := core.Create(core.Config{NVBMDevice: nv, DRAMDevice: dram})

	// Replication maintains a persistent replica image on a peer node by
	// shipping per-step delta frames; the image, the modeled network
	// cost, and the shipped-byte count all describe the same transfer.
	var mgr *ReplicaManager
	if cfg.Replicate || !cfg.SameNode {
		mgr = NewReplicaManager(2, 0, cfg.Net)
	}
	for s := 1; s < cfg.CrashStep; s++ {
		sim.Step(tree, d, s, cfg.MaxLevel)
		tree.SetFeatures(d.Feature(s + 1))
		tree.Persist()
		if mgr != nil {
			if err := mgr.Sync(0, nv); err != nil {
				return rep, err
			}
		}
	}
	if mgr != nil {
		rep.ReplicationOverheadNs = mgr.ShippedNs
		rep.ReplicatedBytes = mgr.ShippedBytes
	}
	// Crash mid-step: the working version is partially built when power
	// fails.
	tree.RefineWhere(d.RefinePred(cfg.CrashStep), cfg.MaxLevel)
	dram.Crash()

	// Restart.
	device := nv
	if !cfg.SameNode {
		img, moveNs, err := mgr.Recover(0)
		if err != nil {
			return rep, fmt.Errorf("recovery: no replica available for lost-node recovery: %w", err)
		}
		// The replacement node pulls the replica image over the network.
		rep.ReplicaMoveNs = moveNs
		device = img
	}
	m0 := float64(device.Stats().ModeledNs)
	restored, err := core.Restore(core.Config{NVBMDevice: device, DRAMDevice: nvbm.New(nvbm.DRAM, 0)})
	if err != nil {
		return rep, err
	}
	cfg.emit("Restore", float64(device.Stats().ModeledNs)-m0)
	rep.RestartNs = float64(device.Stats().ModeledNs) - m0 + rep.ReplicaMoveNs
	rep.Recovered = true
	rep.Elements = restored.LeafCount()
	rep.StepResumed = cfg.CrashStep - 1
	return rep, nil
}

func runInCore(cfg Config, d *sim.Droplet, rep Report) (Report, error) {
	snap := nvbm.New(nvbm.NVBM, 0)
	m := sim.NewInCore(snap)
	lastSnap := 0
	for s := 1; s < cfg.CrashStep; s++ {
		sim.Step(m, d, s, cfg.MaxLevel)
		if err := m.PersistStep(s); err != nil {
			return rep, err
		}
		if s%m.SnapshotEvery == 0 {
			lastSnap = s
		}
	}
	if lastSnap == 0 {
		return rep, fmt.Errorf("recovery: crashed before the first snapshot; nothing to restore")
	}
	// Crash: the pointer tree lives in process memory and is simply
	// gone. Snapshot files survive — on the crashed node's NVBM or on
	// the shared parallel file system (the paper notes the time is the
	// same in both scenarios for in-core).
	m0 := float64(snap.Stats().ModeledNs)
	tree, err := func() (*sim.InCore, error) {
		t, err := snapshotRestore(snap)
		return t, err
	}()
	if err != nil {
		return rep, err
	}
	rebuildCPU := float64(tree.Tree.NodeCount()) * cfg.Cost.TraverseNs
	rep.RestartNs = float64(snap.Stats().ModeledNs) - m0 + rebuildCPU
	cfg.emit("SnapshotReload", rep.RestartNs)
	rep.Recovered = true
	rep.Elements = tree.LeafCount()
	rep.StepResumed = lastSnap
	rep.StepsLost = cfg.CrashStep - 1 - lastSnap
	return rep, nil
}

// snapshotRestore reloads the in-core tree from its snapshot device.
func snapshotRestore(snap *nvbm.Device) (*sim.InCore, error) {
	t, err := snapshotTree(snap)
	if err != nil {
		return nil, err
	}
	m := sim.NewInCore(snap)
	m.Tree = t
	return m, nil
}

func runEtree(cfg Config, d *sim.Droplet, rep Report) (Report, error) {
	dev := nvbm.New(nvbm.NVBM, 0)
	m := etree.New(dev)
	for s := 1; s < cfg.CrashStep; s++ {
		sim.Step(m, d, s, cfg.MaxLevel)
	}
	if !cfg.SameNode {
		// Octants in the Etree database are not replicated (§5.6).
		rep.Recovered = false
		return rep, nil
	}
	m0 := float64(dev.Stats().ModeledNs)
	re, err := etree.Open(dev)
	if err != nil {
		return rep, err
	}
	rep.RestartNs = float64(dev.Stats().ModeledNs) - m0
	cfg.emit("Restore", rep.RestartNs)
	rep.Recovered = true
	rep.Elements = re.LeafCount()
	rep.StepResumed = cfg.CrashStep - 1
	return rep, nil
}
