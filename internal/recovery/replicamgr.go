package recovery

import (
	"fmt"
	"sort"

	"pmoctree/internal/cluster"
	"pmoctree/internal/nvbm"
)

// Node is one machine in the replica pool, with its NVBM device and the
// replica images it hosts for other nodes.
type Node struct {
	ID       int
	replicas map[int]*nvbm.Device // primary node id -> replica image
	// usedBytes approximates this node's NVBM utilization for placement.
	usedBytes int
	capacity  int
}

// Used returns the node's consumed replica bytes.
func (n *Node) Used() int { return n.usedBytes }

// ReplicaManager automates remote-replica scheduling — the paper's §3.4
// feature ("V(i-1)^P is stored on other compute nodes or staging nodes
// selected by job schedulers according to their NVBM utilization") with
// the automated placement it leaves as future work:
//
//   - Place picks the least-utilized node (never the primary itself);
//   - Sync ships only the bytes written since the last sync, which the
//     high inter-step overlap ratio keeps small;
//   - Recover hands the replica image to a replacement node.
type ReplicaManager struct {
	nodes []*Node
	net   cluster.Network
	// link, when set, carries every frame over a lossy network with
	// retry/backoff; nil means the lossless alpha-beta model.
	link *cluster.LossyNetwork
	// placement maps a primary node id to its replica host.
	placement map[int]int
	// syncSeq numbers Sync attempts per primary; lastGood remembers the
	// sequence of the last delivered frame, so a degraded replica (one or
	// more failed syncs since) is detectable.
	syncSeq  map[int]uint64
	lastGood map[int]uint64
	// failedSyncs counts consecutive undeliverable frames per primary.
	failedSyncs map[int]int
	// ShippedBytes and ShippedNs accumulate replication traffic (wire
	// bytes of delivered frames; modeled time of all attempts).
	ShippedBytes uint64
	ShippedNs    float64
	// FramesShipped counts delivered delta frames.
	FramesShipped uint64
}

// NewReplicaManager builds a pool of n nodes, each with the given replica
// capacity in bytes (0 = unlimited), connected by net.
func NewReplicaManager(n int, capacityBytes int, net cluster.Network) *ReplicaManager {
	m := &ReplicaManager{
		net:         net,
		placement:   map[int]int{},
		syncSeq:     map[int]uint64{},
		lastGood:    map[int]uint64{},
		failedSyncs: map[int]int{},
	}
	for i := 0; i < n; i++ {
		m.nodes = append(m.nodes, &Node{
			ID:       i,
			replicas: map[int]*nvbm.Device{},
			capacity: capacityBytes,
		})
	}
	return m
}

// SetLink routes all replica frames over l, a seeded lossy network with
// retry and exponential backoff. Frames that exhaust the retry budget
// leave the replica stale (degraded) until a later sync succeeds.
func (m *ReplicaManager) SetLink(l *cluster.LossyNetwork) { m.link = l }

// Place assigns (or returns the existing) replica host for the primary on
// node primaryID needing approximately bytes of space: the least-utilized
// node with capacity, excluding the primary itself.
func (m *ReplicaManager) Place(primaryID int, bytes int) (*Node, error) {
	if host, ok := m.placement[primaryID]; ok {
		return m.nodes[host], nil
	}
	candidates := make([]*Node, 0, len(m.nodes))
	for _, n := range m.nodes {
		if n.ID == primaryID {
			continue
		}
		if n.capacity > 0 && n.usedBytes+bytes > n.capacity {
			continue
		}
		candidates = append(candidates, n)
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("recovery: no node can host a %d-byte replica for node %d", bytes, primaryID)
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].usedBytes != candidates[j].usedBytes {
			return candidates[i].usedBytes < candidates[j].usedBytes
		}
		return candidates[i].ID < candidates[j].ID
	})
	host := candidates[0]
	m.placement[primaryID] = host.ID
	return host, nil
}

// Sync replicates the primary's persistent region to its host by shipping
// one checksummed delta frame: exactly the device lines that differ from
// the replica image travel the wire, and exactly those lines are applied
// to the persistent replica image on delivery — modeled cost, replica
// memory, and shipped bytes agree. Call it after each Persist.
//
// Lines failing the primary's media CRC (when tracking is on) are
// excluded from the frame, so bit-rot never propagates into the replica.
// With a lossy link, a frame that exhausts its retry budget leaves the
// replica at its previous (still commit-consistent) contents and marks it
// degraded; the error wraps cluster.ErrLinkFailure.
func (m *ReplicaManager) Sync(primaryID int, primary *nvbm.Device) error {
	host, err := m.Place(primaryID, primary.Size())
	if err != nil {
		return err
	}
	replica := host.replicas[primaryID]
	if replica == nil {
		replica = nvbm.New(nvbm.NVBM, 0)
		if primary.MediaTracking() {
			// The replica keeps its own CRC shadow, so a failover image
			// arrives with media protection already in force.
			replica.EnableMediaTracking()
		}
		host.replicas[primaryID] = replica
	}
	lines := primary.DiffLines(replica)
	if primary.MediaTracking() {
		clean := lines[:0]
		for _, line := range lines {
			if !primary.RangeCorrupt(line*nvbm.LineSize, nvbm.LineSize) {
				clean = append(clean, line)
			}
		}
		lines = clean
	}
	m.syncSeq[primaryID]++
	frame := buildFrame(primary, lines, m.syncSeq[primaryID])
	wire := frame.WireBytes()
	if m.link != nil {
		ns, err := m.link.Ship(wire)
		m.ShippedNs += ns
		if err != nil {
			m.failedSyncs[primaryID]++
			return fmt.Errorf("recovery: replica sync for node %d (seq %d): %w",
				primaryID, frame.Seq, err)
		}
	} else {
		m.ShippedNs += m.net.Transfer(wire)
	}
	if !frame.Verify() {
		// Defensive: a delivered frame always verifies (corrupt attempts
		// are NACKed inside Ship); a mismatch here means sender-side
		// memory corruption between Seal and delivery.
		m.failedSyncs[primaryID]++
		return fmt.Errorf("recovery: replica frame for node %d failed checksum after delivery", primaryID)
	}
	oldSize := replica.Size()
	replica.ApplyLines(primary, frame.Lines)
	host.usedBytes += replica.Size() - oldSize
	m.ShippedBytes += uint64(wire)
	m.FramesShipped++
	m.lastGood[primaryID] = frame.Seq
	m.failedSyncs[primaryID] = 0
	return nil
}

// ReplicaImage returns the live replica image for primaryID (nil when no
// sync has succeeded yet). The image is owned by its host node; callers
// may read it (e.g. as a scrub repair source) but must not write it.
func (m *ReplicaManager) ReplicaImage(primaryID int) *nvbm.Device {
	hostID, ok := m.placement[primaryID]
	if !ok {
		return nil
	}
	return m.nodes[hostID].replicas[primaryID]
}

// ReplicaState describes one replica's health for the degraded-mode
// report.
type ReplicaState struct {
	PrimaryID   int
	HostID      int
	SyncedSeq   uint64 // sequence of the last delivered frame
	CurrentSeq  uint64 // sequence of the last attempted frame
	FailedSyncs int    // consecutive undeliverable frames since the last success
	Degraded    bool   // replica lags the primary (or never synced)
}

// Report returns the health of every placed replica, sorted by primary
// id. A replica is degraded when its last delivered frame is older than
// the last attempted one — after a crash it would recover an older
// committed version than the primary held.
func (m *ReplicaManager) Report() []ReplicaState {
	ids := make([]int, 0, len(m.placement))
	for id := range m.placement {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]ReplicaState, 0, len(ids))
	for _, id := range ids {
		st := ReplicaState{
			PrimaryID:   id,
			HostID:      m.placement[id],
			SyncedSeq:   m.lastGood[id],
			CurrentSeq:  m.syncSeq[id],
			FailedSyncs: m.failedSyncs[id],
		}
		st.Degraded = st.SyncedSeq < st.CurrentSeq
		out = append(out, st)
	}
	return out
}

// Recover returns a copy of the replica image for the failed primary,
// charging the transfer to the replacement node. The replica itself stays
// on its host (it remains the recovery point until the replacement
// re-syncs).
func (m *ReplicaManager) Recover(primaryID int) (*nvbm.Device, float64, error) {
	hostID, ok := m.placement[primaryID]
	if !ok {
		return nil, 0, fmt.Errorf("recovery: node %d has no replica", primaryID)
	}
	img := m.nodes[hostID].replicas[primaryID]
	if img == nil {
		return nil, 0, fmt.Errorf("recovery: replica for node %d missing on host %d", primaryID, hostID)
	}
	ns := m.net.Transfer(img.Size())
	return img.Clone(), ns, nil
}

// HostOf reports which node hosts the replica for primaryID.
func (m *ReplicaManager) HostOf(primaryID int) (int, bool) {
	h, ok := m.placement[primaryID]
	return h, ok
}

// Nodes exposes the pool for inspection.
func (m *ReplicaManager) Nodes() []*Node { return m.nodes }
