package recovery

import (
	"fmt"
	"sort"

	"pmoctree/internal/cluster"
	"pmoctree/internal/nvbm"
)

// Node is one machine in the replica pool, with its NVBM device and the
// replica images it hosts for other nodes.
type Node struct {
	ID       int
	replicas map[int]*nvbm.Device // primary node id -> replica image
	// usedBytes approximates this node's NVBM utilization for placement.
	usedBytes int
	capacity  int
}

// Used returns the node's consumed replica bytes.
func (n *Node) Used() int { return n.usedBytes }

// ReplicaManager automates remote-replica scheduling — the paper's §3.4
// feature ("V(i-1)^P is stored on other compute nodes or staging nodes
// selected by job schedulers according to their NVBM utilization") with
// the automated placement it leaves as future work:
//
//   - Place picks the least-utilized node (never the primary itself);
//   - Sync ships only the bytes written since the last sync, which the
//     high inter-step overlap ratio keeps small;
//   - Recover hands the replica image to a replacement node.
type ReplicaManager struct {
	nodes []*Node
	net   cluster.Network
	// placement maps a primary node id to its replica host.
	placement map[int]int
	// lastSynced tracks cumulative written bytes per primary at the
	// last sync, to compute deltas.
	lastSynced map[int]uint64
	// ShippedBytes and ShippedNs accumulate replication traffic.
	ShippedBytes uint64
	ShippedNs    float64
}

// NewReplicaManager builds a pool of n nodes, each with the given replica
// capacity in bytes, connected by net.
func NewReplicaManager(n int, capacityBytes int, net cluster.Network) *ReplicaManager {
	m := &ReplicaManager{
		net:        net,
		placement:  map[int]int{},
		lastSynced: map[int]uint64{},
	}
	for i := 0; i < n; i++ {
		m.nodes = append(m.nodes, &Node{
			ID:       i,
			replicas: map[int]*nvbm.Device{},
			capacity: capacityBytes,
		})
	}
	return m
}

// Place assigns (or returns the existing) replica host for the primary on
// node primaryID needing approximately bytes of space: the least-utilized
// node with capacity, excluding the primary itself.
func (m *ReplicaManager) Place(primaryID int, bytes int) (*Node, error) {
	if host, ok := m.placement[primaryID]; ok {
		return m.nodes[host], nil
	}
	candidates := make([]*Node, 0, len(m.nodes))
	for _, n := range m.nodes {
		if n.ID == primaryID {
			continue
		}
		if n.capacity > 0 && n.usedBytes+bytes > n.capacity {
			continue
		}
		candidates = append(candidates, n)
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("recovery: no node can host a %d-byte replica for node %d", bytes, primaryID)
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].usedBytes != candidates[j].usedBytes {
			return candidates[i].usedBytes < candidates[j].usedBytes
		}
		return candidates[i].ID < candidates[j].ID
	})
	host := candidates[0]
	m.placement[primaryID] = host.ID
	return host, nil
}

// Sync replicates the primary's persistent region to its host, shipping
// only the delta written since the last sync. Call it after each Persist.
func (m *ReplicaManager) Sync(primaryID int, primary *nvbm.Device) error {
	host, err := m.Place(primaryID, primary.Size())
	if err != nil {
		return err
	}
	written := primary.Stats().WriteBytes
	delta := written - m.lastSynced[primaryID]
	m.lastSynced[primaryID] = written

	old := host.replicas[primaryID]
	host.replicas[primaryID] = primary.Clone()
	if old != nil {
		host.usedBytes -= old.Size()
	}
	host.usedBytes += primary.Size()

	m.ShippedBytes += delta
	m.ShippedNs += m.net.Transfer(int(delta))
	return nil
}

// Recover returns a copy of the replica image for the failed primary,
// charging the transfer to the replacement node. The replica itself stays
// on its host (it remains the recovery point until the replacement
// re-syncs).
func (m *ReplicaManager) Recover(primaryID int) (*nvbm.Device, float64, error) {
	hostID, ok := m.placement[primaryID]
	if !ok {
		return nil, 0, fmt.Errorf("recovery: node %d has no replica", primaryID)
	}
	img := m.nodes[hostID].replicas[primaryID]
	if img == nil {
		return nil, 0, fmt.Errorf("recovery: replica for node %d missing on host %d", primaryID, hostID)
	}
	ns := m.net.Transfer(img.Size())
	return img.Clone(), ns, nil
}

// HostOf reports which node hosts the replica for primaryID.
func (m *ReplicaManager) HostOf(primaryID int) (int, bool) {
	h, ok := m.placement[primaryID]
	return h, ok
}

// Nodes exposes the pool for inspection.
func (m *ReplicaManager) Nodes() []*Node { return m.nodes }
