package recovery

import (
	"testing"

	"pmoctree/internal/cluster"
	"pmoctree/internal/core"
	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/sim"
)

func TestPlacePicksLeastUtilized(t *testing.T) {
	m := NewReplicaManager(3, 1<<20, cluster.Gemini())
	m.Nodes()[1].usedBytes = 1000

	host, err := m.Place(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if host.ID != 2 {
		t.Errorf("placed on node %d, want 2 (least utilized, not primary)", host.ID)
	}
	// Placement is sticky.
	again, _ := m.Place(0, 100)
	if again.ID != host.ID {
		t.Error("placement not sticky")
	}
}

func TestPlaceNeverSelf(t *testing.T) {
	m := NewReplicaManager(2, 1<<20, cluster.Gemini())
	host, err := m.Place(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if host.ID == 1 {
		t.Error("replica placed on the primary itself")
	}
}

func TestPlaceCapacityExhausted(t *testing.T) {
	m := NewReplicaManager(2, 50, cluster.Gemini())
	if _, err := m.Place(0, 100); err == nil {
		t.Error("expected capacity error")
	}
}

func TestSyncAndRecoverRoundTrip(t *testing.T) {
	m := NewReplicaManager(4, 1<<22, cluster.Gemini())
	nv := nvbm.New(nvbm.NVBM, 0)
	tree := core.Create(core.Config{NVBMDevice: nv})
	d := sim.NewDroplet(sim.DropletConfig{Steps: 30})

	for s := 1; s <= 3; s++ {
		sim.Step(tree, d, s, 4)
		tree.Persist()
		if err := m.Sync(0, nv); err != nil {
			t.Fatal(err)
		}
	}
	want := tree.LeafCount()
	if m.ShippedBytes == 0 || m.ShippedNs == 0 {
		t.Error("no replication traffic accounted")
	}
	// Deltas, not full images: shipped bytes should far undercut 3 full
	// copies.
	if m.ShippedBytes >= uint64(3*nv.Size()) {
		t.Errorf("shipped %d bytes for 3 syncs of a %d-byte region: not delta-based",
			m.ShippedBytes, nv.Size())
	}

	// The primary's node burns down; a replacement recovers the image.
	img, moveNs, err := m.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if moveNs <= 0 {
		t.Error("free replica move")
	}
	restored, err := core.Restore(core.Config{NVBMDevice: img})
	if err != nil {
		t.Fatal(err)
	}
	if restored.LeafCount() != want {
		t.Errorf("recovered %d leaves, want %d", restored.LeafCount(), want)
	}
	if err := restored.Validate(); err != nil {
		t.Fatal(err)
	}
	// The recovered tree keeps simulating.
	sim.Step(restored, d, 4, 4)
	restored.Persist()
}

func TestRecoverWithoutReplica(t *testing.T) {
	m := NewReplicaManager(2, 1<<20, cluster.Gemini())
	if _, _, err := m.Recover(0); err == nil {
		t.Error("expected error for unreplicated node")
	}
}

func TestPlacementSpreadsLoad(t *testing.T) {
	m := NewReplicaManager(4, 1<<20, cluster.Gemini())
	// Three primaries from node 0..2 should not pile onto one host.
	hosts := map[int]int{}
	for p := 0; p < 3; p++ {
		dev := nvbm.New(nvbm.NVBM, 4096)
		dev.WriteAt(0, make([]byte, 64))
		if err := m.Sync(p, dev); err != nil {
			t.Fatal(err)
		}
		h, _ := m.HostOf(p)
		hosts[h]++
	}
	for h, n := range hosts {
		if n > 2 {
			t.Errorf("host %d carries %d replicas; placement not spreading", h, n)
		}
	}
}

func TestSyncKeepsLatestVersionOnly(t *testing.T) {
	m := NewReplicaManager(2, 1<<22, cluster.Gemini())
	nv := nvbm.New(nvbm.NVBM, 0)
	tree := core.Create(core.Config{NVBMDevice: nv})
	tree.RefineWhere(func(c morton.Code) bool { return c.Level() < 1 }, 1)
	tree.Persist()
	if err := m.Sync(0, nv); err != nil {
		t.Fatal(err)
	}
	tree.RefineWhere(func(c morton.Code) bool { return c.Level() < 2 }, 2)
	tree.Persist()
	if err := m.Sync(0, nv); err != nil {
		t.Fatal(err)
	}
	img, _, err := m.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.Restore(core.Config{NVBMDevice: img})
	if err != nil {
		t.Fatal(err)
	}
	if restored.LeafCount() != 64 {
		t.Errorf("replica holds %d leaves, want the latest version's 64", restored.LeafCount())
	}
}
