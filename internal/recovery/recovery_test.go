package recovery

import (
	"testing"

	"pmoctree/internal/cluster"
)

func run(t *testing.T, cfg Config) Report {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s same=%v: %v", cfg.Impl, cfg.SameNode, err)
	}
	return rep
}

func TestPMRecoverySameNode(t *testing.T) {
	rep := run(t, Config{Impl: cluster.PMOctree, SameNode: true})
	if !rep.Recovered {
		t.Fatal("not recovered")
	}
	if rep.Elements == 0 {
		t.Error("no elements recovered")
	}
	if rep.StepResumed != 9 {
		t.Errorf("resumed at step %d, want 9", rep.StepResumed)
	}
	if rep.StepsLost != 0 {
		t.Errorf("PM-octree lost %d steps", rep.StepsLost)
	}
	if rep.ReplicaMoveNs != 0 {
		t.Error("same-node recovery moved a replica")
	}
}

func TestPMRecoveryLostNode(t *testing.T) {
	rep := run(t, Config{Impl: cluster.PMOctree, SameNode: false})
	if !rep.Recovered {
		t.Fatal("not recovered")
	}
	if rep.ReplicaMoveNs <= 0 {
		t.Error("lost-node recovery without replica movement")
	}
	if rep.ReplicationOverheadNs <= 0 {
		t.Error("no replication overhead recorded")
	}
	// Lost-node recovery costs more than same-node (paper: 3.48s vs
	// 2.1s).
	same := run(t, Config{Impl: cluster.PMOctree, SameNode: true})
	if rep.RestartNs <= same.RestartNs {
		t.Errorf("lost-node restart (%v) not slower than same-node (%v)",
			rep.RestartNs, same.RestartNs)
	}
}

func TestInCoreRecoveryReadsSnapshot(t *testing.T) {
	rep := run(t, Config{Impl: cluster.InCore, SameNode: true, CrashStep: 15})
	if !rep.Recovered {
		t.Fatal("not recovered")
	}
	if rep.StepResumed != 10 {
		t.Errorf("resumed at step %d, want last snapshot 10", rep.StepResumed)
	}
	if rep.StepsLost != 4 {
		t.Errorf("lost %d steps, want 4", rep.StepsLost)
	}
}

func TestInCoreCrashBeforeSnapshotFails(t *testing.T) {
	if _, err := Run(Config{Impl: cluster.InCore, SameNode: true, CrashStep: 5}); err == nil {
		t.Error("expected error crashing before the first snapshot")
	}
}

func TestEtreeRecoveryInstant(t *testing.T) {
	rep := run(t, Config{Impl: cluster.OutOfCore, SameNode: true})
	if !rep.Recovered {
		t.Fatal("not recovered")
	}
	if rep.StepsLost != 0 {
		t.Errorf("etree lost %d steps", rep.StepsLost)
	}
}

func TestEtreeCannotRecoverOnLostNode(t *testing.T) {
	rep := run(t, Config{Impl: cluster.OutOfCore, SameNode: false})
	if rep.Recovered {
		t.Error("etree recovered without replicas on a lost node")
	}
}

func TestRecoveryOrderingMatchesPaper(t *testing.T) {
	// §5.6 scenario 1 ordering: etree ~ instant < PM-octree << in-core.
	crash := 15
	pm := run(t, Config{Impl: cluster.PMOctree, SameNode: true, CrashStep: crash})
	ic := run(t, Config{Impl: cluster.InCore, SameNode: true, CrashStep: crash})
	et := run(t, Config{Impl: cluster.OutOfCore, SameNode: true, CrashStep: crash})

	if pm.RestartNs >= ic.RestartNs {
		t.Errorf("PM restart (%v ns) not faster than in-core (%v ns)", pm.RestartNs, ic.RestartNs)
	}
	if et.RestartNs >= ic.RestartNs {
		t.Errorf("etree restart (%v ns) not faster than in-core (%v ns)", et.RestartNs, ic.RestartNs)
	}
	// The paper reports 42.9s vs 2.1s — a 20x gap. At our scale expect
	// at least several-fold.
	if ic.RestartNs < pm.RestartNs*3 {
		t.Errorf("in-core/PM restart ratio only %.1fx", ic.RestartNs/pm.RestartNs)
	}
}

func TestUnknownImplErrors(t *testing.T) {
	if _, err := Run(Config{Impl: cluster.Impl("bogus")}); err == nil {
		t.Error("expected error for unknown implementation")
	}
}
