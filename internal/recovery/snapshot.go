package recovery

import (
	"pmoctree/internal/nvbm"
	"pmoctree/internal/octree"
)

// snapshotTree reads the in-core baseline's snapshot file back from the
// device through the page interface — the expensive part of its restart.
func snapshotTree(dev *nvbm.Device) (*octree.Tree, error) {
	return octree.SnapshotFromDevice(dev)
}
