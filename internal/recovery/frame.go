package recovery

import (
	"encoding/binary"
	"hash/crc32"

	"pmoctree/internal/nvbm"
)

// Frame is one checksummed replica-delta message: the LineSize-granular
// lines of the primary's persistent region that changed since the last
// successful sync, plus a CRC-32 the receiver verifies before applying.
// Only the modeled wire size travels through the network model; the
// payload itself is applied locally after a successful Ship.
type Frame struct {
	Seq     uint64 // sync sequence number, detects stale frames
	Lines   []int  // line indices, ascending
	Payload []byte // len(Lines) * LineSize bytes, line contents in order
	CRC     uint32 // CRC-32 (IEEE) over header + line list + payload
}

// frameHeaderBytes is the modeled fixed overhead of one frame on the
// wire: magic+seq+count (16) and the trailing CRC (4), rounded up.
const frameHeaderBytes = 24

// buildFrame assembles the delta frame for the given lines of src.
func buildFrame(src *nvbm.Device, lines []int, seq uint64) *Frame {
	b := src.Bytes()
	f := &Frame{Seq: seq, Lines: lines}
	f.Payload = make([]byte, 0, len(lines)*nvbm.LineSize)
	for _, line := range lines {
		lo := line * nvbm.LineSize
		hi := min(lo+nvbm.LineSize, len(b))
		chunk := make([]byte, nvbm.LineSize)
		if lo < hi {
			copy(chunk, b[lo:hi])
		}
		f.Payload = append(f.Payload, chunk...)
	}
	f.Seal()
	return f
}

// WireBytes returns the modeled on-wire size of the frame: header and
// checksum, an 8-byte index per line, and the line contents.
func (f *Frame) WireBytes() int {
	return frameHeaderBytes + len(f.Lines)*8 + len(f.Payload)
}

// checksum covers the sequence number, the line list, and the payload, so
// neither reordered indices nor damaged contents verify.
func (f *Frame) checksum() uint32 {
	h := crc32.NewIEEE()
	var u [8]byte
	binary.LittleEndian.PutUint64(u[:], f.Seq)
	h.Write(u[:])
	for _, line := range f.Lines {
		binary.LittleEndian.PutUint64(u[:], uint64(line))
		h.Write(u[:])
	}
	h.Write(f.Payload)
	return h.Sum32()
}

// Seal stamps the frame's checksum.
func (f *Frame) Seal() { f.CRC = f.checksum() }

// Verify reports whether the frame's contents match its checksum — the
// receiver-side integrity check before a delta is applied.
func (f *Frame) Verify() bool { return f.CRC == f.checksum() }
