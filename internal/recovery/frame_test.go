package recovery

import (
	"testing"

	"pmoctree/internal/nvbm"
)

func TestFrameSealVerify(t *testing.T) {
	src := nvbm.New(nvbm.NVBM, 3*nvbm.LineSize)
	src.WriteAt(0, []byte("frame payload under test"))
	f := buildFrame(src, []int{0, 2}, 7)
	if !f.Verify() {
		t.Fatal("freshly sealed frame does not verify")
	}
	if want := frameHeaderBytes + 2*8 + 2*nvbm.LineSize; f.WireBytes() != want {
		t.Errorf("WireBytes = %d, want %d", f.WireBytes(), want)
	}

	f.Payload[5] ^= 0x40
	if f.Verify() {
		t.Error("damaged payload verifies")
	}
	f.Payload[5] ^= 0x40
	if !f.Verify() {
		t.Fatal("repaired payload should verify again")
	}

	f.Lines[0], f.Lines[1] = f.Lines[1], f.Lines[0]
	if f.Verify() {
		t.Error("reordered line indices verify")
	}
	f.Lines[0], f.Lines[1] = f.Lines[1], f.Lines[0]

	f.Seq++
	if f.Verify() {
		t.Error("altered sequence number verifies")
	}
}

// TestFramePartialTailLine: a device whose size is not line-aligned still
// frames its final line, zero-padded to LineSize.
func TestFramePartialTailLine(t *testing.T) {
	src := nvbm.New(nvbm.NVBM, nvbm.LineSize+8)
	src.WriteAt(nvbm.LineSize, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f := buildFrame(src, []int{1}, 1)
	if len(f.Payload) != nvbm.LineSize {
		t.Fatalf("payload = %d bytes, want a full padded line", len(f.Payload))
	}
	if f.Payload[0] != 1 || f.Payload[8] != 0 {
		t.Error("tail line contents or padding wrong")
	}
	if !f.Verify() {
		t.Error("padded frame does not verify")
	}
}
