package morton

import "testing"

// Boundary behavior at the extremes of the code space: the root (level
// 0), the deepest level, and the maximum-coordinate corner cell. Bulk
// construction leans on these edges — complement covers end at the last
// cell, shard spans clamp at the domain boundary — so they get explicit
// coverage beyond the fuzz mask.

func TestBoundaryRoot(t *testing.T) {
	if Root.Level() != 0 {
		t.Fatalf("root level = %d", Root.Level())
	}
	if x, y, z, l := Root.Decode(); x != 0 || y != 0 || z != 0 || l != 0 {
		t.Fatalf("root decodes to (%d,%d,%d,%d)", x, y, z, l)
	}
	if Root.AncestorAt(0) != Root {
		t.Fatal("root is not its own level-0 ancestor")
	}
	if FromKey(Root.Key()) != Root {
		t.Fatal("root key round trip failed")
	}
	// The root's span covers every code: both corner cells and itself.
	lo, hi := Root.KeySpan()
	last := uint32(1)<<MaxLevel - 1
	corner := Encode(last, last, last, MaxLevel)
	if Root.Key() != lo {
		t.Fatal("root key is not its own span minimum")
	}
	if k := corner.Key(); k != hi {
		t.Fatalf("max corner key %#x != root span hi %#x", k, hi)
	}
	if k := Encode(0, 0, 0, MaxLevel).Key(); k < lo || k > hi {
		t.Fatal("origin cell outside root span")
	}
	// No neighbors in any direction at level 0.
	if n := Root.AllNeighbors(nil); len(n) != 0 {
		t.Fatalf("root has %d neighbors", len(n))
	}
	if !Root.IsAncestorOf(corner) || Root.IsAncestorOf(Root) {
		t.Fatal("root ancestry misclassified")
	}
}

func TestBoundaryMaxCorner(t *testing.T) {
	last := uint32(1)<<MaxLevel - 1
	c := Encode(last, last, last, MaxLevel)
	if x, y, z, l := c.Decode(); x != last || y != last || z != last || l != MaxLevel {
		t.Fatalf("corner decodes to (%d,%d,%d,%d)", x, y, z, l)
	}
	if FromKey(c.Key()) != c {
		t.Fatal("corner key round trip failed")
	}
	// A MaxLevel cell's span is exactly itself.
	if lo, hi := c.KeySpan(); lo != c.Key() || hi != c.Key() {
		t.Fatalf("corner span [%#x, %#x] is not the single cell %#x", lo, hi, c.Key())
	}
	// Every ancestor up the chain is the all-ones cell of its level and
	// contains the corner.
	for l := uint8(0); l <= MaxLevel; l++ {
		a := c.AncestorAt(l)
		liml := uint32(1)<<l - 1
		if x, y, z, al := a.Decode(); x != liml || y != liml || z != liml || al != l {
			t.Fatalf("level-%d ancestor decodes to (%d,%d,%d,%d)", l, x, y, z, al)
		}
		if !a.Contains(c) {
			t.Fatalf("level-%d ancestor does not contain the corner", l)
		}
	}
	// Outward steps leave the domain; inward steps stay and decode right.
	if _, ok := c.Neighbor(1, 0, 0); ok {
		t.Fatal("corner has a +x neighbor")
	}
	if _, ok := c.Neighbor(0, 1, 1); ok {
		t.Fatal("corner has a +y+z neighbor")
	}
	n, ok := c.Neighbor(-1, 0, 0)
	if !ok {
		t.Fatal("corner lost its -x neighbor")
	}
	if x, y, z, _ := n.Decode(); x != last-1 || y != last || z != last {
		t.Fatalf("-x neighbor decodes to (%d,%d,%d)", x, y, z)
	}
	// Only the 7 inward neighbors exist at the corner.
	if ns := c.AllNeighbors(nil); len(ns) != 7 {
		t.Fatalf("corner has %d neighbors, want 7", len(ns))
	}
	if fs := c.FaceNeighbors(nil); len(fs) != 3 {
		t.Fatalf("corner has %d face neighbors, want 3", len(fs))
	}
}

func TestBoundaryOriginDeepCell(t *testing.T) {
	c := Encode(0, 0, 0, MaxLevel)
	if _, ok := c.Neighbor(-1, 0, 0); ok {
		t.Fatal("origin cell has a -x neighbor")
	}
	if ns := c.AllNeighbors(nil); len(ns) != 7 {
		t.Fatalf("origin cell has %d neighbors, want 7", len(ns))
	}
	// Its ancestors are the all-zeros path down from the root; its key is
	// the minimum among MaxLevel cells.
	if c.AncestorAt(0) != Root {
		t.Fatal("origin cell's level-0 ancestor is not the root")
	}
	if p := c.Parent(); p != Encode(0, 0, 0, MaxLevel-1) || p.Child(0) != c {
		t.Fatal("origin cell parent/child inconsistent")
	}
	if lo, _ := Root.KeySpan(); c.Key() <= lo {
		t.Fatal("origin cell key does not sort after the root")
	}
}

// TestBoundaryChildSpansPartition: at every level boundary the eight
// child spans tile the parent's descendant range contiguously in Z-order
// — the invariant span-sharded routing and complement covers rest on.
func TestBoundaryChildSpansPartition(t *testing.T) {
	last := uint32(1)<<(MaxLevel-1) - 1
	for _, p := range []Code{Root, Encode(last, last, last, MaxLevel-1)} {
		_, phi := p.KeySpan()
		prev := p.Key()
		for i := 0; i < 8; i++ {
			lo, hi := p.Child(i).KeySpan()
			if lo <= prev {
				t.Fatalf("%v child %d span not after predecessor", p, i)
			}
			prev = hi
		}
		if prev != phi {
			t.Fatalf("%v children end at %#x, parent span ends at %#x", p, prev, phi)
		}
	}
}
