package morton

import "testing"

// FuzzCodeRoundTrip exercises decode/re-encode and the derived operations
// on arbitrary 64-bit patterns masked into valid codes.
func FuzzCodeRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1<<63 - 1))
	f.Add(uint64(0xdeadbeef))
	// Boundary seeds: all-ones (max coordinates at whatever level the mask
	// picks), the max-corner MaxLevel cell's key and raw code, the origin
	// MaxLevel cell's raw code, and patterns landing exactly on the
	// level-field edges of the mask.
	f.Add(^uint64(0))
	last := uint32(1)<<MaxLevel - 1
	f.Add(uint64(Encode(last, last, last, MaxLevel)))
	f.Add(Encode(last, last, last, MaxLevel).Key())
	f.Add(uint64(Encode(0, 0, 0, MaxLevel)))
	f.Add(uint64(MaxLevel))
	f.Add(uint64(MaxLevel + 1))
	f.Fuzz(func(t *testing.T, raw uint64) {
		// Mask into a valid code: clamp the level and the morton bits.
		level := uint8(raw % (MaxLevel + 1))
		lim := uint32(1) << level
		x := uint32(raw>>6) % lim
		y := uint32(raw>>27) % lim
		z := uint32(raw>>45) % lim
		c := Encode(x, y, z, level)

		gx, gy, gz, gl := c.Decode()
		if gx != x || gy != y || gz != z || gl != level {
			t.Fatalf("decode mismatch: (%d,%d,%d,%d) != (%d,%d,%d,%d)", gx, gy, gz, gl, x, y, z, level)
		}
		if FromKey(c.Key()) != c {
			t.Fatal("key round trip failed")
		}
		lo, hi := c.KeySpan()
		if k := c.Key(); k < lo || k > hi {
			t.Fatal("own key outside key span")
		}
		if level > 0 {
			p := c.Parent()
			if !p.IsAncestorOf(c) {
				t.Fatal("parent not ancestor")
			}
			plo, phi := p.KeySpan()
			if lo < plo || hi > phi {
				t.Fatal("child span escapes parent span")
			}
			if p.Child(c.ChildIndex()) != c {
				t.Fatal("parent/child/index inconsistent")
			}
		}
		if level < MaxLevel {
			for i := 0; i < 8; i++ {
				if c.Child(i).Parent() != c {
					t.Fatalf("child %d parent mismatch", i)
				}
			}
		}
	})
}
