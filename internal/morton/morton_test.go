package morton

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRootProperties(t *testing.T) {
	if Root.Level() != 0 {
		t.Errorf("root level = %d", Root.Level())
	}
	if Root.Parent() != Root {
		t.Error("root parent != root")
	}
	if Root.ChildIndex() != 0 {
		t.Error("root child index != 0")
	}
	x, y, z, l := Root.Decode()
	if x != 0 || y != 0 || z != 0 || l != 0 {
		t.Errorf("root decode = (%d,%d,%d) L%d", x, y, z, l)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []struct {
		x, y, z uint32
		l       uint8
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{0, 1, 1, 1},
		{5, 3, 7, 3},
		{100, 200, 300, 9},
		{(1 << 19) - 1, (1 << 19) - 1, (1 << 19) - 1, 19},
	}
	for _, c := range cases {
		code := Encode(c.x, c.y, c.z, c.l)
		x, y, z, l := code.Decode()
		if x != c.x || y != c.y || z != c.z || l != c.l {
			t.Errorf("Encode(%d,%d,%d,%d) decoded to (%d,%d,%d,%d)", c.x, c.y, c.z, c.l, x, y, z, l)
		}
	}
}

func TestEncodePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Encode(0, 0, 0, MaxLevel+1) },
		func() { Encode(2, 0, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestParentChildInverse(t *testing.T) {
	c := Encode(5, 3, 7, 3)
	for i := 0; i < 8; i++ {
		child := c.Child(i)
		if child.Parent() != c {
			t.Errorf("child %d parent mismatch", i)
		}
		if child.ChildIndex() != i {
			t.Errorf("child %d index = %d", i, child.ChildIndex())
		}
		if child.Level() != 4 {
			t.Errorf("child level = %d", child.Level())
		}
	}
}

func TestChildCoordinates(t *testing.T) {
	// Child 5 = zbit 1, ybit 0, xbit 1.
	c := Encode(1, 1, 1, 1)
	ch := c.Child(5)
	x, y, z, l := ch.Decode()
	if l != 2 || x != 3 || y != 2 || z != 3 {
		t.Errorf("child 5 of (1,1,1)L1 = (%d,%d,%d)L%d, want (3,2,3)L2", x, y, z, l)
	}
}

func TestChildPanics(t *testing.T) {
	deep := Encode(0, 0, 0, MaxLevel)
	for _, fn := range []func(){
		func() { Root.Child(8) },
		func() { Root.Child(-1) },
		func() { deep.Child(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAncestry(t *testing.T) {
	a := Encode(1, 0, 1, 1)
	d := a.Child(3).Child(6)
	if !a.IsAncestorOf(d) {
		t.Error("grandparent not ancestor")
	}
	if d.IsAncestorOf(a) {
		t.Error("descendant claims ancestry")
	}
	if a.IsAncestorOf(a) {
		t.Error("self is not a strict ancestor")
	}
	if !a.Contains(a) || !a.Contains(d) {
		t.Error("Contains failed")
	}
	sibling := Encode(0, 0, 0, 1)
	if sibling.IsAncestorOf(d) {
		t.Error("non-ancestor claims ancestry")
	}
	if got := d.AncestorAt(1); got != a {
		t.Errorf("AncestorAt(1) = %v, want %v", got, a)
	}
	if got := d.AncestorAt(3); got != d {
		t.Errorf("AncestorAt(own level) = %v", got)
	}
}

func TestAncestorAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Root.AncestorAt(1)
}

func TestLessPreOrder(t *testing.T) {
	// Ancestor sorts before its descendants; spatially earlier sorts first.
	a := Encode(0, 0, 0, 1)
	if !a.Less(a.Child(0)) {
		t.Error("ancestor must precede descendant")
	}
	if !a.Child(0).Less(a.Child(7)) {
		t.Error("child 0 must precede child 7")
	}
	b := Encode(1, 0, 0, 1)
	if !a.Child(7).Less(b) {
		t.Error("entire subtree of a must precede b")
	}
	if a.Compare(a) != 0 || a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("Compare inconsistent")
	}
}

func TestNeighbor(t *testing.T) {
	c := Encode(1, 1, 1, 2)
	n, ok := c.Neighbor(1, 0, 0)
	if !ok {
		t.Fatal("neighbor should exist")
	}
	x, y, z, l := n.Decode()
	if x != 2 || y != 1 || z != 1 || l != 2 {
		t.Errorf("neighbor = (%d,%d,%d)L%d", x, y, z, l)
	}
	if _, ok := Encode(0, 0, 0, 2).Neighbor(-1, 0, 0); ok {
		t.Error("neighbor off the domain edge should not exist")
	}
	if _, ok := Encode(3, 3, 3, 2).Neighbor(0, 0, 1); ok {
		t.Error("neighbor past the far edge should not exist")
	}
}

func TestFaceNeighborsCount(t *testing.T) {
	// Interior octant: 6 face neighbors.
	if n := Encode(1, 1, 1, 2).FaceNeighbors(nil); len(n) != 6 {
		t.Errorf("interior face neighbors = %d", len(n))
	}
	// Corner octant: 3.
	if n := Encode(0, 0, 0, 2).FaceNeighbors(nil); len(n) != 3 {
		t.Errorf("corner face neighbors = %d", len(n))
	}
	// Root has none.
	if n := Root.FaceNeighbors(nil); len(n) != 0 {
		t.Errorf("root face neighbors = %d", len(n))
	}
}

func TestAllNeighborsCount(t *testing.T) {
	// Interior: 26; corner: 7.
	if n := Encode(1, 1, 1, 2).AllNeighbors(nil); len(n) != 26 {
		t.Errorf("interior neighbors = %d", len(n))
	}
	if n := Encode(0, 0, 0, 2).AllNeighbors(nil); len(n) != 7 {
		t.Errorf("corner neighbors = %d", len(n))
	}
}

func TestCenterExtent(t *testing.T) {
	cx, cy, cz := Root.Center()
	if cx != 0.5 || cy != 0.5 || cz != 0.5 {
		t.Errorf("root center = (%v,%v,%v)", cx, cy, cz)
	}
	if Root.Extent() != 1.0 {
		t.Errorf("root extent = %v", Root.Extent())
	}
	c := Encode(1, 0, 0, 1)
	cx, cy, cz = c.Center()
	if cx != 0.75 || cy != 0.25 || cz != 0.25 {
		t.Errorf("center = (%v,%v,%v)", cx, cy, cz)
	}
	if c.Extent() != 0.5 {
		t.Errorf("extent = %v", c.Extent())
	}
}

func TestString(t *testing.T) {
	if s := Encode(5, 3, 7, 3).String(); s != "L3:(5,3,7)" {
		t.Errorf("String = %q", s)
	}
}

func TestSortedTraversalOrder(t *testing.T) {
	// A full level-2 quad of octants plus their parents, sorted by Less,
	// must put each parent immediately before its first child.
	var codes []Code
	var walk func(c Code, depth int)
	walk = func(c Code, depth int) {
		codes = append(codes, c)
		if depth == 0 {
			return
		}
		for i := 0; i < 8; i++ {
			walk(c.Child(i), depth-1)
		}
	}
	walk(Root, 2)
	pre := append([]Code(nil), codes...) // pre-order by construction
	shuffled := append([]Code(nil), codes...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	sort.Slice(shuffled, func(i, j int) bool { return shuffled[i].Less(shuffled[j]) })
	for i := range pre {
		if shuffled[i] != pre[i] {
			t.Fatalf("position %d: sorted %v != pre-order %v", i, shuffled[i], pre[i])
		}
	}
}

func randCode(r *rand.Rand) Code {
	l := uint8(r.Intn(MaxLevel + 1))
	lim := uint32(1) << l
	return Encode(r.Uint32()%lim, r.Uint32()%lim, r.Uint32()%lim, l)
}

// Property: encode/decode is the identity for random codes.
func TestQuickEncodeDecode(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		c := randCode(r)
		x, y, z, l := c.Decode()
		return Encode(x, y, z, l) == c
	}
	if err := quick.Check(func(struct{}) bool { return f() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Child/Parent are inverse for random codes below max level.
func TestQuickChildParent(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	f := func(i uint8) bool {
		c := randCode(r)
		if c.Level() >= MaxLevel {
			return true
		}
		ch := c.Child(int(i % 8))
		return ch.Parent() == c && ch.ChildIndex() == int(i%8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Less is a strict weak ordering (irreflexive, asymmetric,
// transitive on a sample).
func TestQuickLessOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for i := 0; i < 500; i++ {
		a, b, c := randCode(r), randCode(r), randCode(r)
		if a.Less(a) {
			t.Fatal("Less is reflexive")
		}
		if a.Less(b) && b.Less(a) {
			t.Fatal("Less is symmetric")
		}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			t.Fatalf("Less not transitive: %v %v %v", a, b, c)
		}
	}
}

// Property: neighbors are involutive — displacing back returns the original.
func TestQuickNeighborInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	for i := 0; i < 500; i++ {
		c := randCode(r)
		dx, dy, dz := r.Intn(3)-1, r.Intn(3)-1, r.Intn(3)-1
		if n, ok := c.Neighbor(dx, dy, dz); ok {
			back, ok2 := n.Neighbor(-dx, -dy, -dz)
			if !ok2 || back != c {
				t.Fatalf("neighbor involution failed for %v", c)
			}
		}
	}
}

// Property: ancestor codes always sort before descendants.
func TestQuickAncestorOrder(t *testing.T) {
	r := rand.New(rand.NewSource(46))
	for i := 0; i < 500; i++ {
		c := randCode(r)
		if c.Level() == 0 {
			continue
		}
		anc := c.AncestorAt(uint8(r.Intn(int(c.Level()))))
		if !anc.Less(c) {
			t.Fatalf("ancestor %v does not precede %v", anc, c)
		}
		if !anc.IsAncestorOf(c) {
			t.Fatalf("AncestorAt result not ancestor: %v of %v", anc, c)
		}
	}
}

// Property: Key ordering equals Less ordering, and FromKey inverts Key.
func TestQuickKeyOrderEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for i := 0; i < 1000; i++ {
		a, b := randCode(r), randCode(r)
		if FromKey(a.Key()) != a {
			t.Fatalf("FromKey(Key(%v)) != identity", a)
		}
		if (a.Key() < b.Key()) != a.Less(b) {
			t.Fatalf("key order diverges from Less for %v, %v", a, b)
		}
	}
}

// Property: ParseCode inverts String for random codes, and rejects
// malformed or out-of-grid inputs.
func TestParseCodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for i := 0; i < 1000; i++ {
		c := randCode(r)
		got, err := ParseCode(c.String())
		if err != nil {
			t.Fatalf("ParseCode(%q): %v", c.String(), err)
		}
		if got != c {
			t.Fatalf("ParseCode(String(%v)) = %v", c, got)
		}
	}
	for _, bad := range []string{"", "L4", "4:(1,2,3)", "L99:(0,0,0)", "L2:(4,0,0)", "L2:(0,0"} {
		if _, err := ParseCode(bad); err == nil {
			t.Fatalf("ParseCode(%q) succeeded, want error", bad)
		}
	}
}
