// Package morton implements 3-D locational codes for octrees.
//
// A Code packs an octant's level and the Morton (Z-order) interleave of its
// anchor coordinates into one uint64. Locational codes identify octants
// globally: the out-of-core baseline uses them as B-tree keys (the Etree
// "Z-value"), PM-octree uses them to route insertions to C0 or C1, and the
// partitioner splits the space-filling curve into per-rank ranges.
package morton

import "fmt"

// MaxLevel is the deepest supported octree level. 3*19 Morton bits plus 6
// level bits fit in 63 bits.
const MaxLevel = 19

// Code is a level-prefixed locational code:
//
//	code = morton(x, y, z) << 6 | level
//
// where x, y, z are the octant's anchor coordinates on the 2^level grid of
// its level. The root octant is Code(0) (level 0 at the origin).
type Code uint64

// Root is the locational code of the root octant.
const Root Code = 0

// Encode builds the code for the octant at anchor (x, y, z) on the 2^level
// grid. It panics if the coordinates do not fit the level.
func Encode(x, y, z uint32, level uint8) Code {
	if level > MaxLevel {
		panic(fmt.Sprintf("morton: level %d exceeds max %d", level, MaxLevel))
	}
	limit := uint32(1) << level
	if x >= limit || y >= limit || z >= limit {
		panic(fmt.Sprintf("morton: coordinate (%d,%d,%d) outside level-%d grid", x, y, z, level))
	}
	return Code(interleave(x, y, z))<<6 | Code(level)
}

// Decode returns the anchor coordinates and level of c.
func (c Code) Decode() (x, y, z uint32, level uint8) {
	level = uint8(c & 0x3f)
	x, y, z = deinterleave(uint64(c >> 6))
	return
}

// Level returns the octree level of c (root is 0).
func (c Code) Level() uint8 { return uint8(c & 0x3f) }

// morton returns the raw interleaved bits.
func (c Code) morton() uint64 { return uint64(c >> 6) }

// Parent returns the code of c's parent octant. Parent of the root is the
// root itself.
func (c Code) Parent() Code {
	l := c.Level()
	if l == 0 {
		return c
	}
	return Code(c.morton()>>3)<<6 | Code(l-1)
}

// Child returns the code of child i (0..7) of c. Child index bits are
// (zbit<<2 | ybit<<1 | xbit), matching the interleave order.
func (c Code) Child(i int) Code {
	if i < 0 || i > 7 {
		panic(fmt.Sprintf("morton: child index %d out of range", i))
	}
	l := c.Level()
	if l >= MaxLevel {
		panic(fmt.Sprintf("morton: cannot descend below level %d", MaxLevel))
	}
	return Code(c.morton()<<3|uint64(i))<<6 | Code(l+1)
}

// ChildIndex returns which child of its parent c is (0..7). The root
// returns 0.
func (c Code) ChildIndex() int {
	if c.Level() == 0 {
		return 0
	}
	return int(c.morton() & 7)
}

// IsAncestorOf reports whether c strictly contains other (other is deeper
// and shares c's path prefix).
func (c Code) IsAncestorOf(other Code) bool {
	cl, ol := c.Level(), other.Level()
	if ol <= cl {
		return false
	}
	return other.morton()>>(3*(ol-cl)) == c.morton()
}

// Contains reports whether the spatial region of c includes that of other
// (equal or descendant).
func (c Code) Contains(other Code) bool {
	return c == other || c.IsAncestorOf(other)
}

// AncestorAt returns c's ancestor at the given (shallower or equal) level.
func (c Code) AncestorAt(level uint8) Code {
	cl := c.Level()
	if level > cl {
		panic(fmt.Sprintf("morton: level %d deeper than code level %d", level, cl))
	}
	return Code(c.morton()>>(3*(cl-level)))<<6 | Code(level)
}

// Less orders codes along the space-filling curve: pre-order traversal
// position, with ancestors before descendants. This is the Etree ordering.
func (c Code) Less(other Code) bool {
	cl, ol := c.Level(), other.Level()
	// Align both morton keys to MaxLevel resolution so interleaved bits
	// compare positionally.
	ck := c.morton() << (3 * (MaxLevel - cl))
	ok := other.morton() << (3 * (MaxLevel - ol))
	if ck != ok {
		return ck < ok
	}
	return cl < ol // ancestor first
}

// Key returns a uint64 whose natural integer order equals the Less
// (space-filling-curve pre-order) ordering: the Morton bits are
// left-aligned to MaxLevel resolution and the level occupies the low 6
// bits as a tie-breaker (ancestors first). This is the Etree "Z-value"
// trick: a plain B-tree over Keys stores octants in traversal order.
func (c Code) Key() uint64 {
	return c.morton()<<(3*(MaxLevel-c.Level()))<<6 | uint64(c.Level())
}

// KeySpan returns the inclusive range of Keys covered by c and all of its
// descendants. Space-filling-curve partitioners assign each rank a key
// interval; an octant belongs to every rank whose interval its span
// overlaps.
func (c Code) KeySpan() (lo, hi uint64) {
	lo = c.Key() // ancestors sort first, so c itself is the minimum
	shift := 3 * (MaxLevel - c.Level())
	hi = (c.morton()<<shift|(uint64(1)<<shift-1))<<6 | uint64(MaxLevel)
	return
}

// FromKey inverts Key.
func FromKey(k uint64) Code {
	level := uint8(k & 0x3f)
	m := (k >> 6) >> (3 * (MaxLevel - level))
	return Code(m)<<6 | Code(level)
}

// Compare returns -1, 0, or +1 in the Less ordering.
func (c Code) Compare(other Code) int {
	switch {
	case c == other:
		return 0
	case c.Less(other):
		return -1
	default:
		return 1
	}
}

// Neighbor returns the same-level octant displaced by (dx, dy, dz) grid
// steps, and false if that would leave the domain.
func (c Code) Neighbor(dx, dy, dz int) (Code, bool) {
	x, y, z, l := c.Decode()
	limit := int64(1) << l
	nx, ny, nz := int64(x)+int64(dx), int64(y)+int64(dy), int64(z)+int64(dz)
	if nx < 0 || ny < 0 || nz < 0 || nx >= limit || ny >= limit || nz >= limit {
		return 0, false
	}
	return Encode(uint32(nx), uint32(ny), uint32(nz), l), true
}

// FaceNeighbors appends the up-to-6 face neighbors of c to dst and returns
// it. The 2:1 balance condition is enforced across faces.
func (c Code) FaceNeighbors(dst []Code) []Code {
	for _, d := range [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
		if n, ok := c.Neighbor(d[0], d[1], d[2]); ok {
			dst = append(dst, n)
		}
	}
	return dst
}

// AllNeighbors appends the up-to-26 face, edge and corner neighbors of c to
// dst and returns it. The linear-octree balance in the out-of-core baseline
// must probe all 26 (§5.4 of the paper).
func (c Code) AllNeighbors(dst []Code) []Code {
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				if n, ok := c.Neighbor(dx, dy, dz); ok {
					dst = append(dst, n)
				}
			}
		}
	}
	return dst
}

// String renders the code as level:(x,y,z).
func (c Code) String() string {
	x, y, z, l := c.Decode()
	return fmt.Sprintf("L%d:(%d,%d,%d)", l, x, y, z)
}

// ParseCode inverts String: "L3:(1,4,2)" parses to the code of the
// level-3 octant anchored at (1,4,2). Wire formats (the serve HTTP
// responses) carry codes in String form; distributed clients parse them
// back with this.
func ParseCode(s string) (Code, error) {
	var x, y, z uint32
	var l uint8
	if _, err := fmt.Sscanf(s, "L%d:(%d,%d,%d)", &l, &x, &y, &z); err != nil {
		return 0, fmt.Errorf("morton: cannot parse code %q: %v", s, err)
	}
	if l > MaxLevel {
		return 0, fmt.Errorf("morton: code %q level %d exceeds max %d", s, l, MaxLevel)
	}
	limit := uint32(1) << l
	if x >= limit || y >= limit || z >= limit {
		return 0, fmt.Errorf("morton: code %q anchor outside its level-%d grid", s, l)
	}
	return Encode(x, y, z, l), nil
}

// Center returns the octant's center in the unit cube [0,1)^3.
func (c Code) Center() (cx, cy, cz float64) {
	x, y, z, l := c.Decode()
	h := 1.0 / float64(uint64(1)<<l)
	return (float64(x) + 0.5) * h, (float64(y) + 0.5) * h, (float64(z) + 0.5) * h
}

// Extent returns the octant's edge length in the unit cube.
func (c Code) Extent() float64 {
	return 1.0 / float64(uint64(1)<<c.Level())
}

// interleave spreads the low 21 bits of x, y, z into a 63-bit Morton key
// with x in bit 0, y in bit 1, z in bit 2 of each triple.
func interleave(x, y, z uint32) uint64 {
	return part1by2(x) | part1by2(y)<<1 | part1by2(z)<<2
}

func deinterleave(m uint64) (x, y, z uint32) {
	return compact1by2(m), compact1by2(m >> 1), compact1by2(m >> 2)
}

// part1by2 inserts two zero bits between each of the low 21 bits of v.
func part1by2(v uint32) uint64 {
	x := uint64(v) & 0x1fffff
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// compact1by2 is the inverse of part1by2.
func compact1by2(x uint64) uint32 {
	x &= 0x1249249249249249
	x = (x ^ x>>2) & 0x10c30c30c30c30c3
	x = (x ^ x>>4) & 0x100f00f00f00f00f
	x = (x ^ x>>8) & 0x1f0000ff0000ff
	x = (x ^ x>>16) & 0x1f00000000ffff
	x = (x ^ x>>32) & 0x1fffff
	return uint32(x)
}
