package bulk

import (
	"math/bits"

	"pmoctree/internal/morton"
)

// ComplementCover returns the minimal set of octants tiling everything the
// given leaves do not cover. The input must be sorted by Key and pairwise
// disjoint (the order Construct and Balance return); the result is sorted
// and disjoint from the input, so input + cover together form a partition
// of the domain that Construct accepts.
//
// Shard materialization is the caller: a shard keeps the real leaves of
// its key span and plugs the rest of the domain with these zero-payload
// fillers, so the per-shard arena stays a valid complete octree while
// holding only its span's data.
func ComplementCover(leaves []morton.Code) []morton.Code {
	var out []morton.Code
	next := uint64(0)
	for _, c := range leaves {
		start := c.Key() >> 6
		if start > next {
			out = appendCover(out, next, start)
		}
		next = start + cellVolume(c.Level())
	}
	if next < totalCells {
		out = appendCover(out, next, totalCells)
	}
	return out
}

// appendCover tiles the half-open cell range [lo, hi) with the fewest
// octants, greedily emitting at each position the largest aligned block
// that fits: alignment allows 8^p blocks where 3p trailing zero bits of lo
// are free, and the block must not overshoot hi.
func appendCover(out []morton.Code, lo, hi uint64) []morton.Code {
	for lo < hi {
		p := morton.MaxLevel
		if lo != 0 {
			if tz := bits.TrailingZeros64(lo) / 3; tz < p {
				p = tz
			}
		}
		for uint64(1)<<(3*p) > hi-lo {
			p--
		}
		out = append(out, morton.FromKey(lo<<6|uint64(morton.MaxLevel-p)))
		lo += uint64(1) << (3 * p)
	}
	return out
}
