package bulk

import (
	"errors"
	"fmt"

	"pmoctree/internal/morton"
)

// OutOfRangeError reports an input code that is not a well-formed
// locational code: its level exceeds morton.MaxLevel or its Morton bits
// lie outside the 2^level grid of its level. Index is the position in the
// caller's input slice; validation reports the smallest such index so the
// error is deterministic for any worker count.
type OutOfRangeError struct {
	Index int
	Code  morton.Code
}

func (e *OutOfRangeError) Error() string {
	return fmt.Sprintf("bulk: code %#x at input index %d is out of range (level %d, max level %d)",
		uint64(e.Code), e.Index, uint64(e.Code)&0x3f, morton.MaxLevel)
}

// DuplicateCodeError reports the same leaf code appearing twice in the
// input. First and Second are the two input positions (First < Second);
// the reported pair is the one at the smallest sorted position.
type DuplicateCodeError struct {
	Code          morton.Code
	First, Second int
}

func (e *DuplicateCodeError) Error() string {
	return fmt.Sprintf("bulk: duplicate leaf code %v at input indices %d and %d",
		e.Code, e.First, e.Second)
}

// OverlapError reports two input codes whose regions nest: Ancestor
// strictly contains Descendant, so they cannot both be leaves of one
// octree. The indices are input positions. Any overlapping pair in the
// input implies an adjacent one in key order (everything sorted between an
// ancestor and its descendant is itself a descendant of that ancestor), so
// the adjacent-pair scan that produces this error is complete.
type OverlapError struct {
	Ancestor, Descendant           morton.Code
	AncestorIndex, DescendantIndex int
}

func (e *OverlapError) Error() string {
	return fmt.Sprintf("bulk: leaf %v (input index %d) overlaps its descendant %v (input index %d)",
		e.Ancestor, e.AncestorIndex, e.Descendant, e.DescendantIndex)
}

// CoverageError reports that the (deduplicated, non-overlapping) leaf set
// does not tile the whole domain: Cell is the first level-MaxLevel cell in
// Z-order not covered by any input leaf, discovered just before sorted
// leaf position Index (Index == len(input) when the gap trails the last
// leaf).
type CoverageError struct {
	Cell  uint64
	Index int
}

func (e *CoverageError) Error() string {
	return fmt.Sprintf("bulk: leaf set does not cover the domain: gap at cell %v (sorted position %d)",
		morton.FromKey(e.Cell<<6|morton.MaxLevel), e.Index)
}

// IsInputError reports whether err is (or wraps) one of the typed bulk
// input-validation errors — out-of-range, duplicate, overlap, or coverage
// gap. These mean the caller's leaf set is malformed, as opposed to a
// state or environment failure; command-line tools key a distinct exit
// code off this.
func IsInputError(err error) bool {
	var (
		oor *OutOfRangeError
		dup *DuplicateCodeError
		ovl *OverlapError
		cov *CoverageError
	)
	return errors.As(err, &oor) || errors.As(err, &dup) ||
		errors.As(err, &ovl) || errors.As(err, &cov)
}
