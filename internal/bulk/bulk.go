// Package bulk constructs complete octrees from flat slices of leaf
// Morton codes, Cornerstone-style: sort the codes along the space-filling
// curve, validate them as a partition of the domain, derive every internal
// node top-down from the common key prefixes of adjacent leaves, and link
// parent/child indices — all in parallel chunks over internal/parallel.
//
// The output is a flat, index-linked node array in pre-order (= Key
// order), the layout the p4est Morton-representation work shows is right
// for bulk passes; core.Tree.ConstructFromCodes turns it into committed
// PM-octree records with one span-coalesced arena write.
//
// Determinism contract: every stage either uses fixed chunk boundaries
// (the sort) or writes per-index output slots that do not depend on chunk
// boundaries, so the result — including which validation error is
// reported — is bit-identical for ANY worker count, nil pool included.
package bulk

import (
	"math/bits"
	"sort"

	"pmoctree/internal/morton"
	"pmoctree/internal/parallel"
)

// sortChunk is the fixed run length of the parallel sort: the input is cut
// into sortChunk-sized runs (independent of worker count), each run sorted
// in place, then runs are merged pairwise. Chunk geometry is part of the
// determinism contract, not a tuning knob tied to the pool width.
const sortChunk = 1 << 14

// valChunk is the fixed chunk length of the validation scans.
const valChunk = 1 << 15

// totalCells is the number of level-MaxLevel cells in the domain; a valid
// leaf set's cell volumes sum to exactly this.
const totalCells = uint64(1) << (3 * morton.MaxLevel)

// Options parameterizes Construct.
type Options struct {
	// Pool schedules the parallel stages; nil runs everything inline.
	Pool *parallel.Pool
	// Balance enforces the 2:1 face constraint by splitting too-coarse
	// leaves (see Balance) before deriving the tree. Off, Construct
	// requires nothing beyond a valid partition of the domain.
	Balance bool
}

// Tree is the derived octree: a flat node array in pre-order (equal to
// ascending Key order) with index links. Node 0 is the root.
type Tree struct {
	// Leaves is the final sorted leaf set: the validated input, plus any
	// leaves created by balance splitting.
	Leaves []morton.Code
	// SrcIdx maps each final leaf to the input position whose payload it
	// inherits: balance-split children inherit their split parent's input
	// position, mirroring how incremental refinement copies octant data
	// down to new children.
	SrcIdx []int32
	// LeafNode maps each final leaf ordinal to its node index.
	LeafNode []int32

	// Nodes holds every octant (internal + leaf) in pre-order.
	Nodes []morton.Code
	// Parent[j] is the node index of Nodes[j]'s parent, -1 for the root.
	Parent []int32
	// Children[8*j+k] is the node index of Nodes[j]'s k-th child, -1 for
	// all eight when Nodes[j] is a leaf. Internal nodes always have all
	// eight (a partition of the domain derives a complete octree).
	Children []int32
	// NodeLeaf[j] is the leaf ordinal of Nodes[j], -1 for internal nodes.
	NodeLeaf []int32
	// Depth is the maximum leaf level.
	Depth uint8
}

// Construct validates codes as a leaf partition of the domain and derives
// the full octree. Validation errors are typed (*OutOfRangeError,
// *DuplicateCodeError, *OverlapError, *CoverageError) and deterministic:
// the same input yields the same error at any worker count. The input
// slice is not modified.
func Construct(codes []morton.Code, opts Options) (*Tree, error) {
	leaves, src, err := validateAndSort(codes, opts.Pool)
	if err != nil {
		return nil, err
	}
	if opts.Balance {
		leaves, src = balanceClosure(leaves, src, opts.Pool)
	}
	return derive(leaves, src, opts.Pool), nil
}

// validateAndSort checks codes for range errors, sorts them along the
// space-filling curve, and checks the sorted order for duplicates,
// overlaps, and full domain coverage. It returns the sorted codes and the
// permutation mapping each sorted position to its input position.
func validateAndSort(codes []morton.Code, pool *parallel.Pool) ([]morton.Code, []int32, error) {
	n := len(codes)
	if n == 0 {
		return nil, nil, &CoverageError{Cell: 0, Index: 0}
	}
	if err := validateRange(codes, pool); err != nil {
		return nil, nil, err
	}
	keys := make([]uint64, n)
	pool.Run(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i] = codes[i].Key()
		}
	})
	perm := sortPerm(keys, pool)
	if err := validateSorted(codes, keys, perm, pool); err != nil {
		return nil, nil, err
	}
	leaves := make([]morton.Code, n)
	src := make([]int32, n)
	pool.Run(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			leaves[i] = codes[perm[i]]
			src[i] = perm[i]
		}
	})
	return leaves, src, nil
}

// validCode reports whether c is a well-formed locational code: level
// within range and no Morton bits beyond its level's grid.
func validCode(c morton.Code) bool {
	l := uint64(c) & 0x3f
	if l > morton.MaxLevel {
		return false
	}
	return uint64(c)>>6 < uint64(1)<<(3*l)
}

// validateRange returns an OutOfRangeError for the smallest input index
// holding a malformed code.
func validateRange(codes []morton.Code, pool *parallel.Pool) error {
	n := len(codes)
	nc := (n + valChunk - 1) / valChunk
	bad := make([]int32, nc)
	pool.RunMin(nc, 2, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			bad[c] = -1
			hi := min((c+1)*valChunk, n)
			for i := c * valChunk; i < hi; i++ {
				if !validCode(codes[i]) {
					bad[c] = int32(i)
					break
				}
			}
		}
	})
	for _, b := range bad {
		if b >= 0 {
			return &OutOfRangeError{Index: int(b), Code: codes[b]}
		}
	}
	return nil
}

// keyLess is the strict total order of the sort: Key ascending, input
// index as tie-breaker so equal codes stay in input order and the whole
// permutation is uniquely determined.
func keyLess(keys []uint64, a, b int32) bool {
	if keys[a] != keys[b] {
		return keys[a] < keys[b]
	}
	return a < b
}

// sortPerm returns the permutation sorting keys ascending (ties by input
// index): fixed-size runs sorted independently, then merged pairwise.
// Both the run boundaries and the merge tree are functions of n alone, so
// the schedule — and trivially the result, since the order is total — is
// identical at every worker count.
func sortPerm(keys []uint64, pool *parallel.Pool) []int32 {
	n := len(keys)
	perm := make([]int32, n)
	pool.Run(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			perm[i] = int32(i)
		}
	})
	nc := (n + sortChunk - 1) / sortChunk
	if nc <= 1 {
		sort.Slice(perm, func(a, b int) bool { return keyLess(keys, perm[a], perm[b]) })
		return perm
	}
	pool.RunMin(nc, 2, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			run := perm[c*sortChunk : min((c+1)*sortChunk, n)]
			sort.Slice(run, func(a, b int) bool { return keyLess(keys, run[a], run[b]) })
		}
	})
	buf := make([]int32, n)
	src, dst := perm, buf
	for width := sortChunk; width < n; width *= 2 {
		pairs := (n + 2*width - 1) / (2 * width)
		pool.RunMin(pairs, 2, func(plo, phi int) {
			for p := plo; p < phi; p++ {
				s := p * 2 * width
				mergeRuns(keys, src, dst, s, min(s+width, n), min(s+2*width, n))
			}
		})
		src, dst = dst, src
	}
	return src
}

// mergeRuns merges the sorted runs src[s:mid] and src[mid:e] into
// dst[s:e].
func mergeRuns(keys []uint64, src, dst []int32, s, mid, e int) {
	i, j := s, mid
	for k := s; k < e; k++ {
		if j >= e || (i < mid && keyLess(keys, src[i], src[j])) {
			dst[k] = src[i]
			i++
		} else {
			dst[k] = src[j]
			j++
		}
	}
}

// cellVolume is the number of level-MaxLevel cells covered by a level-l
// octant.
func cellVolume(l uint8) uint64 {
	return uint64(1) << (3 * (morton.MaxLevel - l))
}

// validateSorted scans the sorted view for duplicates, overlapping
// ancestor/descendant pairs, and coverage gaps, in that priority order,
// each reported at its smallest sorted position.
func validateSorted(codes []morton.Code, keys []uint64, perm []int32, pool *parallel.Pool) error {
	n := len(perm)
	nc := (n + valChunk - 1) / valChunk
	bad := make([]int32, nc)

	// Duplicates: equal Keys are equal codes (Key is injective on valid
	// codes); the index tie-break keeps the earlier input position first.
	pool.RunMin(nc, 2, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			bad[c] = -1
			hi := min((c+1)*valChunk, n)
			for i := max(c*valChunk, 1); i < hi; i++ {
				if keys[perm[i-1]] == keys[perm[i]] {
					bad[c] = int32(i)
					break
				}
			}
		}
	})
	for _, b := range bad {
		if b >= 0 {
			return &DuplicateCodeError{
				Code:   codes[perm[b]],
				First:  int(perm[b-1]),
				Second: int(perm[b]),
			}
		}
	}

	// Overlaps: in key order an ancestor immediately precedes one of its
	// descendants, so the adjacent scan is complete (see OverlapError).
	pool.RunMin(nc, 2, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			bad[c] = -1
			hi := min((c+1)*valChunk, n)
			for i := max(c*valChunk, 1); i < hi; i++ {
				if codes[perm[i-1]].IsAncestorOf(codes[perm[i]]) {
					bad[c] = int32(i)
					break
				}
			}
		}
	})
	for _, b := range bad {
		if b >= 0 {
			return &OverlapError{
				Ancestor:        codes[perm[b-1]],
				Descendant:      codes[perm[b]],
				AncestorIndex:   int(perm[b-1]),
				DescendantIndex: int(perm[b]),
			}
		}
	}

	// Coverage: with duplicates and overlaps excluded the leaves are
	// pairwise disjoint, so they tile the domain iff every leaf starts
	// exactly at the cumulative cell volume of its predecessors and the
	// total is the whole domain. Integer partial sums are exact, so the
	// chunked prefix is independent of scheduling.
	partial := make([]uint64, nc)
	pool.RunMin(nc, 2, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			var sum uint64
			hi := min((c+1)*valChunk, n)
			for i := c * valChunk; i < hi; i++ {
				sum += cellVolume(codes[perm[i]].Level())
			}
			partial[c] = sum
		}
	})
	base := make([]uint64, nc+1)
	for c := 0; c < nc; c++ {
		base[c+1] = base[c] + partial[c]
	}
	gapCell := make([]uint64, nc)
	pool.RunMin(nc, 2, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			bad[c] = -1
			cum := base[c]
			hi := min((c+1)*valChunk, n)
			for i := c * valChunk; i < hi; i++ {
				if keys[perm[i]]>>6 != cum {
					bad[c] = int32(i)
					gapCell[c] = cum
					break
				}
				cum += cellVolume(codes[perm[i]].Level())
			}
		}
	})
	for c, b := range bad {
		if b >= 0 {
			return &CoverageError{Cell: gapCell[c], Index: int(b)}
		}
	}
	if base[nc] != totalCells {
		return &CoverageError{Cell: base[nc], Index: n}
	}
	return nil
}

// commonLevel returns the level of the deepest common ancestor of two
// distinct, non-nesting codes: the count of shared leading bit-triples of
// their aligned cell indices. For a valid adjacent pair this is strictly
// shallower than either code's own level.
func commonLevel(a, b morton.Code) uint8 {
	x := (a.Key() >> 6) ^ (b.Key() >> 6)
	return uint8((3*morton.MaxLevel - bits.Len64(x)) / 3)
}

// derive builds the flat pre-order node array from the sorted, validated
// leaf partition. Each node is emitted exactly once, by its first leaf
// descendant: leaf i contributes its ancestors on the levels below the
// common prefix it shares with leaf i-1 (leaf 0 contributes the root
// chain). The concatenation of those emission groups is already sorted by
// Key, i.e. pre-order.
func derive(leaves []morton.Code, src []int32, pool *parallel.Pool) *Tree {
	n := len(leaves)
	counts := make([]int32, n)
	pool.Run(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 0 {
				counts[0] = int32(leaves[0].Level()) + 1
				continue
			}
			counts[i] = int32(leaves[i].Level() - commonLevel(leaves[i-1], leaves[i]))
		}
	})
	offs := make([]int32, n+1)
	for i := 0; i < n; i++ {
		offs[i+1] = offs[i] + counts[i]
	}
	nn := int(offs[n])

	nodes := make([]morton.Code, nn)
	nodeLeaf := make([]int32, nn)
	leafNode := make([]int32, n)
	pool.Run(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			start := uint8(0)
			if i > 0 {
				start = commonLevel(leaves[i-1], leaves[i]) + 1
			}
			j := offs[i]
			for l := start; l <= leaves[i].Level(); l++ {
				nodes[j] = leaves[i].AncestorAt(l)
				nodeLeaf[j] = -1
				j++
			}
			nodeLeaf[j-1] = int32(i)
			leafNode[i] = j - 1
		}
	})

	nkeys := make([]uint64, nn)
	pool.Run(nn, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			nkeys[j] = nodes[j].Key()
		}
	})
	parent := make([]int32, nn)
	children := make([]int32, 8*nn)
	pool.Run(nn, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			if nodeLeaf[j] >= 0 {
				for k := 0; k < 8; k++ {
					children[8*j+k] = -1
				}
				continue
			}
			// The derived tree is complete, so every child of an internal
			// node is present; each child has exactly one parent, so the
			// parent writes never collide across chunks.
			for k := 0; k < 8; k++ {
				idx := findKey(nkeys, nodes[j].Child(k).Key())
				children[8*j+k] = int32(idx)
				parent[idx] = int32(j)
			}
		}
	})
	parent[0] = -1

	depth := uint8(0)
	nc := (n + valChunk - 1) / valChunk
	maxes := make([]uint8, nc)
	pool.RunMin(nc, 2, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			var m uint8
			hi := min((c+1)*valChunk, n)
			for i := c * valChunk; i < hi; i++ {
				if l := leaves[i].Level(); l > m {
					m = l
				}
			}
			maxes[c] = m
		}
	})
	for _, m := range maxes {
		if m > depth {
			depth = m
		}
	}

	return &Tree{
		Leaves:   leaves,
		SrcIdx:   src,
		LeafNode: leafNode,
		Nodes:    nodes,
		Parent:   parent,
		Children: children,
		NodeLeaf: nodeLeaf,
		Depth:    depth,
	}
}

// findKey locates key in the sorted node-key array; absence is an
// internal-consistency bug, not an input error.
func findKey(nkeys []uint64, key uint64) int {
	i := sort.Search(len(nkeys), func(k int) bool { return nkeys[k] >= key })
	if i >= len(nkeys) || nkeys[i] != key {
		panic("bulk: derived octree is missing a child node (internal inconsistency)")
	}
	return i
}
