package bulk

import (
	"sort"

	"pmoctree/internal/morton"
	"pmoctree/internal/parallel"
)

// Balance validates leaves as a partition of the domain and returns the
// minimal 2:1 face-balanced refinement of it: the same fixed point
// core.Tree.Balance reaches by incremental splitting, computed here over
// the flat sorted array. The input slice is not modified; the result is
// sorted by Key.
func Balance(leaves []morton.Code, pool *parallel.Pool) ([]morton.Code, error) {
	sorted, src, err := validateAndSort(leaves, pool)
	if err != nil {
		return nil, err
	}
	sorted, _ = balanceClosure(sorted, src, pool)
	return sorted, nil
}

// balanceClosure iterates split rounds until no leaf violates the 2:1
// face constraint. Each round replicates core.findViolators exactly: every
// leaf at level >= 2 probes its up-to-6 same-level face neighbors
// (siblings inside its own parent are skipped — same level by
// construction), locates the leaf covering each neighbor's anchor cell,
// and marks it for splitting when it is more than one level coarser.
// Split children inherit the split leaf's src index, mirroring how
// incremental refinement copies payload down to new children.
//
// The marking pass writes one slot per (probing leaf, face), so which
// leaves split in a round — and therefore the fixed point's leaf order —
// never depends on chunk boundaries. The fixed point itself is the unique
// minimal balanced refinement, the same set core.Tree.Balance produces.
func balanceClosure(leaves []morton.Code, src []int32, pool *parallel.Pool) ([]morton.Code, []int32) {
	for {
		n := len(leaves)
		cells := make([]uint64, n)
		pool.Run(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				cells[i] = leaves[i].Key() >> 6
			}
		})
		viol := make([]int32, 6*n)
		pool.Run(n, func(lo, hi int) {
			var scratch [6]morton.Code
			for i := lo; i < hi; i++ {
				for f := 0; f < 6; f++ {
					viol[6*i+f] = -1
				}
				o := leaves[i]
				if o.Level() < 2 {
					continue
				}
				par := o.Parent()
				for f, nb := range o.FaceNeighbors(scratch[:0]) {
					if nb.Parent() == par {
						continue
					}
					// int arithmetic: when the neighbor region is MORE
					// refined the covering leaf is deeper than o and the
					// difference goes negative (core's FindLeaf returns an
					// internal node there and skips it the same way).
					j := coveringLeaf(cells, nb)
					if int(o.Level())-int(leaves[j].Level()) > 1 {
						viol[6*i+f] = int32(j)
					}
				}
			}
		})
		split := make([]bool, n)
		nsplit := 0
		for _, v := range viol {
			if v >= 0 && !split[v] {
				split[v] = true
				nsplit++
			}
		}
		if nsplit == 0 {
			return leaves, src
		}
		// Children of a split leaf are contiguous and ascending in Key, so
		// the rebuilt array stays sorted.
		out := make([]morton.Code, 0, n+7*nsplit)
		osrc := make([]int32, 0, n+7*nsplit)
		for i, c := range leaves {
			if split[i] {
				for k := 0; k < 8; k++ {
					out = append(out, c.Child(k))
					osrc = append(osrc, src[i])
				}
			} else {
				out = append(out, c)
				osrc = append(osrc, src[i])
			}
		}
		leaves, src = out, osrc
	}
}

// coveringLeaf returns the index of the leaf whose region contains the
// anchor cell of nb: because the sorted leaves partition the domain, it is
// the last leaf whose start cell is <= nb's start cell. This is the flat
// equivalent of core's FindLeaf walk.
func coveringLeaf(cells []uint64, nb morton.Code) int {
	cell := nb.Key() >> 6
	return sort.Search(len(cells), func(k int) bool { return cells[k] > cell }) - 1
}
