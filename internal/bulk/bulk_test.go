package bulk

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"pmoctree/internal/morton"
	"pmoctree/internal/parallel"
)

// refineSet generates a leaf partition by recursive descent: split every
// octant satisfying pred until maxLevel. This mirrors what RefineWhere
// produces on a tree, without depending on core.
func refineSet(pred func(morton.Code) bool, maxLevel uint8) []morton.Code {
	var out []morton.Code
	var walk func(c morton.Code)
	walk = func(c morton.Code) {
		if c.Level() < maxLevel && pred(c) {
			for k := 0; k < 8; k++ {
				walk(c.Child(k))
			}
			return
		}
		out = append(out, c)
	}
	walk(morton.Root)
	return out
}

// shellPred refines octants whose cell crosses a sphere shell — the same
// interface-tracking shape the droplet workload pins, giving a realistic
// mix of levels.
func shellPred(c morton.Code) bool {
	cx, cy, cz := c.Center()
	d := math.Sqrt((cx-0.5)*(cx-0.5) + (cy-0.5)*(cy-0.5) + (cz-0.5)*(cz-0.5))
	half := c.Extent() * math.Sqrt(3) / 2
	return math.Abs(d-0.3) <= half
}

func checkTree(t *testing.T, tr *Tree, wantLeaves int) {
	t.Helper()
	if len(tr.Leaves) != wantLeaves {
		t.Fatalf("leaves = %d, want %d", len(tr.Leaves), wantLeaves)
	}
	nn := len(tr.Nodes)
	// Pre-order == ascending Key order.
	for j := 1; j < nn; j++ {
		if tr.Nodes[j-1].Key() >= tr.Nodes[j].Key() {
			t.Fatalf("nodes not in key order at %d: %v >= %v", j, tr.Nodes[j-1], tr.Nodes[j])
		}
	}
	if tr.Parent[0] != -1 || tr.Nodes[0] != morton.Root {
		t.Fatalf("node 0 is %v with parent %d, want root with parent -1", tr.Nodes[0], tr.Parent[0])
	}
	leafSeen := 0
	for j := 0; j < nn; j++ {
		if li := tr.NodeLeaf[j]; li >= 0 {
			leafSeen++
			if tr.Leaves[li] != tr.Nodes[j] {
				t.Fatalf("leaf %d code mismatch: %v vs node %v", li, tr.Leaves[li], tr.Nodes[j])
			}
			if tr.LeafNode[li] != int32(j) {
				t.Fatalf("LeafNode[%d] = %d, want %d", li, tr.LeafNode[li], j)
			}
			for k := 0; k < 8; k++ {
				if tr.Children[8*j+k] != -1 {
					t.Fatalf("leaf node %d has child %d", j, k)
				}
			}
			continue
		}
		for k := 0; k < 8; k++ {
			ci := tr.Children[8*j+k]
			if ci < 0 {
				t.Fatalf("internal node %d missing child %d", j, k)
			}
			if tr.Nodes[ci] != tr.Nodes[j].Child(k) {
				t.Fatalf("node %d child %d is %v, want %v", j, k, tr.Nodes[ci], tr.Nodes[j].Child(k))
			}
			if tr.Parent[ci] != int32(j) {
				t.Fatalf("parent of node %d = %d, want %d", ci, tr.Parent[ci], j)
			}
		}
	}
	if leafSeen != wantLeaves {
		t.Fatalf("NodeLeaf marks %d leaves, want %d", leafSeen, wantLeaves)
	}
	var depth uint8
	var vol uint64
	for _, c := range tr.Leaves {
		if l := c.Level(); l > depth {
			depth = l
		}
		vol += cellVolume(c.Level())
	}
	if tr.Depth != depth {
		t.Fatalf("Depth = %d, want %d", tr.Depth, depth)
	}
	if vol != totalCells {
		t.Fatalf("leaf volumes sum to %d, want %d", vol, totalCells)
	}
}

func TestConstructRootOnly(t *testing.T) {
	tr, err := Construct([]morton.Code{morton.Root}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr, 1)
	if len(tr.Nodes) != 1 {
		t.Fatalf("nodes = %d, want 1", len(tr.Nodes))
	}
}

func TestConstructShell(t *testing.T) {
	leaves := refineSet(shellPred, 5)
	tr, err := Construct(leaves, Options{Pool: parallel.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr, len(leaves))
	// SrcIdx must map every final leaf back to the identical input code
	// (no balancing happened: refineSet output is derived from a shell
	// predicate, but checkTree already proved the leaf count matches).
	for i, c := range tr.Leaves {
		if leaves[tr.SrcIdx[i]] != c {
			t.Fatalf("SrcIdx[%d] = %d names %v, want %v", i, tr.SrcIdx[i], leaves[tr.SrcIdx[i]], c)
		}
	}
}

// TestConstructShuffledInput proves input order is irrelevant: the sorted
// leaf set and the whole derived tree are identical, only SrcIdx differs.
func TestConstructShuffledInput(t *testing.T) {
	leaves := refineSet(shellPred, 4)
	shuffled := make([]morton.Code, len(leaves))
	// Deterministic LCG shuffle, no rand import needed.
	copy(shuffled, leaves)
	state := uint64(42)
	for i := len(shuffled) - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	a, err := Construct(leaves, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Construct(shuffled, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Nodes, b.Nodes) || !reflect.DeepEqual(a.Leaves, b.Leaves) {
		t.Fatal("shuffled input changed the derived tree")
	}
	for i := range b.Leaves {
		if shuffled[b.SrcIdx[i]] != b.Leaves[i] {
			t.Fatalf("shuffled SrcIdx[%d] wrong", i)
		}
	}
}

// TestConstructDeterministicAcrossWorkers is the worker-count invariance
// proof for the derivation itself: every pool width, including forced-width
// pools that schedule real goroutines on 1-CPU machines, yields a deeply
// equal Tree.
func TestConstructDeterministicAcrossWorkers(t *testing.T) {
	leaves := refineSet(shellPred, 5)
	ref, err := Construct(leaves, Options{Pool: nil, Balance: true})
	if err != nil {
		t.Fatal(err)
	}
	pools := []*parallel.Pool{parallel.New(1), parallel.New(2), parallel.New(4), parallel.New(7), parallel.NewForced(4), parallel.NewForced(7)}
	for _, p := range pools {
		got, err := Construct(leaves, Options{Pool: p, Balance: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("tree differs at %d workers", p.Workers())
		}
	}
}

// TestValidationErrors is the satellite table test: every malformed input
// class maps to its typed error, with deterministic positions.
func TestValidationErrors(t *testing.T) {
	level1 := make([]morton.Code, 8)
	for k := 0; k < 8; k++ {
		level1[k] = morton.Root.Child(k)
	}
	missing5 := append(append([]morton.Code{}, level1[:5]...), level1[6:]...)
	cases := []struct {
		name  string
		codes []morton.Code
		check func(t *testing.T, err error)
	}{
		{"empty", nil, func(t *testing.T, err error) {
			var ce *CoverageError
			if !errors.As(err, &ce) || ce.Cell != 0 || ce.Index != 0 {
				t.Fatalf("got %v, want coverage gap at cell 0", err)
			}
		}},
		{"level out of range", []morton.Code{morton.Root, morton.Code(63)}, func(t *testing.T, err error) {
			var oe *OutOfRangeError
			if !errors.As(err, &oe) || oe.Index != 1 {
				t.Fatalf("got %v, want out-of-range at index 1", err)
			}
		}},
		{"stray morton bits", []morton.Code{morton.Code(1 << 6)}, func(t *testing.T, err error) {
			var oe *OutOfRangeError
			if !errors.As(err, &oe) || oe.Index != 0 {
				t.Fatalf("got %v, want out-of-range at index 0", err)
			}
		}},
		{"duplicate", append(append([]morton.Code{}, level1...), level1[3]), func(t *testing.T, err error) {
			var de *DuplicateCodeError
			if !errors.As(err, &de) {
				t.Fatalf("got %v, want duplicate", err)
			}
			if de.Code != level1[3] || de.First != 3 || de.Second != 8 {
				t.Fatalf("duplicate names %v (%d, %d), want %v (3, 8)", de.Code, de.First, de.Second, level1[3])
			}
		}},
		{"overlap", []morton.Code{morton.Root, morton.Root.Child(0)}, func(t *testing.T, err error) {
			var oe *OverlapError
			if !errors.As(err, &oe) {
				t.Fatalf("got %v, want overlap", err)
			}
			if oe.Ancestor != morton.Root || oe.Descendant != morton.Root.Child(0) {
				t.Fatalf("overlap names %v/%v", oe.Ancestor, oe.Descendant)
			}
			if oe.AncestorIndex != 0 || oe.DescendantIndex != 1 {
				t.Fatalf("overlap indices %d/%d, want 0/1", oe.AncestorIndex, oe.DescendantIndex)
			}
		}},
		{"interior gap", missing5, func(t *testing.T, err error) {
			var ce *CoverageError
			if !errors.As(err, &ce) {
				t.Fatalf("got %v, want coverage", err)
			}
			if ce.Index != 5 || ce.Cell != 5*cellVolume(1) {
				t.Fatalf("gap at cell %d pos %d, want cell %d pos 5", ce.Cell, ce.Index, 5*cellVolume(1))
			}
		}},
		{"trailing gap", level1[:7], func(t *testing.T, err error) {
			var ce *CoverageError
			if !errors.As(err, &ce) || ce.Index != 7 || ce.Cell != 7*cellVolume(1) {
				t.Fatalf("got %v, want trailing gap at cell %d", err, 7*cellVolume(1))
			}
		}},
	}
	pools := []*parallel.Pool{nil, parallel.NewForced(4)}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, p := range pools {
				tr, err := Construct(tc.codes, Options{Pool: p})
				if err == nil {
					t.Fatalf("Construct accepted %s (%d nodes)", tc.name, len(tr.Nodes))
				}
				tc.check(t, err)
			}
		})
	}
}

// unbalancedSet descends to deep along the single chain of octants
// containing the point (0.49, 0.49, 0.49). A corner descent would be
// naturally graded, but this chain hugs the domain-center plane from
// inside child 0, so its deep leaves sit face-adjacent to untouched
// level-1 leaves across that plane: a guaranteed 2:1 violation.
func unbalancedSet(deep uint8) []morton.Code {
	return refineSet(func(c morton.Code) bool {
		x, y, z, l := c.Decode()
		p := uint32(float64(uint64(1)<<l) * 0.49)
		return x == p && y == p && z == p
	}, deep)
}

func faceBalanced(leaves []morton.Code) bool {
	cells := make([]uint64, len(leaves))
	for i, c := range leaves {
		cells[i] = c.Key() >> 6
	}
	var scratch [6]morton.Code
	for _, o := range leaves {
		if o.Level() < 2 {
			continue
		}
		for _, nb := range o.FaceNeighbors(scratch[:0]) {
			j := coveringLeaf(cells, nb)
			if int(o.Level())-int(leaves[j].Level()) > 1 {
				return false
			}
		}
	}
	return true
}

func TestBalanceClosure(t *testing.T) {
	in := unbalancedSet(6)
	if faceBalanced(in) {
		t.Fatal("test input is unexpectedly balanced")
	}
	out, err := Balance(in, parallel.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if !faceBalanced(out) {
		t.Fatal("Balance output violates 2:1")
	}
	if len(out) <= len(in) {
		t.Fatalf("Balance did not split: %d -> %d", len(in), len(out))
	}
	// Idempotence: balancing a balanced set is the identity.
	again, err := Balance(out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, again) {
		t.Fatal("Balance is not idempotent")
	}
	// Construct with Options.Balance reaches the same fixed point.
	tr, err := Construct(in, Options{Balance: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Leaves, out) {
		t.Fatal("Construct{Balance} and Balance disagree")
	}
	checkTree(t, tr, len(out))
}

func TestComplementCover(t *testing.T) {
	if cov := ComplementCover(nil); len(cov) != 1 || cov[0] != morton.Root {
		t.Fatalf("cover of nothing = %v, want [root]", cov)
	}
	full := refineSet(shellPred, 4)
	if cov := ComplementCover(full); len(cov) != 0 {
		t.Fatalf("cover of a full partition has %d octants", len(cov))
	}
	// A key-span slice of the shell partition plus its cover must be a
	// partition again — exactly the shard-materialization shape.
	part := full[len(full)/3 : 2*len(full)/3]
	cov := ComplementCover(part)
	tr, err := Construct(append(append([]morton.Code{}, part...), cov...), Options{})
	if err != nil {
		t.Fatalf("slice+cover is not a partition: %v", err)
	}
	checkTree(t, tr, len(part)+len(cov))
	// The cover is minimal-ish sanity: every cover octant is outside the
	// kept span.
	lo := part[0].Key()
	_, hiKey := part[len(part)-1].KeySpan()
	for _, c := range cov {
		if c.Key() >= lo && c.Key() <= hiKey {
			t.Fatalf("cover octant %v lies inside the kept span", c)
		}
	}
}

// TestIsInputError: the typed validation errors classify as input errors
// (also when wrapped), everything else does not — the contract pmserve's
// -materialize exit codes key off.
func TestIsInputError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"out-of-range", &OutOfRangeError{Index: 3}, true},
		{"duplicate", &DuplicateCodeError{First: 0, Second: 1}, true},
		{"overlap", &OverlapError{AncestorIndex: 0, DescendantIndex: 2}, true},
		{"coverage", &CoverageError{Cell: 7, Index: 9}, true},
		{"wrapped", fmt.Errorf("construct: %w", &DuplicateCodeError{}), true},
		{"plain", errors.New("disk on fire"), false},
		{"wrapped-plain", fmt.Errorf("outer: %w", errors.New("inner")), false},
	}
	for _, c := range cases {
		if got := IsInputError(c.err); got != c.want {
			t.Errorf("%s: IsInputError = %v, want %v", c.name, got, c.want)
		}
	}
}
