// Package etree implements the out-of-core baseline of the evaluation: a
// paged linear octree in the style of the Etree library (Tu, Lopez,
// O'Hallaron, CMU-CS-03-174; SC '04), adapted to run over NVBM accessed
// through a file-system interface, as §5.1 of the paper describes.
//
// Three structural properties drive its performance, all reproduced here:
//
//   - Octants are not byte-addressable: the minimum I/O unit is a 4 KiB
//     page holding many octant records (§5.4).
//   - Every octant lookup first walks a B-tree index keyed by the octant's
//     Z-value (level-prefixed Morton code); index probes are charged as
//     page reads on the same device.
//   - The octree is linear: only leaves are stored and no neighbor or
//     parent pointers exist, so 2:1 balancing must probe all 26 neighbors
//     of every octant through the index (§5.4).
//
// In exchange, the structure is a database: it is consistent on the device
// at every operation boundary, so failure recovery is immediate (§5.6) —
// as long as the device itself survives (it cannot be replicated, which is
// why it cannot recover in the lost-node scenario).
package etree

import (
	"encoding/binary"
	"fmt"
	"math"

	"pmoctree/internal/btree"
	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/pagefile"
	"pmoctree/internal/telemetry"
)

// DataWords matches the octant payload of the other implementations.
const DataWords = 4

// recSize is one octant record: code + data.
const recSize = 8 + 8*DataWords

// PageCapacity is the number of octant records per 4 KiB page.
const PageCapacity = (pagefile.PageSize - 4) / recSize

// Tree is a paged linear octree over an NVBM device.
type Tree struct {
	store *pagefile.Store
	index *btree.Tree       // Z-value -> page id
	fill  []int             // records per page (volatile; rebuilt on Open)
	open  int               // page currently accepting inserts, -1 if none
	tel   *telemetry.Tracer // nil when telemetry is off
}

// New creates an empty linear octree holding the root octant.
func New(dev *nvbm.Device) *Tree {
	t := &Tree{
		store: pagefile.NewStore(dev),
		index: btree.New(),
		open:  -1,
	}
	t.chargeIndexIO()
	t.insert(morton.Root, [DataWords]float64{})
	return t
}

// chargeIndexIO wires the B-tree's per-node Touch to a page-sized read on
// the backing device: index pages live on the same slow medium.
func (t *Tree) chargeIndexIO() {
	dev := t.store.Device()
	t.index.Touch = func() { dev.ChargeRead(pagefile.PageSize) }
}

// Open rebuilds a Tree from a device written by a previous Tree — the
// restart path. Recovery is effectively free (§5.6: "the program can
// immediately access octants in NVBM because Etree is essentially an
// octant database"): both octant pages and index state live on the
// device, and every index access is charged per operation via Touch. The
// in-memory mirror rebuilt here is an artifact of the emulation, so the
// scan runs unmetered; only one superblock page read is charged.
func Open(dev *nvbm.Device) (*Tree, error) {
	t := &Tree{
		store: pagefile.NewStore(dev),
		index: btree.New(),
		open:  -1,
	}
	t.chargeIndexIO()
	dev.ChargeRead(pagefile.PageSize)
	dev.SetAccounting(false)
	defer dev.SetAccounting(true)
	npages := dev.Size() / pagefile.PageSize
	buf := make([]byte, pagefile.PageSize)
	for pid := 0; pid < npages; pid++ {
		if t.store.AllocPage() != pid {
			return nil, fmt.Errorf("etree: page enumeration out of sync")
		}
		t.store.ReadPage(pid, buf)
		n := int(binary.LittleEndian.Uint32(buf))
		if n > PageCapacity {
			return nil, fmt.Errorf("etree: page %d claims %d records", pid, n)
		}
		t.fill = append(t.fill, n)
		for i := 0; i < n; i++ {
			code := morton.Code(binary.LittleEndian.Uint64(buf[4+i*recSize:]))
			t.index.Put(code.Key(), pid)
		}
		if n < PageCapacity && t.open < 0 {
			t.open = pid
		}
	}
	if t.index.Len() == 0 {
		return nil, fmt.Errorf("etree: device holds no octants")
	}
	return t, nil
}

// SetTracer attaches a telemetry tracer; the batch routines
// (Refine/Coarsen/Balance/Solve) then record phase spans. A nil tracer
// (the default) turns spans off.
func (t *Tree) SetTracer(tel *telemetry.Tracer) { t.tel = tel }

// Tracer returns the attached tracer, satisfying telemetry.Traceable.
func (t *Tree) Tracer() *telemetry.Tracer { return t.tel }

// LeafCount returns the number of stored octants (all are leaves).
func (t *Tree) LeafCount() int { return t.index.Len() }

// Device returns the backing device.
func (t *Tree) Device() *nvbm.Device { return t.store.Device() }

// IndexHeight returns the current B-tree height (index probe cost).
func (t *Tree) IndexHeight() int { return t.index.Height() }

// --- page-level record plumbing ---

func (t *Tree) readPage(pid int, buf []byte) int {
	t.store.ReadPage(pid, buf)
	return int(binary.LittleEndian.Uint32(buf))
}

func (t *Tree) writePage(pid int, buf []byte, n int) {
	binary.LittleEndian.PutUint32(buf, uint32(n))
	t.store.WritePage(pid, buf)
	t.fill[pid] = n
}

func recCode(buf []byte, i int) morton.Code {
	return morton.Code(binary.LittleEndian.Uint64(buf[4+i*recSize:]))
}

func recData(buf []byte, i int) (d [DataWords]float64) {
	for w := 0; w < DataWords; w++ {
		d[w] = math.Float64frombits(binary.LittleEndian.Uint64(buf[4+i*recSize+8+8*w:]))
	}
	return
}

func putRec(buf []byte, i int, code morton.Code, d [DataWords]float64) {
	binary.LittleEndian.PutUint64(buf[4+i*recSize:], uint64(code))
	for w := 0; w < DataWords; w++ {
		binary.LittleEndian.PutUint64(buf[4+i*recSize+8+8*w:], math.Float64bits(d[w]))
	}
}

// insert adds an octant record, appending to the open page.
func (t *Tree) insert(code morton.Code, d [DataWords]float64) {
	buf := make([]byte, pagefile.PageSize)
	if t.open < 0 || t.fill[t.open] >= PageCapacity {
		t.open = -1
		for pid, n := range t.fill {
			if n < PageCapacity {
				t.open = pid
				break
			}
		}
		if t.open < 0 {
			t.open = t.store.AllocPage()
			t.fill = append(t.fill, 0)
			t.writePage(t.open, buf, 0)
		}
	}
	n := t.readPage(t.open, buf)
	putRec(buf, n, code, d)
	t.writePage(t.open, buf, n+1)
	t.index.Put(code.Key(), t.open)
}

// remove deletes the octant record for code, returning its data.
func (t *Tree) remove(code morton.Code) ([DataWords]float64, bool) {
	pid, ok := t.index.Get(code.Key())
	if !ok {
		return [DataWords]float64{}, false
	}
	buf := make([]byte, pagefile.PageSize)
	n := t.readPage(pid, buf)
	for i := 0; i < n; i++ {
		if recCode(buf, i) == code {
			d := recData(buf, i)
			// Swap-last compaction within the page.
			if i != n-1 {
				last := recCode(buf, n-1)
				putRec(buf, i, last, recData(buf, n-1))
				_ = last
			}
			t.writePage(pid, buf, n-1)
			t.index.Delete(code.Key())
			return d, true
		}
	}
	return [DataWords]float64{}, false
}

// get reads the octant record for code.
func (t *Tree) get(code morton.Code) ([DataWords]float64, bool) {
	pid, ok := t.index.Get(code.Key())
	if !ok {
		return [DataWords]float64{}, false
	}
	buf := make([]byte, pagefile.PageSize)
	n := t.readPage(pid, buf)
	for i := 0; i < n; i++ {
		if recCode(buf, i) == code {
			return recData(buf, i), true
		}
	}
	return [DataWords]float64{}, false
}

// set rewrites the octant record for code in place.
func (t *Tree) set(code morton.Code, d [DataWords]float64) bool {
	pid, ok := t.index.Get(code.Key())
	if !ok {
		return false
	}
	buf := make([]byte, pagefile.PageSize)
	n := t.readPage(pid, buf)
	for i := 0; i < n; i++ {
		if recCode(buf, i) == code {
			putRec(buf, i, code, d)
			t.writePage(pid, buf, n)
			return true
		}
	}
	return false
}

// --- linear octree operations ---

// Exists reports whether code names a stored leaf.
func (t *Tree) Exists(code morton.Code) bool {
	_, ok := t.index.Get(code.Key())
	return ok
}

// FindLeaf returns the code of the stored leaf containing code. A linear
// octree has no pointers, so the search probes the index once per ancestor
// level — part of the baseline's cost.
func (t *Tree) FindLeaf(code morton.Code) (morton.Code, bool) {
	for l := int(code.Level()); l >= 0; l-- {
		anc := code.AncestorAt(uint8(l))
		if t.Exists(anc) {
			return anc, true
		}
	}
	return 0, false
}

// Refine splits the leaf at code into 8 children inheriting its data.
func (t *Tree) Refine(code morton.Code) bool {
	d, ok := t.remove(code)
	if !ok {
		return false
	}
	for i := 0; i < 8; i++ {
		t.insert(code.Child(i), d)
	}
	return true
}

// Coarsen replaces the 8 children of code with code itself, averaging
// their data. All 8 children must exist as leaves.
func (t *Tree) Coarsen(code morton.Code) bool {
	var kids [8]morton.Code
	for i := 0; i < 8; i++ {
		kids[i] = code.Child(i)
		if !t.Exists(kids[i]) {
			return false
		}
	}
	var sum [DataWords]float64
	for _, k := range kids {
		d, _ := t.remove(k)
		for w := 0; w < DataWords; w++ {
			sum[w] += d[w]
		}
	}
	for w := 0; w < DataWords; w++ {
		sum[w] /= 8
	}
	t.insert(code, sum)
	return true
}

// ForEachLeaf visits all leaves in Z-order.
func (t *Tree) ForEachLeaf(fn func(code morton.Code, data [DataWords]float64) bool) {
	// Collect codes first: mutating during Ascend is not supported, and
	// record access reads each page per record (the paged-I/O cost).
	var codes []morton.Code
	t.index.Ascend(0, func(k uint64, _ int) bool {
		codes = append(codes, morton.FromKey(k))
		return true
	})
	for _, c := range codes {
		d, ok := t.get(c)
		if !ok {
			continue
		}
		if !fn(c, d) {
			return
		}
	}
}

// LeafCodes returns all leaf codes in Z-order.
func (t *Tree) LeafCodes() []morton.Code {
	var codes []morton.Code
	t.index.Ascend(0, func(k uint64, _ int) bool {
		codes = append(codes, morton.FromKey(k))
		return true
	})
	return codes
}

// RefineWhere refines every leaf satisfying pred until none below
// maxLevel does. Returns the number of splits.
func (t *Tree) RefineWhere(pred func(morton.Code) bool, maxLevel uint8) int {
	defer t.tel.Begin("Refine").End()
	refined := 0
	queue := t.LeafCodes()
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if c.Level() >= maxLevel || !pred(c) || !t.Exists(c) {
			continue
		}
		if t.Refine(c) {
			refined++
			for i := 0; i < 8; i++ {
				queue = append(queue, c.Child(i))
			}
		}
	}
	return refined
}

// CoarsenWhere collapses complete sibling groups whose parent satisfies
// pred, repeatedly, until stable. Returns the number of collapses.
func (t *Tree) CoarsenWhere(pred func(morton.Code) bool) int {
	defer t.tel.Begin("Coarsen").End()
	coarsened := 0
	for {
		did := false
		for _, c := range t.LeafCodes() {
			if c.Level() == 0 || c.ChildIndex() != 0 {
				continue
			}
			parent := c.Parent()
			if !pred(parent) {
				continue
			}
			if t.Coarsen(parent) {
				coarsened++
				did = true
			}
		}
		if !did {
			return coarsened
		}
	}
}

// UpdateLeaves applies fn to every leaf, rewriting records whose data
// changed (whole-page writes). Returns the number of modified leaves.
func (t *Tree) UpdateLeaves(fn func(code morton.Code, data *[DataWords]float64) bool) int {
	defer t.tel.Begin("Solve").End()
	changed := 0
	for _, c := range t.LeafCodes() {
		d, ok := t.get(c)
		if !ok {
			continue
		}
		if fn(c, &d) {
			t.set(c, d)
			changed++
		}
	}
	return changed
}

// Balance enforces the 2:1 constraint. With no pointers, every leaf must
// probe all 26 neighbor keys through the index, and a containing-leaf
// search costs one probe per level (§5.4: "for a single octant, it needs
// to search all its 26 neighbors, resulting in very high I/O overhead").
// Violators are refined in batches per scan. Returns the number of
// refines.
func (t *Tree) Balance() int {
	defer t.tel.Begin("Balance").End()
	refined := 0
	for {
		seen := map[morton.Code]bool{}
		var victims []morton.Code
		var scratch [26]morton.Code
		for _, c := range t.LeafCodes() {
			if c.Level() < 2 {
				continue
			}
			for _, nb := range c.AllNeighbors(scratch[:0]) {
				leaf, ok := t.FindLeaf(nb)
				if ok && c.Level()-leaf.Level() > 1 && !seen[leaf] {
					seen[leaf] = true
					victims = append(victims, leaf)
				}
			}
		}
		if len(victims) == 0 {
			return refined
		}
		for _, v := range victims {
			if t.Refine(v) {
				refined++
			}
		}
	}
}

// IsBalanced reports whether the 2:1 constraint holds across faces, edges
// and corners.
func (t *Tree) IsBalanced() bool {
	ok := true
	var scratch [26]morton.Code
	for _, c := range t.LeafCodes() {
		if c.Level() < 2 {
			continue
		}
		for _, nb := range c.AllNeighbors(scratch[:0]) {
			leaf, found := t.FindLeaf(nb)
			if found && c.Level()-leaf.Level() > 1 {
				ok = false
				return ok
			}
		}
	}
	return ok
}

// Validate checks linear-octree invariants: leaves tile the domain exactly
// (no overlaps, no gaps), verified by volume and pairwise ancestry.
func (t *Tree) Validate() error {
	codes := t.LeafCodes()
	if len(codes) == 0 {
		return fmt.Errorf("etree: no leaves")
	}
	vol := 0.0
	for i, c := range codes {
		e := c.Extent()
		vol += e * e * e
		if i > 0 {
			if !codes[i-1].Less(c) {
				return fmt.Errorf("etree: leaves out of Z-order at %v", c)
			}
			if codes[i-1].Contains(c) || c.Contains(codes[i-1]) {
				return fmt.Errorf("etree: overlapping leaves %v and %v", codes[i-1], c)
			}
		}
	}
	if math.Abs(vol-1.0) > 1e-9 {
		return fmt.Errorf("etree: leaves cover volume %v, want 1", vol)
	}
	return nil
}
