package etree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
)

// sphereShell returns a region-intersection predicate for a spherical
// interface band.
func sphereShell(cx, cy, cz, rad, band float64) func(morton.Code) bool {
	return func(c morton.Code) bool {
		x, y, z := c.Center()
		h := c.Extent() / 2
		minD2, maxD2 := 0.0, 0.0
		for _, p := range [3][2]float64{{x, cx}, {y, cy}, {z, cz}} {
			lo, hi := p[0]-h, p[0]+h
			d := 0.0
			if p[1] < lo {
				d = lo - p[1]
			} else if p[1] > hi {
				d = p[1] - hi
			}
			minD2 += d * d
			far := p[1] - lo
			if f := hi - p[1]; f > far {
				far = f
			}
			maxD2 += far * far
		}
		lo, hi := rad-band, rad+band
		if lo < 0 {
			lo = 0
		}
		return minD2 <= hi*hi && maxD2 >= lo*lo
	}
}

func TestNewHoldsRoot(t *testing.T) {
	tr := New(nvbm.New(nvbm.NVBM, 0))
	if tr.LeafCount() != 1 {
		t.Fatalf("LeafCount = %d", tr.LeafCount())
	}
	if !tr.Exists(morton.Root) {
		t.Error("root missing")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRefineCoarsen(t *testing.T) {
	tr := New(nvbm.New(nvbm.NVBM, 0))
	if !tr.Refine(morton.Root) {
		t.Fatal("refine root failed")
	}
	if tr.LeafCount() != 8 {
		t.Fatalf("LeafCount = %d", tr.LeafCount())
	}
	if tr.Exists(morton.Root) {
		t.Error("linear octree kept interior node")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tr.Coarsen(morton.Root) {
		t.Fatal("coarsen failed")
	}
	if tr.LeafCount() != 1 {
		t.Fatalf("LeafCount = %d after coarsen", tr.LeafCount())
	}
}

func TestRefineMissingLeaf(t *testing.T) {
	tr := New(nvbm.New(nvbm.NVBM, 0))
	if tr.Refine(morton.Root.Child(0)) {
		t.Error("refined a nonexistent leaf")
	}
}

func TestCoarsenIncompleteSiblings(t *testing.T) {
	tr := New(nvbm.New(nvbm.NVBM, 0))
	tr.Refine(morton.Root)
	tr.Refine(morton.Root.Child(0)) // children at mixed levels now
	if tr.Coarsen(morton.Root) {
		t.Error("coarsened with refined child present")
	}
}

func TestDataInheritanceAndAveraging(t *testing.T) {
	tr := New(nvbm.New(nvbm.NVBM, 0))
	tr.UpdateLeaves(func(_ morton.Code, d *[DataWords]float64) bool {
		d[0] = 8
		return true
	})
	tr.Refine(morton.Root)
	d, ok := tr.get(morton.Root.Child(3))
	if !ok || d[0] != 8 {
		t.Errorf("child data = %v, %v", d, ok)
	}
	tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
		if c == morton.Root.Child(0) {
			d[0] = 16
			return true
		}
		return false
	})
	tr.Coarsen(morton.Root)
	d, _ = tr.get(morton.Root)
	if d[0] != 9 { // (7*8+16)/8
		t.Errorf("averaged data = %v", d[0])
	}
}

func TestFindLeaf(t *testing.T) {
	tr := New(nvbm.New(nvbm.NVBM, 0))
	tr.Refine(morton.Root)
	tr.Refine(morton.Root.Child(0))
	leaf, ok := tr.FindLeaf(morton.Root.Child(0).Child(5).Child(2))
	if !ok || leaf != morton.Root.Child(0).Child(5) {
		t.Errorf("FindLeaf = %v, %v", leaf, ok)
	}
	leaf, ok = tr.FindLeaf(morton.Root.Child(7).Child(0))
	if !ok || leaf != morton.Root.Child(7) {
		t.Errorf("FindLeaf coarse = %v, %v", leaf, ok)
	}
}

func TestRefineWhereAndValidate(t *testing.T) {
	tr := New(nvbm.New(nvbm.NVBM, 0))
	pred := sphereShell(0.4, 0.4, 0.4, 0.25, 0.1)
	n := tr.RefineWhere(pred, 4)
	if n == 0 {
		t.Fatal("nothing refined")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range tr.LeafCodes() {
		if pred(c) && c.Level() < 4 {
			t.Fatalf("leaf %v satisfies pred below max level", c)
		}
	}
}

func TestCoarsenWhere(t *testing.T) {
	tr := New(nvbm.New(nvbm.NVBM, 0))
	tr.RefineWhere(func(morton.Code) bool { return true }, 2)
	if tr.LeafCount() != 64 {
		t.Fatalf("leaves = %d", tr.LeafCount())
	}
	tr.CoarsenWhere(func(morton.Code) bool { return true })
	if tr.LeafCount() != 1 {
		t.Fatalf("leaves after coarsen = %d", tr.LeafCount())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBalance26(t *testing.T) {
	tr := New(nvbm.New(nvbm.NVBM, 0))
	// Center-adjacent deep refinement, unbalanced against (1,0,0)L1.
	tr.Refine(morton.Root)
	n := morton.Root.Child(0)
	for i := 0; i < 3; i++ {
		tr.Refine(n)
		n = n.Child(7)
	}
	if tr.IsBalanced() {
		t.Fatal("tree should start unbalanced")
	}
	if tr.Balance() == 0 {
		t.Fatal("balance did nothing")
	}
	if !tr.IsBalanced() {
		t.Fatal("still unbalanced")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceCostlierThanPointerOctree(t *testing.T) {
	// The linear octree's balance must probe the index heavily — §5.4's
	// explanation for why out-of-core balancing is slow.
	dev := nvbm.New(nvbm.NVBM, 0)
	tr := New(dev)
	tr.RefineWhere(sphereShell(0.5, 0.5, 0.5, 0.3, 0.05), 4)
	before := dev.Stats()
	tr.Balance()
	delta := dev.Stats().Sub(before)
	if delta.Reads < uint64(tr.LeafCount()*26) {
		t.Errorf("balance read %d pages for %d leaves; expected >= 26 probes/leaf",
			delta.Reads, tr.LeafCount())
	}
}

func TestPagedIOCharging(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	tr := New(dev)
	before := dev.Stats()
	tr.UpdateLeaves(func(_ morton.Code, d *[DataWords]float64) bool {
		d[0] = 1
		return true
	})
	delta := dev.Stats().Sub(before)
	// Updating one 40-byte record must move whole pages.
	if delta.WriteBytes < 4096 {
		t.Errorf("update wrote %d bytes; expected a full page", delta.WriteBytes)
	}
}

func TestOpenRebuildsIndex(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	tr := New(dev)
	tr.RefineWhere(sphereShell(0.3, 0.6, 0.5, 0.2, 0.1), 3)
	tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
		d[1] = float64(c.Level())
		return true
	})
	want := map[morton.Code][DataWords]float64{}
	tr.ForEachLeaf(func(c morton.Code, d [DataWords]float64) bool {
		want[c] = d
		return true
	})

	// Crash: the in-memory index is lost; the device survives.
	re, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if re.LeafCount() != len(want) {
		t.Fatalf("reopened %d leaves, want %d", re.LeafCount(), len(want))
	}
	re.ForEachLeaf(func(c morton.Code, d [DataWords]float64) bool {
		if want[c] != d {
			t.Fatalf("leaf %v data %v, want %v", c, d, want[c])
		}
		return true
	})
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	// And it stays writable.
	re.RefineWhere(func(c morton.Code) bool { return c.Level() < 1 }, 1)
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenEmptyDeviceFails(t *testing.T) {
	if _, err := Open(nvbm.New(nvbm.NVBM, 0)); err == nil {
		t.Error("expected error opening empty device")
	}
}

func TestManyPagesAllocation(t *testing.T) {
	tr := New(nvbm.New(nvbm.NVBM, 0))
	tr.RefineWhere(func(morton.Code) bool { return true }, 3) // 512 leaves
	if tr.LeafCount() != 512 {
		t.Fatalf("leaves = %d", tr.LeafCount())
	}
	if tr.store.Pages() < 512/PageCapacity {
		t.Errorf("pages = %d, too few for %d records", tr.store.Pages(), 512)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: random refine/coarsen sequences keep the leaf set a perfect
// tiling of the domain, matching the behavior of the pointer octree.
func TestQuickTilingInvariant(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(nvbm.New(nvbm.NVBM, 0))
		for _, op := range ops {
			pred := sphereShell(r.Float64(), r.Float64(), r.Float64(), 0.2, 0.15)
			if op%2 == 0 {
				tr.RefineWhere(pred, 3)
			} else {
				tr.CoarsenWhere(pred)
			}
			if tr.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: reopening after any build sequence reproduces the same leaves.
func TestQuickReopenIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dev := nvbm.New(nvbm.NVBM, 0)
		tr := New(dev)
		tr.RefineWhere(sphereShell(r.Float64(), r.Float64(), r.Float64(), 0.3, 0.1), 3)
		want := tr.LeafCodes()
		re, err := Open(dev)
		if err != nil {
			return false
		}
		got := re.LeafCodes()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
