package router

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker position.
type BreakerState int

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are refused locally until OpenTimeout passes.
	BreakerOpen
	// BreakerHalfOpen: probe traffic is admitted; successes re-close the
	// breaker, any failure re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig parameterizes a Breaker.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips
	// Closed -> Open (default 5).
	FailureThreshold int
	// OpenTimeout is how long the breaker stays Open before admitting a
	// half-open probe (default 2s).
	OpenTimeout time.Duration
	// HalfOpenSuccesses is the consecutive-success count that closes a
	// half-open breaker (default 2).
	HalfOpenSuccesses int
	// Now is the clock (default time.Now); tests inject a fake.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 2 * time.Second
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a per-backend circuit breaker. It exists to stop the router
// from queuing work behind a dead backend: once trips accumulate, calls
// fail fast locally (no connection attempt, no timeout burn) and the
// backend gets OpenTimeout of quiet to recover, after which a trickle of
// probes decides whether to re-close.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int // consecutive failures while Closed
	okStreak int // consecutive successes while HalfOpen
	openedAt time.Time

	// onTransition, when set, observes every state change (metrics/flight
	// hooks). Called with the breaker's lock held — keep it non-blocking.
	onTransition func(from, to BreakerState)
}

// NewBreaker builds a breaker in the Closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// OnTransition installs the state-change observer.
func (b *Breaker) OnTransition(fn func(from, to BreakerState)) {
	b.mu.Lock()
	b.onTransition = fn
	b.mu.Unlock()
}

func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// State returns the current position (Open may flip to HalfOpen only via
// Allow, so an idle open breaker reports Open even past its timeout).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a request may proceed. An Open breaker past its
// timeout transitions to HalfOpen and admits the caller as the probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed, BreakerHalfOpen:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenTimeout {
			b.okStreak = 0
			b.transition(BreakerHalfOpen)
			return true
		}
		return false
	}
	return false
}

// OnSuccess records a successful call.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails = 0
	case BreakerHalfOpen:
		b.okStreak++
		if b.okStreak >= b.cfg.HalfOpenSuccesses {
			b.fails = 0
			b.transition(BreakerClosed)
		}
	}
}

// OnFailure records a failed call.
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.openedAt = b.cfg.Now()
			b.transition(BreakerOpen)
		}
	case BreakerHalfOpen:
		// The probe failed: back to Open for a fresh quiet period.
		b.openedAt = b.cfg.Now()
		b.transition(BreakerOpen)
	}
}
