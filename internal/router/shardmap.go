// Package router is the fault-tolerant front tier over sharded PM-octree
// serving: it maps Z-order key spans onto shard backends (the Cornerstone
// layout — octree data distributed by Morton key ranges), scatter-gathers
// region and aggregate queries across the spans, and treats every failure
// mode as first-class behavior. Per-shard health is tracked with
// hysteresis, a circuit breaker gates each backend, retryable errors are
// retried with exponential backoff and seeded jitter under the request's
// own deadline, hedged reads bound tail latency, and when a shard cannot
// serve at all the router falls back — first to the shard's recovery
// replica, then to a healthy peer (every shard arena carries the full
// committed image; responsibility, not data, is partitioned), and finally
// to a stale-but-available committed version with an explicit
// degraded/stale_version marker. The durable state, not the serving
// process, is the unit that survives (the NVTraverse framing): any
// surviving replica or fallback-ring version is instantly servable.
package router

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"pmoctree/internal/morton"
	"pmoctree/internal/serve"
)

// maxCellKey is the largest key any cell can have: the last MaxLevel
// cell's key. Keys left-align the Morton bits and pack the level into
// the low 6 bits, so the populated key space is [0, maxCellKey] — well
// below math.MaxUint64 (bit 63 is never set).
func maxCellKey() uint64 {
	const last = uint32(1<<morton.MaxLevel - 1)
	return morton.Encode(last, last, last, morton.MaxLevel).Key()
}

// UniformSpans splits the populated Z-order key space [0, maxCellKey]
// into n contiguous spans of equal width; the last span is extended to
// math.MaxUint64 so the map stays total over uint64. Morton keys are
// measure-preserving over the MaxLevel cell grid, so equal key width is
// equal spatial volume. Partitioning the populated range rather than
// all of uint64 matters: keys occupy only 63 bits, so splitting the
// full uint64 range would leave the high spans permanently empty.
func UniformSpans(n int) []serve.KeyRange {
	if n <= 0 {
		n = 1
	}
	width := maxCellKey()/uint64(n) + 1
	spans := make([]serve.KeyRange, n)
	lo := uint64(0)
	for i := 0; i < n; i++ {
		hi := lo + (width - 1)
		if i == n-1 || hi < lo {
			hi = math.MaxUint64
		}
		spans[i] = serve.KeyRange{Lo: lo, Hi: hi}
		lo = hi + 1
	}
	return spans
}

// ParseShardSpec parses "i/N" (0-based shard i of N) into shard i's
// uniform key span.
func ParseShardSpec(spec string) (serve.KeyRange, error) {
	parts := strings.Split(spec, "/")
	if len(parts) != 2 {
		return serve.KeyRange{}, fmt.Errorf("router: shard spec %q is not i/N", spec)
	}
	i, err1 := strconv.Atoi(parts[0])
	n, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || n <= 0 || i < 0 || i >= n {
		return serve.KeyRange{}, fmt.Errorf("router: shard spec %q needs 0 <= i < N", spec)
	}
	return UniformSpans(n)[i], nil
}

// ShardMap is the routing table: ascending, disjoint key spans covering
// the whole Z-order key space, one per shard.
type ShardMap struct {
	spans []serve.KeyRange
}

// NewShardMap validates that spans are ascending, disjoint, and cover
// the full key space.
func NewShardMap(spans []serve.KeyRange) (*ShardMap, error) {
	if len(spans) == 0 {
		return nil, fmt.Errorf("router: shard map needs at least one span")
	}
	next := uint64(0)
	for i, kr := range spans {
		if kr.Lo != next {
			return nil, fmt.Errorf("router: span %d starts at %d, want %d (spans must be ascending, disjoint, and complete)", i, kr.Lo, next)
		}
		if kr.Hi < kr.Lo {
			return nil, fmt.Errorf("router: span %d is inverted", i)
		}
		if i == len(spans)-1 {
			if kr.Hi != math.MaxUint64 {
				return nil, fmt.Errorf("router: last span ends at %d, want the key-space maximum", kr.Hi)
			}
		} else {
			next = kr.Hi + 1
		}
	}
	return &ShardMap{spans: spans}, nil
}

// Len returns the shard count.
func (m *ShardMap) Len() int { return len(m.spans) }

// Span returns shard i's key span.
func (m *ShardMap) Span(i int) serve.KeyRange { return m.spans[i] }

// OwnerOf returns the shard whose span contains key k.
func (m *ShardMap) OwnerOf(k uint64) int {
	lo, hi := 0, len(m.spans)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if m.spans[mid].Hi < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// overlapping returns the ascending shard ids whose spans intersect
// [lo, hi].
func (m *ShardMap) overlapping(lo, hi uint64) []int {
	first, last := m.OwnerOf(lo), m.OwnerOf(hi)
	out := make([]int, 0, last-first+1)
	for i := first; i <= last; i++ {
		out = append(out, i)
	}
	return out
}

// CandidatesForBox returns the ascending shard ids that can own a leaf
// intersecting box. A leaf intersecting the box is either a descendant
// of the corner cells' lowest common ancestor a (its key inside
// a.KeySpan()) or an ancestor of a itself (one of at most MaxLevel
// distinct keys), so the candidate set is the spans overlapping
// a.KeySpan() plus the owners of each ancestor key — exact, no
// geometry-dependent misses.
func (m *ShardMap) CandidatesForBox(box serve.Box) ([]int, error) {
	for d := 0; d < 3; d++ {
		if !(box.Min[d] < box.Max[d]) || box.Min[d] < 0 || box.Max[d] > 1 {
			return nil, serve.ErrBadRegion
		}
	}
	const n = 1 << morton.MaxLevel
	var loIdx, hiIdx [3]uint32
	for d := 0; d < 3; d++ {
		loIdx[d] = uint32(box.Min[d] * n)
		h := uint32(math.Ceil(box.Max[d]*n)) - 1
		if h > n-1 {
			h = n - 1
		}
		hiIdx[d] = h
	}
	a := morton.Encode(loIdx[0], loIdx[1], loIdx[2], morton.MaxLevel)
	b := morton.Encode(hiIdx[0], hiIdx[1], hiIdx[2], morton.MaxLevel)
	for a != b {
		a, b = a.Parent(), b.Parent()
	}
	lo, hi := a.KeySpan()
	ids := m.overlapping(lo, hi)
	seen := make(map[int]bool, len(ids))
	for _, id := range ids {
		seen[id] = true
	}
	for l := int(a.Level()) - 1; l >= 0; l-- {
		id := m.OwnerOf(a.AncestorAt(uint8(l)).Key())
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	// Keep ascending order (ancestor owners always precede the window).
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids, nil
}

// All returns every shard id, ascending.
func (m *ShardMap) All() []int {
	out := make([]int, len(m.spans))
	for i := range out {
		out[i] = i
	}
	return out
}
