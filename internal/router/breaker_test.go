package router

import (
	"testing"
	"time"
)

// TestBreakerStateMachine drives the breaker through scripted event
// sequences on an injected clock and checks the state after every event.
// Event legend: 'f' = OnFailure, 's' = OnSuccess, 'a' = Allow (expected
// true), 'r' = Allow refused (expected false), 'w' = advance the clock
// past OpenTimeout.
func TestBreakerStateMachine(t *testing.T) {
	cfg := BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Second, HalfOpenSuccesses: 2}

	cases := []struct {
		name   string
		script string
		want   []BreakerState // state after each event
	}{
		{
			name:   "trips after threshold consecutive failures",
			script: "ff f",
			want:   []BreakerState{BreakerClosed, BreakerClosed, BreakerOpen},
		},
		{
			name:   "success resets the failure streak",
			script: "ffsff",
			want:   []BreakerState{BreakerClosed, BreakerClosed, BreakerClosed, BreakerClosed, BreakerClosed},
		},
		{
			name:   "open refuses until the timeout, then half-opens",
			script: "fff r w a",
			want:   []BreakerState{BreakerClosed, BreakerClosed, BreakerOpen, BreakerOpen, BreakerOpen, BreakerHalfOpen},
		},
		{
			name:   "half-open closes after enough successes",
			script: "fff w a s s",
			want:   []BreakerState{BreakerClosed, BreakerClosed, BreakerOpen, BreakerOpen, BreakerHalfOpen, BreakerHalfOpen, BreakerClosed},
		},
		{
			name:   "half-open failure reopens for a fresh quiet period",
			script: "fff w a s f r w a",
			want: []BreakerState{
				BreakerClosed, BreakerClosed, BreakerOpen, BreakerOpen, BreakerHalfOpen,
				BreakerHalfOpen, BreakerOpen, BreakerOpen, BreakerOpen, BreakerHalfOpen,
			},
		},
		{
			name:   "closed after recovery counts failures from scratch",
			script: "fff w a s s ff f",
			want: []BreakerState{
				BreakerClosed, BreakerClosed, BreakerOpen, BreakerOpen, BreakerHalfOpen,
				BreakerHalfOpen, BreakerClosed, BreakerClosed, BreakerClosed, BreakerOpen,
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			now := time.Unix(0, 0)
			c := cfg
			c.Now = func() time.Time { return now }
			b := NewBreaker(c)
			var transitions int
			b.OnTransition(func(from, to BreakerState) { transitions++ })

			i := 0
			for _, ev := range tc.script {
				switch ev {
				case ' ':
					continue
				case 'f':
					b.OnFailure()
				case 's':
					b.OnSuccess()
				case 'w':
					now = now.Add(cfg.OpenTimeout)
				case 'a':
					if !b.Allow() {
						t.Fatalf("event %d (%c): Allow() = false, want true", i, ev)
					}
				case 'r':
					if b.Allow() {
						t.Fatalf("event %d (%c): Allow() = true, want refused", i, ev)
					}
				default:
					t.Fatalf("bad script event %c", ev)
				}
				if got := b.State(); got != tc.want[i] {
					t.Fatalf("after event %d (%c): state = %v, want %v", i, ev, got, tc.want[i])
				}
				i++
			}
			if i != len(tc.want) {
				t.Fatalf("script has %d events, want table covers %d", i, len(tc.want))
			}
			if transitions == 0 && tc.name != "success resets the failure streak" {
				t.Fatalf("no transitions observed")
			}
		})
	}
}

// TestBreakerAllowWhileClosed: a closed breaker admits everything and an
// idle open breaker reports Open from State() without flipping.
func TestBreakerAllowWhileClosed(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Second, Now: func() time.Time { return now }})
	for i := 0; i < 10; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused")
		}
	}
	b.OnFailure()
	now = now.Add(2 * time.Second)
	// State() alone must not half-open; only Allow admits the probe.
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("State() = %v, want Open", got)
	}
	if !b.Allow() {
		t.Fatal("Allow() after timeout = false, want probe admitted")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("State() = %v, want HalfOpen", got)
	}
}
