package router

import (
	"math"
	"math/rand"
	"testing"

	"pmoctree/internal/morton"
	"pmoctree/internal/serve"
)

func TestUniformSpansPartition(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 16, 31} {
		spans := UniformSpans(n)
		if len(spans) != n {
			t.Fatalf("UniformSpans(%d) returned %d spans", n, len(spans))
		}
		// NewShardMap validates ascending, disjoint, complete coverage.
		if _, err := NewShardMap(spans); err != nil {
			t.Fatalf("UniformSpans(%d): %v", n, err)
		}
	}
}

func TestParseShardSpec(t *testing.T) {
	kr, err := ParseShardSpec("1/4")
	if err != nil {
		t.Fatal(err)
	}
	if want := UniformSpans(4)[1]; kr != want {
		t.Fatalf("ParseShardSpec(1/4) = %+v, want %+v", kr, want)
	}
	if kr, err = ParseShardSpec("0/1"); err != nil || !kr.IsFull() {
		t.Fatalf("ParseShardSpec(0/1) = %+v, %v; want full span", kr, err)
	}
	for _, bad := range []string{"", "3", "a/b", "4/4", "-1/4", "1/0", "1/2/3"} {
		if _, err := ParseShardSpec(bad); err == nil {
			t.Fatalf("ParseShardSpec(%q) succeeded, want error", bad)
		}
	}
}

func TestOwnerOfMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 7, 16} {
		m, err := NewShardMap(UniformSpans(n))
		if err != nil {
			t.Fatal(err)
		}
		keys := []uint64{0, 1, math.MaxUint64, math.MaxUint64 - 1}
		for i := 0; i < 200; i++ {
			keys = append(keys, rng.Uint64())
		}
		for _, k := range keys {
			got := m.OwnerOf(k)
			want := -1
			for i := 0; i < m.Len(); i++ {
				kr := m.Span(i)
				if k >= kr.Lo && k <= kr.Hi {
					want = i
					break
				}
			}
			if got != want {
				t.Fatalf("n=%d OwnerOf(%d) = %d, want %d", n, k, got, want)
			}
		}
	}
}

// TestCandidatesForBoxComplete: every octant code (up to a modest level)
// that spatially overlaps the box must be owned by a candidate shard —
// including coarse leaves whose keys precede the box's Morton window.
func TestCandidatesForBoxComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const maxTestLevel = 4
	for _, n := range []int{1, 2, 3, 4, 9} {
		m, err := NewShardMap(UniformSpans(n))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			var box serve.Box
			for d := 0; d < 3; d++ {
				a, b := rng.Float64(), rng.Float64()
				if a > b {
					a, b = b, a
				}
				if a == b {
					b = a + 1e-6
				}
				box.Min[d], box.Max[d] = a, math.Min(b+1e-9, 1)
			}
			ids, err := m.CandidatesForBox(box)
			if err != nil {
				t.Fatalf("CandidatesForBox(%+v): %v", box, err)
			}
			cand := map[int]bool{}
			for i, id := range ids {
				cand[id] = true
				if i > 0 && ids[i] <= ids[i-1] {
					t.Fatalf("candidates not ascending: %v", ids)
				}
			}
			// Brute force: every octant overlapping the box, any level.
			for level := uint8(0); level <= maxTestLevel; level++ {
				grid := uint32(1) << level
				for x := uint32(0); x < grid; x++ {
					for y := uint32(0); y < grid; y++ {
						for z := uint32(0); z < grid; z++ {
							code := morton.Encode(x, y, z, level)
							if !overlapsBox(code, box) {
								continue
							}
							owner := m.OwnerOf(code.Key())
							if !cand[owner] {
								t.Fatalf("n=%d box %+v: octant %v owned by shard %d missing from candidates %v",
									n, box, code, owner, ids)
							}
						}
					}
				}
			}
		}
	}
}

// overlapsBox mirrors serve's leaf-vs-box overlap test.
func overlapsBox(code morton.Code, box serve.Box) bool {
	cx, cy, cz := code.Center()
	ext := code.Extent()
	min := [3]float64{cx - ext/2, cy - ext/2, cz - ext/2}
	for d := 0; d < 3; d++ {
		if min[d] >= box.Max[d] || box.Min[d] >= min[d]+ext {
			return false
		}
	}
	return true
}

func TestNewShardMapRejectsBadSpans(t *testing.T) {
	bad := [][]serve.KeyRange{
		{},
		{{Lo: 1, Hi: math.MaxUint64}},                      // gap at 0
		{{Lo: 0, Hi: 10}, {Lo: 12, Hi: math.MaxUint64}},    // gap
		{{Lo: 0, Hi: 10}, {Lo: 10, Hi: math.MaxUint64}},    // overlap
		{{Lo: 0, Hi: 10}, {Lo: 11, Hi: math.MaxUint64 - 1}}, // incomplete
	}
	for i, spans := range bad {
		if _, err := NewShardMap(spans); err == nil {
			t.Fatalf("case %d: NewShardMap accepted invalid spans %v", i, spans)
		}
	}
}
