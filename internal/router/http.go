package router

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"pmoctree/internal/core"
	"pmoctree/internal/serve"
)

// HTTP front end over a Router. The surface is a superset of the pmserve
// JSON endpoints — same paths, same parameters, same core fields — so
// scripts and the loadgen drive a router exactly like a single server.
// Every routed response additionally carries its provenance envelope:
// requested_version, served_version, degraded, degraded_reason, and
// served_by.
//
//	GET /v1/versions                 -> union of committed steps
//	GET /v1/point?x=&y=&z=[&version=]
//	GET /v1/region?x0=&y0=&z0=&x1=&y1=&z1=[&version=][&limit=]
//	GET /v1/agg?field=[&x0=&y0=&z0=&x1=&y1=&z1=][&version=]
//	GET /v1/shards                   -> per-shard span/health/breaker state

type routedErr struct {
	Error      string   `json:"error"`
	RetryAfter int64    `json:"retry_after_ms,omitempty"`
	Available  []uint64 `json:"available,omitempty"`
}

type envelopeJSON struct {
	RequestedVersion uint64   `json:"requested_version"`
	ServedVersion    uint64   `json:"served_version"`
	Degraded         bool     `json:"degraded"`
	DegradedReason   []string `json:"degraded_reason,omitempty"`
	ServedBy         []string `json:"served_by"`
}

type routedPoint struct {
	Version uint64                  `json:"version"`
	Code    string                  `json:"code"`
	Level   uint8                   `json:"level"`
	Center  [3]float64              `json:"center"`
	Extent  float64                 `json:"extent"`
	Data    [core.DataWords]float64 `json:"data"`
	envelopeJSON
}

type routedRegionLeaf struct {
	Code string                  `json:"code"`
	Data [core.DataWords]float64 `json:"data"`
}

type routedRegion struct {
	Version   uint64             `json:"version"`
	Count     int                `json:"count"`
	Truncated bool               `json:"truncated,omitempty"`
	Leaves    []routedRegionLeaf `json:"leaves"`
	envelopeJSON
}

type routedAgg struct {
	Version uint64  `json:"version"`
	Field   int     `json:"field"`
	Count   int     `json:"count"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	VolSum  float64 `json:"vol_sum"`
	envelopeJSON
}

// Handler is the HTTP surface over one Router.
type Handler struct {
	router *Router
	mux    *http.ServeMux
}

// NewHandler mounts the /v1 endpoints.
func NewHandler(r *Router) *Handler {
	h := &Handler{router: r, mux: http.NewServeMux()}
	h.mux.HandleFunc("/v1/versions", h.versions)
	h.mux.HandleFunc("/v1/point", h.point)
	h.mux.HandleFunc("/v1/region", h.region)
	h.mux.HandleFunc("/v1/agg", h.agg)
	h.mux.HandleFunc("/v1/shards", h.shards)
	return h
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// fail maps the router's error taxonomy onto HTTP statuses.
func fail(w http.ResponseWriter, err error) {
	var sat *serve.SaturatedError
	var nosuch *serve.NoSuchVersionError
	switch {
	case errors.As(err, &sat):
		secs := int64(sat.RetryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusServiceUnavailable, routedErr{
			Error:      err.Error(),
			RetryAfter: sat.RetryAfter.Milliseconds(),
		})
	case errors.As(err, &nosuch):
		writeJSON(w, http.StatusNotFound, routedErr{Error: err.Error(), Available: nosuch.Available})
	case errors.Is(err, serve.ErrOutOfDomain), errors.Is(err, serve.ErrBadRegion), errors.Is(err, serve.ErrBadField):
		writeJSON(w, http.StatusBadRequest, routedErr{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusGatewayTimeout, routedErr{Error: err.Error()})
	case errors.Is(err, ErrUnavailable):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, routedErr{Error: err.Error(), RetryAfter: 1000})
	default:
		writeJSON(w, http.StatusInternalServerError, routedErr{Error: err.Error()})
	}
}

func envJSON(env Envelope) envelopeJSON {
	served := env.ServedBy
	if served == nil {
		served = []string{}
	}
	return envelopeJSON{
		RequestedVersion: env.RequestedStep,
		ServedVersion:    env.ServedStep,
		Degraded:         env.Degraded,
		DegradedReason:   env.Reasons,
		ServedBy:         served,
	}
}

func versionParamHTTP(r *http.Request) (uint64, error) {
	vs := r.URL.Query().Get("version")
	if vs == "" {
		return Latest, nil
	}
	return strconv.ParseUint(vs, 10, 64)
}

func floatParamHTTP(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, errors.New("missing parameter " + name)
	}
	return strconv.ParseFloat(raw, 64)
}

func boxParamsHTTP(r *http.Request) (serve.Box, error) {
	var box serve.Box
	names := [6]string{"x0", "y0", "z0", "x1", "y1", "z1"}
	for d := 0; d < 3; d++ {
		lo, err := floatParamHTTP(r, names[d])
		if err != nil {
			return box, err
		}
		hi, err := floatParamHTTP(r, names[d+3])
		if err != nil {
			return box, err
		}
		box.Min[d], box.Max[d] = lo, hi
	}
	return box, nil
}

func (h *Handler) versions(w http.ResponseWriter, r *http.Request) {
	steps, err := h.router.Versions(r.Context())
	if err != nil {
		fail(w, err)
		return
	}
	resp := struct {
		Versions []uint64 `json:"versions"`
		Latest   uint64   `json:"latest"`
	}{Versions: steps}
	if len(steps) > 0 {
		resp.Latest = steps[len(steps)-1]
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) shards(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.router.Shards())
}

func (h *Handler) point(w http.ResponseWriter, r *http.Request) {
	x, errX := floatParamHTTP(r, "x")
	y, errY := floatParamHTTP(r, "y")
	z, errZ := floatParamHTTP(r, "z")
	if errX != nil || errY != nil || errZ != nil {
		writeJSON(w, http.StatusBadRequest, routedErr{Error: "point needs float parameters x, y, z"})
		return
	}
	version, err := versionParamHTTP(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, routedErr{Error: "version must be a step number"})
		return
	}
	ans, err := h.router.Point(r.Context(), version, x, y, z)
	if err != nil {
		fail(w, err)
		return
	}
	cx, cy, cz := ans.Result.Code.Center()
	writeJSON(w, http.StatusOK, routedPoint{
		Version:      ans.Result.Step,
		Code:         ans.Result.Code.String(),
		Level:        ans.Result.Depth,
		Center:       [3]float64{cx, cy, cz},
		Extent:       ans.Result.Code.Extent(),
		Data:         ans.Result.Data,
		envelopeJSON: envJSON(ans.Envelope),
	})
}

func (h *Handler) region(w http.ResponseWriter, r *http.Request) {
	box, err := boxParamsHTTP(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, routedErr{Error: err.Error()})
		return
	}
	limit := 0
	if ls := r.URL.Query().Get("limit"); ls != "" {
		limit, err = strconv.Atoi(ls)
		if err != nil || limit < 0 {
			writeJSON(w, http.StatusBadRequest, routedErr{Error: "limit must be a non-negative integer"})
			return
		}
	}
	version, err := versionParamHTTP(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, routedErr{Error: "version must be a step number"})
		return
	}
	ans, err := h.router.Region(r.Context(), version, box)
	if err != nil {
		fail(w, err)
		return
	}
	resp := routedRegion{
		Version:      ans.ServedStep,
		Count:        len(ans.Hits),
		Leaves:       []routedRegionLeaf{},
		envelopeJSON: envJSON(ans.Envelope),
	}
	for _, hit := range ans.Hits {
		if limit > 0 && len(resp.Leaves) >= limit {
			resp.Truncated = true
			break
		}
		resp.Leaves = append(resp.Leaves, routedRegionLeaf{Code: hit.Code.String(), Data: hit.Data})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) agg(w http.ResponseWriter, r *http.Request) {
	box := serve.Box{Max: [3]float64{1, 1, 1}}
	q := r.URL.Query()
	if q.Get("x0") != "" || q.Get("y0") != "" || q.Get("z0") != "" ||
		q.Get("x1") != "" || q.Get("y1") != "" || q.Get("z1") != "" {
		var err error
		box, err = boxParamsHTTP(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, routedErr{Error: err.Error()})
			return
		}
	}
	field, err := strconv.Atoi(q.Get("field"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, routedErr{Error: "agg needs an integer field parameter"})
		return
	}
	version, err := versionParamHTTP(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, routedErr{Error: "version must be a step number"})
		return
	}
	ans, err := h.router.Aggregate(r.Context(), version, field, box)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, routedAgg{
		Version:      ans.ServedStep,
		Field:        field,
		Count:        ans.Result.Count,
		Sum:          ans.Result.Sum,
		Min:          ans.Result.Min,
		Max:          ans.Result.Max,
		VolSum:       ans.Result.VolSum,
		envelopeJSON: envJSON(ans.Envelope),
	})
}
