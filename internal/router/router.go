package router

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"pmoctree/internal/morton"
	"pmoctree/internal/serve"
	"pmoctree/internal/telemetry"
)

// ErrUnavailable means no source — primary, replica, or healthy peer, at
// any committed version — could serve the request. The HTTP layer maps it
// to 503.
var ErrUnavailable = fmt.Errorf("router: request unavailable")

// ShardConfig is one shard's sources: the primary backend that owns the
// span, and an optional recovery replica (the ReplicaManager image,
// possibly lagging the primary by a few commits).
type ShardConfig struct {
	Primary Backend
	Replica Backend
}

// Config parameterizes a Router.
type Config struct {
	// Shards, in span order. Required.
	Shards []ShardConfig
	// Spans optionally overrides the uniform partition. Must be ascending,
	// disjoint, and complete; len must equal len(Shards).
	Spans []serve.KeyRange
	// MaxRetries bounds retries after the first attempt (default 2).
	MaxRetries int
	// BaseBackoff and MaxBackoff shape the exponential backoff between
	// retries (defaults 2ms and 100ms). Each wait gets equal jitter: half
	// deterministic, half drawn from the seeded source.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout bounds each individual backend call; 0 means the
	// request's own deadline is the only bound.
	AttemptTimeout time.Duration
	// HedgeDelay, when positive, launches a hedged read against the
	// shard's replica if the primary has not answered within the delay.
	// Degraded shards are hedged immediately. 0 disables hedging.
	HedgeDelay time.Duration
	// Breaker and Health parameterize the per-shard circuit breakers and
	// health trackers.
	Breaker BreakerConfig
	Health  HealthConfig
	// ProbeInterval, when positive, runs a background prober that feeds
	// each shard's health tracker even when no traffic flows — a Down
	// shard recovers via probes, not via sacrificial user requests.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe (default 500ms).
	ProbeTimeout time.Duration
	// Seed seeds the jitter source (0 means 1).
	Seed int64
	// Registry, when set, receives router.* metrics.
	Registry *telemetry.Registry
	// Recorder, when set, receives flight events for health and breaker
	// transitions, fallbacks, and stale serves.
	Recorder *telemetry.FlightRecorder
	// Process, when set, mirrors shard state into the process-level
	// health registry: each Down shard is a degraded reason, and an
	// all-shards-down router fails its readiness check.
	Process *telemetry.Health
	// Sleep is the backoff sleep (default: real timer honoring ctx);
	// tests and the chaos soak inject a virtual clock.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.MaxRetries <= 0 {
		c.MaxRetries = 2
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 2 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 100 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	return c
}

// shardState is one shard's routing state.
type shardState struct {
	id      int
	span    serve.KeyRange
	primary Backend
	replica Backend
	breaker *Breaker
	health  *HealthTracker
}

// Router is the scatter-gather front tier. All methods are safe for
// concurrent use.
type Router struct {
	cfg    Config
	smap   *ShardMap
	shards []*shardState

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mRequests         *telemetry.Counter
	mErrors           *telemetry.Counter
	mUnavailable      *telemetry.Counter
	mRetries          *telemetry.Counter
	mHedges           *telemetry.Counter
	mHedgeWins        *telemetry.Counter
	mFallbackReplica  *telemetry.Counter
	mFallbackTakeover *telemetry.Counter
	mFallbackStale    *telemetry.Counter
	mDegraded         *telemetry.Counter
	mBreakerOpens     *telemetry.Counter
	mLatency          *telemetry.Histogram
}

// New builds and starts a router.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("router: no shards configured")
	}
	spans := cfg.Spans
	if spans == nil {
		spans = UniformSpans(len(cfg.Shards))
	}
	if len(spans) != len(cfg.Shards) {
		return nil, fmt.Errorf("router: %d spans for %d shards", len(spans), len(cfg.Shards))
	}
	smap, err := NewShardMap(spans)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:  cfg,
		smap: smap,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		stop: make(chan struct{}),
	}
	if reg := cfg.Registry; reg != nil {
		r.mRequests = reg.Counter("router.requests")
		r.mErrors = reg.Counter("router.errors")
		r.mUnavailable = reg.Counter("router.unavailable")
		r.mRetries = reg.Counter("router.retries")
		r.mHedges = reg.Counter("router.hedges")
		r.mHedgeWins = reg.Counter("router.hedge_wins")
		r.mFallbackReplica = reg.Counter("router.fallback.replica")
		r.mFallbackTakeover = reg.Counter("router.fallback.takeover")
		r.mFallbackStale = reg.Counter("router.fallback.stale")
		r.mDegraded = reg.Counter("router.degraded")
		r.mBreakerOpens = reg.Counter("router.breaker.opens")
		r.mLatency = reg.Histogram("router.latency_ns")
	}
	for i, sc := range cfg.Shards {
		if sc.Primary == nil {
			return nil, fmt.Errorf("router: shard %d has no primary", i)
		}
		s := &shardState{
			id:      i,
			span:    spans[i],
			primary: sc.Primary,
			replica: sc.Replica,
			breaker: NewBreaker(cfg.Breaker),
			health:  NewHealthTracker(cfg.Health),
		}
		id := i
		s.breaker.OnTransition(func(from, to BreakerState) {
			if to == BreakerOpen {
				inc(r.mBreakerOpens)
			}
			r.cfg.Recorder.Record(telemetry.FlightEvent{
				Kind:   "breaker",
				Value:  uint64(id),
				Detail: fmt.Sprintf("shard %d breaker %s->%s", id, from, to),
			})
		})
		s.health.OnTransition(func(from, to HealthState) {
			r.cfg.Recorder.Record(telemetry.FlightEvent{
				Kind:   "shard_health",
				Value:  uint64(id),
				Detail: fmt.Sprintf("shard %d %s->%s", id, from, to),
			})
			reason := fmt.Sprintf("router.shard%d", id)
			switch to {
			case Healthy:
				r.cfg.Process.Clear(reason)
			default:
				r.cfg.Process.Degrade(reason, to.String())
			}
		})
		if reg := cfg.Registry; reg != nil {
			reg.RegisterFunc(fmt.Sprintf("router.shard.%d.health", i), func() float64 {
				return float64(s.health.State())
			})
		}
		r.shards = append(r.shards, s)
	}
	if cfg.Process != nil {
		cfg.Process.AddCheck("router.shards", func() error {
			for _, s := range r.shards {
				if s.health.State() != Down {
					return nil
				}
			}
			return fmt.Errorf("all %d shards down", len(r.shards))
		})
	}
	if cfg.ProbeInterval > 0 {
		r.wg.Add(1)
		go r.probeLoop()
	}
	return r, nil
}

// Close stops the background prober.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

func (r *Router) probeLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			for _, s := range r.shards {
				r.probeShard(context.Background(), s)
			}
		}
	}
}

// probeShard runs one health probe and feeds both trackers. The probe is
// the canonical half-open traffic: when the breaker's own admission gate
// lets it through (always while closed, once per quiet period while
// open), its outcome counts — so a recovered shard re-closes its breaker
// on the probe cadence instead of waiting for a live query to risk it.
func (r *Router) probeShard(ctx context.Context, s *shardState) {
	pctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
	err := s.primary.Probe(pctx)
	cancel()
	observe(s.health, err)
	if s.breaker.Allow() {
		if err == nil {
			s.breaker.OnSuccess()
		} else {
			s.breaker.OnFailure()
		}
	}
}

func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Probe runs one synchronous probe round (the chaos soak drives health
// deterministically instead of waiting on the background ticker).
func (r *Router) Probe(ctx context.Context) {
	for _, s := range r.shards {
		r.probeShard(ctx, s)
	}
}

// Map returns the routing table.
func (r *Router) Map() *ShardMap { return r.smap }

// ShardInfo is one shard's routing state for /v1/shards.
type ShardInfo struct {
	ID      int            `json:"id"`
	Span    serve.KeyRange `json:"span"`
	Primary string         `json:"primary"`
	Replica string         `json:"replica,omitempty"`
	Health  string         `json:"health"`
	Breaker string         `json:"breaker"`
}

// Shards reports every shard's current routing state.
func (r *Router) Shards() []ShardInfo {
	out := make([]ShardInfo, len(r.shards))
	for i, s := range r.shards {
		out[i] = ShardInfo{
			ID:      s.id,
			Span:    s.span,
			Primary: s.primary.Name(),
			Health:  s.health.State().String(),
			Breaker: s.breaker.State().String(),
		}
		if s.replica != nil {
			out[i].Replica = s.replica.Name()
		}
	}
	return out
}

// Envelope is the provenance every routed answer carries: what was asked,
// what was served, and whether the two differ. Degraded is true exactly
// when the served version is not the requested (or resolved-latest)
// version — a served-by-replica answer at the right version is a
// failover, not a degradation.
type Envelope struct {
	RequestedStep uint64   `json:"requested_version"`
	ServedStep    uint64   `json:"served_version"`
	Degraded      bool     `json:"degraded"`
	Reasons       []string `json:"degraded_reason,omitempty"`
	ServedBy      []string `json:"served_by"`
}

// PointAnswer, RegionAnswer, and AggAnswer are routed query results.
type PointAnswer struct {
	Envelope
	Result serve.PointResult
}

type RegionAnswer struct {
	Envelope
	Hits []serve.LeafHit
}

type AggAnswer struct {
	Envelope
	Result serve.AggResult
}

// attempt is one backend call at one explicit version.
type attempt func(ctx context.Context, be Backend, version uint64) (any, error)

func (r *Router) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if r.cfg.AttemptTimeout > 0 {
		return context.WithTimeout(ctx, r.cfg.AttemptTimeout)
	}
	return context.WithCancel(ctx)
}

// backoff returns the wait before retry `attempt` (0-based): exponential
// with a cap, equal-jittered from the seeded source.
func (r *Router) backoff(attempt int) time.Duration {
	d := r.cfg.BaseBackoff
	for i := 0; i < attempt && d < r.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d)/2 + 1))
	r.mu.Unlock()
	return d/2 + j
}

// tryBackend runs call against be with bounded retries and backoff. When
// gate is non-nil the call is admission-checked against gate's breaker
// and its outcome feeds gate's breaker and health tracker (the primary
// path); replicas run ungated.
func (r *Router) tryBackend(ctx context.Context, gate *shardState, be Backend, version uint64, call attempt) (any, error) {
	var lastErr error
	for att := 0; ; att++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if gate != nil && !gate.breaker.Allow() {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, fmt.Errorf("%w: shard %d breaker open", ErrBackendDown, gate.id)
		}
		actx, cancel := r.attemptCtx(ctx)
		val, err := call(actx, be, version)
		cancel()
		// A call cut short because the parent context died (client gone,
		// hedge winner canceled the race) says nothing about the backend;
		// record no health or breaker signal for it.
		if gate != nil && ctx.Err() == nil {
			observe(gate.health, err)
			switch {
			case err == nil:
				gate.breaker.OnSuccess()
			case errors.Is(err, ErrBackendDown) || errors.Is(err, context.DeadlineExceeded):
				gate.breaker.OnFailure()
			}
		}
		if err == nil {
			return val, nil
		}
		lastErr = err
		// The parent context dying mid-attempt surfaces as the attempt's
		// deadline error; don't burn retries on a dead request.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !retryable(err) || att >= r.cfg.MaxRetries {
			return nil, err
		}
		inc(r.mRetries)
		if serr := r.cfg.Sleep(ctx, r.backoff(att)); serr != nil {
			return nil, serr
		}
	}
}

// mergeMiss combines two errors, preferring to keep version-miss
// information: if either is a NoSuchVersionError the result is one whose
// availability is the union.
func mergeMiss(a, b error) error {
	av, aMiss := availableVersions(a)
	bv, bMiss := availableVersions(b)
	switch {
	case aMiss && bMiss:
		set := map[uint64]bool{}
		for _, v := range av {
			set[v] = true
		}
		for _, v := range bv {
			set[v] = true
		}
		return &serve.NoSuchVersionError{Available: sortedKeys(set)}
	case aMiss:
		return a
	case bMiss:
		return b
	case a != nil:
		return a
	default:
		return b
	}
}

func sortedKeys(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// primaryWithHedge runs the primary call, optionally racing a hedged read
// against the shard's replica when the primary is slow (or immediately
// when the shard is Degraded). The loser is canceled.
func (r *Router) primaryWithHedge(ctx context.Context, s *shardState, version uint64, call attempt) (any, string, error) {
	if r.cfg.HedgeDelay <= 0 || s.replica == nil {
		val, err := r.tryBackend(ctx, s, s.primary, version, call)
		return val, "primary", err
	}
	delay := r.cfg.HedgeDelay
	if s.health.State() == Degraded {
		delay = 0
	}
	type res struct {
		val any
		err error
		src string
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan res, 2)
	go func() {
		v, e := r.tryBackend(pctx, s, s.primary, version, call)
		ch <- res{v, e, "primary"}
	}()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	timerC := timer.C
	var primErr, hedgeErr error
	hedged := false
	remaining := 1
	for remaining > 0 {
		select {
		case rr := <-ch:
			remaining--
			if rr.err == nil {
				cancel()
				if rr.src != "primary" {
					inc(r.mHedgeWins)
				}
				return rr.val, rr.src, nil
			}
			if rr.src == "primary" {
				primErr = rr.err
				if !hedged {
					// Primary failed outright before the hedge fired; the
					// fallback chain (replica, peers) takes over from here.
					return nil, "", primErr
				}
			} else {
				hedgeErr = rr.err
			}
		case <-timerC:
			timerC = nil
			hedged = true
			remaining++
			inc(r.mHedges)
			go func() {
				v, e := r.tryBackend(pctx, nil, s.replica, version, call)
				ch <- res{v, e, "replica"}
			}()
		}
	}
	return nil, "", mergeMiss(primErr, hedgeErr)
}

// servePart serves one shard's portion of a query at an exact version,
// walking the fallback chain: primary (retries + hedging) -> recovery
// replica -> healthy peer takeover (every arena holds the full image, so
// a peer filtered by this shard's span answers identically). When every
// source is up but none holds the version, the returned error is a
// NoSuchVersionError whose availability is the union across sources, so
// the caller can retarget to a stale version. src reports where the
// answer came from: "primary", "replica", or "peer:<n>".
func (r *Router) servePart(ctx context.Context, s *shardState, version uint64, call attempt) (val any, src string, err error) {
	miss := map[uint64]bool{}
	anyMiss := false
	var lastErr error
	note := func(err error) {
		if av, ok := availableVersions(err); ok {
			anyMiss = true
			for _, v := range av {
				miss[v] = true
			}
			return
		}
		lastErr = err
	}

	if s.health.State() != Down {
		val, src, err = r.primaryWithHedge(ctx, s, version, call)
		if err == nil {
			return val, src, nil
		}
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
		note(err)
	}
	if s.replica != nil {
		val, rerr := r.tryBackend(ctx, nil, s.replica, version, call)
		if rerr == nil {
			inc(r.mFallbackReplica)
			r.cfg.Recorder.Record(telemetry.FlightEvent{
				Kind:   "fallback",
				Value:  uint64(s.id),
				Detail: fmt.Sprintf("shard %d served by replica", s.id),
			})
			return val, "replica", nil
		}
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
		note(rerr)
	}
	for _, o := range r.shards {
		if o == s || o.health.State() == Down {
			continue
		}
		val, oerr := r.tryBackend(ctx, o, o.primary, version, call)
		if oerr == nil {
			inc(r.mFallbackTakeover)
			r.cfg.Recorder.Record(telemetry.FlightEvent{
				Kind:   "fallback",
				Value:  uint64(s.id),
				Detail: fmt.Sprintf("shard %d span served by peer %d", s.id, o.id),
			})
			return val, fmt.Sprintf("peer:%d", o.id), nil
		}
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
		note(oerr)
	}
	if anyMiss {
		return nil, "", &serve.NoSuchVersionError{Available: sortedKeys(miss)}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no source configured")
	}
	return nil, "", fmt.Errorf("%w: shard %d: %v", ErrUnavailable, s.id, lastErr)
}

// resolveLatest picks the newest committed step any reachable source
// advertises. Healthy and degraded primaries are consulted first;
// replicas only when no primary answers.
func (r *Router) resolveLatest(ctx context.Context) (uint64, error) {
	best, found := uint64(0), false
	try := func(be Backend) {
		vctx, cancel := r.attemptCtx(ctx)
		defer cancel()
		vs, err := be.Versions(vctx)
		if err != nil {
			return
		}
		for _, v := range vs {
			if !found || v > best {
				best, found = v, true
			}
		}
	}
	for _, s := range r.shards {
		if s.health.State() != Down {
			try(s.primary)
		}
	}
	if !found {
		for _, s := range r.shards {
			try(s.primary)
			if s.replica != nil {
				try(s.replica)
			}
		}
	}
	if !found {
		return 0, fmt.Errorf("%w: no shard reports a committed version", ErrUnavailable)
	}
	return best, nil
}

// maxScatterRounds bounds version retargeting; each round's target is
// strictly older than the last, so convergence is also value-bounded.
const maxScatterRounds = 4

// scatter serves ids' parts at one consistent version: requested (or
// resolved latest), degrading to the newest version every missing part
// can serve. All parts of the returned answer were served at exactly
// env.ServedStep — a merged answer never mixes versions.
func (r *Router) scatter(ctx context.Context, requested uint64, ids []int, mk func(s *shardState) attempt) ([]any, Envelope, error) {
	env := Envelope{RequestedStep: requested}
	target := requested
	if requested == Latest {
		t, err := r.resolveLatest(ctx)
		if err != nil {
			return nil, env, err
		}
		target = t
		env.RequestedStep = t
	}
	for round := 0; round < maxScatterRounds; round++ {
		type partOut struct {
			val any
			src string
			err error
		}
		outs := make([]partOut, len(ids))
		var wg sync.WaitGroup
		for i, id := range ids {
			wg.Add(1)
			go func(i, id int) {
				defer wg.Done()
				v, src, err := r.servePart(ctx, r.shards[id], target, mk(r.shards[id]))
				outs[i] = partOut{v, src, err}
			}(i, id)
		}
		wg.Wait()

		votes := map[uint64]int{}
		nMiss := 0
		var hardErr error
		for _, o := range outs {
			switch {
			case o.err == nil:
			default:
				if av, ok := availableVersions(o.err); ok {
					nMiss++
					for _, v := range av {
						if v < target {
							votes[v]++
						}
					}
				} else {
					hardErr = o.err
				}
			}
		}
		if hardErr != nil {
			if !errors.Is(hardErr, ErrUnavailable) && ctx.Err() == nil {
				hardErr = fmt.Errorf("%w: %v", ErrUnavailable, hardErr)
			}
			return nil, env, hardErr
		}
		if nMiss == 0 {
			env.ServedStep = target
			if target != env.RequestedStep {
				env.Degraded = true
				env.Reasons = append(env.Reasons, "stale_version")
			}
			vals := make([]any, len(outs))
			for i, id := range ids {
				vals[i] = outs[i].val
				label := fmt.Sprintf("shard%d", id)
				if outs[i].src != "primary" {
					label += "/" + outs[i].src
				}
				env.ServedBy = append(env.ServedBy, label)
			}
			return vals, env, nil
		}
		// Retarget to the newest strictly-older version every missing part
		// advertised; parts that served this round re-serve at the new
		// target next round so the merge stays single-version.
		best, ok := uint64(0), false
		for v, n := range votes {
			if n == nMiss && (!ok || v > best) {
				best, ok = v, true
			}
		}
		if !ok {
			return nil, env, fmt.Errorf("%w: no committed version is available across all shard spans (wanted %d)", ErrUnavailable, target)
		}
		target = best
	}
	return nil, env, fmt.Errorf("%w: version retargeting did not converge", ErrUnavailable)
}

// finish records per-request metrics and degradation bookkeeping.
func (r *Router) finish(t0 time.Time, env *Envelope, err error) {
	if r.mLatency != nil {
		r.mLatency.Observe(uint64(time.Since(t0)))
	}
	if err != nil {
		inc(r.mErrors)
		if errors.Is(err, ErrUnavailable) {
			inc(r.mUnavailable)
		}
		return
	}
	if env.Degraded {
		inc(r.mDegraded)
		inc(r.mFallbackStale)
		r.cfg.Recorder.Record(telemetry.FlightEvent{
			Kind:   "stale",
			Step:   env.ServedStep,
			Detail: fmt.Sprintf("served step %d for requested %d", env.ServedStep, env.RequestedStep),
		})
	}
}

// Point answers a point lookup, routed to the owner of the point's
// MaxLevel cell key.
func (r *Router) Point(ctx context.Context, version uint64, x, y, z float64) (PointAnswer, error) {
	inc(r.mRequests)
	t0 := time.Now()
	if !(x >= 0 && x < 1 && y >= 0 && y < 1 && z >= 0 && z < 1) {
		inc(r.mErrors)
		return PointAnswer{}, serve.ErrOutOfDomain
	}
	const n = 1 << morton.MaxLevel
	cell := morton.Encode(uint32(x*n), uint32(y*n), uint32(z*n), morton.MaxLevel)
	owner := r.smap.OwnerOf(cell.Key())
	mk := func(*shardState) attempt {
		return func(actx context.Context, be Backend, v uint64) (any, error) {
			return be.Point(actx, v, x, y, z)
		}
	}
	vals, env, err := r.scatter(ctx, version, []int{owner}, mk)
	r.finish(t0, &env, err)
	if err != nil {
		return PointAnswer{}, err
	}
	return PointAnswer{Envelope: env, Result: vals[0].(serve.PointResult)}, nil
}

// Region answers a region query, scattered across every shard that can
// own an intersecting leaf and merged in Z-order (spans are ascending
// and disjoint, so concatenation in shard order is the sorted merge).
func (r *Router) Region(ctx context.Context, version uint64, box serve.Box) (RegionAnswer, error) {
	inc(r.mRequests)
	t0 := time.Now()
	ids, err := r.smap.CandidatesForBox(box)
	if err != nil {
		inc(r.mErrors)
		return RegionAnswer{}, err
	}
	mk := func(s *shardState) attempt {
		span := s.span
		return func(actx context.Context, be Backend, v uint64) (any, error) {
			res, err := be.Region(actx, v, box, span)
			if err != nil {
				return nil, err
			}
			if res.Step != v {
				return nil, fmt.Errorf("%w: backend %s served step %d for explicit step %d", ErrBackendDown, be.Name(), res.Step, v)
			}
			return res, nil
		}
	}
	vals, env, err := r.scatter(ctx, version, ids, mk)
	r.finish(t0, &env, err)
	if err != nil {
		return RegionAnswer{}, err
	}
	ans := RegionAnswer{Envelope: env}
	for _, v := range vals {
		ans.Hits = append(ans.Hits, v.(RegionResult).Hits...)
	}
	return ans, nil
}

// Aggregate answers a field aggregation: disjoint per-span partial
// aggregates merge exactly (counts and sums add, extrema combine).
func (r *Router) Aggregate(ctx context.Context, version uint64, field int, box serve.Box) (AggAnswer, error) {
	inc(r.mRequests)
	t0 := time.Now()
	ids, err := r.smap.CandidatesForBox(box)
	if err != nil {
		inc(r.mErrors)
		return AggAnswer{}, err
	}
	mk := func(s *shardState) attempt {
		span := s.span
		return func(actx context.Context, be Backend, v uint64) (any, error) {
			res, err := be.Aggregate(actx, v, field, box, span)
			if err != nil {
				return nil, err
			}
			if res.Step != v {
				return nil, fmt.Errorf("%w: backend %s served step %d for explicit step %d", ErrBackendDown, be.Name(), res.Step, v)
			}
			return res, nil
		}
	}
	vals, env, err := r.scatter(ctx, version, ids, mk)
	r.finish(t0, &env, err)
	if err != nil {
		return AggAnswer{}, err
	}
	ans := AggAnswer{Envelope: env}
	merged := serve.AggResult{Step: env.ServedStep}
	first := true
	for _, v := range vals {
		part := v.(serve.AggResult)
		if part.Count == 0 {
			continue
		}
		merged.Count += part.Count
		merged.Sum += part.Sum
		merged.VolSum += part.VolSum
		if first || part.Min < merged.Min {
			merged.Min = part.Min
		}
		if first || part.Max > merged.Max {
			merged.Max = part.Max
		}
		first = false
	}
	ans.Result = merged
	return ans, nil
}

// Versions reports the union of committed steps across every reachable
// source, ascending.
func (r *Router) Versions(ctx context.Context) ([]uint64, error) {
	set := map[uint64]bool{}
	reached := false
	collect := func(be Backend) {
		vctx, cancel := r.attemptCtx(ctx)
		defer cancel()
		vs, err := be.Versions(vctx)
		if err != nil {
			return
		}
		reached = true
		for _, v := range vs {
			set[v] = true
		}
	}
	for _, s := range r.shards {
		collect(s.primary)
		if s.replica != nil {
			collect(s.replica)
		}
	}
	if !reached {
		return nil, fmt.Errorf("%w: no shard reachable", ErrUnavailable)
	}
	return sortedKeys(set), nil
}
