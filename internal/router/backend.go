package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"pmoctree/internal/core"
	"pmoctree/internal/morton"
	"pmoctree/internal/serve"
)

// Latest is the version sentinel for "newest published step".
const Latest = math.MaxUint64

// ErrBackendDown marks hard transport-level failures: connection refused,
// reset, unexpected 5xx, a closed catalog or scheduler. Down errors are
// retryable and feed the breaker and health tracker as hard failures.
var ErrBackendDown = fmt.Errorf("router: backend down")

// RegionResult is a region query's hits plus the step that served them —
// the router needs the served version to keep scatter merges consistent.
type RegionResult struct {
	Step uint64
	Hits []serve.LeafHit
}

// Backend is one queryable shard endpoint: a local Catalog+Scheduler in
// tests and in-process deployments, an HTTP shard server otherwise.
// version is an exact committed step or Latest. All methods honor ctx.
type Backend interface {
	Name() string
	Point(ctx context.Context, version uint64, x, y, z float64) (serve.PointResult, error)
	Region(ctx context.Context, version uint64, box serve.Box, kr serve.KeyRange) (RegionResult, error)
	Aggregate(ctx context.Context, version uint64, field int, box serve.Box, kr serve.KeyRange) (serve.AggResult, error)
	Versions(ctx context.Context) ([]uint64, error)
	Probe(ctx context.Context) error
}

// retryable reports whether the error is transient: backpressure, a dead
// backend, or an attempt timeout. Version misses and bad requests are
// not transient — retrying cannot change the answer.
func retryable(err error) bool {
	var sat *serve.SaturatedError
	return errors.As(err, &sat) ||
		errors.Is(err, ErrBackendDown) ||
		errors.Is(err, context.DeadlineExceeded)
}

// availableVersions extracts the committed steps a backend advertised in
// a version-miss error, so the fallback path can retarget.
func availableVersions(err error) ([]uint64, bool) {
	var nosuch *serve.NoSuchVersionError
	if errors.As(err, &nosuch) {
		return nosuch.Available, true
	}
	return nil, false
}

// observe classifies one call outcome into the health tracker's three
// signals. A version miss or a bad request is a *successful* answer for
// health purposes: the shard is alive and responsive, it just does not
// hold what was asked.
func observe(t *HealthTracker, err error) {
	var sat *serve.SaturatedError
	switch {
	case err == nil:
		t.ObserveSuccess()
	case errors.As(err, &sat):
		t.ObserveSaturated()
	case errors.Is(err, ErrBackendDown), errors.Is(err, context.DeadlineExceeded):
		t.ObserveFailure()
	default:
		t.ObserveSuccess()
	}
}

// LocalBackend serves a shard from an in-process Catalog and Scheduler.
type LocalBackend struct {
	name  string
	cat   *serve.Catalog
	sched *serve.Scheduler
}

// NewLocalBackend wraps cat and sched as a Backend.
func NewLocalBackend(name string, cat *serve.Catalog, sched *serve.Scheduler) *LocalBackend {
	return &LocalBackend{name: name, cat: cat, sched: sched}
}

func (b *LocalBackend) Name() string { return b.name }

// Catalog exposes the backing catalog (chaos harnesses publish through it).
func (b *LocalBackend) Catalog() *serve.Catalog { return b.cat }

func (b *LocalBackend) acquire(version uint64) (*serve.Snapshot, error) {
	if version == Latest {
		return b.cat.AcquireLatest()
	}
	return b.cat.Acquire(version)
}

// wrapLocal maps in-process lifecycle errors onto the transport taxonomy:
// a closed catalog or scheduler is what a dead shard process looks like.
func wrapLocal(err error) error {
	if errors.Is(err, serve.ErrCatalogClosed) || errors.Is(err, serve.ErrSchedulerClosed) {
		return fmt.Errorf("%w: %v", ErrBackendDown, err)
	}
	return err
}

func (b *LocalBackend) Point(ctx context.Context, version uint64, x, y, z float64) (serve.PointResult, error) {
	s, err := b.acquire(version)
	if err != nil {
		return serve.PointResult{}, wrapLocal(err)
	}
	defer s.Close()
	val, err := b.sched.DoCtx(ctx, nil, "point", func() (any, error) {
		return s.Point(x, y, z)
	})
	if err != nil {
		return serve.PointResult{}, wrapLocal(err)
	}
	return val.(serve.PointResult), nil
}

func (b *LocalBackend) Region(ctx context.Context, version uint64, box serve.Box, kr serve.KeyRange) (RegionResult, error) {
	s, err := b.acquire(version)
	if err != nil {
		return RegionResult{}, wrapLocal(err)
	}
	defer s.Close()
	val, err := b.sched.DoCtx(ctx, nil, "region", func() (any, error) {
		hits, err := s.RegionIn(box, kr)
		if err != nil {
			return nil, err
		}
		return RegionResult{Step: s.Step(), Hits: hits}, nil
	})
	if err != nil {
		return RegionResult{}, wrapLocal(err)
	}
	return val.(RegionResult), nil
}

func (b *LocalBackend) Aggregate(ctx context.Context, version uint64, field int, box serve.Box, kr serve.KeyRange) (serve.AggResult, error) {
	s, err := b.acquire(version)
	if err != nil {
		return serve.AggResult{}, wrapLocal(err)
	}
	defer s.Close()
	val, err := b.sched.DoCtx(ctx, nil, "agg", func() (any, error) {
		return s.AggregateIn(field, box, kr)
	})
	if err != nil {
		return serve.AggResult{}, wrapLocal(err)
	}
	return val.(serve.AggResult), nil
}

func (b *LocalBackend) Versions(ctx context.Context) ([]uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	steps := b.cat.Steps()
	if len(steps) == 0 {
		// Distinguish "alive but empty" from down: an empty catalog still
		// answers, with no versions.
		return nil, nil
	}
	return steps, nil
}

func (b *LocalBackend) Probe(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s, err := b.cat.AcquireLatest()
	if err != nil {
		var nosuch *serve.NoSuchVersionError
		if errors.As(err, &nosuch) {
			return nil // alive, just empty
		}
		return wrapLocal(err)
	}
	s.Close()
	return nil
}

// HTTPBackend serves a shard over the pmserve JSON surface, translating
// HTTP statuses back into the typed error taxonomy: 503 + retry_after_ms
// -> serve.SaturatedError, 404 + available -> serve.NoSuchVersionError,
// 504 -> context.DeadlineExceeded, transport errors and other 5xx ->
// ErrBackendDown.
type HTTPBackend struct {
	name   string
	base   string // "http://host:port"
	client *http.Client
}

// NewHTTPBackend builds a backend over base. client may be nil (a default
// client with no global timeout is used; per-call ctx bounds every
// request).
func NewHTTPBackend(name, base string, client *http.Client) *HTTPBackend {
	if client == nil {
		client = &http.Client{}
	}
	return &HTTPBackend{name: name, base: base, client: client}
}

func (b *HTTPBackend) Name() string { return b.name }

// wire mirrors of the serve HTTP JSON bodies (kept local so the router
// does not reach into serve's unexported types).
type wirePoint struct {
	Version uint64                  `json:"version"`
	Code    string                  `json:"code"`
	Data    [core.DataWords]float64 `json:"data"`
}

type wireRegion struct {
	Version uint64 `json:"version"`
	Leaves  []struct {
		Code string                  `json:"code"`
		Data [core.DataWords]float64 `json:"data"`
	} `json:"leaves"`
}

type wireAgg struct {
	Version uint64  `json:"version"`
	Count   int     `json:"count"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	VolSum  float64 `json:"vol_sum"`
}

type wireVersions struct {
	Versions []uint64 `json:"versions"`
}

type wireErr struct {
	Error      string   `json:"error"`
	RetryAfter int64    `json:"retry_after_ms"`
	Available  []uint64 `json:"available"`
}

// get issues one request and decodes the body into out, mapping error
// statuses onto the typed taxonomy.
func (b *HTTPBackend) get(ctx context.Context, path string, q url.Values, out any) error {
	u := b.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		// The caller's own context expiring is not the backend's fault;
		// everything else transport-level is.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("%w: %v", ErrBackendDown, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("%w: reading response: %v", ErrBackendDown, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return json.Unmarshal(body, out)
	case http.StatusServiceUnavailable:
		var we wireErr
		_ = json.Unmarshal(body, &we)
		return &serve.SaturatedError{RetryAfter: time.Duration(we.RetryAfter) * time.Millisecond}
	case http.StatusNotFound:
		var we wireErr
		if json.Unmarshal(body, &we) == nil && (len(we.Available) > 0 || we.Error != "") {
			return &serve.NoSuchVersionError{Available: we.Available}
		}
		return fmt.Errorf("%w: %s returned 404", ErrBackendDown, path)
	case http.StatusGatewayTimeout:
		return context.DeadlineExceeded
	default:
		var we wireErr
		if json.Unmarshal(body, &we) == nil && we.Error != "" {
			if resp.StatusCode < 500 {
				return fmt.Errorf("router: backend %s: %s", b.name, we.Error)
			}
			return fmt.Errorf("%w: %s", ErrBackendDown, we.Error)
		}
		return fmt.Errorf("%w: status %d", ErrBackendDown, resp.StatusCode)
	}
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func versionParam(q url.Values, version uint64) {
	if version != Latest {
		q.Set("version", strconv.FormatUint(version, 10))
	}
}

func keyRangeParam(q url.Values, kr serve.KeyRange) {
	if kr.IsFull() {
		return
	}
	q.Set("klo", strconv.FormatUint(kr.Lo, 10))
	q.Set("khi", strconv.FormatUint(kr.Hi, 10))
}

func boxParam(q url.Values, box serve.Box) {
	names := [6]string{"x0", "y0", "z0", "x1", "y1", "z1"}
	for d := 0; d < 3; d++ {
		q.Set(names[d], fmtFloat(box.Min[d]))
		q.Set(names[d+3], fmtFloat(box.Max[d]))
	}
}

func (b *HTTPBackend) Point(ctx context.Context, version uint64, x, y, z float64) (serve.PointResult, error) {
	q := url.Values{}
	q.Set("x", fmtFloat(x))
	q.Set("y", fmtFloat(y))
	q.Set("z", fmtFloat(z))
	versionParam(q, version)
	var wp wirePoint
	if err := b.get(ctx, "/v1/point", q, &wp); err != nil {
		return serve.PointResult{}, err
	}
	code, err := morton.ParseCode(wp.Code)
	if err != nil {
		return serve.PointResult{}, fmt.Errorf("router: backend %s: %v", b.name, err)
	}
	return serve.PointResult{Step: wp.Version, Code: code, Data: wp.Data, Depth: code.Level()}, nil
}

func (b *HTTPBackend) Region(ctx context.Context, version uint64, box serve.Box, kr serve.KeyRange) (RegionResult, error) {
	q := url.Values{}
	boxParam(q, box)
	versionParam(q, version)
	keyRangeParam(q, kr)
	var wr wireRegion
	if err := b.get(ctx, "/v1/region", q, &wr); err != nil {
		return RegionResult{}, err
	}
	out := RegionResult{Step: wr.Version, Hits: make([]serve.LeafHit, 0, len(wr.Leaves))}
	for _, l := range wr.Leaves {
		code, err := morton.ParseCode(l.Code)
		if err != nil {
			return RegionResult{}, fmt.Errorf("router: backend %s: %v", b.name, err)
		}
		out.Hits = append(out.Hits, serve.LeafHit{Code: code, Data: l.Data})
	}
	return out, nil
}

func (b *HTTPBackend) Aggregate(ctx context.Context, version uint64, field int, box serve.Box, kr serve.KeyRange) (serve.AggResult, error) {
	q := url.Values{}
	q.Set("field", strconv.Itoa(field))
	boxParam(q, box)
	versionParam(q, version)
	keyRangeParam(q, kr)
	var wa wireAgg
	if err := b.get(ctx, "/v1/agg", q, &wa); err != nil {
		return serve.AggResult{}, err
	}
	return serve.AggResult{
		Step: wa.Version, Count: wa.Count, Sum: wa.Sum,
		Min: wa.Min, Max: wa.Max, VolSum: wa.VolSum,
	}, nil
}

func (b *HTTPBackend) Versions(ctx context.Context) ([]uint64, error) {
	var wv wireVersions
	if err := b.get(ctx, "/v1/versions", nil, &wv); err != nil {
		return nil, err
	}
	return wv.Versions, nil
}

func (b *HTTPBackend) Probe(ctx context.Context) error {
	_, err := b.Versions(ctx)
	return err
}
