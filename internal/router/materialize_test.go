package router

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"pmoctree/internal/core"
	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/serve"
	"pmoctree/internal/sim"
)

// buildSourceTree runs the deterministic droplet workload and returns the
// committed tree with its NVBM device — the "full arena" a deployment
// would materialize shards from.
func buildSourceTree(t testing.TB, steps int, maxLevel uint8) (*core.Tree, *nvbm.Device) {
	t.Helper()
	d := sim.NewDroplet(sim.DropletConfig{Steps: 16})
	dev := nvbm.New(nvbm.NVBM, 0)
	tree := core.Create(core.Config{NVBMDevice: dev})
	for s := 1; s <= steps; s++ {
		sim.Step(tree, d, s, maxLevel)
		tree.Persist()
	}
	return tree, dev
}

// materializedFixture builds shard i/N's materialized backend from src.
func materializedFixture(t testing.TB, src *core.Tree, i, n int) (*shardFixture, *nvbm.Device, MaterializeStats) {
	t.Helper()
	dev := nvbm.New(nvbm.NVBM, 0)
	span := UniformSpans(n)[i]
	shard, st, err := MaterializeShard(src, span, core.Config{NVBMDevice: dev}, nil)
	if err != nil {
		t.Fatalf("materialize %d/%d: %v", i, n, err)
	}
	cat := serve.NewCatalog(shard, serve.Config{Keep: 2})
	snap, err := cat.Publish()
	if err != nil {
		t.Fatal(err)
	}
	snap.Close()
	sched := serve.NewScheduler(serve.SchedulerConfig{})
	fx := &shardFixture{be: NewLocalBackend(fmt.Sprintf("mat%d", i), cat, sched), cat: cat, sched: sched}
	t.Cleanup(func() {
		sched.Close()
		cat.Close()
	})
	return fx, dev, st
}

// TestMaterializeShardServesCorrectly: a 2-shard router over materialized
// per-shard arenas answers every query exactly like a router over full
// copies, and each shard arena is measurably smaller than the full one.
func TestMaterializeShardServesCorrectly(t *testing.T) {
	src, srcDev := buildSourceTree(t, 3, 6)
	const n = 2

	// Reference: both shards serve the full copy (the -inproc model).
	fullCat := serve.NewCatalog(src, serve.Config{Keep: 2})
	snap, err := fullCat.Publish()
	if err != nil {
		t.Fatal(err)
	}
	snap.Close()
	fullSched := serve.NewScheduler(serve.SchedulerConfig{})
	defer fullSched.Close()
	defer fullCat.Close()
	fullShards := make([]ShardConfig, n)
	for i := range fullShards {
		fullShards[i] = ShardConfig{Primary: NewLocalBackend(fmt.Sprintf("full%d", i), fullCat, fullSched)}
	}
	refRouter, err := New(Config{Shards: fullShards, Seed: 1, Sleep: instantSleep})
	if err != nil {
		t.Fatal(err)
	}
	defer refRouter.Close()

	matShards := make([]ShardConfig, n)
	var devs []*nvbm.Device
	for i := 0; i < n; i++ {
		fx, dev, st := materializedFixture(t, src, i, n)
		matShards[i] = ShardConfig{Primary: fx.be}
		devs = append(devs, dev)
		if st.Kept == 0 || st.Fillers == 0 {
			t.Fatalf("shard %d: kept=%d fillers=%d, want both nonzero", i, st.Kept, st.Fillers)
		}
		t.Logf("shard %d: kept %d leaves, %d fillers, %d nodes, %d device bytes (full: %d)",
			i, st.Kept, st.Fillers, st.Nodes, dev.Size(), srcDev.Size())
	}
	matRouter, err := New(Config{Shards: matShards, Seed: 1, Sleep: instantSleep})
	if err != nil {
		t.Fatal(err)
	}
	defer matRouter.Close()

	ctx := context.Background()

	// Version consistency: the materialized shards advertise exactly the
	// source's committed step.
	wantStep := src.CommittedStep()
	vs, err := matRouter.Versions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0] != wantStep {
		t.Fatalf("materialized versions = %v, want [%d]", vs, wantStep)
	}

	// Point queries across the domain, including both sides of the shard
	// boundary.
	for _, p := range [][3]float64{
		{0.5, 0.5, 0.9}, {0.5, 0.5, 0.6}, {0.1, 0.1, 0.1},
		{0.49, 0.51, 0.5}, {0.51, 0.49, 0.5}, {0.9, 0.9, 0.02},
	} {
		want, err := refRouter.Point(ctx, Latest, p[0], p[1], p[2])
		if err != nil {
			t.Fatal(err)
		}
		got, err := matRouter.Point(ctx, Latest, p[0], p[1], p[2])
		if err != nil {
			t.Fatalf("point %v: %v", p, err)
		}
		if got.Result != want.Result {
			t.Fatalf("point %v: %+v, want %+v", p, got.Result, want.Result)
		}
	}

	// Region and aggregate queries over the shared test boxes.
	for _, box := range testBoxes {
		wantR, err := refRouter.Region(ctx, Latest, box)
		if err != nil {
			t.Fatal(err)
		}
		gotR, err := matRouter.Region(ctx, Latest, box)
		if err != nil {
			t.Fatalf("region %v: %v", box, err)
		}
		if !reflect.DeepEqual(gotR.Hits, wantR.Hits) {
			t.Fatalf("region %v: %d hits, want %d (or hit content differs)", box, len(gotR.Hits), len(wantR.Hits))
		}
		wantA, err := refRouter.Aggregate(ctx, Latest, 0, box)
		if err != nil {
			t.Fatal(err)
		}
		gotA, err := matRouter.Aggregate(ctx, Latest, 0, box)
		if err != nil {
			t.Fatalf("agg %v: %v", box, err)
		}
		if gotA.Result != wantA.Result {
			t.Fatalf("agg %v: %+v, want %+v", box, gotA.Result, wantA.Result)
		}
	}

	// Footprint: each per-shard arena must be strictly smaller than the
	// full arena it was carved from.
	for i, dev := range devs {
		if dev.Size() >= srcDev.Size() {
			t.Fatalf("shard %d device is %d bytes, full arena %d — no footprint win", i, dev.Size(), srcDev.Size())
		}
	}
}

// TestMaterializeShardErrors: a dirty source and a source with no commits
// are refused; the typed state error surfaces.
func TestMaterializeShardErrors(t *testing.T) {
	fresh := core.Create(core.Config{})
	if _, _, err := MaterializeShard(fresh, UniformSpans(2)[0], core.Config{}, nil); err == nil {
		t.Fatal("uncommitted source accepted")
	}
	src, _ := buildSourceTree(t, 1, 4)
	src.UpdateLeaves(func(_ morton.Code, d *[core.DataWords]float64) bool {
		d[0] = 42
		return true
	})
	if _, _, err := MaterializeShard(src, UniformSpans(2)[0], core.Config{}, nil); err == nil {
		t.Fatal("dirty source accepted")
	}
}
