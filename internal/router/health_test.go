package router

import "testing"

// TestHealthTrackerStateMachine drives the per-shard health tracker
// through scripted outcome sequences and checks the resulting state.
// Event legend: 's' = success, 'b' = saturated (busy), 'f' = hard
// failure.
func TestHealthTrackerStateMachine(t *testing.T) {
	cfg := HealthConfig{DownAfter: 3, ReviveAfter: 2, DegradeAfter: 3, ClearAfter: 2}

	cases := []struct {
		name   string
		script string
		want   HealthState
	}{
		{"starts healthy", "", Healthy},
		{"two failures keep it healthy", "ff", Healthy},
		{"three consecutive failures mark it down", "fff", Down},
		{"a success resets the failure streak", "ffsff", Healthy},
		{"one success does not revive", "fffs", Down},
		{"revival needs a success streak", "fffss", Healthy},
		{"failure resets the revival streak", "fffsfss", Healthy},
		{"interrupted revival stays down", "fffsfs", Down},
		{"sustained saturation degrades", "bbb", Degraded},
		{"brief saturation does not degrade", "bbsbb", Healthy},
		{"degraded needs a clean streak to clear", "bbbs", Degraded},
		{"degraded clears after the streak", "bbbss", Healthy},
		{"saturation does not revive a down shard", "fffbbbbbb", Down},
		{"down revives on successes even after saturation", "fffbss", Healthy},
		{"degraded shard that starts failing goes down", "bbbfff", Down},
		{"full cycle down then degraded", "fffssbbb", Degraded},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewHealthTracker(cfg)
			for i, ev := range tc.script {
				switch ev {
				case 's':
					tr.ObserveSuccess()
				case 'b':
					tr.ObserveSaturated()
				case 'f':
					tr.ObserveFailure()
				default:
					t.Fatalf("bad script event %c at %d", ev, i)
				}
			}
			if got := tr.State(); got != tc.want {
				t.Fatalf("after %q: state = %v, want %v", tc.script, got, tc.want)
			}
		})
	}
}

// TestHealthTrackerTransitions: the observer sees every flip exactly
// once, with correct from/to pairs.
func TestHealthTrackerTransitions(t *testing.T) {
	tr := NewHealthTracker(HealthConfig{DownAfter: 2, ReviveAfter: 1, DegradeAfter: 2, ClearAfter: 1})
	type flip struct{ from, to HealthState }
	var got []flip
	tr.OnTransition(func(from, to HealthState) { got = append(got, flip{from, to}) })

	tr.ObserveFailure()
	tr.ObserveFailure() // -> Down
	tr.ObserveSuccess() // -> Healthy
	tr.ObserveSaturated()
	tr.ObserveSaturated() // -> Degraded
	tr.ObserveSuccess()   // -> Healthy

	want := []flip{{Healthy, Down}, {Down, Healthy}, {Healthy, Degraded}, {Degraded, Healthy}}
	if len(got) != len(want) {
		t.Fatalf("saw %d transitions %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, got[i], want[i])
		}
	}
}
