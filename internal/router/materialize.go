package router

import (
	"fmt"

	"pmoctree/internal/bulk"
	"pmoctree/internal/core"
	"pmoctree/internal/morton"
	"pmoctree/internal/parallel"
	"pmoctree/internal/serve"
)

// MaterializeStats reports what a shard materialization kept and filled.
type MaterializeStats struct {
	Kept    int // source leaves whose cells intersect the span
	Fillers int // zero-payload cover octants tiling the rest of the domain
	Nodes   int // total octants in the constructed shard tree
}

// MaterializeShard builds a per-shard tree holding only one Z-order key
// span of src's data: every source leaf whose cell range intersects the
// span's cells (this includes a leaf straddling each span boundary, which
// keeps the zero-payload fillers' keys strictly outside the span — a
// router's span-filtered scatter can never surface a filler), with the
// rest of the domain tiled by the minimal zero-payload complement cover
// (internal/bulk). The result is a valid complete octree constructed in
// one bulk allocation and committed at src's committed step, so per-shard
// catalogs stay version-consistent with the full arena; its device
// footprint scales with the span's share of the data, not the whole mesh.
//
// src must be at a step boundary with at least one committed version (a
// freshly restored serving tree is). cfg supplies the destination devices;
// cfg.NVBMDevice receives the shard arena. Bulk validation failures return
// the typed bulk errors (*bulk.OverlapError, ...) unwrapped.
func MaterializeShard(src *core.Tree, span serve.KeyRange, cfg core.Config, pool *parallel.Pool) (*core.Tree, MaterializeStats, error) {
	var st MaterializeStats
	if src.CommittedStep() < 1 {
		return nil, st, fmt.Errorf("router: materialize source has no committed steps")
	}
	if src.Root() != src.CommittedRoot() {
		return nil, st, fmt.Errorf("router: materialize source has uncommitted mutations")
	}
	cellLo := span.Lo >> 6
	cellHi := span.Hi >> 6
	if max := uint64(1)<<(3*morton.MaxLevel) - 1; cellHi > max {
		cellHi = max
	}
	var codes []morton.Code
	var data [][core.DataWords]float64
	src.ForEachLeaf(func(c morton.Code, d [core.DataWords]float64) bool {
		a := c.Key() >> 6
		v := uint64(1) << (3 * (morton.MaxLevel - c.Level()))
		if a+v > cellLo && a <= cellHi {
			codes = append(codes, c)
			data = append(data, d)
		}
		return true
	})
	fillers := bulk.ComplementCover(codes)
	st.Kept, st.Fillers = len(codes), len(fillers)

	all := make([]morton.Code, 0, len(codes)+len(fillers))
	all = append(append(all, codes...), fillers...)
	allData := make([][core.DataWords]float64, len(all))
	copy(allData, data)

	dst := core.Create(cfg)
	if err := dst.AdvanceStepTo(src.CommittedStep()); err != nil {
		return nil, st, err
	}
	// No balance pass: the span's fine leaves legitimately abut coarse
	// fillers, and queries only need a complete octree, not a graded one.
	nn, err := dst.ConstructFromCodes(all, allData, pool, false)
	if err != nil {
		return nil, st, err
	}
	st.Nodes = nn
	dst.Persist()
	return dst, st, nil
}
