package router

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmoctree/internal/core"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/serve"
	"pmoctree/internal/sim"
	"pmoctree/internal/telemetry"
)

const testMaxLevel = 4

// shardFixture is one in-process shard: a deterministic droplet tree with
// its committed versions published into a catalog.
type shardFixture struct {
	be    *LocalBackend
	cat   *serve.Catalog
	sched *serve.Scheduler
}

// buildBackend runs the droplet workload for `steps` commits, publishing
// every commit, keeping the newest `keep` in the catalog. The droplet sim
// is deterministic, so every fixture with the same step count holds
// bit-identical committed versions — the full-copy shard model.
func buildBackend(t testing.TB, name string, steps, keep int) *shardFixture {
	t.Helper()
	// Fixed nominal duration: step s maps to time s/Steps, so every
	// fixture must share the same denominator for step s to be the same
	// physical state regardless of how many steps it commits.
	d := sim.NewDroplet(sim.DropletConfig{Steps: 16})
	tree := core.Create(core.Config{
		NVBMDevice: nvbm.New(nvbm.NVBM, 0),
		DRAMDevice: nvbm.New(nvbm.DRAM, 0),
	})
	tree.SetFeatures(d.Feature(1))
	cat := serve.NewCatalog(tree, serve.Config{Keep: keep})
	for s := 1; s <= steps; s++ {
		sim.Step(tree, d, s, testMaxLevel)
		tree.SetFeatures(d.Feature(s + 1))
		tree.Persist()
		snap, err := cat.Publish()
		if err != nil {
			t.Fatal(err)
		}
		snap.Close()
	}
	sched := serve.NewScheduler(serve.SchedulerConfig{})
	fx := &shardFixture{be: NewLocalBackend(name, cat, sched), cat: cat, sched: sched}
	t.Cleanup(func() {
		sched.Close()
		cat.Close()
	})
	return fx
}

// instantSleep removes real backoff waits from tests.
func instantSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

var testBoxes = []serve.Box{
	{Min: [3]float64{0, 0, 0}, Max: [3]float64{1, 1, 1}},
	{Min: [3]float64{0.2, 0.2, 0.2}, Max: [3]float64{0.4, 0.35, 0.3}},
	{Min: [3]float64{0.45, 0.45, 0.45}, Max: [3]float64{0.55, 0.55, 0.55}},
	{Min: [3]float64{0.7, 0.1, 0.6}, Max: [3]float64{0.9, 0.2, 0.8}},
	{Min: [3]float64{0.01, 0.8, 0.03}, Max: [3]float64{0.12, 0.99, 0.2}},
}

// gatedBackend fails every call with ErrBackendDown while down is set.
type gatedBackend struct {
	Backend
	down atomic.Bool
}

func (g *gatedBackend) gate() error {
	if g.down.Load() {
		return errors.New("gated: process killed")
	}
	return nil
}

func (g *gatedBackend) Point(ctx context.Context, v uint64, x, y, z float64) (serve.PointResult, error) {
	if err := g.gate(); err != nil {
		return serve.PointResult{}, errors.Join(ErrBackendDown, err)
	}
	return g.Backend.Point(ctx, v, x, y, z)
}

func (g *gatedBackend) Region(ctx context.Context, v uint64, box serve.Box, kr serve.KeyRange) (RegionResult, error) {
	if err := g.gate(); err != nil {
		return RegionResult{}, errors.Join(ErrBackendDown, err)
	}
	return g.Backend.Region(ctx, v, box, kr)
}

func (g *gatedBackend) Aggregate(ctx context.Context, v uint64, field int, box serve.Box, kr serve.KeyRange) (serve.AggResult, error) {
	if err := g.gate(); err != nil {
		return serve.AggResult{}, errors.Join(ErrBackendDown, err)
	}
	return g.Backend.Aggregate(ctx, v, field, box, kr)
}

func (g *gatedBackend) Versions(ctx context.Context) ([]uint64, error) {
	if err := g.gate(); err != nil {
		return nil, errors.Join(ErrBackendDown, err)
	}
	return g.Backend.Versions(ctx)
}

func (g *gatedBackend) Probe(ctx context.Context) error {
	if err := g.gate(); err != nil {
		return errors.Join(ErrBackendDown, err)
	}
	return g.Backend.Probe(ctx)
}

// flakyBackend fails the first n calls, then behaves.
type flakyBackend struct {
	Backend
	mu   sync.Mutex
	left int
}

func (f *flakyBackend) trip() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.left > 0 {
		f.left--
		return true
	}
	return false
}

func (f *flakyBackend) Point(ctx context.Context, v uint64, x, y, z float64) (serve.PointResult, error) {
	if f.trip() {
		return serve.PointResult{}, ErrBackendDown
	}
	return f.Backend.Point(ctx, v, x, y, z)
}

func (f *flakyBackend) Region(ctx context.Context, v uint64, box serve.Box, kr serve.KeyRange) (RegionResult, error) {
	if f.trip() {
		return RegionResult{}, ErrBackendDown
	}
	return f.Backend.Region(ctx, v, box, kr)
}

// slowBackend delays every query until the delay passes or ctx dies.
type slowBackend struct {
	Backend
	delay time.Duration
}

func (s *slowBackend) wait(ctx context.Context) error {
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (s *slowBackend) Point(ctx context.Context, v uint64, x, y, z float64) (serve.PointResult, error) {
	if err := s.wait(ctx); err != nil {
		return serve.PointResult{}, err
	}
	return s.Backend.Point(ctx, v, x, y, z)
}

// replay answers a query against the reference catalog the way the
// router's scatter does: per-span partials merged in span order. For
// regions this equals the plain single-tree answer; for aggregates it is
// the well-defined distributed answer (bitwise-stable given the span
// layout).
func replayRegion(t *testing.T, ref *shardFixture, step uint64, box serve.Box) []serve.LeafHit {
	t.Helper()
	s, err := ref.cat.Acquire(step)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hits, err := s.RegionIn(box, serve.KeyRange{})
	if err != nil {
		t.Fatal(err)
	}
	return hits
}

func sameHits(a, b []serve.LeafHit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Code != b[i].Code || a[i].Data != b[i].Data {
			return false
		}
	}
	return true
}

// TestRoutedQueriesMatchSingleTree: for every committed version and
// Latest, routed point/region/aggregate answers are identical to a
// single-tree replay, with degraded=false and the exact version served.
func TestRoutedQueriesMatchSingleTree(t *testing.T) {
	const steps = 4
	ref := buildBackend(t, "ref", steps, steps)
	shards := []ShardConfig{
		{Primary: buildBackend(t, "s0", steps, steps).be},
		{Primary: buildBackend(t, "s1", steps, steps).be},
		{Primary: buildBackend(t, "s2", steps, steps).be},
	}
	reg := telemetry.NewRegistry()
	r, err := New(Config{Shards: shards, Seed: 42, Registry: reg, Sleep: instantSleep})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()

	published := ref.cat.Steps()
	if len(published) != steps {
		t.Fatalf("reference catalog has %d versions, want %d", len(published), steps)
	}
	versions := append([]uint64{Latest}, published...)
	latest := published[len(published)-1]

	for _, v := range versions {
		wantStep := v
		if v == Latest {
			wantStep = latest
		}
		for _, box := range testBoxes {
			ans, err := r.Region(ctx, v, box)
			if err != nil {
				t.Fatalf("Region(v=%d, %+v): %v", v, box, err)
			}
			if ans.Degraded || ans.ServedStep != wantStep {
				t.Fatalf("Region(v=%d): degraded=%v served=%d, want clean serve of %d", v, ans.Degraded, ans.ServedStep, wantStep)
			}
			want := replayRegion(t, ref, wantStep, box)
			if !sameHits(ans.Hits, want) {
				t.Fatalf("Region(v=%d, %+v): %d hits != replay %d hits", v, box, len(ans.Hits), len(want))
			}

			agg, err := r.Aggregate(ctx, v, 0, box)
			if err != nil {
				t.Fatalf("Aggregate(v=%d): %v", v, err)
			}
			// Replay the distributed merge exactly: per-span partials in
			// span order.
			s, err := ref.cat.Acquire(wantStep)
			if err != nil {
				t.Fatal(err)
			}
			wantAgg := serve.AggResult{Step: wantStep}
			first := true
			for i := 0; i < r.Map().Len(); i++ {
				part, err := s.AggregateIn(0, box, r.Map().Span(i))
				if err != nil {
					t.Fatal(err)
				}
				if part.Count == 0 {
					continue
				}
				wantAgg.Count += part.Count
				wantAgg.Sum += part.Sum
				wantAgg.VolSum += part.VolSum
				if first || part.Min < wantAgg.Min {
					wantAgg.Min = part.Min
				}
				if first || part.Max > wantAgg.Max {
					wantAgg.Max = part.Max
				}
				first = false
			}
			whole, err := s.Aggregate(0, box)
			if err != nil {
				t.Fatal(err)
			}
			s.Close()
			if agg.Result != wantAgg {
				t.Fatalf("Aggregate(v=%d, %+v) = %+v, want %+v", v, box, agg.Result, wantAgg)
			}
			if agg.Result.Count != whole.Count ||
				math.Abs(agg.Result.Sum-whole.Sum) > 1e-9*(1+math.Abs(whole.Sum)) {
				t.Fatalf("Aggregate(v=%d) diverges from single-tree: %+v vs %+v", v, agg.Result, whole)
			}
		}
		for _, x := range []float64{0.01, 0.33, 0.5, 0.74, 0.99} {
			ans, err := r.Point(ctx, v, x, x/2, 1-x)
			if err != nil {
				t.Fatalf("Point(v=%d, %v): %v", v, x, err)
			}
			s, err := ref.cat.Acquire(wantStep)
			if err != nil {
				t.Fatal(err)
			}
			want, err := s.Point(x, x/2, 1-x)
			s.Close()
			if err != nil {
				t.Fatal(err)
			}
			if ans.Result.Code != want.Code || ans.Result.Data != want.Data || ans.Result.Step != want.Step {
				t.Fatalf("Point(v=%d): %+v != replay %+v", v, ans.Result, want)
			}
		}
	}
	if _, err := r.Point(ctx, Latest, 1.5, 0, 0); !errors.Is(err, serve.ErrOutOfDomain) {
		t.Fatalf("out-of-domain point = %v, want ErrOutOfDomain", err)
	}
	if _, err := r.Region(ctx, Latest, serve.Box{Min: [3]float64{0.5, 0, 0}, Max: [3]float64{0.4, 1, 1}}); !errors.Is(err, serve.ErrBadRegion) {
		t.Fatalf("inverted box = %v, want ErrBadRegion", err)
	}
}

// TestRouterRetriesTransientFailures: a backend that fails its first two
// calls is retried with backoff and ends up serving from the primary.
func TestRouterRetriesTransientFailures(t *testing.T) {
	fx := buildBackend(t, "s0", 2, 2)
	flaky := &flakyBackend{Backend: fx.be, left: 2}
	reg := telemetry.NewRegistry()
	r, err := New(Config{
		Shards:   []ShardConfig{{Primary: flaky}},
		MaxRetries: 3,
		Registry: reg,
		Sleep:    instantSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ans, err := r.Point(context.Background(), Latest, 0.5, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Degraded || len(ans.ServedBy) != 1 || ans.ServedBy[0] != "shard0" {
		t.Fatalf("answer = %+v, want clean primary serve", ans.Envelope)
	}
	if got := reg.Counter("router.retries").Value(); got < 2 {
		t.Fatalf("router.retries = %d, want >= 2", got)
	}
}

// TestRouterReplicaFallback: a shard whose primary is dead serves from
// its recovery replica at the exact requested version — a failover, not
// a degradation.
func TestRouterReplicaFallback(t *testing.T) {
	const steps = 3
	primary := &gatedBackend{Backend: buildBackend(t, "s0", steps, steps).be}
	primary.down.Store(true)
	replica := buildBackend(t, "s0-replica", steps, steps)
	other := buildBackend(t, "s1", steps, steps)
	reg := telemetry.NewRegistry()
	r, err := New(Config{
		Shards: []ShardConfig{
			{Primary: primary, Replica: replica.be},
			{Primary: other.be},
		},
		MaxRetries: 1,
		Registry:   reg,
		Sleep:      instantSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// A point owned by shard 0 (origin corner has the smallest keys).
	step := replica.cat.Steps()[steps-1]
	ans, err := r.Point(context.Background(), step, 0.01, 0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Degraded {
		t.Fatalf("replica serve at exact version marked degraded: %+v", ans.Envelope)
	}
	if len(ans.ServedBy) != 1 || ans.ServedBy[0] != "shard0/replica" {
		t.Fatalf("served_by = %v, want [shard0/replica]", ans.ServedBy)
	}
	if ans.ServedStep != step {
		t.Fatalf("served step %d, want %d", ans.ServedStep, step)
	}
	if reg.Counter("router.fallback.replica").Value() == 0 {
		t.Fatal("router.fallback.replica not incremented")
	}
}

// TestRouterTakeover: with no replica, a dead shard's span is served by a
// healthy peer (full-copy arenas make the answer exact), and the merged
// region still matches single-tree replay.
func TestRouterTakeover(t *testing.T) {
	const steps = 3
	ref := buildBackend(t, "ref", steps, steps)
	primary0 := &gatedBackend{Backend: buildBackend(t, "s0", steps, steps).be}
	primary0.down.Store(true)
	other := buildBackend(t, "s1", steps, steps)
	reg := telemetry.NewRegistry()
	r, err := New(Config{
		Shards:     []ShardConfig{{Primary: primary0}, {Primary: other.be}},
		MaxRetries: 0,
		Registry:   reg,
		Sleep:      instantSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	box := testBoxes[0] // whole domain: touches both spans
	ans, err := r.Region(context.Background(), Latest, box)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Degraded {
		t.Fatalf("takeover at exact version marked degraded: %+v", ans.Envelope)
	}
	want := replayRegion(t, ref, ans.ServedStep, box)
	if !sameHits(ans.Hits, want) {
		t.Fatalf("takeover region: %d hits != replay %d", len(ans.Hits), len(want))
	}
	foundTakeover := false
	for _, src := range ans.ServedBy {
		if src == "shard0/peer:1" {
			foundTakeover = true
		}
	}
	if !foundTakeover {
		t.Fatalf("served_by = %v, want shard0/peer:1", ans.ServedBy)
	}
	if reg.Counter("router.fallback.takeover").Value() == 0 {
		t.Fatal("router.fallback.takeover not incremented")
	}
}

// TestRouterStaleFallback: when a span's sources lack the requested
// version, the scatter retargets to the newest version available
// everywhere and labels the answer degraded/stale_version.
func TestRouterStaleFallback(t *testing.T) {
	// The client pins a version it saw before the shard fleet restarted;
	// the rebuilt catalogs only recovered the two newest-but-older steps,
	// so no source anywhere holds the requested one.
	ref := buildBackend(t, "ref", 5, 5)
	s0 := buildBackend(t, "s0", 4, 2) // holds steps {3,4}
	s1 := buildBackend(t, "s1", 4, 2) // holds steps {3,4}
	r, err := New(Config{
		Shards:     []ShardConfig{{Primary: s0.be}, {Primary: s1.be}},
		MaxRetries: 0,
		Sleep:      instantSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	refSteps := ref.cat.Steps()
	requested := refSteps[len(refSteps)-1] // step 5: committed upstream, lost by the fleet
	s0Steps := s0.cat.Steps()
	wantServed := s0Steps[len(s0Steps)-1] // step 4: newest step held everywhere

	ans, err := r.Region(context.Background(), requested, testBoxes[0])
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Degraded || ans.ServedStep != wantServed {
		t.Fatalf("degraded=%v served=%d, want degraded serve of %d", ans.Degraded, ans.ServedStep, wantServed)
	}
	found := false
	for _, reason := range ans.Reasons {
		if reason == "stale_version" {
			found = true
		}
	}
	if !found {
		t.Fatalf("degraded_reason = %v, want stale_version", ans.Reasons)
	}
	// The stale answer must still be a real committed version, served
	// bit-identically.
	want := replayRegion(t, ref, wantServed, testBoxes[0])
	if !sameHits(ans.Hits, want) {
		t.Fatalf("stale region is not the committed step-%d answer", wantServed)
	}
}

// TestRouterBreakerAndRecovery: a dying shard trips its breaker and goes
// Down; queries keep flowing via takeover; probes revive it and the
// breaker re-closes after its quiet period.
func TestRouterBreakerAndRecovery(t *testing.T) {
	const steps = 2
	primary0 := &gatedBackend{Backend: buildBackend(t, "s0", steps, steps).be}
	primary0.down.Store(true)
	other := buildBackend(t, "s1", steps, steps)

	var clockMu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}

	r, err := New(Config{
		Shards:     []ShardConfig{{Primary: primary0}, {Primary: other.be}},
		MaxRetries: 0,
		Breaker:    BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Second, HalfOpenSuccesses: 2, Now: clock},
		Health:     HealthConfig{DownAfter: 2, ReviveAfter: 2, DegradeAfter: 3, ClearAfter: 2},
		Sleep:      instantSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()

	// Three failing queries: trips the breaker (2 failures) and marks the
	// shard Down (2 failures); every answer still arrives via takeover.
	for i := 0; i < 3; i++ {
		ans, err := r.Point(ctx, Latest, 0.01, 0.01, 0.01)
		if err != nil {
			t.Fatalf("query %d during outage: %v", i, err)
		}
		if ans.Degraded {
			t.Fatalf("query %d: takeover marked degraded", i)
		}
	}
	info := r.Shards()
	if info[0].Health != "down" {
		t.Fatalf("shard0 health = %s, want down (breaker=%s)", info[0].Health, info[0].Breaker)
	}
	if info[0].Breaker != "open" {
		t.Fatalf("shard0 breaker = %s, want open", info[0].Breaker)
	}

	// Shard recovers: probes revive health, the open timeout admits the
	// half-open probes, and successes close the breaker.
	primary0.down.Store(false)
	r.Probe(ctx)
	r.Probe(ctx)
	if got := r.Shards()[0].Health; got != "healthy" {
		t.Fatalf("shard0 health after probes = %s, want healthy", got)
	}
	advance(2 * time.Second)
	for i := 0; i < 3; i++ {
		ans, err := r.Point(ctx, Latest, 0.01, 0.01, 0.01)
		if err != nil {
			t.Fatalf("query %d after recovery: %v", i, err)
		}
		if i == 2 && (len(ans.ServedBy) != 1 || ans.ServedBy[0] != "shard0") {
			t.Fatalf("after recovery served_by = %v, want [shard0]", ans.ServedBy)
		}
	}
	if got := r.Shards()[0].Breaker; got != "closed" {
		t.Fatalf("shard0 breaker after recovery = %s, want closed", got)
	}
}

// TestRouterHedgedReads: a slow primary is hedged against the replica;
// the replica's answer wins and is labeled, and the hedge counters move.
func TestRouterHedgedReads(t *testing.T) {
	const steps = 2
	slow := &slowBackend{Backend: buildBackend(t, "s0", steps, steps).be, delay: 30 * time.Second}
	replica := buildBackend(t, "s0-replica", steps, steps)
	reg := telemetry.NewRegistry()
	r, err := New(Config{
		Shards:     []ShardConfig{{Primary: slow, Replica: replica.be}},
		MaxRetries: 0,
		HedgeDelay: 5 * time.Millisecond,
		Registry:   reg,
		Sleep:      instantSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ans, err := r.Point(ctx, Latest, 0.5, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.ServedBy) != 1 || ans.ServedBy[0] != "shard0/replica" {
		t.Fatalf("served_by = %v, want [shard0/replica]", ans.ServedBy)
	}
	if reg.Counter("router.hedges").Value() == 0 || reg.Counter("router.hedge_wins").Value() == 0 {
		t.Fatalf("hedges=%d hedge_wins=%d, want both > 0",
			reg.Counter("router.hedges").Value(), reg.Counter("router.hedge_wins").Value())
	}
}

// TestHTTPBackendRoundTrip: the HTTP backend over a real pmserve handler
// returns the same answers as the local backend, and maps error statuses
// back to the typed taxonomy.
func TestHTTPBackendRoundTrip(t *testing.T) {
	const steps = 3
	fx := buildBackend(t, "local", steps, steps)
	srv := httptest.NewServer(serve.NewHandler(fx.cat, fx.sched))
	defer srv.Close()
	hb := NewHTTPBackend("http", srv.URL, nil)
	ctx := context.Background()

	steps0 := fx.cat.Steps()
	latest := steps0[len(steps0)-1]

	vs, err := hb.Versions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != len(steps0) {
		t.Fatalf("Versions = %v, want %v", vs, steps0)
	}

	for _, v := range []uint64{Latest, latest, steps0[0]} {
		want, err := fx.be.Point(ctx, v, 0.3, 0.6, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		got, err := hb.Point(ctx, v, 0.3, 0.6, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Point over HTTP = %+v, want %+v", got, want)
		}

		kr := UniformSpans(2)[1]
		wantR, err := fx.be.Region(ctx, v, testBoxes[1], kr)
		if err != nil {
			t.Fatal(err)
		}
		gotR, err := hb.Region(ctx, v, testBoxes[1], kr)
		if err != nil {
			t.Fatal(err)
		}
		if gotR.Step != wantR.Step || !sameHits(gotR.Hits, wantR.Hits) {
			t.Fatalf("Region over HTTP = %+v, want %+v", gotR, wantR)
		}

		wantA, err := fx.be.Aggregate(ctx, v, 1, testBoxes[2], serve.KeyRange{})
		if err != nil {
			t.Fatal(err)
		}
		gotA, err := hb.Aggregate(ctx, v, 1, testBoxes[2], serve.KeyRange{})
		if err != nil {
			t.Fatal(err)
		}
		if gotA != wantA {
			t.Fatalf("Aggregate over HTTP = %+v, want %+v", gotA, wantA)
		}
	}

	// Version miss maps to NoSuchVersionError with availability.
	_, err = hb.Point(ctx, latest+100, 0.5, 0.5, 0.5)
	avail, ok := availableVersions(err)
	if !ok || len(avail) != len(steps0) {
		t.Fatalf("version miss over HTTP = %v (avail %v), want NoSuchVersionError with %v", err, avail, steps0)
	}
	if retryable(err) {
		t.Fatal("version miss classified retryable")
	}

	// A dead server maps to ErrBackendDown (retryable).
	srv.Close()
	_, err = hb.Point(ctx, Latest, 0.5, 0.5, 0.5)
	if !errors.Is(err, ErrBackendDown) {
		t.Fatalf("dead server error = %v, want ErrBackendDown", err)
	}
	if !retryable(err) {
		t.Fatal("dead server error not retryable")
	}
}

// TestRouterHTTPHandler: the routed HTTP surface carries the provenance
// envelope, reports shard state, and maps router errors onto statuses.
func TestRouterHTTPHandler(t *testing.T) {
	const steps = 2
	s0 := buildBackend(t, "s0", steps, steps)
	s1 := buildBackend(t, "s1", steps, steps)
	reg := telemetry.NewRegistry()
	r, err := New(Config{
		Shards:   []ShardConfig{{Primary: s0.be}, {Primary: s1.be}},
		Registry: reg,
		Sleep:    instantSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := jsonDecode(resp, &m); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, m
	}

	code, m := get("/v1/point?x=0.5&y=0.5&z=0.5")
	if code != 200 {
		t.Fatalf("point status %d: %v", code, m)
	}
	if m["degraded"] != false {
		t.Fatalf("point degraded = %v", m["degraded"])
	}
	if _, ok := m["served_by"].([]any); !ok {
		t.Fatalf("point served_by missing: %v", m)
	}
	if m["served_version"] == nil || m["requested_version"] == nil {
		t.Fatalf("point envelope incomplete: %v", m)
	}

	code, m = get("/v1/region?x0=0&y0=0&z0=0&x1=1&y1=1&z1=1&limit=3")
	if code != 200 || m["truncated"] != true {
		t.Fatalf("region status %d truncated %v", code, m["truncated"])
	}

	code, m = get("/v1/agg?field=0")
	if code != 200 || m["count"] == nil {
		t.Fatalf("agg status %d: %v", code, m)
	}

	code, _ = get("/v1/region?x0=0.9&y0=0&z0=0&x1=0.1&y1=1&z1=1")
	if code != 400 {
		t.Fatalf("inverted box status %d, want 400", code)
	}

	shardResp, err := srv.Client().Get(srv.URL + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	var shardList []map[string]any
	if err := json.NewDecoder(shardResp.Body).Decode(&shardList); err != nil {
		t.Fatal(err)
	}
	shardResp.Body.Close()
	if shardResp.StatusCode != 200 || len(shardList) != 2 {
		t.Fatalf("shards status %d, %d entries, want 200 with 2", shardResp.StatusCode, len(shardList))
	}

	// Requesting a newer-than-anything version degrades to the newest
	// committed one with explicit markers.
	code, m = get("/v1/point?x=0.5&y=0.5&z=0.5&version=99999")
	if code != 200 || m["degraded"] != true {
		t.Fatalf("future version: status %d degraded %v", code, m["degraded"])
	}

	// All shards dead: routed queries return 503 + Retry-After.
	s0.cat.Close()
	s0.sched.Close()
	s1.cat.Close()
	s1.sched.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/point?x=0.5&y=0.5&z=0.5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("all-down status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("all-down response missing Retry-After")
	}
}

func jsonDecode(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}
