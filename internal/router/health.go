package router

import "sync"

// HealthState is a shard's health as the router sees it.
type HealthState int

const (
	// Healthy: the shard serves normally and is preferred.
	Healthy HealthState = iota
	// Degraded: the shard answers but is shedding load (sustained
	// saturation); it stays routable, but hedges fire eagerly against it.
	Degraded
	// Down: the shard fails hard (connection refused, timeouts, failed
	// probes); the router skips it and goes straight to fallbacks.
	Down
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Down:
		return "down"
	}
	return "unknown"
}

// HealthConfig sets the hysteresis thresholds. Every transition needs a
// streak, in both directions, so one blip never flaps routing state.
type HealthConfig struct {
	// DownAfter: consecutive hard failures that mark a shard Down
	// (default 3).
	DownAfter int
	// ReviveAfter: consecutive successes that bring a Down shard back to
	// Healthy (default 2).
	ReviveAfter int
	// DegradeAfter: consecutive saturation rejections that mark a shard
	// Degraded (default 3).
	DegradeAfter int
	// ClearAfter: consecutive clean successes that clear Degraded
	// (default 2).
	ClearAfter int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.ReviveAfter <= 0 {
		c.ReviveAfter = 2
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 3
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = 2
	}
	return c
}

// HealthTracker is the per-shard health state machine. It is fed every
// request and probe outcome, classified three ways: success, saturation
// (the shard is alive but rejecting with backpressure), and hard failure
// (connection errors, timeouts, failed probes).
//
// Transitions (all streak-gated by HealthConfig):
//
//	any      --DownAfter hard failures-->    Down
//	Healthy  --DegradeAfter saturations-->   Degraded
//	Degraded --ClearAfter successes-->       Healthy
//	Down     --ReviveAfter successes-->      Healthy
//
// Saturation does not revive a Down shard (a dying process can still
// emit one 503), and any hard failure resets revival/clearing streaks.
type HealthTracker struct {
	cfg HealthConfig

	mu        sync.Mutex
	state     HealthState
	hardFails int
	okays     int // consecutive successes while Down
	cleans    int // consecutive successes while Degraded
	sats      int // consecutive saturations

	onTransition func(from, to HealthState)
}

// NewHealthTracker starts Healthy.
func NewHealthTracker(cfg HealthConfig) *HealthTracker {
	return &HealthTracker{cfg: cfg.withDefaults()}
}

// OnTransition installs the state-change observer. Called with the
// tracker's lock held — keep it non-blocking.
func (t *HealthTracker) OnTransition(fn func(from, to HealthState)) {
	t.mu.Lock()
	t.onTransition = fn
	t.mu.Unlock()
}

func (t *HealthTracker) transition(to HealthState) {
	from := t.state
	if from == to {
		return
	}
	t.state = to
	if t.onTransition != nil {
		t.onTransition(from, to)
	}
}

// State returns the current health.
func (t *HealthTracker) State() HealthState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// ObserveSuccess records a served request or passing probe.
func (t *HealthTracker) ObserveSuccess() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hardFails = 0
	t.sats = 0
	t.okays++
	t.cleans++
	switch t.state {
	case Down:
		if t.okays >= t.cfg.ReviveAfter {
			t.transition(Healthy)
		}
	case Degraded:
		if t.cleans >= t.cfg.ClearAfter {
			t.transition(Healthy)
		}
	}
}

// ObserveSaturated records a backpressure rejection (503 + Retry-After).
func (t *HealthTracker) ObserveSaturated() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hardFails = 0
	t.okays = 0
	t.cleans = 0
	t.sats++
	if t.state != Down && t.sats >= t.cfg.DegradeAfter {
		t.transition(Degraded)
	}
}

// ObserveFailure records a hard failure (connection error, timeout,
// failed probe).
func (t *HealthTracker) ObserveFailure() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.okays = 0
	t.cleans = 0
	t.hardFails++
	if t.hardFails >= t.cfg.DownAfter {
		t.transition(Down)
	}
}
