package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pmoctree/internal/telemetry"
)

// SaturatedError is the backpressure signal: the admission queue is full
// and the request was rejected without queuing. Clients should retry no
// sooner than RetryAfter.
type SaturatedError struct {
	RetryAfter time.Duration
}

func (e *SaturatedError) Error() string {
	return fmt.Sprintf("serve: admission queue saturated; retry after %v", e.RetryAfter)
}

// ErrSchedulerClosed is returned for requests submitted after Close.
var ErrSchedulerClosed = fmt.Errorf("serve: scheduler is closed")

// SchedulerConfig parameterizes a Scheduler.
type SchedulerConfig struct {
	// Workers is the number of draining goroutines (default 2).
	Workers int
	// QueueDepth bounds the admission queue (default 64). A submit
	// finding the queue full is rejected with SaturatedError.
	QueueDepth int
	// BatchSize is how many queued requests one worker drains per wakeup
	// (default 8); batching amortizes scheduling over bursts.
	BatchSize int
	// RetryAfter is the hint attached to rejections (default 50ms).
	RetryAfter time.Duration
	// Registry, when set, receives serve.* request metrics.
	Registry *telemetry.Registry
	// Recorder, when set, receives a flight event per rejected submit, so
	// a post-mortem shows when admission saturated.
	Recorder *telemetry.FlightRecorder
}

func (c SchedulerConfig) withDefaults() SchedulerConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 50 * time.Millisecond
	}
	return c
}

type response struct {
	val any
	err error
}

type request struct {
	ctx  context.Context
	kind string
	fn   func() (any, error)
	done chan response
	enq  time.Time
	tc   *telemetry.TraceContext // nil when the request is untraced
}

// Scheduler is the bounded, batching request admission layer. Queries
// themselves are embarrassingly concurrent (immutable snapshots); what
// the scheduler adds is load shaping — a hard cap on in-flight work, a
// queue with a known depth, and an immediate, typed rejection once that
// queue is full.
type Scheduler struct {
	cfg   SchedulerConfig
	queue chan *request
	wg    sync.WaitGroup

	mu     sync.RWMutex // guards queue close vs. submits
	closed bool

	reg           *telemetry.Registry
	requests      *telemetry.Counter
	rejected      *telemetry.Counter
	schedRejected *telemetry.Counter
	dropped       *telemetry.Counter
	errors        *telemetry.Counter
	latency       *telemetry.Histogram
	batchHist     *telemetry.Histogram
}

// NewScheduler starts the worker pool.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{cfg: cfg, queue: make(chan *request, cfg.QueueDepth)}
	if r := cfg.Registry; r != nil {
		s.reg = r
		s.requests = r.Counter("serve.requests")
		s.rejected = r.Counter("serve.rejected")
		s.schedRejected = r.Counter("serve.sched.rejected")
		s.dropped = r.Counter("serve.sched.dropped")
		s.errors = r.Counter("serve.errors")
		s.latency = r.Histogram("serve.latency_ns")
		s.batchHist = r.Histogram("serve.batch_size")
		r.RegisterFunc("serve.queue.depth", func() float64 { return float64(len(s.queue)) })
		r.RegisterFunc("serve.queue.capacity", func() float64 { return float64(cfg.QueueDepth) })
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	batch := make([]*request, 0, s.cfg.BatchSize)
	for req := range s.queue {
		batch = append(batch[:0], req)
		// Drain adjacent requests up to the batch size: one wakeup
		// serves a whole burst.
		for len(batch) < s.cfg.BatchSize {
			select {
			case more, ok := <-s.queue:
				if !ok {
					s.run(batch)
					return
				}
				batch = append(batch, more)
			default:
				goto full
			}
		}
	full:
		s.run(batch)
	}
}

func (s *Scheduler) run(batch []*request) {
	if s.batchHist != nil {
		s.batchHist.Observe(uint64(len(batch)))
	}
	for _, req := range batch {
		begin := time.Now()
		req.tc.AddSpan("queue_wait", req.enq, 0)
		if s.reg != nil {
			s.reg.Histogram("serve.queue_wait_ns."+req.kind).Observe(uint64(begin.Sub(req.enq)))
		}
		// A request whose context died while it queued (client gone,
		// deadline passed) is dropped before any service work: servicing
		// the dead would steal capacity from live requests under exactly
		// the load that queued it.
		if err := req.ctx.Err(); err != nil {
			if s.dropped != nil {
				s.dropped.Inc()
			}
			req.tc.SetError(err)
			req.done <- response{err: err}
			continue
		}
		val, err := req.fn()
		if err != nil && s.errors != nil {
			s.errors.Inc()
		}
		if s.reg != nil {
			s.reg.Histogram("serve.service_ns."+req.kind).Observe(uint64(time.Since(begin)))
		}
		if s.latency != nil {
			s.latency.Observe(uint64(time.Since(req.enq)))
		}
		req.done <- response{val: val, err: err}
	}
}

// Do submits fn through admission and blocks for its result. A full
// queue returns *SaturatedError immediately; a closed scheduler returns
// ErrSchedulerClosed.
func (s *Scheduler) Do(kind string, fn func() (any, error)) (any, error) {
	return s.DoCtx(context.Background(), nil, kind, fn)
}

// DoTraced is Do with a trace context carried through admission: the
// request's queue wait is recorded as a "queue_wait" span on tc, and the
// same tc flows into fn's closure for the query-phase spans. A nil tc
// means untraced.
func (s *Scheduler) DoTraced(tc *telemetry.TraceContext, kind string, fn func() (any, error)) (any, error) {
	return s.DoCtx(context.Background(), tc, kind, fn)
}

// DoCtx is DoTraced with per-request deadline propagation: a context
// already dead at admission is rejected without queuing, and a request
// whose context dies while queued is dropped by the worker before any
// service work runs, returning the context's error. Once fn has started
// it runs to completion — callers own resources (the snapshot handle)
// that fn borrows, so DoCtx never abandons a running fn.
func (s *Scheduler) DoCtx(ctx context.Context, tc *telemetry.TraceContext, kind string, fn func() (any, error)) (any, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		if s.dropped != nil {
			s.dropped.Inc()
		}
		return nil, err
	}
	req := &request{ctx: ctx, kind: kind, fn: fn, done: make(chan response, 1), enq: time.Now(), tc: tc}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrSchedulerClosed
	}
	select {
	case s.queue <- req:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		if s.rejected != nil {
			s.rejected.Inc()
		}
		if s.schedRejected != nil {
			s.schedRejected.Inc()
		}
		s.cfg.Recorder.Record(telemetry.FlightEvent{
			Kind:   "reject",
			Value:  uint64(s.cfg.QueueDepth),
			Detail: "admission queue saturated: " + kind,
		})
		return nil, &SaturatedError{RetryAfter: s.cfg.RetryAfter}
	}
	if s.requests != nil {
		s.requests.Inc()
	}
	resp := <-req.done
	return resp.val, resp.err
}

// RetryAfter returns the configured rejection hint.
func (s *Scheduler) RetryAfter() time.Duration { return s.cfg.RetryAfter }

// Close drains queued requests and stops the workers. Pending requests
// complete; new submits fail.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}
