package serve

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

func loadgenScript(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "mix.json")
	if err := os.WriteFile(p, []byte(`["/v1/point?x=0.5","/v1/region?x0=0"]`), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func loadgenHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"ok":true}`))
	})
	return mux
}

// TestLoadgenOpenLoop: open-loop runs carry the arrival-schedule summary,
// serve the full request budget across the class histograms, and track
// the target rate; closed-loop runs don't grow the open_loop field.
func TestLoadgenOpenLoop(t *testing.T) {
	script := loadgenScript(t)
	h := loadgenHandler()
	for _, poisson := range []bool{false, true} {
		doc, err := RunLoadgenOpts(h, script, LoadgenOptions{
			Clients:  3,
			Requests: 80,
			Rate:     4000,
			Poisson:  poisson,
			Seed:     7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if doc.OpenLoop == nil {
			t.Fatalf("poisson=%v: open-loop run has no open_loop stats", poisson)
		}
		if doc.OpenLoop.TargetRPS != 4000 || doc.OpenLoop.Poisson != poisson {
			t.Fatalf("poisson=%v: open_loop = %+v", poisson, doc.OpenLoop)
		}
		if doc.OpenLoop.OfferedRPS <= 0 || doc.OpenLoop.ServedRPS <= 0 {
			t.Fatalf("poisson=%v: degenerate rates: %+v", poisson, doc.OpenLoop)
		}
		var total uint64
		for _, c := range doc.Classes {
			total += c.Count
		}
		if total != 80 {
			t.Fatalf("poisson=%v: %d responses measured, want 80", poisson, total)
		}
		if len(doc.Classes) != 2 {
			t.Fatalf("poisson=%v: classes = %v, want point and region", poisson, doc.Classes)
		}
	}

	closed, err := RunLoadgenOpts(h, script, LoadgenOptions{Clients: 2, Requests: 20})
	if err != nil {
		t.Fatal(err)
	}
	if closed.OpenLoop != nil {
		t.Fatalf("closed-loop run grew open_loop stats: %+v", closed.OpenLoop)
	}
}
