package serve

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pmoctree/internal/core"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/sim"
	"pmoctree/internal/telemetry"
)

const testMaxLevel = 4

// buildTree runs the droplet workload for the given number of committed
// steps and returns the tree (cur == committed after the last Persist).
func buildTree(t testing.TB, steps int) (*core.Tree, *sim.Droplet) {
	t.Helper()
	d := sim.NewDroplet(sim.DropletConfig{Steps: steps + 10})
	tree := core.Create(core.Config{
		NVBMDevice: nvbm.New(nvbm.NVBM, 0),
		DRAMDevice: nvbm.New(nvbm.DRAM, 0),
	})
	tree.SetFeatures(d.Feature(1))
	for s := 1; s <= steps; s++ {
		sim.Step(tree, d, s, testMaxLevel)
		tree.SetFeatures(d.Feature(s + 1))
		tree.Persist()
	}
	return tree, d
}

func publish(t testing.TB, tree *core.Tree, cfg Config) (*Catalog, *Snapshot) {
	t.Helper()
	cat := NewCatalog(tree, cfg)
	s, err := cat.Publish()
	if err != nil {
		t.Fatal(err)
	}
	return cat, s
}

// TestPointMatchesTreeDescent: the index-backed point lookup must find
// exactly the leaf the tree's own descent finds, for a grid of points.
func TestPointMatchesTreeDescent(t *testing.T) {
	tree, _ := buildTree(t, 4)
	cat, s := publish(t, tree, Config{})
	defer cat.Close()
	defer s.Close()

	for _, x := range []float64{0, 0.124, 0.35, 0.5, 0.77, 0.999} {
		for _, y := range []float64{0.02, 0.48, 0.93} {
			for _, z := range []float64{0.11, 0.62, 0.88} {
				res, err := s.Point(x, y, z)
				if err != nil {
					t.Fatalf("Point(%v,%v,%v): %v", x, y, z, err)
				}
				cell, _ := cellAt(x, y, z)
				_, want := tree.FindLeaf(cell)
				if res.Code != want.Code || res.Data != want.Data {
					t.Fatalf("Point(%v,%v,%v) = %v %v, tree descent found %v %v",
						x, y, z, res.Code, res.Data, want.Code, want.Data)
				}
			}
		}
	}
	if _, err := s.Point(1.0, 0.5, 0.5); !errors.Is(err, ErrOutOfDomain) {
		t.Fatalf("Point outside the domain = %v, want ErrOutOfDomain", err)
	}
}

// TestRegionMatchesBruteForce: the Morton-windowed region query returns
// exactly the leaves a full scan with the same overlap test returns.
func TestRegionMatchesBruteForce(t *testing.T) {
	tree, _ := buildTree(t, 4)
	cat, s := publish(t, tree, Config{})
	defer cat.Close()
	defer s.Close()

	var all []LeafHit
	tree.ForEachCommittedNode(func(r core.Ref, o *core.Octant) bool {
		if o.IsLeaf() {
			all = append(all, LeafHit{Code: o.Code, Data: o.Data})
		}
		return true
	})

	rng := rand.New(rand.NewSource(7))
	boxes := []Box{
		{Min: [3]float64{0, 0, 0}, Max: [3]float64{1, 1, 1}},
		{Min: [3]float64{0.4, 0.4, 0.4}, Max: [3]float64{0.6, 0.6, 0.6}},
		{Min: [3]float64{0, 0, 0.9}, Max: [3]float64{1, 1, 1}},
	}
	for i := 0; i < 20; i++ {
		lo := [3]float64{rng.Float64() * 0.9, rng.Float64() * 0.9, rng.Float64() * 0.9}
		var box Box
		for d := 0; d < 3; d++ {
			box.Min[d] = lo[d]
			box.Max[d] = lo[d] + 0.02 + rng.Float64()*(1-lo[d]-0.02)
		}
		boxes = append(boxes, box)
	}
	for _, box := range boxes {
		got, err := s.Region(box)
		if err != nil {
			t.Fatalf("Region(%+v): %v", box, err)
		}
		var want []LeafHit
		for _, leaf := range all {
			if overlaps(leaf.Code, box) {
				want = append(want, leaf)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Region(%+v) = %d leaves, brute force %d", box, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Region(%+v)[%d] = %+v, want %+v", box, i, got[i], want[i])
			}
		}
	}

	if _, err := s.Region(Box{Min: [3]float64{0.5, 0, 0}, Max: [3]float64{0.4, 1, 1}}); !errors.Is(err, ErrBadRegion) {
		t.Fatalf("inverted box = %v, want ErrBadRegion", err)
	}
}

// TestAggregateMatchesBruteForce folds field 0 over regions and checks
// against a direct accumulation over the same leaves.
func TestAggregateMatchesBruteForce(t *testing.T) {
	tree, _ := buildTree(t, 3)
	cat, s := publish(t, tree, Config{})
	defer cat.Close()
	defer s.Close()

	box := Box{Min: [3]float64{0.25, 0.25, 0.25}, Max: [3]float64{0.8, 0.75, 0.9}}
	got, err := s.Aggregate(0, box)
	if err != nil {
		t.Fatal(err)
	}
	hits, _ := s.Region(box)
	want := AggResult{Step: s.Step(), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, h := range hits {
		v := h.Data[0]
		want.Count++
		want.Sum += v
		want.Min = math.Min(want.Min, v)
		want.Max = math.Max(want.Max, v)
		ext := h.Code.Extent()
		want.VolSum += v * ext * ext * ext
	}
	if got != want {
		t.Fatalf("Aggregate = %+v, want %+v", got, want)
	}
	if got.Count == 0 {
		t.Fatal("aggregate region hit no leaves; workload too small")
	}
	if _, err := s.Aggregate(core.DataWords, box); !errors.Is(err, ErrBadField) {
		t.Fatalf("field out of range = %v, want ErrBadField", err)
	}
}

// TestCatalogWindowEviction: the catalog keeps its configured depth,
// evicts oldest-first, answers Acquire misses with the typed error, and
// releases every pin on Close.
func TestCatalogWindowEviction(t *testing.T) {
	d := sim.NewDroplet(sim.DropletConfig{Steps: 16})
	tree := core.Create(core.Config{
		NVBMDevice: nvbm.New(nvbm.NVBM, 0),
		DRAMDevice: nvbm.New(nvbm.DRAM, 0),
	})
	reg := telemetry.NewRegistry()
	cat := NewCatalog(tree, Config{Keep: 2, Registry: reg})

	var steps []uint64
	for s := 1; s <= 4; s++ {
		sim.Step(tree, d, s, testMaxLevel)
		tree.Persist()
		snap, err := cat.Publish()
		if err != nil {
			t.Fatal(err)
		}
		steps = append(steps, snap.Step())
		snap.Close()
	}
	got := cat.Steps()
	if len(got) != 2 || got[0] != steps[2] || got[1] != steps[3] {
		t.Fatalf("catalog window = %v, want [%d %d]", got, steps[2], steps[3])
	}
	var nosuch *NoSuchVersionError
	if _, err := cat.Acquire(steps[0]); !errors.As(err, &nosuch) {
		t.Fatalf("Acquire(evicted) = %v, want NoSuchVersionError", err)
	} else if len(nosuch.Available) != 2 {
		t.Fatalf("NoSuchVersionError.Available = %v, want the window", nosuch.Available)
	}
	latest, err := cat.AcquireLatest()
	if err != nil {
		t.Fatal(err)
	}
	if latest.Step() != steps[3] {
		t.Fatalf("latest = %d, want %d", latest.Step(), steps[3])
	}
	// Eviction released the old pins: only the window remains registered.
	if n := tree.PinnedVersions(); n != 2 {
		t.Fatalf("pinned versions = %d, want 2 (the window)", n)
	}

	// Closing the catalog does not strand the outstanding handle...
	cat.Close()
	if got := latest.LeafCount(); got == 0 {
		t.Fatal("snapshot unusable after catalog close")
	}
	if n := tree.PinnedVersions(); n != 1 {
		t.Fatalf("pinned versions after close = %d, want 1 (the live handle)", n)
	}
	// ...and the last handle close releases the last pin.
	latest.Close()
	latest.Close() // double close is a no-op
	if n := tree.PinnedVersions(); n != 0 {
		t.Fatalf("pinned versions after last close = %d, want 0", n)
	}
	if _, err := cat.Publish(); !errors.Is(err, ErrCatalogClosed) {
		t.Fatalf("Publish after Close = %v, want ErrCatalogClosed", err)
	}
}

// TestSchedulerBackpressure: a full admission queue rejects immediately
// with the typed saturation error and the retry hint, and the rejection
// is counted.
func TestSchedulerBackpressure(t *testing.T) {
	reg := telemetry.NewRegistry()
	sched := NewScheduler(SchedulerConfig{
		Workers:    1,
		QueueDepth: 1,
		BatchSize:  1,
		RetryAfter: 123 * time.Millisecond,
		Registry:   reg,
	})
	defer sched.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupies the single worker
		defer wg.Done()
		_, _ = sched.Do("block", func() (any, error) { close(started); <-gate; return nil, nil })
	}()
	<-started
	wg.Add(1)
	go func() { // sits in the queue
		defer wg.Done()
		_, _ = sched.Do("queued", func() (any, error) { return nil, nil })
	}()
	// Wait until the queued request actually occupies the single slot —
	// only then is a rejection deterministic.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Gauges["serve.queue.depth"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}
	var sat *SaturatedError
	if _, err := sched.Do("overflow", func() (any, error) { return nil, nil }); !errors.As(err, &sat) {
		t.Fatalf("Do on a full queue = %v, want SaturatedError", err)
	}
	if sat.RetryAfter != 123*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 123ms", sat.RetryAfter)
	}
	close(gate)
	wg.Wait()
	if n := reg.Counter("serve.rejected").Value(); n == 0 {
		t.Fatal("serve.rejected counter never incremented")
	}
	if n := reg.Counter("serve.requests").Value(); n < 2 {
		t.Fatalf("serve.requests = %d, want >= 2", n)
	}
	sched.Close()
	if _, err := sched.Do("closed", func() (any, error) { return nil, nil }); !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("Do after Close = %v, want ErrSchedulerClosed", err)
	}
}

// TestHTTPEndpoints drives the JSON surface end to end against a real
// catalog: versions, point, region (with truncation), agg, and the 400 /
// 404 error paths.
func TestHTTPEndpoints(t *testing.T) {
	tree, _ := buildTree(t, 3)
	reg := telemetry.NewRegistry()
	cat, s0 := publish(t, tree, Config{Registry: reg})
	s0.Close()
	defer cat.Close()
	sched := NewScheduler(SchedulerConfig{Registry: reg})
	defer sched.Close()
	srv := httptest.NewServer(NewHandler(cat, sched))
	defer srv.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [1 << 16]byte
		n, _ := resp.Body.Read(buf[:])
		return resp.StatusCode, buf[:n]
	}

	status, body := get("/v1/versions")
	var vr versionsResp
	if status != 200 || json.Unmarshal(body, &vr) != nil || len(vr.Versions) != 1 {
		t.Fatalf("/v1/versions -> %d %s", status, body)
	}
	step := vr.Latest

	status, body = get("/v1/point?x=0.5&y=0.5&z=0.82")
	var pr pointResp
	if status != 200 || json.Unmarshal(body, &pr) != nil {
		t.Fatalf("/v1/point -> %d %s", status, body)
	}
	if pr.Version != step || pr.Extent <= 0 {
		t.Fatalf("point response %+v, want version %d", pr, step)
	}

	status, body = get("/v1/region?x0=0.3&y0=0.3&z0=0.3&x1=0.7&y1=0.7&z1=0.9&limit=5")
	var rr regionResp
	if status != 200 || json.Unmarshal(body, &rr) != nil {
		t.Fatalf("/v1/region -> %d %s", status, body)
	}
	if rr.Count <= 5 || !rr.Truncated || len(rr.Leaves) != 5 {
		t.Fatalf("region response count=%d truncated=%v leaves=%d, want truncation at 5", rr.Count, rr.Truncated, len(rr.Leaves))
	}

	status, body = get("/v1/agg?field=0&x0=0&y0=0&z0=0&x1=1&y1=1&z1=1")
	var ar aggResp
	if status != 200 || json.Unmarshal(body, &ar) != nil {
		t.Fatalf("/v1/agg -> %d %s", status, body)
	}
	if ar.Count == 0 || ar.Count != tree.LeafCount() {
		t.Fatalf("agg count = %d, want every leaf (%d)", ar.Count, tree.LeafCount())
	}

	if status, _ := get("/v1/point?x=1.5&y=0&z=0"); status != 400 {
		t.Fatalf("out-of-domain point -> %d, want 400", status)
	}
	if status, body := get("/v1/point?x=0.5&y=0.5&z=0.5&version=99999"); status != 404 {
		t.Fatalf("unknown version -> %d %s, want 404", status, body)
	}
	if status, _ := get("/v1/region?x0=0.5&y0=0&z0=0&x1=0.4&y1=1&z1=1"); status != 400 {
		t.Fatalf("inverted region -> %d, want 400", status)
	}

	if n := reg.Counter("serve.requests").Value(); n < 4 {
		t.Fatalf("serve.requests = %d, want the served calls counted", n)
	}
	if st := reg.Histogram("serve.latency_ns").Stats(); st.Count < 4 {
		t.Fatalf("latency histogram count = %d, want >= 4", st.Count)
	}
}
