// Package serve is the MVCC read-serving layer over committed PM-octree
// versions. The paper keeps V(i-1) and V(i) with structural sharing so a
// crash always finds a consistent version; this package exploits the same
// property for live traffic: every committed version is immutable, so a
// reader holding its root can answer point lookups, region queries, and
// leaf-field aggregations with zero coordination against the simulation
// writer that keeps committing new steps.
//
// The pieces:
//
//   - Catalog: the version window. The writer publishes each commit; the
//     catalog pins it (core.VersionPin) and retires the oldest beyond its
//     keep depth. Readers acquire refcounted Snapshot handles; GC may reap
//     a version only after its last snapshot closes.
//   - Snapshot: an immutable read handle. Queries run over a flat
//     Morton-sorted leaf index (the Cornerstone/Etree layout, built once
//     per version with one charged walk) with binary-searched key windows
//     — no tree pointer chasing on the hot path.
//   - Scheduler: bounded admission. Requests queue up to a fixed depth and
//     are drained in small batches by worker goroutines; a full queue
//     rejects immediately with a retry-after hint instead of collapsing
//     under load.
//   - HTTP front end (http.go): the JSON surface cmd/pmserve mounts.
//
// All request paths emit serve.* metrics through telemetry.Registry.
package serve

import (
	"fmt"
	"sync"

	"pmoctree/internal/core"
	"pmoctree/internal/telemetry"
)

// Config parameterizes a Catalog.
type Config struct {
	// Keep is how many committed versions the catalog holds pinned
	// (default 2, the paper's V(i-1)/V(i) shape extended to serving).
	Keep int
	// Registry, when set, receives serve.catalog.* metrics.
	Registry *telemetry.Registry
}

// NoSuchVersionError reports an Acquire for a step the catalog does not
// hold, listing what it does hold so clients can retarget.
type NoSuchVersionError struct {
	Step      uint64
	Available []uint64
}

func (e *NoSuchVersionError) Error() string {
	return fmt.Sprintf("serve: version step %d not in catalog (available %v)", e.Step, e.Available)
}

// ErrCatalogClosed is returned by operations on a closed Catalog.
var ErrCatalogClosed = fmt.Errorf("serve: catalog is closed")

// Catalog is the window of committed versions currently being served.
// Publish runs on the simulation writer's thread (it pins through the
// Tree); Acquire and Steps are safe from any goroutine.
type Catalog struct {
	tree *core.Tree
	keep int

	mu       sync.Mutex
	versions []*Snapshot // catalog-owned handles, ascending step
	closed   bool

	published *telemetry.Counter
	evicted   *telemetry.Counter
}

// NewCatalog builds a catalog over tree. Nothing is pinned until the
// first Publish.
func NewCatalog(tree *core.Tree, cfg Config) *Catalog {
	if cfg.Keep <= 0 {
		cfg.Keep = 2
	}
	c := &Catalog{tree: tree, keep: cfg.Keep}
	if r := cfg.Registry; r != nil {
		c.published = r.Counter("serve.catalog.published")
		c.evicted = r.Counter("serve.catalog.evicted")
		r.RegisterFunc("serve.catalog.versions", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.versions))
		})
		r.RegisterFunc("serve.catalog.pins", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			n := 0
			for _, s := range c.versions {
				n += s.v.pin.Refs()
			}
			return float64(n)
		})
	}
	return c
}

// Publish pins the currently committed version into the catalog and
// returns a caller-owned handle to it (Close it when done). Publishing
// the same committed step twice is idempotent. Versions beyond the keep
// depth are retired: the catalog drops its reference, and the version is
// reclaimed by GC once every outstanding snapshot on it closes. Writer
// thread only.
func (c *Catalog) Publish() (*Snapshot, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrCatalogClosed
	}
	step := c.tree.CommittedStep()
	if n := len(c.versions); n > 0 && c.versions[n-1].Step() == step {
		s := c.versions[n-1].acquire()
		c.mu.Unlock()
		return s, nil
	}
	c.mu.Unlock()

	// Pinning walks writer-owned state; done outside c.mu so metric
	// scrapes never wait on it.
	pin := c.tree.PinCommitted()
	return c.install(pin)
}

// PublishVersion pins an arbitrary committed version — typically one of
// tree.RetainedVersions(), so a server can offer fallback-ring history —
// and returns a caller-owned handle. Writer thread only.
func (c *Catalog) PublishVersion(root core.Ref, step uint64) (*Snapshot, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrCatalogClosed
	}
	for _, s := range c.versions {
		if s.Step() == step {
			s2 := s.acquire()
			c.mu.Unlock()
			return s2, nil
		}
	}
	c.mu.Unlock()
	pin, err := c.tree.PinVersion(root, step)
	if err != nil {
		return nil, err
	}
	return c.install(pin)
}

// install registers a freshly created pin as a catalog version, keeping
// the version list step-ordered and the window at keep depth, and returns
// a caller-owned handle (the pin's initial reference becomes the
// catalog's; the handle retains one more).
func (c *Catalog) install(pin *core.VersionPin) (*Snapshot, error) {
	v := &version{pin: pin}
	own := &Snapshot{v: v} // catalog's handle, wrapping the pin's initial ref
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		own.Close()
		return nil, ErrCatalogClosed
	}
	i := len(c.versions)
	for i > 0 && c.versions[i-1].Step() > pin.Step() {
		i--
	}
	c.versions = append(c.versions, nil)
	copy(c.versions[i+1:], c.versions[i:])
	c.versions[i] = own
	var drop []*Snapshot
	for len(c.versions) > c.keep {
		drop = append(drop, c.versions[0])
		c.versions = c.versions[1:]
	}
	out := own.acquire()
	c.mu.Unlock()

	if c.published != nil {
		c.published.Inc()
	}
	for _, s := range drop {
		s.Close()
		if c.evicted != nil {
			c.evicted.Inc()
		}
	}
	return out, nil
}

// AcquireLatest returns a handle on the newest published version.
func (c *Catalog) AcquireLatest() (*Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrCatalogClosed
	}
	if len(c.versions) == 0 {
		return nil, &NoSuchVersionError{}
	}
	return c.versions[len(c.versions)-1].acquire(), nil
}

// Acquire returns a handle on the version committed at exactly step.
func (c *Catalog) Acquire(step uint64) (*Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrCatalogClosed
	}
	for _, s := range c.versions {
		if s.Step() == step {
			return s.acquire(), nil
		}
	}
	return nil, &NoSuchVersionError{Step: step, Available: c.stepsLocked()}
}

// Steps lists the published version steps, ascending.
func (c *Catalog) Steps() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stepsLocked()
}

func (c *Catalog) stepsLocked() []uint64 {
	out := make([]uint64, len(c.versions))
	for i, s := range c.versions {
		out[i] = s.Step()
	}
	return out
}

// Close retires every version. Outstanding snapshots stay valid until
// their holders close them; new Publish/Acquire calls fail.
func (c *Catalog) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	drop := c.versions
	c.versions = nil
	c.mu.Unlock()
	for _, s := range drop {
		s.Close()
	}
}
