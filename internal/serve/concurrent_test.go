package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmoctree/internal/core"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/sim"
	"pmoctree/internal/telemetry"
)

// soakQuery is one entry of the fixed mixed query set the soak replays
// against every version.
type soakQuery struct {
	kind  string
	pt    [3]float64
	box   Box
	field int
}

// soakQuerySet is deterministic: the same seed always yields the same
// mixed point/region/agg workload.
func soakQuerySet() []soakQuery {
	rng := rand.New(rand.NewSource(42))
	var qs []soakQuery
	for i := 0; i < 20; i++ {
		qs = append(qs, soakQuery{kind: "point", pt: [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}})
	}
	for i := 0; i < 15; i++ {
		var box Box
		for d := 0; d < 3; d++ {
			lo := rng.Float64() * 0.8
			box.Min[d] = lo
			box.Max[d] = lo + 0.05 + rng.Float64()*(1-lo-0.05)
		}
		qs = append(qs, soakQuery{kind: "region", box: box})
	}
	for i := 0; i < 5; i++ {
		qs = append(qs, soakQuery{
			kind:  "agg",
			box:   Box{Min: [3]float64{0.1, 0.1, 0.1}, Max: [3]float64{0.3 + rng.Float64()*0.6, 0.9, 0.9}},
			field: i % core.DataWords,
		})
	}
	return qs
}

// runQuery executes one soak query against a snapshot and returns its
// JSON-encodable result.
func runQuery(s *Snapshot, q soakQuery) (any, error) {
	switch q.kind {
	case "point":
		return s.Point(q.pt[0], q.pt[1], q.pt[2])
	case "region":
		return s.Region(q.box)
	default:
		return s.Aggregate(q.field, q.box)
	}
}

// replay runs the whole query set single-threaded and returns the
// JSON-encoded responses — the bit-exact reference a concurrent reader
// must reproduce.
func replay(t testing.TB, s *Snapshot, qs []soakQuery) []byte {
	t.Helper()
	results := make([]any, len(qs))
	for i, q := range qs {
		res, err := runQuery(s, q)
		if err != nil {
			t.Fatalf("replay query %d (%s): %v", i, q.kind, err)
		}
		results[i] = res
	}
	out, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// committedDigest hashes the committed version's full leaf state.
func committedDigest(tree *core.Tree) uint64 {
	h := fnv.New64a()
	tree.ForEachCommittedNode(func(r core.Ref, o *core.Octant) bool {
		if o.IsLeaf() {
			fmt.Fprintf(h, "%d:%v;", o.Code, o.Data)
		}
		return true
	})
	return h.Sum64()
}

// soloDigests runs the identical simulation with no serving layer at all
// and records the committed digest after every step.
func soloDigests(steps, maxLevel int) []uint64 {
	d := sim.NewDroplet(sim.DropletConfig{Steps: steps + 10})
	tree := core.Create(core.Config{
		NVBMDevice: nvbm.New(nvbm.NVBM, 0),
		DRAMDevice: nvbm.New(nvbm.DRAM, 0),
	})
	defer tree.Delete()
	tree.SetFeatures(d.Feature(1))
	var digests []uint64
	for s := 1; s <= steps; s++ {
		sim.Step(tree, d, s, uint8(maxLevel))
		tree.SetFeatures(d.Feature(s + 1))
		tree.Persist()
		digests = append(digests, committedDigest(tree))
	}
	return digests
}

// TestConcurrentServeSoak is the PR's acceptance demo: a simulation
// writer keeps committing, GC'ing, and attempting compaction while four
// reader goroutines serve >= 1000 mixed point/region/agg queries from
// multiple pinned versions through the scheduler. Every concurrent
// response must be bit-identical to a single-threaded replay of the same
// pinned version, and the simulation's committed state must be
// bit-identical to a solo run with no serving layer attached.
func TestConcurrentServeSoak(t *testing.T) {
	const (
		steps      = 12
		maxLevel   = 4
		readers    = 4
		minQueries = 1000
	)
	qs := soakQuerySet()

	d := sim.NewDroplet(sim.DropletConfig{Steps: steps + 10})
	tree := core.Create(core.Config{
		NVBMDevice: nvbm.New(nvbm.NVBM, 0),
		DRAMDevice: nvbm.New(nvbm.DRAM, 0),
	})
	reg := telemetry.NewRegistry()
	cat := NewCatalog(tree, Config{Keep: 3, Registry: reg})
	sched := NewScheduler(SchedulerConfig{Workers: 4, QueueDepth: 256, Registry: reg})

	var (
		expected sync.Map // step -> []byte reference replay
		served   sync.Map // step -> true, versions actually queried
		queries  atomic.Int64
		done     atomic.Bool
		wg       sync.WaitGroup
	)

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			pick := id
			for !done.Load() {
				catalogSteps := cat.Steps()
				if len(catalogSteps) == 0 {
					time.Sleep(time.Millisecond)
					continue
				}
				step := catalogSteps[pick%len(catalogSteps)]
				pick++
				want, ok := expected.Load(step)
				if !ok {
					continue // writer hasn't stored the reference yet
				}
				snap, err := cat.Acquire(step)
				var nosuch *NoSuchVersionError
				if errors.As(err, &nosuch) {
					continue // evicted between Steps and Acquire
				}
				if err != nil {
					t.Errorf("reader %d: Acquire(%d): %v", id, step, err)
					return
				}
				results := make([]any, len(qs))
				bad := false
				for qi, q := range qs {
					for {
						val, err := sched.Do(q.kind, func() (any, error) { return runQuery(snap, q) })
						var sat *SaturatedError
						if errors.As(err, &sat) {
							time.Sleep(sat.RetryAfter / 10)
							continue
						}
						if err != nil {
							t.Errorf("reader %d step %d query %d: %v", id, step, qi, err)
							bad = true
						} else {
							results[qi] = val
						}
						break
					}
					if bad {
						break
					}
					queries.Add(1)
				}
				if !bad {
					got, err := json.Marshal(results)
					if err != nil {
						t.Errorf("reader %d: %v", id, err)
					} else if !bytes.Equal(got, want.([]byte)) {
						t.Errorf("reader %d: step %d responses differ from single-threaded replay", id, step)
					}
					served.Store(step, true)
				}
				snap.Close()
				if bad {
					return
				}
			}
		}(i)
	}

	// The writer: advance the simulation, publish every commit, GC under
	// pins, and verify compaction refuses while versions are pinned.
	tree.SetFeatures(d.Feature(1))
	var liveDigests []uint64
	for s := 1; s <= steps; s++ {
		sim.Step(tree, d, s, maxLevel)
		tree.SetFeatures(d.Feature(s + 1))
		tree.Persist()
		liveDigests = append(liveDigests, committedDigest(tree))
		snap, err := cat.Publish()
		if err != nil {
			t.Fatal(err)
		}
		expected.Store(snap.Step(), replay(t, snap, qs))
		snap.Close()
		if s%2 == 0 {
			tree.GC()
		}
		if s == steps/2 {
			if _, err := tree.Compact(); !errors.Is(err, core.ErrPinned) {
				t.Fatalf("Compact under pins = %v, want ErrPinned", err)
			}
		}
	}

	// Keep serving until the soak quota is met.
	deadline := time.Now().Add(60 * time.Second)
	for queries.Load() < minQueries {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	done.Store(true)
	wg.Wait()
	sched.Close()

	if n := queries.Load(); n < minQueries {
		t.Fatalf("served %d queries, want >= %d", n, minQueries)
	}
	distinct := 0
	served.Range(func(_, _ any) bool { distinct++; return true })
	if distinct < 2 {
		t.Fatalf("served %d distinct pinned versions, want >= 2", distinct)
	}

	// Zero writer interference: the committed history matches a solo run
	// with no serving layer, step for step.
	solo := soloDigests(steps, maxLevel)
	for i := range solo {
		if liveDigests[i] != solo[i] {
			t.Fatalf("step %d committed digest diverged under serving: %x vs solo %x", i+1, liveDigests[i], solo[i])
		}
	}

	// With every handle closed, pins drain and compaction proceeds.
	cat.Close()
	if n := tree.PinnedVersions(); n != 0 {
		t.Fatalf("pins outstanding after close: %d", n)
	}
	if _, err := tree.Compact(); err != nil {
		t.Fatalf("Compact after close: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["serve.requests"] < minQueries {
		t.Fatalf("serve.requests = %d, want >= %d", snap.Counters["serve.requests"], minQueries)
	}
	t.Logf("soak: %d queries over %d versions; published=%d evicted=%d",
		queries.Load(), distinct, snap.Counters["serve.catalog.published"], snap.Counters["serve.catalog.evicted"])
}
