package serve

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"pmoctree/internal/telemetry"
)

// Drainer wraps a serving handler for graceful shutdown. The SIGTERM
// sequence a load-balanced process owes its balancer:
//
//  1. Shutdown flips /readyz to 503 first (via the Health registry), so
//     the balancer stops sending new traffic;
//  2. new requests arriving anyway are refused with 503 + Retry-After
//     instead of being half-served by a dying process;
//  3. requests already in flight drain to completion, bounded by a
//     timeout so a wedged query cannot hold the process hostage.
//
// Mount /healthz and /readyz outside the Drainer: they must keep
// answering while the drain runs, or the balancer cannot see the flip.
type Drainer struct {
	inner      http.Handler
	health     *telemetry.Health
	retryAfter time.Duration

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	refused *telemetry.Counter
}

// NewDrainer wraps inner. health may be nil (no /readyz flip);
// retryAfter <= 0 defaults to 1s. Registry, when non-nil, receives the
// serve.drain.refused counter.
func NewDrainer(inner http.Handler, health *telemetry.Health, retryAfter time.Duration, reg *telemetry.Registry) *Drainer {
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	d := &Drainer{inner: inner, health: health, retryAfter: retryAfter}
	if reg != nil {
		d.refused = reg.Counter("serve.drain.refused")
	}
	return d
}

func (d *Drainer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		if d.refused != nil {
			d.refused.Inc()
		}
		secs := int64(d.retryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusServiceUnavailable, errResp{
			Error:      "serve: shutting down",
			RetryAfter: d.retryAfter.Milliseconds(),
		})
		return
	}
	// Add under the same lock that guards the draining flag, so Shutdown
	// never starts waiting between our check and our Add.
	d.inflight.Add(1)
	d.mu.Unlock()
	defer d.inflight.Done()
	d.inner.ServeHTTP(w, r)
}

// Draining reports whether Shutdown has begun.
func (d *Drainer) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// Shutdown stops admission — flipping readiness to 503 before the first
// refusal — and waits up to timeout for in-flight requests to complete.
// Returns true when the drain finished cleanly, false when the timeout
// expired with requests still running. Idempotent; later calls just wait
// again.
func (d *Drainer) Shutdown(timeout time.Duration) bool {
	d.health.SetReady(false) // nil-safe
	d.mu.Lock()
	d.draining = true
	d.mu.Unlock()
	done := make(chan struct{})
	go func() {
		d.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}
