package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"pmoctree/internal/core"
	"pmoctree/internal/telemetry"
)

// HTTP/JSON front end. GET endpoints, query-string parameters, JSON
// bodies; every request is admitted through the Scheduler, so saturation
// surfaces as 503 + Retry-After instead of unbounded goroutine pileup.
//
//	GET /v1/versions                 -> {"versions":[...],"latest":N}
//	GET /v1/point?x=&y=&z=[&version=]
//	GET /v1/region?x0=&y0=&z0=&x1=&y1=&z1=[&version=][&limit=][&klo=&khi=]
//	GET /v1/agg?field=[&x0=&y0=&z0=&x1=&y1=&z1=][&version=][&klo=&khi=]  (no bounds = whole domain)
//	GET /v1/trace?id=N               -> one retained request trace
//	GET /v1/trace[?n=K]              -> the K most recent traces (default all retained)
//
// version selects a pinned committed step; omitted means newest. klo/khi
// restrict region and agg responses to leaves whose Z-order key lies in
// the inclusive range — the filter a sharded router scatters with.
//
// When the handler carries a TraceSink, every query request gets a trace
// context threaded through the scheduler and the snapshot query, the
// response carries its ID in X-Trace-Id, and the finished trace —
// queue_wait, index_build, leaf_scan, device_read spans plus derived
// handler overhead — is retrievable from /v1/trace.

type versionsResp struct {
	Versions []uint64 `json:"versions"`
	Latest   uint64   `json:"latest"`
}

type pointResp struct {
	Version uint64                  `json:"version"`
	Code    string                  `json:"code"`
	Level   uint8                   `json:"level"`
	Center  [3]float64              `json:"center"`
	Extent  float64                 `json:"extent"`
	Data    [core.DataWords]float64 `json:"data"`
}

type regionLeaf struct {
	Code string                  `json:"code"`
	Data [core.DataWords]float64 `json:"data"`
}

type regionResp struct {
	Version   uint64       `json:"version"`
	Count     int          `json:"count"`
	Truncated bool         `json:"truncated,omitempty"`
	Leaves    []regionLeaf `json:"leaves"`
}

type aggResp struct {
	Version uint64  `json:"version"`
	Field   int     `json:"field"`
	Count   int     `json:"count"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	VolSum  float64 `json:"vol_sum"`
}

type errResp struct {
	Error      string   `json:"error"`
	RetryAfter int64    `json:"retry_after_ms,omitempty"`
	Available  []uint64 `json:"available,omitempty"`
}

// Handler is the HTTP surface over one catalog and one scheduler.
type Handler struct {
	cat    *Catalog
	sched  *Scheduler
	traces *telemetry.TraceSink // nil when request tracing is off
	span   KeyRange             // shard responsibility; zero = full key space
	mux    *http.ServeMux
}

// NewHandler mounts the /v1 endpoints.
func NewHandler(cat *Catalog, sched *Scheduler) *Handler {
	h := &Handler{cat: cat, sched: sched, mux: http.NewServeMux()}
	h.mux.HandleFunc("/v1/versions", h.versions)
	h.mux.HandleFunc("/v1/point", h.point)
	h.mux.HandleFunc("/v1/region", h.region)
	h.mux.HandleFunc("/v1/agg", h.agg)
	h.mux.HandleFunc("/v1/trace", h.trace)
	return h
}

// SetTraceSink enables per-request tracing; call before serving.
func (h *Handler) SetTraceSink(ts *telemetry.TraceSink) { h.traces = ts }

// RestrictSpan sets the handler's default responsibility span — the
// pmserve -shard filter applied to region and aggregate requests that
// carry no klo/khi of their own. Explicit klo/khi parameters override
// it rather than intersecting with it: every shard process holds the
// full committed image (responsibility, not data, is partitioned), and
// a router performing peer takeover for a dead shard must be able to
// ask a healthy peer for the dead shard's span and get an exact
// answer. Call before serving.
func (h *Handler) RestrictSpan(kr KeyRange) { h.span = kr }

// TraceSink returns the handler's sink (nil when tracing is off).
func (h *Handler) TraceSink() *telemetry.TraceSink { return h.traces }

// startTrace opens a trace for one request and stamps its ID on the
// response. Returns nil (a no-op context) when tracing is off.
func (h *Handler) startTrace(w http.ResponseWriter, kind string) *telemetry.TraceContext {
	tc := h.traces.Start(kind)
	if tc != nil {
		w.Header().Set("X-Trace-Id", strconv.FormatUint(tc.ID(), 10))
	}
	return tc
}

// trace serves retained request traces: ?id=N returns one, ?n=K returns
// the K most recent (default all retained).
func (h *Handler) trace(w http.ResponseWriter, r *http.Request) {
	if h.traces == nil {
		writeJSON(w, http.StatusNotFound, errResp{Error: "serve: request tracing is not enabled"})
		return
	}
	q := r.URL.Query()
	if ids := q.Get("id"); ids != "" {
		id, err := strconv.ParseUint(ids, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errResp{Error: "id must be an unsigned integer"})
			return
		}
		rt, ok := h.traces.Get(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, errResp{Error: fmt.Sprintf("serve: trace %d is not retained", id)})
			return
		}
		writeJSON(w, http.StatusOK, rt)
		return
	}
	n := 0
	if ns := q.Get("n"); ns != "" {
		var err error
		n, err = strconv.Atoi(ns)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errResp{Error: "n must be a non-negative integer"})
			return
		}
	}
	writeJSON(w, http.StatusOK, h.traces.Recent(n))
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// fail maps the serving layer's typed errors onto HTTP statuses.
func fail(w http.ResponseWriter, err error) {
	var sat *SaturatedError
	var nosuch *NoSuchVersionError
	switch {
	case errors.As(err, &sat):
		secs := int64(sat.RetryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusServiceUnavailable, errResp{
			Error:      err.Error(),
			RetryAfter: sat.RetryAfter.Milliseconds(),
		})
	case errors.As(err, &nosuch):
		writeJSON(w, http.StatusNotFound, errResp{Error: err.Error(), Available: nosuch.Available})
	case errors.Is(err, ErrOutOfDomain), errors.Is(err, ErrBadRegion), errors.Is(err, ErrBadField):
		writeJSON(w, http.StatusBadRequest, errResp{Error: err.Error()})
	case errors.Is(err, ErrCatalogClosed), errors.Is(err, ErrSchedulerClosed):
		writeJSON(w, http.StatusServiceUnavailable, errResp{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The request's own deadline expired (or the client went away)
		// before service; 504 tells routers this attempt timed out rather
		// than failed.
		writeJSON(w, http.StatusGatewayTimeout, errResp{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errResp{Error: err.Error()})
	}
}

// snapshotFor resolves the request's version parameter to a handle the
// caller must Close.
func (h *Handler) snapshotFor(r *http.Request) (*Snapshot, error) {
	vs := r.URL.Query().Get("version")
	if vs == "" {
		return h.cat.AcquireLatest()
	}
	step, err := strconv.ParseUint(vs, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: version %q is not a step number", ErrBadRegion, vs)
	}
	return h.cat.Acquire(step)
}

func floatParam(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	return strconv.ParseFloat(raw, 64)
}

// keyRangeParams parses the optional klo/khi parameters (inclusive
// Z-order key bounds). Omitting both means the handler's default span
// (full when unrestricted); explicit bounds are honored as given — see
// RestrictSpan for why they must not be intersected with the default.
func (h *Handler) keyRangeParams(r *http.Request) (KeyRange, error) {
	q := r.URL.Query()
	kr := KeyRange{}
	los, his := q.Get("klo"), q.Get("khi")
	if los == "" && his == "" {
		return h.span, nil
	}
	kr = FullKeyRange()
	var err error
	if los != "" {
		if kr.Lo, err = strconv.ParseUint(los, 10, 64); err != nil {
			return kr, fmt.Errorf("klo must be an unsigned integer")
		}
	}
	if his != "" {
		if kr.Hi, err = strconv.ParseUint(his, 10, 64); err != nil {
			return kr, fmt.Errorf("khi must be an unsigned integer")
		}
	}
	return kr, nil
}

func boxParams(r *http.Request) (Box, error) {
	var box Box
	names := [6]string{"x0", "y0", "z0", "x1", "y1", "z1"}
	for d := 0; d < 3; d++ {
		lo, err := floatParam(r, names[d])
		if err != nil {
			return box, err
		}
		hi, err := floatParam(r, names[d+3])
		if err != nil {
			return box, err
		}
		box.Min[d], box.Max[d] = lo, hi
	}
	return box, nil
}

func (h *Handler) versions(w http.ResponseWriter, r *http.Request) {
	steps := h.cat.Steps()
	resp := versionsResp{Versions: steps}
	if len(steps) > 0 {
		resp.Latest = steps[len(steps)-1]
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) point(w http.ResponseWriter, r *http.Request) {
	x, errX := floatParam(r, "x")
	y, errY := floatParam(r, "y")
	z, errZ := floatParam(r, "z")
	if errX != nil || errY != nil || errZ != nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: "point needs float parameters x, y, z"})
		return
	}
	tc := h.startTrace(w, "point")
	defer tc.Finish()
	s, err := h.snapshotFor(r)
	if err != nil {
		tc.SetError(err)
		fail(w, err)
		return
	}
	defer s.Close()
	val, err := h.sched.DoCtx(r.Context(), tc, "point", func() (any, error) {
		res, err := s.PointTraced(tc, x, y, z)
		if err != nil {
			return nil, err
		}
		cx, cy, cz := res.Code.Center()
		return pointResp{
			Version: res.Step,
			Code:    res.Code.String(),
			Level:   res.Depth,
			Center:  [3]float64{cx, cy, cz},
			Extent:  res.Code.Extent(),
			Data:    res.Data,
		}, nil
	})
	if err != nil {
		tc.SetError(err)
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, val)
}

func (h *Handler) region(w http.ResponseWriter, r *http.Request) {
	box, err := boxParams(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: err.Error()})
		return
	}
	limit := 0
	if ls := r.URL.Query().Get("limit"); ls != "" {
		limit, err = strconv.Atoi(ls)
		if err != nil || limit < 0 {
			writeJSON(w, http.StatusBadRequest, errResp{Error: "limit must be a non-negative integer"})
			return
		}
	}
	kr, err := h.keyRangeParams(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: err.Error()})
		return
	}
	tc := h.startTrace(w, "region")
	defer tc.Finish()
	s, err := h.snapshotFor(r)
	if err != nil {
		tc.SetError(err)
		fail(w, err)
		return
	}
	defer s.Close()
	val, err := h.sched.DoCtx(r.Context(), tc, "region", func() (any, error) {
		hits, err := s.RegionInTraced(tc, box, kr)
		if err != nil {
			return nil, err
		}
		resp := regionResp{Version: s.Step(), Count: len(hits), Leaves: []regionLeaf{}}
		for _, hit := range hits {
			if limit > 0 && len(resp.Leaves) >= limit {
				resp.Truncated = true
				break
			}
			resp.Leaves = append(resp.Leaves, regionLeaf{Code: hit.Code.String(), Data: hit.Data})
		}
		return resp, nil
	})
	if err != nil {
		tc.SetError(err)
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, val)
}

func (h *Handler) agg(w http.ResponseWriter, r *http.Request) {
	// Bounds are optional for aggregation: omitting all six means the
	// whole domain. Supplying only some of them is still an error.
	box := Box{Max: [3]float64{1, 1, 1}}
	q := r.URL.Query()
	if q.Get("x0") != "" || q.Get("y0") != "" || q.Get("z0") != "" ||
		q.Get("x1") != "" || q.Get("y1") != "" || q.Get("z1") != "" {
		var err error
		box, err = boxParams(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errResp{Error: err.Error()})
			return
		}
	}
	field, err := strconv.Atoi(r.URL.Query().Get("field"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: "agg needs an integer field parameter"})
		return
	}
	kr, err := h.keyRangeParams(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: err.Error()})
		return
	}
	tc := h.startTrace(w, "agg")
	defer tc.Finish()
	s, err := h.snapshotFor(r)
	if err != nil {
		tc.SetError(err)
		fail(w, err)
		return
	}
	defer s.Close()
	val, err := h.sched.DoCtx(r.Context(), tc, "agg", func() (any, error) {
		res, err := s.AggregateInTraced(tc, field, box, kr)
		if err != nil {
			return nil, err
		}
		return aggResp{
			Version: res.Step,
			Field:   field,
			Count:   res.Count,
			Sum:     res.Sum,
			Min:     res.Min,
			Max:     res.Max,
			VolSum:  res.VolSum,
		}, nil
	})
	if err != nil {
		tc.SetError(err)
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, val)
}
