package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pmoctree/internal/telemetry"
)

// Closed-loop load generation: N clients each issue one request, wait for
// the response, and immediately issue the next, cycling through the
// scripted query mix until the request budget is spent. Closed-loop means
// offered load adapts to service rate — the generator measures the
// server's latency under its own admission control rather than piling up
// unbounded concurrency. Client-observed latencies are recorded per query
// class (the /v1/<class> path prefix) and summarized as an SLO document:
// per-class counts and latency quantiles, the JSON that
// `benchjson -compare-quantiles` gates CI against. Both cmd/pmserve and
// cmd/pmrouter drive their handlers through it, so single-process and
// routed serving are measured with the same meter.

// SLOClass is one query class's latency summary. Quantile values are
// nanoseconds.
type SLOClass struct {
	Count     uint64             `json:"count"`
	Quantiles map[string]float64 `json:"quantiles"`
}

// SLODoc is the checked-in SLO baseline format.
type SLODoc struct {
	Classes map[string]SLOClass `json:"classes"`
}

// classOf maps a request path to its query class ("/v1/point?..." ->
// "point").
func classOf(p string) string {
	p = strings.TrimPrefix(p, "/v1/")
	if i := strings.IndexAny(p, "?/"); i >= 0 {
		p = p[:i]
	}
	if p == "" {
		return "other"
	}
	return p
}

// RunLoadgen drives the handler over a loopback listener with `clients`
// closed-loop clients until `requests` total requests have completed,
// cycling through the scripted paths. Returns the per-class SLO summary.
func RunLoadgen(h http.Handler, scriptPath string, clients, requests int) (SLODoc, error) {
	raw, err := os.ReadFile(scriptPath)
	if err != nil {
		return SLODoc{}, err
	}
	var paths []string
	if err := json.Unmarshal(raw, &paths); err != nil {
		return SLODoc{}, fmt.Errorf("script %s: %w (want a JSON array of request paths)", scriptPath, err)
	}
	if len(paths) == 0 {
		return SLODoc{}, fmt.Errorf("script %s: no request paths", scriptPath)
	}
	if clients <= 0 {
		clients = 4
	}
	if requests <= 0 {
		requests = 400
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return SLODoc{}, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// Client-side latency histograms, one per query class, in a private
	// registry so loadgen numbers never mix into the server's own metrics.
	reg := telemetry.NewRegistry()
	var issued atomic.Int64
	var failures atomic.Int64
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(offset int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := offset; ; i++ {
				if issued.Add(1) > int64(requests) {
					return
				}
				p := paths[i%len(paths)]
				t0 := time.Now()
				resp, err := client.Get(base + p)
				if err != nil {
					failures.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// Rejected requests (503 + Retry-After) are part of closed-loop
				// behavior but their latency is the rejection fast path, not
				// service; keep them out of the class histograms.
				if resp.StatusCode == http.StatusServiceUnavailable {
					failures.Add(1)
					continue
				}
				reg.Histogram("loadgen.latency_ns." + classOf(p)).Observe(uint64(time.Since(t0)))
			}
		}(c)
	}
	wg.Wait()

	doc := SLODoc{Classes: map[string]SLOClass{}}
	snap := reg.Snapshot()
	for name, hs := range snap.Histograms {
		class := strings.TrimPrefix(name, "loadgen.latency_ns.")
		doc.Classes[class] = SLOClass{
			Count: hs.Count,
			Quantiles: map[string]float64{
				"p50": hs.P50,
				"p95": hs.P95,
				"p99": hs.P99,
			},
		}
	}
	if f := failures.Load(); f > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d request(s) failed or were rejected (excluded from quantiles)\n", f)
	}
	return doc, nil
}

// WriteSLO writes the document as stable, indented JSON (classes sorted).
func WriteSLO(w io.Writer, doc SLODoc) error {
	// json.Marshal sorts map keys, so the output is already stable.
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// SummarizeSLO renders a one-line-per-class summary for stderr.
func SummarizeSLO(doc SLODoc) string {
	classes := make([]string, 0, len(doc.Classes))
	for c := range doc.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	var sb strings.Builder
	for _, c := range classes {
		sc := doc.Classes[c]
		fmt.Fprintf(&sb, "  %-10s n=%-6d p50=%.0fus p95=%.0fus p99=%.0fus\n",
			c, sc.Count, sc.Quantiles["p50"]/1e3, sc.Quantiles["p95"]/1e3, sc.Quantiles["p99"]/1e3)
	}
	return sb.String()
}
