package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pmoctree/internal/telemetry"
)

// Load generation in two disciplines over the same scripted query mix:
//
// Closed loop: N clients each issue one request, wait for the response,
// and immediately issue the next. Offered load adapts to service rate —
// the generator measures the server's latency under its own admission
// control rather than piling up unbounded concurrency.
//
// Open loop (Options.Rate > 0): requests arrive on an external schedule —
// fixed-interval or Poisson — regardless of how fast the server drains
// them, and latency is measured from the *scheduled arrival*, so queueing
// delay counts. This is the discipline that exposes coordinated omission:
// a closed loop slows its own offered load when the server stalls, an
// open loop keeps offering and records the pile-up.
//
// Client-observed latencies are recorded per query class (the /v1/<class>
// path prefix) and summarized as an SLO document: per-class counts and
// latency quantiles, the JSON that `benchjson -compare-quantiles` gates
// CI against. Both cmd/pmserve and cmd/pmrouter drive their handlers
// through it, so single-process and routed serving are measured with the
// same meter.

// SLOClass is one query class's latency summary. Quantile values are
// nanoseconds.
type SLOClass struct {
	Count     uint64             `json:"count"`
	Quantiles map[string]float64 `json:"quantiles"`
}

// OpenLoopStats describes an open-loop run: the arrival schedule it
// offered and the throughput the server actually sustained. ServedRPS
// noticeably below OfferedRPS means the server could not keep up with the
// target rate and the latency quantiles include the resulting queueing.
type OpenLoopStats struct {
	TargetRPS  float64 `json:"target_rps"`
	Poisson    bool    `json:"poisson"`
	OfferedRPS float64 `json:"offered_rps"`
	ServedRPS  float64 `json:"served_rps"`
}

// SLODoc is the checked-in SLO baseline format. OpenLoop is present only
// for open-loop runs.
type SLODoc struct {
	Classes  map[string]SLOClass `json:"classes"`
	OpenLoop *OpenLoopStats      `json:"open_loop,omitempty"`
}

// LoadgenOptions parameterizes RunLoadgenOpts. Zero values mean: 4
// clients, 400 requests, closed loop.
type LoadgenOptions struct {
	Clients  int
	Requests int
	// Rate, when positive, switches to open-loop generation at this many
	// requests per second; Clients then bounds in-flight concurrency, not
	// offered load.
	Rate float64
	// Poisson draws exponential inter-arrival gaps (a Poisson process at
	// Rate) instead of a fixed interval. Only meaningful with Rate > 0.
	Poisson bool
	// Seed makes the Poisson arrival schedule reproducible.
	Seed int64
}

// classOf maps a request path to its query class ("/v1/point?..." ->
// "point").
func classOf(p string) string {
	p = strings.TrimPrefix(p, "/v1/")
	if i := strings.IndexAny(p, "?/"); i >= 0 {
		p = p[:i]
	}
	if p == "" {
		return "other"
	}
	return p
}

// RunLoadgen drives the handler over a loopback listener with `clients`
// closed-loop clients until `requests` total requests have completed,
// cycling through the scripted paths. Returns the per-class SLO summary.
func RunLoadgen(h http.Handler, scriptPath string, clients, requests int) (SLODoc, error) {
	return RunLoadgenOpts(h, scriptPath, LoadgenOptions{Clients: clients, Requests: requests})
}

// RunLoadgenOpts drives the handler over a loopback listener under the
// configured discipline (see LoadgenOptions) and returns the per-class
// SLO summary.
func RunLoadgenOpts(h http.Handler, scriptPath string, opts LoadgenOptions) (SLODoc, error) {
	raw, err := os.ReadFile(scriptPath)
	if err != nil {
		return SLODoc{}, err
	}
	var paths []string
	if err := json.Unmarshal(raw, &paths); err != nil {
		return SLODoc{}, fmt.Errorf("script %s: %w (want a JSON array of request paths)", scriptPath, err)
	}
	if len(paths) == 0 {
		return SLODoc{}, fmt.Errorf("script %s: no request paths", scriptPath)
	}
	if opts.Clients <= 0 {
		opts.Clients = 4
	}
	if opts.Requests <= 0 {
		opts.Requests = 400
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return SLODoc{}, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// Client-side latency histograms, one per query class, in a private
	// registry so loadgen numbers never mix into the server's own metrics.
	reg := telemetry.NewRegistry()
	var failures atomic.Int64
	var open *OpenLoopStats
	if opts.Rate > 0 {
		open = runOpenLoop(base, paths, opts, reg, &failures)
	} else {
		runClosedLoop(base, paths, opts, reg, &failures)
	}

	doc := SLODoc{Classes: map[string]SLOClass{}, OpenLoop: open}
	snap := reg.Snapshot()
	for name, hs := range snap.Histograms {
		class := strings.TrimPrefix(name, "loadgen.latency_ns.")
		doc.Classes[class] = SLOClass{
			Count: hs.Count,
			Quantiles: map[string]float64{
				"p50": hs.P50,
				"p95": hs.P95,
				"p99": hs.P99,
			},
		}
	}
	if f := failures.Load(); f > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d request(s) failed or were rejected (excluded from quantiles)\n", f)
	}
	return doc, nil
}

// doRequest issues one request and records its latency from t0 (the
// scheduled arrival for open loop, the send for closed loop). Failures
// and admission rejections (503 + Retry-After: part of load behavior, but
// their latency is the rejection fast path, not service) stay out of the
// class histograms.
func doRequest(client *http.Client, base, p string, t0 time.Time,
	reg *telemetry.Registry, failures *atomic.Int64) bool {
	resp, err := client.Get(base + p)
	if err != nil {
		failures.Add(1)
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		failures.Add(1)
		return false
	}
	reg.Histogram("loadgen.latency_ns." + classOf(p)).Observe(uint64(time.Since(t0)))
	return true
}

func runClosedLoop(base string, paths []string, opts LoadgenOptions,
	reg *telemetry.Registry, failures *atomic.Int64) {
	var issued atomic.Int64
	var wg sync.WaitGroup
	wg.Add(opts.Clients)
	for c := 0; c < opts.Clients; c++ {
		go func(offset int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := offset; ; i++ {
				if issued.Add(1) > int64(opts.Requests) {
					return
				}
				doRequest(client, base, paths[i%len(paths)], time.Now(), reg, failures)
			}
		}(c)
	}
	wg.Wait()
}

// runOpenLoop generates the arrival schedule on one goroutine and drains
// it with opts.Clients workers. The arrivals channel is buffered for the
// whole run so a stalled server never pushes back on the generator —
// requests keep "arriving" and their queueing shows up in the measured
// latency, because each worker stamps latency from the scheduled arrival
// it dequeues, not from when it got around to sending.
func runOpenLoop(base string, paths []string, opts LoadgenOptions,
	reg *telemetry.Registry, failures *atomic.Int64) *OpenLoopStats {
	type arrival struct {
		path  string
		sched time.Time
	}
	arrivals := make(chan arrival, opts.Requests)
	start := time.Now()
	var lastSched time.Time
	go func() {
		defer close(arrivals)
		rng := rand.New(rand.NewSource(opts.Seed))
		next := start
		for i := 0; i < opts.Requests; i++ {
			if opts.Poisson {
				// Exponential inter-arrival gap with mean 1/Rate; clamp the
				// U=0 tail rather than emitting an infinite gap.
				u := rng.Float64()
				if u < 1e-12 {
					u = 1e-12
				}
				next = next.Add(time.Duration(-math.Log(u) / opts.Rate * float64(time.Second)))
			} else {
				next = start.Add(time.Duration(float64(i+1) / opts.Rate * float64(time.Second)))
			}
			time.Sleep(time.Until(next))
			arrivals <- arrival{path: paths[i%len(paths)], sched: next}
			lastSched = next
		}
	}()

	var served atomic.Int64
	var wg sync.WaitGroup
	wg.Add(opts.Clients)
	for c := 0; c < opts.Clients; c++ {
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for a := range arrivals {
				if doRequest(client, base, a.path, a.sched, reg, failures) {
					served.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	st := &OpenLoopStats{TargetRPS: opts.Rate, Poisson: opts.Poisson}
	if offered := lastSched.Sub(start).Seconds(); offered > 0 {
		st.OfferedRPS = float64(opts.Requests) / offered
	}
	if elapsed > 0 {
		st.ServedRPS = float64(served.Load()) / elapsed
	}
	return st
}

// WriteSLO writes the document as stable, indented JSON (classes sorted).
func WriteSLO(w io.Writer, doc SLODoc) error {
	// json.Marshal sorts map keys, so the output is already stable.
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// SummarizeSLO renders a one-line-per-class summary for stderr.
func SummarizeSLO(doc SLODoc) string {
	classes := make([]string, 0, len(doc.Classes))
	for c := range doc.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	var sb strings.Builder
	if ol := doc.OpenLoop; ol != nil {
		shape := "fixed-rate"
		if ol.Poisson {
			shape = "poisson"
		}
		fmt.Fprintf(&sb, "  open loop (%s): target=%.0frps offered=%.0frps served=%.0frps\n",
			shape, ol.TargetRPS, ol.OfferedRPS, ol.ServedRPS)
	}
	for _, c := range classes {
		sc := doc.Classes[c]
		fmt.Fprintf(&sb, "  %-10s n=%-6d p50=%.0fus p95=%.0fus p99=%.0fus\n",
			c, sc.Count, sc.Quantiles["p50"]/1e3, sc.Quantiles["p95"]/1e3, sc.Quantiles["p99"]/1e3)
	}
	return sb.String()
}
