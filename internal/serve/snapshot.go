package serve

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"pmoctree/internal/core"
	"pmoctree/internal/morton"
	"pmoctree/internal/telemetry"
)

// ErrOutOfDomain is returned for query coordinates outside the unit cube
// the octree discretizes.
var ErrOutOfDomain = fmt.Errorf("serve: coordinates outside the [0,1) domain")

// ErrBadRegion is returned for an empty or inverted region box.
var ErrBadRegion = fmt.Errorf("serve: region box is empty or inverted")

// ErrBadField is returned for an aggregation field outside the octant
// data words.
var ErrBadField = fmt.Errorf("serve: field index outside octant data")

// version is the shared, lazily indexed state of one pinned committed
// version. All Snapshot handles on the same version share it.
type version struct {
	pin *core.VersionPin

	// The Morton leaf index: leaves in Z-order with their pre-order keys,
	// plus the maximum leaf depth (bounds ancestor descent charges).
	// Built once, on first query, with one charged walk of the pinned
	// version; leaf data is embedded, so the query hot path never touches
	// the arena again. Guarded by mu rather than sync.Once: a build
	// aborted by a fault-injection panic (chaos soak cuts power under
	// readers) must stay unbuilt and be retried, not be poisoned empty.
	mu     sync.Mutex
	built  bool
	leaves []core.LeafEntry
	keys   []uint64
	depth  uint8
}

// Snapshot is one acquired, refcounted read handle on a pinned committed
// version. Handles are cheap; every Acquire returns a fresh one and every
// handle must be closed exactly once. All query methods are safe for
// concurrent use from any goroutine, concurrently with the simulation
// writer.
type Snapshot struct {
	v      *version
	closed atomic.Bool
}

// acquire mints a new handle sharing this handle's version.
func (s *Snapshot) acquire() *Snapshot {
	s.v.pin.Retain()
	return &Snapshot{v: s.v}
}

// Close releases the handle's reference. The version becomes reclaimable
// once the catalog and every other handle have released theirs.
func (s *Snapshot) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.v.pin.Release()
	}
}

// Step returns the committed step this snapshot serves.
func (s *Snapshot) Step() uint64 { return s.v.pin.Step() }

// LeafCount returns the number of leaves in the version (building the
// index if needed).
func (s *Snapshot) LeafCount() int {
	s.v.ensure()
	return len(s.v.leaves)
}

// ensure builds the Morton leaf index on first use, reporting whether
// this call did the build — the caller that pays the build records it as
// an index_build trace span; everyone else rides the cached index.
func (v *version) ensure() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.built {
		return false
	}
	var leaves []core.LeafEntry
	depth := uint8(0)
	v.pin.ForEachNode(func(r core.Ref, o *core.Octant) bool {
		if o.IsLeaf() {
			leaves = append(leaves, core.LeafEntry{Code: o.Code, Ref: r, Data: o.Data})
			if l := o.Code.Level(); l > depth {
				depth = l
			}
		}
		return true
	})
	keys := make([]uint64, len(leaves))
	for i := range leaves {
		keys[i] = leaves[i].Code.Key()
	}
	v.leaves, v.keys, v.depth = leaves, keys, depth
	v.built = true
	return true
}

// ensureTraced builds the index like ensure, recording an index_build
// span on tc when this call paid for the build.
func (v *version) ensureTraced(tc *telemetry.TraceContext) {
	if tc == nil {
		v.ensure()
		return
	}
	sp := tc.StartSpan("index_build")
	if v.ensure() {
		sp.End()
	}
}

// cellAt maps a point to its MaxLevel cell code. The domain is the unit
// cube; coordinates must lie in [0, 1).
func cellAt(x, y, z float64) (morton.Code, error) {
	const n = 1 << morton.MaxLevel
	if !(x >= 0 && x < 1 && y >= 0 && y < 1 && z >= 0 && z < 1) {
		return 0, ErrOutOfDomain
	}
	return morton.Encode(uint32(x*n), uint32(y*n), uint32(z*n), morton.MaxLevel), nil
}

// leafAt returns the index of the leaf whose span contains key k, by
// binary search over the Z-ordered keys. Disjoint leaves have disjoint,
// ordered key spans, so the last leaf with key <= k is the container.
func (v *version) leafAt(k uint64) (int, error) {
	i := sort.Search(len(v.keys), func(i int) bool { return v.keys[i] > k }) - 1
	if i < 0 {
		return 0, fmt.Errorf("serve: key %d precedes the first leaf", k)
	}
	lo, hi := v.leaves[i].Code.KeySpan()
	if k < lo || k > hi {
		return 0, fmt.Errorf("serve: key %d falls between leaves; version index is inconsistent", k)
	}
	return i, nil
}

// PointResult is the leaf answering a point lookup.
type PointResult struct {
	Step  uint64
	Code  morton.Code
	Data  [core.DataWords]float64
	Depth uint8 // the leaf's refinement level
}

// Point returns the deepest leaf containing (x, y, z). The modeled cost —
// charged against the pinned device — is the root-to-leaf descent the
// index replaces.
func (s *Snapshot) Point(x, y, z float64) (PointResult, error) {
	return s.PointTraced(nil, x, y, z)
}

// PointTraced is Point with per-phase trace spans: index_build (when this
// request pays for the lazy index), leaf_scan (the binary search), and
// device_read (zero wall time, carrying the modeled descent cost). A nil
// tc means untraced.
func (s *Snapshot) PointTraced(tc *telemetry.TraceContext, x, y, z float64) (PointResult, error) {
	cell, err := cellAt(x, y, z)
	if err != nil {
		return PointResult{}, err
	}
	tc.SetStep(s.Step())
	s.v.ensureTraced(tc)
	scan := tc.StartSpan("leaf_scan")
	i, err := s.v.leafAt(cell.Key())
	scan.End()
	if err != nil {
		return PointResult{}, err
	}
	leaf := s.v.leaves[i]
	dr := tc.StartSpan("device_read")
	modeled := s.v.pin.ChargeReadsModeled(int(leaf.Code.Level())+1, core.RecordSize)
	dr.AddModeled(modeled)
	dr.End()
	return PointResult{
		Step:  s.Step(),
		Code:  leaf.Code,
		Data:  leaf.Data,
		Depth: leaf.Code.Level(),
	}, nil
}

// Box is an axis-aligned region, half-open: [Min, Max) in each dimension,
// within the unit cube.
type Box struct {
	Min [3]float64
	Max [3]float64
}

// KeyRange is an inclusive span of Z-order keys (morton.Code.Key values).
// The zero value means the full key space. A sharded deployment assigns
// each shard a disjoint range; region and aggregate queries filtered by
// range return only leaves the shard is responsible for, so a router can
// scatter one query across the ranges and merge exact, non-overlapping
// results.
type KeyRange struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
}

// FullKeyRange spans every key.
func FullKeyRange() KeyRange { return KeyRange{Lo: 0, Hi: math.MaxUint64} }

// IsFull reports whether the range is unrestricted (the zero value and
// the explicit full range both qualify).
func (kr KeyRange) IsFull() bool {
	return kr.Lo == 0 && (kr.Hi == 0 || kr.Hi == math.MaxUint64)
}

// Contains reports whether key k lies in the range.
func (kr KeyRange) Contains(k uint64) bool {
	return kr.IsFull() || (k >= kr.Lo && k <= kr.Hi)
}

// Intersect returns the overlap of two ranges. An empty intersection is
// returned as {1, 0} (Lo > Hi), which Contains rejects for every key.
func (kr KeyRange) Intersect(o KeyRange) KeyRange {
	a, b := kr.normalized(), o.normalized()
	if a.Lo < b.Lo {
		a.Lo = b.Lo
	}
	if a.Hi > b.Hi {
		a.Hi = b.Hi
	}
	if a.Lo > a.Hi {
		return KeyRange{Lo: 1, Hi: 0}
	}
	return a
}

func (kr KeyRange) normalized() KeyRange {
	if kr.IsFull() {
		return FullKeyRange()
	}
	return kr
}

// LeafHit is one leaf intersecting a region query.
type LeafHit struct {
	Code morton.Code
	Data [core.DataWords]float64
}

// regionWindow computes the contiguous Z-order leaf window that can
// intersect box, returning [first, last] leaf indexes (inclusive) plus
// the descent charge, or ok=false when the box is invalid.
func (v *version) regionWindow(box Box) (first, last int, charge int, err error) {
	for d := 0; d < 3; d++ {
		if !(box.Min[d] < box.Max[d]) || box.Min[d] < 0 || box.Max[d] > 1 {
			return 0, 0, 0, ErrBadRegion
		}
	}
	const n = 1 << morton.MaxLevel
	var loIdx, hiIdx [3]uint32
	for d := 0; d < 3; d++ {
		loIdx[d] = uint32(box.Min[d] * n)
		// Last cell strictly inside the half-open box.
		h := uint32(math.Ceil(box.Max[d]*n)) - 1
		if h > n-1 {
			h = n - 1
		}
		hiIdx[d] = h
	}
	loCell := morton.Encode(loIdx[0], loIdx[1], loIdx[2], morton.MaxLevel)
	hiCell := morton.Encode(hiIdx[0], hiIdx[1], hiIdx[2], morton.MaxLevel)
	// Smallest common ancestor of the box's corner cells: its key span
	// bounds every cell in the box.
	a, b := loCell, hiCell
	for a != b {
		a, b = a.Parent(), b.Parent()
	}
	// The leaf containing the box's min corner may be a strict ancestor
	// of the common ancestor: then the whole box lies inside that one
	// leaf.
	i, err := v.leafAt(loCell.Key())
	if err != nil {
		return 0, 0, 0, err
	}
	if v.leaves[i].Code.Level() < a.Level() {
		return i, i, int(v.leaves[i].Code.Level()) + 1, nil
	}
	lo, hi := a.KeySpan()
	first = sort.Search(len(v.keys), func(i int) bool { return v.keys[i] >= lo })
	last = sort.Search(len(v.keys), func(i int) bool { return v.keys[i] > hi }) - 1
	// Modeled cost: descend to the common ancestor, then walk the pruned
	// subtree window.
	charge = int(a.Level()) + 1 + (last - first + 1)
	return first, last, charge, nil
}

// overlaps reports whether the leaf's half-open cube intersects box.
func overlaps(code morton.Code, box Box) bool {
	x, y, z := code.Center()
	ext := code.Extent()
	min := [3]float64{x - ext/2, y - ext/2, z - ext/2}
	for d := 0; d < 3; d++ {
		if min[d] >= box.Max[d] || box.Min[d] >= min[d]+ext {
			return false
		}
	}
	return true
}

// Region returns every leaf intersecting box, in Z-order.
func (s *Snapshot) Region(box Box) ([]LeafHit, error) {
	return s.RegionInTraced(nil, box, KeyRange{})
}

// RegionIn is Region restricted to leaves whose Z-order key falls in kr —
// the shard-responsibility filter.
func (s *Snapshot) RegionIn(box Box, kr KeyRange) ([]LeafHit, error) {
	return s.RegionInTraced(nil, box, kr)
}

// RegionTraced is Region with per-phase trace spans.
func (s *Snapshot) RegionTraced(tc *telemetry.TraceContext, box Box) ([]LeafHit, error) {
	return s.RegionInTraced(tc, box, KeyRange{})
}

// RegionInTraced is RegionIn with per-phase trace spans.
func (s *Snapshot) RegionInTraced(tc *telemetry.TraceContext, box Box, kr KeyRange) ([]LeafHit, error) {
	tc.SetStep(s.Step())
	s.v.ensureTraced(tc)
	scan := tc.StartSpan("leaf_scan")
	first, last, charge, err := s.v.regionWindow(box)
	if err != nil {
		scan.End()
		return nil, err
	}
	var hits []LeafHit
	for i := first; i <= last; i++ {
		if !kr.Contains(s.v.leaves[i].Code.Key()) {
			continue
		}
		if overlaps(s.v.leaves[i].Code, box) {
			hits = append(hits, LeafHit{Code: s.v.leaves[i].Code, Data: s.v.leaves[i].Data})
		}
	}
	scan.End()
	dr := tc.StartSpan("device_read")
	dr.AddModeled(s.v.pin.ChargeReadsModeled(charge, core.RecordSize))
	dr.End()
	return hits, nil
}

// AggResult summarizes one data field over the leaves intersecting a
// region.
type AggResult struct {
	Step   uint64
	Count  int     // leaves intersecting the region
	Sum    float64 // plain sum of the field over those leaves
	Min    float64
	Max    float64
	VolSum float64 // field weighted by each leaf's cell volume
}

// Aggregate folds data field `field` over every leaf intersecting box.
func (s *Snapshot) Aggregate(field int, box Box) (AggResult, error) {
	return s.AggregateInTraced(nil, field, box, KeyRange{})
}

// AggregateIn is Aggregate restricted to leaves whose Z-order key falls
// in kr. Partial aggregates over disjoint ranges merge exactly: counts
// and sums add, mins and maxes combine.
func (s *Snapshot) AggregateIn(field int, box Box, kr KeyRange) (AggResult, error) {
	return s.AggregateInTraced(nil, field, box, kr)
}

// AggregateTraced is Aggregate with per-phase trace spans.
func (s *Snapshot) AggregateTraced(tc *telemetry.TraceContext, field int, box Box) (AggResult, error) {
	return s.AggregateInTraced(tc, field, box, KeyRange{})
}

// AggregateInTraced is AggregateIn with per-phase trace spans.
func (s *Snapshot) AggregateInTraced(tc *telemetry.TraceContext, field int, box Box, kr KeyRange) (AggResult, error) {
	if field < 0 || field >= core.DataWords {
		return AggResult{}, ErrBadField
	}
	tc.SetStep(s.Step())
	s.v.ensureTraced(tc)
	scan := tc.StartSpan("leaf_scan")
	first, last, charge, err := s.v.regionWindow(box)
	if err != nil {
		scan.End()
		return AggResult{}, err
	}
	res := AggResult{Step: s.Step(), Min: math.Inf(1), Max: math.Inf(-1)}
	for i := first; i <= last; i++ {
		leaf := s.v.leaves[i]
		if !kr.Contains(leaf.Code.Key()) {
			continue
		}
		if !overlaps(leaf.Code, box) {
			continue
		}
		val := leaf.Data[field]
		res.Count++
		res.Sum += val
		if val < res.Min {
			res.Min = val
		}
		if val > res.Max {
			res.Max = val
		}
		ext := leaf.Code.Extent()
		res.VolSum += val * ext * ext * ext
	}
	if res.Count == 0 {
		res.Min, res.Max = 0, 0
	}
	scan.End()
	dr := tc.StartSpan("device_read")
	dr.AddModeled(s.v.pin.ChargeReadsModeled(charge, core.RecordSize))
	dr.End()
	return res, nil
}
