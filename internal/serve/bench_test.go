package serve

import (
	"testing"
)

// benchSnapshot builds a served droplet tree once per benchmark.
func benchSnapshot(b *testing.B) (*Catalog, *Snapshot) {
	b.Helper()
	tree, _ := buildTree(b, 5)
	cat, s := publish(b, tree, Config{})
	s.LeafCount() // force the index build out of the timed section
	return cat, s
}

func BenchmarkServePointLookup(b *testing.B) {
	cat, s := benchSnapshot(b)
	defer cat.Close()
	defer s.Close()
	pts := [][3]float64{
		{0.12, 0.55, 0.81}, {0.5, 0.5, 0.5}, {0.91, 0.07, 0.33}, {0.26, 0.74, 0.48},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pts[i%len(pts)]
		if _, err := s.Point(p[0], p[1], p[2]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeRegionQuery(b *testing.B) {
	cat, s := benchSnapshot(b)
	defer cat.Close()
	defer s.Close()
	box := Box{Min: [3]float64{0.3, 0.3, 0.3}, Max: [3]float64{0.55, 0.55, 0.55}}
	b.ResetTimer()
	leaves := 0
	for i := 0; i < b.N; i++ {
		hits, err := s.Region(box)
		if err != nil {
			b.Fatal(err)
		}
		leaves += len(hits)
	}
	if leaves == 0 {
		b.Fatal("region query hit no leaves")
	}
}
