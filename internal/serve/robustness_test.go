package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmoctree/internal/core"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/sim"
	"pmoctree/internal/telemetry"
)

// TestSchedulerDropsDeadContexts: a request whose context dies while it
// queues must be dropped by the worker before its fn runs — servicing
// the dead would steal capacity from live requests under exactly the
// load that queued it — and a context already dead at admission must be
// rejected without queuing at all.
func TestSchedulerDropsDeadContexts(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewScheduler(SchedulerConfig{Workers: 1, QueueDepth: 4, Registry: reg})
	defer s.Close()

	// Occupy the single worker so the next submit has to queue.
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := s.Do("block", func() (any, error) {
			close(started)
			<-release
			return nil, nil
		})
		if err != nil {
			t.Errorf("blocking request failed: %v", err)
		}
	}()
	<-started

	// Queue a request, kill its context while it waits, then free the
	// worker: the fn must never run and the context's error must come back.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	queued := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(queued)
		_, err := s.DoCtx(ctx, nil, "doomed", func() (any, error) {
			ran.Store(true)
			return nil, nil
		})
		if err != context.Canceled {
			t.Errorf("queued-then-canceled request: err = %v, want context.Canceled", err)
		}
	}()
	<-queued
	time.Sleep(5 * time.Millisecond) // let the submit reach the queue
	cancel()
	close(release)
	wg.Wait()
	if ran.Load() {
		t.Fatal("canceled request's fn ran anyway")
	}

	// Dead at admission: rejected synchronously, never queued.
	dead, kill := context.WithCancel(context.Background())
	kill()
	ran.Store(false)
	if _, err := s.DoCtx(dead, nil, "dead", func() (any, error) {
		ran.Store(true)
		return nil, nil
	}); err != context.Canceled {
		t.Fatalf("dead-at-admission: err = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Fatal("dead-at-admission request's fn ran")
	}
	if got := reg.Snapshot().Counters["serve.sched.dropped"]; got != 2 {
		t.Fatalf("serve.sched.dropped = %d, want 2", got)
	}
}

// TestRetryAfterHeaderClamp: the Retry-After header truncates the hint
// to whole seconds and clamps to at least 1 — a sub-second hint must
// never render as "0", which clients read as "retry immediately" —
// while the JSON body keeps the precise millisecond hint.
func TestRetryAfterHeaderClamp(t *testing.T) {
	cases := []struct {
		hint   time.Duration
		header string
	}{
		{0, "1"},
		{10 * time.Millisecond, "1"},
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "1"}, // truncated, not rounded
		{2 * time.Second, "2"},
		{90 * time.Second, "90"},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		fail(rec, &SaturatedError{RetryAfter: tc.hint})
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("hint %v: status %d, want 503", tc.hint, rec.Code)
		}
		if got := rec.Header().Get("Retry-After"); got != tc.header {
			t.Errorf("hint %v: Retry-After = %q, want %q", tc.hint, got, tc.header)
		}
		var body errResp
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("hint %v: bad body: %v", tc.hint, err)
		}
		if body.RetryAfter != tc.hint.Milliseconds() {
			t.Errorf("hint %v: retry_after_ms = %d, want %d", tc.hint, body.RetryAfter, tc.hint.Milliseconds())
		}
	}
}

// TestDrainerShutdown: Shutdown must flip readiness before the first
// refusal, refuse new requests with 503 + Retry-After, and wait for
// in-flight requests to finish — but only up to its timeout.
func TestDrainerShutdown(t *testing.T) {
	reg := telemetry.NewRegistry()
	health := telemetry.NewHealth()
	health.SetReady(true)
	release := make(chan struct{})
	entered := make(chan struct{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	d := NewDrainer(inner, health, 3*time.Second, reg)

	// One request in flight when the drain begins.
	inflight := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		d.ServeHTTP(inflight, httptest.NewRequest("GET", "/v1/point", nil))
		close(done)
	}()
	<-entered

	shutdownDone := make(chan bool, 1)
	go func() { shutdownDone <- d.Shutdown(5 * time.Second) }()
	for !d.Draining() {
		time.Sleep(time.Millisecond)
	}

	// Readiness flipped before any refusal: the balancer sees the drain.
	ready := httptest.NewRecorder()
	health.ReadyzHandler().ServeHTTP(ready, httptest.NewRequest("GET", "/readyz", nil))
	if ready.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: %d, want 503", ready.Code)
	}

	// New requests are refused, not half-served.
	refused := httptest.NewRecorder()
	d.ServeHTTP(refused, httptest.NewRequest("GET", "/v1/point", nil))
	if refused.Code != http.StatusServiceUnavailable {
		t.Fatalf("refused request: status %d, want 503", refused.Code)
	}
	if got := refused.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("refused request: Retry-After = %q, want \"3\"", got)
	}
	if got := reg.Snapshot().Counters["serve.drain.refused"]; got != 1 {
		t.Fatalf("serve.drain.refused = %d, want 1", got)
	}

	// The in-flight request completes and the drain reports clean.
	close(release)
	<-done
	if inflight.Code != http.StatusOK {
		t.Fatalf("in-flight request: status %d, want 200", inflight.Code)
	}
	if clean := <-shutdownDone; !clean {
		t.Fatal("Shutdown reported timeout with no requests stuck")
	}

	// A wedged in-flight request must not hold the process hostage.
	stuck := NewDrainer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {} // never returns
	}), nil, time.Second, nil)
	go stuck.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	time.Sleep(5 * time.Millisecond)
	if stuck.Shutdown(20 * time.Millisecond) {
		t.Fatal("Shutdown reported clean with a wedged request in flight")
	}
}

// TestRestrictSpanExplicitOverride: a -shard handler's span is its
// *default* responsibility, not a hard filter — explicit klo/khi must
// be honored as given, because every shard process holds the full
// committed image and a router performing peer takeover for a dead
// shard asks a healthy peer for the dead shard's span expecting an
// exact answer. Intersecting instead (the original behavior) silently
// returned a near-empty aggregate for the dead span, unmarked as
// degraded — a wrong answer.
func TestRestrictSpanExplicitOverride(t *testing.T) {
	tree, _ := buildTree(t, 4)
	cat, s := publish(t, tree, Config{})
	defer cat.Close()
	defer s.Close()
	sched := NewScheduler(SchedulerConfig{})
	defer sched.Close()

	// Split the key space at an arbitrary point with leaves on both
	// sides; restrict the handler to the low half.
	leaves, err := s.Region(Box{Min: [3]float64{0, 0, 0}, Max: [3]float64{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	mid := leaves[len(leaves)/2].Code.Key()
	low := KeyRange{Lo: 0, Hi: mid - 1}
	high := KeyRange{Lo: mid, Hi: math.MaxUint64}
	h := NewHandler(cat, sched)
	h.RestrictSpan(low)

	get := func(path string) aggResp {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d: %s", path, rec.Code, rec.Body)
		}
		var out aggResp
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return out
	}

	// No klo/khi: the default span applies.
	want, err := s.AggregateIn(0, Box{Min: [3]float64{0, 0, 0}, Max: [3]float64{1, 1, 1}}, low)
	if err != nil {
		t.Fatal(err)
	}
	if got := get("/v1/agg?field=0"); got.Count != want.Count || got.Sum != want.Sum {
		t.Fatalf("default span: count=%d sum=%v, want count=%d sum=%v", got.Count, got.Sum, want.Count, want.Sum)
	}

	// Explicit klo/khi for the OTHER span: the full copy must answer
	// exactly, not intersect down to nothing.
	want, err = s.AggregateIn(0, Box{Min: [3]float64{0, 0, 0}, Max: [3]float64{1, 1, 1}}, high)
	if err != nil {
		t.Fatal(err)
	}
	if want.Count == 0 {
		t.Fatal("fixture degenerate: no leaves in the high span")
	}
	path := "/v1/agg?field=0&klo=" + strconv.FormatUint(high.Lo, 10) + "&khi=" + strconv.FormatUint(high.Hi, 10)
	if got := get(path); got.Count != want.Count || got.Sum != want.Sum {
		t.Fatalf("takeover span: count=%d sum=%v, want count=%d sum=%v", got.Count, got.Sum, want.Count, want.Sum)
	}
}

// TestCatalogEvictionRace: a writer publishing new versions through a
// keep-1 catalog races readers that acquire, query, and close late —
// deliberately holding snapshots across the eviction of their version.
// Run under -race: an evicted version must stay fully servable until its
// last outstanding snapshot closes.
func TestCatalogEvictionRace(t *testing.T) {
	d := sim.NewDroplet(sim.DropletConfig{Steps: 40})
	tree := core.Create(core.Config{
		NVBMDevice: nvbm.New(nvbm.NVBM, 0),
		DRAMDevice: nvbm.New(nvbm.DRAM, 0),
	})
	tree.SetFeatures(d.Feature(1))
	cat := NewCatalog(tree, Config{Keep: 1})

	handles := make(chan *Snapshot, 64)
	var late []*Snapshot // closed only after every version they pin is evicted
	var lateMu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(keepEvery int) {
			defer wg.Done()
			for s := range handles {
				if n := s.LeafCount(); n == 0 {
					t.Errorf("snapshot step %d: empty leaf index", s.Step())
				}
				if _, err := s.Point(0.5, 0.5, 0.5); err != nil {
					t.Errorf("snapshot step %d: point query: %v", s.Step(), err)
				}
				if s.Step()%uint64(keepEvery) == 0 {
					lateMu.Lock()
					late = append(late, s) // outlive the eviction
					lateMu.Unlock()
				} else {
					s.Close()
				}
			}
		}(2 + i)
	}

	// Writer thread: commit and publish 24 steps; Keep:1 evicts the
	// previous version on every publish while readers still hold it.
	for s := 1; s <= 24; s++ {
		sim.Step(tree, d, s, testMaxLevel)
		tree.SetFeatures(d.Feature(s + 1))
		tree.Persist()
		snap, err := cat.Publish()
		if err != nil {
			t.Fatalf("publish step %d: %v", s, err)
		}
		for i := 0; i < 3; i++ {
			h, err := cat.AcquireLatest()
			if err != nil {
				t.Fatalf("acquire step %d: %v", s, err)
			}
			handles <- h
		}
		snap.Close()
	}
	close(handles)
	wg.Wait()

	// Every late handle still answers queries after its version left the
	// catalog — and after the catalog itself has closed.
	cat.Close()
	for _, s := range late {
		if _, err := s.Point(0.25, 0.75, 0.5); err != nil {
			t.Errorf("late snapshot step %d after catalog close: %v", s.Step(), err)
		}
		s.Close()
	}
}
