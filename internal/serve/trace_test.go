package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pmoctree/internal/telemetry"
)

// checkIdentity asserts the trace accounting identity: the span durations
// plus the derived overhead equal the end-to-end latency exactly, and
// overhead is non-negative (spans are sequential, disjoint phases).
func checkIdentity(t *testing.T, rt telemetry.RequestTrace) {
	t.Helper()
	var spanSum int64
	for _, sp := range rt.Spans {
		spanSum += sp.DurNs
	}
	if spanSum+rt.OverheadNs != rt.TotalNs {
		t.Fatalf("trace %d (%s): spans(%d) + overhead(%d) != total(%d)",
			rt.ID, rt.Kind, spanSum, rt.OverheadNs, rt.TotalNs)
	}
	if rt.OverheadNs < 0 {
		t.Fatalf("trace %d (%s): negative overhead %d", rt.ID, rt.Kind, rt.OverheadNs)
	}
}

func spanNames(rt telemetry.RequestTrace) map[string]telemetry.SpanRecord {
	m := map[string]telemetry.SpanRecord{}
	for _, sp := range rt.Spans {
		m[sp.Name] = sp
	}
	return m
}

// TestRequestTraceEndToEnd: every served query carries a trace that
// decomposes into queue-wait, index, and device-read time, retrievable
// by the X-Trace-Id the response carries.
func TestRequestTraceEndToEnd(t *testing.T) {
	tree, _ := buildTree(t, 3)
	reg := telemetry.NewRegistry()
	cat, s0 := publish(t, tree, Config{Registry: reg})
	s0.Close()
	defer cat.Close()
	sched := NewScheduler(SchedulerConfig{Registry: reg})
	defer sched.Close()
	h := NewHandler(cat, sched)
	sink := telemetry.NewTraceSink(32)
	h.SetTraceSink(sink)
	if h.TraceSink() != sink {
		t.Fatal("TraceSink accessor")
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	queries := []struct {
		path string
		kind string
	}{
		{"/v1/point?x=0.5&y=0.5&z=0.82", "point"},
		{"/v1/region?x0=0.3&y0=0.3&z0=0.3&x1=0.7&y1=0.7&z1=0.9", "region"},
		{"/v1/agg?field=0", "agg"},
	}
	for i, q := range queries {
		resp, err := srv.Client().Get(srv.URL + q.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s -> %d", q.path, resp.StatusCode)
		}
		id := resp.Header.Get("X-Trace-Id")
		if id == "" {
			t.Fatalf("%s: no X-Trace-Id header", q.path)
		}

		tr, err := srv.Client().Get(srv.URL + "/v1/trace?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		var rt telemetry.RequestTrace
		if err := json.NewDecoder(tr.Body).Decode(&rt); err != nil {
			t.Fatalf("/v1/trace?id=%s: %v", id, err)
		}
		tr.Body.Close()
		if rt.Kind != q.kind {
			t.Fatalf("trace kind = %q, want %q", rt.Kind, q.kind)
		}
		if rt.Step != tree.CommittedStep() {
			t.Fatalf("trace step = %d, want %d", rt.Step, tree.CommittedStep())
		}
		checkIdentity(t, rt)

		sp := spanNames(rt)
		for _, want := range []string{"queue_wait", "leaf_scan", "device_read"} {
			if _, ok := sp[want]; !ok {
				t.Fatalf("%s trace missing %q span (have %v)", q.kind, want, rt.Spans)
			}
		}
		if sp["device_read"].ModeledNs == 0 {
			t.Fatalf("%s device_read span carries no modeled time", q.kind)
		}
		// The first query pays the lazy index build; later ones must not.
		if _, ok := sp["index_build"]; ok != (i == 0) {
			t.Fatalf("query %d (%s): index_build presence = %v, want %v", i, q.kind, ok, i == 0)
		}
	}

	// /v1/trace with no id lists recent traces (the three queries plus the
	// trace lookups are not traced — only query endpoints are).
	tr, err := srv.Client().Get(srv.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	var all []telemetry.RequestTrace
	if err := json.NewDecoder(tr.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if len(all) != len(queries) {
		t.Fatalf("retained %d traces, want %d", len(all), len(queries))
	}

	// Per-class scheduler histograms fed by the same requests.
	snap := reg.Snapshot()
	for _, kind := range []string{"point", "region", "agg"} {
		if snap.Histograms["serve.queue_wait_ns."+kind].Count == 0 {
			t.Fatalf("no queue-wait samples for class %q", kind)
		}
		if snap.Histograms["serve.service_ns."+kind].Count == 0 {
			t.Fatalf("no service-time samples for class %q", kind)
		}
	}
}

// TestRequestTraceConcurrentSoak: under concurrent load (run with -race
// in CI), every served query's trace still satisfies the accounting
// identity and lands in the sink.
func TestRequestTraceConcurrentSoak(t *testing.T) {
	tree, _ := buildTree(t, 2)
	reg := telemetry.NewRegistry()
	cat, s0 := publish(t, tree, Config{Registry: reg})
	s0.Close()
	defer cat.Close()
	sched := NewScheduler(SchedulerConfig{Workers: 4, QueueDepth: 256, Registry: reg})
	defer sched.Close()
	h := NewHandler(cat, sched)
	sink := telemetry.NewTraceSink(1024)
	h.SetTraceSink(sink)
	srv := httptest.NewServer(h)
	defer srv.Close()

	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				var path string
				switch i % 3 {
				case 0:
					path = fmt.Sprintf("/v1/point?x=0.%d&y=0.5&z=0.5", (c+i)%10)
				case 1:
					path = "/v1/region?x0=0.2&y0=0.2&z0=0.2&x1=0.8&y1=0.8&z1=0.8"
				default:
					path = "/v1/agg?field=0"
				}
				resp, err := srv.Client().Get(srv.URL + path)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("%s -> %d", path, resp.StatusCode)
					return
				}
				if resp.Header.Get("X-Trace-Id") == "" {
					errs <- fmt.Errorf("%s: served query without a trace", path)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if sink.Total() != clients*perClient {
		t.Fatalf("sink finished %d traces, want %d (every served query traced)", sink.Total(), clients*perClient)
	}
	for _, rt := range sink.Recent(0) {
		checkIdentity(t, rt)
		if rt.Err != "" {
			t.Fatalf("trace %d unexpectedly failed: %s", rt.ID, rt.Err)
		}
	}
}

// TestSchedulerRejectionObservability: a saturated admission queue must
// increment serve.sched.rejected, record a flight event, and surface
// RetryAfter in the HTTP 503's Retry-After header.
func TestSchedulerRejectionObservability(t *testing.T) {
	tree, _ := buildTree(t, 2)
	reg := telemetry.NewRegistry()
	flight := telemetry.NewFlightRecorder(64)
	cat, s0 := publish(t, tree, Config{Registry: reg})
	s0.Close()
	defer cat.Close()
	sched := NewScheduler(SchedulerConfig{
		Workers:    1,
		QueueDepth: 1,
		BatchSize:  1,
		RetryAfter: 1700 * time.Millisecond,
		Registry:   reg,
		Recorder:   flight,
	})
	defer sched.Close()
	srv := httptest.NewServer(NewHandler(cat, sched))
	defer srv.Close()

	// Occupy the single worker, then the single queue slot.
	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = sched.Do("block", func() (any, error) { close(started); <-gate; return nil, nil })
	}()
	<-started
	go func() {
		defer wg.Done()
		_, _ = sched.Do("queued", func() (any, error) { return nil, nil })
	}()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Gauges["serve.queue.depth"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := srv.Client().Get(srv.URL + "/v1/point?x=0.5&y=0.5&z=0.5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	close(gate)
	wg.Wait()
	if resp.StatusCode != 503 {
		t.Fatalf("saturated query -> %d, want 503", resp.StatusCode)
	}
	// RetryAfter is 1.7s; the header rounds down to whole seconds with a
	// floor of 1, so it must read exactly "1".
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After header = %q, want \"1\"", got)
	}

	if n := reg.Counter("serve.sched.rejected").Value(); n == 0 {
		t.Fatal("serve.sched.rejected never incremented")
	}
	if n := reg.Counter("serve.rejected").Value(); n == 0 {
		t.Fatal("serve.rejected (legacy name) never incremented")
	}
	found := false
	for _, ev := range flight.Events() {
		if ev.Kind == "reject" {
			found = true
		}
	}
	if !found {
		t.Fatal("no reject event in the flight recorder")
	}
}

// TestTraceEndpointWithoutSink: /v1/trace is a clean 404 when tracing is
// off, and query responses carry no trace header.
func TestTraceEndpointWithoutSink(t *testing.T) {
	tree, _ := buildTree(t, 2)
	cat, s0 := publish(t, tree, Config{})
	s0.Close()
	defer cat.Close()
	sched := NewScheduler(SchedulerConfig{})
	defer sched.Close()
	srv := httptest.NewServer(NewHandler(cat, sched))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/point?x=0.5&y=0.5&z=0.5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("point -> %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-Id") != "" {
		t.Fatal("untraced handler emitted X-Trace-Id")
	}
	resp, err = srv.Client().Get(srv.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("/v1/trace without a sink -> %d, want 404", resp.StatusCode)
	}
}
