package nvbm

import (
	"hash/crc32"
	"math/rand"
	"sort"
	"sync/atomic"
)

// Fault model. Real NVBM fails less cleanly than an atomic stop: a power
// cut tears the in-flight store at cache-line granularity, media cells rot
// silently, and worn-out lines stop accepting writes. This file adds those
// failure modes to the emulated Device, plus the self-healing machinery
// layered on top: a per-line CRC shadow (the "media ECC" a controller would
// keep), a scrub pass that detects corrupt lines and repairs them from a
// commit-consistent source (the replica), and remapping of worn-out lines
// onto spare lines.
//
// All fault state is opt-in and seeded, so the default device is exactly as
// fast and exactly as deterministic as before: with media tracking off and
// no wear limit, WriteAt takes the original fast path and no CRC is
// maintained.
//
// Concurrency: media tracking recomputes whole-line CRCs on write, so two
// shared-lock writers (WriteAt) sharing a cache line would race on the CRC
// even when their byte ranges are disjoint. With tracking on, enable only
// single-writer phases or line-disjoint access patterns per lock class —
// or route one side through WriteAtExclusive, which serializes against
// every other access, as the persist pipeline's background writeback does
// (its slot payloads are not line-aligned).

// zeroLineCRC is the CRC-32 of an all-zero full line, used to initialize
// the shadow for freshly grown (zeroed) capacity.
var zeroLineCRC = crc32.ChecksumIEEE(make([]byte, LineSize))

// EnableMediaTracking turns on the per-line CRC shadow for an NVBM device,
// computing checksums for the current contents. Subsequent legitimate
// writes keep the shadow in sync (torn writes update it for the lines that
// landed — tearing is a crash artifact, not media damage); out-of-band
// corruption injected with FlipBit shows up as a CRC mismatch.
func (d *Device) EnableMediaTracking() {
	if d.kind != NVBM {
		panic("nvbm: media tracking is NVBM-only")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lineCRC = make([]uint32, len(d.wear))
	for line := range d.lineCRC {
		d.lineCRC[line] = d.lineChecksumLocked(line)
	}
	d.track.Store(true)
}

// MediaTracking reports whether the per-line CRC shadow is maintained.
func (d *Device) MediaTracking() bool { return d.track.Load() }

// SetWearLimit sets the wear-out threshold: once a line's wear counter
// reaches limit, further stores to it are silently dropped (the cell is
// stuck) until a scrub pass remaps it onto a spare line. 0 disables.
func (d *Device) SetWearLimit(limit uint32) { d.wearLimit.Store(limit) }

// WearLimit returns the wear-out threshold (0 = unlimited endurance).
func (d *Device) WearLimit() uint32 { return d.wearLimit.Load() }

// SetSpareLines sets the pool of spare lines available for remapping
// worn-out lines during scrub.
func (d *Device) SetSpareLines(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.spare = n
}

// SpareLines returns the number of unconsumed spare lines.
func (d *Device) SpareLines() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.spare
}

// CutPowerAfterTorn arms a power cut like CutPowerAfter, but the write
// that trips the countdown is torn: a seeded prefix or random subset of
// its cache lines persists before the device dies, instead of the whole
// store being dropped atomically. This is the fault model of Ben-David et
// al.: at failure, each outstanding cache line independently either
// reached the media or did not.
func (d *Device) CutPowerAfterTorn(n int, seed int64) {
	if n < 0 {
		panic("nvbm: negative power-cut countdown")
	}
	d.tornSeed.Store(seed)
	d.tornPending.Store(true)
	d.powerCut.Store(int64(n))
}

// tearWrite persists a seeded subset of the cache lines of the write
// (off, p) — the final store in flight when power failed. Wear and the
// CRC shadow are updated for lines that landed (the media saw a complete
// line store); nothing is charged to statistics, since the machine died
// before the access completed.
func (d *Device) tearWrite(off int, p []byte) {
	if len(p) == 0 {
		return
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if off < 0 || off+len(p) > len(d.data) {
		return
	}
	rng := rand.New(rand.NewSource(d.tornSeed.Load()))
	first := off / LineSize
	last := (off + len(p) - 1) / LineSize
	n := last - first + 1
	prefixMode := rng.Intn(2) == 0
	keep := rng.Intn(n + 1)
	dropped := 0
	for i := 0; i < n; i++ {
		persist := i < keep
		if !prefixMode {
			persist = rng.Intn(2) == 0
		}
		if !persist {
			dropped++
			continue
		}
		line := first + i
		lo := max(off, line*LineSize)
		hi := min(off+len(p), (line+1)*LineSize)
		copy(d.data[lo:hi], p[lo-off:hi-off])
		if line < len(d.wear) {
			atomic.AddUint32(&d.wear[line], 1)
		}
		if d.track.Load() && line < len(d.lineCRC) {
			atomic.StoreUint32(&d.lineCRC[line], d.lineChecksumLocked(line))
		}
	}
	d.tornWrites.Add(1)
	d.tornDropped.Add(uint64(dropped))
}

// FlipBit flips one bit of device contents in place without touching the
// CRC shadow, modeling silent media corruption (bit-rot). Returns false if
// off is out of range. Detection requires media tracking.
func (d *Device) FlipBit(off int, bit uint8) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 || off >= len(d.data) {
		return false
	}
	d.data[off] ^= 1 << (bit % 8)
	d.bitFlips.Add(1)
	return true
}

// RangeCorrupt reports whether any line overlapping [off, off+n) fails its
// CRC check. Always false when media tracking is off. The check models the
// controller's ECC verify and is not charged latency.
func (d *Device) RangeCorrupt(off, n int) bool {
	if !d.track.Load() || n <= 0 {
		return false
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if off < 0 {
		off = 0
	}
	end := off + n
	if end > len(d.data) {
		end = len(d.data)
	}
	if off >= end {
		return false
	}
	for line := off / LineSize; line <= (end-1)/LineSize; line++ {
		if line < len(d.lineCRC) && d.lineChecksumLocked(line) != atomic.LoadUint32(&d.lineCRC[line]) {
			return true
		}
	}
	return false
}

// CorruptLines returns the indices of all lines whose contents fail the
// CRC check, in ascending order. Empty when media tracking is off.
func (d *Device) CorruptLines() []int {
	if !d.track.Load() {
		return nil
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	var bad []int
	for line := range d.lineCRC {
		if d.lineChecksumLocked(line) != d.lineCRC[line] {
			bad = append(bad, line)
		}
	}
	return bad
}

// StuckLines returns the indices of lines whose wear has reached the
// wear-out threshold (writes to them are being dropped), ascending.
func (d *Device) StuckLines() []int {
	limit := d.wearLimit.Load()
	if limit == 0 {
		return nil
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	var stuck []int
	for line := range d.wear {
		if atomic.LoadUint32(&d.wear[line]) >= limit {
			stuck = append(stuck, line)
		}
	}
	sort.Ints(stuck)
	return stuck
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	LinesScanned int    // lines checked against the CRC shadow
	Corrupt      int    // lines whose contents failed the check
	Repaired     int    // corrupt lines rewritten from the source
	Remapped     int    // worn-out lines remapped onto spares
	Unrepairable int    // lines left corrupt or stuck (no source / no spare)
	SparesLeft   int    // spare lines remaining after the pass
	ModeledNs    uint64 // modeled device time charged for the pass
}

// Scrub runs one media scrub pass: every line is read and checked against
// the CRC shadow; corrupt lines are repaired by fetching their contents
// from src, and worn-out lines are remapped onto spare lines (resetting
// their wear). src fills p with the authoritative bytes at device offset
// off and reports whether it could; it must be commit-consistent with this
// device (a replica synced at the current committed version), otherwise
// repair would roll lines back across versions. A nil src detects and
// remaps but cannot repair.
//
// The pass charges one modeled line read per scanned line and one modeled
// line write per repaired or remapped line, the cost a background scrubber
// would impose on the device.
func (d *Device) Scrub(src func(off int, p []byte) bool) ScrubReport {
	var rep ScrubReport
	if !d.track.Load() {
		return rep
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	limit := d.wearLimit.Load()
	buf := make([]byte, LineSize)
	ns0 := d.modeledNs.Load()
	for line := range d.lineCRC {
		rep.LinesScanned++
		lo := line * LineSize
		hi := min(lo+LineSize, len(d.data))
		stuck := limit > 0 && atomic.LoadUint32(&d.wear[line]) >= limit
		bad := d.lineChecksumLocked(line) != d.lineCRC[line]
		if !bad && !stuck {
			continue
		}
		if bad {
			rep.Corrupt++
		}
		if stuck {
			if d.spare > 0 {
				// Remap onto a spare line: the logical line now maps to a
				// fresh cell, so its wear history restarts.
				d.spare--
				atomic.StoreUint32(&d.wear[line], 0)
				rep.Remapped++
			} else {
				rep.Unrepairable++
				continue // cannot write this line; repair is impossible
			}
		}
		if bad || stuck {
			// Refresh contents from the commit-consistent source. For a
			// remapped (but CRC-clean) line this heals any store that was
			// silently dropped while the cell was stuck.
			b := buf[:hi-lo]
			if src != nil && src(lo, b) {
				copy(d.data[lo:hi], b)
				atomic.AddUint32(&d.wear[line], 1)
				d.lineCRC[line] = d.lineChecksumLocked(line)
				if bad {
					rep.Repaired++
				}
			} else if bad {
				rep.Unrepairable++
			}
		}
	}
	d.ChargeReadN(rep.LinesScanned, LineSize)
	d.ChargeWriteN(rep.Repaired+rep.Remapped, LineSize)
	rep.ModeledNs = d.modeledNs.Load() - ns0
	rep.SparesLeft = d.spare
	d.scrubPasses++
	d.scrubScanned += uint64(rep.LinesScanned)
	d.scrubCorrupt += uint64(rep.Corrupt)
	d.scrubRepaired += uint64(rep.Repaired)
	d.scrubRemapped += uint64(rep.Remapped)
	d.scrubUnrepairable += uint64(rep.Unrepairable)
	return rep
}

// FaultStats is a snapshot of the device's fault and self-healing
// counters, published through the telemetry layer.
type FaultStats struct {
	TornWrites       uint64 // power cuts that tore an in-flight write
	TornLinesDropped uint64 // cache lines of torn writes that never landed
	BitFlips         uint64 // injected bit-rot events
	StuckWrites      uint64 // line stores dropped by worn-out cells
	ScrubPasses      uint64
	LinesScrubbed    uint64
	CorruptFound     uint64
	LinesRepaired    uint64
	LinesRemapped    uint64
	Unrepairable     uint64
	SparesLeft       int
}

// FaultStats returns the current fault counters.
func (d *Device) FaultStats() FaultStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return FaultStats{
		TornWrites:       d.tornWrites.Load(),
		TornLinesDropped: d.tornDropped.Load(),
		BitFlips:         d.bitFlips.Load(),
		StuckWrites:      d.stuckWrites.Load(),
		ScrubPasses:      d.scrubPasses,
		LinesScrubbed:    d.scrubScanned,
		CorruptFound:     d.scrubCorrupt,
		LinesRepaired:    d.scrubRepaired,
		LinesRemapped:    d.scrubRemapped,
		Unrepairable:     d.scrubUnrepairable,
		SparesLeft:       d.spare,
	}
}

// lineChecksumLocked computes the CRC-32 of one line's current contents.
// Caller holds d.mu (either mode).
func (d *Device) lineChecksumLocked(line int) uint32 {
	lo := line * LineSize
	hi := min(lo+LineSize, len(d.data))
	if lo >= hi {
		return zeroLineCRC
	}
	return crc32.ChecksumIEEE(d.data[lo:hi])
}

// writeLinesLocked is the slow write path, taken when a wear limit or
// media tracking is active: the store is applied line by line so that
// worn-out lines can drop it and the CRC shadow stays in sync. Caller
// holds d.mu (RLock on the WriteAt path, Lock on the WriteAtExclusive
// path) and has bounds-checked (off, p).
func (d *Device) writeLinesLocked(off int, p []byte) {
	limit := d.wearLimit.Load()
	track := d.track.Load()
	first := off / LineSize
	last := (off + len(p) - 1) / LineSize
	for line := first; line <= last; line++ {
		lo := max(off, line*LineSize)
		hi := min(off+len(p), (line+1)*LineSize)
		if line >= len(d.wear) {
			copy(d.data[lo:hi], p[lo-off:hi-off])
			continue
		}
		if limit > 0 && atomic.LoadUint32(&d.wear[line]) >= limit {
			// Worn-out cell: the store silently never reaches the media.
			d.stuckWrites.Add(1)
			continue
		}
		copy(d.data[lo:hi], p[lo-off:hi-off])
		atomic.AddUint32(&d.wear[line], 1)
		if track && line < len(d.lineCRC) {
			atomic.StoreUint32(&d.lineCRC[line], d.lineChecksumLocked(line))
		}
	}
}
