package nvbm

import "testing"

// A delta across ResetStats must clamp to zero, not wrap to ~2^64: the
// telemetry layer differences snapshots blindly.
func TestStatsSubSaturates(t *testing.T) {
	d := New(NVBM, LineSize)
	buf := make([]byte, 8)
	for i := 0; i < 5; i++ {
		d.WriteAt(0, buf)
		d.ReadAt(0, buf)
	}
	before := d.Stats()
	d.ResetStats()
	d.WriteAt(0, buf)
	delta := d.Stats().Sub(before)
	if delta.Reads != 0 || delta.ReadBytes != 0 || delta.ModeledNs != 0 {
		t.Errorf("delta across ResetStats wrapped: %+v", delta)
	}
	if delta.Writes != 0 {
		t.Errorf("Writes delta = %d, want 0 (1 new write < 5 before reset)", delta.Writes)
	}
}

func TestStatsSubExactDeltas(t *testing.T) {
	d := New(NVBM, LineSize)
	buf := make([]byte, 8)
	d.WriteAt(0, buf)
	before := d.Stats()
	d.WriteAt(0, buf)
	d.WriteAt(0, buf)
	d.ReadAt(0, buf)
	delta := d.Stats().Sub(before)
	if delta.Writes != 2 || delta.Reads != 1 {
		t.Errorf("delta = %d writes / %d reads, want 2/1", delta.Writes, delta.Reads)
	}
	if delta.WriteBytes != 16 || delta.ReadBytes != 8 {
		t.Errorf("delta bytes = %dW/%dR, want 16/8", delta.WriteBytes, delta.ReadBytes)
	}
	if delta.ModeledNs == 0 {
		t.Error("ModeledNs delta = 0, want > 0")
	}
}

func TestWearStatsSub(t *testing.T) {
	d := New(NVBM, 4*LineSize)
	buf := make([]byte, 8)
	d.WriteAt(0, buf)
	d.WriteAt(0, buf)
	before := d.Wear()
	d.WriteAt(0, buf)
	d.WriteAt(LineSize, buf)
	after := d.Wear()

	delta := after.Sub(before)
	if delta.TotalWear != 2 {
		t.Errorf("TotalWear delta = %d, want 2", delta.TotalWear)
	}
	// Lines and MaxWear are point-in-time, not differenced: the hottest
	// line's identity may change between snapshots.
	if delta.Lines != after.Lines {
		t.Errorf("Lines = %d, want the later snapshot's %d", delta.Lines, after.Lines)
	}
	if delta.MaxWear != after.MaxWear {
		t.Errorf("MaxWear = %d, want the later snapshot's %d", delta.MaxWear, after.MaxWear)
	}
}

// Wear survives ResetStats (endurance damage is permanent), so a wear
// delta straddling a reset still measures real writes — unlike the access
// counters, which clamp.
func TestWearSurvivesResetStats(t *testing.T) {
	d := New(NVBM, LineSize)
	buf := make([]byte, 8)
	d.WriteAt(0, buf)
	before := d.Wear()
	d.ResetStats()
	d.WriteAt(0, buf)
	delta := d.Wear().Sub(before)
	if delta.TotalWear != 1 {
		t.Errorf("TotalWear delta across ResetStats = %d, want 1", delta.TotalWear)
	}
}

func TestWearStatsSubSaturates(t *testing.T) {
	a := WearStats{Lines: 1, MaxWear: 1, TotalWear: 1}
	b := WearStats{Lines: 2, MaxWear: 5, TotalWear: 10}
	if got := a.Sub(b).TotalWear; got != 0 {
		t.Errorf("TotalWear = %d, want 0 (saturating)", got)
	}
}
