package nvbm

import (
	"fmt"
	"time"
)

// Stats is a point-in-time snapshot of a Device's access counters.
type Stats struct {
	Kind       Kind
	Reads      uint64 // read operations
	Writes     uint64 // write operations
	ReadBytes  uint64
	WriteBytes uint64
	ModeledNs  uint64 // accumulated modeled latency
}

// Stats returns a snapshot of the device's counters.
func (d *Device) Stats() Stats {
	return Stats{
		Kind:       d.kind,
		Reads:      d.reads.Load(),
		Writes:     d.writes.Load(),
		ReadBytes:  d.readBytes.Load(),
		WriteBytes: d.writeBytes.Load(),
		ModeledNs:  d.modeledNs.Load(),
	}
}

// ResetStats zeroes all access counters. Wear counters are not reset:
// endurance damage is permanent.
func (d *Device) ResetStats() {
	d.reads.Store(0)
	d.writes.Store(0)
	d.readBytes.Store(0)
	d.writeBytes.Store(0)
	d.modeledNs.Store(0)
}

// Accesses returns the total number of read and write operations.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// WriteFraction returns the fraction of accesses that were writes, in
// [0,1]. It returns 0 when no accesses have occurred.
func (s Stats) WriteFraction() float64 {
	total := s.Accesses()
	if total == 0 {
		return 0
	}
	return float64(s.Writes) / float64(total)
}

// Modeled returns the accumulated modeled latency as a time.Duration.
func (s Stats) Modeled() time.Duration { return time.Duration(s.ModeledNs) }

// satSub subtracts saturating at zero. A counter can read lower than an
// earlier snapshot after ResetStats (or a snapshot taken on a different
// device); a delta must then clamp rather than wrap to ~2^64.
func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Sub returns the counter deltas s - earlier, for interval measurements.
// Deltas saturate at zero, so a snapshot pair straddling ResetStats
// yields zeros instead of wrapped garbage.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{
		Kind:       s.Kind,
		Reads:      satSub(s.Reads, earlier.Reads),
		Writes:     satSub(s.Writes, earlier.Writes),
		ReadBytes:  satSub(s.ReadBytes, earlier.ReadBytes),
		WriteBytes: satSub(s.WriteBytes, earlier.WriteBytes),
		ModeledNs:  satSub(s.ModeledNs, earlier.ModeledNs),
	}
}

// Add returns the counter sums s + other. Kind is taken from s.
func (s Stats) Add(other Stats) Stats {
	return Stats{
		Kind:       s.Kind,
		Reads:      s.Reads + other.Reads,
		Writes:     s.Writes + other.Writes,
		ReadBytes:  s.ReadBytes + other.ReadBytes,
		WriteBytes: s.WriteBytes + other.WriteBytes,
		ModeledNs:  s.ModeledNs + other.ModeledNs,
	}
}

// String formats the snapshot for humans.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d reads (%d B), %d writes (%d B), modeled %v",
		s.Kind, s.Reads, s.ReadBytes, s.Writes, s.WriteBytes, s.Modeled())
}

// WearStats summarizes per-line write wear of an NVBM device.
type WearStats struct {
	Lines     int    // number of tracked lines
	MaxWear   uint32 // writes to the most-written line
	TotalWear uint64
}

// Wear returns wear statistics. For DRAM devices it returns a zero value:
// DRAM endurance is effectively unlimited.
func (d *Device) Wear() WearStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var ws WearStats
	ws.Lines = len(d.wear)
	for i := range d.wear {
		w := d.wear[i]
		ws.TotalWear += uint64(w)
		if w > ws.MaxWear {
			ws.MaxWear = w
		}
	}
	return ws
}

// WearMax returns the highest per-line write count within the byte range
// [from, to) — for separating data-region wear from metadata hot spots.
func (d *Device) WearMax(from, to int) uint32 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var m uint32
	lo := from / LineSize
	hi := (to + LineSize - 1) / LineSize
	if hi > len(d.wear) {
		hi = len(d.wear)
	}
	for i := lo; i < hi && i >= 0; i++ {
		if d.wear[i] > m {
			m = d.wear[i]
		}
	}
	return m
}

// Sub returns the wear accumulated since an earlier snapshot. TotalWear
// differences saturating at zero (wear never decreases, but snapshots of
// different devices must not wrap). Lines and MaxWear are NOT deltas:
// both are point-in-time properties — a line count can shrink only by
// swapping devices, and the hottest line's identity can change between
// snapshots, so a MaxWear difference would mix two different lines. Sub
// keeps the later snapshot's values for them; interval analyses should
// use TotalWear (and MeanWear derived from it) only.
func (ws WearStats) Sub(earlier WearStats) WearStats {
	return WearStats{
		Lines:     ws.Lines,
		MaxWear:   ws.MaxWear,
		TotalWear: satSub(ws.TotalWear, earlier.TotalWear),
	}
}

// MeanWear returns the average writes per line, or 0 with no lines.
func (ws WearStats) MeanWear() float64 {
	if ws.Lines == 0 {
		return 0
	}
	return float64(ws.TotalWear) / float64(ws.Lines)
}

// WearImbalance returns max/mean wear, a measure of hot-spotting; 0 when
// unwritten. Values near 1 indicate even wear-leveling.
func (ws WearStats) WearImbalance() float64 {
	m := ws.MeanWear()
	if m == 0 {
		return 0
	}
	return float64(ws.MaxWear) / m
}
