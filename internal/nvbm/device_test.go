package nvbm

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	if DRAM.String() != "DRAM" {
		t.Errorf("DRAM.String() = %q", DRAM.String())
	}
	if NVBM.String() != "NVBM" {
		t.Errorf("NVBM.String() = %q", NVBM.String())
	}
	if got := Kind(9).String(); got != "Kind(9)" {
		t.Errorf("Kind(9).String() = %q", got)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := New(NVBM, 256)
	msg := []byte("persistent octants live here")
	d.WriteAt(10, msg)
	got := make([]byte, len(msg))
	d.ReadAt(10, got)
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip: got %q want %q", got, msg)
	}
}

func TestWordHelpers(t *testing.T) {
	d := New(NVBM, 64)
	d.WriteU64(0, 0xdeadbeefcafef00d)
	if got := d.ReadU64(0); got != 0xdeadbeefcafef00d {
		t.Errorf("ReadU64 = %#x", got)
	}
	d.WriteU32(8, 0x12345678)
	if got := d.ReadU32(8); got != 0x12345678 {
		t.Errorf("ReadU32 = %#x", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := New(DRAM, 16)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"read past end", func() { d.ReadAt(10, make([]byte, 10)) }},
		{"write past end", func() { d.WriteAt(16, []byte{1}) }},
		{"negative read", func() { d.ReadAt(-1, make([]byte, 1)) }},
		{"negative write", func() { d.WriteAt(-1, []byte{1}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestGrowPreservesContents(t *testing.T) {
	d := New(NVBM, 8)
	d.WriteAt(0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	d.Grow(1024)
	if d.Size() != 1024 {
		t.Fatalf("Size = %d after Grow(1024)", d.Size())
	}
	got := make([]byte, 8)
	d.ReadAt(0, got)
	if !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Errorf("contents lost on grow: %v", got)
	}
	// Growing smaller is a no-op.
	d.Grow(100)
	if d.Size() != 1024 {
		t.Errorf("Grow shrank the device to %d", d.Size())
	}
}

func TestStatsAccounting(t *testing.T) {
	d := New(NVBM, 4096)
	d.WriteAt(0, make([]byte, 64))   // one line: 150 ns
	d.WriteAt(64, make([]byte, 128)) // two lines: 300 ns
	d.ReadAt(0, make([]byte, 64))    // one line: 100 ns
	s := d.Stats()
	if s.Writes != 2 || s.Reads != 1 {
		t.Fatalf("ops: %d writes %d reads", s.Writes, s.Reads)
	}
	if s.WriteBytes != 192 || s.ReadBytes != 64 {
		t.Fatalf("bytes: %d written %d read", s.WriteBytes, s.ReadBytes)
	}
	want := uint64(150 + 300 + 100)
	if s.ModeledNs != want {
		t.Errorf("ModeledNs = %d, want %d", s.ModeledNs, want)
	}
	if s.Accesses() != 3 {
		t.Errorf("Accesses = %d", s.Accesses())
	}
	if wf := s.WriteFraction(); wf < 0.66 || wf > 0.67 {
		t.Errorf("WriteFraction = %v", wf)
	}
	d.ResetStats()
	if d.Stats().Accesses() != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestStatsSubAdd(t *testing.T) {
	d := New(DRAM, 128)
	d.WriteAt(0, make([]byte, 8))
	before := d.Stats()
	d.WriteAt(0, make([]byte, 8))
	d.ReadAt(0, make([]byte, 8))
	delta := d.Stats().Sub(before)
	if delta.Writes != 1 || delta.Reads != 1 {
		t.Errorf("delta = %+v", delta)
	}
	sum := before.Add(delta)
	if sum.Writes != d.Stats().Writes {
		t.Errorf("Add mismatch: %+v vs %+v", sum, d.Stats())
	}
	if s := d.Stats().String(); s == "" {
		t.Error("empty Stats.String")
	}
}

func TestWriteFractionEmpty(t *testing.T) {
	var s Stats
	if s.WriteFraction() != 0 {
		t.Error("WriteFraction of empty stats should be 0")
	}
}

func TestLatencyModel(t *testing.T) {
	lat := DefaultLatency(NVBM)
	if lat.ReadNanos(1) != NVBMReadNs {
		t.Errorf("1-byte read = %d", lat.ReadNanos(1))
	}
	if lat.ReadNanos(64) != NVBMReadNs {
		t.Errorf("64-byte read = %d", lat.ReadNanos(64))
	}
	if lat.ReadNanos(65) != 2*NVBMReadNs {
		t.Errorf("65-byte read = %d", lat.ReadNanos(65))
	}
	if lat.WriteNanos(4096) != NVBMWriteNs*64 {
		t.Errorf("page write = %d", lat.WriteNanos(4096))
	}
	dl := DefaultLatency(DRAM)
	if dl.WriteNanos(64) != DRAMWriteNs {
		t.Errorf("DRAM write = %d", dl.WriteNanos(64))
	}
}

func TestNVBMWriteSlowerThanDRAM(t *testing.T) {
	// The core premise of the paper: NVBM writes are 2.5x DRAM writes.
	n := DefaultLatency(NVBM)
	dr := DefaultLatency(DRAM)
	if float64(n.WriteNanos(64))/float64(dr.WriteNanos(64)) != 2.5 {
		t.Errorf("NVBM/DRAM write ratio = %v, want 2.5",
			float64(n.WriteNanos(64))/float64(dr.WriteNanos(64)))
	}
}

func TestCrashSemantics(t *testing.T) {
	dram := New(DRAM, 32)
	nv := New(NVBM, 32)
	payload := []byte("state")
	dram.WriteAt(0, payload)
	nv.WriteAt(0, payload)
	dram.Crash()
	nv.Crash()
	got := make([]byte, len(payload))
	dram.ReadAt(0, got)
	if !bytes.Equal(got, make([]byte, len(payload))) {
		t.Errorf("DRAM survived crash: %q", got)
	}
	nv.ReadAt(0, got)
	if !bytes.Equal(got, payload) {
		t.Errorf("NVBM lost data on crash: %q", got)
	}
}

func TestWearTracking(t *testing.T) {
	d := New(NVBM, 4*LineSize)
	for i := 0; i < 10; i++ {
		d.WriteAt(0, make([]byte, 8)) // line 0, ten times
	}
	d.WriteAt(LineSize, make([]byte, 8)) // line 1, once
	ws := d.Wear()
	if ws.MaxWear != 10 {
		t.Errorf("MaxWear = %d, want 10", ws.MaxWear)
	}
	if ws.TotalWear != 11 {
		t.Errorf("TotalWear = %d, want 11", ws.TotalWear)
	}
	if ws.Lines != 4 {
		t.Errorf("Lines = %d, want 4", ws.Lines)
	}
	if mw := ws.MeanWear(); mw != 11.0/4 {
		t.Errorf("MeanWear = %v", mw)
	}
	if ws.WearImbalance() <= 1 {
		t.Errorf("WearImbalance = %v, want > 1 for hot-spotted device", ws.WearImbalance())
	}
}

func TestWearSpanningLines(t *testing.T) {
	d := New(NVBM, 4*LineSize)
	// A write covering lines 0..2 must wear all three.
	d.WriteAt(0, make([]byte, 3*LineSize))
	ws := d.Wear()
	if ws.TotalWear != 3 {
		t.Errorf("TotalWear = %d, want 3", ws.TotalWear)
	}
}

func TestDRAMHasNoWear(t *testing.T) {
	d := New(DRAM, 256)
	d.WriteAt(0, make([]byte, 64))
	ws := d.Wear()
	if ws.Lines != 0 || ws.TotalWear != 0 {
		t.Errorf("DRAM wear tracked: %+v", ws)
	}
	if ws.MeanWear() != 0 || ws.WearImbalance() != 0 {
		t.Errorf("DRAM wear stats nonzero: %+v", ws)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	d := New(NVBM, 300)
	d.WriteAt(7, []byte("octree image"))
	var buf bytes.Buffer
	if err := d.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	d2 := New(NVBM, 0)
	if err := d2.RestoreFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if d2.Size() != 300 {
		t.Fatalf("restored size = %d", d2.Size())
	}
	got := make([]byte, 12)
	d2.ReadAt(7, got)
	if string(got) != "octree image" {
		t.Errorf("restored contents = %q", got)
	}
}

func TestSnapshotRejectsDRAM(t *testing.T) {
	d := New(DRAM, 16)
	if err := d.SnapshotTo(&bytes.Buffer{}); err == nil {
		t.Error("snapshotting DRAM should fail")
	}
}

func TestRestoreRejectsCorruptImage(t *testing.T) {
	d := New(NVBM, 128)
	d.WriteAt(0, []byte("payload"))
	var buf bytes.Buffer
	if err := d.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, img...)
		bad[0] ^= 0xff
		if err := New(NVBM, 0).RestoreFrom(bytes.NewReader(bad)); err == nil {
			t.Error("expected magic error")
		}
	})
	t.Run("bad crc", func(t *testing.T) {
		bad := append([]byte{}, img...)
		bad[20] ^= 0xff // inside data
		if err := New(NVBM, 0).RestoreFrom(bytes.NewReader(bad)); err == nil {
			t.Error("expected checksum error")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if err := New(NVBM, 0).RestoreFrom(bytes.NewReader(img[:10])); err == nil {
			t.Error("expected truncation error")
		}
	})
}

func TestPersistOpenFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "region.img")
	d := New(NVBM, 128)
	d.WriteU64(0, 42)
	if err := d.PersistFile(path); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.ReadU64(0); got != 42 {
		t.Errorf("ReadU64 after reopen = %d", got)
	}
}

func TestOpenFileMissing(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "nope.img")); err == nil {
		t.Error("expected error opening missing image")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := New(NVBM, 64)
	d.WriteU64(0, 7)
	c := d.Clone()
	d.WriteU64(0, 8)
	if c.ReadU64(0) != 7 {
		t.Error("clone shares storage with original")
	}
	if c.Stats().Reads == 0 {
		t.Skip("clone read accounted") // the read above counts on the clone
	}
}

func TestBytesCopy(t *testing.T) {
	d := New(NVBM, 16)
	d.WriteAt(0, []byte{9})
	b := d.Bytes()
	b[0] = 1
	got := make([]byte, 1)
	d.ReadAt(0, got)
	if got[0] != 9 {
		t.Error("Bytes returned aliasing slice")
	}
}

func TestDelayInjectionToggle(t *testing.T) {
	d := New(NVBM, 64)
	if d.DelayInjection() {
		t.Error("injection on by default")
	}
	d.SetDelayInjection(true)
	if !d.DelayInjection() {
		t.Error("SetDelayInjection(true) did not stick")
	}
	d.WriteAt(0, make([]byte, 8)) // exercise the spin path
	d.SetDelayInjection(false)
}

// Property: any sequence of in-range writes followed by reads returns the
// written data (the device behaves like memory).
func TestQuickMemorySemantics(t *testing.T) {
	d := New(NVBM, 1024)
	f := func(off uint16, val []byte) bool {
		if len(val) == 0 {
			return true
		}
		o := int(off) % (1024 - len(val)%1024)
		if o+len(val) > 1024 {
			o = 1024 - len(val)
		}
		if o < 0 {
			return true
		}
		d.WriteAt(o, val)
		got := make([]byte, len(val))
		d.ReadAt(o, got)
		return bytes.Equal(got, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: snapshot/restore is the identity on device contents.
func TestQuickSnapshotIdentity(t *testing.T) {
	f := func(data []byte) bool {
		d := New(NVBM, len(data))
		if len(data) > 0 {
			d.WriteAt(0, data)
		}
		var buf bytes.Buffer
		if err := d.SnapshotTo(&buf); err != nil {
			return false
		}
		d2 := New(NVBM, 0)
		if err := d2.RestoreFrom(&buf); err != nil {
			return false
		}
		return bytes.Equal(d2.Bytes(), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPowerCutSemantics(t *testing.T) {
	d := New(NVBM, 256)
	d.CutPowerAfter(2)
	d.WriteAt(0, []byte{1}) // lands
	d.WriteAt(1, []byte{2}) // lands
	if d.PowerLost() != true {
		t.Error("countdown expired but PowerLost() false")
	}
	func() {
		defer func() {
			if r := recover(); r != ErrPowerLost {
				t.Errorf("expected ErrPowerLost, got %v", r)
			}
		}()
		d.WriteAt(2, []byte{3}) // power is out: the process dies here
	}()
	func() {
		defer func() {
			if r := recover(); r != ErrPowerLost {
				t.Errorf("read after power loss: got %v", r)
			}
		}()
		d.ReadAt(0, make([]byte, 1))
	}()
	// Power restored (a new process maps the region): the first two
	// writes are durable, the third never happened.
	d.RestorePower()
	got := make([]byte, 3)
	d.ReadAt(0, got)
	if got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Errorf("surviving bytes = %v, want [1 2 0]", got)
	}
}

func TestCutPowerAfterNegativePanics(t *testing.T) {
	d := New(NVBM, 16)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.CutPowerAfter(-1)
}

func TestChargeNBulk(t *testing.T) {
	d := New(NVBM, 0)
	d.ChargeReadN(10, 64)
	d.ChargeWriteN(5, 64)
	s := d.Stats()
	if s.Reads != 10 || s.Writes != 5 {
		t.Errorf("ops = %d/%d", s.Reads, s.Writes)
	}
	if s.ModeledNs != 10*NVBMReadNs+5*NVBMWriteNs {
		t.Errorf("modeled = %d", s.ModeledNs)
	}
	d.ChargeReadN(0, 64)
	d.ChargeWriteN(-1, 64)
	if d.Stats().Reads != 10 {
		t.Error("zero/negative counts charged")
	}
}

func TestEnduranceReport(t *testing.T) {
	d := New(NVBM, 4*LineSize)
	for i := 0; i < 100; i++ {
		d.WriteAt(0, make([]byte, 8))
	}
	rep := d.EstimateLifetime(10, 1e6)
	if rep.MaxWear != 100 {
		t.Errorf("MaxWear = %d", rep.MaxWear)
	}
	// 10 writes/step to the hot line, 1e6 budget -> 1e5 steps.
	if rep.LifetimeSteps != 1e5 {
		t.Errorf("LifetimeSteps = %v", rep.LifetimeSteps)
	}
	if rep.Imbalance <= 1 {
		t.Errorf("Imbalance = %v", rep.Imbalance)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
	if rep.LifetimeAt(time.Second) != 1e5*time.Second {
		t.Errorf("LifetimeAt = %v", rep.LifetimeAt(time.Second))
	}
}

func TestEnduranceUnwornDevice(t *testing.T) {
	d := New(NVBM, 256)
	rep := d.EstimateLifetime(5, 1e6)
	if !math.IsInf(rep.LifetimeSteps, 1) {
		t.Errorf("unworn device lifetime = %v", rep.LifetimeSteps)
	}
	if rep.LifetimeAt(time.Second) <= 0 {
		t.Error("infinite lifetime mapped to non-positive duration")
	}
}

func TestDelayInjectionWallClock(t *testing.T) {
	// With injection enabled, wall-clock time must cover at least the
	// modeled latency — the paper's emulation methodology (§5.1).
	d := New(NVBM, 4096)
	d.SetDelayInjection(true)
	defer d.SetDelayInjection(false)
	const writes = 2000
	buf := make([]byte, 64)
	start := time.Now()
	for i := 0; i < writes; i++ {
		d.WriteAt(0, buf)
	}
	elapsed := time.Since(start)
	modeled := time.Duration(d.Stats().ModeledNs)
	if elapsed < modeled {
		t.Errorf("wall %v < modeled %v: injection not delaying", elapsed, modeled)
	}
}
