package nvbm

import (
	"fmt"
	"math"
	"time"
)

// EnduranceReport estimates device lifetime from observed wear. NVBM cells
// endure a bounded number of writes (Table 2: 1e6-1e8 per bit); the
// lifetime of the device is set by its MOST-written line, which is why
// §5.5 credits the dynamic transformation with "extend[ing] the lifetime
// of NVBM" — it moves the hottest write traffic to DRAM.
type EnduranceReport struct {
	// Endurance is the per-line write budget assumed (writes).
	Endurance uint64
	// MaxWear is the writes absorbed by the hottest line so far.
	MaxWear uint32
	// MeanWear is the average writes per line.
	MeanWear float64
	// Imbalance is MaxWear / MeanWear; large values mean hot-spotting
	// burns out the device long before average wear would.
	Imbalance float64
	// StepsObserved is the simulation span the wear was accumulated over.
	StepsObserved int
	// LifetimeSteps extrapolates how many simulation steps the device
	// survives at the observed peak wear rate (0 if no wear observed;
	// math.MaxInt64 semantics are avoided by capping).
	LifetimeSteps float64
}

// EstimateLifetime builds a report from a device's wear counters after
// stepsObserved simulation steps, assuming the given per-line endurance.
func (d *Device) EstimateLifetime(stepsObserved int, endurance uint64) EnduranceReport {
	ws := d.Wear()
	rep := EnduranceReport{
		Endurance:     endurance,
		MaxWear:       ws.MaxWear,
		MeanWear:      ws.MeanWear(),
		Imbalance:     ws.WearImbalance(),
		StepsObserved: stepsObserved,
	}
	if ws.MaxWear > 0 && stepsObserved > 0 {
		perStep := float64(ws.MaxWear) / float64(stepsObserved)
		rep.LifetimeSteps = float64(endurance) / perStep
	} else {
		rep.LifetimeSteps = math.Inf(1)
	}
	return rep
}

// LifetimeAt converts the extrapolated lifetime to wall time given a step
// cadence.
func (r EnduranceReport) LifetimeAt(stepDuration time.Duration) time.Duration {
	if math.IsInf(r.LifetimeSteps, 1) {
		return time.Duration(math.MaxInt64)
	}
	d := r.LifetimeSteps * float64(stepDuration)
	if d > float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(d)
}

// String formats the report.
func (r EnduranceReport) String() string {
	return fmt.Sprintf("max wear %d/%d lines over %d steps (imbalance %.1fx); ~%.3g steps to wear-out",
		r.MaxWear, r.Endurance, r.StepsObserved, r.Imbalance, r.LifetimeSteps)
}
