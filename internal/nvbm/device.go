// Package nvbm emulates byte-addressable memory devices with distinct
// performance characteristics: volatile DRAM and non-volatile
// byte-addressable memory (NVBM) such as PCM or STT-MRAM.
//
// The emulation follows the methodology of the PM-octree paper (SC '17,
// §5.1): the device is ordinary process memory, and NVBM latency is modeled
// per access. Two modeling modes are available and may be combined:
//
//   - Accounting mode (always on): every access adds the modeled latency to
//     a deterministic nanosecond counter. Experiments report this modeled
//     time, which is reproducible on any host.
//   - Delay-injection mode (optional): every access additionally spins the
//     CPU for the modeled latency, as the paper's emulator did with the
//     RDTSCP timestamp counter, so wall-clock benchmarks feel the latency.
//
// A Device also tracks read/write operation and byte counts, and per-line
// wear counters for endurance analysis (Table 2: NVBM endures 1e6–1e8
// writes per bit, versus >1e16 for DRAM).
//
// Devices of kind NVBM survive Crash and can be persisted to and restored
// from a file; devices of kind DRAM lose their contents on Crash.
package nvbm

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the two memory technologies a Device can emulate.
type Kind uint8

const (
	// DRAM is volatile memory: fast, contents lost on Crash.
	DRAM Kind = iota
	// NVBM is non-volatile byte-addressable memory: slower writes,
	// contents preserved across Crash and process restart.
	NVBM
)

// String returns the conventional name of the memory kind.
func (k Kind) String() string {
	switch k {
	case DRAM:
		return "DRAM"
	case NVBM:
		return "NVBM"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// LineSize is the granularity, in bytes, at which wear is tracked. It
// matches a CPU cache line, the unit in which stores reach the memory
// device.
const LineSize = 64

// Device is an emulated memory device. The zero value is not usable; create
// devices with New.
//
// Concurrency contract (the one parallel solver sweeps rely on): reads
// and writes to DISJOINT byte ranges may proceed concurrently with each
// other and with Grow — accounting and wear counters are atomic, and
// growth is serialized against in-flight accesses, so no access ever
// observes a half-swapped backing array and no wear increment is lost.
// Reads may additionally OVERLAP other reads freely: a read mutates
// nothing but atomic counters, so any number of goroutines may issue
// charged reads (ReadAt, ChargeReadN) against the same committed lines —
// the MVCC serving layer's snapshot readers do exactly that while the
// simulation writer keeps writing other lines. Overlapping writes (or a
// write overlapping a read) race exactly like raw memory: the data
// outcome is undefined, though the device structure and its counters stay
// consistent. Callers that share mutable ranges must synchronize, just as
// they would for a []byte.
type Device struct {
	kind Kind
	lat  Latency

	mu      sync.RWMutex // guards growth of data/wear/lineCRC, and spare
	data    []byte
	wear    []uint32 // per-LineSize-line write counts (NVBM only)
	lineCRC []uint32 // per-line CRC-32 shadow (media tracking; see faults.go)
	spare   int      // spare lines available for remapping worn-out lines

	inject    atomic.Bool // spin-delay injection enabled
	unmetered atomic.Bool // accounting suspended (instrumentation walks)
	track     atomic.Bool // media tracking (per-line CRC shadow) enabled

	// powerCut, when armed (>= 0), counts down on every write; once it
	// reaches zero the device stops accepting writes, emulating power
	// failing mid-operation. -1 = disarmed.
	powerCut atomic.Int64
	// tornPending marks that the write tripping the countdown should be
	// torn (a seeded subset of its lines persists) rather than dropped
	// atomically; exactly one racing writer wins the tear.
	tornPending atomic.Bool
	tornSeed    atomic.Int64
	// wearLimit, when nonzero, is the per-line endurance threshold: lines
	// at or beyond it silently drop stores until scrub remaps them.
	wearLimit atomic.Uint32

	reads      atomic.Uint64
	writes     atomic.Uint64
	readBytes  atomic.Uint64
	writeBytes atomic.Uint64
	modeledNs  atomic.Uint64

	// Fault and self-healing counters (see faults.go).
	tornWrites  atomic.Uint64
	tornDropped atomic.Uint64
	bitFlips    atomic.Uint64
	stuckWrites atomic.Uint64
	// Scrub counters, written only under mu.Lock in Scrub.
	scrubPasses       uint64
	scrubScanned      uint64
	scrubCorrupt      uint64
	scrubRepaired     uint64
	scrubRemapped     uint64
	scrubUnrepairable uint64
}

// New creates a Device of the given kind with the given initial capacity in
// bytes and the default latency model for that kind (Table 2 of the paper).
func New(kind Kind, size int) *Device {
	if size < 0 {
		panic("nvbm: negative device size")
	}
	d := &Device{kind: kind, lat: DefaultLatency(kind), data: make([]byte, size)}
	if kind == NVBM {
		d.wear = make([]uint32, (size+LineSize-1)/LineSize)
	}
	d.powerCut.Store(-1)
	return d
}

// NewWithLatency creates a Device with an explicit latency model.
func NewWithLatency(kind Kind, size int, lat Latency) *Device {
	d := New(kind, size)
	d.lat = lat
	return d
}

// Kind reports the memory technology this device emulates.
func (d *Device) Kind() Kind { return d.kind }

// Latency returns the latency model in effect.
func (d *Device) Latency() Latency { return d.lat }

// Size returns the current capacity of the device in bytes.
func (d *Device) Size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.data)
}

// SetDelayInjection enables or disables CPU spin delays on every access, in
// addition to the always-on deterministic latency accounting.
func (d *Device) SetDelayInjection(on bool) { d.inject.Store(on) }

// DelayInjection reports whether spin-delay injection is enabled.
func (d *Device) DelayInjection() bool { return d.inject.Load() }

// Grow extends the device so that it has capacity for at least size bytes.
// Growing is an administrative operation (like plugging in a DIMM) and is
// not charged memory latency.
func (d *Device) Grow(size int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if size <= len(d.data) {
		return
	}
	oldLen := len(d.data)
	nd := make([]byte, size)
	copy(nd, d.data)
	d.data = nd
	if d.kind == NVBM {
		nw := make([]uint32, (size+LineSize-1)/LineSize)
		copy(nw, d.wear)
		d.wear = nw
	}
	if d.track.Load() {
		nc := make([]uint32, len(d.wear))
		copy(nc, d.lineCRC)
		for line := len(d.lineCRC); line < len(nc); line++ {
			nc[line] = zeroLineCRC
		}
		d.lineCRC = nc
		// A partial final line gained zero padding; its checksum changes.
		if oldLen%LineSize != 0 && oldLen/LineSize < len(nc) {
			d.lineCRC[oldLen/LineSize] = d.lineChecksumLocked(oldLen / LineSize)
		}
	}
}

// ReadAt copies len(p) bytes starting at offset off into p, charging read
// latency for one access of len(p) bytes. Panics with ErrPowerLost after
// an expired power cut.
func (d *Device) ReadAt(off int, p []byte) {
	if d.powerCut.Load() == 0 {
		panic(ErrPowerLost)
	}
	d.mu.RLock()
	if off < 0 || off+len(p) > len(d.data) {
		d.mu.RUnlock()
		panic(fmt.Sprintf("nvbm: read [%d,%d) out of range (size %d)", off, off+len(p), d.Size()))
	}
	copy(p, d.data[off:])
	d.mu.RUnlock()
	d.chargeRead(len(p))
}

// ErrPowerLost is the panic value raised by any access to a device whose
// power-cut countdown has expired: at that instant the process is dead.
// Torture harnesses recover() it, discard all volatile state, and restart
// from the device contents.
var ErrPowerLost = fmt.Errorf("nvbm: power lost")

// consumePowerCut spends one write from an armed power-cut countdown,
// panicking with ErrPowerLost once the budget is gone.
func (d *Device) consumePowerCut(off int, p []byte) {
	// CAS loop: a plain load-then-store would let two concurrent writers
	// read the same countdown and lose a decrement, letting more writes
	// land than the torture harness armed.
	for {
		cut := d.powerCut.Load()
		if cut < 0 {
			break
		}
		if cut == 0 {
			// With a torn cut armed, the store in flight at the instant
			// power failed persists a seeded subset of its cache lines
			// (exactly one racing writer wins the tear).
			if d.tornPending.CompareAndSwap(true, false) {
				d.tearWrite(off, p)
			}
			panic(ErrPowerLost)
		}
		if d.powerCut.CompareAndSwap(cut, cut-1) {
			break
		}
	}
}

// WriteAt copies p into the device starting at offset off, charging write
// latency for one access of len(p) bytes and bumping wear counters for
// every touched line. With an armed power cut whose countdown has
// expired, the access panics with ErrPowerLost.
func (d *Device) WriteAt(off int, p []byte) {
	d.consumePowerCut(off, p)
	d.mu.RLock()
	if off < 0 || off+len(p) > len(d.data) {
		d.mu.RUnlock()
		panic(fmt.Sprintf("nvbm: write [%d,%d) out of range (size %d)", off, off+len(p), d.Size()))
	}
	if d.kind == NVBM && len(p) > 0 && (d.wearLimit.Load() > 0 || d.track.Load()) {
		d.writeLinesLocked(off, p)
	} else {
		copy(d.data[off:], p)
		if d.kind == NVBM && len(p) > 0 {
			for line := off / LineSize; line <= (off+len(p)-1)/LineSize; line++ {
				if line < len(d.wear) {
					atomic.AddUint32(&d.wear[line], 1)
				}
			}
		}
	}
	d.mu.RUnlock()
	d.chargeWrite(len(p))
}

// WriteAtExclusive is WriteAt under the device's exclusive lock. The
// default WriteAt runs under the shared lock, which is correct when
// concurrent writers touch disjoint cache LINES; with media tracking on,
// however, every store recomputes the whole per-line CRC shadow, so two
// writers whose byte ranges are disjoint but SHARE a line can publish a
// stale checksum for each other's bytes — false corruption. The persist
// pipeline's background writeback uses this entry point because octant
// records are not line-aligned (adjacent arena slots share lines with
// whatever the mutator writes in the same instant). Latency accounting
// and any injected spin delay happen outside the lock, exactly like
// WriteAt, so exclusivity costs only the data copy.
func (d *Device) WriteAtExclusive(off int, p []byte) {
	d.consumePowerCut(off, p)
	d.mu.Lock()
	if off < 0 || off+len(p) > len(d.data) {
		d.mu.Unlock()
		panic(fmt.Sprintf("nvbm: write [%d,%d) out of range (size %d)", off, off+len(p), d.Size()))
	}
	if d.kind == NVBM && len(p) > 0 && (d.wearLimit.Load() > 0 || d.track.Load()) {
		d.writeLinesLocked(off, p)
	} else {
		copy(d.data[off:], p)
		if d.kind == NVBM && len(p) > 0 {
			for line := off / LineSize; line <= (off+len(p)-1)/LineSize; line++ {
				if line < len(d.wear) {
					atomic.AddUint32(&d.wear[line], 1)
				}
			}
		}
	}
	d.mu.Unlock()
	d.chargeWrite(len(p))
}

// ReadU64 reads a little-endian uint64 at offset off.
func (d *Device) ReadU64(off int) uint64 {
	var b [8]byte
	d.ReadAt(off, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// WriteU64 writes v as a little-endian uint64 at offset off.
func (d *Device) WriteU64(off int, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	d.WriteAt(off, b[:])
}

// ReadU32 reads a little-endian uint32 at offset off.
func (d *Device) ReadU32(off int) uint32 {
	var b [4]byte
	d.ReadAt(off, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteU32 writes v as a little-endian uint32 at offset off.
func (d *Device) WriteU32(off int, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	d.WriteAt(off, b[:])
}

// Crash emulates a power failure. A DRAM device loses its contents (they
// are zeroed); an NVBM device retains them. Statistics survive in both
// cases, because they belong to the experiment, not the machine.
func (d *Device) Crash() {
	if d.kind != DRAM {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.data {
		d.data[i] = 0
	}
}

// CutPowerAfter arms a power-failure countdown: the next n writes land,
// then every later access panics with ErrPowerLost — the torture knob for
// crash-consistency testing (the process dies at the instant power fails;
// its volatile state is discarded and recovery must proceed from whatever
// subset of writes reached the device). RestorePower disarms.
func (d *Device) CutPowerAfter(n int) {
	if n < 0 {
		panic("nvbm: negative power-cut countdown")
	}
	d.powerCut.Store(int64(n))
}

// RestorePower disarms a power cut (torn or clean); subsequent writes
// land normally.
func (d *Device) RestorePower() {
	d.tornPending.Store(false)
	d.powerCut.Store(-1)
}

// PowerLost reports whether the device is currently dropping writes.
func (d *Device) PowerLost() bool { return d.powerCut.Load() == 0 }

// ChargeRead accounts a read of n bytes without moving data. Subsystems
// use it to model I/O whose payload is tracked elsewhere (e.g. B-tree
// index pages held in a volatile cache but homed on this device).
func (d *Device) ChargeRead(n int) { d.chargeRead(n) }

// ChargeWrite accounts a write of n bytes without moving data.
func (d *Device) ChargeWrite(n int) { d.chargeWrite(n) }

// ChargeReadN accounts count independent reads of bytesEach bytes in one
// call (bulk form of ChargeRead for modeling traversals).
func (d *Device) ChargeReadN(count, bytesEach int) {
	if count <= 0 || d.unmetered.Load() {
		return
	}
	d.reads.Add(uint64(count))
	d.readBytes.Add(uint64(count * bytesEach))
	d.modeledNs.Add(uint64(count) * d.lat.ReadNanos(bytesEach))
}

// ModeledReadCost returns the modeled nanoseconds count independent reads
// of bytesEach bytes would cost, without charging them — the attribution
// half of ChargeReadN, for callers that charge once but also want the cost
// credited to a specific request trace.
func (d *Device) ModeledReadCost(count, bytesEach int) uint64 {
	if count <= 0 {
		return 0
	}
	return uint64(count) * d.lat.ReadNanos(bytesEach)
}

// ChargeWriteN accounts count independent writes of bytesEach bytes.
func (d *Device) ChargeWriteN(count, bytesEach int) {
	if count <= 0 || d.unmetered.Load() {
		return
	}
	d.writes.Add(uint64(count))
	d.writeBytes.Add(uint64(count * bytesEach))
	d.modeledNs.Add(uint64(count) * d.lat.WriteNanos(bytesEach))
}

// SetAccounting enables or disables latency and statistics accounting.
// Instrumentation walks (overlap-ratio measurement, validation) disable it
// so that observing an experiment does not perturb it.
func (d *Device) SetAccounting(on bool) { d.unmetered.Store(!on) }

func (d *Device) chargeRead(n int) {
	if d.unmetered.Load() {
		return
	}
	d.reads.Add(1)
	d.readBytes.Add(uint64(n))
	ns := d.lat.ReadNanos(n)
	d.modeledNs.Add(ns)
	if d.inject.Load() {
		spin(ns)
	}
}

func (d *Device) chargeWrite(n int) {
	if d.unmetered.Load() {
		return
	}
	d.writes.Add(1)
	d.writeBytes.Add(uint64(n))
	ns := d.lat.WriteNanos(n)
	d.modeledNs.Add(ns)
	if d.inject.Load() {
		spin(ns)
	}
}
