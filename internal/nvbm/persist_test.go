package nvbm

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// TestRestoreFromDamagedImages feeds RestoreFrom a catalogue of damaged
// images — truncations at every structural boundary, a hostile size
// field, bit flips in each section, trailing garbage — and requires every
// one to be rejected with an error, never a panic or a silent partial
// restore.
func TestRestoreFromDamagedImages(t *testing.T) {
	src := New(NVBM, 3*LineSize)
	src.WriteAt(0, bytes.Repeat([]byte{0xD7}, 3*LineSize))
	var buf bytes.Buffer
	if err := src.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	// Layout: magic[8] kind[1] size[8] data[size] crc[4].
	const (
		kindOff = 8
		sizeOff = 9
		dataOff = 17
	)
	crcOff := len(img) - 4

	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), img...))
	}
	cases := []struct {
		name string
		img  []byte
	}{
		{"empty", nil},
		{"magic truncated", img[:4]},
		{"kind truncated", img[:kindOff]},
		{"size truncated", img[:sizeOff+3]},
		{"data truncated", img[:dataOff+LineSize]},
		{"crc truncated", img[:crcOff+2]},
		{"magic flipped", mutate(func(b []byte) []byte { b[0] ^= 0x01; return b })},
		{"kind is DRAM", mutate(func(b []byte) []byte { b[kindOff] = byte(DRAM); return b })},
		{"kind is garbage", mutate(func(b []byte) []byte { b[kindOff] = 0x7F; return b })},
		{"size field hostile", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[sizeOff:], uint64(maxImageBytes)+1)
			return b
		})},
		{"size exceeds data", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[sizeOff:], uint64(3*LineSize+999))
			return b
		})},
		{"data bit flipped", mutate(func(b []byte) []byte { b[dataOff+7] ^= 0x10; return b })},
		{"crc bit flipped", mutate(func(b []byte) []byte { b[crcOff] ^= 0x80; return b })},
		{"trailing data", append(append([]byte(nil), img...), 0xFF)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := New(NVBM, 0)
			if err := d.RestoreFrom(bytes.NewReader(tc.img)); err == nil {
				t.Fatalf("damaged image accepted")
			}
			// Rejection must not leave partial contents behind.
			if d.Size() != 0 {
				t.Errorf("rejected restore left %d bytes in the device", d.Size())
			}
		})
	}

	// The pristine image still round-trips (the mutations above copied).
	d := New(NVBM, 0)
	if err := d.RestoreFrom(bytes.NewReader(img)); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
	if !bytes.Equal(d.Bytes(), src.Bytes()) {
		t.Error("restored contents differ from source")
	}
}

// TestRestoreFromRebuildsCRCShadow pins that a tracked device recomputes
// its media CRCs for the restored contents instead of keeping checksums
// of the bytes it used to hold.
func TestRestoreFromRebuildsCRCShadow(t *testing.T) {
	src := New(NVBM, 2*LineSize)
	src.WriteAt(0, bytes.Repeat([]byte{0x42}, 2*LineSize))
	var buf bytes.Buffer
	if err := src.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}

	d := New(NVBM, 2*LineSize)
	d.EnableMediaTracking()
	d.WriteAt(0, bytes.Repeat([]byte{0x99}, 2*LineSize)) // different contents
	if err := d.RestoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if bad := d.CorruptLines(); len(bad) != 0 {
		t.Fatalf("restore left stale CRCs: corrupt lines %v", bad)
	}
	d.FlipBit(LineSize+5, 1)
	if got := d.CorruptLines(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("CorruptLines after flip = %v, want [1]", got)
	}
}
