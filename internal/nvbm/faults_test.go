package nvbm

import (
	"bytes"
	"testing"
)

// writeExpectingPowerLoss performs the write and reports whether it died
// to ErrPowerLost instead of landing.
func writeExpectingPowerLoss(d *Device, off int, p []byte) (died bool) {
	defer func() {
		if r := recover(); r != nil {
			if r != ErrPowerLost {
				panic(r)
			}
			died = true
		}
	}()
	d.WriteAt(off, p)
	return false
}

func TestTornCutReproducible(t *testing.T) {
	const lines = 8
	payload := bytes.Repeat([]byte{0xAA}, lines*LineSize)
	run := func(seed int64) []byte {
		d := New(NVBM, lines*LineSize)
		d.CutPowerAfterTorn(0, seed)
		if !writeExpectingPowerLoss(d, 0, payload) {
			t.Fatal("armed torn cut did not fire")
		}
		return d.Bytes()
	}
	sawPartial := false
	for seed := int64(0); seed < 20; seed++ {
		a, b := run(seed), run(seed)
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two torn runs persisted different bytes", seed)
		}
		landed := 0
		for line := 0; line < lines; line++ {
			if a[line*LineSize] == 0xAA {
				landed++
			}
		}
		if landed > 0 && landed < lines {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Error("no seed in [0,20) produced a partial tear; the tear is not doing anything")
	}
}

func TestTornWriteLineGranular(t *testing.T) {
	const lines = 16
	d := New(NVBM, lines*LineSize)
	d.EnableMediaTracking()
	payload := bytes.Repeat([]byte{0x5C}, lines*LineSize)
	d.CutPowerAfterTorn(0, 7)
	if !writeExpectingPowerLoss(d, 0, payload) {
		t.Fatal("armed torn cut did not fire")
	}
	// Each line persisted entirely or not at all: no mixed line.
	b := d.Bytes()
	landed := 0
	for line := 0; line < lines; line++ {
		chunk := b[line*LineSize : (line+1)*LineSize]
		switch {
		case bytes.Equal(chunk, payload[:LineSize]):
			landed++
		case bytes.Equal(chunk, make([]byte, LineSize)):
		default:
			t.Fatalf("line %d is a mix of old and new bytes; tearing must be line-granular", line)
		}
	}
	// A torn write is a crash artifact, not media damage: the CRC shadow
	// was updated for the lines that landed, so nothing reads as corrupt.
	if bad := d.CorruptLines(); len(bad) != 0 {
		t.Errorf("torn write left CRC-corrupt lines %v", bad)
	}
	fs := d.FaultStats()
	if fs.TornWrites != 1 {
		t.Errorf("TornWrites = %d, want 1", fs.TornWrites)
	}
	if fs.TornLinesDropped != uint64(lines-landed) {
		t.Errorf("TornLinesDropped = %d, want %d", fs.TornLinesDropped, lines-landed)
	}
}

func TestTornCutOnlyFirstWriterTears(t *testing.T) {
	d := New(NVBM, 4*LineSize)
	d.CutPowerAfterTorn(0, 3)
	if !writeExpectingPowerLoss(d, 0, bytes.Repeat([]byte{1}, LineSize)) {
		t.Fatal("first write should die")
	}
	if !writeExpectingPowerLoss(d, LineSize, bytes.Repeat([]byte{2}, LineSize)) {
		t.Fatal("second write should die too")
	}
	// Only the first post-cut write tears; later ones fail cleanly.
	if fs := d.FaultStats(); fs.TornWrites != 1 {
		t.Errorf("TornWrites = %d, want 1", fs.TornWrites)
	}
	if got := d.Bytes()[LineSize]; got != 0 {
		t.Errorf("second write persisted bytes after power loss")
	}
}

func TestFlipBitDetection(t *testing.T) {
	d := New(NVBM, 4*LineSize)
	d.WriteAt(0, bytes.Repeat([]byte{0x11}, 4*LineSize))

	// Tracking off: corruption is invisible.
	if !d.FlipBit(5, 3) {
		t.Fatal("FlipBit in range returned false")
	}
	if d.RangeCorrupt(0, 4*LineSize) {
		t.Error("RangeCorrupt must be false with tracking off")
	}
	d.FlipBit(5, 3) // undo

	d.EnableMediaTracking()
	if d.RangeCorrupt(0, 4*LineSize) {
		t.Error("clean device reads corrupt")
	}
	off := 2*LineSize + 17
	d.FlipBit(off, 0)
	if !d.RangeCorrupt(off, 1) {
		t.Error("flipped bit not detected at its offset")
	}
	if d.RangeCorrupt(0, LineSize) {
		t.Error("unflipped line reads corrupt")
	}
	if got := d.CorruptLines(); len(got) != 1 || got[0] != 2 {
		t.Errorf("CorruptLines = %v, want [2]", got)
	}
	// A legitimate overwrite of the damaged line refreshes the shadow.
	d.WriteAt(2*LineSize, bytes.Repeat([]byte{0x22}, LineSize))
	if len(d.CorruptLines()) != 0 {
		t.Error("overwrite did not clear the corrupt state")
	}
	if d.FlipBit(4*LineSize, 0) {
		t.Error("FlipBit out of range returned true")
	}
}

func TestScrubRepairsFromSource(t *testing.T) {
	const lines = 6
	d := New(NVBM, lines*LineSize)
	d.EnableMediaTracking()
	want := bytes.Repeat([]byte{0x3C}, lines*LineSize)
	d.WriteAt(0, want)
	clean := d.Bytes()

	d.FlipBit(0*LineSize+1, 2)
	d.FlipBit(3*LineSize+40, 6)
	d.FlipBit(5*LineSize+63, 7)

	rep := d.Scrub(func(off int, p []byte) bool {
		copy(p, clean[off:off+len(p)])
		return true
	})
	if rep.LinesScanned != lines {
		t.Errorf("scanned %d lines, want %d", rep.LinesScanned, lines)
	}
	if rep.Corrupt != 3 || rep.Repaired != 3 || rep.Unrepairable != 0 {
		t.Errorf("scrub = corrupt %d repaired %d unrepairable %d, want 3/3/0",
			rep.Corrupt, rep.Repaired, rep.Unrepairable)
	}
	if rep.ModeledNs == 0 {
		t.Error("scrub pass charged no modeled time")
	}
	if !bytes.Equal(d.Bytes(), clean) {
		t.Error("repaired contents differ from the source")
	}
	if len(d.CorruptLines()) != 0 {
		t.Error("corrupt lines remain after repair")
	}
	fs := d.FaultStats()
	if fs.CorruptFound != 3 || fs.LinesRepaired != 3 {
		t.Errorf("FaultStats corrupt/repaired = %d/%d, want 3/3", fs.CorruptFound, fs.LinesRepaired)
	}
}

func TestScrubWithoutSourceDetectsOnly(t *testing.T) {
	d := New(NVBM, 2*LineSize)
	d.EnableMediaTracking()
	d.WriteAt(0, bytes.Repeat([]byte{9}, 2*LineSize))
	d.FlipBit(3, 0)
	rep := d.Scrub(nil)
	if rep.Corrupt != 1 || rep.Repaired != 0 || rep.Unrepairable != 1 {
		t.Errorf("scrub = corrupt %d repaired %d unrepairable %d, want 1/0/1",
			rep.Corrupt, rep.Repaired, rep.Unrepairable)
	}
	if len(d.CorruptLines()) != 1 {
		t.Error("sourceless scrub must leave the damage in place")
	}
}

func TestWearOutStuckLineAndRemap(t *testing.T) {
	const limit = 4
	d := New(NVBM, 2*LineSize)
	d.EnableMediaTracking()
	d.SetWearLimit(limit)
	d.SetSpareLines(1)

	line0 := bytes.Repeat([]byte{1}, LineSize)
	for i := 0; i < limit; i++ {
		line0[0] = byte(i + 1)
		d.WriteAt(0, line0)
	}
	if got := d.StuckLines(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("StuckLines = %v, want [0] after %d writes", got, limit)
	}
	// The worn-out cell silently drops the store.
	line0[0] = 0xEE
	d.WriteAt(0, line0)
	if got := d.Bytes()[0]; got != limit {
		t.Fatalf("stuck line absorbed a write: byte0 = %#x, want %#x", got, limit)
	}
	if fs := d.FaultStats(); fs.StuckWrites != 1 {
		t.Errorf("StuckWrites = %d, want 1", fs.StuckWrites)
	}

	// Scrub remaps the line onto the spare and refreshes its contents from
	// the commit-consistent source, healing the dropped store.
	rep := d.Scrub(func(off int, p []byte) bool {
		if off == 0 {
			copy(p, line0)
			return true
		}
		return false
	})
	if rep.Remapped != 1 || rep.SparesLeft != 0 || rep.Unrepairable != 0 {
		t.Fatalf("scrub = remapped %d sparesLeft %d unrepairable %d, want 1/0/0",
			rep.Remapped, rep.SparesLeft, rep.Unrepairable)
	}
	if got := d.Bytes()[0]; got != 0xEE {
		t.Errorf("remap did not refresh contents: byte0 = %#x, want 0xEE", got)
	}
	if got := d.WearMax(0, LineSize); got >= limit {
		t.Errorf("remapped line wear = %d, want < %d", got, limit)
	}
	// Writes land again, and with no spares left a re-worn line is stuck
	// for good.
	line0[0] = 0x77
	d.WriteAt(0, line0)
	if got := d.Bytes()[0]; got != 0x77 {
		t.Error("write to remapped line did not land")
	}
}

// TestClonePreservesFaultState is the regression test for replica clones
// silently resetting endurance and media state: wear counters, the CRC
// shadow (including latent damage), the wear limit, and the spare pool
// must all carry over — after a failover the clone IS the device.
func TestClonePreservesFaultState(t *testing.T) {
	d := New(NVBM, 4*LineSize)
	d.EnableMediaTracking()
	d.SetWearLimit(1000)
	d.SetSpareLines(7)
	d.WriteAt(0, bytes.Repeat([]byte{5}, 4*LineSize))
	d.WriteAt(0, bytes.Repeat([]byte{6}, LineSize))
	d.FlipBit(2*LineSize, 1) // latent damage the clone must still see

	c := d.Clone()
	if !c.MediaTracking() {
		t.Error("clone lost media tracking")
	}
	if got, want := c.Wear(), d.Wear(); got != want {
		t.Errorf("clone wear = %+v, want %+v", got, want)
	}
	if c.WearLimit() != 1000 {
		t.Errorf("clone wear limit = %d, want 1000", c.WearLimit())
	}
	if c.SpareLines() != 7 {
		t.Errorf("clone spares = %d, want 7", c.SpareLines())
	}
	if got := c.CorruptLines(); len(got) != 1 || got[0] != 2 {
		t.Errorf("clone CorruptLines = %v, want [2]", got)
	}
	// Independence: damaging the clone leaves the original alone.
	c.FlipBit(0, 0)
	if len(d.CorruptLines()) != 1 {
		t.Error("corrupting the clone affected the original")
	}
}

func TestDiffApplyLinesRoundTrip(t *testing.T) {
	a := New(NVBM, 6*LineSize)
	b := New(NVBM, 0)
	a.WriteAt(LineSize, bytes.Repeat([]byte{0xAB}, 2*LineSize))
	a.WriteAt(5*LineSize, []byte{1, 2, 3})

	lines := a.DiffLines(b)
	if want := []int{1, 2, 5}; len(lines) != len(want) || lines[0] != 1 || lines[1] != 2 || lines[2] != 5 {
		t.Fatalf("DiffLines = %v, want %v", lines, want)
	}
	b.ApplyLines(a, lines)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("contents differ after ApplyLines")
	}
	if got := a.DiffLines(b); len(got) != 0 {
		t.Fatalf("DiffLines after apply = %v, want empty", got)
	}
}

func TestGrowExtendsCRCShadow(t *testing.T) {
	d := New(NVBM, LineSize+8) // partial final line
	d.EnableMediaTracking()
	d.WriteAt(LineSize, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	d.Grow(4 * LineSize)
	// The partial boundary line was re-checksummed over its full extent
	// and the new zero lines got the zero-line CRC: nothing reads corrupt.
	if bad := d.CorruptLines(); len(bad) != 0 {
		t.Fatalf("grow left CRC-corrupt lines %v", bad)
	}
	d.WriteAt(3*LineSize, bytes.Repeat([]byte{9}, LineSize))
	if bad := d.CorruptLines(); len(bad) != 0 {
		t.Fatalf("write into grown capacity left corrupt lines %v", bad)
	}
	d.FlipBit(3*LineSize+1, 4)
	if got := d.CorruptLines(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("CorruptLines = %v, want [3]", got)
	}
}
