package nvbm

import (
	"bytes"
	"sync"
	"testing"
)

// TestConcurrentDisjointWritersRacingGrow exercises the concurrency
// contract the parallel solve paths rely on: writers touching DISJOINT
// ranges run concurrently with each other and with Grow, and afterwards
// the data, the wear counters, and the access accounting are all exact.
// Run with -race; the whole point of the test is the detector.
func TestConcurrentDisjointWritersRacingGrow(t *testing.T) {
	const (
		workers       = 4
		linesPer      = 2
		region        = linesPer * LineSize
		writesEach    = 200
		initialSize   = workers * region
		finalSize     = 8 * initialSize
		growIncrement = initialSize
	)
	d := New(NVBM, initialSize)

	var wg sync.WaitGroup
	wg.Add(workers + 1)
	// Grower: repeatedly extends the device while writes are in flight.
	go func() {
		defer wg.Done()
		for size := initialSize; size <= finalSize; size += growIncrement {
			d.Grow(size)
		}
	}()
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte(w + 1)}, region)
			off := w * region
			for k := 0; k < writesEach; k++ {
				d.WriteAt(off, buf)
				got := make([]byte, region)
				d.ReadAt(off, got)
				if !bytes.Equal(got, buf) {
					t.Errorf("worker %d: read back wrong data", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if d.Size() != finalSize {
		t.Fatalf("size = %d, want %d", d.Size(), finalSize)
	}
	// Every write bumped exactly its own lines: no increment may be lost
	// to a Grow swapping the wear slice mid-write.
	ws := d.Wear()
	if want := uint64(workers * writesEach * linesPer); ws.TotalWear != want {
		t.Errorf("total wear = %d, want %d", ws.TotalWear, want)
	}
	if ws.MaxWear != writesEach {
		t.Errorf("max wear = %d, want %d", ws.MaxWear, writesEach)
	}
	for w := 0; w < workers; w++ {
		off := w * region
		if got := d.WearMax(off, off+region); got != writesEach {
			t.Errorf("worker %d region wear = %d, want %d", w, got, writesEach)
		}
	}
	st := d.Stats()
	if want := uint64(workers * writesEach); st.Writes != want {
		t.Errorf("writes = %d, want %d", st.Writes, want)
	}
	if want := uint64(workers * writesEach * region); st.WriteBytes != want {
		t.Errorf("write bytes = %d, want %d", st.WriteBytes, want)
	}
	if want := uint64(workers * writesEach); st.Reads != want {
		t.Errorf("reads = %d, want %d", st.Reads, want)
	}
}

// TestConcurrentTornWritersRacingGrow arms a torn power cut under
// line-disjoint concurrent writers with media tracking and a wear limit
// active, while Grow extends the device — the full slow-path machinery
// (per-line stores, CRC shadow, tear-on-cut) under the race detector.
// Exactly the armed number of writes land whole; exactly one racing
// writer tears; no line is ever half old, half new.
func TestConcurrentTornWritersRacingGrow(t *testing.T) {
	const (
		workers  = 4
		linesPer = 2
		region   = linesPer * LineSize
		attempts = 60
		allowed  = 41
	)
	d := New(NVBM, workers*region)
	d.EnableMediaTracking()
	d.SetWearLimit(1 << 30) // slow path on, but nothing ever wears out
	d.CutPowerAfterTorn(allowed, 99)

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		landed int
	)
	wg.Add(workers + 1)
	go func() {
		defer wg.Done()
		for size := workers * region; size <= 4*workers*region; size += region {
			d.Grow(size)
		}
	}()
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte(w + 1)}, region)
			for k := 0; k < attempts; k++ {
				ok := func() (ok bool) {
					defer func() {
						if r := recover(); r != nil {
							if r != ErrPowerLost {
								panic(r)
							}
						}
					}()
					d.WriteAt(w*region, buf)
					return true
				}()
				mu.Lock()
				if ok {
					landed++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if landed != allowed {
		t.Fatalf("%d writes landed whole, want exactly %d", landed, allowed)
	}
	if fs := d.FaultStats(); fs.TornWrites != 1 {
		t.Fatalf("TornWrites = %d, want exactly 1 (one racing writer wins the tear)", fs.TornWrites)
	}
	// Line-granular tearing: every line of every region is uniformly one
	// writer's byte or still zero.
	b := d.Bytes()
	for w := 0; w < workers; w++ {
		for l := 0; l < linesPer; l++ {
			lo := w*region + l*LineSize
			first := b[lo]
			if first != 0 && first != byte(w+1) {
				t.Fatalf("region %d line %d holds foreign byte %#x", w, l, first)
			}
			for i := lo; i < lo+LineSize; i++ {
				if b[i] != first {
					t.Fatalf("region %d line %d is torn mid-line", w, l)
				}
			}
		}
	}
	// The CRC shadow stayed consistent through writes, the tear, and Grow.
	if bad := d.CorruptLines(); len(bad) != 0 {
		t.Fatalf("CRC shadow inconsistent at lines %v", bad)
	}
}

// TestConcurrentWritersPowerCut verifies the power-cut countdown under
// concurrent writers: exactly n writes land before ErrPowerLost, with no
// decrement lost to the load/store race the CAS loop replaced.
func TestConcurrentWritersPowerCut(t *testing.T) {
	const (
		workers  = 4
		attempts = 50
		allowed  = 37
	)
	d := New(NVBM, workers*LineSize)
	d.CutPowerAfter(allowed)

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		landed int
		died   int
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			buf := []byte{byte(w)}
			for k := 0; k < attempts; k++ {
				ok := func() (ok bool) {
					defer func() {
						if r := recover(); r != nil {
							if r != ErrPowerLost {
								panic(r)
							}
						}
					}()
					d.WriteAt(w*LineSize, buf)
					return true
				}()
				mu.Lock()
				if ok {
					landed++
				} else {
					died++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if landed != allowed {
		t.Fatalf("%d writes landed, want exactly %d", landed, allowed)
	}
	if died != workers*attempts-allowed {
		t.Fatalf("%d writes died, want %d", died, workers*attempts-allowed)
	}
	if !d.PowerLost() {
		t.Fatal("device should report power lost")
	}
}

// TestConcurrentCommittedReadersRacingWriter exercises the read side of
// the contract that MVCC snapshot serving relies on: many goroutines
// issue charged reads against the SAME committed (immutable) lines —
// plus bulk ChargeReadN accounting — while a single writer keeps writing
// OTHER lines and Grow extends the device. The committed data must read
// back bit-identical every time and the read accounting must be exact.
// Run with -race.
func TestConcurrentCommittedReadersRacingWriter(t *testing.T) {
	const (
		readers     = 4
		readsEach   = 300
		chargesEach = 100
		region      = 4 * LineSize
		initialSize = 2 * region
	)
	d := New(NVBM, initialSize)
	committed := bytes.Repeat([]byte{0xA5}, region)
	d.WriteAt(0, committed)
	base := d.Stats()

	var wg sync.WaitGroup
	wg.Add(readers + 1)
	// Writer: mutates the second region and grows the device under the
	// readers' feet.
	go func() {
		defer wg.Done()
		buf := bytes.Repeat([]byte{0x5A}, region)
		size := initialSize
		for k := 0; k < readsEach; k++ {
			d.WriteAt(region, buf)
			if k%50 == 0 {
				size += region
				d.Grow(size)
			}
		}
	}()
	for w := 0; w < readers; w++ {
		go func() {
			defer wg.Done()
			got := make([]byte, region)
			for k := 0; k < readsEach; k++ {
				d.ReadAt(0, got)
				if !bytes.Equal(got, committed) {
					t.Error("committed lines changed under a reader")
					return
				}
			}
			for k := 0; k < chargesEach; k++ {
				d.ChargeReadN(2, LineSize)
			}
		}()
	}
	wg.Wait()

	st := d.Stats().Sub(base)
	if want := uint64(readers * (readsEach + 2*chargesEach)); st.Reads != want {
		t.Errorf("reads = %d, want %d", st.Reads, want)
	}
	if want := uint64(readers * (readsEach*region + 2*chargesEach*LineSize)); st.ReadBytes != want {
		t.Errorf("read bytes = %d, want %d", st.ReadBytes, want)
	}
	if want := uint64(readsEach); st.Writes != want {
		t.Errorf("writes = %d, want %d", st.Writes, want)
	}
}
