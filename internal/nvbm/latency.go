package nvbm

import "time"

// Latency models per-access device latency. An access of n bytes costs the
// fixed access latency plus a per-line transfer term, reflecting that the
// memory bus moves cache lines:
//
//	cost(n) = AccessNs + ceil(n/LineSize-1) * LineNs
//
// so a single-line access costs exactly the Table 2 figure and large block
// transfers are charged proportionally.
type Latency struct {
	// ReadNs is the latency of a single-line read, in nanoseconds.
	ReadNs uint64
	// WriteNs is the latency of a single-line write, in nanoseconds.
	WriteNs uint64
	// LineNs is the additional cost per extra line of a multi-line
	// access, in nanoseconds. Defaults to the corresponding access
	// latency when zero at construction.
	LineReadNs  uint64
	LineWriteNs uint64
}

// Characteristics from Table 2 of the paper, based on PCM measurements in
// Lee et al. (ISCA '09), Chen et al. (CIDR '11), and Venkataraman et al.
// (FAST '11).
const (
	// DRAMReadNs is the read latency of DRAM (Table 2).
	DRAMReadNs = 60
	// DRAMWriteNs is the write latency of DRAM (Table 2).
	DRAMWriteNs = 60
	// NVBMReadNs is the read latency of NVBM (Table 2).
	NVBMReadNs = 100
	// NVBMWriteNs is the write latency of NVBM, 2.5x DRAM (Table 2).
	NVBMWriteNs = 150

	// DRAMEnduranceWrites is the per-bit write endurance of DRAM.
	DRAMEnduranceWrites = 1e16
	// NVBMEnduranceWrites is the conservative per-bit write endurance of
	// NVBM (Table 2 gives 1e6 - 1e8).
	NVBMEnduranceWrites = 1e6
)

// DefaultLatency returns the Table 2 latency model for the given kind.
func DefaultLatency(kind Kind) Latency {
	switch kind {
	case DRAM:
		return Latency{ReadNs: DRAMReadNs, WriteNs: DRAMWriteNs, LineReadNs: DRAMReadNs, LineWriteNs: DRAMWriteNs}
	default:
		return Latency{ReadNs: NVBMReadNs, WriteNs: NVBMWriteNs, LineReadNs: NVBMReadNs, LineWriteNs: NVBMWriteNs}
	}
}

// ReadNanos returns the modeled cost in nanoseconds of reading n bytes in
// one access.
func (l Latency) ReadNanos(n int) uint64 {
	return l.ReadNs + uint64(extraLines(n))*l.LineReadNs
}

// WriteNanos returns the modeled cost in nanoseconds of writing n bytes in
// one access.
func (l Latency) WriteNanos(n int) uint64 {
	return l.WriteNs + uint64(extraLines(n))*l.LineWriteNs
}

// extraLines returns the number of lines beyond the first needed to hold n
// bytes.
func extraLines(n int) int {
	if n <= LineSize {
		return 0
	}
	return (n+LineSize-1)/LineSize - 1
}

// spin busy-waits for approximately ns nanoseconds. This mirrors the
// paper's software spin loop on the processor timestamp counter; Go gives
// us a monotonic clock through time.Since.
func spin(ns uint64) {
	if ns == 0 {
		return
	}
	start := time.Now()
	target := time.Duration(ns)
	for time.Since(start) < target {
		// burn
	}
}
