package nvbm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"
)

// Image file format:
//
//	magic   [8]byte  "PMNVBM01"
//	kind    uint8
//	size    uint64   data length
//	data    [size]byte
//	crc     uint32   CRC-32 (IEEE) of data
//
// Only NVBM devices may be persisted; persisting DRAM would be modeling a
// battery-backed DIMM, which the paper does not assume.

var imageMagic = [8]byte{'P', 'M', 'N', 'V', 'B', 'M', '0', '1'}

// SnapshotTo writes the device contents to w in the image format. The
// transfer is administrative (an offline copy), so no latency is charged.
func (d *Device) SnapshotTo(w io.Writer) error {
	if d.kind != NVBM {
		return fmt.Errorf("nvbm: cannot snapshot %s device; only NVBM persists", d.kind)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(imageMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(d.kind)); err != nil {
		return err
	}
	var sz [8]byte
	binary.LittleEndian.PutUint64(sz[:], uint64(len(d.data)))
	if _, err := bw.Write(sz[:]); err != nil {
		return err
	}
	if _, err := bw.Write(d.data); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(d.data))
	if _, err := bw.Write(crc[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// RestoreFrom replaces the device contents with an image previously written
// by SnapshotTo. Statistics and wear counters are preserved.
func (d *Device) RestoreFrom(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("nvbm: reading image magic: %w", err)
	}
	if magic != imageMagic {
		return fmt.Errorf("nvbm: bad image magic %q", magic[:])
	}
	kindByte, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("nvbm: reading image kind: %w", err)
	}
	if Kind(kindByte) != NVBM {
		return fmt.Errorf("nvbm: image kind %s is not NVBM", Kind(kindByte))
	}
	var sz [8]byte
	if _, err := io.ReadFull(br, sz[:]); err != nil {
		return fmt.Errorf("nvbm: reading image size: %w", err)
	}
	n := binary.LittleEndian.Uint64(sz[:])
	if n > maxImageBytes {
		return fmt.Errorf("nvbm: image size %d exceeds limit %d", n, uint64(maxImageBytes))
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(br, data); err != nil {
		return fmt.Errorf("nvbm: reading image data: %w", err)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(br, crcb[:]); err != nil {
		return fmt.Errorf("nvbm: reading image checksum: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(data), binary.LittleEndian.Uint32(crcb[:]); got != want {
		return fmt.Errorf("nvbm: image checksum mismatch: got %#x want %#x", got, want)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return fmt.Errorf("nvbm: trailing data after image checksum")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.data = data
	if d.kind == NVBM {
		wear := make([]uint32, (len(data)+LineSize-1)/LineSize)
		copy(wear, d.wear)
		d.wear = wear
	}
	if d.track.Load() {
		d.lineCRC = make([]uint32, len(d.wear))
		for line := range d.lineCRC {
			d.lineCRC[line] = d.lineChecksumLocked(line)
		}
	}
	return nil
}

// maxImageBytes bounds the size field of an image so a corrupt or hostile
// header cannot drive a multi-exabyte allocation.
const maxImageBytes = 1 << 31

// PersistFile writes the device image to path atomically (via a temp file
// and rename), the way a careful NVDIMM flush daemon would.
func (d *Device) PersistFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := d.SnapshotTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// OpenFile creates an NVBM device from an image file written by
// PersistFile, emulating remapping a persistent region after restart.
func OpenFile(path string) (*Device, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d := New(NVBM, 0)
	if err := d.RestoreFrom(f); err != nil {
		return nil, err
	}
	return d, nil
}

// Clone returns an independent copy of the device's current contents with
// fresh access statistics. It is used by the replica subsystem to model a
// remote copy of a persistent region; the byte transfer is charged to the
// network model by the caller, not to memory latency here. Wear history,
// the media-tracking CRC shadow, the wear limit, and the spare-line pool
// carry over — after a failover the clone IS the device, and endurance
// analysis must not silently restart from zero.
func (d *Device) Clone() *Device {
	d.mu.RLock()
	defer d.mu.RUnlock()
	nd := New(d.kind, len(d.data))
	copy(nd.data, d.data)
	nd.lat = d.lat
	copy(nd.wear, d.wear)
	if d.track.Load() {
		nd.lineCRC = append([]uint32(nil), d.lineCRC...)
		nd.track.Store(true)
	}
	nd.wearLimit.Store(d.wearLimit.Load())
	nd.spare = d.spare
	return nd
}

// DiffLines returns the indices of all LineSize-aligned lines of d whose
// contents differ from base, treating base as zero-extended when d is
// larger. It is the delta computation for replica shipping; no latency is
// charged (the primary's controller tracks dirty lines for free in this
// model).
func (d *Device) DiffLines(base *Device) []int {
	a := d.Bytes()
	b := base.Bytes()
	var lines []int
	for lo := 0; lo < len(a); lo += LineSize {
		hi := min(lo+LineSize, len(a))
		var ref []byte
		if lo < len(b) {
			ref = b[lo:min(hi, len(b))]
		}
		if !lineEqual(a[lo:hi], ref) {
			lines = append(lines, lo/LineSize)
		}
	}
	return lines
}

// lineEqual reports whether line contents a match ref, with ref
// zero-extended to len(a).
func lineEqual(a, ref []byte) bool {
	for i := range a {
		var r byte
		if i < len(ref) {
			r = ref[i]
		}
		if a[i] != r {
			return false
		}
	}
	return true
}

// ApplyLines copies the given lines from src into d, growing d to src's
// size first. It models a replica applying a received delta frame: wear is
// bumped for each applied line (the replica's cells absorb the stores) and
// the CRC shadow is refreshed, but no latency is charged — the network
// model prices the transfer.
func (d *Device) ApplyLines(src *Device, lines []int) {
	b := src.Bytes()
	d.Grow(len(b))
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, line := range lines {
		lo := line * LineSize
		hi := min(lo+LineSize, len(b))
		if lo < 0 || lo >= hi || hi > len(d.data) {
			continue
		}
		copy(d.data[lo:hi], b[lo:hi])
		if line < len(d.wear) {
			atomic.AddUint32(&d.wear[line], 1)
		}
		if d.track.Load() && line < len(d.lineCRC) {
			atomic.StoreUint32(&d.lineCRC[line], d.lineChecksumLocked(line))
		}
	}
}

// Bytes returns a copy of the raw device contents. Intended for tests and
// diffing in the replica model; no latency is charged.
func (d *Device) Bytes() []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]byte, len(d.data))
	copy(out, d.data)
	return out
}
