package fluid

import (
	"math"
	"testing"

	"pmoctree/internal/morton"
	"pmoctree/internal/octree"
	"pmoctree/internal/solver"
)

func pouredState(t testing.TB, sys *solver.System) *State {
	st := NewState(sys)
	for i := 0; i < sys.N(); i++ {
		x, y, z := sys.Center(i)
		if z < 0.4 {
			st.VOF[i] = 1
		}
		st.U[i] = 0.3 * math.Sin(math.Pi*x) * math.Cos(math.Pi*z)
		st.V[i] = 0.2 * math.Sin(math.Pi*y)
		st.W[i] = -0.4 * math.Sin(math.Pi*z)
	}
	return st
}

// TestStepWorkerCountInvariant: a full solve+advect step — projection,
// gravity, semi-Lagrangian advection — must leave every field bit-identical
// regardless of worker count.
func TestStepWorkerCountInvariant(t *testing.T) {
	tr := octree.New()
	tr.RefineWhere(func(c morton.Code) bool {
		_, _, z := c.Center()
		return z-c.Extent()/2 < 0.45
	}, 4)
	tr.Balance()

	run := func(workers int) *State {
		sys, err := solver.Build(tr.LeafCodes())
		if err != nil {
			t.Fatal(err)
		}
		st := pouredState(t, sys)
		st.SetWorkers(workers)
		for step := 0; step < 3; step++ {
			if _, err := st.Step(2e-3); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}

	ref := run(1)
	for _, workers := range []int{2, 4} {
		st := run(workers)
		fields := []struct {
			name     string
			got, ref []float64
		}{
			{"U", st.U, ref.U}, {"V", st.V, ref.V}, {"W", st.W, ref.W},
			{"VOF", st.VOF, ref.VOF}, {"P", st.P, ref.P},
		}
		for _, f := range fields {
			for i := range f.got {
				if f.got[i] != f.ref[i] {
					t.Fatalf("workers=%d: %s[%d] = %v, serial %v (must be bit-identical)",
						workers, f.name, i, f.got[i], f.ref[i])
				}
			}
		}
	}
}

// TestAdvectFusedMatchesReference pins the fused sampler to the legacy
// per-field path: the same corner cells, weights and accumulation order
// must give bit-identical fields.
func TestAdvectFusedMatchesReference(t *testing.T) {
	tr := octree.New()
	tr.RefineWhere(func(c morton.Code) bool {
		_, _, z := c.Center()
		return z-c.Extent()/2 < 0.45
	}, 4)
	tr.Balance()

	run := func(reference bool) *State {
		sys, err := solver.Build(tr.LeafCodes())
		if err != nil {
			t.Fatal(err)
		}
		st := pouredState(t, sys)
		st.SetReferenceMode(reference)
		for step := 0; step < 4; step++ {
			st.advect(2e-3)
		}
		return st
	}

	fused, ref := run(false), run(true)
	fields := []struct {
		name     string
		got, ref []float64
	}{
		{"U", fused.U, ref.U}, {"V", fused.V, ref.V},
		{"W", fused.W, ref.W}, {"VOF", fused.VOF, ref.VOF},
	}
	for _, f := range fields {
		for i := range f.got {
			if f.got[i] != f.ref[i] {
				t.Fatalf("%s[%d] = %v, reference %v (must be bit-identical)",
					f.name, i, f.got[i], f.ref[i])
			}
		}
	}
}

// benchAdvect times one semi-Lagrangian advection sweep over a uniform
// 32^3 mesh — the per-cell octree point lookups are the hot path.
// reference selects the legacy per-field sampler (the pre-pr9 layout);
// the default is the fused sample4 sweep, so Serial-vs-TiledSerial
// isolates the sampling win and TiledSerial-vs-Parallel the scheduling.
func benchAdvect(b *testing.B, workers int, reference bool) {
	tr := octree.New()
	tr.RefineWhere(func(morton.Code) bool { return true }, 5)
	sys, err := solver.Build(tr.LeafCodes())
	if err != nil {
		b.Fatal(err)
	}
	st := pouredState(b, sys)
	st.SetWorkers(workers)
	st.SetReferenceMode(reference)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.advect(1e-3)
	}
	b.ReportMetric(float64(sys.N()), "cells")
}

func BenchmarkAdvectSerial(b *testing.B)      { benchAdvect(b, 1, true) }
func BenchmarkAdvectTiledSerial(b *testing.B) { benchAdvect(b, 1, false) }
func BenchmarkAdvectParallel(b *testing.B)    { benchAdvect(b, 4, false) }
