// Package fluid implements a Chorin projection-method incompressible flow
// step on adaptive octree meshes — a miniature of the Gerris solver the
// paper integrates PM-octree with (§4). One Step performs:
//
//  1. semi-Lagrangian advection of velocity and the tracked scalar
//     (volume fraction), sampling upstream through the graded mesh;
//  2. body force (gravity on the liquid phase);
//  3. pressure projection: solve lap(p) = div(u*)/dt with the
//     internal/solver Poisson operator and subtract grad(p) dt,
//     restoring (approximate) incompressibility.
//
// The state lives as flat per-cell vectors over a solver.System snapshot;
// LoadFrom/StoreTo move it between the octree's persistent fields and the
// solver, so a PM-octree-backed simulation can run real fluid steps and
// commit them every time step.
package fluid

import (
	"fmt"
	"math"

	"pmoctree/internal/parallel"
	"pmoctree/internal/solver"
)

// Serial cutoffs for pool.RunMin. Advection is the expensive sweep, so it
// parallelizes profitably on small meshes; the body-force and
// gradient-correction loops are a handful of flops per cell. The advect
// cutoff is retuned for the fused sampler (pr9): one characteristic now
// costs one container lookup plus eight corner lookups TOTAL — roughly a
// quarter of the legacy per-field cost — so the range where spawn-and-join
// overhead beats the sweep is correspondingly four times longer.
const (
	minAdvect = 2048
	minAxpy   = 1 << 15
)

// State is the flow field on one mesh snapshot.
type State struct {
	Sys *solver.System
	// U, V, W are cell-centered velocity components; VOF is the liquid
	// volume fraction; P is the last projection pressure.
	U, V, W, VOF, P []float64

	// Gravity is the body acceleration along -z applied to liquid cells.
	Gravity float64

	// scratch
	div, gx, gy, gz  []float64
	u2, v2, w2, vof2 []float64
	lastDt           float64

	// ref selects the legacy per-field advection sampling (see advectRef).
	ref bool

	// pool schedules the advection sweep and the per-cell update loops;
	// nil runs them inline. The projection solve follows Sys's pool.
	pool *parallel.Pool
}

// SetWorkers sets the worker count for the flow step — the advection
// sampling sweep, the body-force and gradient-correction loops, and (via
// the system's pool) the pressure projection. n <= 0 selects GOMAXPROCS,
// 1 restores serial execution. The advected fields are bit-identical for
// every n (each cell's sample depends only on the previous field), and
// the projection's reductions are deterministic blocked sums.
func (st *State) SetWorkers(n int) {
	if n == 1 {
		st.pool = nil
	} else {
		st.pool = parallel.New(n)
	}
	st.Sys.SetWorkers(n)
}

// SetPool attaches a caller-owned pool to the state and its system; nil
// restores serial execution.
func (st *State) SetPool(p *parallel.Pool) {
	st.pool = p
	st.Sys.SetPool(p)
}

// SetReferenceMode selects the legacy advection path: four independent
// sample() calls per cell, each re-locating the stencil corners. Results
// are bit-identical to the fused default; the reference path exists for
// the A/B benchmarks and the test pinning that identity. The projection
// system's layout mode is switched along with it.
func (st *State) SetReferenceMode(on bool) {
	st.ref = on
	st.Sys.SetReferenceMode(on)
}

// NewState builds a zero flow state over the mesh cells.
func NewState(sys *solver.System) *State {
	n := sys.N()
	mk := func() []float64 { return make([]float64, n) }
	return &State{
		Sys: sys,
		U:   mk(), V: mk(), W: mk(), VOF: mk(), P: mk(),
		Gravity: 9.81,
		div:     mk(), gx: mk(), gy: mk(), gz: mk(),
		u2: mk(), v2: mk(), w2: mk(), vof2: mk(),
	}
}

// CFL returns the largest dt satisfying a unit Courant number on the
// current field (the stable advection step).
func (st *State) CFL() float64 {
	dt := math.Inf(1)
	for i := range st.U {
		speed := math.Abs(st.U[i]) + math.Abs(st.V[i]) + math.Abs(st.W[i])
		if speed == 0 {
			continue
		}
		if c := st.Sys.Extent(i) / speed; c < dt {
			dt = c
		}
	}
	if math.IsInf(dt, 1) {
		return 1e-2
	}
	return dt
}

// cellValue reads the piecewise-constant field at a point.
func (st *State) cellValue(field []float64, x, y, z float64) float64 {
	if i, ok := st.Sys.CellAt(x, y, z); ok {
		return field[i]
	}
	return 0
}

// sample interpolates the field at a point: trilinear over a virtual
// uniform grid at the local cell size (exact on uniform regions; a
// consistent approximation across 2:1 coarse-fine boundaries). Piecewise-
// constant sampling would freeze any advection smaller than half a cell
// per step, so interpolation is essential for semi-Lagrangian transport.
func (st *State) sample(field []float64, x, y, z float64) float64 {
	i, ok := st.Sys.CellAt(x, y, z)
	if !ok {
		return 0
	}
	h := st.Sys.Extent(i)
	gx, gy, gz := x/h-0.5, y/h-0.5, z/h-0.5
	ix, iy, iz := math.Floor(gx), math.Floor(gy), math.Floor(gz)
	fx, fy, fz := gx-ix, gy-iy, gz-iz
	acc := 0.0
	for k := 0; k < 8; k++ {
		ax, ay, az := float64(k&1), float64((k>>1)&1), float64((k>>2)&1)
		w := lerpw(fx, ax) * lerpw(fy, ay) * lerpw(fz, az)
		if w == 0 {
			continue
		}
		px := (ix + ax + 0.5) * h
		py := (iy + ay + 0.5) * h
		pz := (iz + az + 0.5) * h
		acc += w * st.cellValue(field, clamp01(px), clamp01(py), clamp01(pz))
	}
	return acc
}

func lerpw(f, a float64) float64 {
	if a == 0 {
		return 1 - f
	}
	return f
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return math.Nextafter(1, 0)
	}
	return v
}

// Step advances the flow by dt.
func (st *State) Step(dt float64) (solver.Result, error) {
	if dt <= 0 {
		return solver.Result{}, fmt.Errorf("fluid: non-positive dt %v", dt)
	}
	n := st.Sys.N()

	// 1. Semi-Lagrangian advection: trace the characteristic back and
	// sample the previous field there.
	st.advect(dt)

	// 2. Gravity acts on the liquid phase.
	st.pool.RunMin(n, minAxpy, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			st.W[i] -= dt * st.Gravity * st.VOF[i]
		}
	})

	// 3. Projection. The Neumann (no-penetration) pressure solve makes
	// the FACE-corrected field exactly divergence-free; the cell
	// velocities used for advection receive the cell-centered gradient
	// correction (the standard approximate projection on collocated
	// grids). The assembled operator is the NEGATIVE Laplacian, so the
	// right-hand side flips sign.
	st.Sys.Divergence(st.U, st.V, st.W, st.div)
	st.pool.RunMin(n, minAxpy, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			st.div[i] /= -dt
		}
	})
	for i := range st.P {
		st.P[i] = 0
	}
	res, err := st.Sys.SolveNeumann(st.div, st.P, solver.Options{Tol: 1e-8})
	if err != nil {
		return res, err
	}
	st.lastDt = dt
	st.Sys.Gradient(st.P, st.gx, st.gy, st.gz)
	st.pool.RunMin(n, minAxpy, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			st.U[i] -= dt * st.gx[i]
			st.V[i] -= dt * st.gy[i]
			st.W[i] -= dt * st.gz[i]
		}
	})
	return res, nil
}

// sample4 interpolates all four advected fields at one point, locating
// the container cell and the eight stencil corners ONCE and applying the
// same weights to U, V, W and VOF. The legacy path ran the full lookup
// cascade four times — once per field — so this is the advection
// equivalent of the solver's SoA flattening: identical arithmetic per
// field (same corner cells, same weights, same accumulation order, so the
// results are bit-identical to four sample() calls), a quarter of the
// point-location work.
func (st *State) sample4(x, y, z float64) (u, v, w, vof float64) {
	i, ok := st.Sys.CellAt(x, y, z)
	if !ok {
		return 0, 0, 0, 0
	}
	h := st.Sys.Extent(i)
	gx, gy, gz := x/h-0.5, y/h-0.5, z/h-0.5
	ix, iy, iz := math.Floor(gx), math.Floor(gy), math.Floor(gz)
	fx, fy, fz := gx-ix, gy-iy, gz-iz
	for k := 0; k < 8; k++ {
		ax, ay, az := float64(k&1), float64((k>>1)&1), float64((k>>2)&1)
		wt := lerpw(fx, ax) * lerpw(fy, ay) * lerpw(fz, az)
		if wt == 0 {
			continue
		}
		px := clamp01((ix + ax + 0.5) * h)
		py := clamp01((iy + ay + 0.5) * h)
		pz := clamp01((iz + az + 0.5) * h)
		if j, ok := st.Sys.CellAt(px, py, pz); ok {
			u += wt * st.U[j]
			v += wt * st.V[j]
			w += wt * st.W[j]
			vof += wt * st.VOF[j]
		} else {
			// The legacy path accumulated wt*0 here; adding the same +0
			// keeps the sums bit-identical even around signed zeros.
			u += wt * 0
			v += wt * 0
			w += wt * 0
			vof += wt * 0
		}
	}
	return
}

// advect performs the semi-Lagrangian transport of velocity and volume
// fraction. Every cell samples only the PREVIOUS field (u2..vof2 are the
// targets), so the sweep parallelizes with bit-identical results.
func (st *State) advect(dt float64) {
	if st.ref {
		st.advectRef(dt)
		return
	}
	n := st.Sys.N()
	st.pool.RunMin(n, minAdvect, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cx, cy, cz := st.Sys.Center(i)
			bx := cx - dt*st.U[i]
			by := cy - dt*st.V[i]
			bz := cz - dt*st.W[i]
			st.u2[i], st.v2[i], st.w2[i], st.vof2[i] = st.sample4(bx, by, bz)
		}
	})
	copy(st.U, st.u2)
	copy(st.V, st.v2)
	copy(st.W, st.w2)
	copy(st.VOF, st.vof2)
}

// advectRef is the legacy advection sweep: one full sample per field.
func (st *State) advectRef(dt float64) {
	n := st.Sys.N()
	st.pool.RunMin(n, minAdvect, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cx, cy, cz := st.Sys.Center(i)
			bx := cx - dt*st.U[i]
			by := cy - dt*st.V[i]
			bz := cz - dt*st.W[i]
			st.u2[i] = st.sample(st.U, bx, by, bz)
			st.v2[i] = st.sample(st.V, bx, by, bz)
			st.w2[i] = st.sample(st.W, bx, by, bz)
			st.vof2[i] = st.sample(st.VOF, bx, by, bz)
		}
	})
	copy(st.U, st.u2)
	copy(st.V, st.v2)
	copy(st.W, st.w2)
	copy(st.VOF, st.vof2)
}

// MaxAbsDivergence returns the max-norm of the collocated cell-velocity
// divergence — the visible incompressibility defect of the approximate
// projection. The face-corrected field behind it is divergence-free to
// solver tolerance (see FaceDivergenceDefect).
func (st *State) MaxAbsDivergence() float64 {
	st.Sys.Divergence(st.U, st.V, st.W, st.div)
	m := 0.0
	for _, d := range st.div {
		if a := math.Abs(d); a > m {
			m = a
		}
	}
	return m
}

// FaceDivergenceDefect measures the divergence of the face-corrected
// field implied by the last projection: the pre-correction cell field is
// reconstructed by adding back dt*grad(P), then the pressure fluxes are
// applied on faces. Zero to solver tolerance by construction.
func (st *State) FaceDivergenceDefect() float64 {
	if st.lastDt == 0 {
		return st.MaxAbsDivergence()
	}
	n := st.Sys.N()
	st.Sys.Gradient(st.P, st.gx, st.gy, st.gz)
	for i := 0; i < n; i++ {
		st.u2[i] = st.U[i] + st.lastDt*st.gx[i]
		st.v2[i] = st.V[i] + st.lastDt*st.gy[i]
		st.w2[i] = st.W[i] + st.lastDt*st.gz[i]
	}
	st.Sys.ProjectedDivergence(st.u2, st.v2, st.w2, st.P, st.lastDt, st.div)
	m := 0.0
	for _, d := range st.div {
		if a := math.Abs(d); a > m {
			m = a
		}
	}
	return m
}

// LiquidVolume integrates the volume fraction.
func (st *State) LiquidVolume() float64 {
	v := 0.0
	for i, f := range st.VOF {
		e := st.Sys.Extent(i)
		v += f * e * e * e
	}
	return v
}

// KineticEnergy integrates u^2/2 over the domain.
func (st *State) KineticEnergy() float64 {
	e := 0.0
	for i := range st.U {
		h := st.Sys.Extent(i)
		vol := h * h * h
		e += 0.5 * vol * (st.U[i]*st.U[i] + st.V[i]*st.V[i] + st.W[i]*st.W[i])
	}
	return e
}
