package fluid

import (
	"fmt"
	"math"
	"testing"

	"pmoctree/internal/solver"
)

func TestDebugProjection(t *testing.T) {
	sys := uniformSystem(t, 3)
	st := NewState(sys)
	st.Gravity = 0
	n := sys.N()
	for i := 0; i < n; i++ {
		x, y, z := sys.Center(i)
		st.U[i] = math.Sin(math.Pi * x)
		st.V[i] = math.Sin(math.Pi * y)
		st.W[i] = math.Sin(math.Pi * z)
	}
	div := make([]float64, n)
	sys.Divergence(st.U, st.V, st.W, div)
	fmt.Println("max |div u*|:", maxAbs2(div))

	dt := 1e-3
	b := make([]float64, n)
	for i := range b {
		b[i] = -div[i] / dt
	}
	p := make([]float64, n)
	res, err := sys.Solve(b, p, solver.Options{Tol: 1e-10})
	fmt.Println("solve:", res, err)

	// Check A p = V b residual.
	ap := make([]float64, n)
	sys.Apply(p, ap)
	worst := 0.0
	for i := range ap {
		e := sys.Extent(i)
		r := ap[i] - b[i]*e*e*e
		if math.Abs(r) > worst {
			worst = math.Abs(r)
		}
	}
	fmt.Println("max |Ap - Vb|:", worst)

	// D(G(p)) vs lap p = -b: compare dt*D(G p) against -div.
	gx := make([]float64, n)
	gy := make([]float64, n)
	gz := make([]float64, n)
	sys.Gradient(p, gx, gy, gz)
	dg := make([]float64, n)
	sys.Divergence(gx, gy, gz, dg)
	// expected: dg approx lap p = -b = div/dt, so dt*dg approx div.
	worst = 0.0
	var sgn float64
	for i := range dg {
		r := dt*dg[i] - div[i]
		if math.Abs(r) > worst {
			worst = math.Abs(r)
			sgn = dt * dg[i] / div[i]
		}
	}
	fmt.Println("max |dt*D(Gp) - div|:", worst, "ratio at worst:", sgn)
}

func maxAbs2(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
