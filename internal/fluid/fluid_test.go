package fluid

import (
	"math"
	"testing"

	"pmoctree/internal/morton"
	"pmoctree/internal/octree"
	"pmoctree/internal/solver"
)

func uniformSystem(t *testing.T, l uint8) *solver.System {
	t.Helper()
	tr := octree.New()
	tr.RefineWhere(func(morton.Code) bool { return true }, l)
	s, err := solver.Build(tr.LeafCodes())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func adaptiveSystem(t *testing.T) *solver.System {
	t.Helper()
	tr := octree.New()
	tr.RefineWhere(func(c morton.Code) bool {
		_, _, z := c.Center()
		// Region test: refine octants whose box intersects the liquid
		// pool region z < 0.4.
		return z-c.Extent()/2 < 0.4
	}, 4)
	tr.Balance()
	s, err := solver.Build(tr.LeafCodes())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestProjectionKillsDivergence(t *testing.T) {
	sys := uniformSystem(t, 3)
	st := NewState(sys)
	st.Gravity = 0
	// A divergent field compatible with no-penetration walls (normal
	// components vanish at the boundary, mean divergence is zero):
	// u = sin(pi x), v = sin(pi y), w = sin(pi z).
	for i := 0; i < sys.N(); i++ {
		x, y, z := sys.Center(i)
		st.U[i] = math.Sin(math.Pi * x)
		st.V[i] = math.Sin(math.Pi * y)
		st.W[i] = math.Sin(math.Pi * z)
	}
	before := st.MaxAbsDivergence()
	if before < 1 {
		t.Fatalf("test field not divergent: %v", before)
	}
	res, err := st.Step(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("projection solve did not converge: %+v", res)
	}
	// The face-corrected field is divergence-free to solver tolerance
	// (the exact discrete projection).
	if defect := st.FaceDivergenceDefect(); defect > before*1e-4 {
		t.Errorf("face-exact projection defect %v (initial %v)", defect, before)
	}
	// The collocated cell field is approximately projected: clearly
	// reduced, though not exactly zero.
	after := st.MaxAbsDivergence()
	if after > before/2 {
		t.Errorf("approximate projection reduced divergence only %vx (%v -> %v)",
			before/after, before, after)
	}
}

func TestStillFluidStaysStill(t *testing.T) {
	// Zero velocity, zero gravity: steps must not invent motion.
	sys := uniformSystem(t, 2)
	st := NewState(sys)
	st.Gravity = 0
	for s := 0; s < 5; s++ {
		if _, err := st.Step(1e-2); err != nil {
			t.Fatal(err)
		}
	}
	if ke := st.KineticEnergy(); ke > 1e-20 {
		t.Errorf("still fluid gained kinetic energy %v", ke)
	}
}

func TestGravityAcceleratesLiquidOnly(t *testing.T) {
	sys := uniformSystem(t, 3)
	st := NewState(sys)
	// A liquid blob in the lower half.
	for i := 0; i < sys.N(); i++ {
		_, _, z := sys.Center(i)
		if z < 0.3 {
			st.VOF[i] = 1
		}
	}
	if _, err := st.Step(1e-3); err != nil {
		t.Fatal(err)
	}
	// Liquid cells move down (negative w) more than gas cells gain.
	var liquidW, gasW float64
	var nl, ng int
	for i := 0; i < sys.N(); i++ {
		if st.VOF[i] > 0.5 {
			liquidW += st.W[i]
			nl++
		} else {
			gasW += st.W[i]
			ng++
		}
	}
	if nl == 0 || ng == 0 {
		t.Fatal("degenerate phase split")
	}
	if liquidW/float64(nl) >= gasW/float64(ng) {
		t.Errorf("liquid mean w %v not below gas mean w %v",
			liquidW/float64(nl), gasW/float64(ng))
	}
}

func TestAdvectionTransportsScalar(t *testing.T) {
	sys := uniformSystem(t, 4)
	st := NewState(sys)
	st.Gravity = 0
	// Uniform rightward flow carrying a blob.
	for i := 0; i < sys.N(); i++ {
		st.U[i] = 1
		x, y, z := sys.Center(i)
		if x < 0.3 && math.Abs(y-0.5) < 0.2 && math.Abs(z-0.5) < 0.2 {
			st.VOF[i] = 1
		}
	}
	// Center of mass before.
	com := func() float64 {
		m, mx := 0.0, 0.0
		for i := range st.VOF {
			h := sys.Extent(i)
			v := st.VOF[i] * h * h * h
			x, _, _ := sys.Center(i)
			m += v
			mx += v * x
		}
		return mx / m
	}
	x0 := com()
	dt := st.CFL() * 0.5
	for s := 0; s < 4; s++ {
		if _, err := st.Step(dt); err != nil {
			t.Fatal(err)
		}
	}
	x1 := com()
	if x1 <= x0 {
		t.Errorf("blob did not advect downstream: %v -> %v", x0, x1)
	}
}

func TestStepOnAdaptiveMesh(t *testing.T) {
	sys := adaptiveSystem(t)
	st := NewState(sys)
	for i := 0; i < sys.N(); i++ {
		_, _, z := sys.Center(i)
		if z < 0.25 {
			st.VOF[i] = 1
		}
	}
	for s := 0; s < 3; s++ {
		dt := math.Min(st.CFL()*0.5, 5e-3)
		res, err := st.Step(dt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("step %d projection diverged", s)
		}
	}
	// The field stays finite and the liquid stays roughly conserved
	// (piecewise-constant advection is diffusive, not explosive).
	for i := range st.U {
		if math.IsNaN(st.U[i]) || math.IsInf(st.U[i], 0) {
			t.Fatal("velocity blew up")
		}
	}
	if v := st.LiquidVolume(); v <= 0 || v > 0.5 {
		t.Errorf("liquid volume %v implausible", v)
	}
}

func TestCFLPositive(t *testing.T) {
	sys := uniformSystem(t, 2)
	st := NewState(sys)
	if st.CFL() <= 0 {
		t.Error("CFL of still field should be positive fallback")
	}
	st.U[0] = 100
	if dt := st.CFL(); dt <= 0 || dt > sys.Extent(0)/100+1e-12 {
		t.Errorf("CFL = %v", dt)
	}
}

func TestStepRejectsBadDt(t *testing.T) {
	st := NewState(uniformSystem(t, 1))
	if _, err := st.Step(0); err == nil {
		t.Error("dt=0 accepted")
	}
}
