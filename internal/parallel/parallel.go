// Package parallel provides the shared-memory worker pool behind the hot
// solve/refine/advect paths: chunked index-range scheduling over a bounded
// set of goroutines, plus deterministic blocked reductions.
//
// Determinism contract (DESIGN.md decision 9): every reduction sums
// fixed-size blocks serially and folds the block partials together in
// block-index order, so the result is bit-identical for ANY worker count —
// including the nil pool's inline serial execution. Parallelism may change
// wall time, never floating-point results; residual histories and iteration
// counts of the solvers stay reproducible at -workers 1 and -workers 64
// alike.
//
// A nil *Pool is valid and runs everything inline on the calling
// goroutine, so call sites pay one pointer test when parallelism is off.
package parallel

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pmoctree/internal/telemetry"
)

// BlockSize is the fixed reduction granularity: reductions accumulate
// blocks of this many consecutive elements serially and combine the block
// partials in index order. It is a constant of the numerics, not a tuning
// knob — changing it changes rounding, exactly like changing a stencil.
const BlockSize = 1024

// minParallel is the smallest index range worth scheduling on goroutines;
// below it Run executes inline regardless of worker count. Call sites with
// heavier or lighter per-index work pick their own cutoff via RunMin.
const minParallel = 2048

// Clamp normalizes a worker-count request: n <= 0 (the "use the machine"
// default, e.g. an unset -workers flag) becomes GOMAXPROCS; anything else
// is returned unchanged.
func Clamp(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Pool is a bounded worker pool scheduling chunked index ranges. The zero
// value and the nil pool both execute inline with one worker; construct
// pools with New.
type Pool struct {
	workers int

	// forceWidth, when nonzero, bypasses the GOMAXPROCS clamp in
	// effective(). Test hook only: it lets scheduling/chunking paths be
	// exercised (including under -race) on single-CPU machines.
	forceWidth int

	// Optional telemetry, attached by Instrument; all nil by default so
	// uninstrumented Run calls skip the clock reads entirely.
	runs    *telemetry.Counter
	chunks  *telemetry.Counter
	chunkNs *telemetry.Histogram
	util    *telemetry.Gauge
}

// New returns a pool with the given worker count (<= 0 selects
// GOMAXPROCS). A 1-worker pool never spawns goroutines.
func New(workers int) *Pool {
	return &Pool{workers: Clamp(workers)}
}

// NewForced returns a pool that schedules exactly workers goroutines,
// bypassing the GOMAXPROCS clamp in effective(). Test hook: it lets
// worker-count-invariance suites exercise real concurrent scheduling —
// chunk handout, dirty-flag writes, the race detector — on single-CPU
// machines where New's pools would run inline. Production call sites use
// New; oversubscription only helps when the goal is to provoke races.
func NewForced(workers int) *Pool {
	return &Pool{workers: workers, forceWidth: workers}
}

// Workers reports the configured scheduling width; the nil pool has one
// worker. This is the determinism-relevant width (reduction blocking is
// independent of it anyway); the width actually scheduled is effective().
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// effective returns the scheduling width actually used: the configured
// width clamped to GOMAXPROCS. Oversubscribing a machine with more
// goroutines than processors cannot make data-parallel loops faster —
// it only adds scheduler churn and cursor contention — and the
// determinism contract makes the clamp invisible in results: any worker
// count produces bit-identical output, so scheduling width is free to
// follow the hardware.
func (p *Pool) effective() int {
	if p != nil && p.forceWidth > 0 {
		return p.forceWidth
	}
	w := p.Workers()
	if maxp := runtime.GOMAXPROCS(0); w > maxp {
		w = maxp
	}
	return w
}

// Instrument registers the pool's metrics under prefix in reg:
// <prefix>.runs and <prefix>.chunks count scheduling activity,
// <prefix>.chunk_ns is the per-chunk latency distribution, and
// <prefix>.utilization is the busy fraction (sum of chunk busy time over
// workers x wall time) of the most recent parallel Run. The workers gauge
// records the configured width.
func (p *Pool) Instrument(reg *telemetry.Registry, prefix string) {
	if p == nil || reg == nil {
		return
	}
	p.runs = reg.Counter(prefix + ".runs")
	p.chunks = reg.Counter(prefix + ".chunks")
	p.chunkNs = reg.Histogram(prefix + ".chunk_ns")
	p.util = reg.Gauge(prefix + ".utilization")
	reg.Gauge(prefix + ".workers").Set(float64(p.Workers()))
	reg.Gauge(prefix + ".workers_effective").Set(float64(p.effective()))
}

// Run partitions [0, n) into contiguous chunks and invokes fn(lo, hi) for
// each, across the pool's workers. Chunk boundaries are a scheduling
// detail: fn must treat every index in [lo, hi) independently (or reduce
// through Sum/Dot, whose blocking is fixed). Run returns after every chunk
// completes; a panic inside fn is re-raised on the calling goroutine.
func (p *Pool) Run(n int, fn func(lo, hi int)) {
	p.RunMin(n, minParallel, fn)
}

// RunMin is Run with a per-site serial cutoff: ranges shorter than minN
// execute inline. Spawn-and-join overhead is fixed per Run while the work
// scales with n x (per-index cost), so each call site should set minN to
// roughly where the two cross — a few hundred indexes for expensive
// bodies (octree advection), tens of thousands for three-flop axpy loops.
func (p *Pool) RunMin(n, minN int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := p.effective()
	if w == 1 || n < minN {
		p.runInline(n, fn)
		return
	}
	// Chunks are finer than workers so a straggler chunk cannot idle the
	// rest of the pool; an atomic cursor hands them out.
	p.runChunked(n, w, (n+4*w-1)/(4*w), fn)
}

// runChunked schedules [0, n) in chunk-sized pieces over w workers. The
// calling goroutine participates as one of the workers — the spawn count
// is w-1 — so a "parallel" run never pays a goroutine handoff for work
// the caller could have started immediately.
func (p *Pool) runChunked(n, w, chunk int, fn func(lo, hi int)) {
	nchunks := (n + chunk - 1) / chunk
	if w > nchunks {
		w = nchunks
	}
	if w <= 1 {
		p.runInline(n, fn)
		return
	}
	var (
		cursor  atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
		busyNs  atomic.Int64
	)
	instrumented := p.chunkNs != nil
	var start time.Time
	if instrumented {
		start = time.Now()
	}
	worker := func() {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicV == nil {
					panicV = r
				}
				panicMu.Unlock()
			}
		}()
		for {
			lo := int(cursor.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if instrumented {
				t0 := time.Now()
				fn(lo, hi)
				d := time.Since(t0).Nanoseconds()
				busyNs.Add(d)
				p.chunkNs.Observe(uint64(d))
				p.chunks.Inc()
			} else {
				fn(lo, hi)
			}
		}
	}
	wg.Add(w - 1)
	for g := 0; g < w-1; g++ {
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	worker()
	wg.Wait()
	if instrumented {
		p.runs.Inc()
		if wall := time.Since(start).Nanoseconds(); wall > 0 {
			p.util.Set(float64(busyNs.Load()) / (float64(wall) * float64(p.Workers())))
		}
	}
	if panicV != nil {
		panic(panicV)
	}
}

// runInline executes the whole range on the calling goroutine, still
// feeding the telemetry so serial and parallel runs are comparable.
func (p *Pool) runInline(n int, fn func(lo, hi int)) {
	if p != nil && p.chunkNs != nil {
		t0 := time.Now()
		fn(0, n)
		p.chunkNs.Observe(uint64(time.Since(t0).Nanoseconds()))
		p.chunks.Inc()
		p.runs.Inc()
		p.util.Set(1)
		return
	}
	fn(0, n)
}

// Dot returns the deterministic blocked inner product of a and b: each
// BlockSize-aligned block is summed serially, and the partials are folded
// in block-index order. The result is bit-identical for every worker
// count, including the nil pool.
func (p *Pool) Dot(a, b []float64) float64 {
	n := len(a)
	if n <= BlockSize {
		acc := 0.0
		for i := 0; i < n; i++ {
			acc += a[i] * b[i]
		}
		return acc
	}
	nb := (n + BlockSize - 1) / BlockSize
	partials := make([]float64, nb)
	p.runBlocks(nb, func(lo, hi int) {
		for blk := lo; blk < hi; blk++ {
			i := blk * BlockSize
			end := i + BlockSize
			if end > n {
				end = n
			}
			acc := 0.0
			for ; i < end; i++ {
				acc += a[i] * b[i]
			}
			partials[blk] = acc
		}
	})
	acc := 0.0
	for _, v := range partials {
		acc += v
	}
	return acc
}

// runBlocks schedules nb reduction blocks with one contiguous chunk per
// worker instead of Run's fine 4x-oversplit. Reduction blocks are uniform
// (BlockSize multiply-adds each), so finer chunks buy no load balance and
// only add cursor traffic; solver reductions run every CG iteration, so
// the per-Run overhead matters more here than anywhere else.
func (p *Pool) runBlocks(nb int, fn func(lo, hi int)) {
	if nb <= 0 {
		return
	}
	w := p.effective()
	if w == 1 || nb < minParallel {
		p.runInline(nb, fn)
		return
	}
	p.runChunked(nb, w, (nb+w-1)/w, fn)
}

// Norm2 returns sqrt(Dot(a, a)) with the same determinism guarantee.
func (p *Pool) Norm2(a []float64) float64 {
	return math.Sqrt(p.Dot(a, a))
}

// Sum reduces term(i) over [0, n) with the blocked deterministic
// summation. term must be a pure function of i during the call.
func (p *Pool) Sum(n int, term func(i int) float64) float64 {
	if n <= BlockSize {
		acc := 0.0
		for i := 0; i < n; i++ {
			acc += term(i)
		}
		return acc
	}
	nb := (n + BlockSize - 1) / BlockSize
	partials := make([]float64, nb)
	p.runBlocks(nb, func(lo, hi int) {
		for blk := lo; blk < hi; blk++ {
			i := blk * BlockSize
			end := i + BlockSize
			if end > n {
				end = n
			}
			acc := 0.0
			for ; i < end; i++ {
				acc += term(i)
			}
			partials[blk] = acc
		}
	})
	acc := 0.0
	for _, v := range partials {
		acc += v
	}
	return acc
}
