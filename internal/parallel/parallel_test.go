package parallel

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"pmoctree/internal/telemetry"
)

func TestClamp(t *testing.T) {
	if got := Clamp(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Clamp(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Clamp(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Clamp(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Clamp(7); got != 7 {
		t.Fatalf("Clamp(7) = %d, want 7", got)
	}
}

func TestNilPoolInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d, want 1", p.Workers())
	}
	calls := 0
	p.Run(10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("nil pool chunk [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("nil pool made %d calls, want 1", calls)
	}
}

// TestRunCoversEveryIndex checks that every index is visited exactly once
// at several worker counts and range sizes (run with -race to catch
// overlapping chunks).
func TestRunCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 9} {
		for _, n := range []int{0, 1, 7, minParallel - 1, minParallel, 3*minParallel + 17} {
			p := New(workers)
			seen := make([]int32, n)
			p.Run(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	New(4).Run(minParallel*4, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
}

// TestDotWorkerCountInvariant is the determinism contract: blocked
// reductions must be bit-identical at every worker count, nil pool
// included.
func TestDotWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, BlockSize - 1, BlockSize, BlockSize + 1, 64*1024 + 129} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 1e3
			b[i] = rng.NormFloat64() * 1e-3
		}
		var nilPool *Pool
		want := nilPool.Dot(a, b)
		wantSum := nilPool.Sum(n, func(i int) float64 { return a[i] * b[i] })
		if want != wantSum {
			t.Fatalf("n=%d: Dot %v != Sum %v on nil pool", n, want, wantSum)
		}
		for _, workers := range []int{1, 2, 4, 16} {
			p := New(workers)
			if got := p.Dot(a, b); got != want {
				t.Fatalf("n=%d workers=%d: Dot %v, want bit-identical %v", n, workers, got, want)
			}
			if got := p.Sum(n, func(i int) float64 { return a[i] * b[i] }); got != want {
				t.Fatalf("n=%d workers=%d: Sum %v, want bit-identical %v", n, workers, got, want)
			}
			if got, want2 := p.Norm2(a), nilPool.Norm2(a); got != want2 {
				t.Fatalf("n=%d workers=%d: Norm2 %v, want %v", n, workers, got, want2)
			}
		}
	}
}

func TestInstrument(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := New(4)
	p.Instrument(reg, "test.pool")
	p.Run(3*minParallel, func(lo, hi int) {})
	snap := reg.Snapshot()
	if snap.Counters["test.pool.runs"] != 1 {
		t.Fatalf("runs = %d, want 1", snap.Counters["test.pool.runs"])
	}
	if c := snap.Counters["test.pool.chunks"]; c == 0 {
		t.Fatal("chunks = 0, want > 0")
	}
	if h := snap.Histograms["test.pool.chunk_ns"]; h.Count == 0 {
		t.Fatal("chunk_ns histogram empty")
	}
	if w := snap.Gauges["test.pool.workers"]; w != 4 {
		t.Fatalf("workers gauge = %v, want 4", w)
	}
	u := snap.Gauges["test.pool.utilization"]
	if u < 0 || u > 1 {
		t.Fatalf("utilization %v outside [0,1]", u)
	}
	// Instrumenting nil receivers must be a no-op.
	var nilPool *Pool
	nilPool.Instrument(reg, "x")
	p.Instrument(nil, "y")
}

// TestEffectiveClampsToGOMAXPROCS pins the scheduling-width rule: a pool
// may be configured wider than the machine, but it never schedules more
// goroutines than processors (oversubscription only adds churn, and
// determinism makes the clamp invisible in results).
func TestEffectiveClampsToGOMAXPROCS(t *testing.T) {
	maxp := runtime.GOMAXPROCS(0)
	if got := New(64 * maxp).effective(); got != maxp {
		t.Fatalf("effective() = %d, want GOMAXPROCS %d", got, maxp)
	}
	if got := New(1).effective(); got != 1 {
		t.Fatalf("effective() = %d, want 1", got)
	}
	var nilPool *Pool
	if got := nilPool.effective(); got != 1 {
		t.Fatalf("nil pool effective() = %d, want 1", got)
	}
}

// TestForceWidthChunking drives the chunked scheduling path regardless of
// the machine's CPU count (the forceWidth hook bypasses the GOMAXPROCS
// clamp), checking exact index coverage and that the range was actually
// split. Run with -race: worker goroutines and the participating caller
// share the cursor and the panic slot.
func TestForceWidthChunking(t *testing.T) {
	for _, width := range []int{2, 4, 7} {
		p := New(width)
		p.forceWidth = width
		n := 3*minParallel + 17
		seen := make([]int32, n)
		var calls atomic.Int32
		p.Run(n, func(lo, hi int) {
			calls.Add(1)
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("width=%d: index %d visited %d times", width, i, c)
			}
		}
		if calls.Load() < 2 {
			t.Fatalf("width=%d: %d chunks, want the range split", width, calls.Load())
		}
	}
}

// TestForceWidthPanicPropagates exercises the chunked path's panic
// collection, including a panic raised on the calling goroutine itself
// (the caller participates as a worker).
func TestForceWidthPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	p := New(4)
	p.forceWidth = 4
	p.Run(minParallel*4, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
}

// TestRunMinCutoff checks the per-site serial cutoff: below minN the
// range runs inline as one chunk even on a forced-wide pool; at minN it
// is scheduled in chunks.
func TestRunMinCutoff(t *testing.T) {
	p := New(4)
	p.forceWidth = 4
	var calls atomic.Int32
	p.RunMin(999, 1000, func(lo, hi int) {
		calls.Add(1)
		if lo != 0 || hi != 999 {
			t.Fatalf("sub-cutoff chunk [%d,%d), want [0,999)", lo, hi)
		}
	})
	if calls.Load() != 1 {
		t.Fatalf("sub-cutoff range ran in %d chunks, want 1", calls.Load())
	}
	calls.Store(0)
	p.RunMin(1000, 1000, func(lo, hi int) { calls.Add(1) })
	if calls.Load() < 2 {
		t.Fatalf("at-cutoff range ran in %d chunks, want split", calls.Load())
	}
}

// TestRunMinCoversEveryIndex is TestRunCoversEveryIndex for the RunMin
// entry point with aggressive cutoffs.
func TestRunMinCoversEveryIndex(t *testing.T) {
	for _, minN := range []int{1, 64, 100000} {
		for _, n := range []int{0, 1, 63, 64, 4097} {
			p := New(3)
			p.forceWidth = 3
			seen := make([]int32, n)
			p.RunMin(n, minN, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("minN=%d n=%d: index %d visited %d times", minN, n, i, c)
				}
			}
		}
	}
}

// poolWorkload is a stencil-weight synthetic body (a few dozen flops per
// index) at the fluid/solver sweep sizes of the PR 2 benchmarks.
func poolWorkload(out []float64) func(lo, hi int) {
	return func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x := float64(i%1024) * 1e-3
			acc := 0.0
			for k := 0; k < 24; k++ {
				acc += x * float64(k+1)
				x = x*0.99 + 1e-6
			}
			out[i] = acc
		}
	}
}

// BenchmarkPoolCrossover is the regression guard for the PR 2 finding
// that -workers 4 was SLOWER than serial: with the GOMAXPROCS clamp,
// serial cutoffs and caller participation, a 4-worker pool must be at
// least as fast as the serial pool on the same sweep. Compare the
// serial/workers4 sub-benchmarks.
func BenchmarkPoolCrossover(b *testing.B) {
	const n = 200_000
	out := make([]float64, n)
	b.Run("serial", func(b *testing.B) {
		var p *Pool
		for i := 0; i < b.N; i++ {
			p.Run(n, poolWorkload(out))
		}
	})
	b.Run("workers4", func(b *testing.B) {
		p := New(4)
		for i := 0; i < b.N; i++ {
			p.Run(n, poolWorkload(out))
		}
	})
}
