package parallel

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"pmoctree/internal/telemetry"
)

func TestClamp(t *testing.T) {
	if got := Clamp(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Clamp(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Clamp(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Clamp(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Clamp(7); got != 7 {
		t.Fatalf("Clamp(7) = %d, want 7", got)
	}
}

func TestNilPoolInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d, want 1", p.Workers())
	}
	calls := 0
	p.Run(10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("nil pool chunk [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("nil pool made %d calls, want 1", calls)
	}
}

// TestRunCoversEveryIndex checks that every index is visited exactly once
// at several worker counts and range sizes (run with -race to catch
// overlapping chunks).
func TestRunCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 9} {
		for _, n := range []int{0, 1, 7, minParallel - 1, minParallel, 3*minParallel + 17} {
			p := New(workers)
			seen := make([]int32, n)
			p.Run(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	New(4).Run(minParallel*4, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
}

// TestDotWorkerCountInvariant is the determinism contract: blocked
// reductions must be bit-identical at every worker count, nil pool
// included.
func TestDotWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, BlockSize - 1, BlockSize, BlockSize + 1, 64*1024 + 129} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 1e3
			b[i] = rng.NormFloat64() * 1e-3
		}
		var nilPool *Pool
		want := nilPool.Dot(a, b)
		wantSum := nilPool.Sum(n, func(i int) float64 { return a[i] * b[i] })
		if want != wantSum {
			t.Fatalf("n=%d: Dot %v != Sum %v on nil pool", n, want, wantSum)
		}
		for _, workers := range []int{1, 2, 4, 16} {
			p := New(workers)
			if got := p.Dot(a, b); got != want {
				t.Fatalf("n=%d workers=%d: Dot %v, want bit-identical %v", n, workers, got, want)
			}
			if got := p.Sum(n, func(i int) float64 { return a[i] * b[i] }); got != want {
				t.Fatalf("n=%d workers=%d: Sum %v, want bit-identical %v", n, workers, got, want)
			}
			if got, want2 := p.Norm2(a), nilPool.Norm2(a); got != want2 {
				t.Fatalf("n=%d workers=%d: Norm2 %v, want %v", n, workers, got, want2)
			}
		}
	}
}

func TestInstrument(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := New(4)
	p.Instrument(reg, "test.pool")
	p.Run(3*minParallel, func(lo, hi int) {})
	snap := reg.Snapshot()
	if snap.Counters["test.pool.runs"] != 1 {
		t.Fatalf("runs = %d, want 1", snap.Counters["test.pool.runs"])
	}
	if c := snap.Counters["test.pool.chunks"]; c == 0 {
		t.Fatal("chunks = 0, want > 0")
	}
	if h := snap.Histograms["test.pool.chunk_ns"]; h.Count == 0 {
		t.Fatal("chunk_ns histogram empty")
	}
	if w := snap.Gauges["test.pool.workers"]; w != 4 {
		t.Fatalf("workers gauge = %v, want 4", w)
	}
	u := snap.Gauges["test.pool.utilization"]
	if u < 0 || u > 1 {
		t.Fatalf("utilization %v outside [0,1]", u)
	}
	// Instrumenting nil receivers must be a no-op.
	var nilPool *Pool
	nilPool.Instrument(reg, "x")
	p.Instrument(nil, "y")
}
