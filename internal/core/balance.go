package core

import "pmoctree/internal/morton"

// Balance enforces the 2:1 constraint across faces on the working version,
// exactly as the in-core baseline does, but through the PM-octree write
// path: every refinement triggered by balancing is copy-on-write and
// placed by the C0/C1 layout policy. Returns the number of refines.
//
// Violators are collected in batches: one scan finds every leaf with a
// too-coarse face neighbor, all are refined, and the scan repeats until a
// pass finds none (ripple refinement can create new violations one level
// up).
func (t *Tree) Balance() int {
	defer t.span("Balance").End()
	refined := 0
	for {
		violators := t.findViolators()
		if len(violators) == 0 {
			return refined
		}
		for _, code := range violators {
			if t.refineLeafIfPresent(code) {
				refined++
			}
		}
	}
}

// refineLeafIfPresent splits the leaf with exactly the given code,
// returning false if it no longer exists as a leaf (an earlier refine in
// the same batch may have split it).
func (t *Tree) refineLeafIfPresent(code morton.Code) bool {
	nr, ok := t.refineAtWalk(t.cur, code)
	if !ok {
		return false
	}
	t.cur = nr
	t.maybeEvict()
	return true
}

// findViolators scans leaves once and returns the distinct codes of
// too-coarse neighbor leaves. Face neighbors inside a leaf's own parent
// are siblings at the same level and can never violate, so only the
// outward faces are probed.
func (t *Tree) findViolators() []morton.Code {
	seen := map[morton.Code]bool{}
	var out []morton.Code
	var scratch [6]morton.Code
	t.ForEachNode(func(_ Ref, o *Octant) bool {
		if !o.IsLeaf() || o.Code.Level() < 2 {
			return true
		}
		parent := o.Code.Parent()
		for _, ncode := range o.Code.FaceNeighbors(scratch[:0]) {
			if ncode.Parent() == parent {
				continue // sibling: same level by construction
			}
			_, leaf := t.FindLeaf(ncode)
			if leaf.IsLeaf() && o.Code.Level()-leaf.Code.Level() > 1 && !seen[leaf.Code] {
				seen[leaf.Code] = true
				out = append(out, leaf.Code)
			}
		}
		return true
	})
	return out
}

// IsBalanced reports whether the working version satisfies the 2:1 face
// constraint.
func (t *Tree) IsBalanced() bool {
	return len(t.findViolators()) == 0
}
