package core

// AutoTuner adjusts the C0 DRAM budget between time steps — the paper's
// stated future work (§6: "we plan to automate the setting of DRAM size
// for the C0 tree in order to provide better memory efficiency under high
// concurrency").
//
// The policy reacts to two observable signals:
//
//   - merge pressure: C0→C1 evictions during a step mean the working set
//     outgrew the budget, so the budget grows;
//   - idle capacity: sustained low DRAM utilization means memory is
//     reserved but unused (hurting co-located ranks), so the budget
//     shrinks.
//
// Growth is multiplicative and shrinking is slow and hysteretic, the
// usual shape for a resource controller that must not oscillate.
type AutoTuner struct {
	// MinBudget and MaxBudget bound the C0 budget in octants.
	MinBudget, MaxBudget int
	// GrowFactor multiplies the budget when merges occurred (default 1.5).
	GrowFactor float64
	// ShrinkFactor multiplies the budget after sustained idleness
	// (default 0.8).
	ShrinkFactor float64
	// ShrinkBelow is the utilization under which a step counts as idle
	// (default 0.4).
	ShrinkBelow float64
	// IdleSteps is how many consecutive idle steps trigger a shrink
	// (default 3).
	IdleSteps int

	idleRun    int
	lastMerges int
	// Adjustments counts budget changes made.
	Adjustments int
}

// NewAutoTuner returns a tuner with the default policy over the given
// budget bounds.
func NewAutoTuner(minBudget, maxBudget int) *AutoTuner {
	return &AutoTuner{
		MinBudget:    minBudget,
		MaxBudget:    maxBudget,
		GrowFactor:   1.5,
		ShrinkFactor: 0.8,
		ShrinkBelow:  0.4,
		IdleSteps:    3,
	}
}

// Observe inspects the tree after a completed step (call it right after
// Persist) and adjusts the C0 budget if warranted. It returns the budget
// now in effect.
func (a *AutoTuner) Observe(t *Tree) int {
	merges := t.Stats().Merges
	mergedThisStep := merges - a.lastMerges
	a.lastMerges = merges
	budget := t.DRAMBudget()

	switch {
	case mergedThisStep > 0:
		a.idleRun = 0
		grown := int(float64(budget) * a.GrowFactor)
		if grown == budget {
			grown = budget + 1
		}
		if grown > a.MaxBudget {
			grown = a.MaxBudget
		}
		if grown != budget {
			t.SetDRAMBudget(grown)
			a.Adjustments++
		}
	case t.LastPeakDRAMUtilization() < a.ShrinkBelow:
		a.idleRun++
		if a.idleRun >= a.IdleSteps {
			a.idleRun = 0
			shrunk := int(float64(budget) * a.ShrinkFactor)
			if shrunk < a.MinBudget {
				shrunk = a.MinBudget
			}
			if shrunk != budget {
				t.SetDRAMBudget(shrunk)
				a.Adjustments++
			}
		}
	default:
		a.idleRun = 0
	}
	return t.DRAMBudget()
}

// NVBMDataOffset returns the offset where octant payloads start in the
// persistent region; bytes below it are allocator metadata.
func (t *Tree) NVBMDataOffset() int { return t.nv.DataOffset() }

// DRAMBudget returns the current C0 capacity in octants.
func (t *Tree) DRAMBudget() int { return t.cfg.DRAMBudgetOctants }

// DRAMUtilization returns the C0 arena's live/budget ratio in [0,1].
func (t *Tree) DRAMUtilization() float64 { return t.dram.Utilization() }

// LastPeakDRAMUtilization returns the highest C0 utilization reached
// during the previous step (Persist drains C0, so the instantaneous
// post-step value is near zero and useless for capacity decisions).
func (t *Tree) LastPeakDRAMUtilization() float64 { return t.lastPeakDRAMUtil }

// SetDRAMBudget changes the C0 capacity at a step boundary. The next
// layout pass recomputes L_sub for the new size; if the budget shrank
// below current usage, the watermark eviction drains C0 on the next
// operation.
func (t *Tree) SetDRAMBudget(octants int) {
	if octants < 1 {
		octants = 1
	}
	t.cfg.DRAMBudgetOctants = octants
	t.dram.SetBudget(octants)
}
