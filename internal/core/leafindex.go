package core

import "pmoctree/internal/morton"

// Z-order leaf index. Octree AMR codes that run at hardware speed
// (Cornerstone, the p4est Morton representation) iterate flat,
// Morton-sorted leaf arrays instead of pointer-chasing tree walks.
// LeafSnapshot materializes the working version's leaves into exactly
// that layout: a contiguous slice sorted by Morton code (the pre-order
// walk emits leaves in Z-order), which is also the chunkable input the
// worker pool wants.
//
// Invalidation rule: the snapshot is stamped with the tree's mutation
// sequence number, which every octant write, partial-field write and
// free bumps. Any structural or data mutation therefore invalidates it;
// the next LeafSnapshot call rebuilds with one (charged) tree walk.
// Rebuild walks go through readOct like every other traversal, so the
// modeled device accounting of an explicit snapshot is identical to the
// leaf walk it replaces.

// LeafEntry is one working-version leaf in the Z-order leaf index.
type LeafEntry struct {
	Code morton.Code
	Ref  Ref
	Data [DataWords]float64
}

// noteMutation advances the mutation sequence number that stamps the
// leaf index. Every octant write, partial-field write, and free calls it.
func (t *Tree) noteMutation() { t.mutSeq++ }

// LeafSnapshot returns the working version's leaves as a flat,
// Morton-sorted slice. The slice is cached and returned again (without
// any tree walk or device traffic) until the next mutation; callers must
// treat it as read-only and must not retain it across mutations — the
// backing array is reused by the next rebuild.
func (t *Tree) LeafSnapshot() []LeafEntry {
	if t.leafSnapOK && t.leafSnapSeq == t.mutSeq {
		t.fp.LeafIndexReuses++
		return t.leafSnap
	}
	seq := t.mutSeq
	t.leafSnap = t.leafSnap[:0]
	t.ForEachNode(func(r Ref, o *Octant) bool {
		if o.IsLeaf() {
			t.leafSnap = append(t.leafSnap, LeafEntry{Code: o.Code, Ref: r, Data: o.Data})
		}
		return true
	})
	t.leafSnapSeq = seq
	t.leafSnapOK = true
	t.leafCodesOK = false
	t.fp.LeafIndexRebuilds++
	return t.leafSnap
}

// LeafCodesSnapshot returns the working version's leaf codes in Z-order,
// backed by the leaf index: when the snapshot is valid this costs no tree
// walk and no device traffic. The same read-only/reuse caveats as
// LeafSnapshot apply. Serial golden paths use LeafCodes (the charged
// walk) instead; this is the parallel driver's input.
func (t *Tree) LeafCodesSnapshot() []morton.Code {
	ls := t.LeafSnapshot()
	if !t.leafCodesOK {
		t.leafCodesSnap = t.leafCodesSnap[:0]
		for i := range ls {
			t.leafCodesSnap = append(t.leafCodesSnap, ls[i].Code)
		}
		t.leafCodesOK = true
	}
	return t.leafCodesSnap
}

// invalidateLeafIndex force-drops the snapshot (whole-tree events:
// Delete, Compact, restore) independent of the sequence stamp.
func (t *Tree) invalidateLeafIndex() {
	t.leafSnapOK = false
	t.leafCodesOK = false
	t.noteMutation()
}

// UpdateLeavesIndexed is UpdateLeaves driven by the Z-order leaf index:
// it iterates the contiguous snapshot instead of re-walking the tree,
// writes in-place leaves with a single data-field store, and routes the
// (rare) copy-on-write leaves through the UpdateAt path walk. When every
// write was in place the snapshot stays valid — repeated solver sweeps
// over an unchanged mesh pay for one walk, not one per sweep.
//
// Field results are bit-identical to UpdateLeaves (same leaves, same
// Z-order, same fn); the modeled device traffic differs — interior nodes
// are not re-read — so serial golden paths keep calling UpdateLeaves.
func (t *Tree) UpdateLeavesIndexed(fn func(code morton.Code, data *[DataWords]float64) bool) int {
	defer t.span("Solve").End()
	ls := t.LeafSnapshot()
	t.fp.IndexedLeafUpdates++
	changed := 0
	structChanged := false
	for i := range ls {
		e := &ls[i]
		data := e.Data
		if !fn(e.Code, &data) {
			continue
		}
		changed++
		if t.isCurrent(e.Ref) {
			o := Octant{Data: data}
			t.writeDataField(e.Ref, &o)
			e.Data = data // keep the snapshot entry coherent
		} else {
			t.UpdateAt(e.Code, func(d *[DataWords]float64) { *d = data })
			structChanged = true
		}
	}
	if !structChanged {
		// Only in-place data stores happened and the snapshot entries were
		// patched along the way: revalidate it so the next sweep skips the
		// walk entirely.
		t.leafSnapSeq = t.mutSeq
		t.fp.IndexedInPlaceSkips++
	}
	t.maybeEvict()
	return changed
}
