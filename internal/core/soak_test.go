package core

import (
	"math/rand"
	"os"
	"testing"

	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
)

// TestSoak runs long random operation scripts against the versioned-tree
// invariants. Enable with PMOCTREE_SOAK=1.
func TestSoak(t *testing.T) {
	if os.Getenv("PMOCTREE_SOAK") == "" {
		t.Skip("set PMOCTREE_SOAK=1 to run")
	}
	for trial := 0; trial < 40; trial++ {
		seed := int64(trial * 7919)
		r := rand.New(rand.NewSource(seed))
		nv := nvbm.New(nvbm.NVBM, 0)
		tr := Create(Config{NVBMDevice: nv, DRAMBudgetOctants: 32 + r.Intn(512), Seed: seed,
			ThresholdDRAM: 0.5 + r.Float64()*0.4, GCEvery: 1 + r.Intn(3)})
		tr.SetFeatures(func(c morton.Code, _ [DataWords]float64) bool {
			x, _, _ := c.Center()
			return x > 0.5
		})
		last := leafSet(tr, tr.CommittedRoot())
		for op := 0; op < 60; op++ {
			pred := sphere(r.Float64(), r.Float64(), r.Float64(), 0.1+r.Float64()*0.25, 0.05+r.Float64()*0.2)
			switch r.Intn(6) {
			case 0:
				tr.RefineWhere(pred, uint8(3+r.Intn(2)))
			case 1:
				tr.CoarsenWhere(pred)
			case 2:
				tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
					if pred(c) {
						d[r.Intn(DataWords)] = r.Float64()
						return true
					}
					return false
				})
			case 3:
				tr.Balance()
			case 4:
				tr.Persist()
				last = leafSet(tr, tr.CommittedRoot())
			case 5:
				// Crash and restore mid-script.
				restored, err := Restore(Config{NVBMDevice: nv, Seed: seed})
				if err != nil {
					t.Fatalf("trial %d op %d: restore: %v", trial, op, err)
				}
				tr = restored
				tr.SetFeatures(func(c morton.Code, _ [DataWords]float64) bool {
					x, _, _ := c.Center()
					return x > 0.5
				})
			}
			got := leafSet(tr, tr.CommittedRoot())
			if !equalLeafSets(got, last) {
				t.Fatalf("trial %d op %d: committed version drifted", trial, op)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("trial %d op %d: %v", trial, op, err)
			}
		}
	}
}
