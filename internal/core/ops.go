package core

import (
	"fmt"

	"pmoctree/internal/morton"
)

// Find returns the ref of the working-version octant with exactly the
// given code, or NilRef.
func (t *Tree) Find(code morton.Code) Ref {
	r := t.cur
	level := code.Level()
	for d := uint8(1); d <= level; d++ {
		o := t.readOct(r)
		r = o.Children[code.AncestorAt(d).ChildIndex()]
		if r.IsNil() {
			return NilRef
		}
	}
	return r
}

// FindLeaf returns the deepest working-version octant containing code.
func (t *Tree) FindLeaf(code morton.Code) (Ref, Octant) {
	r := t.cur
	o := t.readOct(r)
	level := code.Level()
	for d := uint8(1); d <= level; d++ {
		next := o.Children[code.AncestorAt(d).ChildIndex()]
		if next.IsNil() {
			return r, o
		}
		r = next
		o = t.readOct(r)
	}
	return r, o
}

// ForEachNode visits every working-version octant in Z-order pre-order.
// Return false from fn to stop early.
func (t *Tree) ForEachNode(fn func(r Ref, o *Octant) bool) {
	t.walk(t.cur, fn)
}

// ForEachCommittedNode visits every octant of the committed version.
//
// The committed version is immutable and this walk is side-effect-free on
// the tree — no access accounting, no decoded-cache fills, and a per-call
// read buffer instead of the shared t.scratch — so multiple goroutines
// may call it concurrently (device charge counters are atomic). That is
// the ONLY concurrent entry point: every other Tree method, including the
// working-version walks and all mutations, shares t.scratch and the
// volatile access/cache state and remains single-threaded by contract.
func (t *Tree) ForEachCommittedNode(fn func(r Ref, o *Octant) bool) {
	t.walkRO(t.committed, fn)
}

// walkRO is the read-only, concurrency-safe form of walk: charged device
// reads into a per-call buffer, no touch, no cache.
func (t *Tree) walkRO(r Ref, fn func(Ref, *Octant) bool) bool {
	if r.IsNil() {
		return true
	}
	var buf [RecordSize]byte
	var o Octant
	// chargedRead rather than a raw arena read: under the persist
	// pipeline the committed walk may reach octants still awaiting
	// writeback, whose truth is the pipeline's pending set.
	t.chargedRead(r, buf[:])
	o.decode(buf[:])
	if !fn(r, &o) {
		return false
	}
	for _, c := range o.Children {
		if !c.IsNil() && !t.walkRO(c, fn) {
			return false
		}
	}
	return true
}

func (t *Tree) walk(r Ref, fn func(Ref, *Octant) bool) bool {
	if r.IsNil() {
		return true
	}
	o := t.readOct(r)
	if !fn(r, &o) {
		return false
	}
	for _, c := range o.Children {
		if !c.IsNil() && !t.walk(c, fn) {
			return false
		}
	}
	return true
}

// ForEachLeaf visits every working-version leaf in Z-order.
func (t *Tree) ForEachLeaf(fn func(code morton.Code, data [DataWords]float64) bool) {
	t.ForEachNode(func(r Ref, o *Octant) bool {
		if o.IsLeaf() {
			return fn(o.Code, o.Data)
		}
		return true
	})
}

// ForEachLeafInRange visits working-version leaves whose keys fall in
// [lo, hi), pruning entire subtrees whose key spans miss the interval —
// the fast path for space-filling-curve partitioned ranks.
func (t *Tree) ForEachLeafInRange(lo, hi uint64, fn func(code morton.Code, data [DataWords]float64) bool) {
	t.rangeWalk(t.cur, lo, hi, fn)
}

func (t *Tree) rangeWalk(r Ref, lo, hi uint64, fn func(morton.Code, [DataWords]float64) bool) bool {
	if r.IsNil() {
		return true
	}
	o := t.readOct(r)
	sLo, sHi := o.Code.KeySpan()
	if sHi < lo || sLo >= hi {
		return true // the whole subtree misses the interval
	}
	if o.IsLeaf() {
		if k := o.Code.Key(); k >= lo && k < hi {
			return fn(o.Code, o.Data)
		}
		return true
	}
	for _, c := range o.Children {
		if !c.IsNil() && !t.rangeWalk(c, lo, hi, fn) {
			return false
		}
	}
	return true
}

// LeafCount returns the number of working-version leaves (mesh elements).
func (t *Tree) LeafCount() int {
	n := 0
	t.ForEachLeaf(func(morton.Code, [DataWords]float64) bool { n++; return true })
	return n
}

// NodeCount returns the number of working-version octants.
func (t *Tree) NodeCount() int {
	n := 0
	t.ForEachNode(func(Ref, *Octant) bool { n++; return true })
	return n
}

// LeafCodes returns the working-version leaf codes in Z-order.
func (t *Tree) LeafCodes() []morton.Code {
	var out []morton.Code
	t.ForEachLeaf(func(c morton.Code, _ [DataWords]float64) bool {
		out = append(out, c)
		return true
	})
	return out
}

// Depth returns the maximum leaf level observed in the working version.
func (t *Tree) Depth() uint8 {
	var d uint8
	t.ForEachNode(func(_ Ref, o *Octant) bool {
		if l := o.Code.Level(); l > d {
			d = l
		}
		return true
	})
	return d
}

// RefineWhere refines every working-version leaf for which pred holds,
// recursively, until no leaf below maxLevel satisfies pred. New octants
// inherit their parent's data. Returns the number of leaf splits.
func (t *Tree) RefineWhere(pred func(morton.Code) bool, maxLevel uint8) int {
	defer t.span("Refine").End()
	before := t.stats.Refines
	nr, _ := t.refineWalk(t.cur, pred, maxLevel)
	t.cur = nr
	t.maybeEvict()
	t.maybeGC()
	return t.stats.Refines - before
}

// refineWalk recursively refines; returns the (possibly copied) ref and
// whether it changed.
func (t *Tree) refineWalk(r Ref, pred func(morton.Code) bool, maxLevel uint8) (Ref, bool) {
	o := t.readOct(r)
	if o.IsLeaf() {
		if o.Code.Level() >= maxLevel || !pred(o.Code) {
			return r, false
		}
		nr := t.splitLeaf(r, &o)
		// The fresh children may refine further; they are working-version
		// octants, so their refs cannot change.
		for _, c := range o.Children {
			t.refineWalk(c, pred, maxLevel)
		}
		return nr, nr != r
	}
	changed := false
	var chIdx [8]bool
	for i, c := range o.Children {
		if c.IsNil() {
			continue
		}
		nc, chg := t.refineWalk(c, pred, maxLevel)
		if chg {
			o.Children[i] = nc
			chIdx[i] = true
			changed = true
		}
	}
	if !changed {
		return r, false
	}
	if t.inPlace(r, &o) {
		t.writeChildren(r, &o)
		t.reparentChanged(r, &o, &chIdx)
		return r, false
	}
	nr := t.commitOctant(r, &o)
	return nr, true
}

// splitLeaf creates the 8 children of the leaf at r (after making it
// writable) and returns the leaf's (possibly copied) ref. o is updated to
// the written state.
func (t *Tree) splitLeaf(r Ref, o *Octant) Ref {
	nr := r
	if !t.inPlace(r, o) {
		// Path copying handled by the caller splicing nr upward.
		o.Version = t.step
		nr = t.allocIn(t.placeRegion(o.Code))
		t.stats.Copies++
	}
	for i := 0; i < 8; i++ {
		child := Octant{
			Code:    o.Code.Child(i),
			Parent:  nr,
			Data:    o.Data,
			Version: t.step,
		}
		cr := t.allocIn(t.placeRegion(child.Code))
		t.writeOct(cr, &child)
		o.Children[i] = cr
	}
	t.writeOct(nr, o)
	t.stats.Refines++
	if d := o.Code.Level() + 1; d > t.depth {
		t.depth = d
	}
	return nr
}

// RefineAt splits the leaf octant with exactly the given code. It is the
// building block of Balance. It panics if code does not name a leaf.
func (t *Tree) RefineAt(code morton.Code) {
	nr, ok := t.refineAtWalk(t.cur, code)
	if !ok {
		panic(fmt.Sprintf("core: RefineAt(%v): not a working-version leaf", code))
	}
	t.cur = nr
	t.maybeEvict()
}

func (t *Tree) refineAtWalk(r Ref, code morton.Code) (Ref, bool) {
	o := t.readOct(r)
	if o.Code == code {
		if !o.IsLeaf() {
			return r, false
		}
		return t.splitLeaf(r, &o), true
	}
	if !o.Code.IsAncestorOf(code) {
		return r, false
	}
	idx := code.AncestorAt(o.Code.Level() + 1).ChildIndex()
	c := o.Children[idx]
	if c.IsNil() {
		return r, false
	}
	nc, ok := t.refineAtWalk(c, code)
	if !ok {
		return r, false
	}
	if nc == c {
		return r, true
	}
	o.Children[idx] = nc
	if t.inPlace(r, &o) {
		t.writeChildren(r, &o)
		t.writeParentField(nc, r)
		return r, true
	}
	return t.commitOctant(r, &o), true
}

// CoarsenWhere collapses sibling groups of leaves whose parent satisfies
// pred, bottom-up, until stable within one pass. Child data is averaged
// into the parent. Returns the number of collapses.
func (t *Tree) CoarsenWhere(pred func(morton.Code) bool) int {
	defer t.span("Coarsen").End()
	before := t.stats.Coarsens
	nr, _, _ := t.coarsenWalk(t.cur, pred)
	t.cur = nr
	t.maybeEvict()
	t.maybeGC()
	return t.stats.Coarsens - before
}

// coarsenWalk returns (ref, refChanged, isLeafNow).
func (t *Tree) coarsenWalk(r Ref, pred func(morton.Code) bool) (Ref, bool, bool) {
	o := t.readOct(r)
	if o.IsLeaf() {
		return r, false, true
	}
	childrenChanged := false
	allLeaves := true
	var chIdx [8]bool
	for i, c := range o.Children {
		if c.IsNil() {
			continue
		}
		nc, chg, leaf := t.coarsenWalk(c, pred)
		if chg {
			o.Children[i] = nc
			chIdx[i] = true
			childrenChanged = true
		}
		if !leaf {
			allLeaves = false
		}
	}
	if allLeaves && pred(o.Code) {
		var sum [DataWords]float64
		for i, c := range o.Children {
			co := t.readOct(c)
			for w := 0; w < DataWords; w++ {
				sum[w] += co.Data[w]
			}
			t.discard(c, &co)
			o.Children[i] = NilRef
		}
		for w := 0; w < DataWords; w++ {
			o.Data[w] = sum[w] / 8
		}
		t.stats.Coarsens++
		nr := t.commitOctant(r, &o)
		return nr, nr != r, true
	}
	if !childrenChanged {
		return r, false, false
	}
	if t.inPlace(r, &o) {
		t.writeChildren(r, &o)
		t.reparentChanged(r, &o, &chIdx)
		return r, false, false
	}
	nr := t.commitOctant(r, &o)
	return nr, true, false
}

// UpdateLeaves applies fn to every leaf; when fn reports a change, the new
// data is stored copy-on-write. This is the solver's write path. Returns
// the number of modified leaves.
func (t *Tree) UpdateLeaves(fn func(code morton.Code, data *[DataWords]float64) bool) int {
	defer t.span("Solve").End()
	changedLeaves := 0
	nr, _ := t.updateWalk(t.cur, fn, &changedLeaves)
	t.cur = nr
	t.maybeEvict()
	return changedLeaves
}

func (t *Tree) updateWalk(r Ref, fn func(morton.Code, *[DataWords]float64) bool, n *int) (Ref, bool) {
	o := t.readOct(r)
	if o.IsLeaf() {
		if !fn(o.Code, &o.Data) {
			return r, false
		}
		*n++
		if t.inPlace(r, &o) {
			t.writeDataField(r, &o)
			return r, false
		}
		nr := t.commitOctant(r, &o)
		return nr, true
	}
	changed := false
	var chIdx [8]bool
	for i, c := range o.Children {
		if c.IsNil() {
			continue
		}
		nc, chg := t.updateWalk(c, fn, n)
		if chg {
			o.Children[i] = nc
			chIdx[i] = true
			changed = true
		}
	}
	if !changed {
		return r, false
	}
	if t.inPlace(r, &o) {
		t.writeChildren(r, &o)
		t.reparentChanged(r, &o, &chIdx)
		return r, false
	}
	nr := t.commitOctant(r, &o)
	return nr, true
}

// UpdateAt rewrites the data of the leaf containing code via fn,
// copy-on-write. It returns false if code is not covered by a leaf...
// (every location is covered; false only for out-of-tree refs).
func (t *Tree) UpdateAt(code morton.Code, fn func(data *[DataWords]float64)) bool {
	nr, ok := t.updateAtWalk(t.cur, code, fn)
	if ok {
		t.cur = nr
	}
	return ok
}

func (t *Tree) updateAtWalk(r Ref, code morton.Code, fn func(*[DataWords]float64)) (Ref, bool) {
	o := t.readOct(r)
	if o.IsLeaf() {
		fn(&o.Data)
		if t.inPlace(r, &o) {
			t.writeDataField(r, &o)
			return r, true
		}
		return t.commitOctant(r, &o), true
	}
	if o.Code.Level() >= code.Level() {
		// An interior octant at or below the target depth: code does not
		// name a leaf region in this tree.
		return r, false
	}
	idx := code.AncestorAt(o.Code.Level() + 1).ChildIndex()
	c := o.Children[idx]
	if c.IsNil() {
		return r, false
	}
	nc, ok := t.updateAtWalk(c, code, fn)
	if !ok {
		return r, false
	}
	if nc == c {
		return r, true
	}
	o.Children[idx] = nc
	if t.inPlace(r, &o) {
		t.writeChildren(r, &o)
		t.writeParentField(nc, r)
		return r, true
	}
	return t.commitOctant(r, &o), true
}
