package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/pmem"
)

// Multi-version fallback recovery. The paper guarantees "at least one
// version of the octree is consistent" across clean stops; under torn
// writes and media rot the newest committed version itself can be damaged
// after it was committed. To recover from that, Persist keeps a small
// persistent ring of the last histSlots superseded (root, step) pairs in
// the arena root table, and RestoreWithReport walks candidates newest
// first — the committed root, then the ring — validating each and
// returning the newest intact one.
//
// With Config.RetainVersions == 0 (the default) the ring entries point at
// octants GC has already reclaimed; they are then merely best-effort
// (validation rejects recycled slots). Setting RetainVersions = k <=
// histSlots makes GC keep the k newest superseded versions reachable, so
// fallback is guaranteed to have intact targets unless the media damage
// spans every retained version.

// MaxRetainVersions is the depth of the persistent fallback ring, and
// therefore the largest admissible Config.RetainVersions: GC cannot keep a
// superseded version restorable once its ring entry has been overwritten.
const MaxRetainVersions = histSlots

// RetainDepthError reports a Config.RetainVersions exceeding the fallback
// ring depth. It used to be silently clamped; snapshot catalogs need the
// honest answer to size their version windows.
type RetainDepthError struct {
	Requested int // the configured RetainVersions
	Limit     int // MaxRetainVersions
}

func (e *RetainDepthError) Error() string {
	return fmt.Sprintf("core: RetainVersions %d exceeds the fallback ring depth %d", e.Requested, e.Limit)
}

const (
	// histSlots is the depth of the persistent fallback ring. With the
	// committed version itself that bounds the recovery chain at
	// histSlots+1 versions.
	histSlots = 3
	// histBase is the first root-table slot of the ring; entry i occupies
	// slots (histBase+2i, histBase+2i+1) = (root ref, step). The arena
	// root table has pmem.NumRoots slots; 0 and 1 hold the commit record.
	histBase = 2
)

func histAddrSlot(i int) int { return histBase + 2*i }
func histStepSlot(i int) int { return histBase + 2*i + 1 }

// pushHistory records the about-to-be-superseded committed version in the
// fallback ring. Called by Persist before the commit stores; a crash
// between the push and the commit leaves the ring entry duplicating the
// still-committed root, which restore deduplicates.
func (t *Tree) pushHistory() {
	if t.committed.IsNil() || t.committed.InDRAM() {
		return
	}
	i := int(t.committedStep % histSlots)
	t.nv.SetRoot(histAddrSlot(i), uint64(t.committed))
	t.nv.SetRoot(histStepSlot(i), t.committedStep)
}

// markRetained marks the octants of ring versions young enough to be
// covered by Config.RetainVersions, so GC keeps them restorable. marked
// is the GC pass's reusable bitset (one bit per NVBM slot).
func (t *Tree) markRetained(marked []uint64) {
	k := t.cfg.RetainVersions
	if k <= 0 {
		return
	}
	// Snapshot the ring entries first (under rootMu when the persist
	// worker may be pushing entries concurrently), then mark outside the
	// lock — marking walks whole versions and must not stall commits.
	type entry struct {
		root Ref
		step uint64
	}
	var ring [histSlots]entry
	unlock := t.lockRootTable()
	for i := 0; i < histSlots; i++ {
		ring[i] = entry{Ref(t.nv.Root(histAddrSlot(i))), t.nv.Root(histStepSlot(i))}
	}
	unlock()
	for _, e := range ring {
		if e.root.IsNil() || e.root.InDRAM() {
			continue
		}
		if e.step+uint64(k) < t.committedStep {
			continue // aged out of the retention window
		}
		t.markGuarded(e.root, marked)
	}
}

// lockRootTable serializes a mutator-side root-table read sequence
// against the persist worker's ring pushes and commit flips. With the
// pipeline off there is no second writer and the lock is free.
func (t *Tree) lockRootTable() func() {
	if t.pipe == nil {
		return func() {}
	}
	t.pipe.rootMu.Lock()
	return t.pipe.rootMu.Unlock
}

// markGuarded marks reachable NVBM slots like markStack, but tolerates
// stale ring entries whose subtree was already partially reclaimed: freed
// or out-of-range handles are skipped instead of panicking, and access
// statistics are not perturbed.
func (t *Tree) markGuarded(r Ref, marked []uint64) {
	if r.IsNil() || r.InDRAM() {
		return
	}
	stack := append(t.markScratch[:0], r)
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if r.IsNil() || r.InDRAM() {
			continue
		}
		h := r.Handle()
		idx := uint32(h - 1)
		if marked[idx/64]&(1<<(idx%64)) != 0 || !t.nv.Live(h) {
			continue
		}
		marked[idx/64] |= 1 << (idx % 64)
		var o Octant
		// Pending-aware: an in-flight version's staged records have not
		// reached the device yet (chargedRead serves them from the
		// pipeline's pending set with identical modeled cost).
		t.chargedRead(r, t.scratch[:])
		o.decode(t.scratch[:])
		for _, c := range o.Children {
			stack = append(stack, c)
		}
	}
	t.markScratch = stack[:0]
}

// CommittedStep returns the step number of the last committed version.
func (t *Tree) CommittedStep() uint64 { return t.committedStep }

// CommittedStepOf reads the committed version number recorded on a
// surviving device without constructing a Tree (replica-freshness checks
// before a restore).
func CommittedStepOf(dev *nvbm.Device) (step uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: reading commit record: %v", r)
		}
	}()
	nv, err := pmem.OpenArena(dev)
	if err != nil {
		return 0, err
	}
	return nv.Root(rootSlotStep), nil
}

// RestoreReport describes how a restore found its version.
type RestoreReport struct {
	Candidates int      // versions examined, newest first
	Fallbacks  int      // candidates rejected before the chosen one
	ChosenStep uint64   // step number of the restored version
	Verified   bool     // deep validation ran on the chosen version
	Rejected   []string // rejection reasons for skipped candidates
}

// RestoreWithReport reopens a PM-octree like Restore, but walks the
// fallback chain: if the committed version fails validation (torn commit,
// media corruption), recovery falls back to the newest intact version in
// the persistent history ring instead of erroring. Candidates after the
// first are always deeply verified; the first (newest) is deeply verified
// only when cfg.VerifyRestore is set, keeping the default restore as
// cheap as the paper's (no octant data moves).
//
// When a fallback candidate is chosen, the commit record is repaired to
// point at it (root first, then step — crashing between the two stores
// leaves a state that restores to the same version).
func RestoreWithReport(cfg Config) (t *Tree, rep RestoreReport, err error) {
	defer func() {
		if r := recover(); r != nil {
			t, err = nil, fmt.Errorf("core: restore panicked: %v", r)
		}
	}()
	if err := cfg.Validate(); err != nil {
		return nil, rep, err
	}
	cfg = cfg.withDefaults()
	nv, err := pmem.OpenArena(cfg.NVBMDevice)
	if err != nil {
		return nil, rep, fmt.Errorf("core: restoring PM-octree: %w", err)
	}
	if nv.SlotSize() != RecordSize {
		return nil, rep, fmt.Errorf("core: arena slot size %d does not hold octant records", nv.SlotSize())
	}

	type candidate struct {
		root Ref
		step uint64
	}
	prim := candidate{Ref(nv.Root(rootSlotAddr)), nv.Root(rootSlotStep)}
	cands := []candidate{prim}
	var ring []candidate
	for i := 0; i < histSlots; i++ {
		c := candidate{Ref(nv.Root(histAddrSlot(i))), nv.Root(histStepSlot(i))}
		if c.root.IsNil() || c.root.InDRAM() || c.root == prim.root {
			continue
		}
		ring = append(ring, c)
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].step > ring[j].step })
	cands = append(cands, ring...)

	t = &Tree{
		cfg:    cfg,
		dram:   pmem.NewArena(cfg.DRAMDevice, RecordSize),
		nv:     nv,
		hot:    map[morton.Code]bool{},
		access: map[morton.Code]uint64{},
		rng:    rand.New(rand.NewSource(cfg.Seed + 1)),
		lsub:   1,
	}
	t.dram.SetBudget(cfg.DRAMBudgetOctants)
	if cfg.NVBMBudgetOctants > 0 {
		t.nv.SetBudget(cfg.NVBMBudgetOctants)
	}
	t.nv.SetWearLeveling(cfg.WearLeveling)

	for idx, c := range cands {
		rep.Candidates++
		deep := cfg.VerifyRestore || idx > 0
		if why := t.candidateError(c.root, c.step, deep); why != nil {
			rep.Rejected = append(rep.Rejected, fmt.Sprintf("step %d: %v", c.step, why))
			continue
		}
		t.committed, t.cur = c.root, c.root
		t.committedStep = c.step
		// The working version number must exceed every version tag stored
		// anywhere in the arena, including the rejected newer versions.
		t.step = c.step + 1
		if prim.step+1 > t.step {
			t.step = prim.step + 1
		}
		rep.ChosenStep = c.step
		rep.Fallbacks = idx
		rep.Verified = deep
		if idx > 0 {
			t.nv.SetRoot(rootSlotAddr, uint64(c.root))
			t.nv.SetRoot(rootSlotStep, c.step)
		}
		t.startPipeline()
		return t, rep, nil
	}
	return nil, rep, fmt.Errorf("core: no intact committed version among %d candidates: %s",
		rep.Candidates, strings.Join(rep.Rejected, "; "))
}

// candidateError checks whether the version rooted at root is restorable.
// The cheap check (deep=false) matches the legacy Restore precondition;
// the deep check additionally validates arena metadata and every
// reachable octant against media CRCs and structural invariants, and
// converts panics from walking garbage into rejections.
func (t *Tree) candidateError(root Ref, step uint64, deep bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("validation panicked: %v", r)
		}
	}()
	if root.IsNil() || root.InDRAM() || !t.nv.Live(root.Handle()) {
		return fmt.Errorf("root %v is not a live NVBM octant", root)
	}
	if !deep {
		return nil
	}
	return t.verifyVersion(root, step)
}

// verifyVersion deeply validates the committed version rooted at root: the
// arena metadata region and every reachable octant must pass the device's
// media CRC check (when tracking is on), every reachable ref must be a
// live NVBM slot, child codes must follow from parent codes, version tags
// must not exceed the version's step, and the graph must be acyclic.
func (t *Tree) verifyVersion(root Ref, step uint64) error {
	dev := t.cfg.NVBMDevice
	if dev.RangeCorrupt(0, t.nv.DataOffset()) {
		return fmt.Errorf("arena metadata region failed media CRC")
	}
	seen := make(map[pmem.Handle]bool)
	var walk func(r Ref, want morton.Code) error
	walk = func(r Ref, want morton.Code) error {
		if r.InDRAM() {
			return fmt.Errorf("octant %v resides in DRAM", want)
		}
		h := r.Handle()
		if seen[h] {
			return fmt.Errorf("cycle through handle %d", h)
		}
		if !t.nv.Live(h) {
			return fmt.Errorf("octant %v slot is not live", want)
		}
		seen[h] = true
		if off, n := t.nv.SlotRange(h); dev.RangeCorrupt(off, n) {
			return fmt.Errorf("octant %v failed media CRC", want)
		}
		var o Octant
		t.nv.Read(h, t.scratch[:])
		o.decode(t.scratch[:])
		if o.Code != want {
			return fmt.Errorf("octant code %v, want %v", o.Code, want)
		}
		if o.Version > step {
			return fmt.Errorf("octant %v version %d exceeds committed step %d", want, o.Version, step)
		}
		for i, c := range o.Children {
			if c.IsNil() {
				continue
			}
			if err := walk(c, want.Child(i)); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root, morton.Root)
}
