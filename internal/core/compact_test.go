package core

import (
	"testing"

	"pmoctree/internal/morton"
)

// churn runs alternating refine/coarsen/persist cycles that fragment the
// arena.
func churn(tr *Tree, rounds int) {
	for i := 0; i < rounds; i++ {
		cx := 0.2 + 0.6*float64(i)/float64(rounds)
		tr.RefineWhere(sphere(cx, 0.5, 0.5, 0.25, 0.2), 4)
		tr.CoarsenWhere(func(c morton.Code) bool {
			return !sphere(cx, 0.5, 0.5, 0.25, 0.4)(c)
		})
		tr.Persist()
	}
}

func TestCompactShrinksHighWater(t *testing.T) {
	tr := Create(Config{DRAMBudgetOctants: 256, Seed: 3})
	churn(tr, 8)
	before := leafSet(tr, tr.CommittedRoot())
	hwBefore := tr.nv.HighWater()

	retired, err := tr.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if retired == nil {
		t.Fatal("no retired device returned")
	}
	hwAfter := tr.nv.HighWater()
	if hwAfter >= hwBefore {
		t.Errorf("compaction did not shrink high water: %d -> %d", hwBefore, hwAfter)
	}
	if int(hwAfter) != tr.nv.LiveCount() {
		t.Errorf("compacted arena not dense: high water %d, live %d", hwAfter, tr.nv.LiveCount())
	}

	// Contents identical.
	after := leafSet(tr, tr.CommittedRoot())
	if !equalLeafSets(before, after) {
		t.Fatal("compaction changed the committed version")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}

	// The tree keeps working and persisting on the new region.
	tr.RefineWhere(func(c morton.Code) bool { return c.Level() < 2 }, 2)
	tr.Persist()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}

	// And a restart from the new device sees the post-compaction state.
	re, err := Restore(Config{NVBMDevice: tr.NVBMDevice()})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactRefusesMidStep(t *testing.T) {
	tr := Create(Config{})
	tr.Persist()
	tr.RefineWhere(func(c morton.Code) bool { return c.Level() < 1 }, 1) // uncommitted work
	if _, err := tr.Compact(); err == nil {
		t.Error("compaction accepted an uncommitted working version")
	}
}

func TestCompactPreservesRestorePoint(t *testing.T) {
	tr := Create(Config{Seed: 2})
	tr.RefineWhere(sphere(0.5, 0.5, 0.5, 0.3, 0.2), 3)
	tr.Persist()
	want := leafSet(tr, tr.CommittedRoot())
	step := tr.Step()

	if _, err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	re, err := Restore(Config{NVBMDevice: tr.NVBMDevice()})
	if err != nil {
		t.Fatal(err)
	}
	if re.Step() != step {
		t.Errorf("restored step %d, want %d", re.Step(), step)
	}
	got := leafSet(re, re.Root())
	if !equalLeafSets(got, want) {
		t.Fatal("restore after compaction lost data")
	}
}

func TestCompactedLayoutIsZOrdered(t *testing.T) {
	tr := Create(Config{Seed: 5})
	churn(tr, 5)
	if _, err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	// Pre-order allocation: every parent's handle precedes its
	// children's (traversal reads move forward through the region).
	ok := true
	tr.setAccounting(false)
	tr.walk(tr.CommittedRoot(), func(r Ref, o *Octant) bool {
		for _, c := range o.Children {
			if !c.IsNil() && c.Handle() <= r.Handle() {
				ok = false
				return false
			}
		}
		return true
	})
	tr.setAccounting(true)
	if !ok {
		t.Error("compacted layout not in pre-order")
	}
}
