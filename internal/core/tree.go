package core

import (
	"math"
	"math/rand"
	"sync"

	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/pmem"
	"pmoctree/internal/telemetry"
	"pmoctree/internal/tile"
)

// Feature is an application-level predicate used by feature-directed
// sampling (§3.3): it returns true when the octant's domain is of interest
// (e.g. its refinement condition holds). PM-octree pre-executes these on
// sampled octants to predict subtree access frequency.
type Feature func(code morton.Code, data [DataWords]float64) bool

// Config parameterizes a PM-octree.
type Config struct {
	// DRAMBudgetOctants is the C0 capacity in octants (the paper's
	// "DRAM size configured for the C0 tree"). Default 4096.
	DRAMBudgetOctants int
	// NVBMBudgetOctants, when nonzero, triggers on-demand GC when NVBM
	// utilization crosses ThresholdNVBM.
	NVBMBudgetOctants int
	// ThresholdDRAM is the C0 utilization high watermark above which the
	// least-frequently-accessed hot subtree is merged out to C1.
	// Default 0.9.
	ThresholdDRAM float64
	// ThresholdNVBM is the NVBM utilization high watermark for on-demand
	// GC. Default 0.9.
	ThresholdNVBM float64
	// TTransform is the access-frequency ratio above which a hot NVBM
	// subtree displaces a cold DRAM subtree (§3.3). Default 1.5.
	TTransform float64
	// NSample is the per-subtree sample budget; the paper uses
	// min(100, subtree size). Default 100.
	NSample int
	// DisableTransform turns off feature-directed layout transformation;
	// the hot set is then chosen obliviously in Z-order (Figure 5a).
	DisableTransform bool
	// WearLeveling selects FIFO slot recycling in the NVBM arena,
	// rotating writes across freed slots to extend device lifetime at a
	// small locality cost (extension; see pmbench endurance).
	WearLeveling bool
	// GCEvery runs the end-of-step collection only every k-th persist
	// (default 1: every step, as the paper prescribes). Larger values
	// effectively retain more superseded versions, trading memory for
	// fewer sweeps — the k-version retention ablation of DESIGN.md.
	GCEvery int
	// Seed drives the deterministic sampling RNG.
	Seed int64
	// VerifyRestore makes Restore deeply validate the newest committed
	// version (structure + media CRCs) before accepting it, instead of
	// only on fallback candidates. Off by default: the paper's restore is
	// O(1) and torture tests rely on that cost.
	VerifyRestore bool
	// RetainVersions, when k > 0, makes GC keep the k newest superseded
	// versions reachable, so restore can genuinely walk back to them after
	// media damage and snapshot servers can pin them. The fallback ring
	// holds at most MaxRetainVersions entries; asking for more is a
	// configuration error (RetainDepthError) — Create panics with it,
	// Restore returns it. Default 0: superseded versions are reclaimed as
	// the paper prescribes.
	RetainVersions int
	// PipelineDepth, when k > 0, turns on the asynchronous persistence
	// pipeline: Persist stages the step's merge delta and returns while a
	// background worker performs the NVBM writeback, fallback-ring push,
	// and commit-record flip. k bounds the in-flight window (versions
	// enqueued but not yet durable); Persist blocks when the window is
	// full. It may not exceed MaxRetainVersions - RetainVersions — every
	// commit claims a fallback-ring entry, and the retained versions must
	// survive a full in-flight window (PipelineDepthError otherwise).
	// Default 0: the synchronous Persist, bit-identical to the unpipelined
	// tree. See pipeline.go for semantics and Flush for the durability
	// barrier.
	PipelineDepth int
	// GroupCommit, with PipelineDepth > 0, lets the persist worker
	// coalesce up to this many queued step deltas into one durable commit:
	// one writeback batch, one ring push, one commit-record flip naming
	// the newest version of the group. Versions folded into a group never
	// get their own commit record. Clamped to [1, PipelineDepth].
	GroupCommit int
	// CacheCommittedReads lets the decoded-octant cache elide the modeled
	// device read on hits against committed-version NVBM octants, which
	// are immutable under multi-version copy-on-write. Off by default —
	// the default cache only skips the host-side decode, keeping every
	// modeled access statistic (and the paper-figure reproductions)
	// bit-identical — so pmbench fig* runs measure the paper's costs.
	CacheCommittedReads bool

	// NVBMDevice, when set, is the persistent region to use (e.g. one
	// reopened after a crash). Otherwise a fresh device is created.
	NVBMDevice *nvbm.Device
	// DRAMDevice, when set, backs the C0 arena. Otherwise created.
	DRAMDevice *nvbm.Device
}

// Validate reports configuration errors that defaulting cannot repair:
// RetainVersions deeper than the persistent fallback ring (which used to
// be silently clamped — a snapshot catalog sized to the request would
// then pin fewer versions than promised), and a persist-pipeline window
// deeper than the ring headroom left after retention.
func (c Config) Validate() error {
	if c.RetainVersions > MaxRetainVersions {
		return &RetainDepthError{Requested: c.RetainVersions, Limit: MaxRetainVersions}
	}
	if c.PipelineDepth > 0 {
		if limit := MaxRetainVersions - c.RetainVersions; c.PipelineDepth > limit {
			return &PipelineDepthError{Requested: c.PipelineDepth, Limit: limit}
		}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.DRAMBudgetOctants <= 0 {
		c.DRAMBudgetOctants = 4096
	}
	if c.ThresholdDRAM <= 0 {
		c.ThresholdDRAM = 0.9
	}
	if c.ThresholdNVBM <= 0 {
		c.ThresholdNVBM = 0.9
	}
	if c.TTransform <= 0 {
		c.TTransform = 1.5
	}
	if c.NSample <= 0 {
		c.NSample = 100
	}
	if c.GCEvery <= 0 {
		c.GCEvery = 1
	}
	if c.NVBMDevice == nil {
		c.NVBMDevice = nvbm.New(nvbm.NVBM, 0)
	}
	if c.DRAMDevice == nil {
		c.DRAMDevice = nvbm.New(nvbm.DRAM, 0)
	}
	return c
}

// Persistent root-table slots in the NVBM arena.
const (
	rootSlotAddr = 0 // ADDR of the committed version's root octant
	rootSlotStep = 1 // step number of the committed version
)

// Tree is a PM-octree. It is not safe for concurrent use; in the
// distributed simulation each rank owns one Tree.
type Tree struct {
	cfg  Config
	dram *pmem.Arena // C0: hot subtrees + trunk of the working version
	nv   *pmem.Arena // C1 + all committed octants

	committed     Ref    // root of V(i-1), always NVBM, never mutated
	cur           Ref    // root of V(i), the working version
	step          uint64 // working version number
	committedStep uint64 // version number of committed (indexes the fallback ring)

	// Layout state (§3.3).
	lsub     uint8                  // subtree level L_sub (Eq. 1)
	hot      map[morton.Code]bool   // hot subtree roots (C0 residents)
	trunk    map[morton.Code]bool   // ancestors of hot roots (nil until first retarget)
	access   map[morton.Code]uint64 // per-subtree access counts this step
	features []Feature
	rng      *rand.Rand
	depth    uint8 // max leaf level observed

	// scratch is the shared encode buffer of the WRITE path (and of the
	// guarded raw reads in recovery/compaction). Mutating operations are
	// single-threaded by the Tree contract, so one buffer suffices; the
	// READ path (readOct, the committed walk) uses per-call buffers so
	// side-effect-free readers can run concurrently (see
	// ForEachCommittedNode).
	scratch [RecordSize]byte
	stats   OpStats
	tel     *telemetry.Tracer         // nil when telemetry is off
	flight  *telemetry.FlightRecorder // nil when the flight recorder is off

	// Octant fast path (cache.go, leafindex.go): the direct-mapped
	// decoded-octant cache with its epoch stamp, the Z-order leaf index
	// with its mutation-sequence stamp, and the fast-path counters.
	cache         []cacheLine
	cacheEpoch    uint64
	mutSeq        uint64
	leafSnap      []LeafEntry
	leafSnapSeq   uint64
	leafSnapOK    bool
	leafCodesSnap []morton.Code
	leafCodesOK   bool
	fp            FastPathStats

	// Tiled SoA leaf storage (tiles.go): the gathered flat field image
	// the hot kernels sweep, stamped with mutSeq like the leaf index.
	tiles *tile.Store

	// GC scratch (gc.go): the reusable mark bitset and explicit stack.
	markBits    []uint64
	markScratch []Ref

	// Bulk-construction boundary stamp (construct.go): when constructClean
	// and the mutation sequence still equals constructSeq, the working
	// version was just built by ConstructFromCodes — fully NVBM-resident
	// with exact parent links — so Persist's merge walk is provably a
	// no-op and is skipped. Any mutation in between invalidates the stamp.
	constructClean bool
	constructSeq   uint64

	// pipe is the asynchronous persist pipeline (pipeline.go), nil when
	// Config.PipelineDepth is 0 — every pipelined branch in the hot paths
	// is a nil check, keeping the synchronous tree bit-identical.
	pipe *pipeline

	// Snapshot pin registry (snapshot.go): committed versions held alive
	// for concurrent readers. pinMu orders reader Releases against the
	// writer's pin/GC/Compact passes; everything else on the Tree stays
	// single-threaded by contract.
	pinMu sync.Mutex
	pins  map[*VersionPin]struct{}

	// peakDRAMUtil tracks the highest C0 utilization seen during the
	// current step; lastPeakDRAMUtil holds the previous step's peak
	// (Persist rolls it over). The budget auto-tuner reads the latter:
	// post-persist utilization is always ~0 because the merge drains C0.
	peakDRAMUtil     float64
	lastPeakDRAMUtil float64
}

// OpStats counts structural operations on the tree.
type OpStats struct {
	Refines    int // leaf splits
	Coarsens   int // sibling-group collapses
	Constructs int // bulk tree constructions from Morton codes
	Copies     int // COW octant copies
	Merges     int // C0 subtree evictions to C1
	Persists   int // committed versions
	GCs        int // collection passes
	GCFreed    int // octants reclaimed
	Transforms int // subtree swaps by dynamic transformation
	Deferred   int // NVBM octants awaiting GC (deferred deletion)
}

// Create builds a new PM-octree holding one root octant, commits it as the
// first persistent version, and returns the tree (pm_create, Table 1).
// Create panics on an invalid Config (see Config.Validate); use Validate
// first when the configuration is not statically known.
func Create(cfg Config) *Tree {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	t := &Tree{
		cfg:    cfg,
		dram:   pmem.NewArena(cfg.DRAMDevice, RecordSize),
		nv:     pmem.NewArena(cfg.NVBMDevice, RecordSize),
		step:   1,
		hot:    map[morton.Code]bool{},
		access: map[morton.Code]uint64{},
		rng:    rand.New(rand.NewSource(cfg.Seed + 1)),
		lsub:   1,
	}
	t.dram.SetBudget(cfg.DRAMBudgetOctants)
	if cfg.NVBMBudgetOctants > 0 {
		t.nv.SetBudget(cfg.NVBMBudgetOctants)
	}
	t.nv.SetWearLeveling(cfg.WearLeveling)
	root := Octant{Code: morton.Root, Version: 0}
	r := t.allocIn(false)
	t.writeOct(r, &root)
	t.nv.SetRoot(rootSlotAddr, uint64(r))
	t.nv.SetRoot(rootSlotStep, 0)
	t.committed = r
	t.cur = r
	t.startPipeline()
	return t
}

// Restore reopens a PM-octree from an NVBM device that survived a crash or
// restart (pm_restore, Table 1). The working version is reset to the last
// committed version; octants reachable only from a lost working version
// are reclaimed by the next GC pass, not here — restoring is
// near-instantaneous because no octant data moves. When the committed
// version is damaged, recovery walks back through the persistent fallback
// ring to the newest intact version (see RestoreWithReport).
func Restore(cfg Config) (*Tree, error) {
	t, _, err := RestoreWithReport(cfg)
	return t, err
}

// Delete drops all octants in both regions (pm_delete, Table 1). The
// tree is unusable afterwards; create a fresh one to continue. Deleting
// while snapshot pins are outstanding is a caller error: readers would
// observe reformatted slots (reads stay memory-safe, results become
// garbage).
func (t *Tree) Delete() {
	// In-flight versions die with the tree; stop the worker before the
	// arenas are reformatted under it.
	t.AbortPipeline()
	t.dram = pmem.NewArena(t.cfg.DRAMDevice, RecordSize)
	t.nv = pmem.NewArena(t.cfg.NVBMDevice, RecordSize)
	t.committed, t.cur = NilRef, NilRef
	t.hot = map[morton.Code]bool{}
	t.trunk = nil
	t.access = map[morton.Code]uint64{}
	t.depth = 0
	t.lsub = 1
	t.cacheInvalidateAll()
	t.invalidateLeafIndex()
}

// SetFeatures installs the application feature functions used by
// feature-directed sampling. Passing none disables sampling-based layout.
func (t *Tree) SetFeatures(fs ...Feature) { t.features = fs }

// Step returns the working version number.
func (t *Tree) Step() uint64 { return t.step }

// Root returns the working version's root ref.
func (t *Tree) Root() Ref { return t.cur }

// CommittedRoot returns the last committed version's root ref.
func (t *Tree) CommittedRoot() Ref { return t.committed }

// Stats returns operation counters.
func (t *Tree) Stats() OpStats { return t.stats }

// SetTracer attaches a telemetry tracer; every PM-octree routine
// (Refine/Coarsen/Balance/Solve/Persist/Merge/GC/Transform/Compact) then
// records a phase span tagged with the working version number. A nil
// tracer (the default) turns spans off.
func (t *Tree) SetTracer(tel *telemetry.Tracer) { t.tel = tel }

// Tracer returns the attached tracer (nil when telemetry is off),
// satisfying telemetry.Traceable so the step driver can tag spans.
func (t *Tree) Tracer() *telemetry.Tracer { return t.tel }

// SetFlightRecorder attaches a flight recorder; Persist and GC then
// record commit and gc events into it. A nil recorder (the default)
// turns recording off.
func (t *Tree) SetFlightRecorder(fr *telemetry.FlightRecorder) { t.flight = fr }

// FlightRecorder returns the attached flight recorder (nil when off).
func (t *Tree) FlightRecorder() *telemetry.FlightRecorder { return t.flight }

// span opens a phase span tagged with the working version; the usual call
// site is `defer t.span("Refine").End()`. Nil-safe end to end.
func (t *Tree) span(name string) *telemetry.Span {
	if t.tel == nil {
		return nil
	}
	t.tel.SetStep(t.step)
	return t.tel.Begin(name)
}

// RegisterMetrics publishes the tree's operation counters and both
// devices' access counters as function gauges under prefix.
func (t *Tree) RegisterMetrics(r *telemetry.Registry, prefix string) {
	if r == nil {
		return
	}
	r.RegisterFunc(prefix+".refines", func() float64 { return float64(t.stats.Refines) })
	r.RegisterFunc(prefix+".coarsens", func() float64 { return float64(t.stats.Coarsens) })
	r.RegisterFunc(prefix+".constructs", func() float64 { return float64(t.stats.Constructs) })
	r.RegisterFunc(prefix+".copies", func() float64 { return float64(t.stats.Copies) })
	r.RegisterFunc(prefix+".merges", func() float64 { return float64(t.stats.Merges) })
	r.RegisterFunc(prefix+".persists", func() float64 { return float64(t.stats.Persists) })
	r.RegisterFunc(prefix+".gcs", func() float64 { return float64(t.stats.GCs) })
	r.RegisterFunc(prefix+".gc_freed", func() float64 { return float64(t.stats.GCFreed) })
	r.RegisterFunc(prefix+".transforms", func() float64 { return float64(t.stats.Transforms) })
	r.RegisterFunc(prefix+".step", func() float64 { return float64(t.step) })
	// Fast-path counters live under fixed "core." names so dashboards
	// find them regardless of the caller's prefix.
	r.RegisterFunc("core.cache.hits", func() float64 { return float64(t.fp.CacheHits) })
	r.RegisterFunc("core.cache.misses", func() float64 { return float64(t.fp.CacheMisses) })
	r.RegisterFunc("core.cache.invalidations", func() float64 { return float64(t.fp.CacheInvalidations) })
	r.RegisterFunc("core.cache.skipped_reads", func() float64 { return float64(t.fp.CacheSkippedReads) })
	r.RegisterFunc("core.leafindex.rebuilds", func() float64 { return float64(t.fp.LeafIndexRebuilds) })
	r.RegisterFunc("core.leafindex.reuses", func() float64 { return float64(t.fp.LeafIndexReuses) })
	r.RegisterFunc("core.tile.rebuilds", func() float64 { return float64(t.fp.TileRebuilds) })
	r.RegisterFunc("core.tile.reuses", func() float64 { return float64(t.fp.TileReuses) })
	r.RegisterFunc("core.tile.rebuild_ns", func() float64 { return float64(t.fp.TileRebuildNs) })
	r.RegisterFunc("core.tile.gather_bytes", func() float64 { return float64(t.fp.TileGatherBytes) })
	r.RegisterFunc("core.tile.scatters", func() float64 { return float64(t.fp.TileScatters) })
	r.RegisterFunc("core.tile.scatter_bytes", func() float64 { return float64(t.fp.TileScatterBytes) })
	r.RegisterFunc("core.tile.occupancy", func() float64 {
		if t.tiles == nil || !t.tiles.ValidFor(t.mutSeq) {
			return 0 // gauge reads must not force a gather
		}
		return t.tiles.Occupancy()
	})
	r.RegisterFunc("core.pipeline.enqueued", func() float64 { return float64(t.PipelineStats().Enqueued) })
	r.RegisterFunc("core.pipeline.committed", func() float64 { return float64(t.PipelineStats().Committed) })
	r.RegisterFunc("core.pipeline.coalesced", func() float64 { return float64(t.PipelineStats().Coalesced) })
	r.RegisterFunc("core.pipeline.stalls", func() float64 { return float64(t.PipelineStats().Stalls) })
	r.RegisterFunc("core.pipeline.pending", func() float64 { return float64(t.PipelineStats().Pending) })
	telemetry.RegisterDevice(r, prefix+".nvbm", t.cfg.NVBMDevice)
	telemetry.RegisterDevice(r, prefix+".dram", t.cfg.DRAMDevice)
}

// DRAMDevice returns the device backing C0.
func (t *Tree) DRAMDevice() *nvbm.Device { return t.cfg.DRAMDevice }

// NVBMDevice returns the persistent device.
func (t *Tree) NVBMDevice() *nvbm.Device { return t.cfg.NVBMDevice }

// SubtreeLevel returns the current L_sub (Eq. 1).
func (t *Tree) SubtreeLevel() uint8 { return t.lsub }

// HotSubtrees returns a copy of the hot subtree root set.
func (t *Tree) HotSubtrees() map[morton.Code]bool {
	out := make(map[morton.Code]bool, len(t.hot))
	for c := range t.hot {
		out[c] = true
	}
	return out
}

// --- low-level octant access ---

func (t *Tree) arenaFor(r Ref) *pmem.Arena {
	if r.InDRAM() {
		return t.dram
	}
	return t.nv
}

// chargedRead fills buf from the record at r, serving NVBM slots that are
// staged in the persist pipeline but not yet written back from the
// pipeline's pending set (read-your-writes). A pending hit still charges
// the modeled device read, so modeled traffic — and therefore the golden
// statistics — does not depend on writeback timing. With the pipeline off
// this is exactly the arena read.
func (t *Tree) chargedRead(r Ref, buf []byte) {
	if pp := t.pipe; pp != nil && !r.InDRAM() && pp.readPendingField(r.Handle(), 0, buf) {
		t.cfg.NVBMDevice.ChargeRead(len(buf))
		return
	}
	t.arenaFor(r).Read(r.Handle(), buf)
}

// readOct loads the octant at r and records a subtree access. A decoded-
// cache hit skips the host-side decode; in the default configuration the
// charged device read still happens (same bytes, same modeled latency),
// so cached and uncached runs produce identical device statistics. With
// Config.CacheCommittedReads, hits on immutable committed-version NVBM
// octants skip the device read as well.
func (t *Tree) readOct(r Ref) Octant {
	if line := t.cacheLineOf(r); line != nil {
		t.fp.CacheHits++
		if t.cfg.CacheCommittedReads && !r.InDRAM() && line.oct.Version < t.step {
			t.fp.CacheSkippedReads++
		} else {
			var buf [RecordSize]byte
			t.chargedRead(r, buf[:])
		}
		o := line.oct
		t.touch(o.Code)
		return o
	}
	t.fp.CacheMisses++
	var o Octant
	var buf [RecordSize]byte
	t.chargedRead(r, buf[:])
	o.decode(buf[:])
	t.cachePut(r, &o)
	t.touch(o.Code)
	return o
}

// writeOct stores o at r and writes it through to the decoded cache.
func (t *Tree) writeOct(r Ref, o *Octant) {
	o.encode(t.scratch[:])
	t.arenaFor(r).Write(r.Handle(), t.scratch[:])
	t.cachePut(r, o)
	t.noteMutation()
	t.touch(o.Code)
}

// writeChildren stores only the children field of o at r (a partial write,
// cheaper than rewriting the record), patching the cached line if present.
func (t *Tree) writeChildren(r Ref, o *Octant) {
	var buf [32]byte
	for i := 0; i < 8; i++ {
		putU32(buf[4*i:], uint32(o.Children[i]))
	}
	t.arenaFor(r).WriteField(r.Handle(), offChildren, buf[:])
	if line := t.cacheLineOf(r); line != nil {
		line.oct.Children = o.Children
	}
	t.noteMutation()
}

// writeParentField stores only the parent field at r. While a pipelined
// merge is staging, a target relocated moments earlier has no device
// record yet — the parent is patched into its staged record instead (the
// field reaches the device once, with the batch writeback, so the fix-up
// write is never charged).
func (t *Tree) writeParentField(r Ref, parent Ref) {
	if pp := t.pipe; pp != nil && !r.InDRAM() && pp.patchParent(r.Handle(), parent) {
		if line := t.cacheLineOf(r); line != nil {
			line.oct.Parent = parent
		}
		t.noteMutation()
		return
	}
	var buf [4]byte
	putU32(buf[:], uint32(parent))
	t.arenaFor(r).WriteField(r.Handle(), offParent, buf[:])
	if line := t.cacheLineOf(r); line != nil {
		line.oct.Parent = parent
	}
	t.noteMutation()
}

// writeDataField stores only the data array at r.
func (t *Tree) writeDataField(r Ref, o *Octant) {
	var buf [8 * DataWords]byte
	for i := 0; i < DataWords; i++ {
		putU64(buf[8*i:], f64bits(o.Data[i]))
	}
	t.arenaFor(r).WriteField(r.Handle(), offData, buf[:])
	if line := t.cacheLineOf(r); line != nil {
		line.oct.Data = o.Data
	}
	t.noteMutation()
}

// writeFlagsField stores only the flags word at r.
func (t *Tree) writeFlagsField(r Ref, flags uint32) {
	var buf [4]byte
	putU32(buf[:], flags)
	t.arenaFor(r).WriteField(r.Handle(), offFlags, buf[:])
	if line := t.cacheLineOf(r); line != nil {
		line.oct.Flags = flags
	}
	t.noteMutation()
}

// readVersion loads only the version word at r, consulting the persist
// pipeline's pending set first (the staged record is the truth for a slot
// whose writeback has not landed; the modeled field read is still
// charged).
func (t *Tree) readVersion(r Ref) uint64 {
	var buf [8]byte
	if pp := t.pipe; pp != nil && !r.InDRAM() && pp.readPendingField(r.Handle(), offVersion, buf[:]) {
		t.cfg.NVBMDevice.ChargeRead(len(buf))
		return getU64(buf[:])
	}
	t.arenaFor(r).ReadField(r.Handle(), offVersion, buf[:])
	return getU64(buf[:])
}

// allocIn allocates an octant slot in the chosen region. The slot is not
// zeroed: every caller immediately stores a full record into it.
func (t *Tree) allocIn(inDRAM bool) Ref {
	if inDRAM {
		r := makeRef(true, t.dram.AllocRaw())
		if u := t.dram.Utilization(); u > t.peakDRAMUtil {
			t.peakDRAMUtil = u
		}
		return r
	}
	return makeRef(false, t.nv.AllocRaw())
}

// placeRegion decides where a new octant for code belongs: hot subtrees
// and the trunk above them go to DRAM (C0); everything else goes to NVBM
// (C1). Before the first layout pass (trunk == nil) all shallow octants
// bootstrap into DRAM. When the DRAM budget is exhausted, placement falls
// back to NVBM.
func (t *Tree) placeRegion(code morton.Code) bool {
	if t.dramFull() {
		return false
	}
	if code.Level() < t.lsub {
		if t.trunk == nil {
			return true
		}
		return t.hot[code] || t.trunk[code]
	}
	return t.hot[code.AncestorAt(t.lsub)]
}

// dramFull reports whether the C0 arena has reached its hard capacity.
// The watermark eviction of maybeEvict normally keeps utilization below
// this; the cap only bites when the budget is smaller than the trunk.
func (t *Tree) dramFull() bool {
	b := t.dram.Budget()
	return b > 0 && t.dram.LiveCount() >= b
}

// regionForCopy places a COW copy of an existing octant. It differs from
// placeRegion in one safety rule: an octant with DRAM-resident children
// must itself stay in DRAM, preserving the invariant that NVBM octants
// never reference DRAM octants (a crash must never leave the persistent
// graph pointing into lost memory).
func (t *Tree) regionForCopy(o *Octant) bool {
	for _, c := range o.Children {
		if c.InDRAM() {
			return true
		}
	}
	return t.placeRegion(o.Code)
}

// inPlace reports whether the octant at r may be mutated in place: DRAM
// octants always (C0 is never shared), NVBM octants only when created in
// the working version (V(i-1) cannot reference them).
func (t *Tree) inPlace(r Ref, o *Octant) bool {
	return r.InDRAM() || o.Version == t.step
}

// isCurrent reports whether the octant at r belongs to the working
// version's mutable set, reading only its version field.
func (t *Tree) isCurrent(r Ref) bool {
	return r.InDRAM() || t.readVersion(r) == t.step
}

// commitOctant stores the (modified) octant o, copying on write when r is
// shared with the committed version. It returns the ref now holding o;
// when that differs from r, the caller must splice it into the parent.
func (t *Tree) commitOctant(r Ref, o *Octant) Ref {
	if t.inPlace(r, o) {
		t.writeOct(r, o)
		return r
	}
	o.Version = t.step
	nr := t.allocIn(t.regionForCopy(o))
	t.writeOct(nr, o)
	t.stats.Copies++
	// Children created in the working version keep exact parent refs;
	// shared children keep their V(i-1) parent (upward traversal is only
	// defined within a version).
	for _, c := range o.Children {
		if !c.IsNil() && t.isCurrent(c) {
			t.writeParentField(c, nr)
		}
	}
	return nr
}

// reparentChanged repairs the parent field of children whose refs were
// just spliced into the in-place parent at r: a COW copy carries the stale
// parent ref of the shared octant it replaced.
func (t *Tree) reparentChanged(r Ref, o *Octant, changed *[8]bool) {
	for i, c := range o.Children {
		if changed[i] && !c.IsNil() {
			t.writeParentField(c, r)
		}
	}
}

// discard unlinks the octant at r from the working version: DRAM octants
// are freed eagerly; working-version NVBM octants are marked deleted and
// left for GC (deferred deletion, §3.2); shared octants are untouched —
// they still belong to V(i-1).
func (t *Tree) discard(r Ref, o *Octant) {
	switch {
	case r.InDRAM():
		t.dram.Free(r.Handle())
		t.cacheDrop(r)
		t.noteMutation()
	case o.Version == t.step:
		t.writeFlagsField(r, o.Flags|FlagDeleted)
		t.stats.Deferred++
	}
}

// touch records an access to the subtree containing code for LFA eviction
// and access statistics.
func (t *Tree) touch(code morton.Code) {
	if code.Level() < t.lsub {
		if t.hot[code] {
			t.access[code]++
		}
		return
	}
	t.access[code.AncestorAt(t.lsub)]++
}

// --- little-endian helpers (avoiding binary import churn here) ---

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func f64bits(f float64) uint64 { return math.Float64bits(f) }

func getU64(b []byte) uint64 {
	lo := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
	hi := uint64(b[4]) | uint64(b[5])<<8 | uint64(b[6])<<16 | uint64(b[7])<<24
	return lo | hi<<32
}
