package core

import (
	"fmt"
	"testing"

	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
)

// bypassRead decodes the octant at r straight from the arena, ignoring
// the decoded cache — the ground truth a cached readOct must match.
func bypassRead(tr *Tree, r Ref) Octant {
	var buf [RecordSize]byte
	tr.arenaFor(r).Read(r.Handle(), buf[:])
	var o Octant
	o.decode(buf[:])
	return o
}

// verifyCacheCoherent walks the working version and checks that every
// octant readOct returns (possibly a cache hit) is bit-identical to the
// record on the device.
func verifyCacheCoherent(t *testing.T, tr *Tree, label string) {
	t.Helper()
	tr.ForEachNode(func(r Ref, o *Octant) bool {
		if want := bypassRead(tr, r); *o != want {
			t.Fatalf("%s: cached octant at %v diverged from device:\ncached: %+v\ndevice: %+v",
				label, r, *o, want)
		}
		return true
	})
	if !tr.committed.IsNil() {
		// The committed version too: its refs are disjoint from the cache's
		// view only when coherence failed.
		var walk func(r Ref)
		walk = func(r Ref) {
			want := bypassRead(tr, r)
			if got := tr.readOct(r); got != want {
				t.Fatalf("%s: committed octant at %v diverged from device:\ncached: %+v\ndevice: %+v",
					label, r, got, want)
			}
			for _, c := range want.Children {
				if !c.IsNil() {
					walk(c)
				}
			}
		}
		walk(tr.committed)
	}
}

// TestCacheCoherence interleaves every mutation class the octree has —
// refinement, data sweeps (walk-driven and index-driven), coarsening,
// balancing, Persist's merge+commit+GC, on-demand GC, Compact, and
// crash restore — and asserts after each that cached reads equal a
// direct device read+decode, with the charge-preserving default and
// with CacheCommittedReads skipping device traffic.
func TestCacheCoherence(t *testing.T) {
	for _, cachedReads := range []bool{false, true} {
		t.Run(fmt.Sprintf("CacheCommittedReads=%v", cachedReads), func(t *testing.T) {
			dev := nvbm.New(nvbm.NVBM, 0)
			cfg := Config{
				NVBMDevice:          dev,
				DRAMDevice:          nvbm.New(nvbm.DRAM, 0),
				DRAMBudgetOctants:   256,
				RetainVersions:      1,
				CacheCommittedReads: cachedReads,
			}
			tr := Create(cfg)

			steps := []struct {
				name string
				run  func()
			}{
				{"refine", func() { tr.RefineWhere(sphere(0.4, 0.4, 0.4, 0.3, 0.2), 3) }},
				{"update", func() {
					tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
						d[0] = float64(c) * 0.5
						return true
					})
				}},
				{"updateIndexed", func() {
					tr.UpdateLeavesIndexed(func(c morton.Code, d *[DataWords]float64) bool {
						d[1] = d[0] + 1
						return true
					})
				}},
				{"persist", func() { tr.Persist() }},
				{"refineDeeper", func() { tr.RefineWhere(sphere(0.6, 0.6, 0.6, 0.25, 0.15), 4) }},
				{"balance", func() { tr.Balance() }},
				{"coarsen", func() {
					tr.CoarsenWhere(func(c morton.Code) bool { return c.Level() >= 3 })
				}},
				{"gc", func() { tr.GC() }},
				{"persistAgain", func() { tr.Persist() }},
				{"indexedAfterPersist", func() {
					tr.UpdateLeavesIndexed(func(c morton.Code, d *[DataWords]float64) bool {
						d[2] = d[1] * 2
						return true
					})
				}},
				{"compact", func() {
					tr.Persist()
					if _, err := tr.Compact(); err != nil {
						t.Fatalf("compact: %v", err)
					}
				}},
			}
			for _, s := range steps {
				s.run()
				verifyCacheCoherent(t, tr, s.name)
				if err := tr.Validate(); err != nil {
					t.Fatalf("%s: %v", s.name, err)
				}
			}

			fp := tr.FastPath()
			if fp.CacheHits == 0 || fp.CacheMisses == 0 {
				t.Errorf("fast path never exercised: %+v", fp)
			}
			if cachedReads && fp.CacheSkippedReads == 0 {
				t.Error("CacheCommittedReads on but no device read was ever skipped")
			}
			if !cachedReads && fp.CacheSkippedReads != 0 {
				t.Errorf("default config skipped %d device reads; charge preservation broken",
					fp.CacheSkippedReads)
			}

			// Crash restore: reopen from the device and verify the restored
			// tree's cached reads against its media.
			before := leafSet(tr, tr.CommittedRoot())
			re, _, err := RestoreWithReport(cfg)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			verifyCacheCoherent(t, re, "restore")
			sameLeaves(t, leafSet(re, re.CommittedRoot()), before, "restore")

			// And keep simulating on the restored tree.
			re.RefineWhere(sphere(0.5, 0.5, 0.5, 0.2, 0.2), 3)
			re.Persist()
			verifyCacheCoherent(t, re, "restore+persist")
		})
	}
}

// TestCacheChargePreservation pins the tentpole's golden-compatibility
// claim mechanically: the same workload on two fresh device pairs — one
// run before any cache could exist would be ideal, but the cache cannot
// be turned off, so instead the default config's modeled device counters
// must be a pure function of the workload, and CacheCommittedReads must
// strictly reduce reads without changing a single write.
func TestCacheChargePreservation(t *testing.T) {
	run := func(cachedReads bool) (nvbm.Stats, map[morton.Code][DataWords]float64) {
		tr := Create(Config{
			NVBMDevice:          nvbm.New(nvbm.NVBM, 0),
			DRAMDevice:          nvbm.New(nvbm.DRAM, 0),
			DRAMBudgetOctants:   256,
			CacheCommittedReads: cachedReads,
		})
		for s := 0; s < 4; s++ {
			off := 0.3 + 0.1*float64(s)
			tr.RefineWhere(sphere(off, off, off, 0.25, 0.15), 4)
			tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
				d[0] = off
				return true
			})
			tr.CoarsenWhere(func(c morton.Code) bool { return c.Level() >= 4 })
			tr.Balance()
			tr.Persist()
		}
		return tr.NVBMDevice().Stats(), leafSet(tr, tr.CommittedRoot())
	}

	plainStats, plainLeaves := run(false)
	cachedStats, cachedLeaves := run(true)
	sameLeaves(t, cachedLeaves, plainLeaves, "CacheCommittedReads")
	if cachedStats.Writes != plainStats.Writes || cachedStats.WriteBytes != plainStats.WriteBytes {
		t.Errorf("write traffic changed: cached %+v, plain %+v", cachedStats, plainStats)
	}
	if cachedStats.Reads >= plainStats.Reads {
		t.Errorf("CacheCommittedReads elided nothing: cached %d reads, plain %d", cachedStats.Reads, plainStats.Reads)
	}
}

// TestLeafSnapshotInvalidation pins the leaf-index contract: reuse while
// the mesh is untouched, rebuild after any mutation, and entries always
// matching a fresh walk.
func TestLeafSnapshotInvalidation(t *testing.T) {
	tr := Create(Config{
		NVBMDevice: nvbm.New(nvbm.NVBM, 0),
		DRAMDevice: nvbm.New(nvbm.DRAM, 0),
	})
	tr.RefineWhere(sphere(0.5, 0.5, 0.5, 0.3, 0.2), 3)

	check := func(label string) {
		t.Helper()
		snap := tr.LeafSnapshot()
		var want []LeafEntry
		tr.ForEachNode(func(r Ref, o *Octant) bool {
			if o.IsLeaf() {
				want = append(want, LeafEntry{Code: o.Code, Ref: r, Data: o.Data})
			}
			return true
		})
		if len(snap) != len(want) {
			t.Fatalf("%s: snapshot has %d leaves, walk found %d", label, len(snap), len(want))
		}
		for i := range want {
			if snap[i] != want[i] {
				t.Fatalf("%s: entry %d = %+v, walk found %+v", label, i, snap[i], want[i])
			}
		}
	}

	check("initial")
	rebuilds := tr.FastPath().LeafIndexRebuilds
	tr.LeafSnapshot()
	if got := tr.FastPath().LeafIndexRebuilds; got != rebuilds {
		t.Fatalf("untouched mesh rebuilt the index (%d -> %d rebuilds)", rebuilds, got)
	}
	if tr.FastPath().LeafIndexReuses == 0 {
		t.Fatal("no snapshot reuse recorded")
	}

	tr.RefineWhere(sphere(0.3, 0.3, 0.3, 0.2, 0.1), 4)
	check("after refine")
	tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool { d[0] = 1; return true })
	check("after update")
	tr.CoarsenWhere(func(c morton.Code) bool { return c.Level() >= 4 })
	check("after coarsen")
	tr.Persist()
	check("after persist")

	// In-place indexed sweeps keep the snapshot valid. The first sweep
	// after a Persist copy-on-writes every leaf back into the working
	// version (structural change, so it rebuilds); from the second sweep
	// on the writes land in place and sweep k+1 must not walk the tree.
	tr.UpdateLeavesIndexed(func(c morton.Code, d *[DataWords]float64) bool { d[0] = 2; return true })
	tr.UpdateLeavesIndexed(func(c morton.Code, d *[DataWords]float64) bool { d[0] = 3; return true })
	rebuilds = tr.FastPath().LeafIndexRebuilds
	tr.UpdateLeavesIndexed(func(c morton.Code, d *[DataWords]float64) bool { d[0] = 3.5; return true })
	if got := tr.FastPath().LeafIndexRebuilds; got != rebuilds {
		t.Fatalf("in-place indexed sweep invalidated the snapshot (%d -> %d rebuilds)", rebuilds, got)
	}
	if tr.FastPath().IndexedInPlaceSkips == 0 {
		t.Fatal("no in-place revalidation recorded")
	}
	check("after indexed sweeps")

	// UpdateLeavesIndexed must produce the same fields UpdateLeaves does.
	tr2 := Create(Config{
		NVBMDevice: nvbm.New(nvbm.NVBM, 0),
		DRAMDevice: nvbm.New(nvbm.DRAM, 0),
	})
	tr2.RefineWhere(sphere(0.5, 0.5, 0.5, 0.3, 0.2), 3)
	tr2.RefineWhere(sphere(0.3, 0.3, 0.3, 0.2, 0.1), 4)
	tr2.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool { d[0] = 1; return true })
	tr2.CoarsenWhere(func(c morton.Code) bool { return c.Level() >= 4 })
	tr2.Persist()
	tr2.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool { d[0] = 2; return true })
	tr2.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool { d[0] = 3; return true })
	tr2.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool { d[0] = 3.5; return true })
	sameLeaves(t, leafSet(tr, tr.Root()), leafSet(tr2, tr2.Root()), "indexed vs walk sweeps")
}

// TestConcurrentCommittedWalk runs ForEachCommittedNode from two
// goroutines at once (run with -race): the committed read path is
// documented side-effect-free — per-call buffers, no access accounting,
// no cache fills — so concurrent digests must be safe and identical.
func TestConcurrentCommittedWalk(t *testing.T) {
	tr := Create(Config{
		NVBMDevice: nvbm.New(nvbm.NVBM, 0),
		DRAMDevice: nvbm.New(nvbm.DRAM, 0),
	})
	tr.RefineWhere(sphere(0.5, 0.5, 0.5, 0.3, 0.2), 4)
	tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
		d[0] = float64(c)
		return true
	})
	tr.Persist()

	digest := func() uint64 {
		var h uint64 = 14695981039346656037
		tr.ForEachCommittedNode(func(r Ref, o *Octant) bool {
			h ^= uint64(o.Code)
			h *= 1099511628211
			h ^= f64bits(o.Data[0])
			h *= 1099511628211
			return true
		})
		return h
	}

	want := digest()
	results := make(chan uint64, 2)
	for g := 0; g < 2; g++ {
		go func() { results <- digest() }()
	}
	for g := 0; g < 2; g++ {
		if got := <-results; got != want {
			t.Fatalf("concurrent committed walk digest %x, want %x", got, want)
		}
	}
}
