// Package core implements PM-octree, the paper's primary contribution: a
// persistent, multi-version octree resident in both DRAM and NVBM.
//
// Structure (Figure 2 of the paper):
//
//   - V(i-1), the last committed version, lives entirely in NVBM and is
//     never mutated; it is the recovery point.
//   - V(i), the working version, shares all unmodified octants with V(i-1).
//     Its modified and new octants live either in the DRAM arena (the C0
//     tree: hot subtrees plus the trunk above subtree level) or in the NVBM
//     arena (the C1 tree: cold subtrees).
//   - All mutations of shared octants are copy-on-write with path copying
//     toward the root, so a consistent version always exists; the commit
//     point of a time step is a single 8-byte root-pointer store.
//
// Region invariant: an NVBM-resident octant never references a
// DRAM-resident octant. DRAM octants may reference NVBM octants. A crash
// therefore loses only DRAM state, and everything reachable from the
// persistent root remains closed and consistent.
package core

import (
	"fmt"

	"pmoctree/internal/pmem"
)

// Ref is a region-tagged reference to an octant: bit 31 selects the arena
// (0 = NVBM, 1 = DRAM) and the low 31 bits are the pmem handle. The zero
// Ref is nil. Refs are stable across process restarts for NVBM octants —
// they are the "persistent pointers" a GC'd runtime cannot express with
// native pointers.
type Ref uint32

// NilRef is the null octant reference.
const NilRef Ref = 0

const dramBit Ref = 1 << 31

// makeRef builds a Ref from a region flag and an arena handle.
func makeRef(inDRAM bool, h pmem.Handle) Ref {
	if h == pmem.Nil {
		return NilRef
	}
	r := Ref(h)
	if r&dramBit != 0 {
		panic(fmt.Sprintf("core: handle %d overflows the ref space", h))
	}
	if inDRAM {
		r |= dramBit
	}
	return r
}

// IsNil reports whether r is the null reference.
func (r Ref) IsNil() bool { return r&^dramBit == 0 }

// InDRAM reports whether r points into the DRAM arena.
func (r Ref) InDRAM() bool { return r&dramBit != 0 }

// Handle returns the arena handle of r.
func (r Ref) Handle() pmem.Handle { return pmem.Handle(r &^ dramBit) }

// String renders the ref for diagnostics.
func (r Ref) String() string {
	if r.IsNil() {
		return "nil"
	}
	region := "NV"
	if r.InDRAM() {
		region = "DR"
	}
	return fmt.Sprintf("%s:%d", region, r.Handle())
}
