package core

import (
	"testing"

	"pmoctree/internal/morton"
)

func TestAutoTunerGrowsUnderMergePressure(t *testing.T) {
	tr := Create(Config{DRAMBudgetOctants: 32, ThresholdDRAM: 0.8})
	tuner := NewAutoTuner(16, 4096)

	// A mesh far larger than the budget forces evictions.
	tr.RefineWhere(func(morton.Code) bool { return true }, 2)
	tr.Persist()
	tr.RefineWhere(sphere(0.5, 0.5, 0.5, 0.3, 0.25), 4)
	if tr.Stats().Merges == 0 {
		t.Fatal("workload produced no merge pressure")
	}
	tr.Persist()
	before := tr.DRAMBudget()
	after := tuner.Observe(tr)
	if after <= before {
		t.Errorf("budget did not grow under merge pressure: %d -> %d", before, after)
	}
	if tuner.Adjustments == 0 {
		t.Error("no adjustment recorded")
	}
}

func TestAutoTunerRespectsMax(t *testing.T) {
	tr := Create(Config{DRAMBudgetOctants: 32, ThresholdDRAM: 0.8})
	tuner := NewAutoTuner(16, 40)
	tr.RefineWhere(func(morton.Code) bool { return true }, 2)
	tr.RefineWhere(sphere(0.5, 0.5, 0.5, 0.3, 0.25), 4)
	tr.Persist()
	for i := 0; i < 5; i++ {
		tr.RefineWhere(sphere(0.4, 0.4, 0.4, 0.3, 0.25), 4)
		tr.Persist()
		if got := tuner.Observe(tr); got > 40 {
			t.Fatalf("budget %d exceeds max 40", got)
		}
	}
}

func TestAutoTunerShrinksWhenIdle(t *testing.T) {
	tr := Create(Config{DRAMBudgetOctants: 4096})
	tuner := NewAutoTuner(64, 8192)
	// A tiny static mesh leaves DRAM almost empty.
	tr.RefineWhere(func(c morton.Code) bool { return c.Level() < 1 }, 1)
	tr.Persist()
	start := tr.DRAMBudget()
	var got int
	for i := 0; i < tuner.IdleSteps; i++ {
		tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
			d[0]++
			return true
		})
		tr.Persist()
		got = tuner.Observe(tr)
	}
	if got >= start {
		t.Errorf("budget did not shrink when idle: %d -> %d", start, got)
	}
	if got < 64 {
		t.Errorf("budget %d under min", got)
	}
}

func TestAutoTunerStableInBand(t *testing.T) {
	// Peak utilization between ShrinkBelow and the merge watermark: no
	// changes expected. Probe the workload's natural peak first, then
	// size the budget to land mid-band.
	workload := func(tr *Tree) {
		tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
			d[0]++
			return true
		})
		tr.Persist()
	}
	probe := Create(Config{DRAMBudgetOctants: 100000})
	probe.RefineWhere(sphere(0.5, 0.5, 0.5, 0.3, 0.2), 3)
	probe.Persist()
	workload(probe)
	peakOctants := int(probe.LastPeakDRAMUtilization() * 100000)
	if peakOctants == 0 {
		t.Skip("degenerate probe")
	}

	tr := Create(Config{DRAMBudgetOctants: peakOctants * 3 / 2})
	tuner := NewAutoTuner(16, 1<<20)
	tr.RefineWhere(sphere(0.5, 0.5, 0.5, 0.3, 0.2), 3)
	tr.Persist()
	for i := 0; i < 4; i++ {
		workload(tr)
		util := tr.LastPeakDRAMUtilization()
		if util >= tuner.ShrinkBelow {
			before := tr.DRAMBudget()
			if tuner.Observe(tr) != before {
				t.Errorf("budget changed without pressure at peak util %.2f", util)
			}
		} else {
			tuner.Observe(tr)
		}
	}
}

func TestSetDRAMBudgetClamp(t *testing.T) {
	tr := Create(Config{})
	tr.SetDRAMBudget(0)
	if tr.DRAMBudget() != 1 {
		t.Errorf("budget = %d, want clamp to 1", tr.DRAMBudget())
	}
}

func TestAutoTunedSimulationStaysCorrect(t *testing.T) {
	// End-to-end: the tuner must never break structural invariants.
	tr := Create(Config{DRAMBudgetOctants: 32})
	tuner := NewAutoTuner(16, 2048)
	for s := 1; s <= 6; s++ {
		tr.RefineWhere(sphere(0.3+float64(s)*0.05, 0.4, 0.5, 0.25, 0.2), 4)
		tr.CoarsenWhere(func(c morton.Code) bool {
			return !sphere(0.3+float64(s)*0.05, 0.4, 0.5, 0.25, 0.3)(c)
		})
		tr.Persist()
		tuner.Observe(tr)
		if err := tr.Validate(); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
	}
	if tuner.Adjustments == 0 {
		t.Error("moving workload never adjusted the budget")
	}
}

// TestKVersionRetentionAblation exercises DESIGN.md decision 2: keeping
// only two versions bounds memory. Deferring GC (GCEvery=k) effectively
// retains k superseded versions, and the expansion factor grows with k,
// collapsing after the deferred sweep runs.
func TestKVersionRetentionAblation(t *testing.T) {
	run := func(gcEvery int) (peak float64) {
		tr := Create(Config{GCEvery: gcEvery, Seed: 2})
		for s := 0; s < 6; s++ {
			// A moving interface rewrites a band of octants every step.
			cx := 0.2 + 0.1*float64(s)
			tr.RefineWhere(sphere(cx, 0.5, 0.5, 0.2, 0.15), 3)
			tr.CoarsenWhere(func(c morton.Code) bool {
				return !sphere(cx, 0.5, 0.5, 0.2, 0.35)(c)
			})
			tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
				if sphere(cx, 0.5, 0.5, 0.2, 0.15)(c) {
					d[0] = cx
					return true
				}
				return false
			})
			tr.Persist()
			if e := tr.VersionStats().ExpansionFactor; e > peak {
				peak = e
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		return peak
	}
	every := run(1)
	deferred := run(4)
	if deferred <= every {
		t.Errorf("4-version retention peak expansion %.2fx not above 2-version %.2fx",
			deferred, every)
	}
	// Two-version discipline keeps expansion bounded near the paper's
	// 1.98x worst case.
	if every > 2.5 {
		t.Errorf("2-version expansion peak %.2fx unexpectedly large", every)
	}
}
