package core

import (
	"math"
	"sort"

	"pmoctree/internal/morton"
)

// subtreeInfo aggregates one candidate subtree (rooted at L_sub) during a
// transformation pass.
type subtreeInfo struct {
	root    morton.Code
	size    int // octants in the subtree
	samples []sampled
	seen    int // octants offered to the reservoir
	freq    int // feature hits among samples (computed later)
}

type sampled struct {
	code morton.Code
	data [DataWords]float64
}

// SubtreeLevelFor computes L_sub by Equation 1 of the paper:
//
//	L_sub = Depth_octree - floor(log_Fanout(Size_DRAM))
//
// clamped to [1, depth]. Fanout is 8 for an octree; Size_DRAM is the C0
// budget in octants.
func SubtreeLevelFor(depth uint8, dramBudgetOctants int) uint8 {
	if depth == 0 {
		return 1
	}
	levels := 0
	if dramBudgetOctants > 1 {
		levels = int(math.Floor(math.Log(float64(dramBudgetOctants)) / math.Log(8)))
	}
	l := int(depth) - levels
	if l < 1 {
		l = 1
	}
	if l > int(depth) {
		l = int(depth)
	}
	return uint8(l)
}

// packingFactor refines Equation 1 for subtree selection: candidate
// subtrees are sized to ~1/4 of the C0 budget rather than the whole of it,
// so several hot subtrees pack the budget instead of one subtree leaving
// the rest idle. BenchmarkAblationPacking quantifies the choice.
const packingFactor = 4

// retarget recomputes L_sub and the hot subtree set after a persist (§3.3:
// "dynamic transformation is only triggered after the completion of the
// merging operations").
func (t *Tree) retarget() {
	defer t.span("Transform").End()
	if t.cfg.DisableTransform && t.trunk != nil {
		// Transformation disabled: the layout chosen at the first
		// persist stays frozen, however the access pattern moves —
		// exactly the baseline of Figure 11.
		return
	}
	infos, depth := t.collectSubtrees()
	t.depth = depth
	selBudget := t.cfg.DRAMBudgetOctants / packingFactor
	if selBudget < 1 {
		selBudget = 1
	}
	newLsub := SubtreeLevelFor(depth, selBudget)
	if newLsub != t.lsub {
		// Re-gather at the new subtree level.
		t.lsub = newLsub
		infos, _ = t.collectSubtrees()
	}
	oldHot := t.hot
	if !t.cfg.DisableTransform && len(t.features) > 0 {
		for i := range infos {
			infos[i].freq = t.evalFrequency(&infos[i])
		}
		t.hot = t.selectHot(infos, oldHot)
	} else {
		t.hot = t.selectOblivious(infos)
	}
	for c := range t.hot {
		if !oldHot[c] {
			t.stats.Transforms++
		}
	}
	// The trunk — ancestors of hot subtrees — stays in DRAM so hot-path
	// descents never touch NVBM.
	t.trunk = map[morton.Code]bool{}
	for c := range t.hot {
		for l := c.Level(); l > 0; l-- {
			t.trunk[c.AncestorAt(l-1)] = true
		}
	}
}

// Retarget forces a layout transformation pass outside Persist; examples
// and tests use it after installing feature functions.
func (t *Tree) Retarget() { t.retarget() }

// collectSubtrees walks the working version once, gathering per-subtree
// sizes and reservoir samples at the current L_sub, and the tree depth.
// The walk is instrumentation (the sampling pre-execution of §3.3 is
// charged separately through evalFrequency's feature calls), so device
// accounting is suspended.
func (t *Tree) collectSubtrees() ([]subtreeInfo, uint8) {
	t.setAccounting(false)
	defer t.setAccounting(true)
	byRoot := map[morton.Code]*subtreeInfo{}
	var order []morton.Code
	var depth uint8
	t.ForEachNode(func(_ Ref, o *Octant) bool {
		l := o.Code.Level()
		if l > depth {
			depth = l
		}
		var root morton.Code
		switch {
		case l < t.lsub && o.IsLeaf():
			// A region coarser than L_sub is its own (single-octant)
			// candidate subtree.
			root = o.Code
		case l < t.lsub:
			// Trunk interior: not a candidate; residency follows the
			// hot subtrees below it.
			return true
		default:
			root = o.Code.AncestorAt(t.lsub)
		}
		info := byRoot[root]
		if info == nil {
			info = &subtreeInfo{root: root}
			byRoot[root] = info
			order = append(order, root)
		}
		info.size++
		info.seen++
		// Reservoir sampling: keep NSample uniform samples per subtree.
		if len(info.samples) < t.cfg.NSample {
			info.samples = append(info.samples, sampled{o.Code, o.Data})
		} else if j := t.rng.Intn(info.seen); j < t.cfg.NSample {
			info.samples[j] = sampled{o.Code, o.Data}
		}
		return true
	})
	infos := make([]subtreeInfo, 0, len(order))
	for _, root := range order {
		infos = append(infos, *byRoot[root])
	}
	return infos, depth
}

// evalFrequency pre-executes the feature functions on the subtree's
// samples and returns the number of hits — the predicted access frequency
// of §3.3, step 3.
func (t *Tree) evalFrequency(info *subtreeInfo) int {
	hits := 0
	for _, s := range info.samples {
		for _, f := range t.features {
			if f(s.code, s.data) {
				hits++
				break
			}
		}
	}
	return hits
}

// selectHot picks the hot subtree set from frequency-ranked candidates.
// When the previous hot set is still valid, a cold subtree displaces a hot
// one only if its frequency exceeds T_transform times the hot one's —
// hysteresis that avoids thrashing the layout (§3.3, step 4).
func (t *Tree) selectHot(infos []subtreeInfo, oldHot map[morton.Code]bool) map[morton.Code]bool {
	sort.SliceStable(infos, func(i, j int) bool {
		if infos[i].freq != infos[j].freq {
			return infos[i].freq > infos[j].freq
		}
		return infos[i].root.Less(infos[j].root)
	})
	budget := t.cfg.DRAMBudgetOctants
	hot := map[morton.Code]bool{}
	used := 0
	for i := range infos {
		in := &infos[i]
		if used+in.size > budget {
			continue
		}
		if in.freq == 0 && !oldHot[in.root] {
			continue // never pull in subtrees with no predicted accesses
		}
		if !oldHot[in.root] {
			// This subtree is in NVBM. It displaces DRAM residency only
			// if Ratio_access exceeds T_transform against the weakest
			// already-hot candidate that it is effectively displacing.
			if w, ok := weakestOld(infos, oldHot, hot); ok {
				ratio := float64(in.freq) / math.Max(float64(w), 1)
				if ratio <= t.cfg.TTransform && w > 0 {
					continue
				}
			}
		}
		hot[in.root] = true
		used += in.size
	}
	return hot
}

// weakestOld returns the lowest frequency among previously-hot subtrees not
// yet re-selected.
func weakestOld(infos []subtreeInfo, oldHot, chosen map[morton.Code]bool) (int, bool) {
	best := 0
	found := false
	for i := range infos {
		if oldHot[infos[i].root] && !chosen[infos[i].root] {
			if !found || infos[i].freq < best {
				best = infos[i].freq
				found = true
			}
		}
	}
	return best, found
}

// selectOblivious fills the DRAM budget with subtrees in Z-order,
// regardless of access pattern — the locality-oblivious layout of
// Figure 5(a), used when transformation is disabled.
func (t *Tree) selectOblivious(infos []subtreeInfo) map[morton.Code]bool {
	sort.SliceStable(infos, func(i, j int) bool { return infos[i].root.Less(infos[j].root) })
	budget := t.cfg.DRAMBudgetOctants
	hot := map[morton.Code]bool{}
	used := 0
	for i := range infos {
		if used+infos[i].size > budget {
			break
		}
		hot[infos[i].root] = true
		used += infos[i].size
	}
	return hot
}

// setAccounting toggles latency/statistics accounting on both devices.
func (t *Tree) setAccounting(on bool) {
	t.cfg.DRAMDevice.SetAccounting(on)
	t.cfg.NVBMDevice.SetAccounting(on)
}
