package core

import "pmoctree/internal/pmem"

// GC runs a mark-and-sweep collection over the NVBM arena (§3.2): it marks
// every octant reachable from the committed root and the working root,
// then frees every live NVBM slot left unmarked — octants that belonged
// only to superseded versions, plus working-version octants unlinked by
// coarsening (deferred deletion). It returns the number of slots freed.
//
// GC never touches octants reachable from the committed version, so it is
// safe to crash at any point during collection: recovery re-marks from the
// committed root and a re-run reclaims whatever remains.
func (t *Tree) GC() int {
	defer t.span("GC").End()
	marked := make(map[pmem.Handle]bool)
	t.mark(t.committed, marked)
	if t.cur != t.committed {
		t.mark(t.cur, marked)
	}
	t.markRetained(marked)
	freed := 0
	for h := pmem.Handle(1); uint32(h) <= t.nv.HighWater(); h++ {
		if t.nv.Live(h) && !marked[h] {
			t.nv.Free(h)
			freed++
		}
	}
	t.stats.GCs++
	t.stats.GCFreed += freed
	t.stats.Deferred = 0
	return freed
}

// mark walks the version rooted at r, recording reachable NVBM handles.
// DRAM octants are traversed (they may reference NVBM children) but are
// managed eagerly, not swept.
func (t *Tree) mark(r Ref, marked map[pmem.Handle]bool) {
	if r.IsNil() {
		return
	}
	if !r.InDRAM() {
		if marked[r.Handle()] {
			return // shared subtree already visited
		}
		marked[r.Handle()] = true
	}
	o := t.readOct(r)
	for _, c := range o.Children {
		t.mark(c, marked)
	}
}

// maybeGC triggers an on-demand collection when NVBM utilization crosses
// its watermark (threshold_NVBM, §3.2). GC is suppressed while the tree is
// mid-merge; here it runs only from batch-operation boundaries, which are
// always consistent points.
func (t *Tree) maybeGC() {
	if t.cfg.NVBMBudgetOctants > 0 && t.nv.Utilization() >= t.cfg.ThresholdNVBM {
		t.GC()
	}
}
