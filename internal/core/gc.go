package core

import (
	"math/bits"

	"pmoctree/internal/pmem"
	"pmoctree/internal/telemetry"
)

// GC runs a mark-and-sweep collection over the NVBM arena (§3.2): it marks
// every octant reachable from the committed root and the working root,
// then frees every live NVBM slot left unmarked — octants that belonged
// only to superseded versions, plus working-version octants unlinked by
// coarsening (deferred deletion). It returns the number of slots freed.
//
// GC never touches octants reachable from the committed version, so it is
// safe to crash at any point during collection: recovery re-marks from the
// committed root and a re-run reclaims whatever remains.
//
// Host-side fast path: the mark set is a reusable []uint64 bitset held on
// the Tree (no per-GC map allocation, no hashing), marking runs on an
// explicit stack instead of recursion, and the sweep scans the arena's
// volatile allocation-bitmap mirror word by word, skipping all-zero words,
// instead of probing Live(h) per handle. The MODELED cost is unchanged:
// the persistent allocation bitmap is still what the sweep semantically
// reads, so the per-handle probe charges are accounted in bulk
// (ChargeReadN) and the golden per-step GC statistics stay bit-identical.
func (t *Tree) GC() int {
	defer t.span("GC").End()
	marked := t.ensureMarkBits()
	t.markStack(t.committed, marked)
	if t.cur != t.committed {
		t.markStack(t.cur, marked)
	}
	t.markRetained(marked)
	t.markInflight(marked)
	t.markPinned(marked)
	hw := t.nv.HighWater()
	// The sweep's per-handle bitmap probes, accounted in bulk: one 1-byte
	// read per handle in [1, HighWater], exactly what Live(h) charged.
	t.nv.Device().ChargeReadN(int(hw), 1)
	freed := 0
	for wi, w := range t.nv.LiveWords() {
		if wi >= len(marked) {
			break
		}
		w &^= marked[wi] // live but unreachable
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			idx := uint32(wi)*64 + uint32(b)
			if idx >= hw {
				break
			}
			t.nv.Free(pmem.Handle(idx + 1))
			freed++
		}
	}
	if freed > 0 {
		// Freed NVBM handles are recycled by later allocations; no stale
		// decode may survive them.
		t.cacheInvalidateAll()
	}
	t.stats.GCs++
	t.stats.GCFreed += freed
	t.stats.Deferred = 0
	t.flight.Record(telemetry.FlightEvent{Kind: "gc", Step: t.step, Value: uint64(freed)})
	return freed
}

// ensureMarkBits returns the reusable mark bitset, sized to the arena's
// high-water mark and cleared. One bit per NVBM slot.
func (t *Tree) ensureMarkBits() []uint64 {
	words := (int(t.nv.HighWater()) + 63) / 64
	if cap(t.markBits) < words {
		t.markBits = make([]uint64, words)
		return t.markBits
	}
	t.markBits = t.markBits[:words]
	for i := range t.markBits {
		t.markBits[i] = 0
	}
	return t.markBits
}

// markStack walks the version rooted at r on an explicit stack, setting
// the bit of every reachable NVBM handle. DRAM octants are traversed
// (they may reference NVBM children) but are managed eagerly, not swept.
// The set of readOct calls — and therefore the charged device traffic and
// access accounting — matches the recursive mark it replaced; only the
// visit order differs, which the additive counters cannot observe.
func (t *Tree) markStack(r Ref, marked []uint64) {
	if r.IsNil() {
		return
	}
	stack := append(t.markScratch[:0], r)
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !r.InDRAM() {
			idx := uint32(r.Handle() - 1)
			if marked[idx/64]&(1<<(idx%64)) != 0 {
				continue // shared subtree already visited
			}
			marked[idx/64] |= 1 << (idx % 64)
		}
		o := t.readOct(r)
		for _, c := range o.Children {
			if !c.IsNil() {
				stack = append(stack, c)
			}
		}
	}
	t.markScratch = stack[:0] // keep the grown capacity for the next pass
}

// markInflight marks the versions the persist pipeline still needs: the
// newest DURABLE version (the on-device commit record names it — freeing
// it would leave the record dangling until the next flip) and every
// enqueued-but-unflushed version. The host's committed/cur marking alone
// is not enough, because the pipelined host view runs ahead of
// durability. No-op when the tree persists synchronously.
func (t *Tree) markInflight(marked []uint64) {
	if t.pipe == nil {
		return
	}
	for _, r := range t.pipe.inflightRoots() {
		t.markGuarded(r, marked)
	}
}

// maybeGC triggers an on-demand collection when NVBM utilization crosses
// its watermark (threshold_NVBM, §3.2). GC is suppressed while the tree is
// mid-merge; here it runs only from batch-operation boundaries, which are
// always consistent points.
func (t *Tree) maybeGC() {
	if t.cfg.NVBMBudgetOctants > 0 && t.nv.Utilization() >= t.cfg.ThresholdNVBM {
		t.GC()
	}
}
