package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
)

// sphere returns a refinement predicate that is true when the octant's
// REGION intersects a spherical interface band — the shape of the droplet
// workload. Region (not center) tests are essential: a coarse octant whose
// center misses the band must still refine when the band crosses it.
func sphere(cx, cy, cz, rad, band float64) func(morton.Code) bool {
	return func(c morton.Code) bool {
		x, y, z := c.Center()
		h := c.Extent() / 2
		// Distance from the sphere center to the octant box.
		minD2, maxD2 := 0.0, 0.0
		for _, p := range [3][2]float64{{x, cx}, {y, cy}, {z, cz}} {
			lo, hi := p[0]-h, p[0]+h
			d := 0.0
			if p[1] < lo {
				d = lo - p[1]
			} else if p[1] > hi {
				d = p[1] - hi
			}
			minD2 += d * d
			far := p[1] - lo
			if f := hi - p[1]; f > far {
				far = f
			}
			maxD2 += far * far
		}
		lo, hi := rad-band, rad+band
		if lo < 0 {
			lo = 0
		}
		return minD2 <= hi*hi && maxD2 >= lo*lo
	}
}

// leafSet collects code->data for all leaves reachable from root r.
func leafSet(t *Tree, r Ref) map[morton.Code][DataWords]float64 {
	out := map[morton.Code][DataWords]float64{}
	t.setAccounting(false)
	t.walk(r, func(_ Ref, o *Octant) bool {
		if o.IsLeaf() {
			out[o.Code] = o.Data
		}
		return true
	})
	t.setAccounting(true)
	return out
}

func TestCreateInitialState(t *testing.T) {
	tr := Create(Config{})
	if tr.Root() != tr.CommittedRoot() {
		t.Error("fresh tree roots differ")
	}
	if tr.Root().InDRAM() {
		t.Error("committed root in DRAM")
	}
	if tr.LeafCount() != 1 || tr.NodeCount() != 1 {
		t.Errorf("counts: %d leaves, %d nodes", tr.LeafCount(), tr.NodeCount())
	}
	if tr.Step() != 1 {
		t.Errorf("Step = %d", tr.Step())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRefineWhereGrowsTree(t *testing.T) {
	tr := Create(Config{})
	n := tr.RefineWhere(func(morton.Code) bool { return true }, 2)
	if n != 9 { // root + 8 children split
		t.Errorf("refines = %d, want 9", n)
	}
	if tr.LeafCount() != 64 {
		t.Errorf("leaves = %d, want 64", tr.LeafCount())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCommittedVersionImmutableUnderRefine(t *testing.T) {
	tr := Create(Config{})
	tr.RefineWhere(func(morton.Code) bool { return true }, 1)
	tr.Persist()
	before := leafSet(tr, tr.CommittedRoot())

	// Heavy mutation of the working version.
	tr.RefineWhere(sphere(0.5, 0.5, 0.5, 0.3, 0.2), 4)
	tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
		d[0] = 42
		return true
	})
	tr.CoarsenWhere(func(c morton.Code) bool {
		x, _, _ := c.Center()
		return x > 0.9
	})

	after := leafSet(tr, tr.CommittedRoot())
	if len(before) != len(after) {
		t.Fatalf("committed leaf count changed: %d -> %d", len(before), len(after))
	}
	for c, d := range before {
		if after[c] != d {
			t.Fatalf("committed leaf %v data changed: %v -> %v", c, d, after[c])
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistCommitsWorkingVersion(t *testing.T) {
	tr := Create(Config{})
	tr.RefineWhere(sphere(0.3, 0.3, 0.3, 0.2, 0.15), 3)
	want := leafSet(t2Tree(tr), tr.Root())
	tr.Persist()
	if tr.Root() != tr.CommittedRoot() {
		t.Error("roots differ after persist")
	}
	got := leafSet(tr, tr.CommittedRoot())
	if len(got) != len(want) {
		t.Fatalf("committed leaves = %d, want %d", len(got), len(want))
	}
	for c, d := range want {
		if got[c] != d {
			t.Fatalf("leaf %v lost in persist", c)
		}
	}
	// After persist the whole version is NVBM-closed.
	tr.setAccounting(false)
	tr.walk(tr.Root(), func(r Ref, o *Octant) bool {
		if r.InDRAM() {
			t.Fatalf("octant %v still in DRAM after persist", o.Code)
		}
		return true
	})
	tr.setAccounting(true)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// t2Tree is an identity helper to keep leafSet call sites uniform.
func t2Tree(t *Tree) *Tree { return t }

func TestPersistGCReclaimsOldVersion(t *testing.T) {
	tr := Create(Config{})
	tr.RefineWhere(func(morton.Code) bool { return true }, 2)
	tr.Persist()
	liveAfterFirst := tr.nv.LiveCount()

	// Replace a whole region of the mesh, then persist: the superseded
	// octants must be reclaimed.
	tr.CoarsenWhere(func(c morton.Code) bool { return true }) // collapse to root... cascades
	tr.Persist()
	if tr.nv.LiveCount() >= liveAfterFirst {
		t.Errorf("GC reclaimed nothing: %d -> %d live", liveAfterFirst, tr.nv.LiveCount())
	}
	if tr.LeafCount() != 1 {
		t.Errorf("leaves after full coarsen = %d", tr.LeafCount())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapRatioLifecycle(t *testing.T) {
	tr := Create(Config{})
	tr.RefineWhere(sphere(0.5, 0.5, 0.5, 0.3, 0.2), 4)
	tr.Persist()

	// Immediately after persist: full sharing.
	vs := tr.VersionStats()
	if vs.OverlapRatio != 1.0 {
		t.Errorf("overlap after persist = %v, want 1.0", vs.OverlapRatio)
	}
	if vs.CurOctants != vs.PrevOctants {
		t.Errorf("octants %d vs %d after persist", vs.CurOctants, vs.PrevOctants)
	}

	// A localized update lowers overlap but keeps it high.
	target := tr.LeafCodes()[0]
	if !tr.UpdateAt(target, func(d *[DataWords]float64) { d[0] = 1 }) {
		t.Fatal("UpdateAt missed a leaf")
	}
	vs = tr.VersionStats()
	if vs.OverlapRatio >= 1.0 || vs.OverlapRatio < 0.5 {
		t.Errorf("overlap after one update = %v", vs.OverlapRatio)
	}

	// Memory expansion stays modest under high overlap (Figure 3).
	if vs.ExpansionFactor > 1.6 {
		t.Errorf("expansion factor = %v", vs.ExpansionFactor)
	}
}

func TestUpdateAtCopiesPathOnly(t *testing.T) {
	tr := Create(Config{})
	tr.RefineWhere(func(morton.Code) bool { return true }, 2)
	tr.Persist()
	before := tr.VersionStats()

	target := morton.Root.Child(3).Child(5)
	if !tr.UpdateAt(target, func(d *[DataWords]float64) { d[1] = 7 }) {
		t.Fatal("UpdateAt failed to find leaf")
	}
	vs := tr.VersionStats()
	// Path copying should copy the leaf + its ancestors (3 octants),
	// nothing else.
	copied := vs.CurOctants - vs.SharedOctants - vs.DRAMOctants
	_ = copied
	newOctants := (vs.CurOctants - vs.SharedOctants)
	if newOctants != 3 {
		t.Errorf("update copied %d octants, want 3 (leaf+2 ancestors)", newOctants)
	}
	if before.CurOctants != vs.CurOctants {
		t.Errorf("octant count changed on update: %d -> %d", before.CurOctants, vs.CurOctants)
	}
	// Committed data unchanged, working data changed.
	var got float64
	tr.ForEachLeaf(func(c morton.Code, d [DataWords]float64) bool {
		if c == target {
			got = d[1]
		}
		return true
	})
	if got != 7 {
		t.Errorf("working leaf data = %v", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateAtMissingLeaf(t *testing.T) {
	tr := Create(Config{})
	tr.RefineWhere(func(morton.Code) bool { return true }, 1)
	// A code in an absent deeper child path resolves to its covering leaf.
	if !tr.UpdateAt(morton.Root.Child(0).Child(0), func(d *[DataWords]float64) { d[0] = 1 }) {
		t.Error("UpdateAt should update covering leaf")
	}
}

func TestCoarsenDeferredDeletionAndGC(t *testing.T) {
	tr := Create(Config{DRAMBudgetOctants: 1}) // force everything to NVBM
	tr.RefineWhere(func(morton.Code) bool { return true }, 2)
	// Working-version NVBM octants coarsened away are deferred, not freed.
	live := tr.nv.LiveCount()
	tr.CoarsenWhere(func(c morton.Code) bool { return c.Level() == 1 })
	if tr.stats.Deferred == 0 {
		t.Error("coarsen freed NVBM octants eagerly; expected deferral")
	}
	if tr.nv.LiveCount() != live {
		t.Errorf("live NVBM count changed before GC: %d -> %d", live, tr.nv.LiveCount())
	}
	freed := tr.GC()
	if freed == 0 {
		t.Error("GC freed nothing")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFindAndFindLeaf(t *testing.T) {
	tr := Create(Config{})
	tr.RefineWhere(func(morton.Code) bool { return true }, 1)
	c := morton.Root.Child(5)
	if tr.Find(c).IsNil() {
		t.Error("Find missed existing octant")
	}
	if !tr.Find(c.Child(0)).IsNil() {
		t.Error("Find invented an octant")
	}
	_, leaf := tr.FindLeaf(c.Child(0).Child(0))
	if leaf.Code != c {
		t.Errorf("FindLeaf = %v, want %v", leaf.Code, c)
	}
}

func TestBalancePMOctree(t *testing.T) {
	tr := Create(Config{})
	// Build the unbalanced center-adjacent configuration.
	tr.RefineAt(morton.Root)
	n := morton.Root.Child(0)
	for i := 0; i < 3; i++ {
		tr.RefineAt(n)
		n = n.Child(7)
	}
	if tr.IsBalanced() {
		t.Fatal("tree should start unbalanced")
	}
	if tr.Balance() == 0 {
		t.Fatal("balance did nothing")
	}
	if !tr.IsBalanced() {
		t.Fatal("still unbalanced")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceAcrossPersist(t *testing.T) {
	tr := Create(Config{})
	tr.RefineAt(morton.Root)
	tr.Persist()
	n := morton.Root.Child(0)
	for i := 0; i < 3; i++ {
		tr.RefineAt(n)
		n = n.Child(7)
	}
	tr.Balance()
	if !tr.IsBalanced() {
		t.Fatal("unbalanced after COW balance")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionUnderTinyBudget(t *testing.T) {
	tr := Create(Config{DRAMBudgetOctants: 32, ThresholdDRAM: 0.8})
	tr.RefineWhere(func(morton.Code) bool { return true }, 2)
	tr.Persist()
	tr.RefineWhere(sphere(0.5, 0.5, 0.5, 0.3, 0.25), 4)
	if tr.Stats().Merges == 0 {
		t.Error("tiny DRAM budget never triggered a merge")
	}
	if got := tr.dram.LiveCount(); got > 32 {
		t.Errorf("DRAM octants = %d exceed budget 32", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreAfterCrash(t *testing.T) {
	nvDev := nvbm.New(nvbm.NVBM, 0)
	dramDev := nvbm.New(nvbm.DRAM, 0)
	tr := Create(Config{NVBMDevice: nvDev, DRAMDevice: dramDev})
	tr.RefineWhere(sphere(0.4, 0.4, 0.4, 0.2, 0.15), 3)
	tr.Persist()
	committed := leafSet(tr, tr.CommittedRoot())
	step := tr.Step()

	// Mutate the working version, then crash before persisting. Exhaust
	// the DRAM budget so some working octants land in NVBM and become
	// recoverable orphans.
	tr.dram.SetBudget(8)
	tr.RefineWhere(func(c morton.Code) bool { return c.Level() < 3 }, 3)
	tr.UpdateLeaves(func(morton.Code, *[DataWords]float64) bool { return true })
	dramDev.Crash()
	nvDev.Crash() // no-op for NVBM

	re, err := Restore(Config{NVBMDevice: nvDev, DRAMDevice: nvbm.New(nvbm.DRAM, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if re.Step() != step {
		t.Errorf("restored step = %d, want %d", re.Step(), step)
	}
	got := leafSet(re, re.Root())
	if len(got) != len(committed) {
		t.Fatalf("restored %d leaves, want %d", len(got), len(committed))
	}
	for c, d := range committed {
		if got[c] != d {
			t.Fatalf("leaf %v corrupted by crash: %v != %v", c, got[c], d)
		}
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	// Orphaned working-version octants are reclaimed by the next GC.
	if freed := re.GC(); freed == 0 {
		t.Error("post-restore GC found no orphans despite lost working version")
	}
	// And the restored tree keeps working.
	re.RefineWhere(func(c morton.Code) bool { return c.Level() < 1 }, 4)
	re.Persist()
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreAcrossFile(t *testing.T) {
	nvDev := nvbm.New(nvbm.NVBM, 0)
	tr := Create(Config{NVBMDevice: nvDev})
	tr.RefineWhere(func(morton.Code) bool { return true }, 2)
	tr.Persist()
	want := leafSet(tr, tr.CommittedRoot())

	path := t.TempDir() + "/pm.img"
	if err := nvDev.PersistFile(path); err != nil {
		t.Fatal(err)
	}
	dev2, err := nvbm.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Restore(Config{NVBMDevice: dev2})
	if err != nil {
		t.Fatal(err)
	}
	got := leafSet(re, re.Root())
	if len(got) != len(want) {
		t.Fatalf("file-restored %d leaves, want %d", len(got), len(want))
	}
}

func TestRestoreRejectsBadDevice(t *testing.T) {
	if _, err := Restore(Config{NVBMDevice: nvbm.New(nvbm.NVBM, 256)}); err == nil {
		t.Error("expected error restoring unformatted device")
	}
}

func TestDeleteClearsEverything(t *testing.T) {
	tr := Create(Config{})
	tr.RefineWhere(func(morton.Code) bool { return true }, 2)
	tr.Persist()
	tr.Delete()
	if tr.Root() != NilRef || tr.CommittedRoot() != NilRef {
		t.Error("roots survive Delete")
	}
	if tr.nv.LiveCount() != 0 || tr.dram.LiveCount() != 0 {
		t.Error("octants survive Delete")
	}
}

func TestSubtreeLevelForEq1(t *testing.T) {
	cases := []struct {
		depth  uint8
		budget int
		want   uint8
	}{
		{0, 100, 1},     // degenerate: fresh tree
		{5, 1, 5},       // no budget: subtrees are leaves
		{5, 8, 4},       // one level of fanout fits
		{5, 64, 3},      // two levels
		{5, 512, 2},     // three levels
		{5, 1 << 20, 1}, // budget exceeds tree: clamp to 1
		{3, 511, 1},     // floor(log8(511)) = 2 -> 3-2 = 1
	}
	for _, c := range cases {
		if got := SubtreeLevelFor(c.depth, c.budget); got != c.want {
			t.Errorf("SubtreeLevelFor(%d, %d) = %d, want %d", c.depth, c.budget, got, c.want)
		}
	}
}

func TestTransformConcentratesHotSubtrees(t *testing.T) {
	// The hot region sits in child 7's octant — the LAST subtree in
	// Z-order, so the oblivious layout never keeps it in DRAM.
	hotPred := sphere(0.75, 0.75, 0.75, 0.12, 0.1)
	mk := func(disable bool, seed int64) (*Tree, uint64) {
		// Budget 150 holds one 73-octant subtree (plus COW copies) but
		// not the whole 585-octant mesh, so layout choice matters.
		tr := Create(Config{
			DRAMBudgetOctants: 150,
			DisableTransform:  disable,
			Seed:              seed,
		})
		tr.SetFeatures(func(c morton.Code, _ [DataWords]float64) bool { return hotPred(c) })
		// Build a uniform base mesh and commit it.
		tr.RefineWhere(func(morton.Code) bool { return true }, 3)
		tr.Persist()
		// Solver-style writes concentrated in the hot corner: with
		// transformation the hot subtree is DRAM-resident and absorbs
		// them; obliviously it sits in NVBM.
		before := tr.NVBMDevice().Stats()
		for round := 0; round < 5; round++ {
			tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
				if hotPred(c) {
					d[0]++
					return true
				}
				return false
			})
		}
		return tr, tr.NVBMDevice().Stats().Sub(before).Writes
	}
	_, wOblivious := mk(true, 7)
	trT, wTransform := mk(false, 7)
	if wTransform >= wOblivious {
		t.Errorf("transformation did not reduce NVBM writes: %d (on) vs %d (off)", wTransform, wOblivious)
	}
	if len(trT.HotSubtrees()) == 0 {
		t.Error("transformation selected no hot subtrees")
	}
	if err := trT.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestObliviousLayoutIsZOrderPrefix(t *testing.T) {
	tr := Create(Config{DRAMBudgetOctants: 128, DisableTransform: true})
	tr.RefineWhere(func(morton.Code) bool { return true }, 3)
	tr.Persist()
	hot := tr.HotSubtrees()
	if len(hot) == 0 {
		t.Fatal("no hot subtrees selected")
	}
	// All selected subtrees must form a Z-order prefix of the candidates.
	var all []morton.Code
	tr.ForEachNode(func(_ Ref, o *Octant) bool {
		if o.Code.Level() == tr.SubtreeLevel() {
			all = append(all, o.Code)
		}
		return true
	})
	for i := 1; i < len(all); i++ {
		if !all[i-1].Less(all[i]) {
			t.Fatal("candidates not in Z-order")
		}
	}
	boundary := false
	for _, c := range all {
		if !hot[c] {
			boundary = true
		} else if boundary {
			t.Fatalf("hot set is not a Z-order prefix (gap before %v)", c)
		}
	}
}

func TestWriteMixIsWriteHeavy(t *testing.T) {
	// §1: during meshing, writes are a large share of accesses (up to
	// 72%, 41% average in the paper's traces). Check refinement is
	// write-heavy on our implementation too.
	tr := Create(Config{DRAMBudgetOctants: 1}) // all NVBM
	tr.NVBMDevice().ResetStats()
	tr.RefineWhere(func(morton.Code) bool { return true }, 3)
	frac := tr.NVBMDevice().Stats().WriteFraction()
	if frac < 0.25 || frac > 0.95 {
		t.Errorf("refinement write fraction = %v, expected write-heavy mix", frac)
	}
}

func TestStatsCounters(t *testing.T) {
	tr := Create(Config{})
	tr.RefineWhere(func(morton.Code) bool { return true }, 1)
	tr.Persist()
	s := tr.Stats()
	if s.Refines != 1 || s.Persists != 1 || s.GCs != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRefString(t *testing.T) {
	if NilRef.String() != "nil" {
		t.Error("nil ref string")
	}
	r := makeRef(true, 5)
	if r.String() != "DR:5" || !r.InDRAM() || r.Handle() != 5 {
		t.Errorf("ref = %v", r)
	}
	n := makeRef(false, 9)
	if n.String() != "NV:9" || n.InDRAM() {
		t.Errorf("ref = %v", n)
	}
}

// Property: arbitrary interleaved refine/coarsen/update/persist sequences
// keep both versions valid, and the committed version is always exactly
// the state at the last persist.
func TestQuickVersionedOperations(t *testing.T) {
	f := func(seed int64, script []uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := Create(Config{DRAMBudgetOctants: 64, Seed: seed})
		lastCommitted := leafSet(tr, tr.CommittedRoot())
		for _, op := range script {
			cx, cy, cz := r.Float64(), r.Float64(), r.Float64()
			pred := sphere(cx, cy, cz, 0.2, 0.15)
			switch op % 4 {
			case 0:
				tr.RefineWhere(pred, 3)
			case 1:
				tr.CoarsenWhere(pred)
			case 2:
				tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
					if pred(c) {
						d[0]++
						return true
					}
					return false
				})
			case 3:
				tr.Persist()
				lastCommitted = leafSet(tr, tr.CommittedRoot())
			}
			if tr.Validate() != nil {
				return false
			}
			got := leafSet(tr, tr.CommittedRoot())
			if len(got) != len(lastCommitted) {
				return false
			}
			for c, d := range lastCommitted {
				if got[c] != d {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12, Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: restore after a crash always yields exactly the committed
// version.
func TestQuickCrashRecovery(t *testing.T) {
	f := func(seed int64, nops uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nvDev := nvbm.New(nvbm.NVBM, 0)
		tr := Create(Config{NVBMDevice: nvDev, Seed: seed, DRAMBudgetOctants: 64})
		for i := 0; i < int(nops%8); i++ {
			tr.RefineWhere(sphere(r.Float64(), r.Float64(), r.Float64(), 0.25, 0.2), 3)
			if i%2 == 0 {
				tr.Persist()
			}
		}
		want := leafSet(tr, tr.CommittedRoot())
		// Crash: mutate working state, lose DRAM.
		tr.RefineWhere(func(c morton.Code) bool { return c.Level() < 2 }, 2)
		re, err := Restore(Config{NVBMDevice: nvDev})
		if err != nil {
			return false
		}
		got := leafSet(re, re.Root())
		if len(got) != len(want) {
			return false
		}
		for c, d := range want {
			if got[c] != d {
				return false
			}
		}
		return re.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: octant record encode/decode is the identity.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(code uint64, parent uint32, flags uint32, kids [8]uint32, d0, d1, d2, d3 float64, ver uint64) bool {
		o := Octant{
			Code:    morton.Code(code),
			Parent:  Ref(parent),
			Flags:   flags,
			Data:    [DataWords]float64{d0, d1, d2, d3},
			Version: ver,
		}
		for i, k := range kids {
			o.Children[i] = Ref(k)
		}
		var buf [RecordSize]byte
		o.encode(buf[:])
		var got Octant
		got.decode(buf[:])
		return got == o
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestForEachLeafInRange(t *testing.T) {
	tr := Create(Config{})
	tr.RefineWhere(func(morton.Code) bool { return true }, 2)

	// Full range covers everything.
	all := 0
	tr.ForEachLeafInRange(0, ^uint64(0), func(morton.Code, [DataWords]float64) bool {
		all++
		return true
	})
	if all != 64 {
		t.Fatalf("full range visited %d leaves", all)
	}

	// Split at the median leaf key: both halves partition the set.
	var keys []uint64
	tr.ForEachLeaf(func(c morton.Code, _ [DataWords]float64) bool {
		keys = append(keys, c.Key())
		return true
	})
	mid := keys[len(keys)/2]
	left, right := 0, 0
	tr.ForEachLeafInRange(0, mid, func(c morton.Code, _ [DataWords]float64) bool {
		if c.Key() >= mid {
			t.Fatalf("leaf %v outside range", c)
		}
		left++
		return true
	})
	tr.ForEachLeafInRange(mid, ^uint64(0), func(c morton.Code, _ [DataWords]float64) bool {
		if c.Key() < mid {
			t.Fatalf("leaf %v outside range", c)
		}
		right++
		return true
	})
	if left+right != all {
		t.Errorf("halves sum to %d, want %d", left+right, all)
	}

	// Pruning: a narrow range reads far fewer octants than a full walk.
	tr.setAccounting(true)
	tr.NVBMDevice().ResetStats()
	tr.DRAMDevice().ResetStats()
	tr.ForEachLeafInRange(mid, mid+1, func(morton.Code, [DataWords]float64) bool { return true })
	narrow := tr.NVBMDevice().Stats().Reads + tr.DRAMDevice().Stats().Reads
	tr.NVBMDevice().ResetStats()
	tr.DRAMDevice().ResetStats()
	tr.ForEachLeaf(func(morton.Code, [DataWords]float64) bool { return true })
	full := tr.NVBMDevice().Stats().Reads + tr.DRAMDevice().Stats().Reads
	if narrow*3 > full {
		t.Errorf("narrow range read %d octants vs %d full; pruning ineffective", narrow, full)
	}

	// Early stop.
	n := 0
	tr.ForEachLeafInRange(0, ^uint64(0), func(morton.Code, [DataWords]float64) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestOnDemandGCAtNVBMThreshold(t *testing.T) {
	// §3.2: when NVBM utilization crosses threshold_NVBM, GC runs on
	// demand, mid-step, not just at persists.
	tr := Create(Config{
		DRAMBudgetOctants: 1, // push octants to NVBM
		NVBMBudgetOctants: 400,
		ThresholdNVBM:     0.5,
	})
	// Churn: refine and coarsen repeatedly without persisting; deferred
	// deletions accumulate until the watermark forces a collection.
	for i := 0; i < 4; i++ {
		tr.RefineWhere(func(c morton.Code) bool { return c.Level() < 2 }, 2)
		tr.CoarsenWhere(func(morton.Code) bool { return true })
	}
	if tr.Stats().GCs == 0 {
		t.Fatalf("no on-demand GC despite churn past the watermark (stats %+v)", tr.Stats())
	}
	if tr.Stats().Persists != 0 {
		t.Fatal("test must not persist")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
