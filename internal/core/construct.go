package core

import (
	"fmt"

	"pmoctree/internal/bulk"
	"pmoctree/internal/morton"
	"pmoctree/internal/parallel"
	"pmoctree/internal/pmem"
	"pmoctree/internal/telemetry"
	"pmoctree/internal/tile"
)

// ConstructStateError reports a bulk construction attempted while the
// working version holds uncommitted mutations; construction replaces the
// whole working tree, so it is only legal at a step boundary (cur ==
// committed), where nothing would be silently discarded.
type ConstructStateError struct {
	Step uint64
}

func (e *ConstructStateError) Error() string {
	return fmt.Sprintf("core: ConstructFromCodes at step %d with uncommitted working-version mutations", e.Step)
}

// AdvanceStepTo fast-forwards the working version number without
// committing anything, so a tree constructed from another tree's leaf
// codes can commit at the SAME version number as its source — shard
// materialization uses this to keep per-shard catalogs version-consistent
// with the full arena. Forward-only, and only at a step boundary.
func (t *Tree) AdvanceStepTo(step uint64) error {
	if t.cur != t.committed {
		return &ConstructStateError{Step: t.step}
	}
	if step < t.step {
		return fmt.Errorf("core: AdvanceStepTo(%d) would rewind step %d", step, t.step)
	}
	t.step = step
	return nil
}

// ConstructFromCodes replaces the working version with a tree built in
// bulk from a slice of leaf Morton codes, Cornerstone-style (see
// internal/bulk): parallel sort + typed validation, top-down derivation of
// the internal structure from common key prefixes, optional 2:1 balance
// enforcement, then one contiguous arena run (pmem.AllocRun) filled by a
// single span-coalesced device write. data, when non-empty, must be
// len(codes) long and carries each input leaf's field payload;
// balance-split children inherit their source leaf's payload, exactly as
// incremental refinement copies data down. Internal nodes carry zero data,
// matching a tree refined from a fresh root.
//
// The resulting working version is bit-identical (digest equality) to the
// same leaf set built by incremental refine + UpdateLeaves, at any worker
// count. The leaf index, leaf-code snapshot and tile store are pre-filled
// and stamped valid, so the first gather after construction is free.
//
// The caller commits with Persist as usual; every constructed octant is
// already NVBM-resident, so the persist merge has nothing to move (the
// step boundary is detected and the merge walk skipped). Returns the total
// octant count (internal + leaves). Validation failures return the typed
// bulk errors (*bulk.DuplicateCodeError, *bulk.OverlapError, ...)
// unwrapped, with the tree untouched.
func (t *Tree) ConstructFromCodes(codes []morton.Code, data [][DataWords]float64, pool *parallel.Pool, balance bool) (int, error) {
	if t.cur != t.committed {
		return 0, &ConstructStateError{Step: t.step}
	}
	if len(data) != 0 && len(data) != len(codes) {
		return 0, fmt.Errorf("core: ConstructFromCodes got %d payloads for %d codes", len(data), len(codes))
	}
	defer t.span("Construct").End()
	bt, err := bulk.Construct(codes, bulk.Options{Pool: pool, Balance: balance})
	if err != nil {
		return 0, err
	}
	nn := len(bt.Nodes)
	stride := t.nv.Stride()
	base := t.nv.AllocRun(nn)
	ref := func(idx int32) Ref {
		if idx < 0 {
			return NilRef
		}
		return makeRef(false, base+pmem.Handle(idx))
	}
	buf := make([]byte, nn*stride)
	pool.Run(nn, func(lo, hi int) {
		var o Octant
		for j := lo; j < hi; j++ {
			o = Octant{
				Code:    bt.Nodes[j],
				Parent:  ref(bt.Parent[j]),
				Version: t.step,
			}
			for k := 0; k < 8; k++ {
				o.Children[k] = ref(bt.Children[8*j+k])
			}
			if li := bt.NodeLeaf[j]; li >= 0 && len(data) > 0 {
				o.Data = data[bt.SrcIdx[li]]
			}
			o.encode(buf[j*stride:])
		}
	})
	t.nv.WriteSpanExclusive(base, buf)
	t.cur = makeRef(false, base)
	t.depth = bt.Depth

	// The span write bypassed writeOct, so invalidate explicitly; then
	// pre-fill the leaf index and tile store from the flat derivation and
	// stamp them valid, so the first parallel sweep re-gathers nothing.
	t.cacheInvalidateAll()
	t.invalidateLeafIndex()
	nl := len(bt.Leaves)
	t.leafSnap = t.leafSnap[:0]
	t.leafCodesSnap = t.leafCodesSnap[:0]
	for i := 0; i < nl; i++ {
		e := LeafEntry{Code: bt.Leaves[i], Ref: ref(bt.LeafNode[i])}
		if len(data) > 0 {
			e.Data = data[bt.SrcIdx[i]]
		}
		t.leafSnap = append(t.leafSnap, e)
		t.leafCodesSnap = append(t.leafCodesSnap, e.Code)
	}
	t.leafSnapSeq = t.mutSeq
	t.leafSnapOK = true
	t.leafCodesOK = true
	if t.tiles == nil {
		t.tiles = new(tile.Store)
	}
	t.tiles.Reset(t.leafCodesSnap)
	for i := range t.leafSnap {
		t.tiles.Set(i, t.leafSnap[i].Data)
	}
	t.tiles.Stamp(t.mutSeq)

	// Mark the step boundary clean for Persist: as long as no further
	// mutation lands, the merge walk is provably a no-op and is skipped.
	t.constructClean = true
	t.constructSeq = t.mutSeq
	t.stats.Constructs++
	t.flight.Record(telemetry.FlightEvent{Kind: "construct", Step: t.step, Value: uint64(nn)})
	return nn, nil
}
