package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pmoctree/internal/pmem"
	"pmoctree/internal/telemetry"
)

// Asynchronous persistence pipeline. The synchronous Persist blocks the
// mutator on the full NVBM writeback of every step; with
// Config.PipelineDepth > 0 the merge instead STAGES the step's delta (the
// records of every octant relocated from C0) in host memory and hands it
// to a background persist worker, which performs the device writeback,
// the fallback-ring push, and the commit-record flip off the mutator's
// critical path. The mutator's view of "committed" advances immediately —
// step i+1 treats version i as immutable exactly as in synchronous mode —
// while DURABILITY trails by at most PipelineDepth versions: a crash loses
// enqueued-but-unflushed versions and recovers to the newest version whose
// commit record actually flipped. Flush is the durability barrier.
//
// Invariants the pipeline preserves:
//
//   - A staged octant's slot is allocated (its persistent bitmap bit set)
//     by the mutator before staging, so no later allocation can collide
//     with an in-flight record, and GC marks in-flight roots
//     (markInflight) so the sweep never frees them.
//   - Staged slots are never read from the device until their record
//     lands: every mutator read of an NVBM record consults the pending
//     set first (read-your-writes), still charging the modeled device
//     read so accounting does not depend on writeback timing.
//   - Committed octants are immutable, so once a version is enqueued its
//     delta records are final — with one exception: while the NEXT merge
//     is staging, reparentChanged may patch the parent field of a record
//     staged moments earlier in the SAME merge. patchParent therefore
//     only touches records of the merge currently being staged, never a
//     record the worker may be writing.
//   - Only the worker stores to the root table while the pipeline runs;
//     mutator-side root-table reads (markRetained, RetainedVersions) take
//     rootMu so ring pushes and commit flips stay atomic under them.
//
// Under group commit (GroupCommit = k > 1) the worker drains up to k
// queued versions into ONE durable commit: one writeback batch, one ring
// push, one record flip naming the newest version of the group. The older
// versions of a group never get their own commit record — after a crash
// they are unrecoverable, which is exactly the deal group commit offers
// (commit frequency decoupled from step frequency). Their digests still
// count as legitimate recovery targets for the chaos harness because a
// crash can also land BEFORE a group forms, making any enqueued version
// the newest flipped one.

// PipelineDepthError reports a Config.PipelineDepth exceeding what the
// fallback ring can absorb alongside the configured RetainVersions: every
// in-flight version will claim a ring entry when its group commits, and
// the retained versions' entries must survive a full in-flight window.
type PipelineDepthError struct {
	Requested int // the configured PipelineDepth
	Limit     int // MaxRetainVersions - RetainVersions
}

func (e *PipelineDepthError) Error() string {
	return fmt.Sprintf("core: PipelineDepth %d exceeds the fallback ring headroom %d (ring depth %d minus RetainVersions)",
		e.Requested, e.Limit, MaxRetainVersions)
}

// PipelineStats are the persist pipeline's cumulative counters.
type PipelineStats struct {
	Enqueued  uint64 // versions handed to the persist worker
	Committed uint64 // durable commits (commit-record flips)
	Coalesced uint64 // versions folded into a group commit without their own flip
	Stalls    uint64 // Persist calls that blocked on a full in-flight window
	Pending   int    // versions enqueued but not yet durable right now
}

// stagedRec is one relocated octant awaiting writeback: the slot it was
// allocated and its encoded record.
type stagedRec struct {
	h   pmem.Handle
	rec [RecordSize]byte
}

// commitReq is one enqueued version: its root, step number, merge delta,
// and the arena it must be written to (captured at enqueue time so a
// later Compact cannot swap the arena under the worker). bits and hw are
// the deferred allocation-bitmap snapshot covering every alloc and free
// up to this version — the worker lands them before the commit flip, so
// a recovered allocator never hands out a slot the durable root owns.
type commitReq struct {
	root  Ref
	step  uint64
	delta []*stagedRec
	nv    *pmem.Arena
	bits  []pmem.BitWord
	hw    uint32
}

type pipeline struct {
	t     *Tree
	depth int
	group int

	// mu guards the queue, the durable watermark, shutdown state, and the
	// stashed worker failure. cond signals both directions: the mutator
	// waits for window space, the worker waits for work.
	mu          sync.Mutex
	cond        *sync.Cond
	queue       []*commitReq
	durableRoot Ref
	durableStep uint64
	closed      bool
	aborted     bool
	failure     any // stashed worker panic, re-raised on the mutator
	hook        func(stage string)

	// rootMu serializes the worker's root-table stores (ring push, commit
	// flip) against mutator-side root-table reads: the table shares device
	// bytes, and the two-store flip must be atomic under readers.
	rootMu sync.Mutex

	// pending maps staged-but-not-yet-durable slots to their records, for
	// mutator read-your-writes. pendMu is RW: the mutator reads on every
	// NVBM record load, the worker deletes entries after each batch.
	pendMu  sync.RWMutex
	pending map[pmem.Handle]*stagedRec

	// staging is set by the mutator around moveToNVBM when persisting
	// asynchronously; stage accumulates the delta. Mutator-only.
	staging bool
	stage   []*stagedRec

	// spanBuf is the worker's reusable span-assembly buffer. Worker-only.
	spanBuf []byte

	enqueued  atomic.Uint64
	committed atomic.Uint64
	coalesced atomic.Uint64
	stalls    atomic.Uint64

	done chan struct{}
}

// startPipeline launches the persist worker when the configuration asks
// for asynchronous persistence. Called from Create and RestoreWithReport
// once the tree has a committed version.
func (t *Tree) startPipeline() {
	if t.cfg.PipelineDepth <= 0 {
		return
	}
	g := t.cfg.GroupCommit
	if g < 1 {
		g = 1
	}
	if g > t.cfg.PipelineDepth {
		g = t.cfg.PipelineDepth
	}
	p := &pipeline{
		t:           t,
		depth:       t.cfg.PipelineDepth,
		group:       g,
		durableRoot: t.committed,
		durableStep: t.committedStep,
		pending:     make(map[pmem.Handle]*stagedRec),
		done:        make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	t.pipe = p
	// While the pipeline runs, allocation-bitmap and high-water
	// persistence ride the worker's commit batches instead of charging
	// the mutator a device read-modify-write per alloc and free.
	t.nv.SetDeferredBits(true)
	go p.worker()
}

// Pipelined reports whether the asynchronous persist pipeline is running.
func (t *Tree) Pipelined() bool { return t.pipe != nil }

// PipelineStats returns the pipeline's counters (zero value when the tree
// persists synchronously).
func (t *Tree) PipelineStats() PipelineStats {
	p := t.pipe
	if p == nil {
		return PipelineStats{}
	}
	p.mu.Lock()
	pending := len(p.queue)
	p.mu.Unlock()
	return PipelineStats{
		Enqueued:  p.enqueued.Load(),
		Committed: p.committed.Load(),
		Coalesced: p.coalesced.Load(),
		Stalls:    p.stalls.Load(),
		Pending:   pending,
	}
}

// DurableStep returns the step number of the newest version whose commit
// record has actually flipped. Synchronously persisting trees are durable
// through CommittedStep; pipelined trees may trail it by up to
// PipelineDepth versions until Flush.
func (t *Tree) DurableStep() uint64 {
	if t.pipe == nil {
		return t.committedStep
	}
	_, step := t.pipe.durable()
	return step
}

// SetPersistHook installs a callback the persist worker invokes at stage
// boundaries: "writeback" before a batch's record writes, "ring" after
// the fallback-ring push (commit record not yet flipped), "commit" after
// the record flip. Chaos harnesses use it to cut power at exact pipeline
// stages. Install it before stepping begins; the callback runs on the
// worker goroutine. No-op when the tree persists synchronously.
func (t *Tree) SetPersistHook(fn func(stage string)) {
	if p := t.pipe; p != nil {
		p.mu.Lock()
		p.hook = fn
		p.mu.Unlock()
	}
}

// Flush blocks until every enqueued version is durably committed — the
// durability barrier: after Flush returns, the commit record names the
// newest version Persist produced. A persist-worker crash (e.g. power
// lost during writeback) is re-raised here on the caller, exactly as a
// synchronous Persist would have panicked at the failing device access.
// No-op for synchronously persisting trees.
func (t *Tree) Flush() {
	p := t.pipe
	if p == nil {
		return
	}
	p.mu.Lock()
	for len(p.queue) > 0 && p.failure == nil {
		p.cond.Wait()
	}
	f := p.failure
	p.mu.Unlock()
	if f != nil {
		panic(f)
	}
}

// Close flushes the pipeline and stops the persist worker; the tree then
// persists synchronously again. No-op when no pipeline is running.
func (t *Tree) Close() {
	p := t.pipe
	if p == nil {
		return
	}
	t.Flush()
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	<-p.done
	t.pipe = nil
	// Back to synchronous persistence: land bitmap words dirtied since the
	// last enqueue (GC frees, retargeting) and resume eager per-bit writes.
	t.nv.SetDeferredBits(false)
}

// AbortPipeline stops the persist worker WITHOUT flushing: versions still
// in flight are dropped (they were never durable — after a crash this is
// the truth on the device anyway). Crash-recovery paths use it to stop
// the worker when the device no longer accepts writes; a stashed worker
// failure is discarded rather than re-raised.
func (t *Tree) AbortPipeline() {
	p := t.pipe
	if p == nil {
		return
	}
	p.mu.Lock()
	p.aborted = true
	p.closed = true
	p.queue = nil
	p.cond.Broadcast()
	p.mu.Unlock()
	<-p.done
	t.pipe = nil
}

// rebindDurable repoints the durable watermark after Compact rewrote the
// committed version into a fresh arena. Mutator-only, queue drained
// (Compact flushes first).
func (p *pipeline) rebindDurable(root Ref, step uint64) {
	p.mu.Lock()
	p.durableRoot, p.durableStep = root, step
	p.mu.Unlock()
}

// durable returns the newest durably committed (root, step).
func (p *pipeline) durable() (Ref, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.durableRoot, p.durableStep
}

// checkFailure re-raises a stashed worker panic on the mutator, so a
// device failure during background writeback surfaces on the next
// Persist/Flush just as it would have surfaced inline when synchronous.
func (p *pipeline) checkFailure() {
	p.mu.Lock()
	f := p.failure
	p.mu.Unlock()
	if f != nil {
		panic(f)
	}
}

// beginStage arms delta staging around the mutator's moveToNVBM.
func (p *pipeline) beginStage() {
	p.staging = true
	p.stage = p.stage[:0]
}

// endStage disarms staging and returns the accumulated delta.
func (p *pipeline) endStage() []*stagedRec {
	p.staging = false
	delta := make([]*stagedRec, len(p.stage))
	copy(delta, p.stage)
	p.stage = p.stage[:0]
	return delta
}

// stageRecord captures the encoded record of a relocated octant and
// publishes it in the pending set for read-your-writes. Mutator-only,
// while staging.
func (p *pipeline) stageRecord(h pmem.Handle, o *Octant) {
	r := &stagedRec{h: h}
	o.encode(r.rec[:])
	p.stage = append(p.stage, r)
	p.pendMu.Lock()
	p.pending[h] = r
	p.pendMu.Unlock()
}

// patchParent updates the parent field of a record staged by the merge
// currently running, returning false when the slot is not pending (the
// caller then writes the device directly). Safe only while staging: a
// pending record from an already-enqueued version is never patched — by
// construction reparentChanged only targets slots the ongoing merge just
// created — so the worker never writes bytes the mutator is mutating.
func (p *pipeline) patchParent(h pmem.Handle, parent Ref) bool {
	if !p.staging {
		return false
	}
	p.pendMu.Lock()
	r, ok := p.pending[h]
	if ok {
		putU32(r.rec[offParent:], uint32(parent))
	}
	p.pendMu.Unlock()
	return ok
}

// readPendingField copies len(out) bytes at field offset off from the
// pending record for h, if any. Safe from the mutator concurrently with
// the worker retiring OTHER entries.
func (p *pipeline) readPendingField(h pmem.Handle, off int, out []byte) bool {
	p.pendMu.RLock()
	r, ok := p.pending[h]
	if ok {
		copy(out, r.rec[off:])
	}
	p.pendMu.RUnlock()
	return ok
}

// inflightRoots snapshots the roots GC must keep live: the newest durable
// version (the on-device commit record names it) plus every enqueued
// version.
func (p *pipeline) inflightRoots() []Ref {
	p.mu.Lock()
	defer p.mu.Unlock()
	roots := make([]Ref, 0, len(p.queue)+1)
	if !p.durableRoot.IsNil() {
		roots = append(roots, p.durableRoot)
	}
	for _, req := range p.queue {
		roots = append(roots, req.root)
	}
	return roots
}

// enqueue hands a snapshotted version to the worker, blocking while the
// in-flight window is full (backpressure: the window may never outrun the
// fallback ring's headroom). Mutator-only.
func (p *pipeline) enqueue(req *commitReq) {
	p.mu.Lock()
	if len(p.queue) >= p.depth && p.failure == nil && !p.closed {
		p.stalls.Add(1)
		p.t.flight.Record(telemetry.FlightEvent{Kind: "persist_stall", Step: req.step, Value: uint64(len(p.queue))})
	}
	for len(p.queue) >= p.depth && p.failure == nil && !p.closed {
		p.cond.Wait()
	}
	if f := p.failure; f != nil {
		p.mu.Unlock()
		panic(f)
	}
	p.queue = append(p.queue, req)
	p.enqueued.Add(1)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// worker is the background persist loop: it drains up to GroupCommit
// queued versions at a time and makes them durable in one commit. A panic
// (power cut, media failure) is stashed and re-raised on the mutator.
func (p *pipeline) worker() {
	defer close(p.done)
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			p.failure = r
			p.closed = true
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.aborted || len(p.queue) == 0 {
			// closed with an empty queue, or aborted outright: done.
			p.mu.Unlock()
			return
		}
		n := len(p.queue)
		if n > p.group {
			n = p.group
		}
		batch := make([]*commitReq, n)
		copy(batch, p.queue[:n])
		hook := p.hook
		p.mu.Unlock()

		// Entries stay in the queue during the writeback so GC's
		// inflightRoots snapshot keeps marking them.
		p.commitBatch(batch, hook)

		p.mu.Lock()
		if p.aborted {
			p.mu.Unlock()
			return
		}
		p.queue = p.queue[n:]
		final := batch[n-1]
		p.durableRoot, p.durableStep = final.root, final.step
		p.committed.Add(1)
		p.coalesced.Add(uint64(n - 1))
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// writeback stores a batch's delta records to the device, coalescing
// records that landed in consecutive arena slots into single span writes.
// The merge allocates relocation targets in near-sequential slots, so a
// step's delta typically collapses into a handful of device accesses —
// amortizing per-access latency and the exclusive lock (records are not
// line-aligned, so shared-lock writes could race the mutator's inline
// writes to adjacent slots on the per-line CRC shadow) across whole runs.
// Worker goroutine only.
func (p *pipeline) writeback(batch []*commitReq) {
	// All requests in a batch share one arena: Compact is the only arena
	// swap and it drains the queue first. Records are deduplicated by slot
	// offset, later versions winning, and sorted so runs are maximal. (A
	// slot cannot be freed and re-staged while pending — GC marks in-flight
	// roots — so duplicates do not occur today; the dedup keeps the span
	// assembly correct if that ever changes.)
	nv := batch[0].nv
	stride := nv.Stride()
	byOff := make(map[int]*stagedRec)
	for _, req := range batch {
		for _, r := range req.delta {
			off, _ := req.nv.SlotRange(r.h)
			byOff[off] = r
		}
	}
	offs := make([]int, 0, len(byOff))
	for off := range byOff {
		offs = append(offs, off)
	}
	sort.Ints(offs)
	for i := 0; i < len(offs); {
		j := i + 1
		for j < len(offs) && offs[j] == offs[j-1]+stride {
			j++
		}
		if j == i+1 {
			nv.WriteExclusive(byOff[offs[i]].h, byOff[offs[i]].rec[:])
		} else {
			need := (j-i-1)*stride + RecordSize
			if cap(p.spanBuf) < need {
				p.spanBuf = make([]byte, need)
			}
			buf := p.spanBuf[:need]
			for k := range buf {
				buf[k] = 0
			}
			for k := i; k < j; k++ {
				copy(buf[(k-i)*stride:], byOff[offs[k]].rec[:])
			}
			nv.WriteSpanExclusive(byOff[offs[i]].h, buf)
		}
		i = j
	}
	// Land the batch's deferred allocation-bitmap snapshots (enqueue
	// order, last-wins per word) and the high-water mark. Must precede the
	// commit flip: once the flip makes these slots reachable, a recovered
	// allocator has to see them allocated.
	var bits []pmem.BitWord
	for _, req := range batch {
		bits = append(bits, req.bits...)
	}
	nv.WriteBitsExclusive(bits, batch[len(batch)-1].hw)
}

// commitBatch makes a batch of enqueued versions durable: writeback of
// every delta record, one fallback-ring push of the version the batch
// supersedes, and one commit-record flip naming the batch's newest
// version. Worker goroutine only.
func (p *pipeline) commitBatch(batch []*commitReq, hook func(string)) {
	t := p.t
	if hook != nil {
		hook("writeback")
	}
	p.writeback(batch)
	final := batch[len(batch)-1]
	durableRoot, durableStep := p.durable()
	p.rootMu.Lock()
	// The superseded durable version enters the fallback ring before the
	// commit record flips away from it, mirroring the synchronous
	// pushHistory-then-commit order: a crash inside the push damages at
	// most the ring's oldest entry, never the commit record.
	if !durableRoot.IsNil() && !durableRoot.InDRAM() {
		i := int(durableStep % histSlots)
		final.nv.SetRoot(histAddrSlot(i), uint64(durableRoot))
		final.nv.SetRoot(histStepSlot(i), durableStep)
	}
	if hook != nil {
		hook("ring")
	}
	// Step before addr, the same crash ordering Persist documents.
	final.nv.SetRoot(rootSlotStep, final.step)
	final.nv.SetRoot(rootSlotAddr, uint64(final.root))
	p.rootMu.Unlock()
	if hook != nil {
		hook("commit")
	}
	// The batch is durable: retire its pending records so mutator reads
	// go back to the device.
	p.pendMu.Lock()
	for _, req := range batch {
		for _, r := range req.delta {
			delete(p.pending, r.h)
		}
	}
	p.pendMu.Unlock()
	for _, req := range batch {
		t.flight.Record(telemetry.FlightEvent{Kind: "persist_complete", Step: req.step, Value: uint64(req.root)})
	}
	t.flight.Record(telemetry.FlightEvent{Kind: "commit", Step: final.step, Value: uint64(final.root)})
}
