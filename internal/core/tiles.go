package core

import (
	"time"

	"pmoctree/internal/tile"
)

// Tiled SoA leaf storage (DESIGN.md decision 16). The Z-order leaf index
// (leafindex.go) already materializes the working version's leaves as one
// flat Morton-sorted slice; LeafTiles transposes that AoS snapshot into
// the tile.Store SoA layout the hot kernels sweep, and ScatterLeafTiles
// writes the modified cells back through the same in-place/COW paths
// UpdateLeavesIndexed uses.
//
// Invalidation protocol: the store is stamped with the same mutation
// sequence number as the leaf snapshot. Any octant write, partial-field
// write or free invalidates it; a scatter that only performed in-place
// data stores re-stamps both the snapshot and the store, so steady-state
// solve steps (no refine/coarsen) pay ZERO re-gathers — the store stays
// bit-coherent with the tree across arbitrarily many sweep+scatter
// rounds. Gather reads only the cached snapshot (no tree walk, no device
// traffic beyond what LeafSnapshot itself charges when it has to
// rebuild); the modeled device cost of the solve lives in the scatter's
// field writes, exactly like the indexed sweep it replaces.

// The tile layout carries the octree payload verbatim.
var _ = [1]struct{}{}[tile.Words-DataWords]

// LeafTiles returns the tiled SoA image of the working version's leaves,
// gathering (or re-gathering) only when a mutation invalidated the cached
// store. Callers sweep the returned store's flat slices, MarkDirty every
// modified cell, and hand the store back to ScatterLeafTiles; they must
// not retain it across tree mutations.
func (t *Tree) LeafTiles() *tile.Store {
	if t.tiles != nil && t.tiles.ValidFor(t.mutSeq) {
		t.fp.TileReuses++
		return t.tiles
	}
	defer t.span("Gather").End()
	start := time.Now()
	ls := t.LeafSnapshot()
	codes := t.LeafCodesSnapshot()
	if t.tiles == nil {
		t.tiles = new(tile.Store)
	}
	t.tiles.Reset(codes)
	for i := range ls {
		t.tiles.Set(i, ls[i].Data)
	}
	t.tiles.Stamp(t.mutSeq)
	t.fp.TileRebuilds++
	t.fp.TileRebuildNs += uint64(time.Since(start).Nanoseconds())
	t.fp.TileGatherBytes += uint64(len(ls)) * 8 * DataWords
	return t.tiles
}

// ScatterLeafTiles writes the store's dirty cells back into the tree and
// returns the number of cells written. In-place leaves take a single
// data-field store (patching the leaf snapshot along the way); leaves
// shared with the committed version route through the UpdateAt COW walk.
// When every write was in place, the snapshot and the store are
// re-stamped as valid — the next LeafTiles is free.
//
// The store must be the one LeafTiles returned, still valid for the
// current mutation sequence (i.e. the tree was not mutated behind it);
// a stale store panics rather than silently scattering into the wrong
// mesh.
func (t *Tree) ScatterLeafTiles(st *tile.Store) int {
	if st == nil || st != t.tiles || !st.ValidFor(t.mutSeq) {
		panic("core: ScatterLeafTiles on a stale or foreign tile store")
	}
	defer t.span("Scatter").End()
	written := 0
	structChanged := false
	st.ForEachDirty(func(i int) {
		e := &t.leafSnap[i]
		data := st.Load(i)
		written++
		if t.isCurrent(e.Ref) {
			o := Octant{Data: data}
			t.writeDataField(e.Ref, &o)
			e.Data = data // keep the snapshot entry coherent
		} else {
			t.UpdateAt(e.Code, func(d *[DataWords]float64) { *d = data })
			structChanged = true
		}
	})
	st.ClearDirty()
	if !structChanged {
		// Only in-place data stores happened and both the snapshot entries
		// and the store were patched along the way: revalidate them so the
		// next gather is a reuse.
		t.leafSnapSeq = t.mutSeq
		st.Stamp(t.mutSeq)
	}
	t.fp.TileScatters++
	t.fp.TileScatterBytes += uint64(written) * 8 * DataWords
	t.maybeEvict()
	return written
}

// TileOccupancy returns the mean tile fill of the current leaf tiling
// (gathering if needed); a metrics convenience.
func (t *Tree) TileOccupancy() float64 { return t.LeafTiles().Occupancy() }
