package core

import (
	"encoding/binary"
	"math"

	"pmoctree/internal/morton"
)

// DataWords is the number of float64 field values carried per octant.
const DataWords = 4

// Octant is the decoded in-register view of one octant record. It is a
// value type: mutating it does not touch the arena until written back.
type Octant struct {
	Code     morton.Code
	Parent   Ref
	Flags    uint32
	Children [8]Ref
	Data     [DataWords]float64
	Version  uint64 // time step that created this physical octant
}

// Octant flag bits.
const (
	// FlagDeleted marks an octant unlinked from the working version and
	// awaiting garbage collection (deferred deletion, §3.2).
	FlagDeleted uint32 = 1 << 0
)

// Record layout (little-endian, RecordSize bytes):
//
//	 0  code     uint64
//	 8  parent   uint32 (Ref)
//	12  flags    uint32
//	16  children [8]uint32 (Ref)
//	48  data     [DataWords]float64
//	80  version  uint64
const (
	offCode     = 0
	offParent   = 8
	offFlags    = 12
	offChildren = 16
	offData     = 48
	offVersion  = 48 + 8*DataWords

	// RecordSize is the serialized octant size in bytes.
	RecordSize = offVersion + 8
)

// encode serializes o into buf, which must be at least RecordSize bytes.
func (o *Octant) encode(buf []byte) {
	binary.LittleEndian.PutUint64(buf[offCode:], uint64(o.Code))
	binary.LittleEndian.PutUint32(buf[offParent:], uint32(o.Parent))
	binary.LittleEndian.PutUint32(buf[offFlags:], o.Flags)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint32(buf[offChildren+4*i:], uint32(o.Children[i]))
	}
	for i := 0; i < DataWords; i++ {
		binary.LittleEndian.PutUint64(buf[offData+8*i:], math.Float64bits(o.Data[i]))
	}
	binary.LittleEndian.PutUint64(buf[offVersion:], o.Version)
}

// decode deserializes o from buf.
func (o *Octant) decode(buf []byte) {
	o.Code = morton.Code(binary.LittleEndian.Uint64(buf[offCode:]))
	o.Parent = Ref(binary.LittleEndian.Uint32(buf[offParent:]))
	o.Flags = binary.LittleEndian.Uint32(buf[offFlags:])
	for i := 0; i < 8; i++ {
		o.Children[i] = Ref(binary.LittleEndian.Uint32(buf[offChildren+4*i:]))
	}
	for i := 0; i < DataWords; i++ {
		o.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[offData+8*i:]))
	}
	o.Version = binary.LittleEndian.Uint64(buf[offVersion:])
}

// IsLeaf reports whether the octant has no children.
func (o *Octant) IsLeaf() bool {
	for _, c := range o.Children {
		if !c.IsNil() {
			return false
		}
	}
	return true
}

// Deleted reports whether the octant carries the deferred-deletion mark.
func (o *Octant) Deleted() bool { return o.Flags&FlagDeleted != 0 }
