package core

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
	"testing"

	"pmoctree/internal/bulk"
	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/parallel"
)

// constructDigest hashes (code, data) of every working-version octant in
// pre-order — the same walk internal/fault's chaos digests use, local here
// because core cannot import fault.
func constructDigest(t *Tree) uint64 {
	h := fnv.New64a()
	var b [8]byte
	t.ForEachNode(func(_ Ref, o *Octant) bool {
		binary.LittleEndian.PutUint64(b[:], uint64(o.Code))
		h.Write(b[:])
		for _, v := range o.Data {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			h.Write(b[:])
		}
		return true
	})
	return h.Sum64()
}

// constructPayload is a deterministic per-leaf field payload, a pure
// function of the code so refine+UpdateLeaves and ConstructFromCodes can
// agree without sharing state.
func constructPayload(c morton.Code) (d [DataWords]float64) {
	x, y, z := c.Center()
	d[0] = x + 2*y + 3*z
	d[1] = float64(c.Level()) + 0.25
	d[2] = x * y * z
	d[3] = z - x
	return d
}

// refTreeShell builds the reference tree the slow way: incremental refine
// over a spherical shell, balance, per-leaf payloads, persist.
func refTreeShell(maxLevel uint8) *Tree {
	tr := Create(Config{})
	tr.RefineWhere(sphere(0.5, 0.5, 0.5, 0.3, 0.05), maxLevel)
	tr.Balance()
	tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
		*d = constructPayload(c)
		return true
	})
	tr.Persist()
	return tr
}

// TestConstructDigestEqualsRefine is the acceptance test: a tree
// constructed in bulk from a leaf set is bit-identical (digest equality)
// to the same leaf set built by incremental refine + UpdateLeaves, at any
// worker count, including forced-width pools.
func TestConstructDigestEqualsRefine(t *testing.T) {
	ref := refTreeShell(5)
	want := constructDigest(ref)
	codes := ref.LeafCodes()
	data := make([][DataWords]float64, len(codes))
	for i, c := range codes {
		data[i] = constructPayload(c)
	}
	pools := map[string]*parallel.Pool{
		"nil":     nil,
		"w1":      parallel.New(1),
		"w2":      parallel.New(2),
		"w4":      parallel.New(4),
		"w7":      parallel.New(7),
		"forced4": parallel.NewForced(4),
		"forced7": parallel.NewForced(7),
	}
	for name, pool := range pools {
		t.Run(name, func(t *testing.T) {
			tr := Create(Config{})
			nn, err := tr.ConstructFromCodes(codes, data, pool, false)
			if err != nil {
				t.Fatal(err)
			}
			if nn != ref.NodeCount() {
				t.Fatalf("node count %d, want %d", nn, ref.NodeCount())
			}
			if got := constructDigest(tr); got != want {
				t.Fatalf("pre-persist digest %#x, want %#x", got, want)
			}
			tr.Persist()
			if got := constructDigest(tr); got != want {
				t.Fatalf("post-persist digest %#x, want %#x", got, want)
			}
			if tr.CommittedStep() != ref.CommittedStep() {
				t.Fatalf("committed step %d, want %d", tr.CommittedStep(), ref.CommittedStep())
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if !tr.IsBalanced() {
				t.Fatal("constructed tree not 2:1 balanced")
			}
		})
	}
}

// TestConstructBalanceMatchesCore feeds an UNBALANCED leaf set through
// ConstructFromCodes with balance enforcement on and requires the result
// to match refine + core Balance of the same set.
func TestConstructBalanceMatchesCore(t *testing.T) {
	// Refine the chain of octants containing (0.49, 0.49, 0.49): deep
	// leaves hug the domain-center planes, face-adjacent to untouched
	// level-1 leaves, so the raw leaf set violates 2:1.
	chain := func(c morton.Code) bool {
		x, y, z := c.Center()
		h := c.Extent() / 2
		const p = 0.49
		return x-h <= p && p < x+h && y-h <= p && p < y+h && z-h <= p && p < z+h
	}
	raw := Create(Config{})
	raw.RefineWhere(chain, 6)
	if raw.IsBalanced() {
		t.Fatal("test input is unexpectedly balanced")
	}
	input := raw.LeafCodes()

	ref := Create(Config{})
	ref.RefineWhere(chain, 6)
	ref.Balance()
	ref.Persist()
	want := constructDigest(ref)

	tr := Create(Config{})
	if _, err := tr.ConstructFromCodes(input, nil, parallel.New(4), true); err != nil {
		t.Fatal(err)
	}
	tr.Persist()
	if got := constructDigest(tr); got != want {
		t.Fatalf("balanced construct digest %#x, want %#x", got, want)
	}
	if !tr.IsBalanced() {
		t.Fatal("constructed tree not balanced")
	}
}

// TestConstructContinuesStepping proves the constructed tree is a drop-in
// replacement going forward: identical mutations on both trees keep the
// digests locked together across further refine/update/persist rounds.
func TestConstructContinuesStepping(t *testing.T) {
	ref := refTreeShell(4)
	codes := ref.LeafCodes()
	data := make([][DataWords]float64, len(codes))
	for i, c := range codes {
		data[i] = constructPayload(c)
	}
	tr := Create(Config{})
	if _, err := tr.ConstructFromCodes(codes, data, nil, false); err != nil {
		t.Fatal(err)
	}
	tr.Persist()
	for round := 0; round < 3; round++ {
		for _, x := range []*Tree{ref, tr} {
			x.RefineWhere(sphere(0.5, 0.5, 0.5, 0.3, 0.02), 5)
			x.Balance()
			x.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
				d[0] += float64(round) + 1
				return true
			})
			x.Persist()
		}
		if a, b := constructDigest(ref), constructDigest(tr); a != b {
			t.Fatalf("round %d: digests diverged %#x vs %#x", round, a, b)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConstructStateAndInputErrors covers the typed error paths: construct
// on a dirty working version, payload length mismatch, and bulk validation
// errors surfacing unwrapped — all leaving the tree untouched.
func TestConstructStateAndInputErrors(t *testing.T) {
	tr := Create(Config{})
	tr.RefineWhere(func(morton.Code) bool { return true }, 1)
	var se *ConstructStateError
	if _, err := tr.ConstructFromCodes([]morton.Code{morton.Root}, nil, nil, false); !errors.As(err, &se) {
		t.Fatalf("dirty-tree construct: got %v, want ConstructStateError", err)
	}
	if err := tr.AdvanceStepTo(9); !errors.As(err, &se) {
		t.Fatalf("dirty-tree advance: got %v, want ConstructStateError", err)
	}
	tr.Persist()

	if _, err := tr.ConstructFromCodes([]morton.Code{morton.Root}, make([][DataWords]float64, 2), nil, false); err == nil {
		t.Fatal("payload length mismatch not rejected")
	}

	before := constructDigest(tr)
	nodes := tr.NodeCount()
	var dup *bulk.DuplicateCodeError
	c := morton.Root.Child(0)
	if _, err := tr.ConstructFromCodes([]morton.Code{c, c}, nil, nil, false); !errors.As(err, &dup) {
		t.Fatalf("duplicate input: got %v, want DuplicateCodeError", err)
	}
	var ov *bulk.OverlapError
	if _, err := tr.ConstructFromCodes([]morton.Code{morton.Root, c}, nil, nil, false); !errors.As(err, &ov) {
		t.Fatalf("overlapping input: got %v, want OverlapError", err)
	}
	if constructDigest(tr) != before || tr.NodeCount() != nodes {
		t.Fatal("failed construct mutated the tree")
	}
	tr.RefineWhere(func(morton.Code) bool { return true }, 2)
	tr.Persist()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAdvanceStepTo: forward fast-forward sticks through construct+persist
// (the shard-materialization contract); rewinding is refused.
func TestAdvanceStepTo(t *testing.T) {
	tr := Create(Config{})
	if err := tr.AdvanceStepTo(7); err != nil {
		t.Fatal(err)
	}
	if tr.Step() != 7 {
		t.Fatalf("Step = %d, want 7", tr.Step())
	}
	if err := tr.AdvanceStepTo(3); err == nil {
		t.Fatal("rewind not refused")
	}
	if _, err := tr.ConstructFromCodes([]morton.Code{morton.Root}, nil, nil, false); err != nil {
		t.Fatal(err)
	}
	tr.Persist()
	if tr.CommittedStep() != 7 {
		t.Fatalf("CommittedStep = %d, want 7", tr.CommittedStep())
	}
}

// TestConstructPersistSkipsMerge: the persist after a clean construct must
// not re-read the whole tree (the merge walk is skipped), and any mutation
// between construct and persist must fall back to the full walk.
func TestConstructPersistSkipsMerge(t *testing.T) {
	ref := refTreeShell(5)
	codes := ref.LeafCodes()
	data := make([][DataWords]float64, len(codes))
	for i, c := range codes {
		data[i] = constructPayload(c)
	}

	// Control: identical construct, stamp cleared to force the full merge
	// walk. The clean persist must save the walk's per-octant reads (GC
	// and retargeting still read the device on both paths).
	persistReads := func(forceWalk bool) uint64 {
		tr := Create(Config{})
		if _, err := tr.ConstructFromCodes(codes, data, nil, false); err != nil {
			t.Fatal(err)
		}
		if !tr.constructCleanNow() {
			t.Fatal("fresh construct not marked clean")
		}
		if forceWalk {
			tr.constructClean = false
		}
		r0 := tr.nv.Device().Stats().Reads
		tr.Persist()
		if tr.constructClean {
			t.Fatal("constructClean not cleared by Persist")
		}
		return tr.nv.Device().Stats().Reads - r0
	}
	clean, walked := persistReads(false), persistReads(true)
	if clean+uint64(len(codes)) > walked {
		t.Fatalf("clean persist read %d vs %d with the walk forced; merge walk not skipped", clean, walked)
	}

	// A mutation between construct and persist invalidates the stamp; the
	// fallback walk still produces the right committed image.
	tr2 := Create(Config{})
	if _, err := tr2.ConstructFromCodes(codes, data, nil, false); err != nil {
		t.Fatal(err)
	}
	tr2.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
		d[3] = 99
		return true
	})
	if tr2.constructCleanNow() {
		t.Fatal("mutated tree still marked construct-clean")
	}
	tr2.Persist()
	found := false
	tr2.ForEachCommittedNode(func(_ Ref, o *Octant) bool {
		if o.IsLeaf() && o.Data[3] != 99 {
			t.Fatalf("leaf %v missed the update", o.Code)
		}
		found = found || o.IsLeaf()
		return true
	})
	if !found {
		t.Fatal("committed walk saw no leaves")
	}
	if err := tr2.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConstructPrefillsFastPath: the first gather after construction must
// be free — leaf snapshot, code snapshot and tile store all pre-filled and
// stamped valid.
func TestConstructPrefillsFastPath(t *testing.T) {
	ref := refTreeShell(4)
	codes := ref.LeafCodes()
	data := make([][DataWords]float64, len(codes))
	for i, c := range codes {
		data[i] = constructPayload(c)
	}
	tr := Create(Config{})
	if _, err := tr.ConstructFromCodes(codes, data, nil, false); err != nil {
		t.Fatal(err)
	}
	rebuilds := tr.fp.TileRebuilds
	reuses := tr.fp.TileReuses
	st := tr.LeafTiles()
	if tr.fp.TileRebuilds != rebuilds || tr.fp.TileReuses != reuses+1 {
		t.Fatalf("first gather not free: rebuilds %d->%d reuses %d->%d",
			rebuilds, tr.fp.TileRebuilds, reuses, tr.fp.TileReuses)
	}
	if st.N() != len(codes) {
		t.Fatalf("tile store holds %d cells, want %d", st.N(), len(codes))
	}
	for i, c := range codes {
		if st.Codes()[i] != c {
			t.Fatalf("tile cell %d code mismatch", i)
		}
		if got, want := st.Load(i), constructPayload(c); got != want {
			t.Fatalf("tile cell %d = %v, want %v", i, got, want)
		}
	}
	// The prefilled snapshot serves point queries without a walk rebuild.
	snap := tr.LeafSnapshot()
	if len(snap) != len(codes) {
		t.Fatalf("leaf snapshot %d entries, want %d", len(snap), len(codes))
	}
}

// TestConstructRestore: a constructed+persisted arena reopens exactly like
// a refined one — same digest, valid invariants, and stepping continues.
func TestConstructRestore(t *testing.T) {
	nv := nvbm.New(nvbm.NVBM, 0)
	ref := refTreeShell(5)
	codes := ref.LeafCodes()
	data := make([][DataWords]float64, len(codes))
	for i, c := range codes {
		data[i] = constructPayload(c)
	}
	tr := Create(Config{NVBMDevice: nv})
	if _, err := tr.ConstructFromCodes(codes, data, parallel.New(4), false); err != nil {
		t.Fatal(err)
	}
	tr.Persist()
	want := constructDigest(tr)

	restored, err := Restore(Config{NVBMDevice: nv})
	if err != nil {
		t.Fatal(err)
	}
	if got := constructDigest(restored); got != want {
		t.Fatalf("restored digest %#x, want %#x", got, want)
	}
	if err := restored.Validate(); err != nil {
		t.Fatal(err)
	}
	restored.RefineWhere(sphere(0.5, 0.5, 0.5, 0.3, 0.02), 6)
	restored.Balance()
	restored.Persist()
	if err := restored.Validate(); err != nil {
		t.Fatal(err)
	}
}
