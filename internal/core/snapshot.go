package core

import (
	"fmt"
	"sync/atomic"

	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/pmem"
)

// MVCC snapshot pinning. A committed PM-octree version is immutable —
// commit is a single root-pointer store and COW never rewrites a committed
// octant — so a committed root can be handed to reader goroutines as a
// stable snapshot while the writer keeps refining, committing, collecting.
// The only thing that could pull the rug out is GC (which reclaims octants
// reachable solely from superseded versions) and Compact/Delete (which
// replace the arena wholesale). Pins close that gap: GC treats every
// pinned root as a retention root, and Compact refuses to run while pins
// are outstanding.
//
// Threading contract: PinCommitted/PinVersion/RetainedVersions run on the
// writer thread (they read writer-owned fields). VersionPin's Retain,
// Release, Refs and all its read methods are safe from any goroutine, and
// safe concurrently with the writer mutating the tree — reads go through
// per-call buffers straight to the pinned arena, never through the shared
// scratch, decoded cache, or access accounting.

// ErrPinned is returned (wrapped) by operations that would invalidate
// outstanding snapshot pins, such as Compact.
var ErrPinned = fmt.Errorf("core: committed versions are pinned")

// VersionPin holds one committed version alive for concurrent readers.
// It is reference counted: the creating call owns one reference, Retain
// adds one per additional holder, Release drops one. When the count hits
// zero the pin unregisters itself and the next GC pass may reclaim any
// octant reachable only from it.
type VersionPin struct {
	t    *Tree
	nv   *pmem.Arena  // the arena the version lives in, captured at pin time
	dev  *nvbm.Device // its device, for modeled read charging
	root Ref
	step uint64
	refs atomic.Int64
}

// ensurePins lazily initializes the writer-side pin registry.
func (t *Tree) ensurePins() {
	if t.pins == nil {
		t.pins = make(map[*VersionPin]struct{})
	}
}

// PinCommitted pins the currently committed version V(i-1) and returns the
// pin holding one reference. Writer thread only.
//
// Under the persist pipeline the newest DURABLE version is pinned, not
// the host's committed view: an enqueued version's octants are not all on
// the device yet, and pin readers bypass the pipeline's pending set by
// design (they read from any goroutine, with no claim on pipeline
// synchronization). Serving therefore always exposes crash-consistent
// state; Flush first to pin the newest version.
func (t *Tree) PinCommitted() *VersionPin {
	root, step := t.committed, t.committedStep
	if t.pipe != nil {
		root, step = t.pipe.durable()
	}
	if root.IsNil() || root.InDRAM() {
		panic("core: no committed NVBM version to pin")
	}
	return t.registerPin(root, step)
}

// PinVersion pins an arbitrary committed version, typically one of the
// fallback-ring versions enumerated by RetainedVersions, so a server can
// offer history older than the newest commit. The root must be a live
// NVBM octant; deep validation is the caller's business (RetainedVersions
// already performs it). Writer thread only.
func (t *Tree) PinVersion(root Ref, step uint64) (*VersionPin, error) {
	if root.IsNil() || root.InDRAM() || !t.nv.Live(root.Handle()) {
		return nil, fmt.Errorf("core: version step %d root %v is not a live NVBM octant", step, root)
	}
	return t.registerPin(root, step), nil
}

func (t *Tree) registerPin(root Ref, step uint64) *VersionPin {
	p := &VersionPin{t: t, nv: t.nv, dev: t.cfg.NVBMDevice, root: root, step: step}
	p.refs.Store(1)
	t.pinMu.Lock()
	t.ensurePins()
	t.pins[p] = struct{}{}
	t.pinMu.Unlock()
	return p
}

// markPinned marks the octants of every pinned version during GC so the
// collector never reclaims a version a snapshot still reads. marked is the
// GC pass's reusable bitset. Writer thread (GC) only; the registry lock
// orders it against reader Releases.
func (t *Tree) markPinned(marked []uint64) {
	t.pinMu.Lock()
	roots := make([]Ref, 0, len(t.pins))
	for p := range t.pins {
		if p.nv == t.nv { // pins on a retired arena (post-Compact) are dead weight
			roots = append(roots, p.root)
		}
	}
	t.pinMu.Unlock()
	for _, r := range roots {
		t.markGuarded(r, marked)
	}
}

// PinnedVersions returns the number of currently registered pins. Safe
// from any goroutine.
func (t *Tree) PinnedVersions() int {
	t.pinMu.Lock()
	defer t.pinMu.Unlock()
	return len(t.pins)
}

// VersionInfo identifies one restorable committed version.
type VersionInfo struct {
	Root Ref
	Step uint64
}

// RetainedVersions enumerates the fallback-ring versions that are still
// deeply intact (every reachable octant live, CRC-clean, well-formed),
// newest first, excluding the currently committed version. With
// Config.RetainVersions = k these are the k superseded versions GC keeps
// restorable; with retention off the ring usually points at reclaimed
// slots and the result is empty. Writer thread only (deep verification
// uses the shared scratch buffer).
func (t *Tree) RetainedVersions() []VersionInfo {
	// Ring entries are snapshotted under rootMu (the persist worker pushes
	// entries concurrently when pipelining); the deep verification below
	// runs outside the lock — it only reads durable, immutable versions.
	type entry struct {
		root Ref
		step uint64
	}
	var ring [histSlots]entry
	unlock := t.lockRootTable()
	for i := 0; i < histSlots; i++ {
		ring[i] = entry{Ref(t.nv.Root(histAddrSlot(i))), t.nv.Root(histStepSlot(i))}
	}
	unlock()
	var out []VersionInfo
	for _, e := range ring {
		root, step := e.root, e.step
		if root.IsNil() || root.InDRAM() || root == t.committed {
			continue
		}
		if t.candidateError(root, step, true) != nil {
			continue
		}
		out = append(out, VersionInfo{Root: root, Step: step})
	}
	// Ring order is (step mod histSlots); restore newest-first step order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Step > out[j-1].Step; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Retain adds a reference and returns p for chaining. Panics if the pin
// already dropped to zero — a released version may already be reclaimed.
func (p *VersionPin) Retain() *VersionPin {
	for {
		n := p.refs.Load()
		if n <= 0 {
			panic("core: Retain on a fully released VersionPin")
		}
		if p.refs.CompareAndSwap(n, n+1) {
			return p
		}
	}
}

// Release drops one reference. When the last reference goes, the pin
// unregisters itself; the version stays readable until the writer's next
// GC pass actually reclaims it, but callers must not rely on that.
func (p *VersionPin) Release() {
	n := p.refs.Add(-1)
	if n < 0 {
		panic("core: VersionPin released more often than retained")
	}
	if n == 0 {
		t := p.t
		t.pinMu.Lock()
		delete(t.pins, p)
		t.pinMu.Unlock()
	}
}

// Refs returns the current reference count.
func (p *VersionPin) Refs() int { return int(p.refs.Load()) }

// Root returns the pinned version's root ref.
func (p *VersionPin) Root() Ref { return p.root }

// Step returns the pinned version's step number.
func (p *VersionPin) Step() uint64 { return p.step }

// readInto performs a charged, read-only octant load from the pinned
// arena into a caller-provided buffer. The read-only guard: a pinned
// version is NVBM-closed by the region invariant, so any DRAM ref reached
// from it means the handle escaped into mutable working-version state.
func (p *VersionPin) readInto(r Ref, buf []byte, o *Octant) {
	if r.InDRAM() {
		panic(fmt.Sprintf("core: pinned version step %d reached DRAM ref %v; snapshots are read-only over NVBM", p.step, r))
	}
	p.nv.Read(r.Handle(), buf)
	o.decode(buf)
}

// ReadOctant loads one octant of the pinned version. Safe from any
// goroutine.
func (p *VersionPin) ReadOctant(r Ref) Octant {
	var buf [RecordSize]byte
	var o Octant
	p.readInto(r, buf[:], &o)
	return o
}

// ForEachNode visits every octant of the pinned version in Z-order
// pre-order. Return false from fn to stop early. Safe from any goroutine;
// the walk charges one device read per visited octant, exactly like the
// single-threaded committed walk.
func (p *VersionPin) ForEachNode(fn func(r Ref, o *Octant) bool) {
	var buf [RecordSize]byte
	p.walk(p.root, buf[:], fn)
}

func (p *VersionPin) walk(r Ref, buf []byte, fn func(Ref, *Octant) bool) bool {
	if r.IsNil() {
		return true
	}
	var o Octant
	p.readInto(r, buf, &o)
	if !fn(r, &o) {
		return false
	}
	for _, c := range o.Children {
		if !c.IsNil() && !p.walk(c, buf, fn) {
			return false
		}
	}
	return true
}

// FindLeaf descends to the deepest pinned-version octant containing code.
// Safe from any goroutine.
func (p *VersionPin) FindLeaf(code morton.Code) (Ref, Octant) {
	var buf [RecordSize]byte
	r := p.root
	var o Octant
	p.readInto(r, buf[:], &o)
	level := code.Level()
	for d := uint8(1); d <= level; d++ {
		next := o.Children[code.AncestorAt(d).ChildIndex()]
		if next.IsNil() {
			return r, o
		}
		r = next
		p.readInto(r, buf[:], &o)
	}
	return r, o
}

// ChargeReads accounts n modeled device reads of sz bytes each against the
// pinned device, for read paths that answer from host-side indexes built
// over the version (the serving layer's Morton leaf index) but semantically
// consult persistent octants.
func (p *VersionPin) ChargeReads(n, sz int) { p.dev.ChargeReadN(n, sz) }

// ChargeReadsModeled charges like ChargeReads and returns the modeled
// nanoseconds of device time the reads cost, so serving traces can
// attribute device-read time to the request that incurred it.
func (p *VersionPin) ChargeReadsModeled(n, sz int) uint64 {
	p.dev.ChargeReadN(n, sz)
	return p.dev.ModeledReadCost(n, sz)
}
