package core

// Decoded-octant cache (the host-side half of the octant fast path).
//
// readOct pays for every octant touch twice: once on the modeled device
// (the charged arena read — the cost the paper measures) and once on the
// host (the 88-byte field-by-field decode). The decode is pure overhead
// of the reproduction, not of the modeled hardware, so Tree keeps a small
// direct-mapped cache of decoded octants keyed by Ref. A hit skips the
// decode; in the default configuration it still performs the charged
// device read, so the modeled access statistics — and therefore the
// Fig 3/5/10 reproductions and the droplet golden step files — are
// bit-identical with the cache on. Only Config.CacheCommittedReads
// additionally skips device traffic, and only for committed-version NVBM
// octants, which are immutable by construction (§3.2's multi-version
// copy-on-write makes V(i-1) read-only).
//
// Coherence: writeOct/writeChildren/writeDataField write through (they
// hold the full record), writeParentField/writeFlagsField patch the
// cached line in place, frees drop the line, and whole-arena events
// (GC sweep, Persist, Compact, Delete) bump the cache epoch, which
// invalidates every line at once without touching the array.

// cacheBits sizes the direct-mapped decoded-octant cache: 2^cacheBits
// lines of one Octant each (~112 B/line, so the default is ~230 KiB of
// volatile host memory — far below the modeled C0 budget it shadows).
const cacheBits = 11

const cacheSlots = 1 << cacheBits

// cacheLine is one direct-mapped slot: a decoded octant, the ref it was
// decoded from, and the epoch it was filled in.
type cacheLine struct {
	ref   Ref
	epoch uint64
	oct   Octant
}

// FastPathStats counts decoded-cache and leaf-index activity. They are
// host-side observability counters, independent of the modeled devices.
type FastPathStats struct {
	CacheHits           uint64 // readOct served from a decoded line
	CacheMisses         uint64 // readOct decoded from the device
	CacheInvalidations  uint64 // whole-cache epoch bumps
	CacheSkippedReads   uint64 // device reads elided (CacheCommittedReads)
	LeafIndexRebuilds   uint64 // LeafSnapshot walks
	LeafIndexReuses     uint64 // LeafSnapshot served without a walk
	IndexedLeafUpdates  uint64 // UpdateLeavesIndexed sweeps
	IndexedInPlaceSkips uint64 // sweeps that kept the snapshot valid
	TileRebuilds        uint64 // LeafTiles gathers (snapshot -> SoA transpose)
	TileReuses          uint64 // LeafTiles served without a gather
	TileRebuildNs       uint64 // wall time spent gathering
	TileGatherBytes     uint64 // field bytes transposed into the store
	TileScatters        uint64 // ScatterLeafTiles calls
	TileScatterBytes    uint64 // field bytes written back to the tree
}

// FastPath returns the fast-path counters.
func (t *Tree) FastPath() FastPathStats { return t.fp }

// cacheSlotOf maps a ref to its direct-mapped line index. The multiplier
// is the 32-bit golden-ratio hash, spreading consecutive handles (and the
// DRAM bit) across the table.
func cacheSlotOf(r Ref) uint32 {
	return (uint32(r) * 0x9E3779B1) >> (32 - cacheBits)
}

// cacheLineOf returns the valid line holding r, or nil.
func (t *Tree) cacheLineOf(r Ref) *cacheLine {
	if t.cache == nil {
		return nil
	}
	line := &t.cache[cacheSlotOf(r)]
	if line.ref == r && line.epoch == t.cacheEpoch {
		return line
	}
	return nil
}

// cachePut stores a decoded octant for r, evicting whatever shared its
// line. The cache array is allocated on first use so every Tree
// construction path (Create, RestoreWithReport's literal) gets one.
func (t *Tree) cachePut(r Ref, o *Octant) {
	if t.cache == nil {
		t.cache = make([]cacheLine, cacheSlots)
		if t.cacheEpoch == 0 {
			t.cacheEpoch = 1 // zeroed lines must never look valid
		}
	}
	line := &t.cache[cacheSlotOf(r)]
	line.ref = r
	line.epoch = t.cacheEpoch
	line.oct = *o
}

// cacheDrop invalidates the line holding r, if any. Called when a slot is
// freed individually (DRAM frees are eager) so a recycled handle can never
// serve a stale decode.
func (t *Tree) cacheDrop(r Ref) {
	if line := t.cacheLineOf(r); line != nil {
		line.ref = NilRef
	}
}

// cacheInvalidateAll drops every line by bumping the epoch — the
// whole-arena invalidation used after GC sweeps (freed NVBM handles are
// recycled by later allocations), Persist, Compact and Delete.
func (t *Tree) cacheInvalidateAll() {
	t.cacheEpoch++
	t.fp.CacheInvalidations++
}
