package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"testing"
	"time"

	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
)

// commitDigest hashes the committed version's logical content — octant
// codes and data in Z-order — through the pending-aware committed walk.
// The digest is layout-independent (no handles, no device addresses), so
// synchronous and pipelined runs of the same workload must agree exactly,
// whatever the writeback timing.
func commitDigest(tr *Tree) uint64 { return contentDigest(tr, tr.committed) }

// workingDigest hashes the working version. Relocation during Persist
// never changes codes or data, so the working digest taken just before
// Persist equals the committed digest the enqueued version will carry —
// which lets crash tests record a version's digest even when the power
// cut lands inside Persist itself, after the enqueue.
func workingDigest(tr *Tree) uint64 { return contentDigest(tr, tr.cur) }

func contentDigest(tr *Tree, root Ref) uint64 {
	h := fnv.New64a()
	var b [8]byte
	tr.walkRO(root, func(_ Ref, o *Octant) bool {
		binary.LittleEndian.PutUint64(b[:], uint64(o.Code))
		h.Write(b[:])
		for _, d := range o.Data {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(d))
			h.Write(b[:])
		}
		return true
	})
	return h.Sum64()
}

// pipelineScript is one deterministic simulation step: refinement driving
// COW and merges, a data sweep, periodic coarsening, and balancing.
func pipelineScript(tr *Tree, step int) {
	f := float64(step)
	tr.RefineWhere(sphere(0.3+0.04*f, 0.4, 0.5, 0.25, 0.2), 4)
	tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
		d[0] = f
		return true
	})
	if step%3 == 0 {
		tr.CoarsenWhere(sphere(0.8, 0.8, 0.8, 0.15, 0.1))
	}
	tr.Balance()
}

func pipelineConfig(nv *nvbm.Device, depth, group int) Config {
	return Config{
		NVBMDevice:        nv,
		DRAMDevice:        nvbm.New(nvbm.DRAM, 0),
		DRAMBudgetOctants: 48,
		Seed:              7,
		PipelineDepth:     depth,
		GroupCommit:       group,
	}
}

// runPipelineHistory runs the scripted workload and returns the digest of
// every committed version, index 0 being the initial (empty) commit.
func runPipelineHistory(tr *Tree, steps int) []uint64 {
	tr.SetFeatures(func(c morton.Code, _ [DataWords]float64) bool {
		x, _, _ := c.Center()
		return x > 0.5
	})
	history := []uint64{commitDigest(tr)}
	for s := 1; s <= steps; s++ {
		pipelineScript(tr, s)
		tr.Persist()
		history = append(history, commitDigest(tr))
	}
	return history
}

// TestPipelineConfigValidate pins the backpressure arithmetic: the
// in-flight window may not outrun the fallback ring headroom left after
// version retention.
func TestPipelineConfigValidate(t *testing.T) {
	cases := []struct {
		depth, retain int
		ok            bool
	}{
		{0, 0, true},
		{0, MaxRetainVersions, true},
		{MaxRetainVersions, 0, true},
		{MaxRetainVersions + 1, 0, false},
		{2, 1, true},
		{3, 1, false},
		{1, MaxRetainVersions, false},
	}
	for _, c := range cases {
		err := Config{PipelineDepth: c.depth, RetainVersions: c.retain}.Validate()
		if c.ok && err != nil {
			t.Errorf("depth %d retain %d: unexpected %v", c.depth, c.retain, err)
		}
		if !c.ok {
			var pe *PipelineDepthError
			if !errors.As(err, &pe) {
				t.Errorf("depth %d retain %d: want PipelineDepthError, got %v", c.depth, c.retain, err)
			}
		}
	}
}

// TestPipelineSyncBitIdentical pins the synchronous mode: with
// PipelineDepth 0 no pipeline exists (Pipelined is false, Flush/Close are
// no-ops) and two identical runs produce bit-identical digest histories
// AND bit-identical device statistics — the depth-0 tree IS today's
// Persist, not a pipelined tree with an empty queue.
func TestPipelineSyncBitIdentical(t *testing.T) {
	run := func() ([]uint64, nvbm.Stats) {
		nv := nvbm.New(nvbm.NVBM, 0)
		tr := Create(pipelineConfig(nv, 0, 0))
		if tr.Pipelined() {
			t.Fatal("PipelineDepth 0 started a pipeline")
		}
		h := runPipelineHistory(tr, 10)
		tr.Flush() // must be a no-op
		tr.Close()
		return h, nv.Stats()
	}
	h1, s1 := run()
	h2, s2 := run()
	if fmt.Sprint(h1) != fmt.Sprint(h2) {
		t.Fatalf("synchronous digest history not reproducible:\n%v\n%v", h1, h2)
	}
	if s1 != s2 {
		t.Fatalf("synchronous device stats not reproducible:\n%+v\n%+v", s1, s2)
	}
}

// TestPipelineAsyncDigestHistoryEqualsSync is the core determinism claim:
// for every pipeline depth and group-commit width, the committed-version
// digest history is IDENTICAL to the synchronous run's — the pipeline
// changes when bytes reach the device, never what the versions contain.
// After a final Flush the device restores to exactly the last version.
func TestPipelineAsyncDigestHistoryEqualsSync(t *testing.T) {
	const steps = 12
	syncHist := func() []uint64 {
		tr := Create(pipelineConfig(nvbm.New(nvbm.NVBM, 0), 0, 0))
		return runPipelineHistory(tr, steps)
	}()
	for _, cfg := range []struct{ depth, group int }{
		{1, 1}, {2, 1}, {3, 1}, {2, 2}, {3, 2}, {3, 3},
	} {
		t.Run(fmt.Sprintf("depth=%d group=%d", cfg.depth, cfg.group), func(t *testing.T) {
			nv := nvbm.New(nvbm.NVBM, 0)
			tr := Create(pipelineConfig(nv, cfg.depth, cfg.group))
			if !tr.Pipelined() {
				t.Fatal("pipeline did not start")
			}
			hist := runPipelineHistory(tr, steps)
			if fmt.Sprint(hist) != fmt.Sprint(syncHist) {
				t.Fatalf("pipelined digest history diverged from synchronous:\nsync:  %v\nasync: %v", syncHist, hist)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("pipelined tree invalid: %v", err)
			}
			st := tr.PipelineStats()
			if st.Enqueued != steps {
				t.Fatalf("enqueued %d versions, stepped %d", st.Enqueued, steps)
			}
			tr.Flush()
			if tr.DurableStep() != tr.CommittedStep() {
				t.Fatalf("after Flush durable step %d != committed step %d", tr.DurableStep(), tr.CommittedStep())
			}
			tr.Close()
			restored, err := Restore(Config{NVBMDevice: nv})
			if err != nil {
				t.Fatalf("restore after flush: %v", err)
			}
			if got := commitDigest(restored); got != hist[len(hist)-1] {
				t.Fatalf("restored digest %016x != last committed %016x", got, hist[len(hist)-1])
			}
		})
	}
}

// TestPipelineFlushBarrier pins the durability semantics: while the
// persist worker is held up, commits are visible to the mutator but NOT
// durable (the on-device commit record still names the old version); the
// Flush barrier makes them durable.
func TestPipelineFlushBarrier(t *testing.T) {
	nv := nvbm.New(nvbm.NVBM, 0)
	tr := Create(pipelineConfig(nv, 3, 1))
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	tr.SetPersistHook(func(stage string) {
		if stage == "writeback" {
			entered <- struct{}{}
			<-block
		}
	})
	tr.SetFeatures(func(c morton.Code, _ [DataWords]float64) bool { return true })
	for s := 1; s <= 2; s++ {
		pipelineScript(tr, s)
		tr.Persist()
	}
	<-entered // the worker is parked inside the first batch's writeback
	if cs := tr.CommittedStep(); cs != 2 {
		t.Fatalf("host committed step %d, want 2", cs)
	}
	if ds := tr.DurableStep(); ds != 0 {
		t.Fatalf("durable step %d with the worker blocked, want 0", ds)
	}
	if rec := tr.nv.Root(rootSlotStep); rec != 0 {
		t.Fatalf("commit record names step %d with the worker blocked, want 0", rec)
	}
	close(block)
	tr.Flush()
	if ds := tr.DurableStep(); ds != 2 {
		t.Fatalf("durable step %d after Flush, want 2", ds)
	}
	if rec := tr.nv.Root(rootSlotStep); rec != 2 {
		t.Fatalf("commit record names step %d after Flush, want 2", rec)
	}
	if root := Ref(tr.nv.Root(rootSlotAddr)); root != tr.CommittedRoot() {
		t.Fatalf("commit record root %v != committed root %v", root, tr.CommittedRoot())
	}
	tr.Close()
}

// TestPipelineBackpressure pins the stall rule: with the window full (one
// in-flight version at depth 1), the next Persist blocks until the worker
// drains, and the stall is counted.
func TestPipelineBackpressure(t *testing.T) {
	tr := Create(pipelineConfig(nvbm.New(nvbm.NVBM, 0), 1, 1))
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	tr.SetPersistHook(func(stage string) {
		if stage == "writeback" {
			entered <- struct{}{}
			<-block
		}
	})
	tr.SetFeatures(func(c morton.Code, _ [DataWords]float64) bool { return true })
	pipelineScript(tr, 1)
	tr.Persist()
	<-entered // window is now full: one version in flight, worker parked

	done := make(chan struct{})
	go func() {
		pipelineScript(tr, 2)
		tr.Persist()
		close(done)
	}()
	// Wait for the stall to register (counted before the enqueue parks);
	// Persist must still be blocked at that point.
	deadline := time.After(10 * time.Second)
	for tr.PipelineStats().Stalls == 0 {
		select {
		case <-done:
			t.Fatal("Persist completed without stalling on a full window")
		case <-deadline:
			t.Fatal("Persist never stalled on a full pipeline window")
		case <-time.After(time.Millisecond):
		}
	}
	select {
	case <-done:
		t.Fatal("Persist returned while the worker was still parked")
	default:
	}
	close(block)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Persist still blocked after the worker drained")
	}
	tr.Flush()
	tr.Close()
}

// TestPipelineGroupCommit forces a deterministic group: the first version
// commits alone (the worker grabs it immediately), the next two coalesce
// into one durable commit while the worker is parked. Exactly two commit
// flips for three versions.
func TestPipelineGroupCommit(t *testing.T) {
	nv := nvbm.New(nvbm.NVBM, 0)
	tr := Create(pipelineConfig(nv, 3, 3))
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	first := true
	var commits int
	tr.SetPersistHook(func(stage string) {
		switch stage {
		case "writeback":
			if first {
				first = false
				entered <- struct{}{}
				<-release
			}
		case "commit":
			commits++
		}
	})
	tr.SetFeatures(func(c morton.Code, _ [DataWords]float64) bool { return true })
	pipelineScript(tr, 1)
	tr.Persist()
	<-entered // batch {1} fixed; queue its slot + room for two more
	pipelineScript(tr, 2)
	tr.Persist()
	pipelineScript(tr, 3)
	tr.Persist()
	close(release)
	tr.Flush()

	st := tr.PipelineStats()
	if st.Enqueued != 3 || st.Committed != 2 || st.Coalesced != 1 {
		t.Fatalf("group commit stats: %+v, want enqueued 3 committed 2 coalesced 1", st)
	}
	if commits != 2 {
		t.Fatalf("%d commit flips for 3 versions under group commit, want 2", commits)
	}
	if ds := tr.DurableStep(); ds != 3 {
		t.Fatalf("durable step %d, want 3", ds)
	}
	tr.Close()
	// The record on the device names the group's newest version.
	restored, err := Restore(Config{NVBMDevice: nv})
	if err != nil {
		t.Fatal(err)
	}
	if restored.CommittedStep() != 3 {
		t.Fatalf("restored step %d, want 3", restored.CommittedStep())
	}
}

// TestPipelineCrashAtStages cuts power at every pipeline stage — before
// any writeback write, mid-writeback (including mid-group batches), after
// the ring push with the commit record not yet flipped, and after the
// flip — and verifies recovery always lands on some enqueued version's
// digest. The cut budget is consumed by whichever thread writes next, so
// the crash may hit the worker mid-batch or the mutator mid-step: both
// are legitimate power-failure shapes and both must recover.
func TestPipelineCrashAtStages(t *testing.T) {
	stages := []struct {
		name   string
		stage  string
		budget int
		group  int
	}{
		{"before-writeback", "writeback", 0, 1},
		{"mid-writeback", "writeback", 3, 1},
		{"mid-group-writeback", "writeback", 7, 3},
		{"ring-pushed-record-not-flipped", "ring", 0, 1},
		{"ring-pushed-record-not-flipped-grouped", "ring", 0, 3},
		{"after-commit-flip", "commit", 0, 1},
	}
	for _, sc := range stages {
		t.Run(sc.name, func(t *testing.T) {
			nv := nvbm.New(nvbm.NVBM, 0)
			tr := Create(pipelineConfig(nv, 3, sc.group))
			armed := false
			tr.SetPersistHook(func(stage string) {
				if stage == sc.stage && !armed {
					armed = true
					nv.CutPowerAfter(sc.budget)
				}
			})
			tr.SetFeatures(func(c morton.Code, _ [DataWords]float64) bool { return true })

			history := map[uint64]bool{commitDigest(tr): true}
			crashed := false
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatal("the armed cut never fired")
					}
					if r != nvbm.ErrPowerLost {
						panic(r)
					}
					crashed = true
				}()
				for s := 1; s <= 40; s++ {
					pipelineScript(tr, s)
					// The digest of every ENQUEUED version is a legitimate
					// recovery target: it becomes durable if its (group's)
					// record flips before the cut. Record it BEFORE Persist —
					// the cut can land inside Persist after the enqueue (GC
					// and promotion write the device too), and the enqueued
					// version may still commit.
					history[workingDigest(tr)] = true
					tr.Persist()
				}
				tr.Flush()
			}()
			if !crashed {
				t.Fatal("unreachable")
			}
			tr.AbortPipeline()
			nv.RestorePower()

			restored, err := Restore(Config{NVBMDevice: nv})
			if err != nil {
				t.Fatalf("restore after %s crash: %v", sc.name, err)
			}
			if err := restored.Validate(); err != nil {
				t.Fatalf("restored tree invalid: %v", err)
			}
			if got := commitDigest(restored); !history[got] {
				t.Fatalf("recovery landed on digest %016x, which no enqueued version published", got)
			}
			// The restored tree is fully usable, pipeline included.
			restored2, err := Restore(pipelineConfig(nv, 2, 2))
			if err != nil {
				t.Fatal(err)
			}
			if !restored2.Pipelined() {
				t.Fatal("restore did not start the configured pipeline")
			}
			pipelineScript(restored2, 1)
			restored2.Persist()
			restored2.Flush()
			if err := restored2.Validate(); err != nil {
				t.Fatalf("post-recovery pipelined persist invalid: %v", err)
			}
			restored2.Close()
		})
	}
}

// TestPipelineWorkerFailureSurfacesOnMutator pins the failure contract: a
// power cut that kills only the background worker re-raises ErrPowerLost
// on the mutator's next Persist or Flush — the mutator can never sail on
// believing its versions are reaching the device.
func TestPipelineWorkerFailureSurfacesOnMutator(t *testing.T) {
	nv := nvbm.New(nvbm.NVBM, 0)
	tr := Create(pipelineConfig(nv, 3, 1))
	failed := make(chan struct{})
	tr.SetPersistHook(func(stage string) {
		if stage == "writeback" {
			nv.CutPowerAfter(0)
			close(failed)
		}
	})
	tr.SetFeatures(func(c morton.Code, _ [DataWords]float64) bool { return true })

	caught := func() (r any) {
		defer func() { r = recover() }()
		for s := 1; s <= 20; s++ {
			pipelineScript(tr, s)
			tr.Persist()
		}
		tr.Flush()
		return nil
	}()
	if caught != nvbm.ErrPowerLost {
		t.Fatalf("mutator saw %v, want ErrPowerLost re-raised from the worker", caught)
	}
	<-failed
	tr.AbortPipeline()
	if tr.Pipelined() {
		t.Fatal("AbortPipeline left the pipeline attached")
	}
}

// TestEvictSubtreeClearsAccess pins the satellite fix: eviction retires
// the victim's access count along with its hot-set membership, so a stale
// pre-eviction count can never skew a later LFA ranking, and dead (non-
// hot) entries never participate in eviction ordering.
func TestEvictSubtreeClearsAccess(t *testing.T) {
	tr := Create(Config{NVBMDevice: nvbm.New(nvbm.NVBM, 0), DRAMBudgetOctants: 256, Seed: 3})
	tr.SetFeatures(func(c morton.Code, _ [DataWords]float64) bool { return true })
	tr.RefineWhere(func(c morton.Code) bool { return c.Level() < 2 }, 2)
	tr.Persist()
	if len(tr.hot) == 0 {
		t.Fatal("retarget selected no hot subtrees")
	}

	// Give the victim an absurd pre-eviction count; after eviction the
	// entry must not retain it (the relocation walk re-creates it with
	// only its own touches, which is the correct post-eviction signal).
	victim, ok := tr.leastAccessedHot()
	if !ok {
		t.Fatal("no hot subtree to evict")
	}
	const stale = 1 << 40
	tr.access[victim] = stale
	tr.evictSubtree(victim)
	if tr.hot[victim] {
		t.Fatal("eviction left the victim in the hot set")
	}
	if n := tr.access[victim]; n >= stale {
		t.Fatalf("eviction left the stale access count %d in place", n)
	}

	// Eviction ordering ignores dead entries: a huge count on a code that
	// is NOT hot must not displace the true least-accessed hot subtree.
	var want morton.Code
	wantN := ^uint64(0)
	for c := range tr.hot {
		if n := tr.access[c]; n < wantN || (n == wantN && c.Less(want)) {
			want, wantN = c, n
		}
	}
	tr.access[victim] = 1 // dead entry: victim is no longer hot
	got, ok := tr.leastAccessedHot()
	if !ok || got != want {
		t.Fatalf("leastAccessedHot returned %v, want %v (dead entries must not participate)", got, want)
	}
}
