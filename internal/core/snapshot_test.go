package core

import (
	"errors"
	"testing"

	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
)

// pinLeafSet collects the pinned version's leaves through the pin's own
// read-only walk.
func pinLeafSet(p *VersionPin) map[morton.Code][DataWords]float64 {
	set := map[morton.Code][DataWords]float64{}
	p.ForEachNode(func(r Ref, o *Octant) bool {
		if o.IsLeaf() {
			set[o.Code] = o.Data
		}
		return true
	})
	return set
}

// TestRetainDepthTypedError pins the satellite fix: asking for more
// retained versions than the fallback ring holds is a typed error, not a
// silent clamp.
func TestRetainDepthTypedError(t *testing.T) {
	bad := Config{RetainVersions: MaxRetainVersions + 1}
	var rde *RetainDepthError
	if err := bad.Validate(); !errors.As(err, &rde) {
		t.Fatalf("Validate = %v, want *RetainDepthError", err)
	} else if rde.Requested != MaxRetainVersions+1 || rde.Limit != MaxRetainVersions {
		t.Fatalf("RetainDepthError = %+v, want requested %d limit %d", rde, MaxRetainVersions+1, MaxRetainVersions)
	}
	if err := (Config{RetainVersions: MaxRetainVersions}).Validate(); err != nil {
		t.Fatalf("Validate at the limit = %v, want nil", err)
	}

	// Create panics with the same typed error.
	func() {
		defer func() {
			r := recover()
			err, ok := r.(error)
			if !ok || !errors.As(err, &rde) {
				t.Fatalf("Create panic = %v, want *RetainDepthError", r)
			}
		}()
		bad.NVBMDevice = nvbm.New(nvbm.NVBM, 0)
		bad.DRAMDevice = nvbm.New(nvbm.DRAM, 0)
		Create(bad)
	}()

	// Restore returns it.
	dev := nvbm.New(nvbm.NVBM, 0)
	Create(Config{NVBMDevice: dev, DRAMDevice: nvbm.New(nvbm.DRAM, 0)}).Persist()
	_, _, err := RestoreWithReport(Config{
		NVBMDevice:     dev,
		DRAMDevice:     nvbm.New(nvbm.DRAM, 0),
		RetainVersions: MaxRetainVersions + 2,
	})
	if !errors.As(err, &rde) {
		t.Fatalf("RestoreWithReport = %v, want *RetainDepthError", err)
	}
}

// TestPinSurvivesGC pins the MVCC contract: a pinned committed version
// stays fully readable — bit-identical leaves — across churny commits and
// GC passes that would otherwise reclaim it, and is reclaimed only after
// its last reference is released.
func TestPinSurvivesGC(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	tr := Create(Config{NVBMDevice: dev, DRAMDevice: nvbm.New(nvbm.DRAM, 0)})
	tr.RefineWhere(sphere(0.4, 0.4, 0.4, 0.25, 0.15), 3)
	tr.Persist()
	want := leafSet(tr, tr.CommittedRoot())
	pin := tr.PinCommitted()
	second := pin.Retain()
	oldRoot := pin.Root()

	// Churn: replace essentially the whole tree across two commits, each
	// running GC. Without the pin the old version's octants are reclaimed
	// (that is exactly what TestRetainVersionsKeepsRingRestorable shows
	// for RetainVersions=0).
	tr.CoarsenWhere(func(c morton.Code) bool { return true })
	tr.RefineWhere(sphere(0.7, 0.7, 0.7, 0.2, 0.1), 3)
	tr.Persist()
	tr.RefineWhere(sphere(0.2, 0.8, 0.5, 0.2, 0.1), 4)
	tr.Persist()

	if !tr.nv.Live(oldRoot.Handle()) {
		t.Fatal("pinned version's root was reclaimed by GC")
	}
	got := pinLeafSet(pin)
	sameLeaves(t, got, want, "pinned snapshot after churn")
	if r, o := pin.FindLeaf(morton.Root); r != oldRoot || o.Code != morton.Root {
		t.Fatalf("FindLeaf(root) = %v %v, want pin root", r, o.Code)
	}

	// One release keeps it pinned; the last one frees it for the next GC.
	second.Release()
	if tr.PinnedVersions() != 1 || pin.Refs() != 1 {
		t.Fatalf("after one release: pins %d refs %d, want 1 1", tr.PinnedVersions(), pin.Refs())
	}
	tr.GC()
	if !tr.nv.Live(oldRoot.Handle()) {
		t.Fatal("version reclaimed while a reference remained")
	}
	pin.Release()
	if tr.PinnedVersions() != 0 {
		t.Fatalf("pins = %d after final release, want 0", tr.PinnedVersions())
	}
	tr.GC()
	if tr.nv.Live(oldRoot.Handle()) {
		t.Fatal("released version survived GC; retention leak")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactRefusesWhilePinned: compaction swaps the arena out from under
// every snapshot, so it must refuse with ErrPinned until the last pin
// closes.
func TestCompactRefusesWhilePinned(t *testing.T) {
	tr := Create(Config{})
	tr.RefineWhere(sphere(0.5, 0.5, 0.5, 0.3, 0.2), 3)
	tr.Persist()
	pin := tr.PinCommitted()
	if _, err := tr.Compact(); !errors.Is(err, ErrPinned) {
		t.Fatalf("Compact with a pin = %v, want ErrPinned", err)
	}
	pin.Release()
	if _, err := tr.Compact(); err != nil {
		t.Fatalf("Compact after release = %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRetainedVersionsAndPinVersion: with retention on, the fallback ring
// versions are enumerable newest-first and individually pinnable, giving a
// server genuine history to serve.
func TestRetainedVersionsAndPinVersion(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	tr := Create(Config{
		NVBMDevice:     dev,
		DRAMDevice:     nvbm.New(nvbm.DRAM, 0),
		RetainVersions: 2,
	})
	tr.RefineWhere(sphere(0.4, 0.4, 0.4, 0.25, 0.15), 3)
	tr.Persist()
	wantOld := leafSet(tr, tr.CommittedRoot())
	oldStep := tr.CommittedStep()

	tr.RefineWhere(sphere(0.6, 0.6, 0.6, 0.25, 0.15), 3)
	tr.Persist()
	tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
		d[0] = 3
		return true
	})
	tr.Persist()

	vs := tr.RetainedVersions()
	if len(vs) != 2 {
		t.Fatalf("RetainedVersions = %v, want 2 entries", vs)
	}
	if vs[0].Step <= vs[1].Step {
		t.Fatalf("RetainedVersions not newest-first: %v", vs)
	}
	if vs[1].Step != oldStep {
		t.Fatalf("oldest retained step = %d, want %d", vs[1].Step, oldStep)
	}
	pin, err := tr.PinVersion(vs[1].Root, vs[1].Step)
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Release()
	sameLeaves(t, pinLeafSet(pin), wantOld, "pinned ring version")

	if _, err := tr.PinVersion(NilRef, 99); err == nil {
		t.Fatal("PinVersion accepted a nil root")
	}
}
