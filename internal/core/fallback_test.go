package core

import (
	"encoding/binary"
	"strings"
	"testing"

	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/pmem"
)

// fallbackConfig builds the restore config the chaos harness uses: deep
// verification on and two retained fallback versions.
func fallbackConfig(dev *nvbm.Device) Config {
	return Config{
		NVBMDevice:     dev,
		DRAMDevice:     nvbm.New(nvbm.DRAM, 0),
		RetainVersions: 2,
		VerifyRestore:  true,
	}
}

// buildTwoVersions commits two distinct versions and returns the device,
// the tree, and the leaf sets and steps of both.
func buildTwoVersions(t *testing.T, dev *nvbm.Device) (tr *Tree, v1, v2 map[morton.Code][DataWords]float64, step1, step2 uint64) {
	t.Helper()
	tr = Create(fallbackConfig(dev))
	tr.RefineWhere(sphere(0.4, 0.4, 0.4, 0.25, 0.15), 3)
	tr.Persist()
	step1 = tr.CommittedStep()
	v1 = leafSet(tr, tr.CommittedRoot())

	tr.RefineWhere(sphere(0.6, 0.6, 0.6, 0.25, 0.15), 3)
	tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
		d[0] = 7
		return true
	})
	tr.Persist()
	step2 = tr.CommittedStep()
	v2 = leafSet(tr, tr.CommittedRoot())
	if step2 != step1+1 {
		t.Fatalf("steps = %d, %d; want consecutive", step1, step2)
	}
	return tr, v1, v2, step1, step2
}

func sameLeaves(t *testing.T, got, want map[morton.Code][DataWords]float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d leaves, want %d", label, len(got), len(want))
	}
	for c, d := range want {
		if got[c] != d {
			t.Fatalf("%s: leaf %v = %v, want %v", label, c, got[c], d)
		}
	}
}

// TestRestoreCleanDeviceNoFallback pins the common case: with nothing
// damaged, RestoreWithReport picks the newest version with zero
// fallbacks, and Restore still behaves like the legacy path.
func TestRestoreCleanDeviceNoFallback(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	_, _, v2, _, step2 := buildTwoVersions(t, dev)

	re, rep, err := RestoreWithReport(fallbackConfig(dev))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fallbacks != 0 || rep.ChosenStep != step2 || !rep.Verified {
		t.Errorf("report = %+v, want fallbacks 0, chosen %d, verified", rep, step2)
	}
	if rep.Candidates != 1 {
		t.Errorf("candidates examined = %d, want 1 (newest accepted first)", rep.Candidates)
	}
	sameLeaves(t, leafSet(re, re.CommittedRoot()), v2, "restored")
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFallbackAfterStructuralDamage smashes the code field of the newest
// committed version's root octant (a torn or misdirected store that a CRC
// cannot catch, since the write itself was "legitimate") and requires
// restore to fall back to the older intact version and repair the commit
// record to match.
func TestFallbackAfterStructuralDamage(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	tr, v1, _, step1, _ := buildTwoVersions(t, dev)

	off, _ := tr.nv.SlotRange(tr.CommittedRoot().Handle())
	var garbage [8]byte
	binary.LittleEndian.PutUint64(garbage[:], uint64(morton.Root)^0xFFFF0000)
	dev.WriteAt(off+offCode, garbage[:])

	re, rep, err := RestoreWithReport(fallbackConfig(dev))
	if err != nil {
		t.Fatalf("fallback restore failed: %v", err)
	}
	if rep.Fallbacks != 1 || rep.ChosenStep != step1 {
		t.Fatalf("report = %+v, want 1 fallback to step %d", rep, step1)
	}
	if len(rep.Rejected) != 1 || !strings.Contains(rep.Rejected[0], "code") {
		t.Errorf("rejection reasons = %v, want one code mismatch", rep.Rejected)
	}
	sameLeaves(t, leafSet(re, re.CommittedRoot()), v1, "fallback")
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	// The commit record was repaired: a second restart finds the fallback
	// version as its primary candidate.
	if step, err := CommittedStepOf(dev); err != nil || step != step1 {
		t.Fatalf("commit record = step %d (err %v), want repaired to %d", step, err, step1)
	}
	// The revived tree keeps simulating: its working version number is
	// above every version tag in the arena, so new commits are ordered.
	re.RefineWhere(func(morton.Code) bool { return true }, 1)
	re.Persist()
	if err := re.Validate(); err != nil {
		t.Fatalf("persist after fallback: %v", err)
	}
}

// TestFallbackAfterMediaCorruption rots a bit in an octant reachable only
// from the newest version (media tracking on) and requires the deep
// verify to reject it via CRC and fall back.
func TestFallbackAfterMediaCorruption(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	dev.EnableMediaTracking()
	tr, v1, _, step1, _ := buildTwoVersions(t, dev)

	// Pick a V2-only octant whose cache lines are disjoint from every
	// line V1's octants touch (slots are smaller than lines, so adjacent
	// slots can share a line; collateral damage would reject V1 too).
	v1Marks := markedHandles(tr, Ref(tr.nv.Root(histAddrSlot(int(step1%histSlots)))))
	v1Lines := map[int]bool{}
	for h := range v1Marks {
		off, n := tr.nv.SlotRange(h)
		for line := off / nvbm.LineSize; line <= (off+n-1)/nvbm.LineSize; line++ {
			v1Lines[line] = true
		}
	}
	metaEnd := (tr.nv.DataOffset() - 1) / nvbm.LineSize
	v2Marks := markedHandles(tr, tr.CommittedRoot())
	target, found := pmem.Nil, false
	for h := range v2Marks {
		if v1Marks[h] {
			continue
		}
		off, n := tr.nv.SlotRange(h)
		ok := true
		for line := off / nvbm.LineSize; line <= (off+n-1)/nvbm.LineSize; line++ {
			if v1Lines[line] || line <= metaEnd {
				ok = false
				break
			}
		}
		if ok {
			target, found = h, true
			break
		}
	}
	if !found {
		t.Fatal("no V2-only octant on V1-free lines; enlarge the workload")
	}
	off, _ := tr.nv.SlotRange(target)
	dev.FlipBit(off+3, 5)

	re, rep, err := RestoreWithReport(fallbackConfig(dev))
	if err != nil {
		t.Fatalf("fallback restore failed: %v", err)
	}
	if rep.Fallbacks != 1 || rep.ChosenStep != step1 {
		t.Fatalf("report = %+v, want 1 fallback to step %d", rep, step1)
	}
	if len(rep.Rejected) != 1 || !strings.Contains(rep.Rejected[0], "CRC") {
		t.Errorf("rejection reasons = %v, want one media CRC failure", rep.Rejected)
	}
	sameLeaves(t, leafSet(re, re.CommittedRoot()), v1, "fallback")
}

// TestRestoreFailsWhenMetadataCorrupt rots the arena metadata region
// (allocation bitmap): no candidate can be trusted, and restore must
// error with every rejection reason rather than hand back a tree.
func TestRestoreFailsWhenMetadataCorrupt(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	dev.EnableMediaTracking()
	buildTwoVersions(t, dev)

	dev.FlipBit(100_000, 2) // inside the allocation bitmap
	_, rep, err := RestoreWithReport(fallbackConfig(dev))
	if err == nil {
		t.Fatal("restore accepted a device with corrupt arena metadata")
	}
	if rep.Candidates < 2 {
		t.Errorf("examined %d candidates, want the whole chain", rep.Candidates)
	}
	if !strings.Contains(err.Error(), "metadata") {
		t.Errorf("error %q does not mention metadata", err)
	}
}

// TestRetainVersionsKeepsRingRestorable pins the GC contract: with
// RetainVersions set, superseded ring versions stay live (restorable);
// with the default 0, GC reclaims them.
func TestRetainVersionsKeepsRingRestorable(t *testing.T) {
	run := func(retain int) (oldRootLive bool) {
		dev := nvbm.New(nvbm.NVBM, 0)
		cfg := fallbackConfig(dev)
		cfg.RetainVersions = retain
		tr := Create(cfg)
		tr.RefineWhere(sphere(0.4, 0.4, 0.4, 0.25, 0.15), 3)
		tr.Persist()
		oldRoot := tr.CommittedRoot()
		// A churny second step replaces most of the tree, then GC runs
		// inside Persist.
		tr.CoarsenWhere(func(c morton.Code) bool { return true })
		tr.RefineWhere(sphere(0.7, 0.7, 0.7, 0.2, 0.1), 3)
		tr.Persist()
		return tr.nv.Live(oldRoot.Handle())
	}
	if !run(2) {
		t.Error("RetainVersions=2: superseded root was reclaimed; fallback has no target")
	}
	if run(0) {
		t.Error("RetainVersions=0: superseded root survived GC; retention should be off")
	}
}

// markedHandles runs markGuarded from root into a fresh bitset and
// returns the marked handle set, for tests that reason about version
// reachability.
func markedHandles(tr *Tree, root Ref) map[pmem.Handle]bool {
	bits := make([]uint64, (int(tr.nv.HighWater())+63)/64)
	tr.markGuarded(root, bits)
	set := map[pmem.Handle]bool{}
	for wi, w := range bits {
		for b := 0; b < 64; b++ {
			if w&(1<<b) != 0 {
				set[pmem.Handle(wi*64+b+1)] = true
			}
		}
	}
	return set
}
