package core

import (
	"pmoctree/internal/morton"
	"pmoctree/internal/telemetry"
)

// maybeEvict merges least-frequently-accessed C0 subtrees out to C1 while
// DRAM utilization exceeds the configured watermark (§3.2: "a
// least-frequently-accessed subtree will be removed from C0 and merged
// with C1" before OS page swapping would start).
func (t *Tree) maybeEvict() {
	for t.dram.Utilization() >= t.cfg.ThresholdDRAM {
		victim, ok := t.leastAccessedHot()
		if !ok {
			// No hot subtrees left to evict; the trunk alone exceeds the
			// budget, so future placements fall back to NVBM once the
			// hot set is empty. Nothing more to do.
			return
		}
		t.evictSubtree(victim)
	}
}

// leastAccessedHot returns the hot subtree root with the lowest access
// count this step.
func (t *Tree) leastAccessedHot() (morton.Code, bool) {
	var best morton.Code
	bestN := ^uint64(0)
	found := false
	for c := range t.hot {
		n := t.access[c]
		if !found || n < bestN || (n == bestN && c.Less(best)) {
			best, bestN, found = c, n, true
		}
	}
	return best, found
}

// evictSubtree removes code from the hot set and moves its DRAM-resident
// octants to NVBM, splicing the relocated subtree into the (path-copied)
// trunk.
func (t *Tree) evictSubtree(code morton.Code) {
	defer t.span("Merge").End()
	delete(t.hot, code)
	// The victim's access count dies with its hot-set membership: a
	// subtree re-entering the hot set must re-earn its frequency, not
	// inherit the pre-eviction count (which would rank it ahead of
	// subtrees that earned their accesses since, skewing LFA eviction
	// order and the TTransform promotion ratio). Post-eviction touches of
	// the relocated subtree re-create the entry with exactly the
	// post-eviction signal.
	delete(t.access, code)
	nr, _ := t.evictWalkTrunk(t.cur, code)
	t.cur = nr
	t.stats.Merges++
}

// evictWalkTrunk descends the trunk to the subtree root at code, moves
// that subtree to NVBM, and splices the new ref upward (copy-on-write
// along the path, which ends in NVBM octants only — preserving the region
// invariant).
func (t *Tree) evictWalkTrunk(r Ref, code morton.Code) (Ref, bool) {
	o := t.readOct(r)
	if o.Code == code {
		nr := t.moveToNVBM(r)
		return nr, nr != r
	}
	if !o.Code.IsAncestorOf(code) {
		return r, false
	}
	idx := code.AncestorAt(o.Code.Level() + 1).ChildIndex()
	c := o.Children[idx]
	if c.IsNil() {
		return r, false
	}
	nc, chg := t.evictWalkTrunk(c, code)
	if !chg {
		return r, false
	}
	o.Children[idx] = nc
	if t.inPlace(r, &o) {
		t.writeChildren(r, &o)
		t.writeParentField(nc, r)
		return r, false
	}
	// The trunk octant itself is shared: copy it. The eviction path must
	// not re-enter DRAM placement for the subtree being evicted, but the
	// trunk stays wherever placeRegion puts it (DRAM), which is fine: the
	// relocated subtree root below is NVBM and NVBM octants never point
	// at it downward.
	nr := t.commitOctant(r, &o)
	return nr, nr != r
}

// constructCleanNow reports whether the working version is exactly the
// output of a ConstructFromCodes with no mutation since (construct.go):
// the only state in which Persist may skip the merge walk.
func (t *Tree) constructCleanNow() bool {
	return t.constructClean && t.mutSeq == t.constructSeq
}

// moveToNVBM relocates every DRAM-resident octant reachable from r into
// NVBM, post-order, freeing the DRAM slots.
//
// Octants shared with the committed version are closed under NVBM (the
// committed version's region invariant) and are returned untouched.
// Working-version NVBM octants, however, may legally reference DRAM
// children mid-step — such edges are crash-safe because those octants are
// unreachable from the committed root — so the walk traverses them and
// patches any relocated children in place.
//
// The destination slot of a moved octant is allocated BEFORE descending,
// so children are written with their final parent ref already in their
// record, avoiding a parent-field fix-up write per child.
func (t *Tree) moveToNVBM(r Ref) Ref { return t.moveToNVBMUnder(r, NilRef, false) }

func (t *Tree) moveToNVBMUnder(r, parent Ref, setParent bool) Ref {
	if r.IsNil() {
		return r
	}
	if !r.InDRAM() {
		if !t.isCurrent(r) {
			return r // shared subtree: closed under NVBM already
		}
		o := t.readOct(r)
		var chIdx [8]bool
		changed := false
		for i, c := range o.Children {
			nc := t.moveToNVBMUnder(c, r, false)
			if nc != c {
				o.Children[i] = nc
				chIdx[i] = true
				changed = true
			}
		}
		if changed {
			t.writeChildren(r, &o)
			t.reparentChanged(r, &o, &chIdx)
		}
		if setParent && o.Parent != parent {
			t.writeParentField(r, parent)
		}
		return r
	}
	o := t.readOct(r)
	nr := t.allocIn(false)
	for i, c := range o.Children {
		o.Children[i] = t.moveToNVBMUnder(c, nr, true)
	}
	if setParent {
		o.Parent = parent
	}
	if pp := t.pipe; pp != nil && pp.staging {
		t.stageOct(nr, &o)
	} else {
		t.writeOct(nr, &o)
	}
	t.dram.Free(r.Handle())
	t.cacheDrop(r) // the DRAM handle is recycled by later allocations
	return nr
}

// stageOct is writeOct for a pipelined persist merge: the encoded record
// joins the pipeline's staging delta instead of being stored (the
// background worker writes it back, charging the device write then),
// while the host-side write-through — decoded cache, mutation sequence,
// access accounting — happens exactly as in writeOct.
func (t *Tree) stageOct(r Ref, o *Octant) {
	t.pipe.stageRecord(r.Handle(), o)
	t.cachePut(r, o)
	t.noteMutation()
	t.touch(o.Code)
}

// Persist commits the working version as the new persistent version
// (pm_persistent, Table 1):
//
//  1. Merge: every DRAM octant of V(i) moves to NVBM, so the version is
//     closed under NVBM.
//  2. Commit: a single 8-byte store of the root ref into the arena's root
//     table makes the new version durable. Crash before this store
//     recovers V(i-1); after it, V(i).
//  3. GC: octants reachable only from the old version are swept.
//  4. Transform: the hot set for the next step is re-derived by
//     feature-directed sampling (or obliviously when disabled).
//
// It returns the number of octants garbage-collected.
//
// With Config.PipelineDepth > 0, steps 1-2 are split: the merge stages
// its delta in host memory and the commit happens on the background
// persist worker (see pipeline.go); the mutator's committed/step counters
// advance immediately so step i+1 proceeds exactly as in synchronous
// mode, and durability trails until the worker's commit-record flip (or
// an explicit Flush).
func (t *Tree) Persist() int {
	if t.pipe != nil {
		return t.persistAsync()
	}
	defer t.span("Persist").End()
	if t.constructCleanNow() {
		// ConstructFromCodes just rebuilt the working version entirely in
		// NVBM with exact parent links, and nothing mutated since: the
		// merge walk would visit every octant to move nothing. Skip it.
		t.constructClean = false
	} else {
		t.constructClean = false
		t.cur = t.moveToNVBM(t.cur)
	}
	// The outgoing committed version enters the fallback ring before it is
	// superseded; a crash inside pushHistory damages at most the ring's
	// oldest entry, never the commit record.
	t.pushHistory()
	// Ordering matters for crash consistency: the step counter must be
	// durable BEFORE the root pointer. If power fails between the two
	// stores, recovery sees the old root with the new step number and
	// resumes at step+1 — safely above every version tag in the old
	// tree. The reverse order would let a recovered process treat the
	// just-committed octants as its own working version and mutate them
	// in place.
	t.nv.SetRoot(rootSlotStep, t.step)
	t.nv.SetRoot(rootSlotAddr, uint64(t.cur))
	t.committed = t.cur
	t.committedStep = t.step
	t.step++
	t.flight.Record(telemetry.FlightEvent{Kind: "commit", Step: t.committedStep, Value: uint64(t.committed)})
	// Commit is an epoch boundary for the decoded-octant cache: the merge
	// recycled every DRAM handle and the version tags just changed meaning.
	t.cacheInvalidateAll()
	t.stats.Persists++
	freed := 0
	if t.stats.Persists%t.cfg.GCEvery == 0 {
		freed = t.GC()
	}
	t.retarget()
	t.access = map[morton.Code]uint64{}
	t.lastPeakDRAMUtil = t.peakDRAMUtil
	t.peakDRAMUtil = 0
	return freed
}

// persistAsync is Persist over the asynchronous pipeline: stage the merge
// delta, enqueue it (blocking only when the in-flight window is full),
// advance the host view of committed, and leave writeback + ring push +
// commit flip to the persist worker. The logical tree evolution — octant
// codes, data, the whole digest history — is identical to the synchronous
// path, because content never depends on WHEN records reach the device;
// only write timing and GC's view of reclaimable superseded versions
// differ.
func (t *Tree) persistAsync() int {
	defer t.span("Persist").End()
	p := t.pipe
	// A worker that died (power cut mid-writeback) surfaces here, where
	// the synchronous Persist would have hit the same device failure.
	p.checkFailure()
	p.beginStage()
	if t.constructCleanNow() {
		t.constructClean = false // all-NVBM already: empty merge delta
	} else {
		t.constructClean = false
		t.cur = t.moveToNVBM(t.cur)
	}
	delta := p.endStage()
	bits, hw := t.nv.TakeDirtyBits(nil)
	p.enqueue(&commitReq{root: t.cur, step: t.step, delta: delta, nv: t.nv, bits: bits, hw: hw})
	t.committed = t.cur
	t.committedStep = t.step
	t.step++
	t.flight.Record(telemetry.FlightEvent{Kind: "persist_enqueue", Step: t.committedStep, Value: uint64(t.committed)})
	t.cacheInvalidateAll()
	t.stats.Persists++
	freed := 0
	if t.stats.Persists%t.cfg.GCEvery == 0 {
		freed = t.GC()
	}
	t.retarget()
	t.access = map[morton.Code]uint64{}
	t.lastPeakDRAMUtil = t.peakDRAMUtil
	t.peakDRAMUtil = 0
	return freed
}
