package core

import (
	"testing"

	"pmoctree/internal/bulk"
	"pmoctree/internal/morton"
	"pmoctree/internal/parallel"
)

// Construct-from-codes vs incremental refinement at serving scale: both
// build and commit the same ~10^5-leaf sphere-shell mesh with per-leaf
// payloads. CI gates BenchmarkConstructIncremental/
// BenchmarkConstructFromCodes >= 2 within one recorded document, so the
// ratio is machine-independent.

const benchShellLevel = 7

func benchShellPred() func(morton.Code) bool {
	return sphere(0.5, 0.5, 0.5, 0.3, 0.02)
}

func benchPayload(c morton.Code) [DataWords]float64 {
	x, y, z := c.Center()
	return [DataWords]float64{x + 2*y + 3*z, float64(c.Level()) + 0.25, x * y * z, z - x}
}

// benchShellCodes descends the predicate once to the leaf partition the
// incremental path would produce, so the bulk path starts from raw codes
// exactly as a scenario loader would.
func benchShellCodes(tb testing.TB) []morton.Code {
	pred := benchShellPred()
	var out []morton.Code
	var walk func(c morton.Code)
	walk = func(c morton.Code) {
		if c.Level() < benchShellLevel && pred(c) {
			for k := 0; k < 8; k++ {
				walk(c.Child(k))
			}
			return
		}
		out = append(out, c)
	}
	walk(morton.Root)
	balanced, err := bulk.Balance(out, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return balanced
}

func BenchmarkConstructIncremental(b *testing.B) {
	pred := benchShellPred()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := Create(Config{})
		t.RefineWhere(pred, benchShellLevel)
		t.Balance()
		t.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
			*d = benchPayload(c)
			return true
		})
		t.Persist()
		if i == 0 {
			b.ReportMetric(float64(t.LeafCount()), "leaves")
		}
	}
}

func BenchmarkConstructFromCodes(b *testing.B) {
	codes := benchShellCodes(b)
	data := make([][DataWords]float64, len(codes))
	for i, c := range codes {
		data[i] = benchPayload(c)
	}
	pool := parallel.New(0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := Create(Config{})
		if _, err := t.ConstructFromCodes(codes, data, pool, false); err != nil {
			b.Fatal(err)
		}
		t.Persist()
		if i == 0 {
			b.ReportMetric(float64(t.LeafCount()), "leaves")
		}
	}
}
