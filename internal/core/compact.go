package core

import (
	"fmt"

	"pmoctree/internal/nvbm"
	"pmoctree/internal/pmem"
)

// Compact rewrites the committed version into a fresh NVBM region in
// Z-order and switches the tree to it. Long-running simulations churn the
// arena — the high-water mark only grows, free slots scatter, and the
// recovery bitmap scan is proportional to high water, not to live data —
// so periodic compaction restores a dense, traversal-ordered layout (an
// extension; the paper's runs are short enough not to need it).
//
// The working version must be committed first (call Persist); Compact
// refuses to run mid-step. It returns the retired device, which the
// caller may discard or keep as a cold snapshot; the tree's config now
// points at the new region.
func (t *Tree) Compact() (retired *nvbm.Device, err error) {
	defer t.span("Compact").End()
	// Compaction swaps the arena wholesale: drain in-flight commits first
	// so the persist worker never stores into the retired region after
	// the swap (and so the compacted copy reads fully written-back
	// records).
	t.Flush()
	if t.cur != t.committed {
		return nil, fmt.Errorf("core: compaction requires a committed state; call Persist first")
	}
	if t.cur.IsNil() {
		return nil, fmt.Errorf("core: nothing to compact")
	}
	// Compaction replaces the arena wholesale; every outstanding snapshot
	// pin would be left pointing into the retired region.
	if n := t.PinnedVersions(); n > 0 {
		return nil, fmt.Errorf("%w: %d pinned version(s) outstanding; close their snapshots first", ErrPinned, n)
	}
	newDev := nvbm.New(nvbm.NVBM, 0)
	newArena := pmem.NewArena(newDev, RecordSize)

	// Copy pre-order with parent threading: allocate the destination
	// slot before descending so children are written with final parent
	// refs, exactly like the persist merge.
	var copyTree func(r, parent Ref) Ref
	copyTree = func(r, parent Ref) Ref {
		o := t.readOct(r)
		nr := makeRef(false, newArena.AllocRaw())
		o.Parent = parent
		o.Version = 0 // committed content; any working step exceeds it
		for i, c := range o.Children {
			if !c.IsNil() {
				o.Children[i] = copyTree(c, nr)
			}
		}
		o.encode(t.scratch[:])
		newArena.Write(nr.Handle(), t.scratch[:])
		return nr
	}
	newRoot := copyTree(t.committed, NilRef)
	newArena.SetRoot(rootSlotStep, t.step-1)
	newArena.SetRoot(rootSlotAddr, uint64(newRoot))
	if t.cfg.NVBMBudgetOctants > 0 {
		newArena.SetBudget(t.cfg.NVBMBudgetOctants)
	}

	retired = t.cfg.NVBMDevice
	t.cfg.NVBMDevice = newDev
	t.nv = newArena
	t.committed = newRoot
	t.cur = newRoot
	if t.pipe != nil {
		// The durable watermark lives in the new region now; the queue is
		// empty (flushed above), so this is a plain repoint. The fresh
		// arena was built with eager bits (the copy above is its durable
		// baseline); re-enter deferred mode for the pipeline.
		t.pipe.rebindDurable(newRoot, t.step-1)
		newArena.SetDeferredBits(true)
	}
	// Every NVBM ref changed identity; drop all derived host-side state.
	t.cacheInvalidateAll()
	t.invalidateLeafIndex()
	return retired, nil
}
