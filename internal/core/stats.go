package core

import (
	"fmt"

	"pmoctree/internal/pmem"
)

// VersionStats describes the structural sharing between the working
// version V(i) and the committed version V(i-1) — the data behind Figure 3
// of the paper.
type VersionStats struct {
	// CurOctants is the octant count of the working version.
	CurOctants int
	// PrevOctants is the octant count of the committed version.
	PrevOctants int
	// SharedOctants is the number of physical octants referenced by both.
	SharedOctants int
	// OverlapRatio is SharedOctants / CurOctants (the paper's definition).
	OverlapRatio float64
	// DRAMOctants and NVBMOctants split the working version by region.
	DRAMOctants int
	NVBMOctants int
	// LiveBytes is the total bytes held live across both arenas,
	// including superseded-version octants awaiting GC.
	LiveBytes int
	// SingleCopyBytes is what storing V(i) alone would take — the
	// denominator of the paper's memory-expansion factor.
	SingleCopyBytes int
	// ExpansionFactor is LiveBytes / SingleCopyBytes (1.01x at 99.5%
	// overlap in the paper).
	ExpansionFactor float64
}

// VersionStats measures sharing between the working and committed
// versions. Accounting is suspended during the walk: measuring an
// experiment must not perturb it.
func (t *Tree) VersionStats() VersionStats {
	t.setAccounting(false)
	defer t.setAccounting(true)

	prev := map[pmem.Handle]bool{}
	prevCount := 0
	t.walk(t.committed, func(r Ref, _ *Octant) bool {
		prevCount++
		if !r.InDRAM() {
			prev[r.Handle()] = true
		}
		return true
	})

	var vs VersionStats
	vs.PrevOctants = prevCount
	t.walk(t.cur, func(r Ref, _ *Octant) bool {
		vs.CurOctants++
		if r.InDRAM() {
			vs.DRAMOctants++
		} else {
			vs.NVBMOctants++
			if prev[r.Handle()] {
				vs.SharedOctants++
			}
		}
		return true
	})
	if vs.CurOctants > 0 {
		vs.OverlapRatio = float64(vs.SharedOctants) / float64(vs.CurOctants)
	}
	vs.LiveBytes = t.dram.BytesInUse() + t.nv.BytesInUse()
	vs.SingleCopyBytes = vs.CurOctants * RecordSize
	if vs.SingleCopyBytes > 0 {
		vs.ExpansionFactor = float64(vs.LiveBytes) / float64(vs.SingleCopyBytes)
	}
	return vs
}

// MemoryPerThousandOctants returns live bytes per 1000 working-version
// octants, the y-axis of Figure 3's second panel.
func (vs VersionStats) MemoryPerThousandOctants() float64 {
	if vs.CurOctants == 0 {
		return 0
	}
	return float64(vs.LiveBytes) / float64(vs.CurOctants) * 1000
}

// verrf builds a validation error tagged with the working version number,
// so a violation surfaced deep in a run is attributable to its step.
func (t *Tree) verrf(format string, args ...any) error {
	return fmt.Errorf("core: step %d: "+format, append([]any{t.step}, args...)...)
}

// Validate checks the structural invariants of both versions:
//
//   - child codes and levels are consistent with their parents;
//   - the committed version is closed under NVBM (the region invariant);
//   - every working-version octant's ref points at a live arena slot;
//   - parent refs of working-version octants are exact.
//
// It returns the first violation found (tagged with the working version
// number), or nil. Accounting is suspended.
func (t *Tree) Validate() error {
	t.setAccounting(false)
	defer t.setAccounting(true)
	// Committed version must be NVBM-closed and structurally sound.
	var err error
	t.walk(t.committed, func(r Ref, o *Octant) bool {
		if r.InDRAM() {
			err = t.verrf("committed octant %v resides in DRAM", o.Code)
			return false
		}
		if !t.nv.Live(r.Handle()) {
			err = t.verrf("committed octant %v points at a freed slot", o.Code)
			return false
		}
		for i, c := range o.Children {
			if c.IsNil() {
				continue
			}
			if c.InDRAM() {
				err = t.verrf("committed octant %v has DRAM child %d", o.Code, i)
				return false
			}
			var co Octant
			// Pending-aware: under the persist pipeline a committed child
			// may still await writeback.
			t.chargedRead(c, t.scratch[:])
			co.decode(t.scratch[:])
			if co.Code != o.Code.Child(i) {
				err = t.verrf("committed %v child %d has code %v", o.Code, i, co.Code)
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	// Working version: codes consistent, slots live, current-version
	// parent refs exact.
	t.walk(t.cur, func(r Ref, o *Octant) bool {
		if !t.arenaFor(r).Live(r.Handle()) {
			err = t.verrf("working octant %v points at a freed slot", o.Code)
			return false
		}
		for i, c := range o.Children {
			if c.IsNil() {
				continue
			}
			co := t.readOct(c)
			if co.Code != o.Code.Child(i) {
				err = t.verrf("working %v child %d has code %v", o.Code, i, co.Code)
				return false
			}
			// Shared NVBM octants must be closed under NVBM (they are
			// reachable from the committed root). Working-version NVBM
			// octants may reference DRAM mid-step; Persist patches those
			// edges before commit.
			if !r.InDRAM() && !t.inPlace(r, o) && c.InDRAM() {
				err = t.verrf("shared NVBM octant %v references DRAM child %v", o.Code, co.Code)
				return false
			}
			if t.inPlace(c, &co) && co.Parent != r {
				err = t.verrf("working octant %v has stale parent ref %v (want %v)", co.Code, co.Parent, r)
				return false
			}
		}
		return true
	})
	return err
}
