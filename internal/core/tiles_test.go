package core

import (
	"fmt"
	"math/rand"
	"testing"

	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
)

func tileTestTree() *Tree {
	return Create(Config{
		NVBMDevice:        nvbm.New(nvbm.NVBM, 0),
		DRAMDevice:        nvbm.New(nvbm.DRAM, 0),
		DRAMBudgetOctants: 256,
		RetainVersions:    1,
	})
}

// verifyTilesCoherent gathers (or reuses) the tile store and checks that
// every cell is bit-identical to a fresh tree walk.
func verifyTilesCoherent(t *testing.T, tr *Tree, label string) {
	t.Helper()
	st := tr.LeafTiles()
	var walkCodes []morton.Code
	var walkData [][DataWords]float64
	tr.ForEachLeaf(func(c morton.Code, d [DataWords]float64) bool {
		walkCodes = append(walkCodes, c)
		walkData = append(walkData, d)
		return true
	})
	if st.N() != len(walkCodes) {
		t.Fatalf("%s: store holds %d cells, walk found %d", label, st.N(), len(walkCodes))
	}
	codes := st.Codes()
	for i := range walkCodes {
		if codes[i] != walkCodes[i] {
			t.Fatalf("%s: cell %d code %v, walk %v", label, i, codes[i], walkCodes[i])
		}
		if got := st.Load(i); got != walkData[i] {
			t.Fatalf("%s: cell %d (%v) = %v, walk %v", label, i, codes[i], got, walkData[i])
		}
	}
}

// TestLeafTilesCoherence drives a randomized refine/coarsen/update/persist
// sequence and asserts after every mutation that the gathered tile store
// is bit-identical to a tree walk.
func TestLeafTilesCoherence(t *testing.T) {
	tr := tileTestTree()
	tr.RefineWhere(func(morton.Code) bool { return true }, 2)
	rng := rand.New(rand.NewSource(9))

	for step := 0; step < 40; step++ {
		switch rng.Intn(5) {
		case 0:
			cx, cy, cz := rng.Float64(), rng.Float64(), rng.Float64()
			tr.RefineWhere(sphere(cx, cy, cz, 0.3, 0.1), uint8(3+rng.Intn(3)))
		case 1:
			min := uint8(3 + rng.Intn(3))
			tr.CoarsenWhere(func(c morton.Code) bool { return c.Level() >= min })
		case 2:
			k := float64(step)
			tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
				d[rng.Intn(DataWords)] = k + float64(c%97)
				return rng.Intn(3) > 0
			})
		case 3:
			tr.Balance()
		case 4:
			tr.Persist()
		}
		verifyTilesCoherent(t, tr, fmt.Sprintf("step %d", step))
		if err := tr.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// sweepTiled runs one flat sweep over the tile store — the kernel shape
// the SoA layout exists for — marking modified cells dirty and scattering.
func sweepTiled(tr *Tree, fn func(c morton.Code, d *[DataWords]float64) bool) int {
	st := tr.LeafTiles()
	codes := st.Codes()
	for i := range codes {
		d := st.Load(i)
		if fn(codes[i], &d) {
			st.Set(i, d)
			st.MarkDirty(i)
		}
	}
	return tr.ScatterLeafTiles(st)
}

// TestScatterBitIdenticalToUpdateLeaves runs the same sweep program
// through the tiled gather/scatter path and through UpdateLeaves on an
// identically built tree, across mutations and a Persist, and asserts the
// meshes stay bit-identical.
func TestScatterBitIdenticalToUpdateLeaves(t *testing.T) {
	tiled, ref := tileTestTree(), tileTestTree()
	build := func(tr *Tree) {
		tr.RefineWhere(sphere(0.5, 0.5, 0.5, 0.35, 0.2), 4)
		tr.Balance()
	}
	build(tiled)
	build(ref)

	sweep := func(k float64) func(morton.Code, *[DataWords]float64) bool {
		return func(c morton.Code, d *[DataWords]float64) bool {
			if c%3 == 0 {
				return false // partial sweeps: untouched cells must not scatter
			}
			d[0] = k * float64(c.Level())
			d[1] += 0.25
			return true
		}
	}

	for round := 0; round < 6; round++ {
		k := float64(round + 1)
		nt := sweepTiled(tiled, sweep(k))
		nr := ref.UpdateLeaves(sweep(k))
		if nt != nr {
			t.Fatalf("round %d: tiled sweep wrote %d cells, UpdateLeaves %d", round, nt, nr)
		}
		switch round {
		case 2: // force the COW scatter path: share leaves with a commit
			tiled.Persist()
			ref.Persist()
		case 4: // structural churn between sweeps
			tiled.RefineWhere(sphere(0.3, 0.3, 0.3, 0.2, 0.1), 5)
			ref.RefineWhere(sphere(0.3, 0.3, 0.3, 0.2, 0.1), 5)
		}
		var want [][DataWords]float64
		ref.ForEachLeaf(func(c morton.Code, d [DataWords]float64) bool {
			want = append(want, d)
			return true
		})
		i := 0
		tiled.ForEachLeaf(func(c morton.Code, d [DataWords]float64) bool {
			if d != want[i] {
				t.Fatalf("round %d: leaf %d (%v) = %v, reference %v", round, i, c, d, want[i])
			}
			i++
			return true
		})
		if i != len(want) {
			t.Fatalf("round %d: %d leaves vs reference %d", round, i, len(want))
		}
	}
}

// TestTileSteadyStateReuse pins the invalidation protocol: a sweep whose
// scatter made only in-place writes revalidates the store, so repeated
// solve rounds on an unchanging mesh pay exactly one gather.
func TestTileSteadyStateReuse(t *testing.T) {
	tr := tileTestTree()
	tr.RefineWhere(sphere(0.5, 0.5, 0.5, 0.3, 0.15), 4)

	for round := 0; round < 5; round++ {
		sweepTiled(tr, func(c morton.Code, d *[DataWords]float64) bool {
			d[0] = float64(round)
			return true
		})
	}
	fp := tr.FastPath()
	if fp.TileRebuilds != 1 {
		t.Fatalf("steady state paid %d gathers, want exactly 1 (%d reuses)", fp.TileRebuilds, fp.TileReuses)
	}
	if fp.TileReuses < 4 {
		t.Fatalf("only %d reuses across 5 rounds", fp.TileReuses)
	}
	if fp.TileScatters != 5 || fp.TileScatterBytes == 0 {
		t.Fatalf("scatter counters off: %+v", fp)
	}

	// A structural mutation invalidates; the next gather is a rebuild.
	tr.RefineWhere(sphere(0.2, 0.2, 0.2, 0.15, 0.1), 5)
	tr.LeafTiles()
	if got := tr.FastPath().TileRebuilds; got != 2 {
		t.Fatalf("refine did not invalidate the store: %d rebuilds", got)
	}
	verifyTilesCoherent(t, tr, "after refine")
}

// TestScatterStaleStorePanics: scattering a store the tree mutated behind
// must panic, not corrupt the mesh.
func TestScatterStaleStorePanics(t *testing.T) {
	tr := tileTestTree()
	tr.RefineWhere(func(morton.Code) bool { return true }, 2)
	st := tr.LeafTiles()
	st.MarkDirty(0)
	tr.RefineAt(st.Codes()[0]) // mutates behind the store
	defer func() {
		if recover() == nil {
			t.Fatal("ScatterLeafTiles on a stale store did not panic")
		}
	}()
	tr.ScatterLeafTiles(st)
}
