package core

import (
	"fmt"
	"testing"

	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
)

// TestPowerCutTorture cuts power after every possible write count during
// a mutation+persist sequence and verifies that recovery ALWAYS yields a
// previously committed version, intact and validated. This is the
// system's central claim (§3: "our algorithms can guarantee at least one
// version of the octree is consistent while updating its newer version")
// exercised exhaustively at the granularity of individual device writes.
func TestPowerCutTorture(t *testing.T) {
	// Dry run to learn how many NVBM writes the doomed phase performs.
	totalWrites := func() int {
		nv := nvbm.New(nvbm.NVBM, 0)
		tree, history := buildBase(t, nv)
		before := nv.Stats().Writes
		doomedPhase(tree)
		_ = history
		return int(nv.Stats().Writes - before)
	}()
	if totalWrites < 50 {
		t.Fatalf("doomed phase performs only %d writes; torture too weak", totalWrites)
	}

	// The doomed phase's committed outcome, for cut points past the
	// commit store (deterministic, so computed once).
	fullVersion := func() map[morton.Code][DataWords]float64 {
		nv := nvbm.New(nvbm.NVBM, 0)
		tree, _ := buildBase(t, nv)
		doomedPhase(tree)
		return leafSet(tree, tree.CommittedRoot())
	}()

	// Cut at a spread of points covering the whole phase, plus every
	// point in the first 20 writes (where the commit machinery lives).
	points := map[int]bool{}
	for n := 0; n <= 20; n++ {
		points[n] = true
	}
	for n := 0; n <= totalWrites; n += totalWrites/24 + 1 {
		points[n] = true
	}
	points[totalWrites-1] = true
	points[totalWrites] = true

	for n := range points {
		n := n
		t.Run(fmt.Sprintf("cut-after-%d-writes", n), func(t *testing.T) {
			nv := nvbm.New(nvbm.NVBM, 0)
			tree, history := buildBase(t, nv)
			nv.CutPowerAfter(n)
			// The doomed process may die with a panic once its writes
			// stop landing; that is exactly a crash.
			func() {
				defer func() { recover() }()
				doomedPhase(tree)
			}()
			nv.RestorePower()

			restored, err := Restore(Config{NVBMDevice: nv})
			if err != nil {
				t.Fatalf("restore after cut at %d: %v", n, err)
			}
			if err := restored.Validate(); err != nil {
				t.Fatalf("restored tree invalid after cut at %d: %v", n, err)
			}
			got := leafSet(restored, restored.Root())
			if !matchesAny(got, append(history, fullVersion)) {
				t.Fatalf("cut at %d writes: restored %d leaves match no committed version",
					n, len(got))
			}
			// The restored tree must remain fully usable.
			restored.RefineWhere(func(c morton.Code) bool { return c.Level() < 1 }, 3)
			restored.Persist()
			if err := restored.Validate(); err != nil {
				t.Fatalf("post-recovery persist invalid after cut at %d: %v", n, err)
			}
		})
	}
}

// buildBase creates a tree with two committed versions and returns the
// history of committed leaf sets.
func buildBase(t *testing.T, nv *nvbm.Device) (*Tree, []map[morton.Code][DataWords]float64) {
	t.Helper()
	tree := Create(Config{NVBMDevice: nv, DRAMBudgetOctants: 64, Seed: 5})
	var history []map[morton.Code][DataWords]float64
	history = append(history, leafSet(tree, tree.CommittedRoot()))

	tree.RefineWhere(sphere(0.4, 0.4, 0.4, 0.25, 0.2), 3)
	tree.Persist()
	history = append(history, leafSet(tree, tree.CommittedRoot()))

	tree.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
		d[0] = float64(c.Level())
		return true
	})
	tree.Persist()
	history = append(history, leafSet(tree, tree.CommittedRoot()))
	return tree, history
}

// doomedPhase is the mutation whose writes the torture interrupts: a
// refinement, a solve-style update, and a persist (including its merge,
// commit, GC and retarget).
func doomedPhase(tree *Tree) {
	tree.RefineWhere(sphere(0.6, 0.6, 0.6, 0.2, 0.15), 4)
	tree.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
		d[1] = 1
		return true
	})
	tree.Persist()
}

// matchesAny reports whether got equals one of the candidate committed
// versions.
func matchesAny(got map[morton.Code][DataWords]float64, candidates []map[morton.Code][DataWords]float64) bool {
	for _, want := range candidates {
		if equalLeafSets(got, want) {
			return true
		}
	}
	return false
}

// TestPowerCutDuringEveryEarlyWrite runs the dense version of the torture
// on a smaller tree: every single cut point from 0 to the full phase.
func TestPowerCutDuringEveryEarlyWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive torture skipped in -short")
	}
	// Learn the phase length.
	phase := func(tree *Tree) {
		tree.RefineWhere(func(c morton.Code) bool { return c.Level() < 2 }, 2)
		tree.Persist()
	}
	build := func(nv *nvbm.Device) (*Tree, map[morton.Code][DataWords]float64) {
		tree := Create(Config{NVBMDevice: nv, DRAMBudgetOctants: 16, Seed: 9})
		tree.RefineWhere(func(c morton.Code) bool { return c.Level() < 1 }, 1)
		tree.Persist()
		return tree, leafSet(tree, tree.CommittedRoot())
	}
	total := func() int {
		nv := nvbm.New(nvbm.NVBM, 0)
		tree, _ := build(nv)
		before := nv.Stats().Writes
		phase(tree)
		return int(nv.Stats().Writes - before)
	}()

	fullWant := func() map[morton.Code][DataWords]float64 {
		nv := nvbm.New(nvbm.NVBM, 0)
		tree, _ := build(nv)
		phase(tree)
		return leafSet(tree, tree.CommittedRoot())
	}()

	// Exhaustive: power fails after every possible write count.
	for n := 0; n <= total; n++ {
		nv := nvbm.New(nvbm.NVBM, 0)
		tree, committed := build(nv)
		nv.CutPowerAfter(n)
		func() {
			defer func() { recover() }()
			phase(tree)
		}()
		nv.RestorePower()
		restored, err := Restore(Config{NVBMDevice: nv})
		if err != nil {
			t.Fatalf("cut %d/%d: restore: %v", n, total, err)
		}
		if err := restored.Validate(); err != nil {
			t.Fatalf("cut %d/%d: invalid: %v", n, total, err)
		}
		got := leafSet(restored, restored.Root())
		if !equalLeafSets(got, committed) && !equalLeafSets(got, fullWant) {
			t.Fatalf("cut %d/%d: restored tree is neither the old nor the new version (%d leaves)",
				n, total, len(got))
		}
	}
}

func equalLeafSets(a, b map[morton.Code][DataWords]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for c, d := range a {
		if b[c] != d {
			return false
		}
	}
	return true
}

// TestLongRunNoLeak drives many persist cycles and checks the NVBM arena
// never accumulates unreclaimed octants: after each step's GC, live slots
// must stay within a small factor of the live version's octant count
// (two versions can transiently coexist, never more).
func TestLongRunNoLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("long-run test skipped in -short")
	}
	tr := Create(Config{DRAMBudgetOctants: 512, Seed: 6})
	for s := 0; s < 40; s++ {
		cx := 0.15 + 0.6*float64(s)/40
		tr.RefineWhere(sphere(cx, 0.5, 0.5, 0.2, 0.15), 4)
		tr.CoarsenWhere(func(c morton.Code) bool {
			return !sphere(cx, 0.5, 0.5, 0.2, 0.35)(c)
		})
		tr.UpdateLeaves(func(c morton.Code, d *[DataWords]float64) bool {
			if sphere(cx, 0.5, 0.5, 0.2, 0.15)(c) {
				d[0] = cx
				return true
			}
			return false
		})
		tr.Persist()
		vs := tr.VersionStats()
		live := tr.nv.LiveCount()
		if float64(live) > float64(vs.CurOctants)*1.2+16 {
			t.Fatalf("step %d: %d live NVBM slots for %d octants — leaking",
				s, live, vs.CurOctants)
		}
		if s%10 == 9 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("step %d: %v", s, err)
			}
		}
	}
	// The arena's high-water mark is bounded too: freed slots recycle.
	if hw := tr.nv.HighWater(); float64(hw) > float64(tr.nv.LiveCount())*6 {
		t.Errorf("high water %d vs %d live: free slots not recycling", hw, tr.nv.LiveCount())
	}
}
