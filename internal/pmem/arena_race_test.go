package pmem

import (
	"bytes"
	"fmt"
	"testing"

	"pmoctree/internal/nvbm"
)

// TestArenaPersistWorkerRace pins the persist-writeback carve-out in the
// Arena contract: a single background worker storing payloads through
// WriteExclusive into already-allocated slots, concurrent with the
// mutator allocating, writing, freeing and growing OTHER slots. Media
// tracking is on, so the per-line CRC shadow would flag the historical
// races this carve-out exists to exclude — adjacent slots sharing a cache
// line (the slot payload is not line-aligned), the lazily-initialized
// zero buffer, and device growth under a concurrent writer. Run with
// -race; the data race on any shared scratch would also trip the
// detector directly.
func TestArenaPersistWorkerRace(t *testing.T) {
	const (
		slotSize = 88 // core.RecordSize: deliberately not line-aligned
		pool     = 64 // slots owned by the persist worker
		churn    = 48 // allocation churn per mutator round
		rounds   = 200
	)
	dev := nvbm.New(nvbm.NVBM, 0)
	dev.EnableMediaTracking()
	a := NewArena(dev, slotSize)

	fill := func(h Handle, tag byte) []byte {
		p := make([]byte, slotSize)
		for i := range p {
			p[i] = tag ^ byte(i) ^ byte(h)
		}
		return p
	}

	// The worker's slots are allocated up front by the mutator (the
	// worker never touches allocation bookkeeping); the slots at the pool
	// boundary share cache lines with the mutator's churn slots, which is
	// exactly the overlap WriteExclusive exists to make safe.
	workerSlots := make([]Handle, pool)
	for i := range workerSlots {
		workerSlots[i] = a.Alloc()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := 0; r < rounds; r++ {
			for _, h := range workerSlots {
				a.WriteExclusive(h, fill(h, byte(r)))
			}
		}
	}()

	// Mutator: churn allocations hard enough to force repeated device
	// Grow while the worker writes. Freed slots recycle only within the
	// mutator's own set, so the two ranges stay disjoint.
	held := map[Handle][]byte{}
	for r := 0; r < rounds; r++ {
		for i := 0; i < churn; i++ {
			h := a.Alloc()
			p := fill(h, 0xA5)
			a.Write(h, p)
			held[h] = p
		}
		for h, want := range held {
			got := make([]byte, slotSize)
			a.Read(h, got)
			if !bytes.Equal(got, want) {
				t.Errorf("round %d: mutator slot %v corrupted", r, h)
			}
			if len(held) > churn/2 {
				a.Free(h)
				delete(held, h)
			}
		}
	}
	<-done

	// Every worker slot carries the final round's payload intact.
	for _, h := range workerSlots {
		got := make([]byte, slotSize)
		a.Read(h, got)
		if !bytes.Equal(got, fill(h, byte(rounds-1))) {
			t.Fatalf("worker slot %v corrupted after concurrent churn", h)
		}
	}
	// The CRC shadow agrees with the media everywhere — a torn line-level
	// checksum update (two writers recomputing the same line's CRC) would
	// surface here even when the payload bytes happen to survive.
	if dev.RangeCorrupt(0, dev.Size()) {
		t.Fatalf("CRC shadow inconsistent after concurrent writeback: corrupt lines %v", dev.CorruptLines())
	}
}

// TestArenaZeroBufEagerInit pins the satellite fix directly: the zeroing
// buffer exists before the first Alloc, so a reader goroutine sharing the
// Arena never races a lazy first-use field store.
func TestArenaZeroBufEagerInit(t *testing.T) {
	for _, mk := range []struct {
		name string
		a    func() *Arena
	}{
		{"NewArena", func() *Arena { return NewArena(nvbm.New(nvbm.NVBM, 0), 88) }},
		{"OpenArena", func() *Arena {
			dev := nvbm.New(nvbm.NVBM, 0)
			NewArena(dev, 88)
			a, err := OpenArena(dev)
			if err != nil {
				t.Fatal(err)
			}
			return a
		}},
	} {
		t.Run(mk.name, func(t *testing.T) {
			a := mk.a()
			if a.zeroBuf == nil || len(a.zeroBuf) != a.slotSize {
				t.Fatalf("zeroBuf not eagerly sized: %d, want %d", len(a.zeroBuf), a.slotSize)
			}
			for i, b := range a.zeroBuf {
				if b != 0 {
					t.Fatalf("zeroBuf[%d] = %d, want 0", i, b)
				}
			}
			_ = fmt.Sprint(a.Alloc()) // first Alloc must not reinitialize it
		})
	}
}
