// Package pmem provides a persistent, handle-addressed slot allocator on top
// of an emulated memory device (internal/nvbm).
//
// A garbage-collected runtime such as Go cannot store raw pointers inside a
// persistent memory region: the collector owns pointer identity, may move
// its view of liveness at any time, and never scans foreign memory. The
// PM-octree reproduction therefore follows the layout discipline of
// PMDK-style persistent libraries: objects in a region reference each other
// by region-relative handles, never by virtual addresses. Handles remain
// valid across process restarts and file-backed remaps, which is exactly
// the property persistent pointers give C++ and the property Go pointers
// cannot.
//
// An Arena manages fixed-size slots inside one device. Slot liveness is
// recorded in a persistent allocation bitmap, so a crashed process rebuilds
// its volatile free list from one small sequential read — the allocator is
// crash-consistent without a log, and recovery cost is metadata-sized, not
// data-sized. (A crash between a slot write and its bitmap flip leaks at
// most one slot, which the octree's mark-and-sweep GC reclaims.)
package pmem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"

	"pmoctree/internal/nvbm"
)

// Handle identifies an allocated slot within one Arena. Handles are
// 1-based; the zero Handle is the nil reference.
type Handle uint32

// Nil is the null handle.
const Nil Handle = 0

// IsNil reports whether h is the null handle.
func (h Handle) IsNil() bool { return h == Nil }

const (
	// headerSize is the formatted arena header: magic, geometry, and the
	// persistent root table.
	headerSize = 128
	// rootTableOff is where the 8 persistent roots live in the header.
	rootTableOff = 64
	// NumRoots is the number of persistent root slots an arena exposes.
	// PM-octree uses two of them for ADDR(Vi) and ADDR(Vi-1).
	NumRoots = 8

	magicOff     = 0
	slotSizeOff  = 8
	strideOff    = 12
	highWaterOff = 16
	maxSlotsOff  = 20

	// DefaultMaxSlots bounds an arena created by NewArena: 2^21 slots
	// (an allocation bitmap of 256 KiB).
	DefaultMaxSlots = 1 << 21
)

var arenaMagic = [8]byte{'P', 'M', 'A', 'R', 'E', 'N', 'A', '2'}

// Arena is a fixed-slot allocator over a Device. It is not safe for
// general concurrent use; each simulation rank owns its arenas. Two
// exceptions are carved out:
//
//   - MVCC serving: Read/ReadField/Live/HighWater on slots that are never
//     freed or rewritten (committed, pinned octree versions) may run
//     concurrently with the single writer's AllocRaw/Write on OTHER slots
//     — the high-water mark is atomic and the device tolerates
//     disjoint-range access racing Grow.
//   - Persist writeback: a single background worker may WriteExclusive to
//     slots the mutator does not concurrently read or write, while the
//     mutator keeps allocating, freeing and writing other slots. All
//     allocation bookkeeping (free list, liveWords mirror, zeroBuf, the
//     persistent bitmap) stays mutator-owned — the worker only stores
//     payloads into slots the mutator already allocated, and does so
//     under the device's exclusive lock because adjacent slot payloads
//     can share a cache line (see nvbm.Device.WriteAtExclusive).
type Arena struct {
	dev      *nvbm.Device
	slotSize int // user-visible bytes per slot
	stride   int // allocated bytes per slot (8-aligned)
	maxSlots int

	// highWater counts slots ever handed out (contiguous from 0). It is
	// atomic — not because the arena is concurrent (it is single-writer by
	// contract) but because pinned-snapshot readers call Read on committed
	// slots while the writer allocates, and both paths consult the mark.
	highWater atomic.Uint32
	free      []uint32 // volatile free list of 0-based slot indexes
	live      int      // currently allocated slots

	// budget, when nonzero, is the slot capacity used for utilization
	// tracking (threshold_DRAM / threshold_NVBM in the paper). The arena
	// itself never refuses an allocation; policy lives in the caller.
	budget int

	// wearLevel switches free-slot recycling from LIFO (cache-friendly:
	// the hottest slot is reused immediately) to FIFO (wear-friendly:
	// writes rotate across every freed slot). NVBM cells endure a
	// bounded number of writes, so long-running write-heavy workloads
	// trade a little locality for device lifetime.
	wearLevel bool
	fifoHead  int // consumed prefix of the free list in FIFO mode

	// liveWords is a volatile mirror of the persistent allocation bitmap
	// (64 slots per word), kept in lockstep by setBit. GC sweeps scan it
	// word by word instead of probing the device per handle.
	liveWords []uint64

	// zeroBuf is the reusable zeroing buffer for Alloc. It is only ever
	// passed to dev.WriteAt, which copies it, so it stays all-zero. It is
	// built eagerly at construction: a lazy first-Alloc initialization
	// would be an unsynchronized field store racing any concurrent
	// reader/persister goroutine that shares the Arena value.
	zeroBuf []byte

	// deferBits switches allocation-bitmap persistence from eager per-bit
	// device read-modify-writes to deferred whole-word writeback: setBit
	// updates only the volatile liveWords mirror and records the touched
	// word in dirty; TakeDirtyBits snapshots the dirty words (and the
	// high-water mark, whose per-allocation WriteU32 is deferred too) for
	// a persist worker to land via WriteBitsExclusive before a commit
	// record flips. Crash-wise the deferral is free: a set bit lost to a
	// crash describes a slot no durable root references (bits land before
	// the flip that makes slots reachable), and a cleared bit lost is a
	// leak the octree's mark-and-sweep reclaims — both already the
	// documented behavior of a crash between a slot write and its bitmap
	// flip. Mutator-owned, like every other allocation field.
	deferBits bool
	dirty     map[int]struct{}
}

// NewArena formats dev as an empty arena with the given user slot size and
// the default slot capacity. Any previous contents are ignored.
func NewArena(dev *nvbm.Device, slotSize int) *Arena {
	return NewArenaCap(dev, slotSize, DefaultMaxSlots)
}

// NewArenaCap formats dev with an explicit slot capacity (the persistent
// allocation bitmap is sized once at format time, like a filesystem's
// inode table).
func NewArenaCap(dev *nvbm.Device, slotSize, maxSlots int) *Arena {
	if slotSize <= 0 {
		panic("pmem: slot size must be positive")
	}
	if maxSlots <= 0 {
		panic("pmem: max slots must be positive")
	}
	a := &Arena{
		dev:      dev,
		slotSize: slotSize,
		stride:   align8(slotSize),
		maxSlots: maxSlots,
		zeroBuf:  make([]byte, slotSize),
	}
	reformatting := dev.Size() > 0
	if min := a.slotsBase(); dev.Size() < min {
		dev.Grow(min)
	}
	dev.WriteAt(magicOff, arenaMagic[:])
	dev.WriteU32(slotSizeOff, uint32(slotSize))
	dev.WriteU32(strideOff, uint32(a.stride))
	dev.WriteU32(highWaterOff, 0)
	dev.WriteU32(maxSlotsOff, uint32(maxSlots))
	for i := 0; i < NumRoots; i++ {
		dev.WriteU64(rootTableOff+8*i, 0)
	}
	if reformatting {
		// Old contents may sit under the bitmap: zero it in one bulk
		// write. A fresh device is already zeroed.
		dev.WriteAt(headerSize, make([]byte, a.bitmapBytes()))
	}
	return a
}

// OpenArena maps an existing formatted arena in dev, rebuilding the
// volatile free list from the persistent allocation bitmap — one small
// sequential read, the recovery path after a crash or restart.
func OpenArena(dev *nvbm.Device) (*Arena, error) {
	if dev.Size() < headerSize {
		return nil, fmt.Errorf("pmem: device too small (%d bytes) to hold an arena header", dev.Size())
	}
	var magic [8]byte
	dev.ReadAt(magicOff, magic[:])
	if magic != arenaMagic {
		return nil, fmt.Errorf("pmem: bad arena magic %q", magic[:])
	}
	a := &Arena{
		dev:      dev,
		slotSize: int(dev.ReadU32(slotSizeOff)),
		stride:   int(dev.ReadU32(strideOff)),
		maxSlots: int(dev.ReadU32(maxSlotsOff)),
	}
	a.highWater.Store(dev.ReadU32(highWaterOff))
	if a.slotSize <= 0 || a.stride < a.slotSize || a.maxSlots <= 0 {
		return nil, fmt.Errorf("pmem: corrupt arena geometry: slot %d stride %d cap %d", a.slotSize, a.stride, a.maxSlots)
	}
	a.zeroBuf = make([]byte, a.slotSize)
	if int(a.highWater.Load()) > a.maxSlots {
		return nil, fmt.Errorf("pmem: high water %d exceeds capacity %d", a.highWater.Load(), a.maxSlots)
	}
	// Rebuild the free list from the bitmap prefix covering handed-out
	// slots: one sequential read.
	n := int(a.highWater.Load())
	if n > 0 {
		bm := make([]byte, (n+7)/8)
		a.dev.ReadAt(headerSize, bm)
		a.liveWords = make([]uint64, (n+63)/64)
		for i := 0; i < n; i++ {
			if bm[i/8]&(1<<(i%8)) != 0 {
				a.live++
				a.liveWords[i/64] |= 1 << (i % 64)
			} else {
				a.free = append(a.free, uint32(i))
			}
		}
	}
	return a, nil
}

// bitmapBytes returns the persistent bitmap size.
func (a *Arena) bitmapBytes() int { return (a.maxSlots + 7) / 8 }

// slotsBase returns the device offset of slot 0.
func (a *Arena) slotsBase() int { return headerSize + a.bitmapBytes() }

// slotOff returns the device offset of slot i's payload.
func (a *Arena) slotOff(i uint32) int {
	return a.slotsBase() + int(i)*a.stride
}

// setBit flips slot i's allocation bit (one byte read-modify-write) and
// keeps the volatile liveWords mirror in lockstep. In deferred mode the
// device access is skipped: the mirror is the truth and the word is
// queued for WriteBitsExclusive.
func (a *Arena) setBit(i uint32, on bool) {
	if !a.deferBits {
		off := headerSize + int(i/8)
		var b [1]byte
		a.dev.ReadAt(off, b[:])
		if on {
			b[0] |= 1 << (i % 8)
		} else {
			b[0] &^= 1 << (i % 8)
		}
		a.dev.WriteAt(off, b[:])
	}
	if wi := int(i / 64); wi >= len(a.liveWords) {
		grown := make([]uint64, wi+1)
		copy(grown, a.liveWords)
		a.liveWords = grown
	}
	if on {
		a.liveWords[i/64] |= 1 << (i % 64)
	} else {
		a.liveWords[i/64] &^= 1 << (i % 64)
	}
	if a.deferBits {
		a.dirty[int(i/64)] = struct{}{}
	}
}

// bit reads slot i's allocation bit. In deferred mode the persistent
// bitmap may lag the truth, so the volatile mirror answers instead —
// uncharged, because the host genuinely never touches the device here.
func (a *Arena) bit(i uint32) bool {
	if a.deferBits {
		if wi := int(i / 64); wi < len(a.liveWords) {
			return a.liveWords[wi]&(1<<(i%64)) != 0
		}
		return false
	}
	var b [1]byte
	a.dev.ReadAt(headerSize+int(i/8), b[:])
	return b[0]&(1<<(i%8)) != 0
}

// SetWearLeveling selects FIFO free-slot recycling, rotating writes
// across freed slots to even out NVBM cell wear (see EnduranceReport).
func (a *Arena) SetWearLeveling(on bool) { a.wearLevel = on }

// Alloc allocates a slot and returns its handle. The slot contents are
// zeroed. It panics when the formatted capacity is exhausted.
func (a *Arena) Alloc() Handle {
	h := a.AllocRaw()
	a.dev.WriteAt(a.slotOff(uint32(h-1)), a.zeroBuf)
	return h
}

// AllocRaw allocates a slot without zeroing it. Callers that immediately
// overwrite the whole payload (the octree always writes a full record into
// a fresh slot) use this to avoid a redundant full-slot write.
func (a *Arena) AllocRaw() Handle {
	var idx uint32
	if a.wearLevel && a.fifoHead < len(a.free) {
		idx = a.free[a.fifoHead]
		a.fifoHead++
		if a.fifoHead == len(a.free) {
			a.free = a.free[:0]
			a.fifoHead = 0
		}
	} else if n := len(a.free); n > a.fifoHead {
		idx = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		if int(a.highWater.Load()) >= a.maxSlots {
			panic(fmt.Sprintf("pmem: arena capacity %d exhausted", a.maxSlots))
		}
		idx = a.highWater.Load()
		need := a.slotOff(idx) + a.stride
		if need > a.dev.Size() {
			// Grow geometrically to amortize; growth is
			// administrative and uncharged.
			newSize := a.dev.Size() * 2
			if newSize < need {
				newSize = need
			}
			a.dev.Grow(newSize)
		}
		a.highWater.Store(idx + 1)
		if !a.deferBits {
			a.dev.WriteU32(highWaterOff, idx+1)
		}
	}
	a.setBit(idx, true)
	a.live++
	return Handle(idx + 1)
}

// AllocRun allocates n consecutive slots starting at the high-water mark
// and returns the handle of the first; handles h .. h+n-1 address the run
// in order, at Stride-spaced device offsets, so the caller can store all
// payloads with one WriteSpanExclusive. The free list is deliberately
// bypassed: recycled slots are scattered, and the point of a run is
// contiguity.
//
// Where AllocRaw costs three device accesses per slot (bitmap
// read-modify-write plus the high-water store), AllocRun persists the
// whole run's allocation state in two: the covered bitmap byte range is
// rebuilt from the volatile liveWords mirror — in eager mode the mirror is
// in lockstep with the device, so the rebuild needs no read — and stored
// in one write, followed by one high-water store. In deferred mode the
// touched words join the dirty set exactly as per-slot allocation would.
// Bulk construction of a 10^5-octant tree is therefore charged O(bitmap
// bytes), not O(slots), of device traffic.
func (a *Arena) AllocRun(n int) Handle {
	if n <= 0 {
		panic("pmem: AllocRun length must be positive")
	}
	start := a.highWater.Load()
	if int(start)+n > a.maxSlots {
		panic(fmt.Sprintf("pmem: arena capacity %d exhausted by run of %d slots at %d", a.maxSlots, n, start))
	}
	end := start + uint32(n)
	if need := a.slotOff(end-1) + a.stride; need > a.dev.Size() {
		newSize := a.dev.Size() * 2
		if newSize < need {
			newSize = need
		}
		a.dev.Grow(newSize)
	}
	a.highWater.Store(end)
	if lastWord := int((end - 1) / 64); lastWord >= len(a.liveWords) {
		grown := make([]uint64, lastWord+1)
		copy(grown, a.liveWords)
		a.liveWords = grown
	}
	for i := start; i < end; {
		wi := int(i / 64)
		count := 64 - i%64
		if rem := end - i; rem < count {
			count = rem
		}
		mask := ^uint64(0)
		if count < 64 {
			mask = (uint64(1)<<count - 1) << (i % 64)
		}
		a.liveWords[wi] |= mask
		if a.deferBits {
			a.dirty[wi] = struct{}{}
		}
		i += count
	}
	a.live += n
	if !a.deferBits {
		bLo := int(start / 8)
		bHi := int((end + 7) / 8)
		buf := make([]byte, bHi-bLo)
		for bi := bLo; bi < bHi; bi++ {
			buf[bi-bLo] = byte(a.liveWords[bi/8] >> (8 * (bi % 8)))
		}
		a.dev.WriteAt(headerSize+bLo, buf)
		a.dev.WriteU32(highWaterOff, end)
	}
	return Handle(start + 1)
}

// Free releases the slot. Freeing the nil handle is a no-op; double frees
// panic, because they indicate octree corruption.
func (a *Arena) Free(h Handle) {
	if h.IsNil() {
		return
	}
	idx := a.index(h)
	if !a.bit(idx) {
		panic(fmt.Sprintf("pmem: double free of handle %d", h))
	}
	a.setBit(idx, false)
	a.free = append(a.free, idx)
	a.live--
}

// index converts a handle to a 0-based slot index, validating range.
func (a *Arena) index(h Handle) uint32 {
	if h.IsNil() {
		panic("pmem: nil handle dereference")
	}
	idx := uint32(h - 1)
	if hw := a.highWater.Load(); idx >= hw {
		panic(fmt.Sprintf("pmem: handle %d beyond high water %d", h, hw))
	}
	return idx
}

// Live reports whether h refers to a currently allocated slot. Used by
// mark-and-sweep to skip already-free slots.
func (a *Arena) Live(h Handle) bool {
	if h.IsNil() {
		return false
	}
	idx := uint32(h - 1)
	if idx >= a.highWater.Load() {
		return false
	}
	return a.bit(idx)
}

// Read copies the slot payload into p (up to slotSize bytes).
func (a *Arena) Read(h Handle, p []byte) {
	idx := a.index(h)
	if len(p) > a.slotSize {
		p = p[:a.slotSize]
	}
	a.dev.ReadAt(a.slotOff(idx), p)
}

// Write copies p into the slot payload (up to slotSize bytes).
func (a *Arena) Write(h Handle, p []byte) {
	idx := a.index(h)
	if len(p) > a.slotSize {
		p = p[:a.slotSize]
	}
	a.dev.WriteAt(a.slotOff(idx), p)
}

// WriteExclusive copies p into the slot payload like Write, but performs
// the device store under the device's exclusive lock. The persist
// pipeline's background worker uses it for octant writeback: slot
// payloads are not cache-line aligned, so a worker write and a mutator
// write to ADJACENT slots can share a line, which the shared-lock write
// path only tolerates while media tracking is off (see
// nvbm.Device.WriteAtExclusive).
func (a *Arena) WriteExclusive(h Handle, p []byte) {
	idx := a.index(h)
	if len(p) > a.slotSize {
		p = p[:a.slotSize]
	}
	a.dev.WriteAtExclusive(a.slotOff(idx), p)
}

// Stride returns the allocated bytes per slot: the payload size rounded
// up to 8-byte alignment. Consecutive slot offsets differ by exactly
// Stride.
func (a *Arena) Stride() int { return a.stride }

// WriteSpanExclusive stores p — the images of one or more CONSECUTIVE
// slots, laid out at Stride intervals starting with slot h — in a single
// exclusive device access. The persist pipeline's worker coalesces a
// batch of adjacent writeback records into spans: one store amortizes the
// per-access device latency and the exclusive lock across the run, which
// is where group persistence earns its name. The caller must own every
// slot the span covers (the inter-record padding bytes are written too;
// they are zero in fresh slots and unobservable through Read).
func (a *Arena) WriteSpanExclusive(h Handle, p []byte) {
	a.dev.WriteAtExclusive(a.slotOff(a.index(h)), p)
}

// BitWord is one deferred allocation-bitmap word: the 64-slot word at
// index Index held value Val when TakeDirtyBits snapshotted it. The
// little-endian encoding of Val is byte-for-byte the persistent bitmap's
// layout (slot i lives in byte i/8, bit i%8).
type BitWord struct {
	Index int
	Val   uint64
}

// SetDeferredBits toggles deferred bitmap persistence (see the deferBits
// field). Turning it off flushes any still-dirty words and the high-water
// mark to the device synchronously, restoring the eager invariant.
// Mutator-only; callers abandoning an arena after a simulated crash
// simply never turn it off.
func (a *Arena) SetDeferredBits(on bool) {
	if on == a.deferBits {
		return
	}
	if on {
		a.deferBits = true
		if a.dirty == nil {
			a.dirty = make(map[int]struct{})
		}
		return
	}
	words, hw := a.TakeDirtyBits(nil)
	a.deferBits = false
	var b [8]byte
	for _, w := range words {
		binary.LittleEndian.PutUint64(b[:], w.Val)
		off := headerSize + 8*w.Index
		n := 8
		if rem := a.bitmapBytes() - 8*w.Index; rem < n {
			n = rem
		}
		a.dev.WriteAt(off, b[:n])
	}
	a.dev.WriteU32(highWaterOff, hw)
}

// TakeDirtyBits snapshots every bitmap word dirtied since the last take
// (appending to dst) along with the current high-water mark, and clears
// the dirty set. The persist pipeline calls it at enqueue time, so the
// snapshot captures exactly the allocations and frees of the versions up
// to the one being enqueued — the worker lands it before that version's
// commit record flips. Mutator-only.
func (a *Arena) TakeDirtyBits(dst []BitWord) ([]BitWord, uint32) {
	for wi := range a.dirty {
		var v uint64
		if wi < len(a.liveWords) {
			v = a.liveWords[wi]
		}
		dst = append(dst, BitWord{Index: wi, Val: v})
		delete(a.dirty, wi)
	}
	return dst, a.highWater.Load()
}

// WriteBitsExclusive lands a TakeDirtyBits snapshot: the words are sorted
// and adjacent ones coalesced into single exclusive device writes (a
// step's allocations are near-sequential, so a few thousand bit flips
// typically collapse into one span), then the high-water mark is stored.
// Words given more than once apply last-wins, so a worker may concatenate
// the snapshots of a whole commit group in enqueue order. Safe from the
// persist worker: in deferred mode the mutator never writes the bitmap
// or high-water device bytes itself. A power cut mid-span tears at line
// granularity — untouched words keep their old durable value, which
// describes only slots no durable root references (leaks at worst).
func (a *Arena) WriteBitsExclusive(words []BitWord, highWater uint32) {
	if len(words) > 0 {
		sorted := make([]BitWord, len(words))
		copy(sorted, words)
		// Stable: duplicate Indexes keep their given order, so last-wins
		// below really applies the NEWEST snapshot of a word. An unstable
		// sort could land a pre-allocation value of a word over the
		// snapshot that set the new version's bits — clearing, on the
		// device, slots the version flipped right afterwards references.
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
		buf := make([]byte, 0, 8*len(sorted))
		flush := func(start int) {
			off := headerSize + 8*start
			n := len(buf)
			if rem := a.bitmapBytes() - 8*start; rem < n {
				n = rem
			}
			a.dev.WriteAtExclusive(off, buf[:n])
		}
		start := -1
		for i, w := range sorted {
			if i > 0 && w.Index == sorted[i-1].Index {
				// Duplicate: overwrite in place, last wins.
				binary.LittleEndian.PutUint64(buf[len(buf)-8:], w.Val)
				continue
			}
			if start >= 0 && w.Index != sorted[i-1].Index+1 {
				flush(start)
				buf = buf[:0]
				start = -1
			}
			if start < 0 {
				start = w.Index
			}
			buf = binary.LittleEndian.AppendUint64(buf, w.Val)
		}
		if start >= 0 {
			flush(start)
		}
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], highWater)
	a.dev.WriteAtExclusive(highWaterOff, b[:])
}

// ReadField copies len(p) payload bytes starting at field offset off.
func (a *Arena) ReadField(h Handle, off int, p []byte) {
	idx := a.index(h)
	if off < 0 || off+len(p) > a.slotSize {
		panic(fmt.Sprintf("pmem: field [%d,%d) outside slot of %d bytes", off, off+len(p), a.slotSize))
	}
	a.dev.ReadAt(a.slotOff(idx)+off, p)
}

// WriteField writes p at field offset off within the slot payload.
func (a *Arena) WriteField(h Handle, off int, p []byte) {
	idx := a.index(h)
	if off < 0 || off+len(p) > a.slotSize {
		panic(fmt.Sprintf("pmem: field [%d,%d) outside slot of %d bytes", off, off+len(p), a.slotSize))
	}
	a.dev.WriteAt(a.slotOff(idx)+off, p)
}

// SetRoot stores v in persistent root slot i. PM-octree keeps ADDR(Vi) and
// ADDR(Vi-1) here; swapping them is the atomic commit point of a time step.
func (a *Arena) SetRoot(i int, v uint64) {
	if i < 0 || i >= NumRoots {
		panic(fmt.Sprintf("pmem: root index %d out of range", i))
	}
	a.dev.WriteU64(rootTableOff+8*i, v)
}

// Root loads persistent root slot i.
func (a *Arena) Root(i int) uint64 {
	if i < 0 || i >= NumRoots {
		panic(fmt.Sprintf("pmem: root index %d out of range", i))
	}
	return a.dev.ReadU64(rootTableOff + 8*i)
}

// SlotRange returns the device byte range [off, off+n) backing h's
// payload, so media-integrity checks (per-line CRC validation) can be
// scoped to exactly the bytes a version's octants occupy.
func (a *Arena) SlotRange(h Handle) (off, n int) {
	return a.slotOff(a.index(h)), a.slotSize
}

// DataOffset returns the device offset where slot payloads begin; bytes
// below it are allocator metadata (header, roots, bitmap). Wear analyses
// separate the two regions: metadata lines are structurally hot.
func (a *Arena) DataOffset() int { return a.slotsBase() }

// SlotSize returns the user payload size per slot.
func (a *Arena) SlotSize() int { return a.slotSize }

// LiveCount returns the number of currently allocated slots.
func (a *Arena) LiveCount() int { return a.live }

// HighWater returns the number of slots ever handed out; handles range over
// [1, HighWater].
func (a *Arena) HighWater() uint32 { return a.highWater.Load() }

// Device returns the underlying memory device (for statistics).
func (a *Arena) Device() *nvbm.Device { return a.dev }

// LiveWords returns the volatile allocation-bitmap mirror, 64 slots per
// uint64, bit i%64 of word i/64 set iff slot i is allocated. It is a
// host-side view: reading it charges no device traffic (callers modeling
// a persistent-bitmap scan account for it explicitly, e.g. via
// Device().ChargeReadN). The slice is owned by the arena and mutated by
// every Alloc/Free; callers must not modify or retain it.
func (a *Arena) LiveWords() []uint64 { return a.liveWords }

// SetBudget sets the slot capacity used for utilization tracking. Zero
// disables tracking (utilization reports 0).
func (a *Arena) SetBudget(slots int) { a.budget = slots }

// Budget returns the configured slot capacity.
func (a *Arena) Budget() int { return a.budget }

// Utilization returns live/budget in [0,1], or 0 when no budget is set.
// The paper triggers merging when available space (1-utilization) drops
// below threshold_DRAM or threshold_NVBM.
func (a *Arena) Utilization() float64 {
	if a.budget <= 0 {
		return 0
	}
	u := float64(a.live) / float64(a.budget)
	if u > 1 {
		u = 1
	}
	return u
}

// BytesInUse returns the device bytes consumed by live slots.
func (a *Arena) BytesInUse() int { return a.live * a.stride }

func align8(n int) int { return (n + 7) &^ 7 }
