package pmem

import (
	"reflect"
	"testing"

	"pmoctree/internal/nvbm"
)

// TestAllocRunEquivalence proves a run is indistinguishable, once
// persisted, from the same slots allocated one by one: identical bitmap
// mirror, identical high water, identical reopened state.
func TestAllocRunEquivalence(t *testing.T) {
	devA := nvbm.New(nvbm.NVBM, 0)
	devB := nvbm.New(nvbm.NVBM, 0)
	a := NewArena(devA, 88)
	b := NewArena(devB, 88)
	const n = 300
	for i := 0; i < n; i++ {
		a.AllocRaw()
	}
	h := b.AllocRun(n)
	if h != 1 {
		t.Fatalf("run handle = %d, want 1", h)
	}
	if a.HighWater() != b.HighWater() || a.LiveCount() != b.LiveCount() {
		t.Fatalf("state diverged: hw %d/%d live %d/%d", a.HighWater(), b.HighWater(), a.LiveCount(), b.LiveCount())
	}
	if !reflect.DeepEqual(a.LiveWords(), b.LiveWords()) {
		t.Fatal("liveWords mirrors diverged")
	}
	// The persistent images agree byte for byte over header + bitmap.
	bmBytes := headerSize + a.bitmapBytes()
	bufA := make([]byte, bmBytes)
	bufB := make([]byte, bmBytes)
	devA.ReadAt(0, bufA)
	devB.ReadAt(0, bufB)
	if !reflect.DeepEqual(bufA, bufB) {
		t.Fatal("persistent metadata diverged")
	}
	ra, err := OpenArena(devA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := OpenArena(devB)
	if err != nil {
		t.Fatal(err)
	}
	if ra.LiveCount() != rb.LiveCount() || ra.HighWater() != rb.HighWater() {
		t.Fatal("reopened state diverged")
	}
}

// TestAllocRunAfterChurn checks a run lands above the high-water mark and
// leaves earlier free slots alone, across an arbitrary alloc/free history
// that puts the run start mid-byte and mid-word.
func TestAllocRunAfterChurn(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	a := NewArena(dev, 88)
	var hs []Handle
	for i := 0; i < 77; i++ { // 77: run starts mid-byte and mid-word
		hs = append(hs, a.AllocRaw())
	}
	a.Free(hs[10])
	a.Free(hs[33])
	h := a.AllocRun(130)
	if got, want := uint32(h), uint32(78); got != want {
		t.Fatalf("run starts at handle %d, want %d", got, want)
	}
	for i := uint32(0); i < 130; i++ {
		if !a.Live(Handle(uint32(h) + i)) {
			t.Fatalf("run slot %d not live", i)
		}
	}
	if a.Live(hs[10]) || a.Live(hs[33]) {
		t.Fatal("run resurrected freed slots")
	}
	if a.LiveCount() != 77-2+130 {
		t.Fatalf("live = %d", a.LiveCount())
	}
	// Each run slot is independently writable and readable.
	p := make([]byte, 88)
	for i := 0; i < 130; i += 37 {
		for j := range p {
			p[j] = byte(i + j)
		}
		a.Write(Handle(int(h)+i), p)
	}
	q := make([]byte, 88)
	a.Read(Handle(int(h)+37), q)
	for j := range q {
		if q[j] != byte(37+j) {
			t.Fatalf("slot payload corrupt at byte %d", j)
		}
	}
	// Reopen: the full live set survives, the two freed slots are back on
	// the free list.
	r, err := OpenArena(dev)
	if err != nil {
		t.Fatal(err)
	}
	if r.LiveCount() != a.LiveCount() {
		t.Fatalf("reopened live = %d, want %d", r.LiveCount(), a.LiveCount())
	}
	if r.Live(hs[10]) || !r.Live(Handle(uint32(h)+129)) {
		t.Fatal("reopened liveness wrong")
	}
}

// TestAllocRunDeferred checks deferred-bitmap mode: the run dirties its
// words without touching the device, and a TakeDirtyBits →
// WriteBitsExclusive cycle lands state a reopen can rebuild.
func TestAllocRunDeferred(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	a := NewArena(dev, 88)
	a.AllocRaw()
	a.SetDeferredBits(true)
	h := a.AllocRun(200)
	if dev.ReadU32(highWaterOff) != 1 {
		t.Fatal("deferred run persisted the high-water mark eagerly")
	}
	words, hw := a.TakeDirtyBits(nil)
	if hw != 201 {
		t.Fatalf("snapshot high water = %d, want 201", hw)
	}
	if len(words) != 4 { // slots 1..200 span words 0..3
		t.Fatalf("dirtied %d words, want 4", len(words))
	}
	a.WriteBitsExclusive(words, hw)
	r, err := OpenArena(dev)
	if err != nil {
		t.Fatal(err)
	}
	if r.LiveCount() != 201 || !r.Live(Handle(uint32(h)+199)) {
		t.Fatalf("reopened live = %d", r.LiveCount())
	}
}

// TestAllocRunGrowsAndPanics: a run forces geometric device growth, and
// overrunning the formatted capacity panics like AllocRaw does.
func TestAllocRunGrowsAndPanics(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	a := NewArenaCap(dev, 88, 1000)
	h := a.AllocRun(900)
	if h != 1 || a.HighWater() != 900 {
		t.Fatalf("run = %d, hw = %d", h, a.HighWater())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-capacity run did not panic")
		}
	}()
	a.AllocRun(101)
}
