package pmem

import (
	"testing"

	"pmoctree/internal/nvbm"
)

// FuzzArenaOps drives the allocator with an arbitrary operation script and
// checks it against a reference model, including a mid-script reopen (the
// recovery path).
func FuzzArenaOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 1})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		dev := nvbm.New(nvbm.NVBM, 0)
		a := NewArenaCap(dev, 16, 1024)
		type slot struct {
			h    Handle
			data byte
		}
		var live []slot
		for i, op := range script {
			switch op % 3 {
			case 0: // alloc + write
				h := a.Alloc()
				v := byte(i)
				a.Write(h, []byte{v, v, v, v})
				live = append(live, slot{h, v})
			case 1: // free newest
				if len(live) > 0 {
					a.Free(live[len(live)-1].h)
					live = live[:len(live)-1]
				}
			case 2: // reopen (crash recovery)
				re, err := OpenArena(dev)
				if err != nil {
					t.Fatalf("op %d: reopen: %v", i, err)
				}
				a = re
			}
			if a.LiveCount() != len(live) {
				t.Fatalf("op %d: live %d, model %d", i, a.LiveCount(), len(live))
			}
		}
		// All surviving payloads intact.
		buf := make([]byte, 4)
		for _, s := range live {
			a.Read(s.h, buf)
			for _, b := range buf {
				if b != s.data {
					t.Fatalf("slot %d corrupted: %v != %d", s.h, buf, s.data)
				}
			}
		}
	})
}
