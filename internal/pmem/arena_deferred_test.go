package pmem

import (
	"testing"

	"pmoctree/internal/nvbm"
)

// TestArenaDeferredBits exercises the deferred bitmap-persistence contract:
// while deferral is on, allocs and frees touch only the volatile mirror;
// a TakeDirtyBits snapshot landed via WriteBitsExclusive makes the device
// agree with the mirror, and a crash-style reopen (OpenArena on the raw
// device) rebuilds exactly the snapshotted state.
func TestArenaDeferredBits(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	a := NewArena(dev, 88)
	// A durable baseline allocated eagerly, like the initial committed
	// version before the pipeline starts.
	base := make([]Handle, 10)
	for i := range base {
		base[i] = a.AllocRaw()
	}
	a.SetDeferredBits(true)

	st0 := dev.Stats()
	var hs []Handle
	for i := 0; i < 100; i++ {
		hs = append(hs, a.AllocRaw())
	}
	a.Free(hs[3])
	a.Free(hs[97])
	if w := dev.Stats().Writes - st0.Writes; w != 0 {
		t.Fatalf("deferred allocs/frees charged %d device writes", w)
	}
	if a.Live(hs[3]) || !a.Live(hs[4]) {
		t.Fatal("mirror-backed Live out of lockstep with deferred frees")
	}

	words, hw := a.TakeDirtyBits(nil)
	if len(words) == 0 {
		t.Fatal("no dirty words after 100 allocations")
	}
	if hw != a.HighWater() {
		t.Fatalf("snapshot high water %d, arena %d", hw, a.HighWater())
	}
	a.WriteBitsExclusive(words, hw)
	if more, _ := a.TakeDirtyBits(nil); len(more) != 0 {
		t.Fatalf("dirty set not cleared by take: %d words", len(more))
	}

	// A reopen (the crash-recovery path) must see the landed state.
	b, err := OpenArena(dev)
	if err != nil {
		t.Fatal(err)
	}
	if b.HighWater() != hw {
		t.Fatalf("reopened high water %d, want %d", b.HighWater(), hw)
	}
	if b.LiveCount() != a.LiveCount() {
		t.Fatalf("reopened live count %d, want %d", b.LiveCount(), a.LiveCount())
	}
	if b.Live(hs[3]) || !b.Live(hs[4]) || !b.Live(base[0]) {
		t.Fatal("reopened liveness disagrees with the landed snapshot")
	}
}

// TestArenaDeferredBitsLastWins pins the commit-group concatenation rule:
// when snapshots taken at two enqueue points both contain the same bitmap
// word, WriteBitsExclusive must land the LATER snapshot's value. (A
// regression here once let an unstable sort write a pre-allocation word
// value over the snapshot carrying a newly committed version's bits,
// leaving the flipped version referencing officially-free slots.)
func TestArenaDeferredBitsLastWins(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	a := NewArena(dev, 88)
	a.SetDeferredBits(true)

	h1 := a.AllocRaw() // slot 0
	snap1, hw1 := a.TakeDirtyBits(nil)
	h2 := a.AllocRaw() // slot 1, same bitmap word
	snap2, hw2 := a.TakeDirtyBits(nil)
	if hw2 <= hw1 {
		t.Fatalf("high water did not advance: %d then %d", hw1, hw2)
	}

	// One group commit: both snapshots, enqueue order, newest wins.
	a.WriteBitsExclusive(append(snap1, snap2...), hw2)
	b, err := OpenArena(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Live(h1) || !b.Live(h2) {
		t.Fatalf("reopened liveness h1=%v h2=%v, want both live (older snapshot must not shadow the newer)",
			b.Live(h1), b.Live(h2))
	}
}

// TestArenaDeferredBitsDisableFlush checks that turning deferral off lands
// whatever is still dirty synchronously, restoring the eager invariant.
func TestArenaDeferredBitsDisableFlush(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	a := NewArena(dev, 88)
	a.SetDeferredBits(true)
	h := a.AllocRaw()
	a.SetDeferredBits(false)
	b, err := OpenArena(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Live(h) || b.HighWater() != 1 {
		t.Fatalf("disable did not flush: live=%v hw=%d", b.Live(h), b.HighWater())
	}
	// Back to eager: the next alloc hits the device directly.
	st := dev.Stats()
	a.AllocRaw()
	if dev.Stats().Writes == st.Writes {
		t.Fatal("eager alloc after disable charged no device write")
	}
}
