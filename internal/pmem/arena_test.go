package pmem

import (
	"bytes"
	"testing"
	"testing/quick"

	"pmoctree/internal/nvbm"
)

func newTestArena(t *testing.T, kind nvbm.Kind, slotSize int) *Arena {
	t.Helper()
	return NewArena(nvbm.New(kind, 4096), slotSize)
}

func TestAllocFreeCycle(t *testing.T) {
	a := newTestArena(t, nvbm.NVBM, 32)
	h1 := a.Alloc()
	h2 := a.Alloc()
	if h1 == h2 {
		t.Fatalf("duplicate handles: %d", h1)
	}
	if h1.IsNil() || h2.IsNil() {
		t.Fatal("Alloc returned nil handle")
	}
	if a.LiveCount() != 2 {
		t.Errorf("LiveCount = %d", a.LiveCount())
	}
	a.Free(h1)
	if a.LiveCount() != 1 {
		t.Errorf("LiveCount after free = %d", a.LiveCount())
	}
	// Freed slot is recycled.
	h3 := a.Alloc()
	if h3 != h1 {
		t.Errorf("expected recycled handle %d, got %d", h1, h3)
	}
}

func TestAllocZeroesSlot(t *testing.T) {
	a := newTestArena(t, nvbm.NVBM, 16)
	h := a.Alloc()
	a.Write(h, bytes.Repeat([]byte{0xff}, 16))
	a.Free(h)
	h2 := a.Alloc()
	if h2 != h {
		t.Fatalf("expected recycled slot")
	}
	got := make([]byte, 16)
	a.Read(h2, got)
	if !bytes.Equal(got, make([]byte, 16)) {
		t.Errorf("recycled slot not zeroed: %v", got)
	}
}

func TestReadWritePayload(t *testing.T) {
	a := newTestArena(t, nvbm.NVBM, 24)
	h := a.Alloc()
	payload := []byte("twenty-four byte payload")
	a.Write(h, payload)
	got := make([]byte, 24)
	a.Read(h, got)
	if !bytes.Equal(got, payload) {
		t.Errorf("payload round trip: %q", got)
	}
}

func TestFieldAccess(t *testing.T) {
	a := newTestArena(t, nvbm.NVBM, 32)
	h := a.Alloc()
	a.WriteField(h, 8, []byte{1, 2, 3, 4})
	got := make([]byte, 4)
	a.ReadField(h, 8, got)
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("field round trip: %v", got)
	}
	// Whole-slot read sees the field at its offset.
	full := make([]byte, 32)
	a.Read(h, full)
	if !bytes.Equal(full[8:12], []byte{1, 2, 3, 4}) {
		t.Errorf("field not at offset: %v", full)
	}
}

func TestFieldOutOfRangePanics(t *testing.T) {
	a := newTestArena(t, nvbm.NVBM, 16)
	h := a.Alloc()
	for _, fn := range []func(){
		func() { a.ReadField(h, 12, make([]byte, 8)) },
		func() { a.WriteField(h, -1, make([]byte, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range field")
				}
			}()
			fn()
		}()
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := newTestArena(t, nvbm.NVBM, 8)
	h := a.Alloc()
	a.Free(h)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	a.Free(h)
}

func TestFreeNilIsNoop(t *testing.T) {
	a := newTestArena(t, nvbm.NVBM, 8)
	a.Free(Nil) // must not panic
	if a.LiveCount() != 0 {
		t.Error("Free(Nil) changed live count")
	}
}

func TestNilHandleDerefPanics(t *testing.T) {
	a := newTestArena(t, nvbm.NVBM, 8)
	defer func() {
		if recover() == nil {
			t.Error("nil deref did not panic")
		}
	}()
	a.Read(Nil, make([]byte, 8))
}

func TestArenaGrowth(t *testing.T) {
	a := NewArena(nvbm.New(nvbm.NVBM, 0), 64)
	var handles []Handle
	for i := 0; i < 1000; i++ {
		handles = append(handles, a.Alloc())
	}
	if a.LiveCount() != 1000 {
		t.Fatalf("LiveCount = %d", a.LiveCount())
	}
	// All handles distinct and round-trip data.
	seen := map[Handle]bool{}
	for i, h := range handles {
		if seen[h] {
			t.Fatalf("duplicate handle %d", h)
		}
		seen[h] = true
		a.WriteField(h, 0, []byte{byte(i), byte(i >> 8)})
	}
	for i, h := range handles {
		got := make([]byte, 2)
		a.ReadField(h, 0, got)
		if got[0] != byte(i) || got[1] != byte(i>>8) {
			t.Fatalf("slot %d corrupted: %v", i, got)
		}
	}
}

func TestLiveQuery(t *testing.T) {
	a := newTestArena(t, nvbm.NVBM, 8)
	h := a.Alloc()
	if !a.Live(h) {
		t.Error("allocated slot not live")
	}
	a.Free(h)
	if a.Live(h) {
		t.Error("freed slot reported live")
	}
	if a.Live(Nil) {
		t.Error("nil handle reported live")
	}
	if a.Live(Handle(9999)) {
		t.Error("out-of-range handle reported live")
	}
}

func TestRoots(t *testing.T) {
	a := newTestArena(t, nvbm.NVBM, 8)
	a.SetRoot(0, 111)
	a.SetRoot(1, 222)
	if a.Root(0) != 111 || a.Root(1) != 222 {
		t.Errorf("roots = %d, %d", a.Root(0), a.Root(1))
	}
	// Swap, as the persist commit point does.
	r0, r1 := a.Root(0), a.Root(1)
	a.SetRoot(0, r1)
	a.SetRoot(1, r0)
	if a.Root(0) != 222 || a.Root(1) != 111 {
		t.Error("root swap failed")
	}
}

func TestRootRangePanics(t *testing.T) {
	a := newTestArena(t, nvbm.NVBM, 8)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a.SetRoot(NumRoots, 1)
}

func TestOpenArenaRecoversState(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	a := NewArena(dev, 16)
	h1 := a.Alloc()
	h2 := a.Alloc()
	h3 := a.Alloc()
	a.Write(h2, []byte("surviving data!!"))
	a.Free(h1)
	a.SetRoot(0, uint64(h2))
	_ = h3

	// Simulate crash: volatile Arena struct is lost, device survives.
	re, err := OpenArena(dev)
	if err != nil {
		t.Fatal(err)
	}
	if re.LiveCount() != 2 {
		t.Errorf("recovered LiveCount = %d, want 2", re.LiveCount())
	}
	if re.HighWater() != 3 {
		t.Errorf("recovered HighWater = %d, want 3", re.HighWater())
	}
	if Handle(re.Root(0)) != h2 {
		t.Errorf("recovered root = %d, want %d", re.Root(0), h2)
	}
	got := make([]byte, 16)
	re.Read(Handle(re.Root(0)), got)
	if string(got) != "surviving data!!" {
		t.Errorf("recovered payload = %q", got)
	}
	// Freed slot must be reusable after recovery.
	h := re.Alloc()
	if h != h1 {
		t.Errorf("recovered free list did not recycle %d (got %d)", h1, h)
	}
}

func TestOpenArenaAcrossFilePersist(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	a := NewArena(dev, 8)
	h := a.Alloc()
	a.Write(h, []byte("disk8byt"))
	a.SetRoot(0, uint64(h))

	path := t.TempDir() + "/arena.img"
	if err := dev.PersistFile(path); err != nil {
		t.Fatal(err)
	}
	dev2, err := nvbm.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := OpenArena(dev2)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	a2.Read(Handle(a2.Root(0)), got)
	if string(got) != "disk8byt" {
		t.Errorf("across-file payload = %q", got)
	}
}

func TestOpenArenaRejectsGarbage(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 256)
	if _, err := OpenArena(dev); err == nil {
		t.Error("expected error for unformatted device")
	}
	small := nvbm.New(nvbm.NVBM, 4)
	if _, err := OpenArena(small); err == nil {
		t.Error("expected error for tiny device")
	}
}

func TestUtilizationAndBudget(t *testing.T) {
	a := newTestArena(t, nvbm.DRAM, 8)
	if a.Utilization() != 0 {
		t.Error("utilization without budget should be 0")
	}
	a.SetBudget(4)
	if a.Budget() != 4 {
		t.Errorf("Budget = %d", a.Budget())
	}
	a.Alloc()
	a.Alloc()
	if got := a.Utilization(); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	for i := 0; i < 6; i++ {
		a.Alloc()
	}
	if got := a.Utilization(); got != 1.0 {
		t.Errorf("Utilization clamped = %v, want 1.0", got)
	}
	if a.BytesInUse() == 0 {
		t.Error("BytesInUse = 0 with live slots")
	}
}

func TestSlotSizeAccessors(t *testing.T) {
	a := newTestArena(t, nvbm.NVBM, 96)
	if a.SlotSize() != 96 {
		t.Errorf("SlotSize = %d", a.SlotSize())
	}
	if a.Device() == nil {
		t.Error("Device() nil")
	}
}

// Property: alloc/free in arbitrary interleavings keeps LiveCount
// consistent and never hands out a live handle twice.
func TestQuickAllocFreeInvariant(t *testing.T) {
	f := func(ops []bool) bool {
		a := NewArena(nvbm.New(nvbm.NVBM, 0), 8)
		liveSet := map[Handle]bool{}
		var handles []Handle
		for _, alloc := range ops {
			if alloc || len(handles) == 0 {
				h := a.Alloc()
				if liveSet[h] {
					return false // double-issued live handle
				}
				liveSet[h] = true
				handles = append(handles, h)
			} else {
				h := handles[len(handles)-1]
				handles = handles[:len(handles)-1]
				delete(liveSet, h)
				a.Free(h)
			}
			if a.LiveCount() != len(liveSet) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: data written to distinct live slots never interferes.
func TestQuickSlotIsolation(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		a := NewArena(nvbm.New(nvbm.NVBM, 0), 4)
		hs := make([]Handle, len(vals))
		for i, v := range vals {
			hs[i] = a.Alloc()
			a.Write(hs[i], []byte{v, v, v, v})
		}
		for i, v := range vals {
			got := make([]byte, 4)
			a.Read(hs[i], got)
			if !bytes.Equal(got, []byte{v, v, v, v}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWearLevelingSpreadsReuse(t *testing.T) {
	// LIFO recycling hammers one slot; FIFO rotates across all freed
	// slots, cutting peak line wear.
	cycle := func(level bool) uint32 {
		dev := nvbm.New(nvbm.NVBM, 0)
		a := NewArenaCap(dev, 64, 1024)
		a.SetWearLeveling(level)
		// Create a pool of freed slots.
		var hs []Handle
		for i := 0; i < 64; i++ {
			hs = append(hs, a.Alloc())
		}
		for _, h := range hs {
			a.Free(h)
		}
		// Alloc/free churn with one live slot.
		for i := 0; i < 512; i++ {
			h := a.AllocRaw()
			a.Write(h, make([]byte, 64))
			a.Free(h)
		}
		// Measure the DATA region only: the allocator's bitmap line is a
		// metadata hot spot either way (see the endurance experiment).
		return dev.WearMax(a.slotsBase(), dev.Size())
	}
	lifo := cycle(false)
	fifo := cycle(true)
	if fifo*4 > lifo {
		t.Errorf("wear leveling ineffective: FIFO max wear %d vs LIFO %d", fifo, lifo)
	}
}

func TestWearLevelingCorrectness(t *testing.T) {
	// FIFO mode must preserve allocator semantics exactly.
	a := NewArenaCap(nvbm.New(nvbm.NVBM, 0), 8, 256)
	a.SetWearLeveling(true)
	live := map[Handle][]byte{}
	for i := 0; i < 400; i++ {
		if i%3 == 2 && len(live) > 0 {
			for h := range live {
				a.Free(h)
				delete(live, h)
				break
			}
			continue
		}
		h := a.Alloc()
		if _, dup := live[h]; dup {
			t.Fatalf("live handle %d reissued", h)
		}
		v := []byte{byte(i), byte(i >> 8), 0, 0, 0, 0, 0, 0}
		a.Write(h, v)
		live[h] = v
	}
	if a.LiveCount() != len(live) {
		t.Fatalf("live %d, model %d", a.LiveCount(), len(live))
	}
	buf := make([]byte, 8)
	for h, v := range live {
		a.Read(h, buf)
		if !bytes.Equal(buf, v) {
			t.Fatalf("slot %d corrupted", h)
		}
	}
}
