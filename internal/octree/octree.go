// Package octree implements the in-core baseline of the evaluation: an
// ephemeral, pointer-linked ("multi-threaded") octree held entirely in
// DRAM, as used by the Gerris flow solver. It supports the five meshing
// routines of §2 — Construct, Refine & Coarsen, Balance, Partition (via
// leaf enumeration in Z-order), and Extract (internal/mesh) — and persists
// only by serializing full snapshots through a file-system-style interface
// (snapshot.go), which is precisely the failure-recovery cost PM-octree is
// designed to remove.
package octree

import (
	"fmt"

	"pmoctree/internal/morton"
)

// DataWords is the number of float64 cell-centered field values stored per
// octant (e.g. volume fraction, pressure, two velocity components).
const DataWords = 4

// Node is one octant. Leaf nodes have no children.
type Node struct {
	Code     morton.Code
	Parent   *Node
	Children [8]*Node
	Data     [DataWords]float64
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool {
	for _, c := range n.Children {
		if c != nil {
			return false
		}
	}
	return true
}

// Level returns the octree level of the node.
func (n *Node) Level() uint8 { return n.Code.Level() }

// Tree is an in-core octree rooted at the unit cube.
type Tree struct {
	Root  *Node
	count int // total nodes
}

// New returns a tree holding only the root octant.
func New() *Tree {
	return &Tree{Root: &Node{Code: morton.Root}, count: 1}
}

// NodeCount returns the total number of octants in the tree.
func (t *Tree) NodeCount() int { return t.count }

// LeafCount returns the number of leaf octants (mesh elements).
func (t *Tree) LeafCount() int {
	n := 0
	t.ForEachLeaf(func(*Node) bool { n++; return true })
	return n
}

// Refine splits a leaf into 8 children, inheriting the parent's data, and
// returns the children. It panics if n is not a leaf.
func (t *Tree) Refine(n *Node) [8]*Node {
	if !n.IsLeaf() {
		panic(fmt.Sprintf("octree: refining non-leaf %v", n.Code))
	}
	for i := 0; i < 8; i++ {
		c := &Node{Code: n.Code.Child(i), Parent: n, Data: n.Data}
		n.Children[i] = c
		t.count++
	}
	return n.Children
}

// Coarsen removes the (leaf) children of n, averaging their data into n.
// It panics unless all of n's children are leaves.
func (t *Tree) Coarsen(n *Node) {
	var sum [DataWords]float64
	for i, c := range n.Children {
		if c == nil {
			panic(fmt.Sprintf("octree: coarsening leaf %v", n.Code))
		}
		if !c.IsLeaf() {
			panic(fmt.Sprintf("octree: coarsening %v with non-leaf child", n.Code))
		}
		for w := 0; w < DataWords; w++ {
			sum[w] += c.Data[w]
		}
		n.Children[i] = nil
		t.count--
	}
	for w := 0; w < DataWords; w++ {
		n.Data[w] = sum[w] / 8
	}
}

// Find returns the node with exactly the given code, or nil.
func (t *Tree) Find(code morton.Code) *Node {
	n := t.Root
	level := code.Level()
	for d := uint8(1); d <= level; d++ {
		idx := code.AncestorAt(d).ChildIndex()
		n = n.Children[idx]
		if n == nil {
			return nil
		}
	}
	return n
}

// FindLeaf returns the deepest node whose region contains code — the leaf
// octant covering that location (or an interior node if code is shallower
// than the local refinement).
func (t *Tree) FindLeaf(code morton.Code) *Node {
	n := t.Root
	level := code.Level()
	for d := uint8(1); d <= level; d++ {
		idx := code.AncestorAt(d).ChildIndex()
		next := n.Children[idx]
		if next == nil {
			return n
		}
		n = next
	}
	return n
}

// ForEachNode visits every node in pre-order (Z-order). The visit function
// returns false to stop early.
func (t *Tree) ForEachNode(fn func(*Node) bool) {
	var walk func(*Node) bool
	walk = func(n *Node) bool {
		if !fn(n) {
			return false
		}
		for _, c := range n.Children {
			if c != nil && !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.Root)
}

// ForEachLeaf visits every leaf in Z-order. The visit function returns
// false to stop early.
func (t *Tree) ForEachLeaf(fn func(*Node) bool) {
	t.ForEachNode(func(n *Node) bool {
		if n.IsLeaf() {
			return fn(n)
		}
		return true
	})
}

// LeafCodes returns the codes of all leaves in Z-order.
func (t *Tree) LeafCodes() []morton.Code {
	var out []morton.Code
	t.ForEachLeaf(func(n *Node) bool { out = append(out, n.Code); return true })
	return out
}

// RefineWhere refines every leaf for which pred is true, repeatedly, until
// no leaf below maxLevel satisfies pred. It returns the number of refine
// operations performed.
func (t *Tree) RefineWhere(pred func(morton.Code) bool, maxLevel uint8) int {
	refined := 0
	queue := []*Node{}
	t.ForEachLeaf(func(n *Node) bool { queue = append(queue, n); return true })
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if !n.IsLeaf() || n.Level() >= maxLevel || !pred(n.Code) {
			continue
		}
		for _, c := range t.Refine(n) {
			queue = append(queue, c)
		}
		refined++
	}
	return refined
}

// CoarsenWhere collapses sibling groups of leaves whose parent satisfies
// pred, repeatedly, until stable. It returns the number of coarsen
// operations performed.
func (t *Tree) CoarsenWhere(pred func(morton.Code) bool) int {
	coarsened := 0
	for {
		var target *Node
		t.ForEachNode(func(n *Node) bool {
			if n.IsLeaf() || !pred(n.Code) {
				return true
			}
			for _, c := range n.Children {
				if c == nil || !c.IsLeaf() {
					return true
				}
			}
			target = n
			return false
		})
		if target == nil {
			return coarsened
		}
		t.Coarsen(target)
		coarsened++
	}
}

// Validate checks structural invariants: parent links, code consistency,
// and the node count. It returns the first violation found.
func (t *Tree) Validate() error {
	seen := 0
	var err error
	t.ForEachNode(func(n *Node) bool {
		seen++
		for i, c := range n.Children {
			if c == nil {
				continue
			}
			if c.Parent != n {
				err = fmt.Errorf("octree: %v child %d has wrong parent", n.Code, i)
				return false
			}
			if c.Code != n.Code.Child(i) {
				err = fmt.Errorf("octree: %v child %d has code %v", n.Code, i, c.Code)
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	if seen != t.count {
		return fmt.Errorf("octree: count %d but %d nodes reachable", t.count, seen)
	}
	return nil
}
