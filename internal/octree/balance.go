package octree

import "pmoctree/internal/morton"

// Balance enforces the 2:1 constraint across faces: any two face-adjacent
// leaves differ by at most one level. Violators are collected in batches —
// one scan finds every too-coarse neighbor, all are refined, and the scan
// repeats until stable (ripple refinement can create new violations one
// level up). Balance returns the number of refine operations performed.
//
// Because the pointer octree stores parent and child links (the
// "multi-threaded" octree Gerris requires), neighbor lookup is a cheap
// top-down walk; contrast with the linear out-of-core octree, which must
// probe all 26 neighbor keys per octant through its B-tree index (§5.4).
func (t *Tree) Balance() int {
	refined := 0
	for {
		violators := t.findViolators()
		if len(violators) == 0 {
			return refined
		}
		for _, n := range violators {
			if n.IsLeaf() {
				t.Refine(n)
				refined++
			}
		}
	}
}

// findViolators scans leaves once, returning distinct leaves more than
// one level coarser than a face-adjacent leaf. Faces shared with siblings
// are skipped: siblings are the same level by construction.
func (t *Tree) findViolators() []*Node {
	seen := map[*Node]bool{}
	var out []*Node
	var scratch [6]morton.Code
	t.ForEachLeaf(func(leaf *Node) bool {
		if leaf.Level() < 2 {
			return true
		}
		parent := leaf.Code.Parent()
		for _, ncode := range leaf.Code.FaceNeighbors(scratch[:0]) {
			if ncode.Parent() == parent {
				continue
			}
			n := t.FindLeaf(ncode)
			if n.IsLeaf() && leaf.Level()-n.Level() > 1 && !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
		return true
	})
	return out
}

// IsBalanced reports whether the tree satisfies the 2:1 face constraint.
func (t *Tree) IsBalanced() bool {
	return len(t.findViolators()) == 0
}
