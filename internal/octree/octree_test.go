package octree

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
)

func TestNewTree(t *testing.T) {
	tr := New()
	if tr.NodeCount() != 1 || tr.LeafCount() != 1 {
		t.Fatalf("counts = %d nodes, %d leaves", tr.NodeCount(), tr.LeafCount())
	}
	if !tr.Root.IsLeaf() {
		t.Error("fresh root is not a leaf")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRefineCoarsen(t *testing.T) {
	tr := New()
	tr.Root.Data = [DataWords]float64{1, 2, 3, 4}
	kids := tr.Refine(tr.Root)
	if tr.NodeCount() != 9 || tr.LeafCount() != 8 {
		t.Fatalf("after refine: %d nodes, %d leaves", tr.NodeCount(), tr.LeafCount())
	}
	for i, k := range kids {
		if k.Data != tr.Root.Data {
			t.Errorf("child %d did not inherit data", i)
		}
		if k.Parent != tr.Root {
			t.Errorf("child %d parent wrong", i)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	kids[3].Data = [DataWords]float64{9, 2, 3, 4}
	tr.Coarsen(tr.Root)
	if tr.NodeCount() != 1 {
		t.Fatalf("after coarsen: %d nodes", tr.NodeCount())
	}
	if tr.Root.Data[0] != 2 { // (7*1 + 9)/8
		t.Errorf("coarsen average = %v", tr.Root.Data[0])
	}
}

func TestRefineNonLeafPanics(t *testing.T) {
	tr := New()
	tr.Refine(tr.Root)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tr.Refine(tr.Root)
}

func TestCoarsenLeafPanics(t *testing.T) {
	tr := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tr.Coarsen(tr.Root)
}

func TestCoarsenNonLeafChildPanics(t *testing.T) {
	tr := New()
	kids := tr.Refine(tr.Root)
	tr.Refine(kids[0])
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tr.Coarsen(tr.Root)
}

func TestFind(t *testing.T) {
	tr := New()
	kids := tr.Refine(tr.Root)
	grand := tr.Refine(kids[2])
	if got := tr.Find(kids[2].Code); got != kids[2] {
		t.Error("Find missed existing child")
	}
	if got := tr.Find(grand[7].Code); got != grand[7] {
		t.Error("Find missed grandchild")
	}
	if got := tr.Find(kids[3].Code.Child(0)); got != nil {
		t.Error("Find invented a node")
	}
	if got := tr.Find(morton.Root); got != tr.Root {
		t.Error("Find missed root")
	}
}

func TestFindLeaf(t *testing.T) {
	tr := New()
	kids := tr.Refine(tr.Root)
	deep := kids[0].Code.Child(0).Child(0)
	if got := tr.FindLeaf(deep); got != kids[0] {
		t.Errorf("FindLeaf(%v) = %v, want %v", deep, got.Code, kids[0].Code)
	}
}

func TestLeafOrderIsZOrder(t *testing.T) {
	tr := New()
	kids := tr.Refine(tr.Root)
	tr.Refine(kids[4])
	codes := tr.LeafCodes()
	if !sort.SliceIsSorted(codes, func(i, j int) bool { return codes[i].Less(codes[j]) }) {
		t.Errorf("leaves not in Z-order: %v", codes)
	}
	if len(codes) != 15 {
		t.Errorf("leaf count = %d", len(codes))
	}
}

func TestForEachEarlyStop(t *testing.T) {
	tr := New()
	tr.Refine(tr.Root)
	visits := 0
	tr.ForEachNode(func(*Node) bool { visits++; return visits < 3 })
	if visits != 3 {
		t.Errorf("early stop visited %d", visits)
	}
	visits = 0
	tr.ForEachLeaf(func(*Node) bool { visits++; return false })
	if visits != 1 {
		t.Errorf("leaf early stop visited %d", visits)
	}
}

func TestRefineWhere(t *testing.T) {
	tr := New()
	// Refine around the domain center down to level 3.
	near := func(c morton.Code) bool {
		x, y, z := c.Center()
		dx, dy, dz := x-0.5, y-0.5, z-0.5
		return dx*dx+dy*dy+dz*dz < 0.1
	}
	n := tr.RefineWhere(near, 3)
	if n == 0 {
		t.Fatal("nothing refined")
	}
	// All leaves satisfying the predicate are at max level.
	tr.ForEachLeaf(func(l *Node) bool {
		if near(l.Code) && l.Level() < 3 {
			t.Errorf("leaf %v satisfies pred below max level", l.Code)
		}
		return true
	})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCoarsenWhere(t *testing.T) {
	tr := New()
	tr.RefineWhere(func(morton.Code) bool { return true }, 2)
	if tr.LeafCount() != 64 {
		t.Fatalf("leaves = %d", tr.LeafCount())
	}
	// Coarsen everything back.
	n := tr.CoarsenWhere(func(morton.Code) bool { return true })
	if tr.NodeCount() != 1 {
		t.Errorf("nodes after full coarsen = %d (coarsened %d)", tr.NodeCount(), n)
	}
}

func TestBalanceEnforces2to1(t *testing.T) {
	tr := New()
	// Refine toward the domain center: root -> child 0 -> its child 7 ->
	// its child 7. The resulting level-4 leaves touch the x=0.5 plane,
	// across which sits the level-1 leaf (1,0,0) — a 2:1 violation.
	n := tr.Root
	n = tr.Refine(n)[0]
	for i := 0; i < 3; i++ {
		n = tr.Refine(n)[7]
	}
	if tr.IsBalanced() {
		t.Fatal("tree should start unbalanced")
	}
	refined := tr.Balance()
	if refined == 0 {
		t.Fatal("balance did nothing")
	}
	if !tr.IsBalanced() {
		t.Fatal("tree unbalanced after Balance")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceNoopOnUniform(t *testing.T) {
	tr := New()
	tr.RefineWhere(func(morton.Code) bool { return true }, 2)
	if n := tr.Balance(); n != 0 {
		t.Errorf("uniform tree balanced with %d refines", n)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	tr := New()
	tr.RefineWhere(func(c morton.Code) bool {
		x, _, _ := c.Center()
		return x < 0.3
	}, 3)
	tr.Balance()
	i := 0.0
	tr.ForEachLeaf(func(n *Node) bool {
		n.Data[0] = i
		i++
		return true
	})

	var buf bytes.Buffer
	if err := tr.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NodeCount() != tr.NodeCount() {
		t.Fatalf("restored %d nodes, want %d", got.NodeCount(), tr.NodeCount())
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	// Same leaves, same data.
	want := map[morton.Code]float64{}
	tr.ForEachLeaf(func(n *Node) bool { want[n.Code] = n.Data[0]; return true })
	got.ForEachLeaf(func(n *Node) bool {
		if want[n.Code] != n.Data[0] {
			t.Errorf("leaf %v data %v, want %v", n.Code, n.Data[0], want[n.Code])
		}
		delete(want, n.Code)
		return true
	})
	if len(want) != 0 {
		t.Errorf("%d leaves missing after restore", len(want))
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a snapshot, definitely"))); err == nil {
		t.Error("expected magic error")
	}
	var buf bytes.Buffer
	tr := New()
	if err := tr.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	if _, err := ReadSnapshot(bytes.NewReader(img[:12])); err == nil {
		t.Error("expected truncation error")
	}
}

func TestSnapshotDeviceRoundTrip(t *testing.T) {
	tr := New()
	tr.RefineWhere(func(morton.Code) bool { return true }, 2)
	dev := nvbm.New(nvbm.NVBM, 0)
	size, err := tr.SnapshotToDevice(dev)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Errorf("snapshot size = %d", size)
	}
	if dev.Stats().Writes == 0 {
		t.Error("snapshot charged no NVBM writes")
	}
	got, err := SnapshotFromDevice(dev)
	if err != nil {
		t.Fatal(err)
	}
	if got.NodeCount() != tr.NodeCount() {
		t.Errorf("restored %d nodes, want %d", got.NodeCount(), tr.NodeCount())
	}
}

// Property: RefineWhere then CoarsenWhere with the complement returns the
// tree to a validated state with leaves only where the predicate held.
func TestQuickAdaptValidates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cx, cy, cz := r.Float64(), r.Float64(), r.Float64()
		rad := 0.05 + r.Float64()*0.2
		pred := func(c morton.Code) bool {
			x, y, z := c.Center()
			dx, dy, dz := x-cx, y-cy, z-cz
			return dx*dx+dy*dy+dz*dz < rad*rad
		}
		tr := New()
		tr.RefineWhere(pred, 4)
		tr.Balance()
		return tr.Validate() == nil && tr.IsBalanced()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: snapshot round trip preserves node count and leaf set for
// randomly adapted trees.
func TestQuickSnapshotIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New()
		cx, cy := r.Float64(), r.Float64()
		tr.RefineWhere(func(c morton.Code) bool {
			x, y, _ := c.Center()
			return (x-cx)*(x-cx)+(y-cy)*(y-cy) < 0.09
		}, 3)
		var buf bytes.Buffer
		if err := tr.WriteSnapshot(&buf); err != nil {
			return false
		}
		got, err := ReadSnapshot(&buf)
		if err != nil {
			return false
		}
		return got.NodeCount() == tr.NodeCount() && got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
