package octree

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/pagefile"
)

// Snapshot format: a header (magic + node count) followed by every node in
// pre-order, each as code (8 bytes) + DataWords float64s. Pre-order means a
// node's parent always precedes it, so the tree rebuilds in one pass.

var snapMagic = [8]byte{'O', 'C', 'S', 'N', 'A', 'P', '0', '1'}

const nodeRecSize = 8 + 8*DataWords

// WriteSnapshot serializes the whole tree to w. This is the in-core
// baseline's persistence path (gfs_output_write in Gerris): every octant is
// written every time, regardless of how little changed since the last
// snapshot.
func (t *Tree) WriteSnapshot(w io.Writer) error {
	if _, err := w.Write(snapMagic[:]); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(t.count))
	if _, err := w.Write(cnt[:]); err != nil {
		return err
	}
	rec := make([]byte, nodeRecSize)
	var werr error
	t.ForEachNode(func(n *Node) bool {
		binary.LittleEndian.PutUint64(rec[0:], uint64(n.Code))
		for i := 0; i < DataWords; i++ {
			binary.LittleEndian.PutUint64(rec[8+8*i:], math.Float64bits(n.Data[i]))
		}
		if _, err := w.Write(rec); err != nil {
			werr = err
			return false
		}
		return true
	})
	return werr
}

// ReadSnapshot reconstructs a tree from a stream written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Tree, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("octree: reading snapshot magic: %w", err)
	}
	if magic != snapMagic {
		return nil, fmt.Errorf("octree: bad snapshot magic %q", magic[:])
	}
	var cnt [8]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, fmt.Errorf("octree: reading snapshot count: %w", err)
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	if n == 0 {
		return nil, fmt.Errorf("octree: snapshot holds no nodes")
	}
	t := &Tree{}
	rec := make([]byte, nodeRecSize)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(r, rec); err != nil {
			return nil, fmt.Errorf("octree: reading node %d: %w", i, err)
		}
		code := morton.Code(binary.LittleEndian.Uint64(rec[0:]))
		var data [DataWords]float64
		for w := 0; w < DataWords; w++ {
			data[w] = math.Float64frombits(binary.LittleEndian.Uint64(rec[8+8*w:]))
		}
		if i == 0 {
			if code != morton.Root {
				return nil, fmt.Errorf("octree: snapshot does not start at the root")
			}
			t.Root = &Node{Code: code, Data: data}
			t.count = 1
			continue
		}
		parent := t.Find(code.Parent())
		if parent == nil {
			return nil, fmt.Errorf("octree: node %v arrives before its parent", code)
		}
		child := &Node{Code: code, Parent: parent, Data: data}
		parent.Children[code.ChildIndex()] = child
		t.count++
	}
	return t, nil
}

// SnapshotToDevice writes the tree as a snapshot file on an NVBM device
// through the page-granularity file-system interface, charging the full
// I/O cost the in-core baseline pays. It returns the snapshot size in
// bytes.
func (t *Tree) SnapshotToDevice(dev *nvbm.Device) (int, error) {
	w := pagefile.NewWriter(dev)
	if err := t.WriteSnapshot(w); err != nil {
		return 0, err
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	return 16 + t.count*nodeRecSize, nil
}

// SnapshotFromDevice reads back a snapshot file written by
// SnapshotToDevice, again through the page interface — the in-core
// baseline's restart path.
func SnapshotFromDevice(dev *nvbm.Device) (*Tree, error) {
	r, err := pagefile.NewReader(dev)
	if err != nil {
		return nil, err
	}
	return ReadSnapshot(r)
}
