package tile

import (
	"math/rand"
	"sync"
	"testing"

	"pmoctree/internal/morton"
	"pmoctree/internal/octree"
	"pmoctree/internal/parallel"
)

// adaptiveCodes builds a Z-ordered adaptive leaf set: refined around a
// diagonal band, like the interface meshes the workloads produce.
func adaptiveCodes(t testing.TB, level uint8) []morton.Code {
	t.Helper()
	tr := octree.New()
	tr.RefineWhere(func(c morton.Code) bool {
		x, y, z := c.Center()
		d := x + y + z - 1.5
		if d < 0 {
			d = -d
		}
		return d < 0.3
	}, level)
	tr.Balance()
	return tr.LeafCodes()
}

func TestResetLayout(t *testing.T) {
	codes := adaptiveCodes(t, 5)
	var s Store
	s.Reset(codes)

	if s.N() != len(codes) {
		t.Fatalf("N = %d, want %d", s.N(), len(codes))
	}
	if got := s.Codes(); len(got) != len(codes) {
		t.Fatalf("Codes len %d, want %d", len(got), len(codes))
	}
	// Tiles partition [0, n) exactly, never exceed capacity, and never
	// span an anchor boundary.
	covered := 0
	for ti := 0; ti < s.Tiles(); ti++ {
		lo, hi := s.TileBounds(ti)
		if hi <= lo {
			t.Fatalf("tile %d empty: [%d, %d)", ti, lo, hi)
		}
		if hi-lo > Size {
			t.Fatalf("tile %d holds %d cells, capacity %d", ti, hi-lo, Size)
		}
		if lo != covered {
			t.Fatalf("tile %d starts at %d, want %d (gap or overlap)", ti, lo, covered)
		}
		a := anchorOf(codes[lo])
		for i := lo; i < hi; i++ {
			if anchorOf(codes[i]) != a {
				t.Fatalf("tile %d spans anchors %v and %v", ti, a, anchorOf(codes[i]))
			}
		}
		covered = hi
	}
	if covered != len(codes) {
		t.Fatalf("tiles cover %d cells, want %d", covered, len(codes))
	}

	// Histogram sums back to the tile and cell counts.
	hist := s.OccupancyHistogram()
	tiles, cells := 0, 0
	for k, n := range hist {
		tiles += n
		cells += k * n
	}
	if tiles != s.Tiles() || cells != s.N() {
		t.Fatalf("histogram sums to %d tiles / %d cells, want %d / %d", tiles, cells, s.Tiles(), s.N())
	}
	if occ := s.Occupancy(); occ <= 0 || occ > 1 {
		t.Fatalf("occupancy %v out of (0, 1]", occ)
	}
}

func TestUniformMeshPacksFullTiles(t *testing.T) {
	tr := octree.New()
	tr.RefineWhere(func(morton.Code) bool { return true }, 4)
	var s Store
	s.Reset(tr.LeafCodes())
	// 16^3 uniform cells = 4096, all same level: every tile must be full.
	hist := s.OccupancyHistogram()
	if hist[Size] != s.Tiles() {
		t.Fatalf("uniform mesh: %d full tiles of %d total; histogram %v", hist[Size], s.Tiles(), hist)
	}
	if s.Occupancy() != 1 {
		t.Fatalf("uniform mesh occupancy %v, want 1", s.Occupancy())
	}
}

func TestDirtyFlags(t *testing.T) {
	codes := adaptiveCodes(t, 4)
	var s Store
	s.Reset(codes)
	marks := []int{0, 3, len(codes) - 1}
	for _, i := range marks {
		s.MarkDirty(i)
	}
	if s.DirtyCount() != len(marks) {
		t.Fatalf("DirtyCount = %d, want %d", s.DirtyCount(), len(marks))
	}
	var got []int
	s.ForEachDirty(func(i int) { got = append(got, i) })
	for k, i := range marks {
		if got[k] != i {
			t.Fatalf("dirty order %v, want %v", got, marks)
		}
	}
	s.ClearDirty()
	if s.DirtyCount() != 0 {
		t.Fatalf("DirtyCount after clear = %d", s.DirtyCount())
	}
	// Reset clears marks too.
	s.MarkDirty(1)
	s.Reset(codes)
	if s.DirtyCount() != 0 {
		t.Fatal("Reset kept dirty flags")
	}
}

func TestStamping(t *testing.T) {
	var s Store
	s.Reset(adaptiveCodes(t, 3))
	if s.ValidFor(0) {
		t.Fatal("fresh store valid before Stamp")
	}
	s.Stamp(7)
	if !s.ValidFor(7) || s.ValidFor(8) {
		t.Fatal("stamp mismatch")
	}
	s.Reset(adaptiveCodes(t, 3))
	if s.ValidFor(7) {
		t.Fatal("Reset kept the stamp")
	}
}

// TestRunTileRangesCoverage: every tile is handed out exactly once, chunk
// boundaries are tile boundaries, and parallel scheduling covers the same
// set as serial.
func TestRunTileRangesCoverage(t *testing.T) {
	var s Store
	s.Reset(adaptiveCodes(t, 5))
	for _, workers := range []int{1, 4} {
		var pool *parallel.Pool
		if workers > 1 {
			// Forced width: real goroutines even on single-CPU machines,
			// so -race sees the concurrent chunk handout.
			pool = parallel.NewForced(workers)
		}
		seen := make([]int32, s.Tiles())
		var mu sync.Mutex
		s.RunTileRanges(pool, 1, func(lo, hi int) {
			mu.Lock()
			for ti := lo; ti < hi; ti++ {
				seen[ti]++
			}
			mu.Unlock()
		})
		for ti, n := range seen {
			if n != 1 {
				t.Fatalf("workers=%d: tile %d scheduled %d times", workers, ti, n)
			}
		}
	}
}

// TestSetLoadRoundTrip: SoA storage round-trips per-cell records.
func TestSetLoadRoundTrip(t *testing.T) {
	codes := adaptiveCodes(t, 4)
	var s Store
	s.Reset(codes)
	rng := rand.New(rand.NewSource(42))
	want := make([][Words]float64, len(codes))
	for i := range want {
		for w := 0; w < Words; w++ {
			want[i][w] = rng.NormFloat64()
		}
		s.Set(i, want[i])
	}
	for i := range want {
		if got := s.Load(i); got != want[i] {
			t.Fatalf("cell %d: %v, want %v", i, got, want[i])
		}
	}
	// The flat slices alias the same storage.
	for w := 0; w < Words; w++ {
		for i := range want {
			if s.F[w][i] != want[i][w] {
				t.Fatalf("F[%d][%d] = %v, want %v", w, i, s.F[w][i], want[i][w])
			}
		}
	}
}
