// Package tile implements the flat Morton-ordered SoA leaf storage behind
// the hot solve/advect kernels. The per-leaf octree payload is a 4-word
// AoS record reached through a tree walk; sweeping it leaf by leaf chases
// pointers and starves the arithmetic. Octree codes that run at hardware
// speed flatten quadrants into Morton-indexed SoA arrays (the p4est AVX2
// representation) or store fixed-size tiles per octree node (the CUDA AMR
// exemplar in SNIPPETS.md). A Store is exactly that layout for PM-octree:
// the Z-order leaf index (core.LeafSnapshot) is the spine, each field word
// becomes one contiguous float64 slice, and the cells are partitioned into
// fixed-capacity tiles that never span a coarse-ancestor boundary — the
// scheduling and reporting granule.
//
// The Store itself is pure layout: it does not know about the octree. The
// owner (core.Tree) gathers leaf data in, stamps the store with its
// mutation sequence number, and scatters dirty cells back; see
// core.LeafTiles / core.ScatterLeafTiles for the invalidation protocol.
// Kernels sweep F[w][lo:hi] ranges handed out by RunTileRanges in
// cache-line-contiguous, tile-aligned chunks.
package tile

import (
	"pmoctree/internal/morton"
	"pmoctree/internal/parallel"
)

// Words is the number of per-cell field words, matching the octree payload
// (core.DataWords). The compile-time asserts in the consuming packages pin
// the agreement.
const Words = 4

// Size is the tile capacity in cells. A tile is the up-to-Size leaves of
// one anchor octant two levels up (4x4x4 descendants when uniformly
// refined, the CUDA-AMR "tile per node" shape scaled to the payload): 64
// cells x 8 bytes = 512 B per field slice per tile, eight cache lines of
// perfectly contiguous sweep per field.
const Size = 64

// anchorOf returns the octant whose descendants may share a tile with c:
// the ancestor two levels up (the 4^3 tile parent), or the root for
// shallow leaves. Equal anchors imply equal levels (the anchor is exactly
// two levels up), so a tile is always Size-or-fewer same-level cells under
// one coarse octant — the occupancy histogram then reads as "how uniformly
// refined is the mesh under its tile anchors".
func anchorOf(c morton.Code) morton.Code {
	if l := c.Level(); l >= 2 {
		return c.AncestorAt(l - 2)
	}
	return morton.Root
}

// Store is one gathered SoA image of a Z-ordered leaf set.
//
// The zero value is an empty store; Reset builds the layout. A Store is
// safe for concurrent READ access and for concurrent writes to DISTINCT
// cells (the dirty flags are one byte per cell, so neighboring cells in
// different pool chunks never share a write target).
type Store struct {
	codes []morton.Code
	// F holds the field values: F[w][i] is word w of cell i, in the same
	// Z-order as codes. Kernels index the slices directly.
	F [Words][]float64

	// starts are the tile boundaries: tile t covers cells
	// [starts[t], starts[t+1]). len(starts) = Tiles()+1.
	starts []int32

	// dirty[i] marks cell i as modified since the last gather/scatter.
	// One byte per cell so parallel sweeps on disjoint ranges never write
	// the same word (a packed bitset would race across tile boundaries).
	dirty []bool

	seq     uint64
	stamped bool
}

// Reset rebuilds the store's layout over the given Z-ordered leaf codes,
// reusing the backing arrays. Field values are NOT cleared — the caller
// gathers them right after — but every dirty flag is. The codes slice is
// copied; the caller keeps ownership.
func (s *Store) Reset(codes []morton.Code) {
	n := len(codes)
	s.codes = append(s.codes[:0], codes...)
	for w := 0; w < Words; w++ {
		if cap(s.F[w]) < n {
			s.F[w] = make([]float64, n)
		} else {
			s.F[w] = s.F[w][:n]
		}
	}
	if cap(s.dirty) < n {
		s.dirty = make([]bool, n)
	} else {
		s.dirty = s.dirty[:n]
		for i := range s.dirty {
			s.dirty[i] = false
		}
	}
	// Tile boundaries: cut at capacity and whenever the anchor octant
	// changes, so a tile never spans two coarse parents.
	s.starts = s.starts[:0]
	s.starts = append(s.starts, 0)
	if n > 0 {
		anchor := anchorOf(codes[0])
		fill := 1
		for i := 1; i < n; i++ {
			a := anchorOf(codes[i])
			if fill >= Size || a != anchor {
				s.starts = append(s.starts, int32(i))
				anchor, fill = a, 1
				continue
			}
			fill++
		}
		s.starts = append(s.starts, int32(n))
	}
	s.stamped = false
}

// N returns the cell count.
func (s *Store) N() int { return len(s.codes) }

// Tiles returns the tile count.
func (s *Store) Tiles() int {
	if len(s.starts) == 0 {
		return 0
	}
	return len(s.starts) - 1
}

// Codes returns the Z-order spine. Read-only; aligned with F.
func (s *Store) Codes() []morton.Code { return s.codes }

// TileBounds returns the half-open cell range of tile t.
func (s *Store) TileBounds(t int) (lo, hi int) {
	return int(s.starts[t]), int(s.starts[t+1])
}

// Load returns all field words of cell i.
func (s *Store) Load(i int) (vals [Words]float64) {
	for w := 0; w < Words; w++ {
		vals[w] = s.F[w][i]
	}
	return
}

// Set stores all field words of cell i without marking it dirty (gather).
func (s *Store) Set(i int, vals [Words]float64) {
	for w := 0; w < Words; w++ {
		s.F[w][i] = vals[w]
	}
}

// MarkDirty records that cell i's fields were modified in place.
func (s *Store) MarkDirty(i int) { s.dirty[i] = true }

// Dirty reports whether cell i is marked.
func (s *Store) Dirty(i int) bool { return s.dirty[i] }

// DirtyCount returns the number of marked cells.
func (s *Store) DirtyCount() int {
	n := 0
	for _, d := range s.dirty {
		if d {
			n++
		}
	}
	return n
}

// ForEachDirty invokes fn for every marked cell in ascending Z-order.
func (s *Store) ForEachDirty(fn func(i int)) {
	for i, d := range s.dirty {
		if d {
			fn(i)
		}
	}
}

// ClearDirty unmarks every cell.
func (s *Store) ClearDirty() {
	for i := range s.dirty {
		s.dirty[i] = false
	}
}

// Stamp records the owner's mutation sequence number the store was
// gathered (or scattered back) at.
func (s *Store) Stamp(seq uint64) { s.seq, s.stamped = seq, true }

// ValidFor reports whether the store still mirrors the owner at seq.
func (s *Store) ValidFor(seq uint64) bool { return s.stamped && s.seq == seq }

// Occupancy returns the mean tile fill fraction (cells / (tiles x Size)).
// Uniformly refined regions pack full tiles; coarse far-field leaves sit
// alone in theirs, so low occupancy means the mesh is paying layout
// overhead for adaptivity, not that cells are missing.
func (s *Store) Occupancy() float64 {
	t := s.Tiles()
	if t == 0 {
		return 0
	}
	return float64(s.N()) / float64(t*Size)
}

// OccupancyHistogram counts tiles by fill: hist[k] is the number of tiles
// holding exactly k cells (k in 1..Size; hist[0] is always 0 for a
// non-empty store).
func (s *Store) OccupancyHistogram() [Size + 1]int {
	var hist [Size + 1]int
	for t := 0; t < s.Tiles(); t++ {
		lo, hi := s.TileBounds(t)
		hist[hi-lo]++
	}
	return hist
}

// RunTileRanges schedules the tiles over the pool in coarse tile-aligned
// chunks: fn receives half-open TILE index ranges whose cells it sweeps
// via TileBounds (or the starts the bounds come from). Ranges covering
// fewer than minCells cells run inline, mirroring Pool.RunMin's serial
// cutoff. Chunk boundaries are tile boundaries, so every chunk sweeps
// whole cache-line-contiguous field runs and two chunks never share a
// tile — the scheduling granularity the SoA layout exists for.
func (s *Store) RunTileRanges(p *parallel.Pool, minCells int, fn func(tileLo, tileHi int)) {
	nt := s.Tiles()
	if nt == 0 {
		return
	}
	minTiles := (minCells + Size - 1) / Size
	p.RunMin(nt, minTiles, fn)
}
