package sim

import (
	"math"
	"testing"
	"time"

	"pmoctree/internal/core"
	"pmoctree/internal/etree"
	"pmoctree/internal/nvbm"
)

func TestDropImpactPhases(t *testing.T) {
	d := NewDropImpact(ImpactConfig{})
	// Before impact: a sphere in the air, gas at the floor.
	if d.Phi(0.5, 0.5, 0.75, 0) > 0 {
		t.Error("no liquid at the release point at t=0")
	}
	if d.Phi(0.5, 0.5, 0.05, 0) < 0 {
		t.Error("liquid at the floor before impact")
	}
	// After impact: liquid film at the floor near the axis, none high up.
	late := d.tHit + 0.2
	if d.Phi(0.5, 0.5, 0.02, late) > 0 {
		t.Error("no lamella at the floor after impact")
	}
	if d.Phi(0.5, 0.5, 0.6, late) < 0 {
		t.Error("liquid still high above the floor after impact")
	}
	// The lamella spreads: a point outside the initial footprint becomes
	// liquid later.
	probeR := 0.22 // beyond the 0.1 radius footprint
	early := d.tHit + 0.01
	if d.Phi(0.5+probeR, 0.5, 0.01, early) < 0 {
		t.Skip("lamella reached the probe immediately; adjust probe")
	}
	if d.Phi(0.5+probeR, 0.5, 0.01, d.tHit+0.5) > 0 {
		t.Error("lamella never spread to the probe radius")
	}
}

func TestDropImpactContinuity(t *testing.T) {
	d := NewDropImpact(ImpactConfig{Steps: 100})
	maxJump := 0.0
	for s := 0; s < 99; s++ {
		for _, p := range [][3]float64{{0.5, 0.5, 0.3}, {0.6, 0.5, 0.05}, {0.5, 0.4, 0.5}} {
			a := d.PhiAtStep(p[0], p[1], p[2], s)
			b := d.PhiAtStep(p[0], p[1], p[2], s+1)
			if j := math.Abs(a - b); j > maxJump {
				maxJump = j
			}
		}
	}
	// The impact instant itself switches regimes; allow a moderate jump.
	if maxJump > 0.3 {
		t.Errorf("interface jumps %v per step", maxJump)
	}
}

func TestDropImpactDrivesAMR(t *testing.T) {
	d := NewDropImpact(ImpactConfig{Steps: 40})
	m := core.Create(core.Config{})
	var prevLeaves int
	for s := 1; s <= 6; s++ {
		sc := StepField(m, d, s, 4)
		if sc.Leaves == 0 {
			t.Fatal("no mesh")
		}
		prevLeaves = sc.Leaves
		m.SetFeatures(FeatureOf(d, s+1))
		m.Persist()
	}
	if prevLeaves < 100 {
		t.Errorf("impact workload produced only %d leaves", prevLeaves)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.IsBalanced() {
		t.Error("mesh unbalanced")
	}
}

func TestBoilingPhases(t *testing.T) {
	b := NewBoiling(BoilingConfig{Seed: 1})
	// Liquid pool below the free surface; gas above.
	if b.Phi(0.5, 0.5, 0.3, 0) > 0 {
		t.Error("no liquid in the pool at t=0")
	}
	if b.Phi(0.5, 0.5, 0.8, 0) < 0 {
		t.Error("liquid above the free surface")
	}
	// Bubbles appear as the floor heats: vapor (positive phi) inside the
	// pool at some later time.
	foundVapor := false
	for _, tt := range []float64{0.3, 0.5, 0.7, 0.9} {
		for _, s := range b.sites {
			if b.Phi(s.x, s.y, 0.04, tt) > 0 {
				foundVapor = true
			}
		}
	}
	if !foundVapor {
		t.Error("no vapor bubbles ever formed near the floor")
	}
	if b.ActiveBubbles(0.0) != 0 {
		t.Error("bubbles before any birth time")
	}
	if b.ActiveBubbles(0.6) == 0 {
		t.Error("no active bubbles mid-run")
	}
}

func TestBoilingDeterministic(t *testing.T) {
	a := NewBoiling(BoilingConfig{Seed: 7})
	b := NewBoiling(BoilingConfig{Seed: 7})
	c := NewBoiling(BoilingConfig{Seed: 8})
	pa := a.Phi(0.4, 0.6, 0.2, 0.5)
	if pb := b.Phi(0.4, 0.6, 0.2, 0.5); pa != pb {
		t.Error("same seed, different field")
	}
	same := true
	for _, tt := range []float64{0.2, 0.5, 0.8} {
		if a.Phi(0.4, 0.6, 0.2, tt) != c.Phi(0.4, 0.6, 0.2, tt) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical fields")
	}
}

func TestBoilingDrivesAMR(t *testing.T) {
	b := NewBoiling(BoilingConfig{Steps: 30, Seed: 3})
	m := core.Create(core.Config{DRAMBudgetOctants: 1024})
	var overlapSeen bool
	for s := 1; s <= 6; s++ {
		StepField(m, b, s, 4)
		vs := m.VersionStats()
		if s > 2 && vs.OverlapRatio > 0.1 {
			overlapSeen = true
		}
		m.SetFeatures(FeatureOf(b, s+1))
		m.Persist()
	}
	if !overlapSeen {
		t.Error("boiling workload never showed version overlap")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllWorkloadsThroughOneDriver(t *testing.T) {
	// The Field interface makes the three intro workloads interchangeable.
	fields := map[string]Field{
		"ejection": NewDroplet(DropletConfig{Steps: 30}),
		"impact":   NewDropImpact(ImpactConfig{Steps: 30}),
		"boiling":  NewBoiling(BoilingConfig{Steps: 30, Seed: 2}),
	}
	for name, f := range fields {
		m := core.Create(core.Config{})
		sc := StepField(m, f, 3, 4)
		if sc.Leaves == 0 {
			t.Errorf("%s: empty mesh", name)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestDelayInjectionOrdersImplementations validates the paper's emulation
// methodology end to end: with spin-delay injection enabled (real
// wall-clock delays per access, as the paper's emulator did), the
// out-of-core baseline is also slower in WALL time, not only in the
// modeled clock.
func TestDelayInjectionOrdersImplementations(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test skipped in -short")
	}
	d := NewDroplet(DropletConfig{Steps: 30})
	run := func(mk func(dev *nvbm.Device) Mesh) (wall time.Duration, modeled time.Duration) {
		dev := nvbm.New(nvbm.NVBM, 0)
		dev.SetDelayInjection(true)
		defer dev.SetDelayInjection(false)
		m := mk(dev)
		start := time.Now()
		Step(m, d, 1, 3)
		return time.Since(start), dev.Stats().Modeled()
	}
	pmWall, pmModeled := run(func(dev *nvbm.Device) Mesh {
		return core.Create(core.Config{NVBMDevice: dev})
	})
	etWall, etModeled := run(func(dev *nvbm.Device) Mesh {
		return etree.New(dev)
	})
	if etModeled <= pmModeled {
		t.Fatalf("modeled: etree %v <= pm %v", etModeled, pmModeled)
	}
	if etWall <= pmWall {
		t.Errorf("wall with injection: etree %v <= pm %v (modeled %v vs %v)",
			etWall, pmWall, etModeled, pmModeled)
	}
	// The injected wall time must at least cover the modeled latency.
	if etWall < etModeled {
		t.Errorf("etree wall %v under modeled %v: injection not delaying", etWall, etModeled)
	}
}
