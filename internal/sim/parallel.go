package sim

import (
	"pmoctree/internal/morton"
	"pmoctree/internal/parallel"
	"pmoctree/internal/telemetry"
)

// StepWorkers is StepField with an explicit worker count: the refinement,
// coarsening and solve PREDICATES — the level-set evaluations that
// dominate the step's CPU time — are pre-evaluated in parallel over a
// snapshot of the leaf codes, while the octree traversal and all device
// accesses stay serial. The mesh evolution (refines, coarsens, field
// values, step counts) is therefore bit-identical at every worker count;
// workers <= 0 selects GOMAXPROCS and 1 is exactly the serial StepField.
func StepWorkers(m Mesh, f Field, step int, maxLevel uint8, workers int) StepCounts {
	if workers == 1 {
		return StepFieldPool(m, f, step, maxLevel, nil)
	}
	return StepFieldPool(m, f, step, maxLevel, parallel.New(workers))
}

// StepFieldPool advances mesh through one AMR time step, scheduling
// predicate evaluation on pool (nil pool: serial, identical to the
// original StepField).
//
// In parallel mode the driver performs extra read-only leaf walks to
// snapshot the codes it pre-evaluates; those walks are charged to the
// modeled devices like any other traversal, so modeled time differs
// from the serial path even though the simulation state does not.
func StepFieldPool(m Mesh, f Field, step int, maxLevel uint8, pool *parallel.Pool) StepCounts {
	// The mesh spans its own routines; the driver only tags them with the
	// step index (core.Tree tags with its own version counter instead).
	telemetry.TracerOf(m).SetStep(uint64(step))
	var sc StepCounts
	serial := pool.Workers() == 1

	refine := RefinePredOf(f, step)
	if !serial {
		refine = memoPred(leafCodes(m), pool, refine)
	}
	sc.Refined = m.RefineWhere(refine, maxLevel)

	coarsen := CoarsenPredOf(f, step)
	if !serial {
		// Coarsening tests the PARENT of a complete sibling group, so the
		// memo covers each current leaf's parent.
		coarsen = memoPred(leafParents(m), pool, coarsen)
	}
	sc.Coarsened = m.CoarsenWhere(coarsen)

	sc.Balanced = m.Balance()

	solve := SolveOf(f, step)
	if !serial {
		// The level set is a pure function of (cell, step): evaluate it
		// once per leaf in parallel and share it across all sweeps. The
		// serial path re-evaluates it every sweep, so this also removes
		// (SolverSweeps-1)/SolverSweeps of the level-set work.
		solve = memoSolve(leafCodes(m), pool, f, step)
	}
	im, indexed := m.(indexedMesh)
	for it := 0; it < SolverSweeps; it++ {
		var n int
		if !serial && indexed {
			// Z-order leaf index: the first sweep walks the tree once to
			// materialize the leaves; in-place sweeps after it iterate the
			// flat snapshot with no interior-node reads at all.
			n = im.UpdateLeavesIndexed(solve)
		} else {
			n = m.UpdateLeaves(solve)
		}
		if it == 0 {
			sc.Solved = n
		}
	}
	if !serial && indexed {
		sc.Leaves = len(im.LeafCodesSnapshot())
	} else {
		sc.Leaves = m.LeafCount()
	}
	return sc
}

// indexedMesh is the optional fast-path contract a mesh may provide
// (core.Tree does): a cached Z-order leaf snapshot and a leaf sweep
// driven by it. Field results are bit-identical to the Mesh methods;
// only the modeled device traffic differs, which the parallel driver
// already does not preserve (see StepFieldPool's doc).
type indexedMesh interface {
	LeafCodesSnapshot() []morton.Code
	UpdateLeavesIndexed(func(morton.Code, *[DataWords]float64) bool) int
}

// leafCodes snapshots the mesh's current leaf codes. Meshes with a leaf
// index serve it from the cached Z-order snapshot (free when still
// valid); otherwise this is a charged read-only traversal, like any
// other leaf walk. Callers consume the slice before mutating the mesh.
func leafCodes(m Mesh) []morton.Code {
	if im, ok := m.(indexedMesh); ok {
		return im.LeafCodesSnapshot()
	}
	codes := make([]morton.Code, 0, m.LeafCount())
	m.ForEachLeaf(func(c morton.Code, _ [DataWords]float64) bool {
		codes = append(codes, c)
		return true
	})
	return codes
}

// leafParents snapshots the distinct parents of the current leaves, in
// first-encounter (Z) order.
func leafParents(m Mesh) []morton.Code {
	var parents []morton.Code
	seen := make(map[morton.Code]struct{})
	for _, c := range leafCodes(m) {
		if c.Level() == 0 {
			continue
		}
		p := c.Parent()
		if _, ok := seen[p]; !ok {
			seen[p] = struct{}{}
			parents = append(parents, p)
		}
	}
	return parents
}

// memoPred evaluates pred over codes on the pool and returns a lookup
// predicate. Codes outside the snapshot (octants created mid-pass —
// refinement recursing into fresh children, coarsening cascading upward)
// fall back to direct evaluation, so the memo is an optimization, never a
// semantic change.
func memoPred(codes []morton.Code, pool *parallel.Pool, pred func(morton.Code) bool) func(morton.Code) bool {
	vals := make([]bool, len(codes))
	pool.Run(len(codes), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			vals[i] = pred(codes[i])
		}
	})
	memo := make(map[morton.Code]bool, len(codes))
	for i, c := range codes {
		memo[c] = vals[i]
	}
	return func(c morton.Code) bool {
		if v, ok := memo[c]; ok {
			return v
		}
		return pred(c)
	}
}

// memoSolve pre-evaluates the level set at every leaf center on the pool
// and returns the relaxation sweep reading from the memo (falling back to
// direct evaluation for unknown codes).
func memoSolve(codes []morton.Code, pool *parallel.Pool, f Field, step int) func(morton.Code, *[DataWords]float64) bool {
	phis := make([]float64, len(codes))
	pool.Run(len(codes), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x, y, z := codes[i].Center()
			phis[i] = f.PhiAtStep(x, y, z, step)
		}
	})
	memo := make(map[morton.Code]float64, len(codes))
	for i, c := range codes {
		memo[c] = phis[i]
	}
	speed := f.Speed()
	return func(c morton.Code, data *[DataWords]float64) bool {
		phi, ok := memo[c]
		if !ok {
			x, y, z := c.Center()
			phi = f.PhiAtStep(x, y, z, step)
		}
		return solveCell(speed, phi, c, data)
	}
}
