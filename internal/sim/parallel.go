package sim

import (
	"sort"

	"pmoctree/internal/morton"
	"pmoctree/internal/parallel"
	"pmoctree/internal/telemetry"
	"pmoctree/internal/tile"
)

// The tiled sweep stores the octree payload verbatim.
var _ = [1]struct{}{}[tile.Words-DataWords]

// minTileSolve is the serial cutoff (in cells) for the tiled relaxation
// sweep: one cell costs an exp and a handful of flops, so small meshes
// run inline.
const minTileSolve = 4096

// StepWorkers is StepField with an explicit worker count: the refinement,
// coarsening and solve PREDICATES — the level-set evaluations that
// dominate the step's CPU time — are pre-evaluated in parallel over a
// snapshot of the leaf codes, while the octree traversal and all device
// accesses stay serial. The mesh evolution (refines, coarsens, field
// values, step counts) is therefore bit-identical at every worker count;
// workers <= 0 selects GOMAXPROCS and 1 is exactly the serial StepField.
func StepWorkers(m Mesh, f Field, step int, maxLevel uint8, workers int) StepCounts {
	if workers == 1 {
		return StepFieldPool(m, f, step, maxLevel, nil)
	}
	return StepFieldPool(m, f, step, maxLevel, parallel.New(workers))
}

// StepFieldPool advances mesh through one AMR time step, scheduling
// predicate evaluation on pool (nil pool: serial, identical to the
// original StepField).
//
// In parallel mode the driver performs extra read-only leaf walks to
// snapshot the codes it pre-evaluates; those walks are charged to the
// modeled devices like any other traversal, so modeled time differs
// from the serial path even though the simulation state does not.
func StepFieldPool(m Mesh, f Field, step int, maxLevel uint8, pool *parallel.Pool) StepCounts {
	// The mesh spans its own routines; the driver only tags them with the
	// step index (core.Tree tags with its own version counter instead).
	telemetry.TracerOf(m).SetStep(uint64(step))
	var sc StepCounts
	serial := pool.Workers() == 1

	refine := RefinePredOf(f, step)
	if !serial {
		refine = memoPred(leafCodes(m), pool, refine)
	}
	sc.Refined = m.RefineWhere(refine, maxLevel)

	coarsen := CoarsenPredOf(f, step)
	if !serial {
		// Coarsening tests the PARENT of a complete sibling group, so the
		// memo covers each current leaf's parent.
		coarsen = memoPred(leafParents(m), pool, coarsen)
	}
	sc.Coarsened = m.CoarsenWhere(coarsen)

	sc.Balanced = m.Balance()

	if tm, tiled := m.(tiledMesh); !serial && tiled {
		// Tiled SoA fast path: gather the leaves into the flat tile store
		// once, run all sweeps over the contiguous field slices, scatter
		// the changed cells back. Bit-identical to the sweeps below.
		sc.Solved, sc.Leaves = tiledSolve(tm, f, step, pool)
		return sc
	}

	solve := SolveOf(f, step)
	if !serial {
		// The level set is a pure function of (cell, step): evaluate it
		// once per leaf in parallel and share it across all sweeps. The
		// serial path re-evaluates it every sweep, so this also removes
		// (SolverSweeps-1)/SolverSweeps of the level-set work.
		solve = memoSolve(leafCodes(m), pool, f, step)
	}
	im, indexed := m.(indexedMesh)
	for it := 0; it < SolverSweeps; it++ {
		var n int
		if !serial && indexed {
			// Z-order leaf index: the first sweep walks the tree once to
			// materialize the leaves; in-place sweeps after it iterate the
			// flat snapshot with no interior-node reads at all.
			n = im.UpdateLeavesIndexed(solve)
		} else {
			n = m.UpdateLeaves(solve)
		}
		if it == 0 {
			sc.Solved = n
		}
	}
	if !serial && indexed {
		sc.Leaves = len(im.LeafCodesSnapshot())
	} else {
		sc.Leaves = m.LeafCount()
	}
	return sc
}

// tiledMesh is the optional SoA fast-path contract (core.Tree provides
// it): a gathered Morton-ordered tile image of the leaves plus the
// scatter writing modified cells back. Field results are bit-identical to
// the Mesh sweeps; only the modeled device traffic differs, which the
// parallel driver already does not preserve (see StepFieldPool's doc).
type tiledMesh interface {
	Mesh
	LeafTiles() *tile.Store
	ScatterLeafTiles(*tile.Store) int
}

// tiledSolve runs the relaxation sweeps over the mesh's tiled SoA leaf
// image: one gather, SolverSweeps flat sweeps scheduled in tile-aligned
// chunks, one scatter of every cell any sweep changed. The per-cell
// update is solveCellFlat — solveCell's arithmetic term for term — and
// the changed counts are integer sums folded in tile order, so the mesh
// evolution is bit-identical to the per-leaf path at every worker count.
func tiledSolve(tm tiledMesh, f Field, step int, pool *parallel.Pool) (solved, leaves int) {
	st := tm.LeafTiles()
	codes := st.Codes()
	n := len(codes)
	// The level set is a pure function of (cell, step): evaluate it once
	// per leaf in parallel and share it across all sweeps, alongside the
	// cell extents the smoothing band scales with.
	phis := make([]float64, n)
	eps := make([]float64, n)
	pool.Run(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x, y, z := codes[i].Center()
			phis[i] = f.PhiAtStep(x, y, z, step)
			eps[i] = codes[i].Extent()
		}
	})
	speed := f.Speed()
	counts := make([]int32, st.Tiles())
	for it := 0; it < SolverSweeps; it++ {
		st.RunTileRanges(pool, minTileSolve, func(tileLo, tileHi int) {
			for ti := tileLo; ti < tileHi; ti++ {
				lo, hi := st.TileBounds(ti)
				changed := int32(0)
				for i := lo; i < hi; i++ {
					if solveCellFlat(speed, phis[i], eps[i], i, st) {
						st.MarkDirty(i)
						changed++
					}
				}
				counts[ti] = changed
			}
		})
		if it == 0 {
			for _, c := range counts {
				solved += int(c)
			}
		}
	}
	tm.ScatterLeafTiles(st)
	return solved, n
}

// indexedMesh is the optional fast-path contract a mesh may provide
// (core.Tree does): a cached Z-order leaf snapshot and a leaf sweep
// driven by it. Field results are bit-identical to the Mesh methods;
// only the modeled device traffic differs, which the parallel driver
// already does not preserve (see StepFieldPool's doc).
type indexedMesh interface {
	LeafCodesSnapshot() []morton.Code
	UpdateLeavesIndexed(func(morton.Code, *[DataWords]float64) bool) int
}

// leafCodes snapshots the mesh's current leaf codes. Meshes with a leaf
// index serve it from the cached Z-order snapshot (free when still
// valid); otherwise this is a charged read-only traversal, like any
// other leaf walk. Callers consume the slice before mutating the mesh.
func leafCodes(m Mesh) []morton.Code {
	if im, ok := m.(indexedMesh); ok {
		return im.LeafCodesSnapshot()
	}
	codes := make([]morton.Code, 0, m.LeafCount())
	m.ForEachLeaf(func(c morton.Code, _ [DataWords]float64) bool {
		codes = append(codes, c)
		return true
	})
	return codes
}

// leafParents snapshots the parents of the current leaves, in
// first-encounter (Z) order. Siblings are contiguous in the Z-ordered
// leaf walk, so comparing against the previous parent removes their
// duplicates; a coarse parent interleaved with deeper subtrees (the root,
// typically) may still appear in several runs, which the memo index
// tolerates — duplicate entries carry the same value.
func leafParents(m Mesh) []morton.Code {
	var parents []morton.Code
	var last morton.Code
	for _, c := range leafCodes(m) {
		if c.Level() == 0 {
			continue
		}
		p := c.Parent()
		if len(parents) > 0 && p == last {
			continue
		}
		parents = append(parents, p)
		last = p
	}
	return parents
}

// memoIndex is a sorted exact-match lookup over a code set — the
// replacement for the per-step map memos. A map pays an allocation and a
// hash per entry every step; the Z-order spine is already (nearly)
// sorted, so a binary search over left-aligned keys reads three flat
// arrays instead. Ties on key (a coarse octant and its first-corner
// descendants share the left-aligned key) are broken by level.
type memoIndex struct {
	keys []uint64
	lvls []uint8
	pos  []int32 // sorted entry -> position in the original slice
}

func buildMemoIndex(codes []morton.Code) *memoIndex {
	n := len(codes)
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool {
		ca, cb := codes[perm[a]], codes[perm[b]]
		ka, kb := ca.Key(), cb.Key()
		if ka != kb {
			return ka < kb
		}
		return ca.Level() < cb.Level()
	})
	ix := &memoIndex{
		keys: make([]uint64, n),
		lvls: make([]uint8, n),
		pos:  make([]int32, n),
	}
	for s, p := range perm {
		c := codes[p]
		ix.keys[s] = c.Key()
		ix.lvls[s] = c.Level()
		ix.pos[s] = p
	}
	return ix
}

// find returns the original-slice position of c, if present.
func (ix *memoIndex) find(c morton.Code) (int, bool) {
	k, l := c.Key(), c.Level()
	s := sort.Search(len(ix.keys), func(j int) bool {
		return ix.keys[j] > k || (ix.keys[j] == k && ix.lvls[j] >= l)
	})
	if s < len(ix.keys) && ix.keys[s] == k && ix.lvls[s] == l {
		return int(ix.pos[s]), true
	}
	return 0, false
}

// memoPred evaluates pred over codes on the pool and returns a lookup
// predicate. Codes outside the snapshot (octants created mid-pass —
// refinement recursing into fresh children, coarsening cascading upward)
// fall back to direct evaluation, so the memo is an optimization, never a
// semantic change.
func memoPred(codes []morton.Code, pool *parallel.Pool, pred func(morton.Code) bool) func(morton.Code) bool {
	vals := make([]bool, len(codes))
	pool.Run(len(codes), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			vals[i] = pred(codes[i])
		}
	})
	ix := buildMemoIndex(codes)
	return func(c morton.Code) bool {
		if i, ok := ix.find(c); ok {
			return vals[i]
		}
		return pred(c)
	}
}

// memoSolve pre-evaluates the level set at every leaf center on the pool
// and returns the relaxation sweep reading from the memo (falling back to
// direct evaluation for unknown codes).
func memoSolve(codes []morton.Code, pool *parallel.Pool, f Field, step int) func(morton.Code, *[DataWords]float64) bool {
	phis := make([]float64, len(codes))
	pool.Run(len(codes), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x, y, z := codes[i].Center()
			phis[i] = f.PhiAtStep(x, y, z, step)
		}
	})
	ix := buildMemoIndex(codes)
	speed := f.Speed()
	return func(c morton.Code, data *[DataWords]float64) bool {
		var phi float64
		if i, ok := ix.find(c); ok {
			phi = phis[i]
		} else {
			x, y, z := c.Center()
			phi = f.PhiAtStep(x, y, z, step)
		}
		return solveCell(speed, phi, c, data)
	}
}
