package sim

import (
	"testing"

	"pmoctree/internal/core"
	"pmoctree/internal/morton"
	"pmoctree/internal/parallel"
)

// leafSnapshot flattens a mesh into an ordered (code, data) listing for
// exact comparison.
type leafSnapshot struct {
	code morton.Code
	data [DataWords]float64
}

func snapshot(m Mesh) []leafSnapshot {
	var out []leafSnapshot
	m.ForEachLeaf(func(c morton.Code, d [DataWords]float64) bool {
		out = append(out, leafSnapshot{c, d})
		return true
	})
	return out
}

// TestStepWorkersDeterminism: running the AMR driver with a worker pool
// must evolve the mesh exactly as the serial driver does — same counts
// each step, same leaves, same field words, same liquid volume.
func TestStepWorkersDeterminism(t *testing.T) {
	const steps = 6

	run := func(workers int) ([]StepCounts, []leafSnapshot, float64, *core.Tree) {
		m := core.Create(core.Config{})
		f := NewDroplet(DropletConfig{Steps: steps})
		counts := make([]StepCounts, steps)
		for s := 0; s < steps; s++ {
			counts[s] = StepWorkers(m, f, s, 5, workers)
		}
		return counts, snapshot(m), LiquidVolume(m), m
	}

	refCounts, refLeaves, refVol, _ := run(1)
	if len(refLeaves) == 0 {
		t.Fatal("serial run produced an empty mesh")
	}
	for _, workers := range []int{2, 4, 7} {
		counts, leaves, vol, m := run(workers)
		for s := range counts {
			if counts[s] != refCounts[s] {
				t.Errorf("workers=%d step %d: counts %+v, serial %+v", workers, s, counts[s], refCounts[s])
			}
		}
		if len(leaves) != len(refLeaves) {
			t.Fatalf("workers=%d: %d leaves, serial %d", workers, len(leaves), len(refLeaves))
		}
		for i := range leaves {
			if leaves[i].code != refLeaves[i].code {
				t.Fatalf("workers=%d: leaf %d code %v, serial %v", workers, i, leaves[i].code, refLeaves[i].code)
			}
			if leaves[i].data != refLeaves[i].data {
				t.Fatalf("workers=%d: leaf %d (%v) field words differ from serial", workers, i, leaves[i].code)
			}
		}
		if vol != refVol {
			t.Errorf("workers=%d: liquid volume %v, serial %v", workers, vol, refVol)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
	}
}

// TestStepForcedPoolDeterminism drives the tiled SoA solve path with
// pools forced past the GOMAXPROCS clamp, so the parallel tile sweeps
// run on real goroutines (and under -race, concurrently) even on
// single-CPU machines — and still evolve the mesh bit-identically to the
// serial driver through randomized-looking refine/coarsen churn.
func TestStepForcedPoolDeterminism(t *testing.T) {
	const steps = 6

	run := func(pool *parallel.Pool) ([]StepCounts, []leafSnapshot, *core.Tree) {
		m := core.Create(core.Config{})
		f := NewDroplet(DropletConfig{Steps: steps})
		counts := make([]StepCounts, steps)
		for s := 0; s < steps; s++ {
			counts[s] = StepFieldPool(m, f, s, 5, pool)
		}
		return counts, snapshot(m), m
	}

	refCounts, refLeaves, _ := run(nil)
	for _, workers := range []int{2, 4, 7} {
		counts, leaves, m := run(parallel.NewForced(workers))
		for s := range counts {
			if counts[s] != refCounts[s] {
				t.Errorf("forced=%d step %d: counts %+v, serial %+v", workers, s, counts[s], refCounts[s])
			}
		}
		if len(leaves) != len(refLeaves) {
			t.Fatalf("forced=%d: %d leaves, serial %d", workers, len(leaves), len(refLeaves))
		}
		for i := range leaves {
			if leaves[i] != refLeaves[i] {
				t.Fatalf("forced=%d: leaf %d (%v) diverges from serial", workers, i, leaves[i].code)
			}
		}
		if err := m.Validate(); err != nil {
			t.Errorf("forced=%d: %v", workers, err)
		}
	}
}

// TestStepWorkersMatchesStepField: StepField is the workers=1 special
// case of the pool driver, so the two entry points must agree exactly.
func TestStepWorkersMatchesStepField(t *testing.T) {
	mA := core.Create(core.Config{})
	mB := core.Create(core.Config{})
	fA := NewDroplet(DropletConfig{Steps: 4})
	fB := NewDroplet(DropletConfig{Steps: 4})
	for s := 0; s < 4; s++ {
		a := StepField(mA, fA, s, 4)
		b := StepWorkers(mB, fB, s, 4, 1)
		if a != b {
			t.Fatalf("step %d: StepField %+v, StepWorkers(1) %+v", s, a, b)
		}
	}
	la, lb := snapshot(mA), snapshot(mB)
	if len(la) != len(lb) {
		t.Fatalf("leaf counts diverge: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("leaf %d diverges between entry points", i)
		}
	}
}
