package sim

import (
	"math"
	"testing"
	"testing/quick"

	"pmoctree/internal/core"
	"pmoctree/internal/etree"
	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
)

func TestDropletPhases(t *testing.T) {
	d := NewDroplet(DropletConfig{})
	// At t=0 the liquid is only at the nozzle: deep points are gas.
	if d.Phi(0.5, 0.5, 0.2, 0) < 0 {
		t.Error("liquid at the bottom at t=0")
	}
	if d.Phi(0.5, 0.5, 0.97, 0) > 0 {
		t.Error("no liquid inside the nozzle at t=0")
	}
	// Mid-flight (pre-pinch): the jet column is liquid below the nozzle.
	if d.Phi(0.5, 0.5, 0.85, 0.2) > 0 {
		t.Error("no jet column at t=0.2")
	}
	// After breakup the main droplet is near the bottom, detached.
	late := 0.8
	frontZ := 0.92 - 0.55*late
	if frontZ < 0.06 {
		frontZ = 0.06
	}
	if d.Phi(0.5, 0.5, frontZ, late) > 0 {
		t.Error("no main droplet after breakup")
	}
	// Midway between nozzle and droplet there is gas after pinch.
	if d.Phi(0.5, 0.5, (frontZ+0.92)/2+0.02, late) < -0.02 {
		t.Error("continuous liquid column after breakup")
	}
}

func TestPhiContinuityAcrossSteps(t *testing.T) {
	// The interface moves smoothly: consecutive steps differ little,
	// which is the source of high octant overlap.
	d := NewDroplet(DropletConfig{Steps: 100})
	maxJump := 0.0
	for s := 0; s < 99; s++ {
		for _, p := range [][3]float64{{0.5, 0.5, 0.3}, {0.45, 0.5, 0.7}, {0.5, 0.55, 0.9}} {
			a := d.PhiAtStep(p[0], p[1], p[2], s)
			b := d.PhiAtStep(p[0], p[1], p[2], s+1)
			if j := math.Abs(a - b); j > maxJump {
				maxJump = j
			}
		}
	}
	if maxJump > 0.15 {
		t.Errorf("interface jumps %v per step; too discontinuous", maxJump)
	}
}

func TestRefinePredTracksInterface(t *testing.T) {
	d := NewDroplet(DropletConfig{})
	pred := d.RefinePred(20)
	hits := 0
	total := 0
	for i := 0; i < 8; i++ {
		c := morton.Root.Child(i)
		total++
		if pred(c) {
			hits++
		}
	}
	if hits == 0 {
		t.Error("no coarse octant intersects the interface band")
	}
	// Root always intersects (it contains the surface).
	if !pred(morton.Root) {
		t.Error("root does not satisfy the band predicate")
	}
}

func TestStepOnAllImplementations(t *testing.T) {
	d := NewDroplet(DropletConfig{Steps: 40})
	const maxLevel = 4

	impls := map[string]Mesh{
		"pm-octree":   core.Create(core.Config{}),
		"in-core":     NewInCore(nvbm.New(nvbm.NVBM, 0)),
		"out-of-core": etree.New(nvbm.New(nvbm.NVBM, 0)),
	}
	counts := map[string][]int{}
	for name, m := range impls {
		for s := 1; s <= 3; s++ {
			sc := Step(m, d, s, maxLevel)
			if sc.Leaves == 0 {
				t.Fatalf("%s: no leaves after step %d", name, s)
			}
			counts[name] = append(counts[name], sc.Leaves)
		}
	}
	// All implementations must produce the same mesh sizes: they run the
	// same algorithm on the same workload.
	for s := 0; s < 3; s++ {
		a, b, c := counts["pm-octree"][s], counts["in-core"][s], counts["out-of-core"][s]
		if a != b || b != c {
			t.Errorf("step %d: leaf counts diverge: pm=%d incore=%d etree=%d", s+1, a, b, c)
		}
	}
}

func TestMeshesAgreeLeafForLeaf(t *testing.T) {
	d := NewDroplet(DropletConfig{Steps: 40})
	pm := core.Create(core.Config{})
	ic := NewInCore(nil)
	for s := 1; s <= 2; s++ {
		Step(pm, d, s, 4)
		Step(ic, d, s, 4)
	}
	want := map[morton.Code][DataWords]float64{}
	ic.ForEachLeaf(func(c morton.Code, data [DataWords]float64) bool {
		want[c] = data
		return true
	})
	n := 0
	pm.ForEachLeaf(func(c morton.Code, data [DataWords]float64) bool {
		n++
		w, ok := want[c]
		if !ok {
			t.Errorf("pm leaf %v missing from in-core mesh", c)
			return false
		}
		for i := range w {
			if math.Abs(w[i]-data[i]) > 1e-12 {
				t.Errorf("leaf %v field %d: %v vs %v", c, i, data[i], w[i])
				return false
			}
		}
		return true
	})
	if n != len(want) {
		t.Errorf("leaf counts: pm=%d incore=%d", n, len(want))
	}
}

func TestSolveWritesAreLocalized(t *testing.T) {
	// Far-field leaves do not change between consecutive solves — the
	// property behind the paper's overlap ratios.
	d := NewDroplet(DropletConfig{Steps: 100})
	m := core.Create(core.Config{})
	Step(m, d, 10, 4)
	changedNext := Step(m, d, 11, 4)
	if changedNext.Solved == 0 {
		t.Fatal("no leaf changed between steps")
	}
	if changedNext.Solved >= m.LeafCount() {
		t.Errorf("all %d leaves changed; writes not localized", m.LeafCount())
	}
}

func TestOverlapRatioInPaperRange(t *testing.T) {
	// Figure 3: overlap between adjacent versions ranges 39-99%.
	d := NewDroplet(DropletConfig{Steps: 60})
	m := core.Create(core.Config{DRAMBudgetOctants: 512})
	m.SetFeatures(d.Feature(1))
	for s := 1; s <= 12; s++ {
		Step(m, d, s, 4)
		vs := m.VersionStats()
		if s > 2 && (vs.OverlapRatio < 0.15 || vs.OverlapRatio > 1.0) {
			t.Errorf("step %d overlap = %v outside plausible range", s, vs.OverlapRatio)
		}
		m.SetFeatures(d.Feature(s + 1))
		m.Persist()
	}
}

func TestVolumeConservationShape(t *testing.T) {
	// Pre-pinch, liquid volume grows as the jet extends; the integral
	// must be positive and bounded by the domain volume.
	d := NewDroplet(DropletConfig{Steps: 100})
	m := NewInCore(nil)
	var prev float64
	for s := 1; s <= 20; s += 5 {
		Step(m, d, s, 5)
		v := LiquidVolume(m)
		if v <= 0 || v >= 0.5 {
			t.Fatalf("step %d liquid volume = %v", s, v)
		}
		prev = v
	}
	_ = prev
}

func TestInCoreSnapshotPolicy(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	m := NewInCore(dev)
	d := NewDroplet(DropletConfig{})
	Step(m, d, 1, 3)
	if err := m.PersistStep(1); err != nil {
		t.Fatal(err)
	}
	if dev.Stats().Writes != 0 {
		t.Error("snapshot written off-period")
	}
	if err := m.PersistStep(10); err != nil {
		t.Fatal(err)
	}
	if dev.Stats().Writes == 0 {
		t.Error("no snapshot written on period")
	}
	// A nil device disables snapshots.
	m2 := NewInCore(nil)
	if err := m2.PersistStep(10); err != nil {
		t.Fatal(err)
	}
}

func TestSmoothstep(t *testing.T) {
	if smoothstep(-2) != 0 || smoothstep(2) != 1 {
		t.Error("clamping broken")
	}
	if v := smoothstep(0); math.Abs(v-0.5) > 1e-12 {
		t.Errorf("smoothstep(0) = %v", v)
	}
}

func TestBalancedAfterStep(t *testing.T) {
	d := NewDroplet(DropletConfig{})
	m := core.Create(core.Config{})
	Step(m, d, 5, 4)
	if !m.IsBalanced() {
		t.Error("mesh unbalanced after step")
	}
}

// Property: all three implementations produce identical leaf sets (codes
// AND field values) under arbitrary droplet-workload step sequences —
// the in-core and PM-octree exactly, the linear octree up to its stricter
// 26-neighbor balance (every face-balanced leaf set it produces must
// cover the same or finer tiling).
func TestQuickImplementationEquivalence(t *testing.T) {
	f := func(seed int64, nsteps uint8) bool {
		steps := int(nsteps%3) + 2
		d := NewDroplet(DropletConfig{Steps: 40})
		pm := core.Create(core.Config{DRAMBudgetOctants: 128, Seed: seed})
		ic := NewInCore(nil)
		for s := 1; s <= steps; s++ {
			Step(pm, d, s, 4)
			Step(ic, d, s, 4)
			pm.Persist()
		}
		want := map[morton.Code][DataWords]float64{}
		ic.ForEachLeaf(func(c morton.Code, data [DataWords]float64) bool {
			want[c] = data
			return true
		})
		same := true
		n := 0
		pm.ForEachLeaf(func(c morton.Code, data [DataWords]float64) bool {
			n++
			w, ok := want[c]
			if !ok || w != data {
				same = false
				return false
			}
			return true
		})
		return same && n == len(want) && pm.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
