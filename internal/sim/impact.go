package sim

import "math"

// ImpactConfig parameterizes the drop-impact workload — the second
// scenario the paper's introduction motivates ("droplet impact on a solid
// surface", citing Josserand & Thoroddsen 2016). A droplet falls onto the
// floor, deforms into a spreading lamella, throws up a crown rim, then
// relaxes toward a sessile cap.
type ImpactConfig struct {
	// Steps is the nominal workload length.
	Steps int
	// Radius is the droplet radius before impact.
	Radius float64
	// FallSpeed is the approach velocity (domain units per unit time).
	FallSpeed float64
	// ReleaseHeight is the initial droplet center height.
	ReleaseHeight float64
}

// Defaults fills unset parameters with the canonical scenario.
func (c ImpactConfig) Defaults() ImpactConfig {
	if c.Steps <= 0 {
		c.Steps = 100
	}
	if c.Radius == 0 {
		c.Radius = 0.1
	}
	if c.FallSpeed == 0 {
		c.FallSpeed = 0.9
	}
	if c.ReleaseHeight == 0 {
		c.ReleaseHeight = 0.75
	}
	return c
}

// DropImpact is the analytic drop-impact interface model (Field).
type DropImpact struct {
	cfg ImpactConfig
	// tHit is the normalized impact time.
	tHit float64
}

// NewDropImpact builds the workload.
func NewDropImpact(cfg ImpactConfig) *DropImpact {
	c := cfg.Defaults()
	return &DropImpact{
		cfg:  c,
		tHit: (c.ReleaseHeight - c.Radius) / c.FallSpeed,
	}
}

// Steps returns the configured step count.
func (d *DropImpact) Steps() int { return d.cfg.Steps }

// Speed returns the approach velocity (Field).
func (d *DropImpact) Speed() float64 { return d.cfg.FallSpeed }

// PhiAtStep evaluates the signed distance at step s (Field).
func (d *DropImpact) PhiAtStep(x, y, z float64, step int) float64 {
	return d.Phi(x, y, z, float64(step)/float64(d.cfg.Steps))
}

// Phi returns the approximate signed distance to the liquid surface at
// normalized time t (negative inside the liquid).
func (d *DropImpact) Phi(x, y, z, t float64) float64 {
	c := d.cfg
	r := math.Sqrt(sq(x-0.5) + sq(y-0.5)) // distance to the impact axis

	if t < d.tHit {
		// Free fall: a sphere descending toward the floor.
		cz := c.ReleaseHeight - c.FallSpeed*t
		return sphereDist(x, y, z, 0.5, 0.5, cz, c.Radius)
	}

	// Post-impact: a spreading lamella whose radius grows like sqrt of
	// time-since-impact (Wagner-type spreading) while its height thins
	// to conserve volume, plus a crown rim torus during the early phase.
	dt := t - d.tHit
	spread := 1 + 2.4*math.Sqrt(dt) // R(t)/R0
	lamR := c.Radius * spread       // lamella radius
	vol := 4.0 / 3.0 * math.Pi * c.Radius * c.Radius * c.Radius
	lamH := vol / (math.Pi * lamR * lamR) // film thickness, volume conserved
	phi := cylinderFloorDist(r, z, lamR, lamH)

	// Crown rim: a torus riding the lamella edge, decaying after the
	// early impact phase.
	crown := 0.35 * c.Radius * math.Exp(-dt/0.08)
	if crown > 0.004 {
		ringR := lamR
		dRing := math.Sqrt(sq(r-ringR) + sq(z-lamH))
		phi = math.Min(phi, dRing-crown)
	}
	return phi
}

// cylinderFloorDist is the signed distance to a pancake of radius lamR and
// height lamH sitting on the floor z=0.
func cylinderFloorDist(r, z, lamR, lamH float64) float64 {
	dr := r - lamR
	dz := z - lamH
	if dr <= 0 && dz <= 0 {
		// Inside: distance to the nearest face (negative).
		return math.Max(dr, dz)
	}
	if dr <= 0 {
		return dz
	}
	if dz <= 0 {
		return dr
	}
	return math.Sqrt(dr*dr + dz*dz)
}

// BoilingConfig parameterizes the rapid-boiling workload — the third
// scenario the paper's introduction motivates ("rapid boiling flow",
// citing Carey 2008): vapor bubbles nucleate on a heated floor beneath a
// liquid pool, grow, detach, rise and burst at the free surface.
type BoilingConfig struct {
	// Steps is the nominal workload length.
	Steps int
	// PoolDepth is the liquid free-surface height.
	PoolDepth float64
	// Sites is the number of nucleation sites on the floor.
	Sites int
	// GrowthRate scales bubble growth (radius per unit time at a site).
	GrowthRate float64
	// RiseSpeed is the detached-bubble ascent speed.
	RiseSpeed float64
	// Seed places the nucleation sites deterministically.
	Seed int64
}

// Defaults fills unset parameters.
func (c BoilingConfig) Defaults() BoilingConfig {
	if c.Steps <= 0 {
		c.Steps = 100
	}
	if c.PoolDepth == 0 {
		c.PoolDepth = 0.6
	}
	if c.Sites <= 0 {
		c.Sites = 6
	}
	if c.GrowthRate == 0 {
		c.GrowthRate = 0.5
	}
	if c.RiseSpeed == 0 {
		c.RiseSpeed = 0.8
	}
	return c
}

// Boiling is the analytic nucleate-boiling interface model (Field). The
// tracked surface separates liquid from vapor: the pool's free surface
// plus every bubble boundary.
type Boiling struct {
	cfg   BoilingConfig
	sites []boilSite
}

type boilSite struct {
	x, y   float64
	birth  float64 // normalized time the first bubble nucleates
	period float64 // bubble cycle length
	detach float64 // radius at departure
}

// NewBoiling builds the workload; sites are placed by a deterministic
// low-discrepancy rule so runs are reproducible.
func NewBoiling(cfg BoilingConfig) *Boiling {
	b := &Boiling{cfg: cfg.Defaults()}
	// Halton-ish placement plus a seed-driven rotation.
	rot := float64(b.cfg.Seed%97) / 97
	for i := 0; i < b.cfg.Sites; i++ {
		u := halton(i+1, 2)
		v := halton(i+1, 3)
		b.sites = append(b.sites, boilSite{
			x:      0.15 + 0.7*math.Mod(u+rot, 1),
			y:      0.15 + 0.7*math.Mod(v+rot*0.5, 1),
			birth:  0.05 + 0.25*halton(i+1, 5),
			period: 0.35 + 0.2*halton(i+1, 7),
			detach: 0.05 + 0.03*halton(i+1, 11),
		})
	}
	return b
}

func halton(i, base int) float64 {
	f, r := 1.0, 0.0
	for i > 0 {
		f /= float64(base)
		r += f * float64(i%base)
		i /= base
	}
	return r
}

// Steps returns the configured step count.
func (b *Boiling) Steps() int { return b.cfg.Steps }

// Speed returns the bubble rise speed (Field).
func (b *Boiling) Speed() float64 { return b.cfg.RiseSpeed }

// PhiAtStep evaluates the signed distance at step s (Field).
func (b *Boiling) PhiAtStep(x, y, z float64, step int) float64 {
	return b.Phi(x, y, z, float64(step)/float64(b.cfg.Steps))
}

// Phi returns the approximate signed distance to the liquid-vapor
// interface at normalized time t. By convention liquid is negative: the
// pool below the free surface, excluding bubble interiors.
func (b *Boiling) Phi(x, y, z, t float64) float64 {
	// Pool free surface (liquid below).
	phi := z - b.cfg.PoolDepth
	// Bubbles carve vapor out of the liquid: phi = max(pool, -bubble).
	for _, s := range b.sites {
		if t < s.birth {
			continue
		}
		// The site emits a bubble each period; model the current one and
		// the previous one (still rising).
		for k := 0; k < 2; k++ {
			cycleStart := s.birth + math.Floor((t-s.birth)/s.period)*s.period - float64(k)*s.period
			if cycleStart < s.birth-1e-12 {
				continue
			}
			age := t - cycleStart
			if age < 0 {
				continue
			}
			rad := math.Min(b.cfg.GrowthRate*age, s.detach)
			var cz float64
			if b.cfg.GrowthRate*age < s.detach {
				cz = rad * 0.8 // growing, attached to the floor
			} else {
				grow := s.detach / b.cfg.GrowthRate
				cz = s.detach*0.8 + b.cfg.RiseSpeed*(age-grow)
			}
			if cz-rad > b.cfg.PoolDepth {
				continue // burst at the surface
			}
			d := sphereDist(x, y, z, s.x, s.y, cz, rad)
			// Vapor inside the bubble: flip the sign against the pool.
			phi = math.Max(phi, -d)
		}
	}
	return phi
}

// ActiveBubbles counts bubbles present at normalized time t (for tests
// and reporting).
func (b *Boiling) ActiveBubbles(t float64) int {
	n := 0
	for _, s := range b.sites {
		if t < s.birth {
			continue
		}
		for k := 0; k < 2; k++ {
			cycleStart := s.birth + math.Floor((t-s.birth)/s.period)*s.period - float64(k)*s.period
			if cycleStart < s.birth-1e-12 {
				continue
			}
			age := t - cycleStart
			if age < 0 {
				continue
			}
			rad := math.Min(b.cfg.GrowthRate*age, s.detach)
			var cz float64
			if b.cfg.GrowthRate*age < s.detach {
				cz = rad * 0.8
			} else {
				grow := s.detach / b.cfg.GrowthRate
				cz = s.detach*0.8 + b.cfg.RiseSpeed*(age-grow)
			}
			if cz-rad <= b.cfg.PoolDepth {
				n++
			}
		}
	}
	return n
}
