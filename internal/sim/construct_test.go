package sim

import (
	"reflect"
	"testing"

	"pmoctree/internal/core"
	"pmoctree/internal/morton"
	"pmoctree/internal/parallel"
)

// meshImage snapshots (code, data) of every leaf in Z-order.
func meshImage(m Mesh) []struct {
	C morton.Code
	D [DataWords]float64
} {
	var out []struct {
		C morton.Code
		D [DataWords]float64
	}
	m.ForEachLeaf(func(c morton.Code, d [DataWords]float64) bool {
		out = append(out, struct {
			C morton.Code
			D [DataWords]float64
		}{c, d})
		return true
	})
	return out
}

// TestConstructInitialMatchesStep: the bulk start-up path must be a
// drop-in replacement for the incremental first step — same mesh, same
// fields, same StepCounts — and the simulation must continue identically
// afterward, at any worker count.
func TestConstructInitialMatchesStep(t *testing.T) {
	d := NewDroplet(DropletConfig{Steps: 40})
	const maxLevel = 5
	pools := map[string]*parallel.Pool{
		"serial":  nil,
		"w4":      parallel.New(4),
		"forced7": parallel.NewForced(7),
	}
	ref := core.Create(core.Config{})
	refSC := StepFieldPool(ref, d, 1, maxLevel, nil)
	ref.Persist()

	for name, pool := range pools {
		t.Run(name, func(t *testing.T) {
			tr := core.Create(core.Config{})
			sc, ok := ConstructInitial(tr, d, 1, maxLevel, pool)
			if !ok {
				t.Fatal("ConstructInitial declined a fresh PM-octree")
			}
			if sc != refSC {
				t.Fatalf("StepCounts = %+v, want %+v", sc, refSC)
			}
			tr.Persist()
			if !reflect.DeepEqual(meshImage(tr), meshImage(ref)) {
				t.Fatal("constructed mesh differs from the incremental first step")
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}

	// Continued stepping stays locked to the incremental path.
	tr := core.Create(core.Config{})
	if _, ok := ConstructInitial(tr, d, 1, maxLevel, parallel.New(4)); !ok {
		t.Fatal("ConstructInitial declined")
	}
	tr.Persist()
	for s := 2; s <= 4; s++ {
		scA := StepFieldPool(ref, d, s, maxLevel, nil)
		scB := StepFieldPool(tr, d, s, maxLevel, nil)
		if scA != scB {
			t.Fatalf("step %d counts diverged: %+v vs %+v", s, scA, scB)
		}
		ref.Persist()
		tr.Persist()
		if !reflect.DeepEqual(meshImage(tr), meshImage(ref)) {
			t.Fatalf("step %d mesh diverged", s)
		}
	}
}

// TestConstructInitialDeclines: meshes without the bulk contract, and
// meshes that already stepped, fall back to the incremental path.
func TestConstructInitialDeclines(t *testing.T) {
	d := NewDroplet(DropletConfig{Steps: 40})
	if _, ok := ConstructInitial(NewInCore(nil), d, 1, 4, nil); ok {
		t.Fatal("ConstructInitial accepted the in-core baseline")
	}
	tr := core.Create(core.Config{})
	StepFieldPool(tr, d, 1, 4, nil)
	tr.Persist()
	if _, ok := ConstructInitial(tr, d, 2, 4, nil); ok {
		t.Fatal("ConstructInitial accepted a non-fresh mesh")
	}
}
