// Package sim provides the driving scientific workload of the evaluation —
// droplet ejection in inkjet printing (§5.1, Figure 1(c)) — and the AMR
// step driver that exercises an octree implementation with it.
//
// The paper runs a Gerris multiphase Navier-Stokes solve; this
// reproduction substitutes a semi-analytic moving-interface model that
// generates the same access pattern the octree observes: a thin refined
// band tracking the liquid surface as a jet emerges from a nozzle, necks,
// pinches off, and breaks into a main droplet plus satellites by capillary
// instability. Between consecutive steps only the band moves, so octant
// overlap between versions is high (39-99% in the paper, Figure 3), which
// is the property PM-octree exploits.
package sim

import "math"

// DropletConfig parameterizes the droplet-ejection interface model. The
// zero value is usable: Defaults fills canonical parameters.
type DropletConfig struct {
	// Steps is the nominal number of time steps of the full ejection
	// sequence; step s corresponds to normalized time s/Steps.
	Steps int
	// NozzleRadius is the jet radius at the nozzle exit.
	NozzleRadius float64
	// JetSpeed is the front advance per unit normalized time.
	JetSpeed float64
	// PinchTime is the normalized time of pinch-off at the nozzle.
	PinchTime float64
	// BreakupTime is the normalized time the ligament shatters into
	// satellite droplets.
	BreakupTime float64
	// Jets is the number of nozzles firing simultaneously, arranged on a
	// square grid in x-y with geometry scaled to fit — a printhead. The
	// weak-scaling experiments grow the problem by adding jets.
	// Default 1.
	Jets int
}

// Defaults fills unset fields with the canonical scenario.
func (c DropletConfig) Defaults() DropletConfig {
	if c.Steps <= 0 {
		c.Steps = 100
	}
	if c.NozzleRadius == 0 {
		c.NozzleRadius = 0.06
	}
	if c.JetSpeed == 0 {
		c.JetSpeed = 0.55
	}
	if c.PinchTime == 0 {
		c.PinchTime = 0.35
	}
	if c.BreakupTime == 0 {
		c.BreakupTime = 0.6
	}
	if c.Jets <= 0 {
		c.Jets = 1
	}
	return c
}

// Droplet is the analytic interface model. The liquid occupies the region
// where Phi < 0; the free surface is the zero level set.
type Droplet struct {
	cfg   DropletConfig
	jets  [][2]float64 // nozzle axis positions in x-y
	grid  int          // jets per printhead row
	scale float64      // lateral geometry scale (1/grid)
}

// NewDroplet builds the workload.
func NewDroplet(cfg DropletConfig) *Droplet {
	d := &Droplet{cfg: cfg.Defaults()}
	d.grid = int(math.Ceil(math.Sqrt(float64(d.cfg.Jets))))
	d.scale = 1 / float64(d.grid)
	for j := 0; j < d.cfg.Jets; j++ {
		gx, gy := j%d.grid, j/d.grid
		d.jets = append(d.jets, [2]float64{
			(float64(gx) + 0.5) * d.scale,
			(float64(gy) + 0.5) * d.scale,
		})
	}
	return d
}

// Jets returns the number of active nozzles.
func (d *Droplet) Jets() int { return d.cfg.Jets }

// Steps returns the configured step count.
func (d *Droplet) Steps() int { return d.cfg.Steps }

// nozzleZ is the nozzle exit plane; the jet travels toward z = 0.
const nozzleZ = 0.92

// Phi returns the approximate signed distance to the liquid surface at
// normalized time t (negative inside the liquid). With multiple jets it is
// the minimum over nozzles; since jets sit on a regular grid and each
// jet's liquid stays inside its column, only the 3x3 neighborhood of grid
// columns around the evaluation point can matter — O(1) per call however
// wide the printhead.
func (d *Droplet) Phi(x, y, z float64, t float64) float64 {
	if len(d.jets) == 1 {
		j := d.jets[0]
		return d.phiSingle(x-j[0]+0.5, y-j[1]+0.5, z, t, d.scale)
	}
	gx := int(math.Floor(x / d.scale))
	gy := int(math.Floor(y / d.scale))
	phi := math.Inf(1)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			cx, cy := gx+dx, gy+dy
			if cx < 0 || cy < 0 || cx >= d.grid || cy >= d.grid {
				continue
			}
			idx := cy*d.grid + cx
			if idx >= len(d.jets) {
				continue
			}
			j := d.jets[idx]
			if p := d.phiSingle(x-j[0]+0.5, y-j[1]+0.5, z, t, d.scale); p < phi {
				phi = p
			}
		}
	}
	if math.IsInf(phi, 1) {
		// Outside every populated column (partial last row): distance to
		// the nearest jet axis as a safe upper bound.
		for _, j := range d.jets {
			if p := d.phiSingle(x-j[0]+0.5, y-j[1]+0.5, z, t, d.scale); p < phi {
				phi = p
			}
		}
	}
	return phi
}

// phiSingle evaluates one jet centered on the (0.5, 0.5) axis with lateral
// radii scaled by s.
func (d *Droplet) phiSingle(x, y, z, t, s float64) float64 {
	c := d.cfg
	nozzleR := c.NozzleRadius * s
	phi := math.Inf(1)

	// Reservoir inside the nozzle: always present.
	phi = math.Min(phi, cylinderDist(x, y, z, nozzleZ, 1.01, nozzleR, nozzleR, nil))

	frontZ := nozzleZ - c.JetSpeed*t
	if frontZ < 0.06 {
		frontZ = 0.06 // droplet lands near the bottom and stays
	}
	dropR := nozzleR * 1.4

	switch {
	case t < c.PinchTime:
		// Attached jet: column from the nozzle to the front, necking
		// near the nozzle as pinch-off approaches.
		neckDepth := 0.97 * (t / c.PinchTime)
		neckZ := nozzleZ - 0.035
		radius := func(z float64) float64 {
			g := math.Exp(-sq((z - neckZ) / 0.02))
			return nozzleR * (1 - neckDepth*g)
		}
		phi = math.Min(phi, cylinderDist(x, y, z, frontZ, nozzleZ, nozzleR, nozzleR, radius))
		phi = math.Min(phi, sphereDist(x, y, z, 0.5, 0.5, frontZ, dropR*(0.4+0.6*t/c.PinchTime)))

	case t < c.BreakupTime:
		// Pinched: a free ligament chasing the main droplet.
		phi = math.Min(phi, sphereDist(x, y, z, 0.5, 0.5, frontZ, dropR))
		ligTop := nozzleZ - 0.02 - 0.25*(t-c.PinchTime)/(c.BreakupTime-c.PinchTime)
		ligBot := frontZ + dropR*0.9
		if ligBot < ligTop {
			shrink := 1 - 0.6*(t-c.PinchTime)/(c.BreakupTime-c.PinchTime)
			phi = math.Min(phi, cylinderDist(x, y, z, ligBot, ligTop, nozzleR*0.45*shrink, nozzleR*0.3*shrink, nil))
		}

	default:
		// Capillary breakup: main droplet plus three satellites.
		phi = math.Min(phi, sphereDist(x, y, z, 0.5, 0.5, frontZ, dropR))
		lag := (t - c.BreakupTime)
		sats := [3]struct{ off, r, v float64 }{
			{0.10, 0.030, 0.85},
			{0.16, 0.022, 0.70},
			{0.21, 0.018, 0.55},
		}
		for _, sat := range sats {
			sz := frontZ + sat.off + lag*c.JetSpeed*(1-sat.v)
			if sz > nozzleZ-0.02 {
				continue // reabsorbed
			}
			phi = math.Min(phi, sphereDist(x, y, z, 0.5, 0.5, sz, sat.r*s))
		}
	}
	return phi
}

// PhiAtStep evaluates Phi at the normalized time of step s.
func (d *Droplet) PhiAtStep(x, y, z float64, step int) float64 {
	return d.Phi(x, y, z, float64(step)/float64(d.cfg.Steps))
}

// Inside reports whether the point is in the liquid at step s.
func (d *Droplet) Inside(x, y, z float64, step int) bool {
	return d.PhiAtStep(x, y, z, step) < 0
}

// sphereDist is the signed distance to a sphere surface.
func sphereDist(x, y, z, cx, cy, cz, r float64) float64 {
	return math.Sqrt(sq(x-cx)+sq(y-cy)+sq(z-cz)) - r
}

// cylinderDist approximates the signed distance to an axis-aligned (z)
// cylinder segment centered at (0.5, 0.5), spanning [z0, z1], with radius
// interpolating r0 (bottom) to r1 (top), optionally modulated by radius(z).
func cylinderDist(x, y, z, z0, z1, r0, r1 float64, radius func(float64) float64) float64 {
	dAxis := math.Sqrt(sq(x-0.5) + sq(y-0.5))
	zc := math.Max(z0, math.Min(z1, z))
	var r float64
	if radius != nil {
		r = radius(zc)
	} else {
		f := 0.0
		if z1 > z0 {
			f = (zc - z0) / (z1 - z0)
		}
		r = r0 + (r1-r0)*f
	}
	dr := dAxis - r
	dz := math.Max(z0-z, z-z1)
	if dz <= 0 {
		return dr
	}
	if dr <= 0 {
		return dz
	}
	return math.Sqrt(dr*dr + dz*dz)
}

func sq(v float64) float64 { return v * v }
