package sim

import (
	"math"

	"pmoctree/internal/morton"
)

// halfDiag returns half the space diagonal of an octant.
func halfDiag(c morton.Code) float64 {
	return c.Extent() * math.Sqrt(3) / 2
}

// Speed returns the jet's characteristic velocity (Field).
func (d *Droplet) Speed() float64 { return d.cfg.JetSpeed }

// RefinePred returns the refinement criterion for step s (see
// RefinePredOf).
func (d *Droplet) RefinePred(step int) func(morton.Code) bool {
	return RefinePredOf(d, step)
}

// CoarsenPred returns the coarsening criterion for step s (see
// CoarsenPredOf).
func (d *Droplet) CoarsenPred(step int) func(morton.Code) bool {
	return CoarsenPredOf(d, step)
}

// Feature returns the feature-directed sampling predicate for the next
// step (see FeatureOf).
func (d *Droplet) Feature(nextStep int) func(morton.Code, [DataWords]float64) bool {
	return FeatureOf(d, nextStep)
}

// StepCounts reports what one AMR step did.
type StepCounts struct {
	Refined   int // leaf splits (Refine routine)
	Coarsened int // sibling collapses (Coarsen routine)
	Balanced  int // splits forced by the 2:1 constraint (Balance routine)
	Solved    int // leaves whose field values changed (Solve routine)
	Leaves    int // mesh elements after the step
}

// SolverSweeps is the number of relaxation sweeps the Solve routine makes
// per time step. Incompressible flow solvers iterate a pressure solve to
// convergence every step, so octants near the interface are read and
// written several times per step — the access pattern that makes DRAM
// residency (C0) profitable.
const SolverSweeps = 6

// Step advances mesh through one AMR time step of the droplet workload:
// Refine, Coarsen, Balance, then Solve (an iterative finite-volume-style
// relaxation of leaf fields toward the interface model). Persistence is
// the caller's policy — PM-octree persists every step, the in-core
// baseline snapshots periodically, the out-of-core baseline is implicitly
// persistent.
func Step(m Mesh, d *Droplet, step int, maxLevel uint8) StepCounts {
	return StepField(m, d, step, maxLevel)
}

// Solve returns the per-leaf relaxation sweep for step s: the volume
// fraction is re-sampled from the interface model, and the pressure proxy
// relaxes toward its target (one Jacobi-style iteration per sweep), so
// repeated sweeps converge. Leaves whose quantized values do not change
// (the far field, and converged cells on later sweeps) report false, so
// persistent implementations skip the write — this locality is what
// produces the paper's high inter-step overlap ratios. Fields are
// quantized to solver precision: far-field cells whose values drift below
// it are genuinely unchanged, matching a real solver's converged far
// field; without this, every cell would be rewritten every step and no
// version sharing could survive.
func (d *Droplet) Solve(step int) func(morton.Code, *[DataWords]float64) bool {
	return SolveOf(d, step)
}

// quantize rounds to the solver's field precision (1e-3).
func quantize(v float64) float64 {
	return math.Round(v*1000) / 1000
}

// smoothstep clamps v into [0,1] with a cubic ramp over [-1, 1].
func smoothstep(v float64) float64 {
	t := (v + 1) / 2
	if t <= 0 {
		return 0
	}
	if t >= 1 {
		return 1
	}
	return t * t * (3 - 2*t)
}

// LiquidVolume integrates the volume fraction over the mesh — the
// conserved quantity tests use to validate the simulation.
func LiquidVolume(m Mesh) float64 {
	v := 0.0
	m.ForEachLeaf(func(c morton.Code, data [DataWords]float64) bool {
		e := c.Extent()
		v += data[0] * e * e * e
		return true
	})
	return v
}
