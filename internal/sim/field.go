package sim

import (
	"math"

	"pmoctree/internal/morton"
	"pmoctree/internal/tile"
)

// Field is a time-dependent implicit interface driving adaptive meshing:
// the liquid (or vapor) surface is the zero level set of Phi, negative
// inside. The droplet-ejection, drop-impact and boiling workloads all
// implement it, so the AMR step driver and the distributed simulation run
// any of them interchangeably.
type Field interface {
	// PhiAtStep evaluates the approximate signed distance at step s.
	PhiAtStep(x, y, z float64, step int) float64
	// Steps is the nominal workload length.
	Steps() int
	// Speed is the characteristic interface velocity, used by the solve
	// phase's velocity field.
	Speed() float64
}

// RefinePredOf returns the refinement criterion for step s on any field:
// an octant refines while its region may intersect the interface band.
// The test is conservative by the octant's half-diagonal, so coarse
// octants crossed by the surface always refine.
func RefinePredOf(f Field, step int) func(morton.Code) bool {
	return func(c morton.Code) bool {
		x, y, z := c.Center()
		phi := f.PhiAtStep(x, y, z, step)
		return math.Abs(phi) <= halfDiag(c)*1.05
	}
}

// CoarsenPredOf returns the coarsening criterion for step s: a sibling
// group collapses when its parent's region is comfortably clear of the
// interface (hysteresis avoids refine/coarsen thrash).
func CoarsenPredOf(f Field, step int) func(morton.Code) bool {
	return func(c morton.Code) bool {
		x, y, z := c.Center()
		phi := f.PhiAtStep(x, y, z, step)
		return math.Abs(phi) > 2.2*halfDiag(c)
	}
}

// FeatureOf returns the feature function handed to PM-octree's
// feature-directed sampling (§3.3): the next step's refinement criterion,
// pre-executed to predict which subtrees the coming step will touch.
func FeatureOf(f Field, nextStep int) func(morton.Code, [DataWords]float64) bool {
	pred := RefinePredOf(f, nextStep)
	return func(c morton.Code, _ [DataWords]float64) bool { return pred(c) }
}

// SolveOf returns the per-leaf relaxation sweep for step s (see
// Droplet.Solve for the field semantics).
func SolveOf(f Field, step int) func(morton.Code, *[DataWords]float64) bool {
	return func(c morton.Code, data *[DataWords]float64) bool {
		x, y, z := c.Center()
		return solveCell(f.Speed(), f.PhiAtStep(x, y, z, step), c, data)
	}
}

// solveCell applies one relaxation update given the field's level-set
// value at the cell center. Splitting phi out lets the parallel step
// driver pre-evaluate the (expensive, pure) level set once per step and
// share it across all SolverSweeps sweeps with bit-identical results.
func solveCell(speed, phi float64, c morton.Code, data *[DataWords]float64) bool {
	eps := c.Extent()
	vof := quantize(smoothstep(-phi / eps))
	target := math.Exp(-math.Abs(phi) * 8)
	p := quantize(data[1] + 0.35*(target-data[1]))
	w := quantize(-speed * vof)
	if data[0] == vof && data[1] == p && data[3] == w {
		return false
	}
	data[0] = vof
	data[1] = p
	data[2] = 0
	data[3] = w
	return true
}

// solveCellFlat is solveCell operating on cell i of the tiled SoA store
// instead of an octant payload: the two MUST stay in lockstep term for
// term — same expressions, same evaluation order, same change test — so
// the tiled sweep is bit-identical to the per-leaf one (the coherence
// tests pin this). phi and eps arrive precomputed (the level set is pure
// in (cell, step); eps is the cell extent).
func solveCellFlat(speed, phi, eps float64, i int, st *tile.Store) bool {
	f0, f1, f3 := st.F[0], st.F[1], st.F[3]
	vof := quantize(smoothstep(-phi / eps))
	target := math.Exp(-math.Abs(phi) * 8)
	p := quantize(f1[i] + 0.35*(target-f1[i]))
	w := quantize(-speed * vof)
	if f0[i] == vof && f1[i] == p && f3[i] == w {
		return false
	}
	f0[i] = vof
	f1[i] = p
	st.F[2][i] = 0
	f3[i] = w
	return true
}

// StepField advances mesh through one AMR time step of any workload:
// Refine, Coarsen, Balance, then SolverSweeps relaxation sweeps.
func StepField(m Mesh, f Field, step int, maxLevel uint8) StepCounts {
	return StepFieldPool(m, f, step, maxLevel, nil)
}
