package sim

import (
	"pmoctree/internal/bulk"
	"pmoctree/internal/morton"
	"pmoctree/internal/parallel"
	"pmoctree/internal/telemetry"
)

// constructingMesh is the optional bulk-construction contract (core.Tree
// provides it): replace the whole working version with a tree built from
// a sorted leaf set plus per-leaf payloads in one shot.
type constructingMesh interface {
	Mesh
	ConstructFromCodes(codes []morton.Code, data [][DataWords]float64, pool *parallel.Pool, balance bool) (int, error)
}

// ConstructInitial is the scenario start-up fast path: instead of growing
// the first step's mesh by incremental refinement (a split at a time, each
// a COW write), it derives the step-s leaf set top-down from the
// refinement criterion, 2:1-balances the codes flat (internal/bulk), runs
// the step's SolverSweeps relaxation sweeps per cell from the zero state,
// and hands the finished (codes, fields) set to the mesh's bulk
// constructor.
//
// The resulting mesh — structure, field values, and the returned
// StepCounts — is bit-identical to Step/StepFieldPool of the same step on
// a fresh mesh, at any worker count. It applies only to a fresh mesh (one
// root leaf, nothing committed beyond the root): on any other mesh, or one
// without the bulk-construction contract, it reports ok=false and does
// nothing, and the caller falls back to the incremental step.
func ConstructInitial(m Mesh, f Field, step int, maxLevel uint8, pool *parallel.Pool) (sc StepCounts, ok bool) {
	cm, isCM := m.(constructingMesh)
	if !isCM || m.LeafCount() != 1 {
		return StepCounts{}, false
	}
	telemetry.TracerOf(m).SetStep(uint64(step))
	defer telemetry.TracerOf(m).Begin("Construct").End()

	// Refine-closure of the root under the step's criterion: exactly the
	// leaf set RefineWhere produces, enumerated without touching the mesh.
	raw := descendLeaves(RefinePredOf(f, step), maxLevel, pool)
	// The step driver's Coarsen pass is a no-op here: every parent in the
	// closure just satisfied the refine test, which contradicts the
	// coarsen test's clearance margin.
	balanced, err := bulk.Balance(raw, pool)
	if err != nil {
		return StepCounts{}, false // unreachable: the closure is a partition
	}

	// The step's solve: SolverSweeps relaxation sweeps from the zero field
	// state. The level set is pure in (cell, step), so one evaluation per
	// cell feeds every sweep — the same sharing the parallel step driver
	// does. Solved counts first-sweep changes, as StepCounts defines.
	data := make([][DataWords]float64, len(balanced))
	changed := make([]bool, len(balanced))
	speed := f.Speed()
	pool.Run(len(balanced), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := balanced[i]
			x, y, z := c.Center()
			phi := f.PhiAtStep(x, y, z, step)
			for it := 0; it < SolverSweeps; it++ {
				ch := solveCell(speed, phi, c, &data[i])
				if it == 0 {
					changed[i] = ch
				}
			}
		}
	})

	if _, err := cm.ConstructFromCodes(balanced, data, pool, false); err != nil {
		return StepCounts{}, false
	}
	// Split counts fall out of the full-octree identity leaves = 7*splits+1:
	// the closure's splits are Refine's, the extra ones are Balance's.
	sc.Refined = (len(raw) - 1) / 7
	sc.Balanced = (len(balanced) - len(raw)) / 7
	for _, ch := range changed {
		if ch {
			sc.Solved++
		}
	}
	sc.Leaves = len(balanced)
	return sc, true
}

// descendLeaves enumerates, in Z-order, the leaves of the refine-closure
// of the root: descend while the criterion holds and the level permits.
// The top few levels are expanded serially into independent subtree tasks,
// which then descend in parallel; concatenating the per-task buckets in
// task order restores the global Z-order for any worker count.
func descendLeaves(pred func(morton.Code) bool, maxLevel uint8, pool *parallel.Pool) []morton.Code {
	const seedDepth = 3
	type task struct {
		c    morton.Code
		open bool
	}
	var tasks []task
	var seed func(c morton.Code, depth int)
	seed = func(c morton.Code, depth int) {
		if c.Level() >= maxLevel || !pred(c) {
			tasks = append(tasks, task{c, false})
			return
		}
		if depth == 0 {
			tasks = append(tasks, task{c, true})
			return
		}
		for i := 0; i < 8; i++ {
			seed(c.Child(i), depth-1)
		}
	}
	seed(morton.Root, seedDepth)

	buckets := make([][]morton.Code, len(tasks))
	pool.RunMin(len(tasks), 2, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t := tasks[i]
			if !t.open {
				buckets[i] = []morton.Code{t.c}
				continue
			}
			var walk func(c morton.Code)
			walk = func(c morton.Code) {
				if c.Level() >= maxLevel || !pred(c) {
					buckets[i] = append(buckets[i], c)
					return
				}
				for k := 0; k < 8; k++ {
					walk(c.Child(k))
				}
			}
			for k := 0; k < 8; k++ {
				walk(t.c.Child(k))
			}
		}
	})
	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	out := make([]morton.Code, 0, total)
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out
}
