package sim

import (
	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/octree"
	"pmoctree/internal/telemetry"
)

// DataWords matches the per-octant payload of the octree implementations.
// Word 0 holds the volume fraction, word 1 a pressure-like scalar, words
// 2-3 velocity components.
const DataWords = 4

// Mesh is the operation set the step driver needs. PM-octree (core.Tree)
// and the out-of-core baseline (etree.Tree) implement it directly; the
// in-core baseline is wrapped by InCore.
type Mesh interface {
	RefineWhere(pred func(morton.Code) bool, maxLevel uint8) int
	CoarsenWhere(pred func(morton.Code) bool) int
	Balance() int
	UpdateLeaves(fn func(code morton.Code, data *[DataWords]float64) bool) int
	LeafCount() int
	ForEachLeaf(fn func(code morton.Code, data [DataWords]float64) bool)
}

// octantBytes is the modeled memory footprint of one pointer-octree node
// (code, pointers, data) for DRAM traffic accounting.
const octantBytes = 88

// InCore adapts the pointer octree baseline to the Mesh interface and
// carries its snapshot persistence policy: the full tree is serialized to
// the NVBM device through the file-system interface every SnapshotEvery
// steps (the paper snapshots every 10).
//
// The pointer tree's own accesses are charged to a modeled DRAM device
// (Mem), so the baselines and PM-octree compare on the same deterministic
// clock.
type InCore struct {
	Tree *octree.Tree
	// Mem accounts the tree's DRAM traffic.
	Mem *nvbm.Device
	// SnapshotDev receives snapshot files; nil disables snapshots.
	SnapshotDev *nvbm.Device
	// SnapshotEvery is the snapshot period in steps (default 10).
	SnapshotEvery int

	tel *telemetry.Tracer // nil when telemetry is off
}

// NewInCore wraps a fresh in-core octree.
func NewInCore(snapshotDev *nvbm.Device) *InCore {
	return &InCore{
		Tree:          octree.New(),
		Mem:           nvbm.New(nvbm.DRAM, 0),
		SnapshotDev:   snapshotDev,
		SnapshotEvery: 10,
	}
}

// SetTracer attaches a telemetry tracer; each Mesh routine then records a
// phase span. A nil tracer (the default) turns spans off.
func (m *InCore) SetTracer(tel *telemetry.Tracer) { m.tel = tel }

// Tracer returns the attached tracer, satisfying telemetry.Traceable.
func (m *InCore) Tracer() *telemetry.Tracer { return m.tel }

// RefineWhere implements Mesh.
func (m *InCore) RefineWhere(pred func(morton.Code) bool, maxLevel uint8) int {
	defer m.tel.Begin("Refine").End()
	visited := m.Tree.NodeCount()
	n := m.Tree.RefineWhere(pred, maxLevel)
	m.Mem.ChargeReadN(visited+n, octantBytes)
	m.Mem.ChargeWriteN(n*9, octantBytes) // 8 children + parent links
	return n
}

// CoarsenWhere implements Mesh.
func (m *InCore) CoarsenWhere(pred func(morton.Code) bool) int {
	defer m.tel.Begin("Coarsen").End()
	visited := m.Tree.NodeCount()
	n := m.Tree.CoarsenWhere(pred)
	m.Mem.ChargeReadN(visited+n*8, octantBytes)
	m.Mem.ChargeWriteN(n, octantBytes)
	return n
}

// Balance implements Mesh.
func (m *InCore) Balance() int {
	defer m.tel.Begin("Balance").End()
	visited := m.Tree.NodeCount()
	n := m.Tree.Balance()
	// Each pass walks the leaves and probes face neighbors top-down.
	m.Mem.ChargeReadN(visited*2+n*32, octantBytes)
	m.Mem.ChargeWriteN(n*9, octantBytes)
	return n
}

// LeafCount implements Mesh.
func (m *InCore) LeafCount() int { return m.Tree.LeafCount() }

// UpdateLeaves implements Mesh.
func (m *InCore) UpdateLeaves(fn func(morton.Code, *[DataWords]float64) bool) int {
	defer m.tel.Begin("Solve").End()
	changed := 0
	visited := 0
	m.Tree.ForEachLeaf(func(n *octree.Node) bool {
		visited++
		if fn(n.Code, &n.Data) {
			changed++
		}
		return true
	})
	m.Mem.ChargeReadN(visited, octantBytes)
	m.Mem.ChargeWriteN(changed, octantBytes)
	return changed
}

// ForEachLeaf implements Mesh.
func (m *InCore) ForEachLeaf(fn func(morton.Code, [DataWords]float64) bool) {
	visited := 0
	m.Tree.ForEachLeaf(func(n *octree.Node) bool {
		visited++
		return fn(n.Code, n.Data)
	})
	m.Mem.ChargeReadN(visited, octantBytes)
}

// PersistStep writes a full snapshot on the configured period.
func (m *InCore) PersistStep(step int) error {
	if m.SnapshotDev == nil {
		return nil
	}
	every := m.SnapshotEvery
	if every <= 0 {
		every = 10
	}
	if step%every != 0 {
		return nil
	}
	defer m.tel.Begin("Snapshot").End()
	_, err := m.Tree.SnapshotToDevice(m.SnapshotDev)
	return err
}
