package telemetry

import (
	"sync"
	"time"
)

// ProbeSample is a point-in-time reading of a device's accounting
// counters. Spans record the delta between the readings at Begin and End.
type ProbeSample struct {
	ModeledNs  uint64
	Reads      uint64
	Writes     uint64
	ReadBytes  uint64
	WriteBytes uint64
}

// Probe samples one device for span accounting. ModeledOnly probes (DRAM)
// contribute their modeled time to the span but not to its NVBM
// operation counts.
type Probe struct {
	Sample      func() ProbeSample
	ModeledOnly bool
}

// Event is one completed span. Times are nanoseconds on the trace clock
// (monotonic wall time by default; tests and modeled-time traces inject
// their own clock).
type Event struct {
	Name       string `json:"name"`
	Rank       int    `json:"rank"`
	Depth      int    `json:"depth"`
	Step       uint64 `json:"step"`
	StartNs    int64  `json:"start_ns"`
	DurNs      int64  `json:"dur_ns"`
	ModeledNs  uint64 `json:"modeled_ns"`
	Reads      uint64 `json:"nvbm_reads"`
	Writes     uint64 `json:"nvbm_writes"`
	ReadBytes  uint64 `json:"nvbm_read_bytes"`
	WriteBytes uint64 `json:"nvbm_write_bytes"`
}

// Trace collects completed span events from any number of tracers. The
// zero value is not usable; call NewTrace. All methods are
// goroutine-safe, and all methods on a nil *Trace are no-ops.
type Trace struct {
	mu     sync.Mutex
	clock  func() int64
	start  int64
	events []Event
}

// NewTrace returns a trace on the monotonic wall clock, with time zero at
// the moment of the call.
func NewTrace() *Trace {
	t := &Trace{}
	begin := time.Now()
	t.clock = func() int64 { return int64(time.Since(begin)) }
	return t
}

// SetClock replaces the trace clock (nanoseconds since an arbitrary
// epoch). Used by deterministic tests and by modeled-time traces whose
// clock advances with device accounting rather than wall time.
func (t *Trace) SetClock(clock func() int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

func (t *Trace) now() int64 {
	t.mu.Lock()
	c := t.clock
	t.mu.Unlock()
	return c()
}

// Emit appends a completed event. Exposed so subsystems with externally
// computed timelines (the cluster's modeled per-rank clocks) can feed the
// same trace that span tracers write to.
func (t *Trace) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Len returns the number of events collected so far. Use with EventsFrom
// to carve out the events of one step.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of all collected events.
func (t *Trace) Events() []Event { return t.EventsFrom(0) }

// EventsFrom returns a copy of the events at index i and later.
func (t *Trace) EventsFrom(i int) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 {
		i = 0
	}
	if i >= len(t.events) {
		return nil
	}
	out := make([]Event, len(t.events)-i)
	copy(out, t.events[i:])
	return out
}

// Tracer returns a span tracer writing into t, tagged with rank and
// sampling the given probes around every span. Returns nil on a nil
// trace, which makes every downstream call a no-op.
func (t *Trace) Tracer(rank int, probes ...Probe) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{trace: t, rank: rank, probes: probes}
}

// Tracer opens phase-scoped spans for one logical rank. A single tracer
// is used from one goroutine at a time (span depth is tracked per
// tracer); different tracers may share a Trace freely. All methods on a
// nil *Tracer are no-ops.
type Tracer struct {
	trace  *Trace
	rank   int
	probes []Probe
	step   uint64
	depth  int
}

// SetStep tags subsequently opened spans with the simulation step.
func (t *Tracer) SetStep(step uint64) {
	if t == nil {
		return
	}
	t.step = step
}

// Begin opens a nested span. The returned span must be closed with End;
// the idiomatic call site is
//
//	defer tel.Begin("Refine").End()
//
// Begin on a nil tracer returns a nil span, whose End is a no-op.
func (t *Tracer) Begin(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		tracer: t,
		name:   name,
		depth:  t.depth,
		step:   t.step,
		start:  t.trace.now(),
	}
	if n := len(t.probes); n > 0 {
		s.before = make([]ProbeSample, n)
		for i, p := range t.probes {
			s.before[i] = p.Sample()
		}
	}
	t.depth++
	return s
}

// Span is one open phase. End closes it and emits an Event carrying the
// wall-clock duration plus the modeled-time and NVBM access deltas
// observed by the tracer's probes.
type Span struct {
	tracer *Tracer
	name   string
	depth  int
	step   uint64
	start  int64
	before []ProbeSample
}

// End closes the span. Safe on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	e := Event{
		Name:    s.name,
		Rank:    t.rank,
		Depth:   s.depth,
		Step:    s.step,
		StartNs: s.start,
		DurNs:   t.trace.now() - s.start,
	}
	for i, p := range t.probes {
		after := p.Sample()
		e.ModeledNs += satSub(after.ModeledNs, s.before[i].ModeledNs)
		if p.ModeledOnly {
			continue
		}
		e.Reads += satSub(after.Reads, s.before[i].Reads)
		e.Writes += satSub(after.Writes, s.before[i].Writes)
		e.ReadBytes += satSub(after.ReadBytes, s.before[i].ReadBytes)
		e.WriteBytes += satSub(after.WriteBytes, s.before[i].WriteBytes)
	}
	t.depth = s.depth
	t.trace.Emit(e)
}

// Traceable is implemented by mesh types that expose their tracer, so the
// shared step driver can tag spans with the step index without knowing
// the concrete mesh type.
type Traceable interface {
	Tracer() *Tracer
}

// TracerOf returns v's tracer if v is Traceable, else nil.
func TracerOf(v any) *Tracer {
	if tr, ok := v.(Traceable); ok {
		return tr.Tracer()
	}
	return nil
}
