package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"os/signal"
	"sync/atomic"
	"time"
)

// Flight recorder: a fixed-size, lock-free ring of recent structured
// events — the black box a post-mortem reads when a process is killed or
// a soak fails. Producers are hot paths (commits, GC passes, scrub
// results, fault injections, admission rejections), so Record is one
// atomic fetch-add plus one atomic pointer store: no locks, no blocking,
// writers never wait for readers. Readers (Events, WriteJSONL) see a
// consistent snapshot because every slot holds an immutable *FlightEvent
// published with an atomic store; a torn view of the ring can at worst
// miss the newest events or double-see an overwritten slot, both of
// which Events resolves by de-duplicating on Seq.
//
// All methods on a nil *FlightRecorder are no-ops, so subsystems thread
// an optional recorder at one pointer test per event.

// FlightEvent is one recorded occurrence. Kind is a short stable tag
// ("commit", "gc", "scrub", "crash", "restore", "reject", ...); Step and
// Value carry the kind's payload (a step number, a digest, a count),
// Detail is free text.
type FlightEvent struct {
	Seq    uint64 `json:"seq"`
	WallNs int64  `json:"wall_ns"` // nanoseconds since the recorder was created
	Kind   string `json:"kind"`
	Step   uint64 `json:"step,omitempty"`
	Value  uint64 `json:"value,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// FlightRecorder is the ring. The zero value is not usable; call
// NewFlightRecorder.
type FlightRecorder struct {
	begin time.Time
	seq   atomic.Uint64
	slots []atomic.Pointer[FlightEvent]
}

// NewFlightRecorder returns a recorder retaining the last capacity events
// (default 1024 when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &FlightRecorder{begin: time.Now(), slots: make([]atomic.Pointer[FlightEvent], capacity)}
}

// Record appends one event, overwriting the oldest once the ring is
// full. Seq and WallNs are filled in; the passed struct's other fields
// are kept. Safe from any goroutine, lock-free, never blocks.
func (f *FlightRecorder) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	ev.Seq = f.seq.Add(1)
	ev.WallNs = time.Since(f.begin).Nanoseconds()
	f.slots[int((ev.Seq-1)%uint64(len(f.slots)))].Store(&ev)
}

// Recorded returns the total number of events recorded (not retained).
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// Events returns the retained events in Seq order, oldest first.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	seen := make(map[uint64]bool, len(f.slots))
	out := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		if p := f.slots[i].Load(); p != nil && !seen[p.Seq] {
			seen[p.Seq] = true
			out = append(out, *p)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Seq < out[j-1].Seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// WriteJSONL dumps the retained events as one JSON object per line,
// oldest first.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range f.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// DumpFile writes the retained events to path as JSONL. A nil recorder
// writes nothing and returns nil.
func (f *FlightRecorder) DumpFile(path string) error {
	if f == nil {
		return nil
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteJSONL(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// DumpOnSignal installs a handler that dumps the ring to path every time
// one of the given signals arrives (SIGQUIT is the conventional choice),
// then keeps running — the black box is extracted without killing the
// process. Returns a stop function that uninstalls the handler.
func (f *FlightRecorder) DumpOnSignal(path string, signals ...os.Signal) (stop func()) {
	if f == nil || len(signals) == 0 {
		return func() {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, signals...)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				_ = f.DumpFile(path)
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

// ReadFlightDump parses a JSONL dump back into events (the test-side
// inverse of WriteJSONL).
func ReadFlightDump(r io.Reader) ([]FlightEvent, error) {
	dec := json.NewDecoder(r)
	var out []FlightEvent
	for {
		var ev FlightEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, ev)
	}
}
