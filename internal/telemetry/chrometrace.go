package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event format ("X" =
// complete event, "M" = metadata). Timestamps and durations are
// microseconds. See the Trace Event Format spec; the output loads in
// chrome://tracing and https://ui.perfetto.dev.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders the collected events as Chrome trace_event
// JSON. Each rank becomes one named thread; span nesting is reconstructed
// by Perfetto from the start/duration containment.
func WriteChromeTrace(w io.Writer, events []Event) error {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].StartNs != sorted[j].StartNs {
			return sorted[i].StartNs < sorted[j].StartNs
		}
		// Parents before children at the same start time.
		return sorted[i].Depth < sorted[j].Depth
	})

	var out chromeTrace
	ranks := map[int]bool{}
	for _, e := range sorted {
		ranks[e.Rank] = true
	}
	for _, r := range sortedInts(ranks) {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  0,
			Tid:  r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
		})
	}
	for _, e := range sorted {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Name,
			Ph:   "X",
			Ts:   float64(e.StartNs) / 1e3,
			Dur:  float64(e.DurNs) / 1e3,
			Pid:  0,
			Tid:  e.Rank,
			Args: map[string]any{
				"step":        e.Step,
				"modeled_ns":  e.ModeledNs,
				"nvbm_reads":  e.Reads,
				"nvbm_writes": e.Writes,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
