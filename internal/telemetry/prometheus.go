package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Prometheus text exposition (format 0.0.4) over a registry snapshot, so
// any scraper can pull the same counters, gauges, and histograms the JSON
// endpoints expose, with no third-party client library.
//
// Name mapping: metric names in this package are dotted
// ("serve.latency_ns"); Prometheus names must match
// [a-zA-Z_:][a-zA-Z0-9_:]*, so every illegal rune becomes '_'
// ("serve_latency_ns"). Histograms render the conventional triplet:
// cumulative `_bucket{le="..."}` series (one per occupied bucket bound,
// plus `+Inf`), `_sum`, and `_count`. Bucket bounds are the histogram's
// exclusive upper bounds; since samples are integers, v < Hi implies
// v <= Hi, so the cumulative counts are exact for le = Hi.

// WritePrometheus renders one registry snapshot in Prometheus text
// format. Metrics are emitted in sorted name order so output is stable
// and diffable.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, name := range sortedKeys(s.Counters) {
		p := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		p := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", p, p, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		p := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", p); err != nil {
			return err
		}
		cum := uint64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", p, b.Hi, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			p, h.Count, p, h.Sum, p, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName sanitizes a dotted metric name into the Prometheus charset.
func promName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// MetricsHandler serves reg as Prometheus text on GET. A nil registry
// serves an empty exposition.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			_ = WritePrometheus(w, reg.Snapshot())
		}
	})
}
