package telemetry

import (
	"pmoctree/internal/nvbm"
)

// DeviceProbe adapts an nvbm.Device to span accounting. DRAM devices are
// sampled ModeledOnly: their modeled latency counts toward a span's
// modeled time, but their operation counts are not NVBM traffic.
func DeviceProbe(d *nvbm.Device) Probe {
	return Probe{
		ModeledOnly: d.Kind() == nvbm.DRAM,
		Sample: func() ProbeSample {
			s := d.Stats()
			return ProbeSample{
				ModeledNs:  s.ModeledNs,
				Reads:      s.Reads,
				Writes:     s.Writes,
				ReadBytes:  s.ReadBytes,
				WriteBytes: s.WriteBytes,
			}
		},
	}
}

// RegisterDevice publishes a device's access and wear counters as
// function gauges under prefix (e.g. "nvbm.reads", "nvbm.modeled_ns"),
// absorbing nvbm.Stats into the registry without copying counters.
func RegisterDevice(r *Registry, prefix string, d *nvbm.Device) {
	if r == nil || d == nil {
		return
	}
	r.RegisterFunc(prefix+".reads", func() float64 { return float64(d.Stats().Reads) })
	r.RegisterFunc(prefix+".writes", func() float64 { return float64(d.Stats().Writes) })
	r.RegisterFunc(prefix+".read_bytes", func() float64 { return float64(d.Stats().ReadBytes) })
	r.RegisterFunc(prefix+".write_bytes", func() float64 { return float64(d.Stats().WriteBytes) })
	r.RegisterFunc(prefix+".modeled_ns", func() float64 { return float64(d.Stats().ModeledNs) })
	if d.Kind() == nvbm.NVBM {
		r.RegisterFunc(prefix+".wear_max", func() float64 { return float64(d.Wear().MaxWear) })
		r.RegisterFunc(prefix+".wear_total", func() float64 { return float64(d.Wear().TotalWear) })
		registerFaultGauges(r, prefix, d)
	}
}

// registerFaultGauges publishes the fault-injection and self-healing
// counters of an NVBM device. With no faults injected and no scrub runs
// every gauge reads zero, so registration is unconditional.
func registerFaultGauges(r *Registry, prefix string, d *nvbm.Device) {
	r.RegisterFunc(prefix+".torn_writes", func() float64 { return float64(d.FaultStats().TornWrites) })
	r.RegisterFunc(prefix+".torn_lines_dropped", func() float64 { return float64(d.FaultStats().TornLinesDropped) })
	r.RegisterFunc(prefix+".bit_flips", func() float64 { return float64(d.FaultStats().BitFlips) })
	r.RegisterFunc(prefix+".stuck_writes", func() float64 { return float64(d.FaultStats().StuckWrites) })
	r.RegisterFunc(prefix+".scrub_passes", func() float64 { return float64(d.FaultStats().ScrubPasses) })
	r.RegisterFunc(prefix+".scrub_corrupt", func() float64 { return float64(d.FaultStats().CorruptFound) })
	r.RegisterFunc(prefix+".scrub_repaired", func() float64 { return float64(d.FaultStats().LinesRepaired) })
	r.RegisterFunc(prefix+".scrub_remapped", func() float64 { return float64(d.FaultStats().LinesRemapped) })
	r.RegisterFunc(prefix+".scrub_unrepairable", func() float64 { return float64(d.FaultStats().Unrepairable) })
	r.RegisterFunc(prefix+".spare_lines", func() float64 { return float64(d.FaultStats().SparesLeft) })
}
