package telemetry

import (
	"io"
	"sync"
)

// Observer bundles one run's trace, metrics registry, and step timeline.
// It is the single handle experiment drivers and CLIs thread through the
// stack. All methods on a nil *Observer are no-ops, so callers pass nil
// to run without telemetry at no cost.
type Observer struct {
	Trace   *Trace
	Metrics *Registry

	mu    sync.Mutex
	steps []StepRecord
}

// NewObserver returns an observer with a fresh wall-clock trace and an
// empty registry.
func NewObserver() *Observer {
	return &Observer{Trace: NewTrace(), Metrics: NewRegistry()}
}

// TracerFor returns a span tracer for one rank, or nil on a nil
// observer.
func (o *Observer) TracerFor(rank int, probes ...Probe) *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace.Tracer(rank, probes...)
}

// Mark returns the current trace length; pass it to EventsFrom after a
// step to carve out that step's events.
func (o *Observer) Mark() int {
	if o == nil {
		return 0
	}
	return o.Trace.Len()
}

// EventsFrom returns the trace events recorded since mark.
func (o *Observer) EventsFrom(mark int) []Event {
	if o == nil {
		return nil
	}
	return o.Trace.EventsFrom(mark)
}

// RecordStep appends one step's record to the timeline.
func (o *Observer) RecordStep(rec StepRecord) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.steps = append(o.steps, rec)
	o.mu.Unlock()
}

// Steps returns a copy of the step timeline.
func (o *Observer) Steps() []StepRecord {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]StepRecord, len(o.steps))
	copy(out, o.steps)
	return out
}

// WriteSteps emits the step timeline as JSONL.
func (o *Observer) WriteSteps(w io.Writer) error {
	if o == nil {
		return nil
	}
	return WriteStepsJSONL(w, o.Steps())
}

// WriteTrace emits the collected span events as Chrome trace_event JSON.
func (o *Observer) WriteTrace(w io.Writer) error {
	if o == nil {
		return nil
	}
	return WriteChromeTrace(w, o.Trace.Events())
}
