package telemetry

import (
	"testing"

	"pmoctree/internal/nvbm"
)

func TestRegisterDeviceFaultGauges(t *testing.T) {
	d := nvbm.New(nvbm.NVBM, 2*nvbm.LineSize)
	d.EnableMediaTracking()
	d.SetSpareLines(4)
	r := NewRegistry()
	RegisterDevice(r, "nvbm", d)

	snap := r.Snapshot()
	for _, name := range []string{
		"nvbm.torn_writes", "nvbm.torn_lines_dropped", "nvbm.bit_flips",
		"nvbm.stuck_writes", "nvbm.scrub_passes", "nvbm.scrub_corrupt",
		"nvbm.scrub_repaired", "nvbm.scrub_remapped", "nvbm.scrub_unrepairable",
		"nvbm.spare_lines",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %q not registered", name)
		}
	}
	if got := snap.Gauges["nvbm.spare_lines"]; got != 4 {
		t.Errorf("spare_lines = %v, want 4", got)
	}

	// Gauges are live: injected rot and a scrub pass show up.
	d.FlipBit(3, 1)
	d.Scrub(nil)
	snap = r.Snapshot()
	if snap.Gauges["nvbm.bit_flips"] != 1 {
		t.Errorf("bit_flips = %v, want 1", snap.Gauges["nvbm.bit_flips"])
	}
	if snap.Gauges["nvbm.scrub_passes"] != 1 || snap.Gauges["nvbm.scrub_corrupt"] != 1 {
		t.Errorf("scrub gauges = passes %v corrupt %v, want 1/1",
			snap.Gauges["nvbm.scrub_passes"], snap.Gauges["nvbm.scrub_corrupt"])
	}

	// DRAM devices publish no fault gauges.
	r2 := NewRegistry()
	RegisterDevice(r2, "dram", nvbm.New(nvbm.DRAM, 64))
	if _, ok := r2.Snapshot().Gauges["dram.torn_writes"]; ok {
		t.Error("DRAM device registered fault gauges")
	}
}
