package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pmoctree/internal/nvbm"
)

// fakeClock returns a clock that advances by tick on every reading.
func fakeClock(tick int64) func() int64 {
	var now int64
	return func() int64 {
		now += tick
		return now
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTrace()
	tr.SetClock(fakeClock(10))
	tel := tr.Tracer(0)
	tel.SetStep(3)

	outer := tel.Begin("Persist")
	inner := tel.Begin("GC")
	inner.End()
	outer.End()

	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2", len(ev))
	}
	// Inner span ends first.
	if ev[0].Name != "GC" || ev[0].Depth != 1 {
		t.Errorf("inner = %+v, want GC at depth 1", ev[0])
	}
	if ev[1].Name != "Persist" || ev[1].Depth != 0 {
		t.Errorf("outer = %+v, want Persist at depth 0", ev[1])
	}
	if ev[0].Step != 3 || ev[1].Step != 3 {
		t.Errorf("steps = %d/%d, want 3/3", ev[0].Step, ev[1].Step)
	}
	if ev[1].StartNs >= ev[0].StartNs {
		t.Errorf("outer starts at %d, inner at %d: outer must start first", ev[1].StartNs, ev[0].StartNs)
	}
	if ev[1].DurNs <= ev[0].DurNs {
		t.Errorf("outer dur %d must exceed inner dur %d", ev[1].DurNs, ev[0].DurNs)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	var tel *Tracer
	var sp *Span
	var obs *Observer

	// None of these may panic.
	tr.Emit(Event{})
	tr.SetClock(nil)
	if tr.Len() != 0 || tr.Events() != nil || tr.Tracer(0) != nil {
		t.Fatal("nil Trace must behave as empty")
	}
	tel.SetStep(1)
	if s := tel.Begin("x"); s != nil {
		t.Fatal("nil tracer must return nil span")
	}
	sp.End()
	obs.RecordStep(StepRecord{})
	if obs.TracerFor(0) != nil || obs.Steps() != nil || obs.Mark() != 0 {
		t.Fatal("nil Observer must behave as empty")
	}
	if err := obs.WriteSteps(nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpanProbesDeltas(t *testing.T) {
	nv := nvbm.New(nvbm.NVBM, 4096)
	dr := nvbm.New(nvbm.DRAM, 4096)
	tr := NewTrace()
	tel := tr.Tracer(0, DeviceProbe(nv), DeviceProbe(dr))

	buf := make([]byte, 64)
	sp := tel.Begin("Refine")
	nv.WriteAt(0, buf)
	nv.ReadAt(0, buf)
	dr.WriteAt(0, buf) // DRAM: modeled-only, must not count as NVBM ops
	sp.End()

	ev := tr.Events()
	if len(ev) != 1 {
		t.Fatalf("events = %d, want 1", len(ev))
	}
	e := ev[0]
	if e.Reads != 1 || e.Writes != 1 {
		t.Errorf("NVBM ops = %d reads %d writes, want 1/1", e.Reads, e.Writes)
	}
	if e.ReadBytes != 64 || e.WriteBytes != 64 {
		t.Errorf("NVBM bytes = %d/%d, want 64/64", e.ReadBytes, e.WriteBytes)
	}
	wantNs := nv.Stats().ModeledNs + dr.Stats().ModeledNs
	if e.ModeledNs != wantNs {
		t.Errorf("modeled = %d, want %d (NVBM+DRAM)", e.ModeledNs, wantNs)
	}
}

func TestStepFromEvents(t *testing.T) {
	events := []Event{
		{Name: "Refine", Depth: 0, DurNs: 100, ModeledNs: 50, Reads: 5, Writes: 2},
		{Name: "Solve", Depth: 0, DurNs: 200, ModeledNs: 80, Reads: 8},
		{Name: "Solve", Depth: 0, DurNs: 50, ModeledNs: 20, Reads: 2},
		{Name: "GC", Depth: 1, DurNs: 30, ModeledNs: 10}, // nested: excluded
	}
	rec := StepFromEvents(7, events)
	if rec.Step != 7 {
		t.Errorf("step = %d, want 7", rec.Step)
	}
	if len(rec.Phases) != 2 {
		t.Fatalf("phases = %d, want 2 (nested span must not create a phase)", len(rec.Phases))
	}
	if rec.Phases[0].Name != "Refine" || rec.Phases[1].Name != "Solve" {
		t.Errorf("phase order = %s,%s, want first-seen Refine,Solve", rec.Phases[0].Name, rec.Phases[1].Name)
	}
	if rec.Phases[1].WallNs != 250 || rec.Phases[1].ModeledNs != 100 {
		t.Errorf("Solve aggregate = %d wall %d modeled, want 250/100", rec.Phases[1].WallNs, rec.Phases[1].ModeledNs)
	}
	if rec.WallNs != 350 || rec.ModeledNs != 150 || rec.NVBMReads != 15 || rec.NVBMWrites != 2 {
		t.Errorf("totals = %+v, want wall 350 modeled 150 R15 W2", rec)
	}
}

func TestWriteStepsJSONL(t *testing.T) {
	recs := []StepRecord{
		{Step: 1, ModeledNs: 10, Phases: []PhaseStat{{Name: "Refine", ModeledNs: 10}}},
		{Step: 2, ModeledNs: 20},
	}
	var buf bytes.Buffer
	if err := WriteStepsJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	for i, line := range lines {
		var rec StepRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if rec.Step != i+1 {
			t.Errorf("line %d step = %d, want %d", i, rec.Step, i+1)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTrace()
	tr.SetClock(fakeClock(1000))
	tel0 := tr.Tracer(0)
	tel1 := tr.Tracer(1)
	tel0.Begin("Refine").End()
	tel1.Begin("Solve").End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	var meta, complete int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			meta++
			if e["name"] != "thread_name" {
				t.Errorf("metadata event name = %v", e["name"])
			}
		case "X":
			complete++
			if _, ok := e["ts"].(float64); !ok {
				t.Errorf("X event missing numeric ts: %v", e)
			}
			if _, ok := e["dur"].(float64); !ok {
				t.Errorf("X event missing numeric dur: %v", e)
			}
		default:
			t.Errorf("unexpected ph %v", e["ph"])
		}
	}
	if meta != 2 || complete != 2 {
		t.Fatalf("events = %d metadata + %d complete, want 2+2", meta, complete)
	}
}

func TestObserverRoundTrip(t *testing.T) {
	obs := NewObserver()
	obs.Trace.SetClock(fakeClock(5))
	tel := obs.TracerFor(0)

	mark := obs.Mark()
	tel.SetStep(1)
	tel.Begin("Refine").End()
	rec := StepFromEvents(1, obs.EventsFrom(mark))
	obs.RecordStep(rec)

	steps := obs.Steps()
	if len(steps) != 1 || steps[0].Step != 1 || len(steps[0].Phases) != 1 {
		t.Fatalf("steps = %+v, want one record with one phase", steps)
	}
	var buf bytes.Buffer
	if err := obs.WriteSteps(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"Refine"`) {
		t.Fatalf("JSONL missing phase: %s", buf.String())
	}
}

func TestSummarizeSteps(t *testing.T) {
	s := SummarizeSteps([]StepRecord{{
		Step: 1, Elements: 10, ModeledNs: 2e6, Overlap: 0.5, Merges: 3,
		Phases: []PhaseStat{{Name: "Refine", ModeledNs: 2e6}},
	}})
	for _, want := range []string{"step", "Refine", "50.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}
